#!/usr/bin/env bash
# Profiler smoke test against a live server.
#
# Starts `sxsi serve` with a multi-domain evaluation pool, hammers it
# with COUNT/QUERY load from a background client, and attaches
# `sxsi profile` for a 1-second window.  Asserts:
#   - the folded (collapsed-stack) output is non-empty and well-formed
#     ("path;path value" lines),
#   - the sampled load is attributed to real cost centers: at least
#     one engine/, one pool/ (or evloop/) and one service/ (or
#     evloop/) frame appears somewhere in the stacks,
#   - the --json report parses and carries the sxsi-prof-v1 schema.
set -euo pipefail

if command -v opam > /dev/null 2>&1; then
  opam exec -- dune build bin/sxsi.exe
else
  dune build bin/sxsi.exe
fi
SXSI=_build/default/bin/sxsi.exe

workdir=$(mktemp -d)
server_pid=""
load_pid=""
trap '[ -n "$load_pid" ] && kill "$load_pid" 2>/dev/null; [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; rm -rf "$workdir"' EXIT

"$SXSI" gen xmark --scale 400 -o "$workdir/doc.xml"

# caches off so every request does real engine work the sampler can
# attribute (with caches on, the steady state is all cache hits and
# the profile is dominated by idle executors -- correct, but not a
# smoke test of attribution)
SXSI_DOMAINS=2 "$SXSI" serve -p 0 \
  --compiled-cache 0 --count-cache 0 \
  --load "doc=$workdir/doc.xml" 2> "$workdir/server.log" &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\)$/\1/p' "$workdir/server.log" | head -1)
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: server never reported a listening port" >&2
  cat "$workdir/server.log" >&2
  exit 1
fi

# background load for the whole profiling window; a rotating query
# battery defeats single-flight coalescing between iterations
python3 - "$port" <<'EOF' &
import itertools, socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
f = s.makefile()
queries = [
    b"COUNT doc //item[location]\n",
    b"COUNT doc //person/name\n",
    b"COUNT doc //open_auction//bidder\n",
    b"COUNT doc //closed_auction/price\n",
]
for q in itertools.cycle(queries):
    try:
        s.sendall(q)
        f.readline()
    except OSError:
        break
EOF
load_pid=$!
sleep 0.3

"$SXSI" profile -p "$port" --seconds 1 -o "$workdir/profile.folded"
"$SXSI" profile -p "$port" --seconds 1 --json -o "$workdir/profile.json"

kill "$load_pid" 2>/dev/null || true
load_pid=""

echo "--- folded profile ---"
cat "$workdir/profile.folded"

python3 - "$workdir/profile.folded" "$workdir/profile.json" <<'EOF'
import json, sys

folded = open(sys.argv[1]).read().strip().splitlines()
assert folded, "folded profile is empty"
frames = set()
for line in folded:
    stack, _, value = line.rpartition(" ")
    assert stack, f"malformed folded line: {line!r}"
    assert value.isdigit(), f"non-numeric folded value: {line!r}"
    frames.update(stack.split(";"))
print("frames:", sorted(frames))

# the load must be attributed to the engine, the pool or event loop,
# and the service layer -- not just unattributed time
assert any(f.startswith("engine/") for f in frames), f"no engine/ frame in {frames}"
assert any(f.startswith(("pool/", "evloop/")) for f in frames), \
    f"no pool/ or evloop/ frame in {frames}"
assert any(f.startswith(("service/", "evloop/")) for f in frames), \
    f"no service/ or evloop/ frame in {frames}"

report = json.load(open(sys.argv[2]))
assert report["schema"] == "sxsi-prof-v1", report.get("schema")
assert report["ticks"] > 0, "sampler took no ticks"
assert report["stacks"], "JSON report attributed no stacks"
assert 900_000_000 < report["duration_ns"] < 10_000_000_000, report["duration_ns"]
print(f"profile smoke OK: {len(folded)} stacks, {report['ticks']} ticks")
EOF

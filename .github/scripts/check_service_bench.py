#!/usr/bin/env python3
"""Gate on the event-driven serve ladder (BENCH_service.json).

The service bench section drives a live event-loop server over TCP
with 1/4/16/64 depth-1 pipelined clients and reports cached
queries-per-second per rung.  On the cached path the server does no
engine work, so the ladder isolates the front end itself: parsing,
routing, batching, and flushing.  A healthy event loop amortizes
wakeups across connections, so throughput must RISE as clients are
added — a front end that serializes or thrashes shows a flat or
falling ladder instead.

Two checks, both on the cache-on column:

 1. Hard floor: qps at 4 clients must be >= qps at 1 client.  This is
    the acceptance gate of the evloop front end — more clients means
    more requests per poll turn, which must never cost throughput.
 2. Continued rise: qps at 16 clients must be >= 90% of qps at 4.
    The 10% allowance absorbs runner noise; an actual fall past it
    means per-connection overhead grew superlinear (a poll-set or
    flush regression).

The 64-client rung is reported but not gated: at that depth a 1-2
core CI runner measures scheduler contention more than the loop.

Usage: check_service_bench.py BENCH_service.json
"""
import json
import sys

MAX_RISE_TOLERANCE = 0.90  # qps16 >= qps4 * this

path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_service.json"
with open(path) as f:
    doc = json.load(f)

qps = {}
for m in doc.get("measurements", []):
    if "clients" in m and "qps_cache_on" in m:
        qps[int(m["clients"])] = float(m["qps_cache_on"])

missing = [c for c in (1, 4, 16) if c not in qps]
if missing:
    print(f"FAIL: {path} has no cached-throughput rung for clients={missing}")
    sys.exit(1)

print(f"{'clients':>8} {'qps (cache on)':>16}")
for c in sorted(qps):
    print(f"{c:>8} {qps[c]:>16.0f}")

failures = []
if qps[4] < qps[1]:
    failures.append(
        f"cached throughput at 4 clients ({qps[4]:.0f}/s) fell below "
        f"1 client ({qps[1]:.0f}/s): the loop is not amortizing turns"
    )
if qps[16] < qps[4] * MAX_RISE_TOLERANCE:
    failures.append(
        f"cached throughput at 16 clients ({qps[16]:.0f}/s) fell below "
        f"{MAX_RISE_TOLERANCE:.0%} of 4 clients ({qps[4]:.0f}/s): "
        f"per-connection overhead grew superlinear"
    )

if failures:
    for msg in failures:
        print(f"FAIL: {msg}")
    sys.exit(1)

print(
    f"OK: ladder rises 1->4 ({qps[4] / qps[1]:.2f}x) and holds 4->16 "
    f"({qps[16] / qps[4]:.2f}x)"
)

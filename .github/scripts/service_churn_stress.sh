#!/usr/bin/env bash
# Connection-churn stress for the event-driven `sxsi serve` front end.
#
# Cycles CHURN_N (default 10000) short-lived TCP sessions against a
# live `sxsi serve --serve-mode=evloop` process — connect, one COUNT,
# read the answer, disconnect — then asserts via STATS that every
# accepted connection was also closed (no session leaked in the
# loop's registration table) and via /proc/<pid>/fd that the server's
# descriptor count came back to where it started (no fd leaked on the
# teardown path).
set -euo pipefail

CHURN_N="${CHURN_N:-10000}"

if command -v opam > /dev/null 2>&1; then
  opam exec -- dune build bin/sxsi.exe
else
  dune build bin/sxsi.exe
fi
SXSI=_build/default/bin/sxsi.exe

workdir=$(mktemp -d)
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; rm -rf "$workdir"' EXIT

printf '<site><item><v>1</v></item><item><v>2</v></item><item><v>3</v></item></site>\n' \
  > "$workdir/doc.xml"

"$SXSI" serve -p 0 --serve-mode evloop \
  --load "doc=$workdir/doc.xml" 2> "$workdir/server.log" &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\)$/\1/p' "$workdir/server.log" | head -1)
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: server never reported a listening port" >&2
  cat "$workdir/server.log" >&2
  exit 1
fi

count_fds() { ls "/proc/$server_pid/fd" | wc -l; }

# one warm-up session so lazily-created descriptors (journal, caches)
# exist before the baseline snapshot
python3 - "$port" <<'EOF'
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
s.sendall(b"COUNT doc //item\n")
assert s.makefile().readline().strip() == "OK 3"
s.close()
EOF
sleep 0.3
fds_before=$(count_fds)

python3 - "$port" "$CHURN_N" <<'EOF'
import socket, sys, time

port, n = int(sys.argv[1]), int(sys.argv[2])

def stat(key):
    s = socket.create_connection(("127.0.0.1", port))
    f = s.makefile()
    s.sendall(b"STATS\n")
    value = None
    line = f.readline().strip()
    assert line == "DATA", f"STATS: expected DATA, got {line!r}"
    while True:
        line = f.readline().strip()
        if line == ".":
            break
        if line.startswith(key + "="):
            value = line[len(key) + 1:]
    s.close()
    assert value is not None, f"STATS missing {key}"
    return int(value)

t0 = time.time()
for i in range(n):
    s = socket.create_connection(("127.0.0.1", port))
    s.sendall(b"COUNT doc //item\n")
    resp = s.makefile().readline().strip()
    assert resp == "OK 3", f"churn round {i}: {resp!r}"
    s.close()
print(f"churned {n} connections in {time.time() - t0:.1f}s")

# let the loop reap the server side of the tail, then account: every
# accepted session must be closed except the live STATS probe itself
deadline = time.time() + 10.0
while time.time() < deadline:
    opened, closed = stat("connections_opened"), stat("connections_closed")
    if opened - closed <= 1:
        break
    time.sleep(0.1)
opened, closed = stat("connections_opened"), stat("connections_closed")
print(f"connections: opened={opened} closed={closed}")
assert opened >= n, f"only {opened} sessions accounted, expected >= {n}"
assert opened - closed <= 1, (
    f"{opened - closed} sessions leaked (opened={opened}, closed={closed})"
)
EOF

sleep 0.3
fds_after=$(count_fds)
echo "server fds: $fds_before before churn, $fds_after after"
if [ "$fds_after" -gt $((fds_before + 2)) ]; then
  echo "FAIL: server leaked descriptors across the churn" >&2
  ls -l "/proc/$server_pid/fd" >&2 || true
  exit 1
fi

echo "PASS: $CHURN_N connections churned, every session reaped, no fd leak"

#!/usr/bin/env python3
"""Gate on the broadword bit-kernel microbench (BENCH_bits.json).

The bits bench section times every rank/select/next1 operation twice
on the same vectors in the same process — once on the live broadword
kernels, once on Bitvec_ref, a faithful snapshot of the previous
table-driven kernels.  The speedup ratios are therefore
machine-independent, which makes them safe to gate on in CI:

 1. Across the density x size grid, the geometric-mean speedup must
    stay >= 1.5x for rank1 and >= 2.0x for select1 (the acceptance
    floor of the kernel rewrite).
 2. Against the checked-in baseline (bench/baselines/BENCH_bits.json),
    no operation's speedup ratio may regress by more than 20% on any
    grid point — a ratio drop means the new kernels slowed down
    relative to the fixed reference arm running on the same machine,
    i.e. a genuine kernel regression rather than runner noise.

Usage: check_bits_bench.py BENCH_bits.json [bench/baselines/BENCH_bits.json]
"""
import json
import math
import sys

MIN_RANK1_GEOMEAN = 1.5
MIN_SELECT1_GEOMEAN = 2.0
MAX_RATIO_REGRESSION = 0.20
OPS = ("rank1", "select1", "select0", "next1")

path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_bits.json"
base_path = sys.argv[2] if len(sys.argv) > 2 else "bench/baselines/BENCH_bits.json"

with open(path) as f:
    doc = json.load(f)

rows = [m for m in doc.get("measurements", []) if "rank1_speedup" in m]
if not rows:
    sys.exit(f"{path}: no measurements with rank1_speedup fields")


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def key(m):
    return (m["n_bits"], m["inv_density"])


failed = False
for m in rows:
    cells = "  ".join(f"{op} {m[f'{op}_speedup']:.2f}x" for op in OPS)
    print(f"n={m['n_bits']:>8} density=1/{m['inv_density']:<5} {cells}")

rank_gm = geomean([m["rank1_speedup"] for m in rows])
sel1_gm = geomean([m["select1_speedup"] for m in rows])
print(f"geomean: rank1 {rank_gm:.2f}x  select1 {sel1_gm:.2f}x")
if rank_gm < MIN_RANK1_GEOMEAN:
    failed = True
    print(f"FAIL: rank1 geomean speedup below {MIN_RANK1_GEOMEAN}x")
if sel1_gm < MIN_SELECT1_GEOMEAN:
    failed = True
    print(f"FAIL: select1 geomean speedup below {MIN_SELECT1_GEOMEAN}x")

try:
    with open(base_path) as f:
        base_doc = json.load(f)
    base = {key(m): m for m in base_doc.get("measurements", []) if "rank1_speedup" in m}
except FileNotFoundError:
    base = {}
    print(f"note: no baseline at {base_path}, skipping regression diff")

for m in rows:
    b = base.get(key(m))
    if b is None:
        continue
    for op in OPS:
        cur, ref = m[f"{op}_speedup"], b[f"{op}_speedup"]
        if ref > 0 and cur < ref * (1.0 - MAX_RATIO_REGRESSION):
            failed = True
            print(
                f"FAIL: n={m['n_bits']} density=1/{m['inv_density']} {op}: "
                f"speedup {cur:.2f}x is >{MAX_RATIO_REGRESSION:.0%} below "
                f"baseline {ref:.2f}x"
            )

sys.exit(1 if failed else 0)

#!/usr/bin/env python3
"""Gate the sampling profiler's cost and coverage.

Two hard limits:

  - BENCH_prof.json: running the sampler (labels + contention
    accounting + the sampler domain) may cost at most
    MAX_OVERHEAD_PCT of xmark count throughput.  The profiler is
    meant to stay on in production; if it gets expensive, that
    promise is broken and the build fails.

  - BENCH_xmark.json (when run with --profile): at most
    MAX_UNATTRIBUTED_PCT of sampled wall time may fall outside any
    journal span.  Rising unattributed time means a hot path lost its
    span coverage, which silently blinds every profile.

Timing noise makes single-run overhead jitter by a few percent in
either direction (negative values just mean noise), so the overhead
limit leaves headroom over the observed steady state (<1%).
"""

import json
import sys

MAX_OVERHEAD_PCT = 3.0
MAX_UNATTRIBUTED_PCT = 10.0


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} BENCH_prof.json BENCH_xmark.json")

    prof = json.load(open(sys.argv[1]))
    measurements = prof.get("measurements", [])
    if not measurements:
        fail(f"{sys.argv[1]}: no measurements")
    m = measurements[0]
    overhead = m["overhead_pct"]
    print(
        f"profiler overhead: {overhead:.2f}% "
        f"({m['count_qps_profiler_off']:.0f}/s off, "
        f"{m['count_qps_profiler_on']:.0f}/s on, "
        f"{m['sampler_ticks']} ticks at {m['sampler_hz']} Hz)"
    )
    if overhead > MAX_OVERHEAD_PCT:
        fail(
            f"sampler-on overhead {overhead:.2f}% exceeds "
            f"{MAX_OVERHEAD_PCT:.1f}% on the xmark count workload"
        )

    xmark = json.load(open(sys.argv[2]))
    profile = xmark.get("profile")
    if profile is None:
        fail(f"{sys.argv[2]}: no profile object (bench not run with --profile)")
    unattributed = profile["unattributed_pct"]
    print(f"xmark section unattributed: {unattributed:.1f}% of sampled time")
    for stack in profile.get("stacks", [])[:5]:
        print(f"  {stack['self_ns'] / 1e6:10.1f}ms  {stack['stack']}")
    if unattributed > MAX_UNATTRIBUTED_PCT:
        fail(
            f"unattributed sampled time {unattributed:.1f}% exceeds "
            f"{MAX_UNATTRIBUTED_PCT:.1f}% -- a hot path lost its span coverage"
        )

    print("OK")


if __name__ == "__main__":
    main()

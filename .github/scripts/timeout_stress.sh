#!/usr/bin/env bash
# Timeout stress for `sxsi serve`.
#
# A server with a 50ms default deadline and an injected 80ms delay at
# the engine entry point must answer ERR DEADLINE for every query —
# promptly, not after a hang — and its single worker must survive to
# serve the next connection.  A session that clears the deadline with
# `DEADLINE 0` then gets a healthy answer despite the delay, proving
# the worker was reused rather than replaced or wedged.
set -euo pipefail

if command -v opam > /dev/null 2>&1; then
  opam exec -- dune build bin/sxsi.exe
else
  dune build bin/sxsi.exe
fi
SXSI=_build/default/bin/sxsi.exe

workdir=$(mktemp -d)
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; rm -rf "$workdir"' EXIT

printf '<site><item><v>1</v></item><item><v>2</v></item><item><v>3</v></item></site>\n' \
  > "$workdir/doc.xml"

SXSI_FAILPOINTS="engine.eval=delay:80" \
  "$SXSI" serve -p 0 --workers 1 --timeout 50 \
  --load "doc=$workdir/doc.xml" 2> "$workdir/server.log" &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\)$/\1/p' "$workdir/server.log" | head -1)
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: server never reported a listening port" >&2
  cat "$workdir/server.log" >&2
  exit 1
fi

# ask <line>...: one connection, one request per argument, responses on
# stdout (one line each; QUERY/COUNT answer on a single OK/ERR line).
ask() {
  exec 3<> "/dev/tcp/127.0.0.1/$port"
  local line
  for line in "$@"; do printf '%s\n' "$line" >&3; done
  printf 'QUIT\n' >&3
  head -n "$#" <&3
  exec 3<&- 3>&-
}

start=$(date +%s%N)
resp=$(ask "QUERY doc //item")
elapsed_ms=$(( ($(date +%s%N) - start) / 1000000 ))
echo "deadline response after ${elapsed_ms}ms: $resp"
case "$resp" in
  "ERR DEADLINE"*) ;;
  *) echo "FAIL: expected ERR DEADLINE, got: $resp" >&2; exit 1 ;;
esac
if [ "$elapsed_ms" -ge 2000 ]; then
  echo "FAIL: ERR DEADLINE took ${elapsed_ms}ms; expected a prompt reply" >&2
  exit 1
fi

# Same worker, next connection: clearing the session deadline must let
# the (still delayed) query complete.  COUNT answers on a single OK
# line (QUERY success uses the multi-line DATA form).
resp=$(ask "DEADLINE 0" "COUNT doc //item" | tail -1)
echo "post-clear response: $resp"
case "$resp" in
  "OK"*) ;;
  *) echo "FAIL: worker did not serve a healthy request after a deadline miss: $resp" >&2
     exit 1 ;;
esac

echo "PASS: deadline enforced promptly and worker reused"

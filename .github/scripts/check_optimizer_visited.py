#!/usr/bin/env python3
"""Gate on the whole-query optimizer's visited-node ledger.

The xmark bench section traces every query twice — once on the raw
automaton, once optimized — and records both node-visit counts in its
JSON measurements (visited_noopt / visited_opt).  The optimizer must
never make a query visit MORE nodes, and across the whole battery it
must keep a substantial total reduction (the reproduction target in
EXPERIMENTS.md is ~74%; the gate allows drift down to 30%).

Usage: check_optimizer_visited.py BENCH_xmark.json
"""
import json
import sys

MIN_TOTAL_REDUCTION = 0.30

path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_xmark.json"
with open(path) as f:
    doc = json.load(f)

rows = [m for m in doc.get("measurements", []) if "visited_noopt" in m]
if not rows:
    sys.exit(f"{path}: no measurements with visited_noopt/visited_opt fields")

failed = False
total_off = total_on = 0
for m in rows:
    qid, off, on = m["id"], m["visited_noopt"], m["visited_opt"]
    total_off += off
    total_on += on
    status = "ok"
    if on > off:
        status = "FAIL (optimized run visited more nodes)"
        failed = True
    print(f"{qid}: visited {off} -> {on}  {status}")

reduction = 1.0 - total_on / total_off if total_off else 0.0
print(f"total: visited {total_off} -> {total_on}  ({reduction:.1%} reduction)")
if reduction < MIN_TOTAL_REDUCTION:
    failed = True
    print(f"FAIL: total reduction below {MIN_TOTAL_REDUCTION:.0%}")

sys.exit(1 if failed else 0)

#!/usr/bin/env bash
# Flight-recorder stress for `sxsi serve`.
#
# A server with the journal enabled and a 1ms slow-query threshold
# (every query is made "slow" by an injected 5ms engine delay) must:
#   - write a valid JSON-lines slow-query log whose entries carry the
#     request, its duration, and reconstructed spans;
#   - answer DUMP with a journal payload that `sxsi trace-export`
#     converts into Chrome trace_event JSON holding spans from the
#     engine, pool, and service categories.
# The exported trace is left at $TRACE_OUT (default trace.json) so CI
# can upload it as an artifact.
set -euo pipefail

if command -v opam > /dev/null 2>&1; then
  opam exec -- dune build bin/sxsi.exe
else
  dune build bin/sxsi.exe
fi
SXSI=_build/default/bin/sxsi.exe
TRACE_OUT=${TRACE_OUT:-trace.json}

workdir=$(mktemp -d)
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; rm -rf "$workdir"' EXIT

printf '<site><item><v>1</v></item><item><v>2</v></item><item><v>3</v></item></site>\n' \
  > "$workdir/doc.xml"

# 4 evaluation domains so the pool's task/park spans land in the
# journal; the 5ms injected delay guarantees every query crosses the
# 1ms slow threshold without a deadline in the way.
SXSI_DOMAINS=4 SXSI_FAILPOINTS="engine.eval=delay:5" \
  "$SXSI" serve -p 0 --workers 2 \
  --flight-recorder --slow-ms 1 --slow-log "$workdir/slow.jsonl" \
  --load "doc=$workdir/doc.xml" 2> "$workdir/server.log" &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\)$/\1/p' "$workdir/server.log" | head -1)
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: server never reported a listening port" >&2
  cat "$workdir/server.log" >&2
  exit 1
fi

# ask <line>...: one connection, one request per argument, responses on
# stdout (one line each; COUNT answers on a single OK/ERR line).
ask() {
  exec 3<> "/dev/tcp/127.0.0.1/$port"
  local line
  for line in "$@"; do printf '%s\n' "$line" >&3; done
  printf 'QUIT\n' >&3
  head -n "$#" <&3
  exec 3<&- 3>&-
}

# A burst of queries to populate the journal and the slow log.
for _ in $(seq 1 10); do
  resp=$(ask "COUNT doc //item")
  case "$resp" in
    "OK"*) ;;
    *) echo "FAIL: COUNT answered: $resp" >&2; exit 1 ;;
  esac
done

# Capture the DUMP response raw (DATA framing and all): trace-export
# strips it.
exec 3<> "/dev/tcp/127.0.0.1/$port"
printf 'DUMP\nQUIT\n' >&3
: > "$workdir/dump.txt"
while IFS= read -r l <&3; do
  l=${l%$'\r'}
  printf '%s\n' "$l" >> "$workdir/dump.txt"
  [ "$l" = "." ] && break
done
exec 3<&- 3>&-

kill "$server_pid"
wait "$server_pid" 2> /dev/null || true
server_pid=""

# The slow log must be non-empty valid JSON lines with the documented
# keys, and at least one entry must carry reconstructed spans.
python3 - "$workdir/slow.jsonl" << 'EOF'
import json, sys
entries = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert entries, "slow log is empty"
for e in entries:
    for key in ("ts_ns", "request", "duration_ms", "status"):
        assert key in e, f"slow-log entry missing {key}: {e}"
assert any(e.get("spans") for e in entries), "no entry carries spans"
print(f"slow log OK: {len(entries)} entries")
EOF

# The dump converts to a Chrome trace with spans from every layer.
"$SXSI" trace-export "$workdir/dump.txt" -o "$TRACE_OUT"
python3 - "$TRACE_OUT" << 'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "trace has no events"
cats = {e.get("cat") for e in events if e.get("ph") in ("X", "i")}
for want in ("engine", "pool", "service"):
    assert want in cats, f"no {want} spans in trace (got {sorted(cats)})"
print(f"chrome trace OK: {len(events)} events, categories {sorted(cats)}")
EOF

echo "PASS: slow log valid, trace exported to $TRACE_OUT"

(* The sampling profiler.  [hz] times a second a tick reads every
   domain's current label-path slot (one racy int read each,
   maintained by Sxsi_obs.Journal on span enter/exit) and adds the
   elapsed wall time since the previous tick to each observed path.
   No stack unwinding, no signals, no mutator synchronization: the
   mutator's whole cost is the plain slot store it already pays for
   labelling, and the profile converges statistically.

   Ticks come from one of two backends: a dedicated sampler domain
   (multicore — it parks on its own core), or cooperative ticks taken
   by the working domains at span boundaries (single core — an extra
   domain there makes every minor GC pay a stop-the-world scheduling
   round-trip, ~10% on the count workload even with the domain
   asleep).  [Auto] picks by [Domain.recommended_domain_count].

   Everything accumulated here is monotonic — wall ns per path, tick
   counts, the journal's per-path allocation words, the contention-site
   counters.  A *report* is the difference of two {!snapshot}s, so any
   number of observers (the PROFILE verb, metrics scrapes, the CLI
   --profile flag) can window the same stream without coordinating. *)

module J = Sxsi_obs.Journal
module Clock = Sxsi_obs.Clock
module Contend = Sxsi_obs.Contend
module Json = Sxsi_obs.Json

let default_hz = 997

type sampler_backend = Auto | Dedicated | Cooperative

let hz_setting = Atomic.make default_hz
let backend_setting = ref Auto (* read at [start] *)

let configure ?hz ?sampler () =
  (match hz with
  | Some h -> Atomic.set hz_setting (max 1 (min 10_000 h))
  | None -> ());
  match sampler with Some s -> backend_setting := s | None -> ()

let hz () = Atomic.get hz_setting
let period_ns () = 1_000_000_000 / Atomic.get hz_setting

(* ------------------------------------------------------------------ *)
(* Accumulation                                                         *)
(* ------------------------------------------------------------------ *)

let lock = Mutex.create ()
let wall : int array ref = ref (Array.make 256 0) (* ns per path id *)
let ticks = ref 0

let ensure_wall n =
  if n > Array.length !wall then begin
    let cap = ref (2 * Array.length !wall) in
    while n > !cap do cap := 2 * !cap done;
    let w = Array.make !cap 0 in
    Array.blit !wall 0 w 0 (Array.length !wall);
    wall := w
  end

let sample_now ~weight_ns =
  let slots = J.slot_paths () in
  Mutex.protect lock (fun () ->
      ensure_wall (J.path_count ());
      List.iter
        (fun (_domain, p) ->
          if p >= 0 && p < Array.length !wall then
            !wall.(p) <- !wall.(p) + weight_ns)
        slots;
      incr ticks)

(* ------------------------------------------------------------------ *)
(* The sampler domain                                                   *)
(* ------------------------------------------------------------------ *)

let running_flag = Atomic.make false
let stop_flag = Atomic.make false
let sampler : unit Domain.t option ref = ref None (* under [lock] *)

let sampler_loop () =
  let last = ref (Clock.now_ns ()) in
  while not (Atomic.get stop_flag) do
    Unix.sleepf (1.0 /. float_of_int (Atomic.get hz_setting));
    let now = Clock.now_ns () in
    sample_now ~weight_ns:(Clock.diff_ns ~from:!last ~until:now);
    last := now
  done

(* Cooperative backend: no sampler context at all.  The working
   domains call {!coop_tick} from every span boundary (via the journal
   tick hook); whichever domain first crosses the shared deadline
   claims the tick by CAS and attributes the elapsed interval to every
   slot's current path.  [coop_next] is [max_int] while the backend is
   off, so the hook costs one atomic load when a dedicated sampler is
   running instead.

   Attribution stays correct even when no boundary fires for a long
   time: the pending interval is flushed in {!snapshot}, and
   [sample_now] weights by real elapsed time, so a domain that sat in
   one span for the whole window gets the whole window. *)
let coop_next = Atomic.make max_int (* ns deadline of the next tick *)
let coop_last = Atomic.make 0       (* ns of the last taken tick *)

let coop_take deadline =
  let now = Clock.now_ns () in
  if Atomic.compare_and_set coop_next deadline (now + period_ns ()) then begin
    let last = Atomic.exchange coop_last now in
    sample_now ~weight_ns:(Clock.diff_ns ~from:last ~until:now)
  end

let coop_tick () =
  let deadline = Atomic.get coop_next in
  if deadline <> max_int && Clock.now_ns () >= deadline then coop_take deadline

(* Flush the interval since the last cooperative tick (no-op for the
   dedicated backend).  Called on snapshot so a report window's tail
   is attributed even if span traffic stopped. *)
let coop_flush () =
  let deadline = Atomic.get coop_next in
  if deadline <> max_int then coop_take deadline

let running () = Atomic.get running_flag

(* A dedicated sampler domain is near-free when it has its own core,
   but on a single-core machine every additional domain makes each
   minor collection pay a stop-the-world scheduling round-trip —
   measured at ~10% on the count workload with the domain entirely
   asleep.  Auto picks the cooperative backend there. *)
let want_dedicated () =
  match !backend_setting with
  | Dedicated -> true
  | Cooperative -> false
  | Auto -> Domain.recommended_domain_count () > 1

let start () =
  if Atomic.compare_and_set running_flag false true then begin
    Atomic.set stop_flag false;
    J.set_labels_enabled true;
    Contend.set_enabled true;
    if want_dedicated () then begin
      let d = Domain.spawn sampler_loop in
      Mutex.protect lock (fun () -> sampler := Some d)
    end
    else begin
      let now = Clock.now_ns () in
      Atomic.set coop_last now;
      Atomic.set coop_next (now + period_ns ());
      J.set_tick_hook coop_tick
    end
  end

let ensure_started () = if not (running ()) then start ()

let stop () =
  if Atomic.compare_and_set running_flag true false then begin
    Atomic.set stop_flag true;
    (match Mutex.protect lock (fun () -> let d = !sampler in sampler := None; d) with
    | Some d -> Domain.join d
    | None -> ());
    coop_flush ();
    J.clear_tick_hook ();
    Atomic.set coop_next max_int;
    J.set_labels_enabled false;
    Contend.set_enabled false
  end

(* ------------------------------------------------------------------ *)
(* Snapshots and reports                                                *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  sn_ts : int;
  sn_ticks : int;
  sn_wall : int array;
  sn_minor : float array;
  sn_major : float array;
  sn_wait : int array;                              (* contended ns per path *)
  sn_sites : (string * int * int * int) list;
}

let wait_array n =
  let a = Array.make n 0 in
  List.iter (fun (p, ns) -> if p >= 0 && p < n then a.(p) <- a.(p) + ns)
    (Contend.wait_by_path ());
  a

let snapshot () =
  coop_flush ();
  let n = J.path_count () in
  let w, t =
    Mutex.protect lock (fun () ->
        (Array.init n (fun p -> if p < Array.length !wall then !wall.(p) else 0), !ticks))
  in
  let minor, major = J.alloc_snapshot () in
  let pad a = if Array.length a >= n then a else Array.init n (fun p -> if p < Array.length a then a.(p) else 0.0) in
  {
    sn_ts = Clock.now_ns ();
    sn_ticks = t;
    sn_wall = w;
    sn_minor = pad minor;
    sn_major = pad major;
    sn_wait = wait_array n;
    sn_sites = Contend.stats ();
  }

type entry = {
  e_stack : string list;
  e_self_ns : int;
  e_minor : float;
  e_major : float;
  e_wait_ns : int;
}

type report = {
  r_duration_ns : int;
  r_ticks : int;
  r_hz : int;
  r_total_ns : int;             (* attributed + unattributed wall *)
  r_unattributed_ns : int;
  r_entries : entry list;       (* path 0 excluded; self-time descending *)
  r_sites : (string * int * int * int) list;
}

let report ~since () =
  let now = snapshot () in
  let n = Array.length now.sn_wall in
  let di a b p = b.(p) - (if p < Array.length a then a.(p) else 0) in
  let df a b p = b.(p) -. (if p < Array.length a then a.(p) else 0.0) in
  let entries = ref [] in
  let total = ref 0 in
  for p = n - 1 downto 1 do
    let self = di since.sn_wall now.sn_wall p in
    let minor = df since.sn_minor now.sn_minor p in
    let major = df since.sn_major now.sn_major p in
    let wait = di since.sn_wait now.sn_wait p in
    total := !total + max 0 self;
    if self > 0 || wait > 0 || minor > 1.0 || major > 1.0 then
      entries :=
        { e_stack = J.path_parts p; e_self_ns = max 0 self; e_minor = minor;
          e_major = major; e_wait_ns = max 0 wait }
        :: !entries
  done;
  let unattributed = max 0 (di since.sn_wall now.sn_wall 0) in
  let site_diff =
    List.map
      (fun (nm, a, c, w) ->
        match List.find_opt (fun (nm', _, _, _) -> nm' = nm) since.sn_sites with
        | Some (_, a0, c0, w0) -> (nm, a - a0, c - c0, w - w0)
        | None -> (nm, a, c, w))
      now.sn_sites
  in
  {
    r_duration_ns = Clock.diff_ns ~from:since.sn_ts ~until:now.sn_ts;
    r_ticks = now.sn_ticks - since.sn_ticks;
    r_hz = Atomic.get hz_setting;
    r_total_ns = !total + unattributed;
    r_unattributed_ns = unattributed;
    r_entries =
      List.sort (fun x y -> compare y.e_self_ns x.e_self_ns) !entries;
    r_sites = site_diff;
  }

let unattributed_pct r =
  if r.r_total_ns <= 0 then 0.0
  else 100.0 *. float_of_int r.r_unattributed_ns /. float_of_int r.r_total_ns

(* ------------------------------------------------------------------ *)
(* Renderings                                                           *)
(* ------------------------------------------------------------------ *)

let fold_stack stack = String.concat ";" stack

(* collapsed-stack format: one line per distinct stack, the value is
   self time in microseconds (flamegraph.pl / inferno / speedscope all
   take these verbatim) *)
let to_folded r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      if e.e_self_ns > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n" (fold_stack e.e_stack) (e.e_self_ns / 1000)))
    r.r_entries;
  if r.r_unattributed_ns > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(unattributed) %d\n" (r.r_unattributed_ns / 1000));
  Buffer.contents buf

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "sxsi-prof-v1");
      ("duration_ns", Json.Int r.r_duration_ns);
      ("ticks", Json.Int r.r_ticks);
      ("hz", Json.Int r.r_hz);
      ("total_ns", Json.Int r.r_total_ns);
      ("unattributed_ns", Json.Int r.r_unattributed_ns);
      ( "stacks",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("stack", Json.List (List.map (fun s -> Json.String s) e.e_stack));
                   ("self_ns", Json.Int e.e_self_ns);
                   ("minor_words", Json.Float e.e_minor);
                   ("major_words", Json.Float e.e_major);
                   ("wait_ns", Json.Int e.e_wait_ns);
                 ])
             r.r_entries) );
      ( "contention",
        Json.List
          (List.map
             (fun (nm, a, c, w) ->
               Json.Obj
                 [
                   ("site", Json.String nm);
                   ("acquires", Json.Int a);
                   ("contended", Json.Int c);
                   ("wait_ns", Json.Int w);
                 ])
             r.r_sites) );
    ]

let to_table ?(top = 10) r =
  let buf = Buffer.create 512 in
  let pct ns =
    if r.r_total_ns <= 0 then 0.0
    else 100.0 *. float_of_int ns /. float_of_int r.r_total_ns
  in
  Buffer.add_string buf
    (Printf.sprintf "profile: %.2fs sampled at %d Hz (%d ticks), %.1f%% unattributed\n"
       (float_of_int r.r_duration_ns /. 1e9)
       r.r_hz r.r_ticks (unattributed_pct r));
  Buffer.add_string buf
    (Printf.sprintf "%10s %6s %12s %10s  %s\n" "SELF" "%" "MINOR_WORDS" "WAIT_MS" "STACK");
  let rec take k = function
    | e :: tl when k > 0 ->
      Buffer.add_string buf
        (Printf.sprintf "%9.3fs %5.1f%% %12.0f %10.2f  %s\n"
           (float_of_int e.e_self_ns /. 1e9)
           (pct e.e_self_ns) e.e_minor
           (float_of_int e.e_wait_ns /. 1e6)
           (fold_stack e.e_stack));
      take (k - 1) tl
    | _ -> ()
  in
  take top r.r_entries;
  (match r.r_sites with
  | [] -> ()
  | sites ->
    Buffer.add_string buf "locks:\n";
    List.iter
      (fun (nm, a, c, w) ->
        if a > 0 then
          Buffer.add_string buf
            (Printf.sprintf "  %-24s %d acquires, %d contended, %.2fms waited\n" nm a c
               (float_of_int w /. 1e6)))
      sites);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prometheus                                                           *)
(* ------------------------------------------------------------------ *)

let register_metrics ?(prefix = "sxsi_prof") e =
  let module E = Sxsi_obs.Exposition in
  E.register_gauge e ~help:"1 while the sampling profiler is running"
    ~name:(prefix ^ "_running")
    (fun () -> if running () then 1.0 else 0.0);
  E.register_gauge e ~help:"Configured sampler frequency"
    ~name:(prefix ^ "_hz")
    (fun () -> float_of_int (Atomic.get hz_setting));
  E.register_callback_counter e ~help:"Sampler ticks taken"
    ~name:(prefix ^ "_ticks_total")
    (fun () -> float_of_int (Mutex.protect lock (fun () -> !ticks)));
  E.register_callback_counter e
    ~help:"Sampled wall seconds on no span (idle or unspanned code)"
    ~name:(prefix ^ "_unattributed_seconds_total")
    (fun () -> float_of_int (Mutex.protect lock (fun () -> !wall.(0))) /. 1e9);
  E.register_multi_gauge e
    ~help:"Sampled wall seconds by root span label"
    ~name:(prefix ^ "_wall_seconds_total")
    (fun () ->
      let n = J.path_count () in
      let by_root : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
      let w = Mutex.protect lock (fun () -> Array.copy !wall) in
      for p = 1 to min n (Array.length w) - 1 do
        if w.(p) > 0 then begin
          match J.path_parts p with
          | [] -> ()
          | root :: _ ->
            let cell =
              match Hashtbl.find_opt by_root root with
              | Some c -> c
              | None -> let c = ref 0.0 in Hashtbl.add by_root root c; c
            in
            cell := !cell +. (float_of_int w.(p) /. 1e9)
        end
      done;
      Hashtbl.fold (fun root c l -> ([ ("root", root) ], !c) :: l) by_root []);
  E.register_multi_gauge e ~help:"Lock acquires by contention site"
    ~name:(prefix ^ "_lock_acquires")
    (fun () ->
      List.map (fun (nm, a, _, _) -> ([ ("site", nm) ], float_of_int a)) (Contend.stats ()));
  E.register_multi_gauge e ~help:"Contended lock acquires by contention site"
    ~name:(prefix ^ "_lock_contended")
    (fun () ->
      List.map (fun (nm, _, c, _) -> ([ ("site", nm) ], float_of_int c)) (Contend.stats ()));
  E.register_multi_gauge e ~help:"Seconds waited on contended locks by site"
    ~name:(prefix ^ "_lock_wait_seconds")
    (fun () ->
      List.map
        (fun (nm, _, _, w) -> ([ ("site", nm) ], float_of_int w /. 1e9))
        (Contend.stats ()))

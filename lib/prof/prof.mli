(** An always-on sampling profiler with wall-clock, contention and
    allocation attribution.

    A tick fires {!hz} times a second and reads each domain's current
    label path — the chain of open journal spans, maintained by
    [Sxsi_obs.Journal] with one plain int store per span enter/exit.
    Every tick adds the elapsed wall time to each domain's current
    path, so paths accumulate {e self} time: exactly the
    collapsed-stack semantics flamegraph tooling expects.  There is no
    stack unwinding and no mutator synchronization; overhead is the
    label stores plus the tick source.

    Ticks come from one of two backends (see {!sampler_backend}): a
    dedicated sampler domain when spare cores exist, or — on a
    single-core machine, where any extra domain makes each minor GC
    pay a stop-the-world scheduling round-trip — cooperative ticks
    taken by the working domains themselves at span boundaries.

    Accumulation is monotonic.  A {!report} diffs two {!snapshot}s,
    so concurrent observers (the [PROFILE] service verb, Prometheus
    scrapes, [--profile] on the CLI) window the same stream freely.

    Alongside wall time a report carries, per path, the minor/major
    GC words the path's own code allocated ([Journal.alloc_snapshot])
    and the nanoseconds it spent blocked on instrumented locks
    ([Contend]), plus per-site lock totals. *)

(** {1 Lifecycle} *)

val default_hz : int
(** The default sampling frequency, 997 Hz. *)

(** How ticks are produced.

    [Dedicated] spawns a sampler domain that sleeps between ticks —
    near-free when it can park on its own core, but on a single-core
    machine its mere existence costs ~10% of throughput (every minor
    collection then needs the other domain scheduled to its
    stop-the-world barrier).  [Cooperative] uses no extra execution
    context at all: the working domains check a shared deadline at
    every span boundary and whichever crosses it first takes the tick.
    Tick cadence then follows span traffic, but attribution stays
    correct regardless — each tick weights by real elapsed time, and
    {!snapshot} flushes the pending interval, so a domain that sat in
    one span for a whole quiet window still gets the whole window.
    [Auto] (the default) picks [Dedicated] exactly when
    [Domain.recommended_domain_count () > 1]. *)
type sampler_backend = Auto | Dedicated | Cooperative

val configure : ?hz:int -> ?sampler:sampler_backend -> unit -> unit
(** Set the sampling frequency (clamped to 1..10000; default 997 —
    prime, so it cannot lock onto millisecond-periodic work) and the
    tick backend.  The frequency takes effect from the next tick; the
    backend from the next {!start}. *)

val hz : unit -> int

val start : unit -> unit
(** Enable journal span labelling and contention accounting, then
    start the tick backend.  Idempotent. *)

val ensure_started : unit -> unit
(** {!start} unless already running. *)

val stop : unit -> unit
(** Stop the tick backend and disable labelling/contention
    accounting.  Accumulated profiles are kept. *)

val running : unit -> bool

val sample_now : weight_ns:int -> unit
(** Take one synchronous sample, attributing [weight_ns] to every
    domain's current path.  The sampler calls this on its own ticks;
    tests call it directly to drive a deterministic fake clock. *)

(** {1 Snapshots and reports} *)

type snapshot

val snapshot : unit -> snapshot
(** The current accumulated totals (wall per path, allocation per
    path, contention sites). *)

type entry = {
  e_stack : string list;  (** span names, outermost first *)
  e_self_ns : int;        (** sampled wall time with this exact stack *)
  e_minor : float;        (** minor GC words allocated by this stack's own code *)
  e_major : float;        (** major GC words likewise *)
  e_wait_ns : int;        (** time blocked on instrumented locks here *)
}

type report = {
  r_duration_ns : int;
  r_ticks : int;
  r_hz : int;
  r_total_ns : int;          (** attributed + unattributed sampled wall *)
  r_unattributed_ns : int;   (** sampled time on no span *)
  r_entries : entry list;    (** self-time descending *)
  r_sites : (string * int * int * int) list;
      (** per lock site: name, acquires, contended, wait ns *)
}

val report : since:snapshot -> unit -> report
(** The activity between [since] and now. *)

val unattributed_pct : report -> float
(** Share of sampled time on no span, in percent (0 when nothing was
    sampled). *)

(** {1 Renderings} *)

val to_folded : report -> string
(** Collapsed-stack text: one [root;child;leaf value] line per stack,
    values in microseconds of self time, with a final
    [(unattributed) n] line — pipe into [flamegraph.pl], inferno or
    speedscope. *)

val to_json : report -> Sxsi_obs.Json.t
(** Schema [sxsi-prof-v1]: duration, tick count, per-stack self
    wall/allocation/lock-wait, and per-site contention totals. *)

val to_table : ?top:int -> report -> string
(** Human-readable top-[top] (default 10) self-time table plus lock
    totals — what [--profile] prints on exit. *)

(** {1 Prometheus} *)

val register_metrics : ?prefix:string -> Sxsi_obs.Exposition.t -> unit
(** Register the [sxsi_prof_*] series (sampler state, tick count,
    wall seconds by root span, unattributed seconds, lock-site
    acquire/contended/wait) on an exposition. *)

(** FM-index over a collection of texts (§3 of the paper).

    The collection is conceptually the concatenation
    [T = t_0 $_0 t_1 $_1 ... t_{d-1} $_{d-1}] where each end-marker
    sorts below every content byte and [$_i < $_j] for [i < j], so that
    BWT row [i] is the rotation starting with the terminator of text
    [i-1]'s successor — equivalently, the first [d] rows of the
    conceptual matrix put the terminator of text [z] in column [F] at
    row [z], the ordering §3.2 relies on.

    Content bytes must be in [\[1, 255]]; byte 0 is reserved for the
    end-markers.  Rows and text identifiers are 0-based; row ranges are
    half-open [\[sp, ep)]. *)

type t

val build : ?pool:Sxsi_par.Pool.t -> ?sample_rate:int -> string array -> t
(** [build texts] indexes the collection.  [sample_rate] (default 64)
    is the text-position sampling step [l] governing the
    locate-time/space trade-off.  With a [pool] of size [> 1], the
    BWT/sampling pass and the wavelet-tree build run chunked across the
    pool's domains; the resulting index is identical to the sequential
    build.
    @raise Invalid_argument if a text contains byte 0. *)

val length : t -> int
(** Total length of [T], terminators included. *)

val doc_count : t -> int
val sample_rate : t -> int

(** {1 Backward search} *)

val search : t -> string -> int * int
(** [search t p] is the half-open row range of rows prefixed by [p].
    Empty pattern gives [(0, length t)]. *)

val search_within : t -> string -> int -> int -> int * int
(** [search_within t p sp ep] runs the backward search starting from
    row range [\[sp, ep)] instead of the full range (used by
    [ends-with], §3.2). *)

val count : t -> string -> int
(** Number of occurrences of [p] in the whole collection. *)

val bounds : t -> string -> int * int
(** Like [search], but when the pattern does not occur the returned
    empty range [(sp, sp)] still marks the insertion point: [sp] is the
    number of rows whose rotation is lexicographically smaller than any
    rotation starting with [p] (used by the lexicographic-order
    operators of §3.2). *)

val count_approx : t -> string -> k:int -> int
(** Occurrences of the pattern with up to [k] mismatching positions
    (Hamming distance), via the backtracking extension of the backward
    search sketched in §3.2 (after Lam et al. [41]).  Exponential in
    [k] in the worst case. *)

val search_approx : t -> string -> k:int -> (int * int) list
(** The (disjoint) row ranges of all approximate occurrences. *)

(** {1 Row inspection} *)

val bwt_byte : t -> int -> char
(** BWT symbol of a row; ['\000'] stands for any end-marker. *)

val lf : t -> int -> int
(** Last-to-first mapping.  Must not be applied to an end-marker row
    (raises [Invalid_argument]). *)

val occ : t -> char -> int -> int
(** [occ t c i] is the number of occurrences of [c] in the BWT prefix
    [\[0, i)]. *)

val c_before : t -> char -> int
(** [c_before t c] is the number of symbols of [T] smaller than [c]
    (end-markers count as smaller than every content byte). *)

val dollar_doc : t -> int -> int
(** For a row whose BWT symbol is an end-marker: the identifier of the
    text whose first character that row's suffix starts at. *)

val dollar_count_in : t -> int -> int -> int
(** Number of end-marker rows in a row range. *)

val dollar_index_range : t -> int -> int -> int * int
(** Map a row range to the half-open range of end-marker indexes it
    spans (indexes into the Doc sequence, §3.2). *)

val dollar_doc_at : t -> int -> int
(** The text started at the [j]-th end-marker row (Doc sequence
    access). *)

val iter_dollar_docs : t -> int -> int -> (int -> unit) -> unit
(** Apply a function to the text id of every end-marker row in a row
    range, in row order. *)

(** {1 Locating and extraction} *)

val locate : t -> int -> int
(** Global position in [T] of the suffix at a row (walks backwards to a
    sampled position, [O(l)] steps). *)

val pos_to_text : t -> int -> int * int
(** Map a global position of [T] to [(text id, offset within text)]. *)

val text_start : t -> int -> int
val text_length : t -> int -> int
(** Content length of a text, excluding its terminator. *)

val extract : t -> int -> string
(** Recover the content of a text from the index alone. *)

val space_bits : t -> int

(** {1 Profiling probe}

    A process-global set of counters fed by the hot operations when
    installed.  The disabled path costs one atomic load and branch per
    public call (never per search or locate step), so production
    queries pay a few nanoseconds at most.  Counts are attributed to
    whichever probe is installed when a call finishes, so concurrent
    evaluations sharing the global slot see approximate per-query
    attribution. *)

type probe = {
  search_calls : Sxsi_obs.Counter.t;  (** backward-search invocations *)
  search_steps : Sxsi_obs.Counter.t;  (** pattern characters consumed *)
  locate_calls : Sxsi_obs.Counter.t;  (** [locate] invocations *)
  locate_steps : Sxsi_obs.Counter.t;  (** LF steps walked to a sample *)
  locate_ns : Sxsi_obs.Counter.t;     (** wall time inside [locate] *)
  extract_calls : Sxsi_obs.Counter.t; (** [extract] invocations *)
  extract_ns : Sxsi_obs.Counter.t;    (** wall time inside [extract] *)
}

val create_probe : unit -> probe
(** A probe with all counters at zero. *)

val set_probe : probe option -> unit
(** Install (or with [None] remove) the process-global probe. *)

val current_probe : unit -> probe option
(** The probe currently installed, if any. *)

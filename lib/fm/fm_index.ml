open Sxsi_bits

(* ------------------------------------------------------------------ *)
(* Profiling probe: a handful of atomic counters, installed globally.  *)
(* The disabled path costs one atomic load and branch per public call  *)
(* (never per backward-search or locate step), so it can stay in the   *)
(* hot functions permanently.                                          *)
(* ------------------------------------------------------------------ *)

type probe = {
  search_calls : Sxsi_obs.Counter.t;
  search_steps : Sxsi_obs.Counter.t;
  locate_calls : Sxsi_obs.Counter.t;
  locate_steps : Sxsi_obs.Counter.t;
  locate_ns : Sxsi_obs.Counter.t;
  extract_calls : Sxsi_obs.Counter.t;
  extract_ns : Sxsi_obs.Counter.t;
}

let create_probe () =
  let c = Sxsi_obs.Counter.create in
  {
    search_calls = c ();
    search_steps = c ();
    locate_calls = c ();
    locate_steps = c ();
    locate_ns = c ();
    extract_calls = c ();
    extract_ns = c ();
  }

let active_probe : probe option Atomic.t = Atomic.make None

let set_probe p = Atomic.set active_probe p
let current_probe () = Atomic.get active_probe

(* Build-phase spans: the FM build dominates indexing time, and these
   give the sampling profiler named cost centers for its phases (the
   fill span runs on pool worker domains under their task span). *)
module J = Sxsi_obs.Journal

let n_build = J.name "fm/build"
let n_sais = J.name "fm/sais"
let n_fill = J.name "fm/bwt_fill"
let n_wavelet = J.name "fm/wavelet"

type t = {
  bwt : Wavelet.t;                (* BWT of T, '\000' for end-markers *)
  c : int array;                  (* c.(b) = symbols of T smaller than byte b *)
  n : int;
  d : int;
  sample_rate : int;
  doc_started : Intvec.t;         (* per $-row (in row order): text starting there *)
  sampled : Bitvec.t;             (* rows whose suffix position is sampled *)
  samples : Intvec.t;             (* global T positions of sampled rows *)
  starts : Sparse.t;              (* start position of each text in T *)
}

(* Minimum collection length before a pool is worth using for the
   BWT/sampling pass. *)
let par_cutoff = 1 lsl 16

let build ?pool ?(sample_rate = 64) texts =
  let d = Array.length texts in
  if d = 0 then invalid_arg "Fm_index.build: empty collection";
  J.with_span J.Engine n_build @@ fun () ->
  let n = Array.fold_left (fun acc s -> acc + String.length s + 1) 0 texts in
  (* Map to an int string where the terminator of text i is the symbol
     i+1 and content byte b is b+d, then append the SA-IS sentinel. *)
  let mapped = Array.make (n + 1) 0 in
  let starts_arr = Array.make d 0 in
  let p = ref 0 in
  Array.iteri
    (fun i s ->
      starts_arr.(i) <- !p;
      String.iter
        (fun ch ->
          if ch = '\000' then invalid_arg "Fm_index.build: NUL byte in text";
          mapped.(!p) <- Char.code ch + d;
          incr p)
        s;
      mapped.(!p) <- i + 1;
      incr p)
    texts;
  let sa = J.with_span J.Engine n_sais (fun () -> Sais.suffix_array mapped (256 + d)) in
  (* Drop the sentinel row, build BWT / samples / $ docs in one pass.
     Each chunk of rows fills a disjoint slice of [bwt_bytes] (single
     byte stores never tear) and returns its own ascending $-doc and
     sampled-position lists, which concatenate in chunk order — so the
     parallel pass reproduces the sequential output exactly. *)
  let bwt_bytes = Bytes.create n in
  let fill lo hi =
    J.with_span J.Engine n_fill @@ fun () ->
    let dollars = ref [] and samples = ref [] in
    for i = hi - 1 downto lo do
      let r = sa.(i + 1) in
      let prev = if r = 0 then n - 1 else r - 1 in
      let v = mapped.(prev) in
      if v <= d then begin
        Bytes.unsafe_set bwt_bytes i '\000';
        (* terminator of text v-1: the suffix at this row starts text
           [v mod d] (text 0 when v = d). *)
        dollars := (v mod d) :: !dollars
      end
      else Bytes.unsafe_set bwt_bytes i (Char.unsafe_chr (v - d));
      if r mod sample_rate = 0 then samples := r :: !samples
    done;
    (!dollars, !samples)
  in
  let chunk_results =
    match pool with
    | Some p when Sxsi_par.Pool.size p > 1 && n >= par_cutoff ->
      let k = min (4 * Sxsi_par.Pool.size p) n in
      let ranges = Array.init k (fun j -> (n * j / k, n * (j + 1) / k)) in
      Array.to_list (Sxsi_par.Pool.map_array p (fun (lo, hi) -> fill lo hi) ranges)
    | _ -> [ fill 0 n ]
  in
  let dollar_docs = List.concat_map fst chunk_results in
  let sample_positions = List.concat_map snd chunk_results in
  let sampled = Bitvec.of_fun n (fun i -> sa.(i + 1) mod sample_rate = 0) in
  let bits_for v =
    let rec go v acc = if v = 0 then max 1 acc else go (v lsr 1) (acc + 1) in
    go v 0
  in
  let pack xs max_value =
    let count = List.length xs in
    let iv = Intvec.make (max 1 count) (bits_for max_value) in
    List.iteri (fun i x -> Intvec.set iv i x) xs;
    iv
  in
  let doc_started = pack dollar_docs (max 1 (d - 1)) in
  let samples = pack sample_positions (max 1 (n - 1)) in
  let bwt =
    J.with_span J.Engine n_wavelet (fun () ->
        Wavelet.of_string ?pool (Bytes.unsafe_to_string bwt_bytes))
  in
  let c = Array.make 257 0 in
  for b = 1 to 256 do
    c.(b) <- c.(b - 1) + Wavelet.count bwt (Char.chr (b - 1))
  done;
  {
    bwt;
    c = Array.sub c 0 256;
    n;
    d;
    sample_rate;
    doc_started;
    sampled;
    samples;
    starts = Sparse.of_sorted ~universe:n starts_arr;
  }

let length t = t.n
let doc_count t = t.d
let sample_rate t = t.sample_rate

let occ t ch i = Wavelet.rank t.bwt ch i
let c_before t ch = t.c.(Char.code ch)
let bwt_byte t i = Wavelet.access t.bwt i

let lf t i =
  let ch = Wavelet.access t.bwt i in
  if ch = '\000' then invalid_arg "Fm_index.lf: end-marker row";
  t.c.(Char.code ch) + Wavelet.rank t.bwt ch i

(* The search/locate loops are the innermost unbounded work in a
   query; they charge the ambient request budget (installed by
   [Sxsi_core.Engine], propagated across pool domains by
   [Sxsi_par.Pool.fork]).  The ambient lookup happens once per public
   call; with no budget installed each loop step pays one branch. *)
let budget_step = function
  | None -> ()
  | Some b -> Sxsi_qos.Budget.check b

let search_within t p sp0 ep0 =
  let bdg = Sxsi_qos.Budget.ambient () in
  let sp = ref sp0 and ep = ref ep0 in
  (try
     for i = String.length p - 1 downto 0 do
       budget_step bdg;
       let ch = p.[i] in
       if ch = '\000' then begin
         sp := 0;
         ep := 0;
         raise Exit
       end;
       let base = t.c.(Char.code ch) in
       let rsp, rep = Wavelet.rank2 t.bwt ch !sp !ep in
       sp := base + rsp;
       ep := base + rep;
       if !ep <= !sp then raise Exit
     done
   with Exit -> ());
  (match Atomic.get active_probe with
  | None -> ()
  | Some pr ->
    Sxsi_obs.Counter.incr pr.search_calls;
    Sxsi_obs.Counter.add pr.search_steps (String.length p));
  if !ep <= !sp then (0, 0) else (!sp, !ep)

let search t p = search_within t p 0 t.n

let bounds t p =
  let sp = ref 0 and ep = ref t.n in
  for i = String.length p - 1 downto 0 do
    let ch = p.[i] in
    if ch = '\000' then invalid_arg "Fm_index.bounds: NUL in pattern";
    let base = t.c.(Char.code ch) in
    let rsp, rep = Wavelet.rank2 t.bwt ch !sp !ep in
    sp := base + rsp;
    ep := base + rep
  done;
  (!sp, !ep)

let count t p =
  let sp, ep = search t p in
  ep - sp

(* Branching backward search: at each pattern position either follow
   the pattern character or, while the mismatch budget lasts, any other
   content byte present in the text.  Distinct spelled-out strings
   occupy disjoint row ranges, so the results never overlap. *)
let search_approx t p ~k =
  if k < 0 then invalid_arg "Fm_index.search_approx: negative budget";
  let present =
    let acc = ref [] in
    for b = 255 downto 1 do
      if Wavelet.count t.bwt (Char.chr b) > 0 then acc := Char.chr b :: !acc
    done;
    Array.of_list !acc
  in
  let results = ref [] in
  let rec go i sp ep budget =
    if ep <= sp then ()
    else if i < 0 then results := (sp, ep) :: !results
    else begin
      let target = p.[i] in
      let step ch =
        let base = t.c.(Char.code ch) in
        let rsp, rep = Wavelet.rank2 t.bwt ch sp ep in
        let sp' = base + rsp and ep' = base + rep in
        if ep' > sp' then begin
          if ch = target then go (i - 1) sp' ep' budget
          else if budget > 0 then go (i - 1) sp' ep' (budget - 1)
        end
      in
      if budget = 0 then (if target <> '\000' then step target)
      else Array.iter step present
    end
  in
  if String.length p > 0 && not (String.contains p '\000') then
    go (String.length p - 1) 0 t.n k;
  !results

let count_approx t p ~k =
  List.fold_left (fun acc (sp, ep) -> acc + (ep - sp)) 0 (search_approx t p ~k)

let dollar_doc t row =
  Intvec.get t.doc_started (Wavelet.rank t.bwt '\000' row)

let dollar_count_in t sp ep =
  let lo, hi = Wavelet.rank2 t.bwt '\000' sp ep in
  hi - lo

let dollar_index_range t sp ep = Wavelet.rank2 t.bwt '\000' sp ep

let dollar_doc_at t j = Intvec.get t.doc_started j

let iter_dollar_docs t sp ep f =
  let lo, hi = Wavelet.rank2 t.bwt '\000' sp ep in
  for j = lo to hi - 1 do
    f (Intvec.get t.doc_started j)
  done

let text_start t i = Sparse.get t.starts i

let text_length t i =
  let s = Sparse.get t.starts i in
  let e = if i + 1 < t.d then Sparse.get t.starts (i + 1) else t.n in
  e - s - 1

let pos_to_text t pos =
  if pos < 0 || pos >= t.n then invalid_arg "Fm_index.pos_to_text";
  let id = Sparse.rank t.starts (pos + 1) - 1 in
  (id, pos - Sparse.get t.starts id)

let locate t row0 =
  let probe = Atomic.get active_probe in
  let bdg = Sxsi_qos.Budget.ambient () in
  let t0 = match probe with None -> 0 | Some _ -> Sxsi_obs.Clock.now_ns () in
  let row = ref row0 and steps = ref 0 and res = ref (-1) in
  while !res < 0 do
    budget_step bdg;
    if Bitvec.get t.sampled !row then
      res := Intvec.get t.samples (Bitvec.rank1 t.sampled !row) + !steps
    else begin
      let ch = Wavelet.access t.bwt !row in
      if ch = '\000' then
        (* reached the first character of a text *)
        res := Sparse.get t.starts (dollar_doc t !row) + !steps
      else begin
        row := t.c.(Char.code ch) + Wavelet.rank t.bwt ch !row;
        incr steps
      end
    end
  done;
  (match probe with
  | None -> ()
  | Some pr ->
    Sxsi_obs.Counter.incr pr.locate_calls;
    Sxsi_obs.Counter.add pr.locate_steps !steps;
    Sxsi_obs.Counter.add pr.locate_ns (Sxsi_obs.Clock.since t0));
  !res

let extract t i =
  if i < 0 || i >= t.d then invalid_arg "Fm_index.extract";
  let probe = Atomic.get active_probe in
  let t0 = match probe with None -> 0 | Some _ -> Sxsi_obs.Clock.now_ns () in
  let buf = Buffer.create 16 in
  (* Row i starts with the terminator of text i; its BWT symbol is the
     last character of text i.  Walk LF back to the text start. *)
  let bdg = Sxsi_qos.Budget.ambient () in
  let row = ref i in
  let continue = ref true in
  while !continue do
    budget_step bdg;
    let ch = Wavelet.access t.bwt !row in
    if ch = '\000' then continue := false
    else begin
      Buffer.add_char buf ch;
      row := t.c.(Char.code ch) + Wavelet.rank t.bwt ch !row
    end
  done;
  let s = Buffer.contents buf in
  (match probe with
  | None -> ()
  | Some pr ->
    Sxsi_obs.Counter.incr pr.extract_calls;
    Sxsi_obs.Counter.add pr.extract_ns (Sxsi_obs.Clock.since t0));
  String.init (String.length s) (fun k -> s.[String.length s - 1 - k])

let space_bits t =
  Wavelet.space_bits t.bwt + (256 * 64)
  + Intvec.space_bits t.doc_started
  + Bitvec.space_bits t.sampled
  + Intvec.space_bits t.samples
  + Sparse.space_bits t.starts

(* A hashed timer wheel on the monotonic clock: [slots] buckets of
   [tick_ms] milliseconds each.  A timer lands in the bucket of its
   deadline tick; firing a bucket walks its list, expiring entries
   whose deadline has passed and keeping the rest (timers further than
   one revolution away) for the next pass.  Cancellation is a flag —
   cancelled entries are dropped lazily when their bucket fires, so
   the common reschedule-on-activity pattern (idle timeouts) is O(1)
   and allocation-light.

   [earliest_ns] is a lower bound on the next live deadline, tightened
   on [schedule] and recomputed by a full scan only when an [advance]
   crosses it without firing anything (a cancelled front timer).  The
   loop uses it to size its poll timeout without scanning the wheel
   every turn. *)

type 'a timer = {
  deadline_ns : int;
  payload : 'a;
  mutable cancelled : bool;
}

type 'a t = {
  tick_ns : int;
  slots : 'a timer list array;
  mutable current_tick : int;  (* next tick to inspect *)
  mutable pending : int;       (* live (non-cancelled) timers *)
  mutable earliest_ns : int;   (* lower bound on the next live deadline *)
}

let create ?(tick_ms = 10) ?(slots = 256) ~now_ns () =
  if tick_ms <= 0 || slots <= 0 then invalid_arg "Wheel.create";
  let tick_ns = tick_ms * 1_000_000 in
  {
    tick_ns;
    slots = Array.make slots [];
    current_tick = now_ns / tick_ns;
    pending = 0;
    earliest_ns = max_int;
  }

let pending t = t.pending

let schedule t ~at_ns payload =
  let timer = { deadline_ns = at_ns; payload; cancelled = false } in
  (* never schedule behind the cursor: late timers fire on the next
     advance *)
  let tick = max (at_ns / t.tick_ns) t.current_tick in
  let slot = tick mod Array.length t.slots in
  t.slots.(slot) <- timer :: t.slots.(slot);
  t.pending <- t.pending + 1;
  if at_ns < t.earliest_ns then t.earliest_ns <- at_ns;
  timer

let cancel t timer =
  if not timer.cancelled then begin
    timer.cancelled <- true;
    t.pending <- t.pending - 1
  end

let rescan_earliest t =
  let best = ref max_int in
  Array.iter
    (List.iter (fun timer ->
         if (not timer.cancelled) && timer.deadline_ns < !best then
           best := timer.deadline_ns))
    t.slots;
  t.earliest_ns <- !best

(* Expired payloads, oldest bucket first.  Buckets keep entries that
   belong to a later revolution of the wheel. *)
let advance t ~now_ns =
  let target = now_ns / t.tick_ns in
  let fired = ref [] in
  let sweep slot =
    let keep = ref [] in
    List.iter
      (fun timer ->
        if timer.cancelled then ()
        else if timer.deadline_ns <= now_ns then begin
          t.pending <- t.pending - 1;
          fired := timer.payload :: !fired
        end
        else keep := timer :: !keep)
      t.slots.(slot);
    t.slots.(slot) <- !keep
  in
  while t.current_tick < target do
    sweep (t.current_tick mod Array.length t.slots);
    t.current_tick <- t.current_tick + 1
  done;
  (* the still-elapsing tick: fire what is already due, but keep the
     cursor on its bucket so a timer due later in this same tick is
     seen again rather than stranded for a whole revolution *)
  sweep (t.current_tick mod Array.length t.slots);
  if t.pending = 0 then t.earliest_ns <- max_int
  else if t.earliest_ns <= now_ns then rescan_earliest t;
  List.rev !fired

(* Milliseconds until the next live timer could fire; [None] when
   nothing is pending.  A lower bound: cancelled timers can make the
   loop wake early, never late. *)
let next_delay_ms t ~now_ns =
  if t.pending = 0 then None
  else Some (max 0 ((t.earliest_ns - now_ns + 999_999) / 1_000_000))

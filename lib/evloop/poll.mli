(** Readiness polling for the event loop: a {!poll}(2) binding with a
    [Unix.select] fallback.

    The loop registers interest per file descriptor and asks which are
    ready; both backends speak the same three readiness bits.  The
    poll(2) backend has no [FD_SETSIZE] ceiling and is the default;
    the select fallback exists for platforms without the stub and for
    differential testing ([SXSI_EVLOOP_POLL=select]). *)

type backend = Poll_syscall | Select

val backend : unit -> backend
(** The backend in use: poll(2) unless the [SXSI_EVLOOP_POLL]
    environment variable says [select]. *)

val ev_read : int
(** Interest/readiness bit 1: readable (or peer hung up). *)

val ev_write : int
(** Interest/readiness bit 2: writable. *)

val ev_error : int
(** Readiness-only bit 4: error, hangup or invalid fd. *)

type t
(** A reusable registration table: fds with interest masks.  Not
    thread-safe; owned by the loop. *)

val create : unit -> t

val set : t -> Unix.file_descr -> int -> unit
(** [set t fd interest] registers [fd] with the given interest mask
    (combination of {!ev_read}/{!ev_write}), replacing any previous
    registration.  An interest of [0] keeps the fd registered but
    dormant. *)

val remove : t -> Unix.file_descr -> unit

val cardinal : t -> int

val wait : t -> timeout_ms:int -> (Unix.file_descr -> int -> unit) -> int
(** Wait until some registered fd is ready or the timeout (in
    milliseconds; [-1] = infinite, [0] = non-blocking) elapses, then
    call the callback once per ready fd with its readiness mask.
    Returns the number of ready fds ([0] on timeout or [EINTR]).  The
    callback must not call {!set}/{!remove} for fds other than the one
    it was invoked for. *)

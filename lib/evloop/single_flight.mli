(** Single-flight coalescing of identical in-flight work.

    The first joiner of a key becomes the {e leader} and carries the
    evaluation; later joiners attach as waiters and receive the
    leader's result verbatim on {!complete} — error results included,
    so a stampede on a query that trips its budget costs one
    evaluation and fans the same [ERR] to every connection.

    Keys are opaque strings (the service keys on verb, document,
    generation-independent name, query text, and the session's
    effective deadline).  ['w] is whatever the caller needs to deliver
    a result to one waiter.  Not thread-safe; owned by the loop. *)

type 'w t
type 'w entry

val create : unit -> 'w t

type 'w outcome =
  | Leader of 'w entry
      (** a fresh entry: the caller owes it an evaluation and a
          {!complete} *)
  | Attached  (** joined an in-flight entry; no work to do *)

val join : 'w t -> key:string -> group:string -> 'w -> 'w outcome
(** Attach [w] under [key].  [group] tags the entry for {!seal_group}
    (the service uses the document name). *)

val complete : 'w t -> 'w entry -> 'w list
(** The entry's waiters in join order (the leader's waiter first),
    removing the entry from the table.  Completion goes through the
    entry handle so sealed entries — already out of the table — still
    fan out. *)

val seal_group : 'w t -> string -> unit
(** Stop coalescing into every in-flight entry of this group: existing
    waiters keep their pending fan-out, but subsequent {!join}s with
    the same keys start fresh evaluations.  Called when a mutation
    (reload/evict) of the group is enqueued, so coalescing never
    crosses a write. *)

val key : 'w entry -> string
val in_flight : 'w t -> int
val leaders_total : 'w t -> int
val coalesced_total : 'w t -> int
val seals_total : 'w t -> int

val leaders_counter : 'w t -> Sxsi_obs.Counter.t
val coalesced_counter : 'w t -> Sxsi_obs.Counter.t

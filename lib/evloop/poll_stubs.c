/* poll(2) binding for the event loop.
 *
 * The OCaml side passes parallel int arrays (fds, interest masks) and
 * a preallocated revents array; the stub copies them into a C pollfd
 * array, releases the runtime lock for the blocking call, and writes
 * the readiness masks back.  Interest/readiness bits are the ones
 * Sxsi_evloop.Poll documents: 1 = readable, 2 = writable, 4 = error
 * or hangup.  All values are immediate ints, so no caml_modify is
 * needed when writing results.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>

#define SXSI_EV_READ 1
#define SXSI_EV_WRITE 2
#define SXSI_EV_ERROR 4

/* Small registrations poll from a stack buffer; big ones allocate. */
#define SXSI_POLL_STACK 128

CAMLprim value sxsi_evloop_poll(value v_fds, value v_events, value v_revents,
                                value v_nfds, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_nfds, v_timeout_ms);
  int n = Int_val(v_nfds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd stack_pfds[SXSI_POLL_STACK];
  struct pollfd *pfds = stack_pfds;
  int i, rc;

  if (n < 0 || n > Wosize_val(v_fds) || n > Wosize_val(v_events)
      || n > Wosize_val(v_revents))
    caml_invalid_argument("Sxsi_evloop.Poll: inconsistent array sizes");

  if (n > SXSI_POLL_STACK) {
    pfds = malloc((size_t)n * sizeof(struct pollfd));
    if (pfds == NULL) caml_raise_out_of_memory();
  }

  for (i = 0; i < n; i++) {
    int interest = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = 0;
    if (interest & SXSI_EV_READ) pfds[i].events |= POLLIN;
    if (interest & SXSI_EV_WRITE) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  rc = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (rc < 0) {
    int err = errno;
    if (pfds != stack_pfds) free(pfds);
    if (err == EINTR) CAMLreturn(Val_int(0));
    caml_unix_error(err, "poll", Nothing);
  }

  for (i = 0; i < n; i++) {
    int r = 0;
    if (pfds[i].revents & (POLLIN | POLLHUP)) r |= SXSI_EV_READ;
    if (pfds[i].revents & POLLOUT) r |= SXSI_EV_WRITE;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) r |= SXSI_EV_ERROR;
    Field(v_revents, i) = Val_int(r);
  }

  if (pfds != stack_pfds) free(pfds);
  CAMLreturn(Val_int(rc));
}

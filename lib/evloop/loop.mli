(** The event loop: readiness callbacks over {!Poll}, timer callbacks
    over {!Wheel}, and a thread-safe {!post} queue with a self-pipe
    wakeup.

    One domain owns the loop and calls everything except {!post},
    which any thread may call to hand a closure to the loop (executor
    domains post completions this way).  Each turn drains posted
    closures, fires due timers, then polls with a timeout bounded by
    the nearest timer (and capped so [stop] is rechecked while
    idle). *)

type t

val create : unit -> t
(** Allocates the self-pipe; pair with {!close}. *)

val close : t -> unit
(** Close the self-pipe.  Registered fds belong to the caller. *)

(** {1 Readiness} *)

val register :
  t -> Unix.file_descr -> interest:int -> on_event:(int -> unit) -> unit
(** Watch [fd] for the {!Poll.ev_read}/{!Poll.ev_write} bits of
    [interest]; [on_event] receives the fired readiness mask (which
    may include {!Poll.ev_error}).  Re-registering replaces the
    handler. *)

val set_interest : t -> Unix.file_descr -> int -> unit
(** Change what an fd is watched for; no-op on unregistered fds.
    Interest [0] keeps the registration but polls for nothing — how a
    connection above its write high-water mark stops reading. *)

val interest : t -> Unix.file_descr -> int
(** Current interest bits; [0] when unregistered. *)

val unregister : t -> Unix.file_descr -> unit
(** Forget [fd] (does not close it).  Safe during dispatch: a pending
    event for an fd unregistered this turn is dropped. *)

val registered : t -> int
(** Watched fds, excluding the loop's own self-pipe. *)

(** {1 Timers} *)

val timer_at : t -> at_ns:int -> (unit -> unit) -> (unit -> unit) Wheel.timer
(** Run a callback at an absolute {!Sxsi_obs.Clock} deadline. *)

val cancel_timer : t -> (unit -> unit) Wheel.timer -> unit

(** {1 Cross-thread handoff} *)

val post : t -> (unit -> unit) -> unit
(** Enqueue a closure for the loop to run at the top of its next turn,
    waking it if it is parked in poll.  The only thread-safe entry
    point. *)

(** {1 Running} *)

val run : ?stop:(unit -> bool) -> t -> unit
(** Turn the loop until [stop] returns [true] (checked at least every
    200ms) or {!stop} is called from a callback. *)

val stop : t -> unit
(** Make {!run} return after the current turn.  Loop-thread only; from
    another thread, [post] a closure that calls it. *)

(** {1 Introspection} *)

val turns_total : t -> int
val wakeups_total : t -> int
val timers_fired_total : t -> int

val turns_counter : t -> Sxsi_obs.Counter.t
val wakeups_counter : t -> Sxsi_obs.Counter.t

(* The event loop: a registration table over {!Poll}, a {!Wheel} of
   timer callbacks, and a thread-safe [post] queue with a self-pipe
   wakeup, run single-threaded by one owning domain.

   Each turn: drain posted closures, fire due timers, size the poll
   timeout from the wheel (capped so [stop] is polled even when idle),
   wait, dispatch readiness callbacks.  Everything except [post] must
   be called from the owning domain. *)

module Counter = Sxsi_obs.Counter
module J = Sxsi_obs.Journal

let n_turn = J.name "evloop/turn"
let n_wakeup = J.name "evloop/wakeup"

(* Cap on the poll timeout so [stop] is checked regularly. *)
let max_timeout_ms = 200

type handler = {
  mutable interest : int;
  on_event : int -> unit;  (* readiness mask (Poll.ev_* bits) *)
}

type t = {
  poll : Poll.t;
  handlers : (Unix.file_descr, handler) Hashtbl.t;
  wheel : (unit -> unit) Wheel.t;
  posted : (unit -> unit) Queue.t;
  posted_lock : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  wake_armed : bool Atomic.t;  (* a wake byte is already in the pipe *)
  turns : Counter.t;           (* loop iterations *)
  wakeups : Counter.t;         (* cross-thread wakeup bytes consumed *)
  timers_fired : Counter.t;
  mutable stopped : bool;
}

let create () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      poll = Poll.create ();
      handlers = Hashtbl.create 64;
      wheel = Wheel.create ~now_ns:(Sxsi_obs.Clock.now_ns ()) ();
      posted = Queue.create ();
      posted_lock = Mutex.create ();
      wake_r;
      wake_w;
      wake_armed = Atomic.make false;
      turns = Counter.create ();
      wakeups = Counter.create ();
      timers_fired = Counter.create ();
      stopped = false;
    }
  in
  (* the self-pipe is an ordinary registration: drain it and disarm *)
  Hashtbl.replace t.handlers wake_r
    {
      interest = Poll.ev_read;
      on_event =
        (fun _ ->
          let buf = Bytes.create 64 in
          (try
             while Unix.read wake_r buf 0 64 > 0 do
               ()
             done
           with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
          Atomic.set t.wake_armed false;
          Counter.incr t.wakeups;
          J.instant J.Evloop n_wakeup ());
    };
  Poll.set t.poll wake_r Poll.ev_read;
  t

let close t =
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

let register t fd ~interest ~on_event =
  Hashtbl.replace t.handlers fd { interest; on_event };
  Poll.set t.poll fd interest

let set_interest t fd interest =
  match Hashtbl.find_opt t.handlers fd with
  | None -> ()
  | Some h ->
    if h.interest <> interest then begin
      h.interest <- interest;
      Poll.set t.poll fd interest
    end

let interest t fd =
  match Hashtbl.find_opt t.handlers fd with Some h -> h.interest | None -> 0

let unregister t fd =
  Hashtbl.remove t.handlers fd;
  Poll.remove t.poll fd

let registered t = Hashtbl.length t.handlers - 1 (* minus the self-pipe *)

let timer_at t ~at_ns f = Wheel.schedule t.wheel ~at_ns f
let cancel_timer t timer = Wheel.cancel t.wheel timer

let post t f =
  Mutex.protect t.posted_lock (fun () -> Queue.push f t.posted);
  (* one byte in the pipe is enough to interrupt any number of turns *)
  if not (Atomic.exchange t.wake_armed true) then
    try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
      -> ()

let drain_posted t =
  let batch =
    Mutex.protect t.posted_lock (fun () ->
        let b = Queue.copy t.posted in
        Queue.clear t.posted;
        b)
  in
  let n = Queue.length batch in
  Queue.iter (fun f -> f ()) batch;
  n

let turns_total t = Counter.get t.turns
let wakeups_total t = Counter.get t.wakeups
let timers_fired_total t = Counter.get t.timers_fired
let turns_counter t = t.turns
let wakeups_counter t = t.wakeups

let run ?(stop = fun () -> false) t =
  t.stopped <- false;
  while not (t.stopped || stop ()) do
    Counter.incr t.turns;
    let posted = drain_posted t in
    let now = Sxsi_obs.Clock.now_ns () in
    let due = Wheel.advance t.wheel ~now_ns:now in
    List.iter
      (fun f ->
        Counter.incr t.timers_fired;
        f ())
      due;
    let timeout =
      let pending_posts = Mutex.protect t.posted_lock (fun () -> Queue.length t.posted) in
      if pending_posts > 0 then 0
      else
        match Wheel.next_delay_ms t.wheel ~now_ns:(Sxsi_obs.Clock.now_ns ()) with
        | Some d -> min d max_timeout_ms
        | None -> max_timeout_ms
    in
    J.begin_span J.Evloop n_turn ();
    let fired =
      Poll.wait t.poll ~timeout_ms:timeout (fun fd readiness ->
          match Hashtbl.find_opt t.handlers fd with
          | Some h -> h.on_event readiness
          | None -> ())
    in
    J.end_span J.Evloop n_turn ~a:fired ~b:posted ()
  done

let stop t = t.stopped <- true

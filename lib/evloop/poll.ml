type backend = Poll_syscall | Select

(* Read per call (it is one environment lookup per loop turn): tests
   flip SXSI_EVLOOP_POLL with [Unix.putenv] to drive both backends in
   one process. *)
let backend () =
  match Sys.getenv_opt "SXSI_EVLOOP_POLL" with
  | Some "select" -> Select
  | Some _ | None -> Poll_syscall

let ev_read = 1
let ev_write = 2
let ev_error = 4

(* The stub reads the fd array with Int_val: on Unix a file_descr is an
   immediate int, so the arrays cross the boundary without copying. *)
external poll_stub :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "sxsi_evloop_poll"

type slot = { mutable interest : int; mutable idx : int }

type t = {
  tbl : (Unix.file_descr, slot) Hashtbl.t;
  mutable fds : Unix.file_descr array;      (* packed registrations *)
  mutable events : int array;               (* interest masks, same index *)
  mutable revents : int array;              (* readiness out-param *)
  mutable n : int;
  mutable dirty : bool;                     (* packed arrays need a rebuild *)
}

let create () =
  {
    tbl = Hashtbl.create 64;
    fds = [||];
    events = [||];
    revents = [||];
    n = 0;
    dirty = false;
  }

let set t fd interest =
  match Hashtbl.find_opt t.tbl fd with
  | Some s ->
    s.interest <- interest;
    if not t.dirty then t.events.(s.idx) <- interest
  | None ->
    Hashtbl.add t.tbl fd { interest; idx = -1 };
    t.dirty <- true

let remove t fd =
  if Hashtbl.mem t.tbl fd then begin
    Hashtbl.remove t.tbl fd;
    t.dirty <- true
  end

let cardinal t = Hashtbl.length t.tbl

let rebuild t =
  let n = Hashtbl.length t.tbl in
  if Array.length t.fds < n then begin
    let cap = max 16 (max n (2 * Array.length t.fds)) in
    t.fds <- Array.make cap Unix.stdin;
    t.events <- Array.make cap 0;
    t.revents <- Array.make cap 0
  end;
  let i = ref 0 in
  Hashtbl.iter
    (fun fd s ->
      t.fds.(!i) <- fd;
      t.events.(!i) <- s.interest;
      s.idx <- !i;
      incr i)
    t.tbl;
  t.n <- n;
  t.dirty <- false

let dispatch t ready_of_fd k =
  (* Snapshot-driven dispatch: registration changes made by the
     callback only take effect on the next [wait].  Skip fds the
     callback removed meanwhile. *)
  let fired = ref 0 in
  for i = 0 to t.n - 1 do
    let r = ready_of_fd i in
    if r <> 0 && Hashtbl.mem t.tbl t.fds.(i) then begin
      incr fired;
      k t.fds.(i) r
    end
  done;
  !fired

let wait_poll t ~timeout_ms k =
  let rc = poll_stub t.fds t.events t.revents t.n timeout_ms in
  if rc = 0 then 0 else dispatch t (fun i -> t.revents.(i)) k

let wait_select t ~timeout_ms k =
  let rd = ref [] and wr = ref [] in
  for i = 0 to t.n - 1 do
    if t.events.(i) land ev_read <> 0 then rd := t.fds.(i) :: !rd;
    if t.events.(i) land ev_write <> 0 then wr := t.fds.(i) :: !wr
  done;
  let timeout = if timeout_ms < 0 then -1.0 else float_of_int timeout_ms /. 1000.0 in
  match Unix.select !rd !wr [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  | rready, wready, _ ->
    if rready = [] && wready = [] then 0
    else
      dispatch t
        (fun i ->
          let fd = t.fds.(i) in
          (if List.memq fd rready then ev_read else 0)
          lor if List.memq fd wready then ev_write else 0)
        k

let wait t ~timeout_ms k =
  if t.dirty then rebuild t;
  if t.n = 0 then begin
    (* nothing registered: just honor the timeout *)
    if timeout_ms > 0 then Unix.sleepf (float_of_int timeout_ms /. 1000.0);
    0
  end
  else
    match backend () with
    | Poll_syscall -> wait_poll t ~timeout_ms k
    | Select -> wait_select t ~timeout_ms k

(* Single-flight coalescing: identical in-flight requests share one
   evaluation.  The first joiner of a key becomes the leader and
   carries the work; later joiners attach as waiters and receive the
   leader's result verbatim when it completes — including error
   results, so a stampede on a query that trips its budget costs one
   evaluation and fans the same ERR to everyone.

   Entries can be [seal]ed by group (the service seals a document's
   entries when a LOAD or EVICT for it is enqueued): a sealed entry
   still completes and fans out to the waiters it already has, but
   accepts no new ones — requests parsed after the mutation see a
   fresh evaluation, preserving FIFO semantics per document.

   Owned by the loop thread; not thread-safe. *)

module Counter = Sxsi_obs.Counter

type 'w entry = {
  key : string;
  group : string;
  mutable waiters : 'w list;  (* reversed join order, leader's first *)
  mutable sealed : bool;
}

type 'w t = {
  tbl : (string, 'w entry) Hashtbl.t;
  leaders : Counter.t;    (* entries created = evaluations started *)
  coalesced : Counter.t;  (* waiters attached beyond the leader *)
  seals : Counter.t;      (* entries sealed by a mutation *)
}

type 'w outcome = Leader of 'w entry | Attached

let create () =
  {
    tbl = Hashtbl.create 64;
    leaders = Counter.create ();
    coalesced = Counter.create ();
    seals = Counter.create ();
  }

let key e = e.key

let join t ~key:k ~group w =
  match Hashtbl.find_opt t.tbl k with
  | Some e when not e.sealed ->
    e.waiters <- w :: e.waiters;
    Counter.incr t.coalesced;
    Attached
  | Some _ | None ->
    let e = { key = k; group; waiters = [ w ]; sealed = false } in
    Hashtbl.replace t.tbl k e;
    Counter.incr t.leaders;
    Leader e

(* Completion goes through the entry handle, not the key: a sealed (or
   superseded) entry is no longer in the table but still owes its
   waiters their fan-out. *)
let complete t e =
  (match Hashtbl.find_opt t.tbl e.key with
  | Some cur when cur == e -> Hashtbl.remove t.tbl e.key
  | Some _ | None -> ());
  List.rev e.waiters

let seal_group t group =
  let sealed = ref [] in
  Hashtbl.iter
    (fun k e ->
      if e.group = group && not e.sealed then begin
        e.sealed <- true;
        Counter.incr t.seals;
        sealed := k :: !sealed
      end)
    t.tbl;
  List.iter (Hashtbl.remove t.tbl) !sealed

let in_flight t = Hashtbl.length t.tbl
let leaders_total t = Counter.get t.leaders
let coalesced_total t = Counter.get t.coalesced
let seals_total t = Counter.get t.seals
let leaders_counter t = t.leaders
let coalesced_counter t = t.coalesced

(** A hashed timer wheel on the monotonic clock, for connection
    deadlines and idle timeouts.

    Scheduling and cancellation are O(1); {!advance} pays O(buckets
    crossed + entries inspected).  Cancelled timers are dropped lazily
    when their bucket comes around, so the reschedule-on-activity
    pattern (push an idle deadline forward on every read) costs one
    flag write and one cons per activity burst.  Not thread-safe;
    owned by the loop. *)

type 'a t

type 'a timer

val create : ?tick_ms:int -> ?slots:int -> now_ns:int -> unit -> 'a t
(** A wheel of [slots] buckets (default 256) of [tick_ms] milliseconds
    each (default 10): deadlines resolve to the tick, timers further
    than one revolution out stay parked until their round. *)

val schedule : 'a t -> at_ns:int -> 'a -> 'a timer
(** Arm a timer at an absolute {!Sxsi_obs.Clock} nanosecond deadline.
    Deadlines in the past fire on the next {!advance}. *)

val cancel : 'a t -> 'a timer -> unit
(** Disarm; idempotent.  The entry is reclaimed when its bucket next
    fires. *)

val advance : 'a t -> now_ns:int -> 'a list
(** Collect the payloads of every timer whose deadline has passed, in
    bucket order, removing them from the wheel. *)

val next_delay_ms : 'a t -> now_ns:int -> int option
(** A lower bound, in milliseconds, on the delay until the next live
    timer fires — the loop's poll timeout.  [None] when no timer is
    pending.  Cancelled timers can make this early, never late. *)

val pending : 'a t -> int
(** Live (scheduled, not cancelled, not yet fired) timers. *)

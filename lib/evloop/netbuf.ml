(* A growable byte queue with a consumed head: the read side appends
   socket bytes at the tail and parses lines off the head; the write
   side appends response bytes at the tail and flushes from the head.
   The head is compacted away when it outgrows half the buffer, so
   steady-state pipelining never reallocates. *)

type t = {
  mutable buf : Bytes.t;
  mutable head : int;  (* first live byte *)
  mutable tail : int;  (* one past the last live byte *)
}

let create ?(initial = 4096) () =
  { buf = Bytes.create (max 16 initial); head = 0; tail = 0 }

let length t = t.tail - t.head
let is_empty t = t.head = t.tail
let capacity t = Bytes.length t.buf

let clear t =
  t.head <- 0;
  t.tail <- 0

let compact t =
  if t.head > 0 then begin
    let n = length t in
    Bytes.blit t.buf t.head t.buf 0 n;
    t.head <- 0;
    t.tail <- n
  end

let reserve t n =
  if t.tail + n > Bytes.length t.buf then begin
    let live = length t in
    if live + n <= Bytes.length t.buf then compact t
    else begin
      let cap = ref (max 16 (2 * Bytes.length t.buf)) in
      while live + n > !cap do
        cap := 2 * !cap
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf t.head nb 0 live;
      t.buf <- nb;
      t.head <- 0;
      t.tail <- live
    end
  end

let add_string t s =
  let n = String.length s in
  reserve t n;
  Bytes.blit_string s 0 t.buf t.tail n;
  t.tail <- t.tail + n

let contents t = Bytes.sub_string t.buf t.head (length t)

let consume t n =
  if n < 0 || n > length t then invalid_arg "Netbuf.consume";
  t.head <- t.head + n;
  if t.head = t.tail then clear t
  else if t.head > Bytes.length t.buf / 2 then compact t

(* ------------------------------------------------------------------ *)
(* Socket I/O                                                           *)
(* ------------------------------------------------------------------ *)

type fill = Filled of int | Eof | Fill_would_block | Closed_by_peer

let fill_from t fd ~max =
  reserve t max;
  match Unix.read fd t.buf t.tail max with
  | 0 -> Eof
  | n ->
    t.tail <- t.tail + n;
    Filled n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Fill_would_block
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Closed_by_peer

type flush = Flushed of int | Flush_would_block of int | Peer_gone

let flush_to t fd =
  let total = ref 0 in
  let rec go () =
    let n = length t in
    if n = 0 then Flushed !total
    else
      match Unix.write fd t.buf t.head n with
      | w ->
        total := !total + w;
        consume t w;
        if w < n then Flush_would_block !total else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Flush_would_block !total
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> Peer_gone
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Line framing                                                         *)
(* ------------------------------------------------------------------ *)

type line = Line of string | Too_long | More

let index_nl t =
  let rec go i = if i >= t.tail then -1 else if Bytes.get t.buf i = '\n' then i else go (i + 1) in
  go t.head

let next_line t ~max_line =
  match index_nl t with
  | -1 -> if length t > max_line then Too_long else More
  | i ->
    let n = i - t.head in
    if n > max_line then Too_long
    else begin
      let s = Bytes.sub_string t.buf t.head n in
      consume t (n + 1);
      Line s
    end

let drain_line t =
  match index_nl t with
  | -1 ->
    clear t;
    false
  | i ->
    consume t (i - t.head + 1);
    true

(** Growable byte queues for non-blocking connections.

    One buffer per direction per connection: the read side appends
    whatever the socket had and parses protocol lines off the head;
    the write side queues response bytes and flushes as much as the
    socket accepts, surviving partial writes.  The consumed head is
    compacted away opportunistically, so steady-state pipelining does
    not reallocate. *)

type t

val create : ?initial:int -> unit -> t
(** A fresh empty buffer ([initial] bytes of capacity, default 4096). *)

val length : t -> int
(** Live (unconsumed) bytes. *)

val is_empty : t -> bool
val capacity : t -> int
val clear : t -> unit

val add_string : t -> string -> unit
(** Append bytes at the tail, growing as needed. *)

val contents : t -> string
(** Copy of the live bytes (diagnostics/tests). *)

val consume : t -> int -> unit
(** Drop [n] bytes off the head.  Raises [Invalid_argument] past the
    live length. *)

(** {1 Socket I/O} *)

type fill =
  | Filled of int        (** read this many bytes into the buffer *)
  | Eof                  (** orderly end of stream *)
  | Fill_would_block     (** nothing available on a non-blocking fd *)
  | Closed_by_peer       (** [ECONNRESET]/[EPIPE] *)

val fill_from : t -> Unix.file_descr -> max:int -> fill
(** One [read] of at most [max] bytes appended at the tail. *)

type flush =
  | Flushed of int           (** the buffer is empty; wrote this many bytes *)
  | Flush_would_block of int (** wrote this many bytes; more remain queued *)
  | Peer_gone                (** [EPIPE]/[ECONNRESET] *)

val flush_to : t -> Unix.file_descr -> flush
(** Write as much of the buffer as the socket accepts, consuming what
    was written.  Partial writes keep the rest queued in order — the
    next flush resumes exactly where this one stopped. *)

(** {1 Line framing} *)

type line =
  | Line of string  (** a complete line, consumed, without its ['\n'] *)
  | Too_long        (** the buffered line exceeds [max_line]; nothing was
                        consumed — discard it with {!drain_line} until
                        that returns [true] *)
  | More            (** no complete line buffered yet *)

val next_line : t -> max_line:int -> line

val drain_line : t -> bool
(** Discard bytes up to and including the next newline.  Returns
    [false] (and empties the buffer) when no newline is buffered yet —
    keep draining on the next read. *)

(** A shared, bounded work-stealing domain pool: the parallel execution
    substrate under parallel index construction ({!Sxsi_xml.Document}
    with [~pool]), intra-query parallelism ({!Sxsi_core.Engine} with
    [?pool]) and the service front end.

    A pool of size [d] uses at most [d] domains at a time: [d - 1]
    spawned worker domains plus whichever domain is currently waiting on
    one of the pool's results (callers help execute queued tasks while
    they wait, so a pool of size 1 spawns nothing and runs every task
    inline — the sequential semantics by construction).

    Each participating domain owns a task queue; a domain out of local
    work steals from the others.  Tasks may fork and await further tasks
    ([fork_join] nests arbitrarily); an exception raised inside a task
    is caught, carried across the pool boundary and re-raised (with its
    backtrace) at the point where the task's result is demanded.

    All combinators are deterministic in their results: [map_reduce]
    and [map_array] combine per-chunk results in index order, so for a
    pure [f] and associative [combine] the outcome is byte-for-byte the
    sequential one regardless of pool size or scheduling. *)

type t

val create : ?name:string -> domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains.
    [domains] is clamped to at least 1.  [name] is used in metric help
    strings only. *)

val shutdown : t -> unit
(** Drain queued tasks, stop the workers and join them.  Idempotent.
    Callers must have awaited their promises first; forking into a pool
    after [shutdown] raises [Invalid_argument]. *)

val with_pool : ?name:string -> domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val size : t -> int
(** The configured number of domains (always [>= 1]). *)

val default_domains : unit -> int
(** The [SXSI_DOMAINS] environment variable (clamped to [1..128]), or
    [1] when unset or unparsable — parallelism is strictly opt-in. *)

(** {1 Tasks} *)

type 'a promise

val fork : t -> (unit -> 'a) -> 'a promise
(** Queue [f] for execution on any of the pool's domains.  The
    forking domain's ambient {!Sxsi_qos.Budget} (if any) is captured
    and re-installed inside the task, so budget checks in forked work
    charge — and are cancelled by — the originating request. *)

val await : t -> 'a promise -> 'a
(** Block until the promise resolves, executing other queued tasks
    while waiting.  Re-raises the task's exception, if any. *)

val fork_join : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [fork_join p f g] runs [g] as a pool task and [f] inline, and
    returns both results.  If both raise, [f]'s exception wins. *)

val map_reduce :
  t -> ?chunks:int -> ('a -> 'b) -> ('b -> 'b -> 'b) -> 'b -> 'a array -> 'b
(** [map_reduce p f combine init arr] is
    [Array.fold_left (fun acc x -> combine acc (f x)) init arr] with the
    array split into [chunks] (default: enough for the pool) slices
    mapped in parallel.  Per-chunk results are combined left-to-right in
    index order, so the result equals the sequential fold whenever
    [combine] is associative. *)

val map_array : t -> ?chunks:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; element order is preserved. *)

val parallel_range : t -> ?chunks:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_range p ~lo ~hi body] partitions [\[lo, hi)] into chunks
    and runs [body chunk_lo chunk_hi] on each in parallel.  The caller
    must ensure the chunks touch disjoint state. *)

(** {1 Observability} *)

val tasks_total : t -> int
(** Tasks executed since creation. *)

val steals_total : t -> int
(** Tasks taken from another domain's queue. *)

val steal_failures_total : t -> int
(** Steal scans that found every queue empty — each one is a domain
    spinning through [size] locks for nothing, the cost the profiler's
    contention view attributes to starvation. *)

val parks_total : t -> int
(** Times any domain slept on the pool condition (summed over
    slots). *)

val cas_retries_total : t -> int
(** CAS races lost while bumping the queue high-water mark — a proxy
    for how hard concurrent pushes hammer the shared counters. *)

val worker_stats : t -> (int * int * int * int) list
(** Per slot: [(slot, busy_ns, steals, parks)].  Slot [0] is the
    submitting/awaiting domain.  What the bench baseline records to
    show where a non-scaling pool's time goes. *)

val queue_depth : t -> int
(** Tasks currently queued and not yet started (a point-in-time
    gauge). *)

val queue_depth_hwm : t -> int
(** The largest {!queue_depth} ever observed by a push — how far the
    pool fell behind at its worst. *)

val busy_fractions : t -> (int * float) list
(** Per slot (slot [0] is the submitting/awaiting domain, [1..size-1]
    the spawned workers): the fraction of the pool's lifetime that
    slot has spent executing tasks, in [\[0, 1\]].  Maintained by
    always-on atomic counters — no flight recorder required. *)

val register_metrics : ?prefix:string -> t -> Sxsi_obs.Exposition.t -> unit
(** Register [<prefix>_tasks_total], [<prefix>_steals_total],
    [<prefix>_steal_failures_total], [<prefix>_cas_retries_total],
    [<prefix>_parks_total], [<prefix>_queue_depth],
    [<prefix>_queue_depth_hwm], [<prefix>_domains] and the per-slot
    [<prefix>_worker_busy_fraction] gauge family (default prefix
    ["sxsi_pool"]) on an exposition.

    When the flight recorder is enabled ({!Sxsi_obs.Journal}), the
    pool additionally journals every task as a [pool/task] span on the
    executing domain, steals as [pool/steal] instants and idle parking
    as [pool/park] spans. *)

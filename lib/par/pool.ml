(* A bounded work-stealing domain pool.

   Layout: a pool of size [d] owns [d] task queues.  Queue 0 receives
   work submitted from outside the pool; queues 1..d-1 belong to the
   spawned worker domains, and a task forked from inside worker [i]
   lands on queue [i] (identified through domain-local storage).  A
   domain out of local work scans the other queues round-robin and
   steals from them.

   Blocking discipline: a domain with nothing to run sleeps on a single
   condition variable.  Both wake-up sources — a push making [pending]
   non-zero and a task completion resolving a promise — take the pool
   lock before signalling, and sleepers re-check their wait condition
   under that same lock before calling [Condition.wait], so wake-ups
   cannot be lost.  [await] never sleeps while runnable tasks exist: it
   helps execute them instead, which is what lets tasks fork and await
   sub-tasks (nested [fork_join]) without reserving domains. *)

module Counter = Sxsi_obs.Counter
module Clock = Sxsi_obs.Clock
module J = Sxsi_obs.Journal

(* Interned once: the journal's name table takes a lock. *)
let n_task = J.name "pool/task"
let n_steal = J.name "pool/steal"
let n_park = J.name "pool/park"

type task = unit -> unit

type queue = {
  qlock : Mutex.t;
  items : task Queue.t;
}

type t = {
  name : string;
  size : int;
  queues : queue array;
  mutable workers : unit Domain.t array;
  lock : Mutex.t;                (* guards [sleepers] and the condition *)
  nonempty : Condition.t;
  pending : int Atomic.t;        (* tasks queued, not yet taken *)
  mutable sleepers : int;        (* domains in Condition.wait; under [lock] *)
  stopping : bool Atomic.t;
  tasks : Counter.t;
  steals : Counter.t;
  steal_failures : Counter.t;    (* scans that found every queue empty *)
  cas_retries : Counter.t;       (* lost CAS races on the queue HWM *)
  created_ns : int;              (* pool birth; busy fractions divide by age *)
  busy_ns : int Atomic.t array;  (* per slot: nanoseconds spent inside tasks *)
  slot_steals : Counter.t array; (* per slot: tasks taken from another queue *)
  slot_parks : Counter.t array;  (* per slot: times it slept on the condition *)
  queue_hwm : int Atomic.t;      (* high-water mark of [pending] *)
}

(* Which pool/queue the current domain works for, if any. *)
let slot_key : (t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_slot pool =
  match !(Domain.DLS.get slot_key) with
  | Some (p, i) when p == pool -> i
  | Some _ | None -> 0

let size t = t.size
let tasks_total t = Counter.get t.tasks
let steals_total t = Counter.get t.steals
let steal_failures_total t = Counter.get t.steal_failures
let cas_retries_total t = Counter.get t.cas_retries
let parks_total t =
  Array.fold_left (fun acc c -> acc + Counter.get c) 0 t.slot_parks
let queue_depth t = Atomic.get t.pending
let queue_depth_hwm t = Atomic.get t.queue_hwm

let worker_stats t =
  Array.to_list
    (Array.init (Array.length t.busy_ns) (fun slot ->
         ( slot,
           Atomic.get t.busy_ns.(slot),
           Counter.get t.slot_steals.(slot),
           Counter.get t.slot_parks.(slot) )))

let busy_fractions t =
  let elapsed = Sxsi_obs.Clock.since t.created_ns in
  Array.to_list
    (Array.mapi
       (fun slot busy ->
         let busy = Atomic.get busy in
         let f =
           if elapsed <= 0 then 0.0
           else Float.min 1.0 (float_of_int busy /. float_of_int elapsed)
         in
         (slot, f))
       t.busy_ns)

let default_domains () =
  match Sys.getenv_opt "SXSI_DOMAINS" with
  | None -> 1
  | Some s -> begin
    match int_of_string_opt (String.trim s) with
    | Some d -> max 1 (min 128 d)
    | None -> 1
  end

(* ------------------------------------------------------------------ *)
(* Queues                                                               *)
(* ------------------------------------------------------------------ *)

(* Racy-but-monotone maximum: concurrent pushes may each observe a
   stale maximum, but the CAS retry ensures the mark never decreases
   and eventually covers the largest observed depth.  Lost races are
   counted: a high retry rate means pushes from many domains are
   hammering the same cache line. *)
let rec bump_max retries a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then begin
    Counter.incr retries;
    bump_max retries a v
  end

let push pool i task =
  if Atomic.get pool.stopping then
    invalid_arg "Pool: fork into a pool after shutdown";
  let q = pool.queues.(i) in
  Mutex.lock q.qlock;
  Queue.add task q.items;
  Mutex.unlock q.qlock;
  Atomic.incr pool.pending;
  bump_max pool.cas_retries pool.queue_hwm (Atomic.get pool.pending);
  Mutex.lock pool.lock;
  if pool.sleepers > 0 then Condition.signal pool.nonempty;
  Mutex.unlock pool.lock

let take_from pool j =
  let q = pool.queues.(j) in
  Mutex.lock q.qlock;
  let r = if Queue.is_empty q.items then None else Some (Queue.pop q.items) in
  Mutex.unlock q.qlock;
  r

(* Own queue first, then steal round-robin from the others. *)
let try_take pool i =
  match take_from pool i with
  | Some task ->
    Atomic.decr pool.pending;
    Counter.incr pool.tasks;
    Some task
  | None ->
    let n = Array.length pool.queues in
    let rec scan k =
      if k >= n then None
      else begin
        match take_from pool ((i + k) mod n) with
        | Some task ->
          Atomic.decr pool.pending;
          Counter.incr pool.tasks;
          Counter.incr pool.steals;
          Counter.incr pool.slot_steals.(i);
          J.instant J.Pool n_steal ~a:((i + k) mod n) ~b:i ();
          Some task
        | None -> scan (k + 1)
      end
    in
    let r = scan 1 in
    if r = None then Counter.incr pool.steal_failures;
    r

(* Sleep until a push or a completion, unless [ready] already holds;
   re-checked under the pool lock so the wake-up cannot be lost. *)
let sleep_unless pool slot ready =
  Mutex.lock pool.lock;
  if (not (ready ())) && Atomic.get pool.pending = 0 then begin
    pool.sleepers <- pool.sleepers + 1;
    Counter.incr pool.slot_parks.(slot);
    J.begin_span J.Pool n_park ();
    Condition.wait pool.nonempty pool.lock;
    J.end_span J.Pool n_park ();
    pool.sleepers <- pool.sleepers - 1
  end;
  Mutex.unlock pool.lock

(* Run one dequeued task, journalling it as a span and charging its
   wall time to the executing slot's busy counter.  Tasks built by
   [fork] never raise (the task body catches into the promise), but
   close the span defensively all the same. *)
let run_task pool slot task =
  let t0 = Clock.now_ns () in
  J.begin_span J.Pool n_task ~ts:t0 ~a:slot ();
  Fun.protect
    ~finally:(fun () ->
      let t1 = Clock.now_ns () in
      J.end_span J.Pool n_task ~ts:t1 ~a:slot ();
      ignore (Atomic.fetch_and_add pool.busy_ns.(slot) (t1 - t0)))
    task

(* ------------------------------------------------------------------ *)
(* Workers                                                              *)
(* ------------------------------------------------------------------ *)

let rec worker_loop pool i =
  match try_take pool i with
  | Some task ->
    run_task pool i task;
    worker_loop pool i
  | None ->
    if Atomic.get pool.stopping then ()   (* queues drained: exit *)
    else begin
      sleep_unless pool i (fun () -> Atomic.get pool.stopping);
      worker_loop pool i
    end

let create ?(name = "pool") ~domains () =
  let domains = max 1 domains in
  let pool =
    {
      name;
      size = domains;
      queues =
        Array.init domains (fun _ -> { qlock = Mutex.create (); items = Queue.create () });
      workers = [||];
      lock = Mutex.create ();
      nonempty = Condition.create ();
      pending = Atomic.make 0;
      sleepers = 0;
      stopping = Atomic.make false;
      tasks = Counter.create ();
      steals = Counter.create ();
      steal_failures = Counter.create ();
      cas_retries = Counter.create ();
      created_ns = Clock.now_ns ();
      busy_ns = Array.init domains (fun _ -> Atomic.make 0);
      slot_steals = Array.init domains (fun _ -> Counter.create ());
      slot_parks = Array.init domains (fun _ -> Counter.create ());
      queue_hwm = Atomic.make 0;
    }
  in
  pool.workers <-
    Array.init (domains - 1) (fun k ->
        Domain.spawn (fun () ->
            Domain.DLS.get slot_key := Some (pool, k + 1);
            Fun.protect
              ~finally:J.retire_slot   (* don't leave a dead profiler slot *)
              (fun () -> worker_loop pool (k + 1))));
  pool

let shutdown pool =
  if not (Atomic.exchange pool.stopping true) then begin
    Mutex.lock pool.lock;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?name ~domains f =
  let pool = create ?name ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Promises                                                             *)
(* ------------------------------------------------------------------ *)

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a promise = 'a state Atomic.t

let resolved p = match Atomic.get p with Pending -> false | Done _ | Failed _ -> true

let fork pool f =
  let p = Atomic.make Pending in
  (* The forked task may run on any pool domain; carry the forker's
     ambient budget along so hot loops inside the task keep charging
     the same request (and observe its cancellation). *)
  let f =
    match Sxsi_qos.Budget.ambient () with
    | None -> f
    | Some b -> fun () -> Sxsi_qos.Budget.with_ambient b f
  in
  let task () =
    let st =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Atomic.set p st;
    (* wake awaiters that went to sleep on this promise *)
    Mutex.lock pool.lock;
    if pool.sleepers > 0 then Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock
  in
  push pool (my_slot pool) task;
  p

let rec await pool p =
  match Atomic.get p with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> begin
    let slot = my_slot pool in
    match try_take pool slot with
    | Some task ->
      run_task pool slot task;
      await pool p
    | None ->
      (* the awaited task runs on another domain: sleep until any
         completion or a new push, then re-check *)
      sleep_unless pool slot (fun () -> resolved p);
      await pool p
  end

let fork_join pool f g =
  let pg = fork pool g in
  let rf = match f () with v -> Ok v | exception e -> Error (e, Printexc.get_raw_backtrace ()) in
  let rg = match await pool pg with v -> Ok v | exception e -> Error (e, Printexc.get_raw_backtrace ()) in
  match (rf, rg) with
  | Ok a, Ok b -> (a, b)
  | Error (e, bt), _ | _, Error (e, bt) -> Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Data-parallel combinators                                            *)
(* ------------------------------------------------------------------ *)

(* Split [0, n) into at most [chunks] equal slices. *)
let split n chunks =
  let chunks = max 1 (min n chunks) in
  Array.init chunks (fun k -> (n * k / chunks, n * (k + 1) / chunks))

let default_chunks pool = 4 * pool.size

let run_ranges pool ranges job =
  (* fork all but the first range, run the first inline, await in
     index order so results merge deterministically *)
  let k = Array.length ranges in
  let promises =
    Array.init (k - 1) (fun j ->
        let lo, hi = ranges.(j + 1) in
        fork pool (fun () -> job lo hi))
  in
  let first = (let lo, hi = ranges.(0) in job lo hi) in
  Array.append [| first |] (Array.map (await pool) promises)

let map_reduce pool ?chunks f combine init arr =
  let n = Array.length arr in
  if n = 0 then init
  else if pool.size = 1 || n = 1 then
    Array.fold_left (fun acc x -> combine acc (f x)) init arr
  else begin
    let ranges = split n (match chunks with Some c -> c | None -> default_chunks pool) in
    let job lo hi =
      let acc = ref (f arr.(lo)) in
      for i = lo + 1 to hi - 1 do
        acc := combine !acc (f arr.(i))
      done;
      !acc
    in
    Array.fold_left combine init (run_ranges pool ranges job)
  end

let parallel_range pool ?chunks ~lo ~hi body =
  let n = hi - lo in
  if n > 0 then begin
    if pool.size = 1 then body lo hi
    else begin
      let ranges = split n (match chunks with Some c -> c | None -> default_chunks pool) in
      ignore (run_ranges pool ranges (fun clo chi -> body (lo + clo) (lo + chi)))
    end
  end

let map_array pool ?chunks f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    parallel_range pool ?chunks ~lo:1 ~hi:n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- f arr.(i)
        done);
    out
  end

(* ------------------------------------------------------------------ *)
(* Observability                                                        *)
(* ------------------------------------------------------------------ *)

let register_metrics ?(prefix = "sxsi_pool") pool e =
  let open Sxsi_obs.Exposition in
  register_counter e
    ~help:(Printf.sprintf "Tasks executed by the %s domain pool." pool.name)
    ~name:(prefix ^ "_tasks_total") pool.tasks;
  register_counter e
    ~help:(Printf.sprintf "Tasks stolen across domains of the %s pool." pool.name)
    ~name:(prefix ^ "_steals_total") pool.steals;
  register_counter e
    ~help:
      (Printf.sprintf "Steal scans of the %s pool that found every queue empty."
         pool.name)
    ~name:(prefix ^ "_steal_failures_total") pool.steal_failures;
  register_counter e
    ~help:(Printf.sprintf "CAS races lost updating the %s pool's queue HWM." pool.name)
    ~name:(prefix ^ "_cas_retries_total") pool.cas_retries;
  register_callback_counter e
    ~help:(Printf.sprintf "Times a %s pool domain parked on the condition." pool.name)
    ~name:(prefix ^ "_parks_total")
    (fun () -> float_of_int (parks_total pool));
  register_gauge e
    ~help:(Printf.sprintf "Tasks queued and not yet started in the %s pool." pool.name)
    ~name:(prefix ^ "_queue_depth") (fun () -> float_of_int (queue_depth pool));
  register_gauge e
    ~help:(Printf.sprintf "High-water mark of the %s pool's queue depth." pool.name)
    ~name:(prefix ^ "_queue_depth_hwm")
    (fun () -> float_of_int (queue_depth_hwm pool));
  register_gauge e
    ~help:(Printf.sprintf "Configured size of the %s pool." pool.name)
    ~name:(prefix ^ "_domains") (fun () -> float_of_int pool.size);
  register_multi_gauge e
    ~help:
      (Printf.sprintf
         "Fraction of its lifetime each %s pool slot has spent running tasks." pool.name)
    ~name:(prefix ^ "_worker_busy_fraction")
    (fun () ->
      List.map
        (fun (slot, f) -> ([ ("worker", string_of_int slot) ], f))
        (busy_fractions pool))

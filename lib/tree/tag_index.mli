(** Tag structure of the tree (§4.1.2): a packed array giving the tag
    of every parenthesis position, plus one sparse-bitmap row per tag
    over the opening positions (the paper's sarray matrix R), supporting
    the jump operations of §4.2.2.

    Tags are small integer identifiers; the name table lives with the
    document.  Node arguments are opening-parenthesis positions of the
    accompanying {!Bp.t}. *)

type t

val build : ?pool:Sxsi_par.Pool.t -> Bp.t -> tag_count:int -> tags:int array -> t
(** [build bp ~tag_count ~tags] takes the tag identifier of every
    parenthesis position ([tags.(i)] for both the opening and closing
    parenthesis of a node).  With a [pool] of size [> 1], the bucket
    scan and the per-tag sparse rows are built across the pool's
    domains, producing an identical structure.
    @raise Invalid_argument on length mismatch or out-of-range tag. *)

val tag_count : t -> int

val tag : t -> int -> int
(** Tag of the node at position [i] ([Tag(x)]). *)

val count : t -> int -> int
(** Total number of nodes carrying a tag. *)

val subtree_tags : t -> int -> int -> int
(** [subtree_tags t x tag]: number of [tag]-labeled nodes in the
    subtree rooted at [x], including [x] itself ([SubtreeTags]). *)

val tagged_desc : t -> int -> int -> int
(** [tagged_desc t x tag]: first node in preorder labeled [tag]
    strictly inside the subtree of [x]; [-1] if none ([TaggedDesc]). *)

val tagged_foll : t -> int -> int -> int
(** [tagged_foll t x tag]: first node labeled [tag] after the subtree
    of [x] in preorder; [-1] if none ([TaggedFoll]). *)

val tagged_prec : t -> int -> int -> int
(** [tagged_prec t x tag]: last node labeled [tag] before [x] in
    preorder that is not an ancestor of [x]; [-1] if none
    ([TaggedPrec]). *)

val tagged_next : t -> int -> int -> int
(** First node labeled [tag] at a position [>= i] (whole-document jump,
    used to iterate all nodes with a tag); [-1] if none. *)

val rank_tag : t -> int -> int -> int
(** Number of [tag]-labeled nodes at opening positions [< i]. *)

val select_tag : t -> int -> int -> int
(** Position of the [j]-th [tag]-labeled node (0-based). *)

val space_bits : t -> int

(** {1 Profiling probe}

    Process-global counters fed by the jump operations and [tag] when
    installed; same cost discipline and approximate concurrent
    attribution as the FM-index probe. *)

type probe = {
  jump_calls : Sxsi_obs.Counter.t;
  (** [tagged_desc]/[tagged_foll]/[tagged_next]/[tagged_prec] calls *)
  tag_reads : Sxsi_obs.Counter.t;  (** [tag] lookups *)
}

val create_probe : unit -> probe
(** A probe with both counters at zero. *)

val set_probe : probe option -> unit
(** Install (or with [None] remove) the process-global probe. *)

val current_probe : unit -> probe option
(** The probe currently installed, if any. *)

val probe_jump : unit -> unit
(** Count one jump call on the installed probe (no-op without one).
    Exposed so alternative tree backends report into the same
    counters. *)

val probe_tag_read : unit -> unit
(** Count one [tag] lookup on the installed probe (no-op without
    one). *)

module Slp = Sxsi_grammar.Slp

type kind = [ `Bp | `Grammar ]

type t =
  | Bp_backend of { bp : Bp.t; tags : Tag_index.t; leaves : Sxsi_bits.Bitvec.t }
  | Grammar_backend of Slp.t

let of_bp ~bp ~tags ~leaves = Bp_backend { bp; tags; leaves }
let of_slp slp = Grammar_backend slp

let kind = function Bp_backend _ -> `Bp | Grammar_backend _ -> `Grammar
let kind_name = function Bp_backend _ -> "bp" | Grammar_backend _ -> "grammar"

let kind_of_name = function
  | "bp" -> Some `Bp
  | "grammar" -> Some `Grammar
  | _ -> None

let bp_exn = function
  | Bp_backend b -> b.bp
  | Grammar_backend _ -> invalid_arg "Tree_backend.bp_exn: grammar backend"

let tag_index_exn = function
  | Bp_backend b -> b.tags
  | Grammar_backend _ -> invalid_arg "Tree_backend.tag_index_exn: grammar backend"

let slp_exn = function
  | Grammar_backend g -> g
  | Bp_backend _ -> invalid_arg "Tree_backend.slp_exn: bp backend"

let length = function
  | Bp_backend b -> Bp.length b.bp
  | Grammar_backend g -> Slp.length g

let node_count = function
  | Bp_backend b -> Bp.node_count b.bp
  | Grammar_backend g -> Slp.node_count g

let is_open t i =
  match t with
  | Bp_backend b -> Bp.is_open b.bp i
  | Grammar_backend g -> Slp.is_open g i

let excess t i =
  match t with
  | Bp_backend b -> Bp.excess b.bp i
  | Grammar_backend g -> Slp.excess g i

let close t i =
  match t with
  | Bp_backend b -> Bp.close b.bp i
  | Grammar_backend g -> Slp.close g i

let open_ t i =
  match t with
  | Bp_backend b -> Bp.open_ b.bp i
  | Grammar_backend g -> Slp.open_ g i

let enclose t i =
  match t with
  | Bp_backend b -> Bp.enclose b.bp i
  | Grammar_backend g -> Slp.enclose g i

let root = function Bp_backend b -> Bp.root b.bp | Grammar_backend g -> Slp.root g

let preorder t i =
  match t with
  | Bp_backend b -> Bp.preorder b.bp i
  | Grammar_backend g -> Slp.preorder g i

let node_of_preorder t p =
  match t with
  | Bp_backend b -> Bp.node_of_preorder b.bp p
  | Grammar_backend g -> Slp.node_of_preorder g p

let subtree_size t i =
  match t with
  | Bp_backend b -> Bp.subtree_size b.bp i
  | Grammar_backend g -> Slp.subtree_size g i

let is_ancestor t x y =
  match t with
  | Bp_backend b -> Bp.is_ancestor b.bp x y
  | Grammar_backend g -> Slp.is_ancestor g x y

let is_leaf t i =
  match t with
  | Bp_backend b -> Bp.is_leaf b.bp i
  | Grammar_backend g -> Slp.is_leaf g i

let first_child t i =
  match t with
  | Bp_backend b -> Bp.first_child b.bp i
  | Grammar_backend g -> Slp.first_child g i

let next_sibling t i =
  match t with
  | Bp_backend b -> Bp.next_sibling b.bp i
  | Grammar_backend g -> Slp.next_sibling g i

let parent t i =
  match t with
  | Bp_backend b -> Bp.parent b.bp i
  | Grammar_backend g -> Slp.parent g i

let depth t i =
  match t with
  | Bp_backend b -> Bp.depth b.bp i
  | Grammar_backend g -> Slp.depth g i

let tag_count = function
  | Bp_backend b -> Tag_index.tag_count b.tags
  | Grammar_backend g -> Slp.tag_count g

(* The Bp arm's Tag_index already reports into the profiling probe;
   the grammar arm reports explicitly so telemetry stays comparable. *)

let tag t i =
  match t with
  | Bp_backend b -> Tag_index.tag b.tags i
  | Grammar_backend g ->
    Tag_index.probe_tag_read ();
    Slp.tag g i

let count t tg =
  match t with
  | Bp_backend b -> Tag_index.count b.tags tg
  | Grammar_backend g -> Slp.count_tag g tg

let subtree_tags t x tg =
  match t with
  | Bp_backend b -> Tag_index.subtree_tags b.tags x tg
  | Grammar_backend g -> Slp.subtree_tags g x tg

let tagged_desc t x tg =
  match t with
  | Bp_backend b -> Tag_index.tagged_desc b.tags x tg
  | Grammar_backend g ->
    Tag_index.probe_jump ();
    Slp.tagged_desc g x tg

let tagged_foll t x tg =
  match t with
  | Bp_backend b -> Tag_index.tagged_foll b.tags x tg
  | Grammar_backend g ->
    Tag_index.probe_jump ();
    Slp.tagged_foll g x tg

let tagged_prec t x tg =
  match t with
  | Bp_backend b -> Tag_index.tagged_prec b.tags x tg
  | Grammar_backend g ->
    Tag_index.probe_jump ();
    Slp.tagged_prec g x tg

let tagged_next t i tg =
  match t with
  | Bp_backend b -> Tag_index.tagged_next b.tags i tg
  | Grammar_backend g ->
    Tag_index.probe_jump ();
    Slp.tagged_next g i tg

let rank_tag t tg i =
  match t with
  | Bp_backend b -> Tag_index.rank_tag b.tags tg i
  | Grammar_backend g -> Slp.rank_tag g tg i

let select_tag t tg j =
  match t with
  | Bp_backend b -> Tag_index.select_tag b.tags tg j
  | Grammar_backend g -> Slp.select_tag g tg j

let leaf_count = function
  | Bp_backend b -> Sxsi_bits.Bitvec.count b.leaves
  | Grammar_backend g -> Slp.leaf_count g

let leaf_rank t i =
  match t with
  | Bp_backend b -> Sxsi_bits.Bitvec.rank1 b.leaves i
  | Grammar_backend g -> Slp.leaf_rank g i

let leaf_select t d =
  match t with
  | Bp_backend b -> Sxsi_bits.Bitvec.select1 b.leaves d
  | Grammar_backend g -> Slp.leaf_select g d

let space_bits = function
  | Bp_backend b ->
    Bp.space_bits b.bp + Tag_index.space_bits b.tags
    + Sxsi_bits.Bitvec.space_bits b.leaves
  | Grammar_backend g -> Slp.space_bits g

(** The tree backend: the navigation and tag-jump operations the query
    engine actually uses, abstracted over the physical representation.

    Two implementations exist.  [`Bp] is the paper's balanced
    parentheses + tag index + leaf bitvector (the default).  [`Grammar]
    is a grammar-compressed SLP over the parenthesis/tag sequence
    ({!Sxsi_grammar.Slp}), trading O(log) hops for O(grammar depth)
    hops and collapsing repetitive tree structure by 10-100x.

    Node identifiers are opening-parenthesis positions in both
    backends, so query results, preorders and serializations are
    byte-identical whichever backend a document was built with.

    The type is a plain variant (not a record of closures) so a
    document marshals with its backend inside the save container.

    The tag-jump operations report into the {!Tag_index} profiling
    probe for both backends. *)

type kind = [ `Bp | `Grammar ]

type t

(** {1 Construction} *)

val of_bp : bp:Bp.t -> tags:Tag_index.t -> leaves:Sxsi_bits.Bitvec.t -> t
(** The balanced-parentheses backend.  [leaves] marks the opening
    positions of text/attribute-value leaves (for {!leaf_rank} /
    {!leaf_select}). *)

val of_slp : Sxsi_grammar.Slp.t -> t
(** The grammar-compressed backend; leaf enumeration comes from the
    [leaf_tags] the SLP was built with. *)

val kind : t -> kind

val kind_name : t -> string
(** ["bp"] or ["grammar"] — the tag stored in the save container and
    shown in service STATS. *)

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}; [None] for an unknown name. *)

(** {1 Representation escape hatches}

    For call sites that measure or exercise the physical structures
    directly (benchmarks, representation tests).
    @raise Invalid_argument on a non-[`Bp] backend. *)

val bp_exn : t -> Bp.t
val tag_index_exn : t -> Tag_index.t
val slp_exn : t -> Sxsi_grammar.Slp.t
(** @raise Invalid_argument on a non-[`Grammar] backend. *)

(** {1 Sequence} *)

val length : t -> int
(** Number of parentheses ([2 n] for [n] nodes). *)

val node_count : t -> int
val is_open : t -> int -> bool

val excess : t -> int -> int
(** Excess after position [i] (depth of the node opened at [i]). *)

(** {1 Navigation (cf. {!Bp})} *)

val close : t -> int -> int
val open_ : t -> int -> int
val enclose : t -> int -> int
val root : t -> int
val preorder : t -> int -> int
val node_of_preorder : t -> int -> int
val subtree_size : t -> int -> int
val is_ancestor : t -> int -> int -> bool
val is_leaf : t -> int -> bool
val first_child : t -> int -> int
val next_sibling : t -> int -> int
val parent : t -> int -> int
val depth : t -> int -> int

(** {1 Tags (cf. {!Tag_index})} *)

val tag_count : t -> int

val tag : t -> int -> int
(** Tag of the node at position [i]. *)

val count : t -> int -> int
val subtree_tags : t -> int -> int -> int
val tagged_desc : t -> int -> int -> int
val tagged_foll : t -> int -> int -> int
val tagged_prec : t -> int -> int -> int
val tagged_next : t -> int -> int -> int
val rank_tag : t -> int -> int -> int
val select_tag : t -> int -> int -> int

(** {1 Leaves}

    Rank/select over the opening positions of text/attribute-value
    leaves, in document order. *)

val leaf_count : t -> int

val leaf_rank : t -> int -> int
(** Number of leaf openings at positions [< i]. *)

val leaf_select : t -> int -> int
(** Position of the [d]-th leaf opening (0-based). *)

val space_bits : t -> int
(** Total size of the tree structure (parentheses + tags + leaf
    enumeration for [`Bp]; the whole grammar for [`Grammar]). *)

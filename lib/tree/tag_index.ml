open Sxsi_bits

(* Profiling probe — same discipline as Fm_index: one atomic load and
   branch per jump call when disabled, nothing per internal step. *)

type probe = {
  jump_calls : Sxsi_obs.Counter.t;
  tag_reads : Sxsi_obs.Counter.t;
}

let create_probe () =
  { jump_calls = Sxsi_obs.Counter.create (); tag_reads = Sxsi_obs.Counter.create () }

let active_probe : probe option Atomic.t = Atomic.make None

let set_probe p = Atomic.set active_probe p
let current_probe () = Atomic.get active_probe

let probe_jump () =
  match Atomic.get active_probe with
  | None -> ()
  | Some pr -> Sxsi_obs.Counter.incr pr.jump_calls

let probe_tag_read () =
  match Atomic.get active_probe with
  | None -> ()
  | Some pr -> Sxsi_obs.Counter.incr pr.tag_reads

type t = {
  bp : Bp.t;
  tcount : int;
  tags : Intvec.t;            (* tag id at every parenthesis position *)
  rows : Sparse.t array;      (* per tag: opening positions carrying it *)
}

(* Minimum parenthesis count before the bucket scan is chunked across a
   pool. *)
let par_cutoff = 1 lsl 15

let build ?pool bp ~tag_count ~tags =
  let n = Bp.length bp in
  if Array.length tags <> n then invalid_arg "Tag_index.build: length mismatch";
  (* Bucket the opening positions of [lo, hi) per tag, ascending. *)
  let bucket lo hi =
    let bs = Array.make tag_count [] in
    for i = hi - 1 downto lo do
      let tg = tags.(i) in
      if tg < 0 || tg >= tag_count then invalid_arg "Tag_index.build: tag out of range";
      if Bp.is_open bp i then bs.(tg) <- i :: bs.(tg)
    done;
    bs
  in
  let use_pool =
    match pool with
    | Some p when Sxsi_par.Pool.size p > 1 && n >= par_cutoff -> Some p
    | _ -> None
  in
  let buckets =
    match use_pool with
    | Some p ->
      (* per-chunk buckets concatenate in chunk order, so each tag's
         position list is the same ascending sequence the sequential
         scan produces *)
      let k = min (4 * Sxsi_par.Pool.size p) n in
      let ranges = Array.init k (fun j -> (n * j / k, n * (j + 1) / k)) in
      let chunked = Sxsi_par.Pool.map_array p (fun (lo, hi) -> bucket lo hi) ranges in
      Array.init tag_count (fun tg ->
          List.concat (Array.to_list (Array.map (fun bs -> bs.(tg)) chunked)))
    | None -> bucket 0 n
  in
  let mk_row l = Sparse.of_sorted ~universe:(max 1 n) (Array.of_list l) in
  let rows =
    match use_pool with
    | Some p -> Sxsi_par.Pool.map_array p mk_row buckets
    | None -> Array.map mk_row buckets
  in
  let width =
    let rec go v acc = if v = 0 then max 1 acc else go (v lsr 1) (acc + 1) in
    go (max 1 (tag_count - 1)) 0
  in
  let iv = Intvec.make n width in
  Array.iteri (fun i tg -> Intvec.set iv i tg) tags;
  { bp; tcount = tag_count; tags = iv; rows }

let tag_count t = t.tcount
let tag t i =
  probe_tag_read ();
  Intvec.get t.tags i
let count t tg = Sparse.length t.rows.(tg)
let rank_tag t tg i = Sparse.rank t.rows.(tg) i
let select_tag t tg j = Sparse.get t.rows.(tg) j

let subtree_tags t x tg =
  let c = Bp.close t.bp x in
  Sparse.rank t.rows.(tg) (c + 1) - Sparse.rank t.rows.(tg) x

let tagged_desc t x tg =
  probe_jump ();
  let c = Bp.close t.bp x in
  let p = Sparse.next t.rows.(tg) (x + 1) in
  if p >= 0 && p < c then p else -1

let tagged_foll t x tg =
  probe_jump ();
  let c = Bp.close t.bp x in
  Sparse.next t.rows.(tg) (c + 1)

let tagged_next t i tg =
  probe_jump ();
  Sparse.next t.rows.(tg) i

let tagged_prec t x tg =
  probe_jump ();
  let rec go p =
    match Sparse.prev t.rows.(tg) p with
    | -1 -> -1
    | q -> if Bp.is_ancestor t.bp q x then go q else q
  in
  go x

let space_bits t =
  Intvec.space_bits t.tags
  + Array.fold_left (fun acc r -> acc + Sparse.space_bits r) 0 t.rows
  + 192

(* A straight-line program over the parenthesis/tag sequence.

   Terminals encode one parenthesis each: [2*tag] for "(", [2*tag + 1]
   for ")".  Compression is round-based digram replacement (the RePair
   family, applied to the tree's parenthesis string as in TreeRePair):
   each round counts adjacent digrams (non-overlapping within runs of
   equal symbols), assigns one fresh nonterminal to every digram type
   occurring at least [min_freq] times, rewrites the sequence greedily
   left to right, and stops when no digram qualifies or the sequence
   stops shrinking meaningfully.  Rules therefore only reference
   symbols introduced in earlier rounds, so summaries fill in one
   bottom-up pass over rule ids.

   Navigation never expands a rule.  Every nonterminal knows the
   length, net excess, min/max prefix excess, opening count and per-tag
   opening counts of its expansion.  The start sequence is cut into
   blocks of [cblock] slots; per block the structure keeps absolute
   position/excess/opening-count/per-tag-count checkpoints plus a
   range-min-max heap over blocks (the same search structure Bp uses
   over 256-bit blocks, here over checkpoint blocks).  A fwd/bwd excess
   search scans the home block slot by slot, walks the heap to the
   nearest block whose [min, max] interval contains the target — which
   must attain it, because prefix excess moves in ±1 steps — and then
   descends the grammar, left or right first.  Every operation is
   O(log #blocks + cblock + grammar depth).

   All per-rule and per-slot tables are bit-packed ({!Sxsi_bits.Intvec})
   and everything per-slot beyond the symbol itself is reduced to
   per-block checkpoints: the point of this backend is that the
   structure's footprint tracks the grammar size, not the document
   size. *)

module Intvec = Sxsi_bits.Intvec

(* Minimal growable int array (OCaml 5.1 has no Dynarray). *)
module Grow = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 256 0; n = 0 }

  let push g v =
    if g.n = Array.length g.a then begin
      let a = Array.make (2 * g.n) 0 in
      Array.blit g.a 0 a 0 g.n;
      g.a <- a
    end;
    g.a.(g.n) <- v;
    g.n <- g.n + 1

  let to_array g = Array.sub g.a 0 g.n
end

(* Slots per checkpoint block: the linear-scan unit of every
   navigation operation. *)
let cblock = 64

type t = {
  n : int;                        (* expanded length: one symbol per paren *)
  tcount : int;
  nterm : int;                    (* 2 * tcount; ids below are terminals *)
  (* rules: nonterminal [nterm + r] expands to [left.(r) right.(r)] *)
  left : Intvec.t;
  right : Intvec.t;
  (* per-rule summaries of the expansion; excess-valued summaries are
     stored biased by [n] (they live in [-n, n]) *)
  rlen : Intvec.t;
  rexc_b : Intvec.t;              (* net excess, biased *)
  rmin_b : Intvec.t;              (* min prefix excess over prefixes 1..len *)
  rmax_b : Intvec.t;              (* max prefix excess *)
  ropen : Intvec.t;               (* "(" count *)
  (* per-rule tables of distinct opened tags, flattened: the entries of
     rule [r] live at flat indices [roff r, roff (r+1)) *)
  roff : Intvec.t;
  rtag_flat : Intvec.t;           (* sorted within each rule *)
  rcnt_flat : Intvec.t;
  (* start sequence *)
  seq : Intvec.t;
  (* per-block checkpoints, length nblocks + 1 (the last entry holds
     the totals); values before the block's first slot *)
  cpos : int array;
  cexc : int array;
  copen : int array;
  (* range-min-max heap over blocks: absolute prefix excess attained *)
  bleaves : int;                  (* power of two >= nblocks *)
  hmin : int array;
  hmax : int array;
  (* per-tag opening counts at block checkpoints, length nblocks + 1 *)
  tchk : Intvec.t array;
  leaf_tags : int array;          (* sorted tags enumerated by leaf_rank *)
  depth : int;                    (* derivation height over the start seq *)
}

(* ------------------------------------------------------------------ *)
(* Symbol summaries                                                     *)
(* ------------------------------------------------------------------ *)

let t_len t s = if s < t.nterm then 1 else Intvec.get t.rlen (s - t.nterm)

let t_exc t s =
  if s < t.nterm then (if s land 1 = 0 then 1 else -1)
  else Intvec.get t.rexc_b (s - t.nterm) - t.n

let t_min t s =
  if s < t.nterm then t_exc t s else Intvec.get t.rmin_b (s - t.nterm) - t.n

let t_max t s =
  if s < t.nterm then t_exc t s else Intvec.get t.rmax_b (s - t.nterm) - t.n

let t_open t s = if s < t.nterm then 1 - (s land 1) else Intvec.get t.ropen (s - t.nterm)

(* openings of [tg] in the expansion of [s] *)
let t_cnt t s tg =
  if s < t.nterm then (if s = 2 * tg then 1 else 0)
  else begin
    let r = s - t.nterm in
    let lo = ref (Intvec.get t.roff r) and hi = ref (Intvec.get t.roff (r + 1) - 1) in
    let res = ref 0 in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let tm = Intvec.get t.rtag_flat mid in
      if tm = tg then begin
        res := Intvec.get t.rcnt_flat mid;
        lo := !hi + 1
      end
      else if tm < tg then lo := mid + 1
      else hi := mid - 1
    done;
    !res
  end

let nslots t = Intvec.length t.seq
let nblocks t = Array.length t.cpos - 1

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

(* One round: count digrams (non-overlapping within equal-symbol runs),
   pick every type with [min_freq] occurrences (numbered in first-
   occurrence order, so construction is deterministic), rewrite greedily.
   Returns the rewritten sequence or [None] when no digram qualifies. *)
let pair_round ~min_freq ~next_id left right s =
  let n = Array.length s in
  if n < 2 * min_freq then None
  else begin
    (* symbol ids fit comfortably in 31 bits, so a digram packs into
       one int — keeps the hash tables on the fast integer path; each
       table entry packs (count lsl 31) lor first_occurrence so one
       counting pass also yields the deterministic rule numbering *)
    let pack a b = (a lsl 31) lor b in
    let freq : (int, int ref) Hashtbl.t = Hashtbl.create 1024 in
    let i = ref 0 in
    while !i < n - 1 do
      let d = pack s.(!i) s.(!i + 1) in
      (match Hashtbl.find_opt freq d with
      | Some r -> r := !r + (1 lsl 31)
      | None -> Hashtbl.add freq d (ref ((1 lsl 31) lor !i)));
      if s.(!i) = s.(!i + 1) then i := !i + 2 else incr i
    done;
    let qualifying =
      Hashtbl.fold
        (fun d r acc ->
          if !r lsr 31 >= min_freq then (!r land ((1 lsl 31) - 1), d) :: acc
          else acc)
        freq []
    in
    let qualifying = List.sort compare qualifying in
    let chosen : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let id = ref next_id in
    List.iter
      (fun (_, d) ->
        Hashtbl.add chosen d !id;
        Grow.push left (d lsr 31);
        Grow.push right (d land ((1 lsl 31) - 1));
        incr id)
      qualifying;
    if Hashtbl.length chosen = 0 then None
    else begin
      let out = Grow.create () in
      let i = ref 0 in
      while !i < n do
        if
          !i < n - 1
          &&
          match Hashtbl.find_opt chosen (pack s.(!i) s.(!i + 1)) with
          | Some id ->
            Grow.push out id;
            true
          | None -> false
        then i := !i + 2
        else begin
          Grow.push out s.(!i);
          incr i
        end
      done;
      Some (Grow.to_array out)
    end
  end

let pack_iv ?width a =
  if Array.length a = 0 then Intvec.make 0 1 else Intvec.of_array ?width a

let build ?(min_freq = 4) ~tag_count ~leaf_tags syms =
  if min_freq < 2 then invalid_arg "Slp.build: min_freq must be >= 2";
  if tag_count < 1 then invalid_arg "Slp.build: tag_count must be >= 1";
  let nterm = 2 * tag_count in
  let n = Array.length syms in
  let e = ref 0 in
  Array.iter
    (fun s ->
      if s < 0 || s >= nterm then invalid_arg "Slp.build: symbol out of range";
      e := !e + (if s land 1 = 0 then 1 else -1);
      if !e < 0 then invalid_arg "Slp.build: unbalanced sequence")
    syms;
  if !e <> 0 then invalid_arg "Slp.build: unbalanced sequence";
  (* compress *)
  let gleft = Grow.create () and gright = Grow.create () in
  let cur = ref syms in
  let continue_ = ref (n > 0) in
  while !continue_ do
    let s = !cur in
    match pair_round ~min_freq ~next_id:(nterm + gleft.Grow.n) gleft gright s with
    | None -> continue_ := false
    | Some out ->
      cur := out;
      (* a round that shrinks the sequence by less than 0.5% is past
         the repetitive structure: stop so total work stays linear *)
      let shrink = Array.length s - Array.length out in
      if shrink * 200 < Array.length s then continue_ := false
  done;
  let left = Grow.to_array gleft and right = Grow.to_array gright in
  let nrules = Array.length left in
  (* bottom-up summaries: a rule only references earlier symbols *)
  let rlen = Array.make nrules 0
  and rexc = Array.make nrules 0
  and rmin = Array.make nrules 0
  and rmax = Array.make nrules 0
  and ropen = Array.make nrules 0
  and rdepth = Array.make nrules 0 in
  let rtags = Array.make nrules [||] and rcnts = Array.make nrules [||] in
  let len s = if s < nterm then 1 else rlen.(s - nterm) in
  let exc s = if s < nterm then (if s land 1 = 0 then 1 else -1) else rexc.(s - nterm) in
  let mn s = if s < nterm then exc s else rmin.(s - nterm) in
  let mx s = if s < nterm then exc s else rmax.(s - nterm) in
  let opn s = if s < nterm then 1 - (s land 1) else ropen.(s - nterm) in
  let dep s = if s < nterm then 0 else rdepth.(s - nterm) in
  let tags_of s =
    if s < nterm then
      if s land 1 = 0 then ([| s lsr 1 |], [| 1 |]) else ([||], [||])
    else (rtags.(s - nterm), rcnts.(s - nterm))
  in
  let merge (ta, ca) (tb, cb) =
    let la = Array.length ta and lb = Array.length tb in
    let mt = Array.make (la + lb) 0 and mc = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < la || !j < lb do
      if !j >= lb || (!i < la && ta.(!i) < tb.(!j)) then begin
        mt.(!k) <- ta.(!i);
        mc.(!k) <- ca.(!i);
        incr i;
        incr k
      end
      else if !i >= la || tb.(!j) < ta.(!i) then begin
        mt.(!k) <- tb.(!j);
        mc.(!k) <- cb.(!j);
        incr j;
        incr k
      end
      else begin
        mt.(!k) <- ta.(!i);
        mc.(!k) <- ca.(!i) + cb.(!j);
        incr i;
        incr j;
        incr k
      end
    done;
    (Array.sub mt 0 !k, Array.sub mc 0 !k)
  in
  for r = 0 to nrules - 1 do
    let a = left.(r) and b = right.(r) in
    rlen.(r) <- len a + len b;
    rexc.(r) <- exc a + exc b;
    rmin.(r) <- min (mn a) (exc a + mn b);
    rmax.(r) <- max (mx a) (exc a + mx b);
    ropen.(r) <- opn a + opn b;
    rdepth.(r) <- 1 + max (dep a) (dep b);
    let ts, cs = merge (tags_of a) (tags_of b) in
    rtags.(r) <- ts;
    rcnts.(r) <- cs
  done;
  let seq = !cur in
  let nslots = Array.length seq in
  let nblocks = (nslots + cblock - 1) / cblock in
  (* checkpoints + per-block heap leaves + per-tag checkpoint counts,
     one cumulative walk over the slots *)
  let cpos = Array.make (nblocks + 1) 0
  and cexc = Array.make (nblocks + 1) 0
  and copen = Array.make (nblocks + 1) 0 in
  let bleaves =
    let rec go l = if l >= max 1 nblocks then l else go (2 * l) in
    go 1
  in
  let hmin = Array.make (2 * bleaves) max_int
  and hmax = Array.make (2 * bleaves) min_int in
  let tchk_tmp = Array.init tag_count (fun _ -> Array.make (nblocks + 1) 0) in
  let tcnt_run = Array.make tag_count 0 in
  let p = ref 0 and e = ref 0 and o = ref 0 in
  let depth = ref 0 in
  for k = 0 to nslots - 1 do
    if k mod cblock = 0 then begin
      let c = k / cblock in
      cpos.(c) <- !p;
      cexc.(c) <- !e;
      copen.(c) <- !o;
      for tg = 0 to tag_count - 1 do
        tchk_tmp.(tg).(c) <- tcnt_run.(tg)
      done
    end;
    let s = seq.(k) in
    let c = k / cblock in
    hmin.(bleaves + c) <- min hmin.(bleaves + c) (!e + mn s);
    hmax.(bleaves + c) <- max hmax.(bleaves + c) (!e + mx s);
    depth := max !depth (dep s);
    let ts, cs = tags_of s in
    Array.iteri (fun idx tg -> tcnt_run.(tg) <- tcnt_run.(tg) + cs.(idx)) ts;
    p := !p + len s;
    e := !e + exc s;
    o := !o + opn s
  done;
  cpos.(nblocks) <- !p;
  cexc.(nblocks) <- !e;
  copen.(nblocks) <- !o;
  for tg = 0 to tag_count - 1 do
    tchk_tmp.(tg).(nblocks) <- tcnt_run.(tg)
  done;
  for node = bleaves - 1 downto 1 do
    hmin.(node) <- min hmin.(2 * node) hmin.((2 * node) + 1);
    hmax.(node) <- max hmax.(2 * node) hmax.((2 * node) + 1)
  done;
  (* flatten the per-rule tag tables *)
  let total_tag_entries = Array.fold_left (fun acc a -> acc + Array.length a) 0 rtags in
  let roff = Array.make (nrules + 1) 0 in
  let rtag_flat = Array.make total_tag_entries 0
  and rcnt_flat = Array.make total_tag_entries 0 in
  let w = ref 0 in
  for r = 0 to nrules - 1 do
    roff.(r) <- !w;
    Array.iteri
      (fun idx tg ->
        rtag_flat.(!w + idx) <- tg;
        rcnt_flat.(!w + idx) <- rcnts.(r).(idx))
      rtags.(r);
    w := !w + Array.length rtags.(r)
  done;
  roff.(nrules) <- !w;
  {
    n;
    tcount = tag_count;
    nterm;
    left = pack_iv left;
    right = pack_iv right;
    rlen = pack_iv rlen;
    rexc_b = pack_iv (Array.map (fun v -> v + n) rexc);
    rmin_b = pack_iv (Array.map (fun v -> v + n) rmin);
    rmax_b = pack_iv (Array.map (fun v -> v + n) rmax);
    ropen = pack_iv ropen;
    roff = pack_iv roff;
    rtag_flat = pack_iv rtag_flat;
    rcnt_flat = pack_iv rcnt_flat;
    seq = pack_iv seq;
    cpos;
    cexc;
    copen;
    bleaves;
    hmin;
    hmax;
    tchk = Array.map pack_iv tchk_tmp;
    leaf_tags = Array.of_list (List.sort_uniq compare leaf_tags);
    depth = !depth;
  }

(* ------------------------------------------------------------------ *)
(* Sizes                                                                *)
(* ------------------------------------------------------------------ *)

let length t = t.n
let node_count t = t.n / 2
let tag_count t = t.tcount
let rule_count t = Intvec.length t.rlen
let slot_count t = nslots t
let depth_bound t = t.depth

let space_bits t =
  let iv = Intvec.space_bits in
  let a x = 64 * Array.length x in
  iv t.left + iv t.right + iv t.rlen + iv t.rexc_b + iv t.rmin_b + iv t.rmax_b
  + iv t.ropen + iv t.roff + iv t.rtag_flat + iv t.rcnt_flat + iv t.seq + a t.cpos
  + a t.cexc + a t.copen + a t.hmin + a t.hmax
  + Array.fold_left (fun acc v -> acc + iv v) 0 t.tchk
  + a t.leaf_tags + 512

(* ------------------------------------------------------------------ *)
(* Descent                                                              *)
(* ------------------------------------------------------------------ *)

(* Block containing expanded position [pos] (largest c with
   cpos.(c) <= pos); [pos] must be in [0, n). *)
let find_block t pos =
  let lo = ref 0 and hi = ref (nblocks t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.cpos.(mid) <= pos then lo := mid else hi := mid - 1
  done;
  !lo

(* Slot containing [pos]: scans the home block from its checkpoint.
   Returns (slot, start position, excess before, openings before). *)
let locate t pos =
  let c = find_block t pos in
  let k = ref (c * cblock)
  and p = ref t.cpos.(c)
  and e = ref t.cexc.(c)
  and o = ref t.copen.(c) in
  let continue_ = ref true in
  while !continue_ do
    let s = Intvec.get t.seq !k in
    let l = t_len t s in
    if !p + l <= pos then begin
      p := !p + l;
      e := !e + t_exc t s;
      o := !o + t_open t s;
      incr k
    end
    else continue_ := false
  done;
  (!k, !p, !e, !o)

(* Terminal at position [pos], with the absolute excess and opening
   count before it. *)
let descend t pos =
  if pos < 0 || pos >= t.n then invalid_arg "Slp: position out of range";
  let k, start, e0, o0 = locate t pos in
  let s = ref (Intvec.get t.seq k)
  and off = ref (pos - start)
  and e = ref e0
  and o = ref o0 in
  while !s >= t.nterm do
    let r = !s - t.nterm in
    let a = Intvec.get t.left r in
    let la = t_len t a in
    if !off < la then s := a
    else begin
      off := !off - la;
      e := !e + t_exc t a;
      o := !o + t_open t a;
      s := Intvec.get t.right r
    end
  done;
  (!s, !e, !o)

let is_open t i =
  let s, _, _ = descend t i in
  s land 1 = 0

let tag t i =
  let s, _, _ = descend t i in
  s lsr 1

let excess t i =
  if i < 0 then 0
  else begin
    let s, e, _ = descend t i in
    e + (if s land 1 = 0 then 1 else -1)
  end

let preorder t i =
  let _, _, o = descend t i in
  o

(* ------------------------------------------------------------------ *)
(* Excess searches                                                      *)
(* ------------------------------------------------------------------ *)

let contains t node v = t.hmin.(node) <= v && v <= t.hmax.(node)

(* Leftmost position inside the expansion of [s] (starting at absolute
   position [pos], absolute excess [base] before it) whose prefix
   excess equals [v]; the caller guarantees containment, which descends
   because prefix excess is a ±1 walk attaining every value between its
   min and max. *)
let rec down_left t v s base pos =
  if s < t.nterm then pos
  else begin
    let r = s - t.nterm in
    let a = Intvec.get t.left r in
    if v >= base + t_min t a && v <= base + t_max t a then down_left t v a base pos
    else
      down_left t v (Intvec.get t.right r) (base + t_exc t a) (pos + t_len t a)
  end

(* Rightmost such position. *)
let rec down_right t v s base pos =
  if s < t.nterm then pos
  else begin
    let r = s - t.nterm in
    let a = Intvec.get t.left r and b = Intvec.get t.right r in
    let ea = base + t_exc t a in
    if v >= ea + t_min t b && v <= ea + t_max t b then
      down_right t v b ea (pos + t_len t a)
    else down_right t v a base pos
  end

(* Leftmost position with prefix excess [v] in slots [k, kend) given
   the absolute excess [e] and position [p] before slot [k]; -1 when
   the range does not attain it. *)
let scan_right t v k kend e p =
  let k = ref k and e = ref e and p = ref p in
  let found = ref (-1) in
  while !found < 0 && !k < kend do
    let s = Intvec.get t.seq !k in
    if v >= !e + t_min t s && v <= !e + t_max t s then
      found := down_left t v s !e !p
    else begin
      e := !e + t_exc t s;
      p := !p + t_len t s;
      incr k
    end
  done;
  !found

(* Rightmost such position in slots [k, kend); scans forward and keeps
   the last containing slot. *)
let scan_left t v k kend e p =
  let k = ref k and e = ref e and p = ref p in
  let best_s = ref (-1) and best_e = ref 0 and best_p = ref 0 in
  while !k < kend do
    let s = Intvec.get t.seq !k in
    if v >= !e + t_min t s && v <= !e + t_max t s then begin
      best_s := s;
      best_e := !e;
      best_p := !p
    end;
    e := !e + t_exc t s;
    p := !p + t_len t s;
    incr k
  done;
  if !best_s < 0 then -1 else down_right t v !best_s !best_e !best_p

(* Smallest j > i with excess(j) = v, or -1; [i >= -1]. *)
let fwd t i v =
  if t.n = 0 then -1
  else begin
    (* cover (i, end of i's slot) with pending right segments, then the
       rest of the home block, then the block heap *)
    let k, home =
      if i < 0 then (-1, 0)
      else begin
        let k, start, e0, _ = locate t i in
        let s = ref (Intvec.get t.seq k)
        and off = ref (i - start)
        and e = ref e0
        and p = ref start in
        let pending = ref [] in
        while !s >= t.nterm do
          let r = !s - t.nterm in
          let a = Intvec.get t.left r and b = Intvec.get t.right r in
          let la = t_len t a in
          if !off < la then begin
            pending := (b, !e + t_exc t a, !p + la) :: !pending;
            s := a
          end
          else begin
            off := !off - la;
            e := !e + t_exc t a;
            p := !p + la;
            s := b
          end
        done;
        let rec try_pending = function
          | (ps, pe, pp) :: rest ->
            if v >= pe + t_min t ps && v <= pe + t_max t ps then
              down_left t v ps pe pp
            else try_pending rest
          | [] -> -1
        in
        (k, try_pending !pending)
      end
    in
    if home >= 0 then home
    else begin
      let c = if k < 0 then 0 else k / cblock in
      (* rest of the home block: slots right of k *)
      let k1 = k + 1 in
      let e1, p1 =
        (* cumulative summaries at slot k1, rebuilt from the checkpoint *)
        let kk = ref (c * cblock) and e = ref t.cexc.(c) and p = ref t.cpos.(c) in
        while !kk < k1 do
          let s = Intvec.get t.seq !kk in
          e := !e + t_exc t s;
          p := !p + t_len t s;
          incr kk
        done;
        (!e, !p)
      in
      let kend = min (nslots t) ((c + 1) * cblock) in
      let local = scan_right t v k1 kend e1 p1 in
      if local >= 0 then local
      else begin
        (* climb to the nearest block to the right containing v *)
        let node = ref (t.bleaves + c) in
        let found = ref (-1) in
        while !found < 0 && !node > 1 do
          if !node land 1 = 0 && contains t (!node + 1) v then found := !node + 1
          else node := !node / 2
        done;
        if !found < 0 then -1
        else begin
          let node = ref !found in
          while !node < t.bleaves do
            node := if contains t (2 * !node) v then 2 * !node else (2 * !node) + 1
          done;
          let b = !node - t.bleaves in
          scan_right t v (b * cblock)
            (min (nslots t) ((b + 1) * cblock))
            t.cexc.(b) t.cpos.(b)
        end
      end
    end
  end

(* Largest j < i with excess(j) = v; -1 for the virtual position (only
   when v = 0), min_int for none; [i] in [0, n). *)
let bwd t i v =
  let none = if v = 0 then -1 else min_int in
  if t.n = 0 || i <= 0 then none
  else begin
    let k, start, e0, _ = locate t i in
    (* within-slot part: segments covering [start, i), nearest first *)
    let s = ref (Intvec.get t.seq k)
    and off = ref (i - start)
    and e = ref e0
    and p = ref start in
    let pending = ref [] in
    while !s >= t.nterm do
      let r = !s - t.nterm in
      let a = Intvec.get t.left r and b = Intvec.get t.right r in
      let la = t_len t a in
      if !off < la then s := a
      else begin
        pending := (a, !e, !p) :: !pending;
        off := !off - la;
        e := !e + t_exc t a;
        p := !p + la;
        s := b
      end
    done;
    let rec try_pending = function
      | (ps, pe, pp) :: rest ->
        if v >= pe + t_min t ps && v <= pe + t_max t ps then
          down_right t v ps pe pp
        else try_pending rest
      | [] -> -1
    in
    let home = try_pending !pending in
    if home >= 0 then home
    else begin
      let c = k / cblock in
      (* earlier slots of the home block *)
      let local = scan_left t v (c * cblock) k t.cexc.(c) t.cpos.(c) in
      if local >= 0 then local
      else begin
        (* climb to the nearest block to the left containing v *)
        let node = ref (t.bleaves + c) in
        let found = ref (-1) in
        while !found < 0 && !node > 1 do
          if !node land 1 = 1 && contains t (!node - 1) v then found := !node - 1
          else node := !node / 2
        done;
        if !found < 0 then none
        else begin
          let node = ref !found in
          while !node < t.bleaves do
            node := if contains t ((2 * !node) + 1) v then (2 * !node) + 1 else 2 * !node
          done;
          let b = !node - t.bleaves in
          let r =
            scan_left t v (b * cblock)
              (min (nslots t) ((b + 1) * cblock))
              t.cexc.(b) t.cpos.(b)
          in
          if r >= 0 then r else none
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Tree operations                                                      *)
(* ------------------------------------------------------------------ *)

let close t i =
  let s, e, _ = descend t i in
  if s land 1 <> 0 then invalid_arg "Slp.close: not an opening parenthesis";
  (* excess at i is e + 1; the match is the first j > i with excess e *)
  fwd t i e

let open_ t i =
  let s, e, _ = descend t i in
  if s land 1 = 0 then invalid_arg "Slp.open_: not a closing parenthesis";
  let p = bwd t i (e - 1) in
  if p = min_int then invalid_arg "Slp.open_: unbalanced" else p + 1

let enclose t i =
  if i = 0 then -1
  else begin
    let p = bwd t i (excess t i - 2) in
    if p = min_int then -1 else p + 1
  end

let root _ = 0

let node_of_preorder t p =
  if p < 0 || p >= t.n / 2 then invalid_arg "Slp.node_of_preorder";
  (* block, then slot, then rule descent — by opening count *)
  let lo = ref 0 and hi = ref (nblocks t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.copen.(mid) <= p then lo := mid else hi := mid - 1
  done;
  let c = !lo in
  let k = ref (c * cblock)
  and o = ref t.copen.(c)
  and pos = ref t.cpos.(c) in
  let continue_ = ref true in
  while !continue_ do
    let s = Intvec.get t.seq !k in
    let os = t_open t s in
    if !o + os <= p then begin
      o := !o + os;
      pos := !pos + t_len t s;
      incr k
    end
    else continue_ := false
  done;
  let s = ref (Intvec.get t.seq !k)
  and rem = ref (p - !o) in
  while !s >= t.nterm do
    let r = !s - t.nterm in
    let a = Intvec.get t.left r in
    let oa = t_open t a in
    if !rem < oa then s := a
    else begin
      rem := !rem - oa;
      pos := !pos + t_len t a;
      s := Intvec.get t.right r
    end
  done;
  !pos

let subtree_size t i = (close t i - i + 1) / 2
let is_ancestor t x y = x <= y && y <= close t x
let is_leaf t i = i + 1 >= t.n || not (is_open t (i + 1))
let first_child t i = if is_leaf t i then -1 else i + 1

let next_sibling t i =
  let c = close t i in
  if c + 1 < t.n && is_open t (c + 1) then c + 1 else -1

let parent t i = enclose t i
let depth t i = excess t i

(* ------------------------------------------------------------------ *)
(* Tag operations                                                       *)
(* ------------------------------------------------------------------ *)

let count_tag t tg = Intvec.get t.tchk.(tg) (nblocks t)

(* openings of [tg] among the first [off] positions of [s]'s expansion *)
let rec in_slot_rank t tg s off =
  if off <= 0 then 0
  else if off >= t_len t s then t_cnt t s tg
  else begin
    (* 0 < off < len, so [s] is a nonterminal *)
    let r = s - t.nterm in
    let a = Intvec.get t.left r in
    let la = t_len t a in
    if off <= la then in_slot_rank t tg a off
    else t_cnt t a tg + in_slot_rank t tg (Intvec.get t.right r) (off - la)
  end

let rank_tag t tg pos =
  if pos <= 0 then 0
  else if pos >= t.n then count_tag t tg
  else begin
    let c = find_block t pos in
    let k = ref (c * cblock)
    and p = ref t.cpos.(c)
    and acc = ref (Intvec.get t.tchk.(tg) c) in
    let continue_ = ref true in
    while !continue_ do
      let s = Intvec.get t.seq !k in
      let l = t_len t s in
      if !p + l <= pos then begin
        acc := !acc + t_cnt t s tg;
        p := !p + l;
        incr k
      end
      else continue_ := false
    done;
    !acc + in_slot_rank t tg (Intvec.get t.seq !k) (pos - !p)
  end

let select_tag t tg j =
  if j < 0 || j >= count_tag t tg then invalid_arg "Slp.select_tag";
  let chk = t.tchk.(tg) in
  (* largest block c with chk.(c) <= j (chk.(0) = 0) *)
  let lo = ref 0 and hi = ref (nblocks t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if Intvec.get chk mid <= j then lo := mid else hi := mid - 1
  done;
  let c = !lo in
  let k = ref (c * cblock)
  and pos = ref t.cpos.(c)
  and rem = ref (j - Intvec.get chk c) in
  let continue_ = ref true in
  while !continue_ do
    let s = Intvec.get t.seq !k in
    let cs = t_cnt t s tg in
    if !rem >= cs then begin
      rem := !rem - cs;
      pos := !pos + t_len t s;
      incr k
    end
    else continue_ := false
  done;
  let s = ref (Intvec.get t.seq !k) in
  while !s >= t.nterm do
    let r = !s - t.nterm in
    let a = Intvec.get t.left r in
    let ca = t_cnt t a tg in
    if !rem < ca then s := a
    else begin
      rem := !rem - ca;
      pos := !pos + t_len t a;
      s := Intvec.get t.right r
    end
  done;
  !pos

let next_tag t tg i =
  let r = rank_tag t tg (max i 0) in
  if r >= count_tag t tg then -1 else select_tag t tg r

let prev_tag t tg i =
  let r = rank_tag t tg (min i t.n) in
  if r = 0 then -1 else select_tag t tg (r - 1)

let subtree_tags t x tg =
  let c = close t x in
  rank_tag t tg (c + 1) - rank_tag t tg x

let tagged_desc t x tg =
  let c = close t x in
  let p = next_tag t tg (x + 1) in
  if p >= 0 && p < c then p else -1

let tagged_foll t x tg =
  let c = close t x in
  next_tag t tg (c + 1)

let tagged_next t i tg = next_tag t tg i

let tagged_prec t x tg =
  let rec go p =
    match prev_tag t tg p with
    | -1 -> -1
    | q -> if is_ancestor t q x then go q else q
  in
  go x

(* ------------------------------------------------------------------ *)
(* Leaf enumeration                                                     *)
(* ------------------------------------------------------------------ *)

let leaf_rank t pos =
  Array.fold_left (fun acc tg -> acc + rank_tag t tg pos) 0 t.leaf_tags

let leaf_count t =
  Array.fold_left (fun acc tg -> acc + count_tag t tg) 0 t.leaf_tags

let leaf_select t d =
  if d < 0 || d >= leaf_count t then invalid_arg "Slp.leaf_select";
  (* smallest p with leaf_rank (p + 1) = d + 1 is the d-th leaf *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if leaf_rank t (mid + 1) >= d + 1 then hi := mid else lo := mid + 1
  done;
  !lo

(** Grammar-compressed tree structure: a straight-line program (SLP)
    over the parenthesis/tag sequence, built by TreeRePair-style digram
    replacement, supporting the same navigation and tag-jump operations
    as the balanced-parentheses representation.

    The input is the document's parenthesis sequence with one symbol
    per parenthesis: position [i] carries terminal [2*tag(i)] if it is
    an opening parenthesis and [2*tag(i) + 1] if it is a closing one.
    Repeated digrams become nonterminals (one per qualifying digram
    type per round), so a highly repetitive tree collapses to a small
    rule set plus a short start sequence.

    Every nonterminal stores summaries of its expansion — length, net
    excess, min/max prefix excess, opening-parenthesis count, and a
    sparse per-tag table of opening counts — so a navigation hop
    descends the grammar instead of expanding it: each operation costs
    O(log #slots + grammar depth).

    Node identifiers, [excess], [close], [enclose] and the jump
    operations mirror {!Sxsi_tree.Bp} and {!Sxsi_tree.Tag_index}
    exactly: a node is the position of its opening parenthesis, [-1]
    means "no node", [bwd]-style searches treat position [-1] as having
    excess 0. *)

type t

val build :
  ?min_freq:int -> tag_count:int -> leaf_tags:int list -> int array -> t
(** [build ~tag_count ~leaf_tags syms] compresses the terminal sequence
    [syms] ([syms.(i) = 2*tag + 0] for "(", [+ 1] for ")").
    [min_freq] (default 4) is the digram-replacement threshold;
    [leaf_tags] are the tags whose opening parentheses {!leaf_rank} and
    {!leaf_select} enumerate (the text/attribute-value leaves).
    @raise Invalid_argument on an unbalanced sequence or an
    out-of-range symbol. *)

(** {1 Size} *)

val length : t -> int
(** Number of parentheses ([2 n] for [n] nodes). *)

val node_count : t -> int
val tag_count : t -> int
val rule_count : t -> int
(** Number of nonterminals in the grammar. *)

val slot_count : t -> int
(** Length of the start sequence after compression. *)

val depth_bound : t -> int
(** Height of the derivation forest: the maximum number of rule
    expansions a descent can traverse. *)

val space_bits : t -> int

(** {1 Sequence access} *)

val is_open : t -> int -> bool
val tag : t -> int -> int
val excess : t -> int -> int
(** Excess after position [i] (depth of the node opened at [i]). *)

(** {1 Navigation (Bp-equivalent)} *)

val close : t -> int -> int
val open_ : t -> int -> int
val enclose : t -> int -> int
(** Opening parenthesis of the parent; [-1] for the root. *)

val root : t -> int
val preorder : t -> int -> int
val node_of_preorder : t -> int -> int
val subtree_size : t -> int -> int
val is_ancestor : t -> int -> int -> bool
val is_leaf : t -> int -> bool
val first_child : t -> int -> int
val next_sibling : t -> int -> int
val parent : t -> int -> int
val depth : t -> int -> int

(** {1 Tag operations (Tag_index-equivalent)} *)

val count_tag : t -> int -> int
(** Total number of nodes carrying a tag. *)

val rank_tag : t -> int -> int -> int
(** [rank_tag t tag i]: number of [tag]-labeled nodes at opening
    positions [< i]. *)

val select_tag : t -> int -> int -> int
(** Position of the [j]-th [tag]-labeled node (0-based).
    @raise Invalid_argument when [j] is out of range. *)

val next_tag : t -> int -> int -> int
(** Smallest [tag]-opening position [>= i]; [-1] if none. *)

val prev_tag : t -> int -> int -> int
(** Largest [tag]-opening position [< i]; [-1] if none. *)

val subtree_tags : t -> int -> int -> int
val tagged_desc : t -> int -> int -> int
val tagged_foll : t -> int -> int -> int
val tagged_prec : t -> int -> int -> int
val tagged_next : t -> int -> int -> int

(** {1 Leaf enumeration}

    Rank/select over the opening positions of the [leaf_tags] given at
    build time (document order), replacing the Bp backend's explicit
    leaf bitvector. *)

val leaf_count : t -> int
(** Total number of leaf openings. *)

val leaf_rank : t -> int -> int
(** Number of leaf openings at positions [< i]. *)

val leaf_select : t -> int -> int
(** Position of the [d]-th leaf opening (0-based).
    @raise Invalid_argument when [d] is out of range. *)

let severities = [| "debug"; "info"; "warn"; "error" |]
let hosts = [| "web-01"; "web-02"; "db-01"; "cache-01"; "worker-03" |]
let procs = [| "nginx"; "postgres"; "app"; "scheduler"; "indexer" |]

(* Optional fields a non-templated entry may add, each with its own
   little subtree shape so structural variety actually perturbs the
   parenthesis sequence. *)
let optional_fields =
  [|
    (fun buf st ->
      Buffer.add_string buf "<trace><span>";
      Buffer.add_string buf (Words.number st 1_000_000);
      Buffer.add_string buf "</span><parent>";
      Buffer.add_string buf (Words.number st 1_000_000);
      Buffer.add_string buf "</parent></trace>");
    (fun buf st ->
      Buffer.add_string buf "<user id=\"";
      Buffer.add_string buf (Words.number st 10_000);
      Buffer.add_string buf "\">";
      Buffer.add_string buf (Words.name st);
      Buffer.add_string buf "</user>");
    (fun buf st ->
      Buffer.add_string buf "<ctx>";
      for _ = 1 to 1 + Random.State.int st 3 do
        Buffer.add_string buf "<kv key=\"";
        Buffer.add_string buf (Words.zipf_word st);
        Buffer.add_string buf "\">";
        Buffer.add_string buf (Words.zipf_word st);
        Buffer.add_string buf "</kv>"
      done;
      Buffer.add_string buf "</ctx>");
    (fun buf st ->
      Buffer.add_string buf "<latency unit=\"ms\">";
      Buffer.add_string buf (Words.number st 5_000);
      Buffer.add_string buf "</latency>");
    (fun buf st ->
      Buffer.add_string buf "<stack>";
      for _ = 1 to 2 + Random.State.int st 4 do
        Buffer.add_string buf "<frame>";
        Buffer.add_string buf (Words.zipf_word st);
        Buffer.add_string buf ".";
        Buffer.add_string buf (Words.zipf_word st);
        Buffer.add_string buf "</frame>"
      done;
      Buffer.add_string buf "</stack>");
  |]

(* The fixed templates: per template, which optional fields (by index)
   a stamped entry carries.  Texts still vary per entry; the element
   structure does not. *)
let templates = [| [||]; [| 3 |]; [| 1; 3 |] |]

let generate ?(seed = 42) ?(repetition = 0.9) ~entries () =
  if not (repetition >= 0.0 && repetition <= 1.0) then
    invalid_arg "Logs.generate: repetition must be in [0, 1]";
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create (entries * 150) in
  Buffer.add_string buf "<log>";
  for i = 1 to entries do
    let templated = Random.State.float st 1.0 < repetition in
    let sev = severities.(Random.State.int st (Array.length severities)) in
    Buffer.add_string buf "<entry severity=\"";
    Buffer.add_string buf sev;
    Buffer.add_string buf "\"><ts>";
    Buffer.add_string buf (string_of_int (1_700_000_000 + (i * 7)));
    Buffer.add_string buf "</ts><host>";
    Buffer.add_string buf (hosts.(Random.State.int st (Array.length hosts)));
    Buffer.add_string buf "</host><proc>";
    Buffer.add_string buf (procs.(Random.State.int st (Array.length procs)));
    Buffer.add_string buf "</proc><msg>";
    Buffer.add_string buf (Words.sentence st (3 + Random.State.int st 6));
    Buffer.add_string buf "</msg>";
    if templated then
      Array.iter
        (fun f -> optional_fields.(f) buf st)
        templates.(Random.State.int st (Array.length templates))
    else begin
      (* random subset, random order length: structural noise *)
      for f = 0 to Array.length optional_fields - 1 do
        if Random.State.bool st then optional_fields.(f) buf st
      done
    end;
    Buffer.add_string buf "</entry>"
  done;
  Buffer.add_string buf "</log>";
  Buffer.contents buf

(** Synthetic structured-log documents: a flat stream of [entry]
    records under one [log] root, the highly-repetitive-structure
    workload class (application logs, telemetry exports) the
    grammar-compressed tree backend targets.

    [repetition] in [0, 1] (default [0.9]) is the fraction of entries
    stamped from a handful of fixed structural templates — their
    element structure is byte-identical, only the texts vary — while
    the rest draw a random subset of optional fields, breaking digram
    repetition.  At [1.0] the tree structure is one template repeated
    [entries] times. *)

val generate : ?seed:int -> ?repetition:float -> entries:int -> unit -> string
(** [generate ~entries ()] builds a document with [entries] log
    records; [entries = 1000] gives roughly 150 KB of XML.
    @raise Invalid_argument when [repetition] is outside [0, 1]. *)

open Sxsi_fm

type store =
  | Plain_store
  | Lz78_store
  | No_store

type stored =
  | SPlain of string array
  | SLz78 of Lz78.t
  | SNone

type t = {
  d : int;                     (* real text count; the FM-index holds a
                                  dummy empty text when d = 0 *)
  fm : Fm_index.t;
  stored : stored;
  contains_cutoff : int;
  (* the Doc sequence as a wavelet tree, built on the first
     range-restricted query (the general form of §3.2, after [46]) *)
  doc_wavelet : Sxsi_bits.Int_wavelet.t option ref;
}

type contains_strategy = Fm_locate | Plain_scan

let build ?pool ?(sample_rate = 64) ?(store_plain = true) ?store
    ?(contains_cutoff = 10_000) texts =
  let d = Array.length texts in
  let store =
    match store with
    | Some s -> s
    | None -> if store_plain then Plain_store else No_store
  in
  {
    d;
    fm = Fm_index.build ?pool ~sample_rate (if d = 0 then [| "" |] else texts);
    stored =
      (match store with
      | Plain_store -> SPlain (Array.copy texts)
      | Lz78_store -> SLz78 (Lz78.of_texts texts)
      | No_store -> SNone);
    contains_cutoff;
    doc_wavelet = ref None;
  }

let doc_count t = t.d
let total_length t = if t.d = 0 then 0 else Fm_index.length t.fm
let has_plain t = t.stored <> SNone

let store_space_bits t =
  match t.stored with
  | SPlain a -> Array.fold_left (fun acc s -> acc + (8 * String.length s) + 128) 64 a
  | SLz78 lz -> Lz78.space_bits lz
  | SNone -> 0

let get_text t i =
  match t.stored with
  | SPlain a -> a.(i)
  | SLz78 lz -> Lz78.get lz i
  | SNone -> Fm_index.extract t.fm i

let global_count t p = if t.d = 0 then 0 else Fm_index.count t.fm p

(* Horspool substring search over one text; calls [f] at each match
   start and can stop after the first via exception. *)
exception Found

let occurs_in text p =
  let n = String.length text and m = String.length p in
  if m = 0 || m > n then false
  else begin
    let shift = Array.make 256 m in
    for i = 0 to m - 2 do
      shift.(Char.code p.[i]) <- m - 1 - i
    done;
    let i = ref 0 in
    try
      while !i <= n - m do
        let j = ref (m - 1) in
        while !j >= 0 && text.[!i + !j] = p.[!j] do
          decr j
        done;
        if !j < 0 then raise Found;
        i := !i + shift.(Char.code text.[!i + m - 1])
      done;
      false
    with Found -> true
  end

let sorted_unique l = List.sort_uniq compare l

(* ------------------------------------------------------------------ *)
(* contains                                                             *)
(* ------------------------------------------------------------------ *)

let contains_fm t p =
  let sp, ep = Fm_index.search t.fm p in
  let ids = ref [] in
  for r = sp to ep - 1 do
    let pos = Fm_index.locate t.fm r in
    let id, _ = Fm_index.pos_to_text t.fm pos in
    ids := id :: !ids
  done;
  sorted_unique !ids

let contains_plain t p =
  let ids = ref [] in
  for i = t.d - 1 downto 0 do
    if occurs_in (get_text t i) p then ids := i :: !ids
  done;
  !ids

let contains_strategy t p =
  match t.stored with
  | (SPlain _ | SLz78 _) when global_count t p > t.contains_cutoff -> Plain_scan
  | SPlain _ | SLz78 _ | SNone -> Fm_locate

let contains_via t strategy p =
  if String.length p = 0 then []
  else
    match (strategy, t.stored) with
    | Plain_scan, (SPlain _ | SLz78 _) -> contains_plain t p
    | Plain_scan, SNone -> invalid_arg "Text_collection.contains_via: no plain store"
    | Fm_locate, _ -> contains_fm t p

let contains t p =
  if String.length p = 0 || t.d = 0 then []
  else contains_via t (contains_strategy t p) p

let contains_count t p = List.length (contains t p)
let contains_exists t p = contains t p <> []

(* ------------------------------------------------------------------ *)
(* starts-with / equals / ends-with (§3.2)                              *)
(* ------------------------------------------------------------------ *)

(* Rows in the search range whose BWT symbol is an end-marker are texts
   whose first character starts the matched suffix, i.e. texts prefixed
   by the pattern. *)
let starts_with t p =
  if t.d = 0 then [] else
  let sp, ep = Fm_index.search t.fm p in
  let ids = ref [] in
  Fm_index.iter_dollar_docs t.fm sp ep (fun id -> ids := id :: !ids);
  sorted_unique !ids

let starts_with_count t p =
  if t.d = 0 then 0 else
  let sp, ep = Fm_index.search t.fm p in
  Fm_index.dollar_count_in t.fm sp ep

(* Backward search started from the first d rows (the end-marker rows,
   text z's terminator in column F at row z) matches texts ending with
   the pattern. *)
let ends_with_range t p =
  Fm_index.search_within t.fm p 0 (Fm_index.doc_count t.fm)

let ends_with t p =
  if t.d = 0 then [] else
  let sp, ep = ends_with_range t p in
  let ids = ref [] in
  for r = sp to ep - 1 do
    let pos = Fm_index.locate t.fm r in
    let id, _ = Fm_index.pos_to_text t.fm pos in
    ids := id :: !ids
  done;
  sorted_unique !ids

let ends_with_count t p =
  if t.d = 0 then 0 else
  let sp, ep = ends_with_range t p in
  ep - sp

(* Whole-text equality: ends-with search, then keep rows preceded by an
   end-marker (the text is exactly the pattern). *)
let equals t p =
  if t.d = 0 then [] else
  let sp, ep = ends_with_range t p in
  let ids = ref [] in
  Fm_index.iter_dollar_docs t.fm sp ep (fun id -> ids := id :: !ids);
  sorted_unique !ids

let equals_count t p =
  if t.d = 0 then 0 else
  let sp, ep = ends_with_range t p in
  Fm_index.dollar_count_in t.fm sp ep

(* ------------------------------------------------------------------ *)
(* Range-restricted variants.  starts-with / equals map a backward
   search straight to end-marker rows, so the Doc wavelet tree answers
   them in O(log d) per reported text; contains / ends-with must locate
   occurrences first and filter.                                        *)
(* ------------------------------------------------------------------ *)

let doc_wavelet t =
  match !(t.doc_wavelet) with
  | Some w -> w
  | None ->
    let seq = Array.init t.d (fun j -> Fm_index.dollar_doc_at t.fm j) in
    let w = Sxsi_bits.Int_wavelet.of_array ~sigma:(max 1 t.d) seq in
    t.doc_wavelet := Some w;
    w

let dollar_range_report t sp ep ~lo ~hi =
  if t.d = 0 then []
  else begin
    let jlo, jhi = Fm_index.dollar_index_range t.fm sp ep in
    Sxsi_bits.Int_wavelet.range_report (doc_wavelet t) ~lo:jlo ~hi:jhi ~vlo:lo ~vhi:hi
  end

let in_range lo hi ids = List.filter (fun d -> d >= lo && d < hi) ids
let contains_in t p ~lo ~hi = in_range lo hi (contains t p)

let equals_in t p ~lo ~hi =
  if t.d = 0 then []
  else begin
    let sp, ep = ends_with_range t p in
    dollar_range_report t sp ep ~lo ~hi
  end

let starts_with_in t p ~lo ~hi =
  if t.d = 0 then []
  else begin
    let sp, ep = Fm_index.search t.fm p in
    dollar_range_report t sp ep ~lo ~hi
  end

let ends_with_in t p ~lo ~hi = in_range lo hi (ends_with t p)

(* ------------------------------------------------------------------ *)
(* Lexicographic comparisons                                            *)
(* ------------------------------------------------------------------ *)

(* A text row (BWT symbol = end-marker) sorts below every rotation
   starting with p exactly when its text is lexicographically smaller
   than p: rows below the insertion point [sp] of [bounds]. *)
let less_than t p =
  if t.d = 0 then [] else
  let sp, _ = Fm_index.bounds t.fm p in
  let ids = ref [] in
  Fm_index.iter_dollar_docs t.fm 0 sp (fun id -> ids := id :: !ids);
  sorted_unique !ids

let less_than_count t p =
  if t.d = 0 then 0 else
  let sp, _ = Fm_index.bounds t.fm p in
  Fm_index.dollar_count_in t.fm 0 sp

let less_equal t p = sorted_unique (less_than t p @ equals t p)
let less_equal_count t p = less_than_count t p + equals_count t p

let all_ids t = List.init (doc_count t) (fun i -> i)

let greater_equal t p =
  let lt = less_than t p in
  List.filter (fun i -> not (List.mem i lt)) (all_ids t)

let greater_than t p =
  let le = less_equal t p in
  List.filter (fun i -> not (List.mem i le)) (all_ids t)

(* ------------------------------------------------------------------ *)

let fm_space_bits t = Fm_index.space_bits t.fm

let space_bits t = fm_space_bits t + store_space_bits t

(** The text collection of an XML document: the set of [d] texts (one
    per [#]/[%]-labeled tree leaf), indexed by an FM-index and
    optionally mirrored in plain form for fast extraction and for
    high-occurrence [contains] queries (§3.2-3.4 of the paper).

    Every operator takes a pattern and answers over text identifiers
    [0 .. d-1].  Reporting operators return identifiers sorted
    increasingly and duplicate-free. *)

type t

type store =
  | Plain_store   (** verbatim copy: fastest extraction (§3.4's choice) *)
  | Lz78_store    (** LZ78-compressed copy: compressed space, linear
                      extraction (§3.4's alternative) *)
  | No_store      (** extraction through the FM-index only *)

val build : ?pool:Sxsi_par.Pool.t -> ?sample_rate:int -> ?store_plain:bool ->
  ?store:store -> ?contains_cutoff:int -> string array -> t
(** [build texts] indexes the collection.  The secondary text store
    (§3.4) defaults to [Plain_store]; [store_plain:false] is a shorthand
    for [No_store], and an explicit [store] wins over it.
    [contains_cutoff] (default [10_000]) is the global occurrence count
    beyond which [contains] switches from FM locating to scanning the
    stored copy, when one exists.  [pool] parallelizes the underlying
    {!Sxsi_fm.Fm_index.build} without changing its result. *)

val doc_count : t -> int
val total_length : t -> int
val has_plain : t -> bool
(** Whether a secondary store (plain or LZ78) is present. *)

val store_space_bits : t -> int
(** Size of the secondary text store, 0 when absent. *)

val get_text : t -> int -> string
(** Content of a text (plain copy when present, FM extraction
    otherwise). *)

val global_count : t -> string -> int
(** Number of occurrences of the pattern across all texts
    ([GlobalCount] in Table II), in [O(|p| log sigma)]. *)

(** {1 XPath predicates} *)

val contains : t -> string -> int list
val contains_count : t -> string -> int
val contains_exists : t -> string -> bool

val equals : t -> string -> int list
val equals_count : t -> string -> int

val starts_with : t -> string -> int list
val starts_with_count : t -> string -> int

val ends_with : t -> string -> int list
val ends_with_count : t -> string -> int

(** {1 Range-restricted predicates}

    The general form of the §3.2 operators, restricted to text
    identifiers in [\[lo, hi)] — the §7 hook for confining a search to
    one subtree's texts.  (The paper's prototype only implements the
    full range; this implementation answers the full-range query on the
    index and filters, which is correct but not sublinear in the number
    of matches outside the range.) *)

val contains_in : t -> string -> lo:int -> hi:int -> int list
val equals_in : t -> string -> lo:int -> hi:int -> int list
val starts_with_in : t -> string -> lo:int -> hi:int -> int list
val ends_with_in : t -> string -> lo:int -> hi:int -> int list

(** {1 Lexicographic operators} *)

val less_than : t -> string -> int list
(** Texts strictly smaller than the pattern. *)

val less_equal : t -> string -> int list
val greater_than : t -> string -> int list
val greater_equal : t -> string -> int list
val less_than_count : t -> string -> int
val less_equal_count : t -> string -> int

(** {1 Strategy introspection (for the benchmark harness)} *)

type contains_strategy = Fm_locate | Plain_scan

val contains_strategy : t -> string -> contains_strategy
(** The strategy [contains] would pick for this pattern. *)

val contains_via : t -> contains_strategy -> string -> int list
(** Force a strategy (used by the Table II/III cutoff experiment). *)

val space_bits : t -> int
val fm_space_bits : t -> int

(** Bounded least-recently-used cache: O(1) find / add / remove via a
    hash table over an intrusive doubly-linked recency list.

    Not thread-safe on its own — the service serializes access behind
    its lock. *)

type ('k, 'v) t

val create : cap:int -> ('k, 'v) t
(** A cache holding at most [cap] entries; [cap = 0] disables caching
    ([add] is a no-op, [find] always misses). *)

val capacity : ('k, 'v) t -> int
(** The [cap] the cache was created with. *)

val length : ('k, 'v) t -> int
(** Number of entries currently cached. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup, promoting the entry to most-recently-used on a hit. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or replace) as most-recently-used, evicting the
    least-recently-used entries while over capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Drop one entry if present (does not count as eviction). *)

val clear : ('k, 'v) t -> unit
(** Drop every entry (does not count as eviction). *)

val evictions : ('k, 'v) t -> int
(** Entries dropped by capacity pressure since [create]. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries from most- to least-recently-used (for tests/stats). *)

open Sxsi_xml
open Sxsi_core

type options = {
  max_doc_bytes : int;
  compiled_cache : int;
  count_cache : int;
  enable_jump : bool;
  enable_memo : bool;
  enable_early : bool;
}

let default_options =
  {
    max_doc_bytes = max_int;
    compiled_cache = 256;
    count_cache = 4096;
    enable_jump = true;
    enable_memo = true;
    enable_early = false;
  }

(* Cache key: document name + registration generation (so a reload
   under the same name invalidates everything), the query text, and the
   engine-configuration fingerprint. *)
type key = { kdoc : string; kgen : int; kquery : string; kconfig : string }

type t = {
  opts : options;
  config_fp : string;
  lock : Mutex.t;
  registry : Registry.t;
  compiled : (key, Engine.compiled) Lru.t;
  counts : (key, int) Lru.t;
  metrics : Metrics.t;
}

let config_fingerprint o =
  Printf.sprintf "j%bm%be%b" o.enable_jump o.enable_memo o.enable_early

let create ?(options = default_options) () =
  {
    opts = options;
    config_fp = config_fingerprint options;
    lock = Mutex.create ();
    registry = Registry.create ~max_bytes:options.max_doc_bytes ();
    compiled = Lru.create ~cap:options.compiled_cache;
    counts = Lru.create ~cap:options.count_cache;
    metrics = Metrics.create ();
  }

let locked t f = Mutex.protect t.lock f

let run_config t =
  {
    Run.enable_jump = t.opts.enable_jump;
    enable_memo = t.opts.enable_memo;
    enable_early = t.opts.enable_early;
    stats = Run.fresh_stats ();
  }

(* ------------------------------------------------------------------ *)
(* Documents                                                            *)
(* ------------------------------------------------------------------ *)

let add_document t name doc = locked t (fun () -> ignore (Registry.add t.registry name doc))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_document path =
  if Filename.check_suffix path ".sxsi" then Document.load path
  else Document.of_xml (read_file path)

(* Drop the cached queries of an evicted/replaced document right away
   rather than letting generation-stale entries age out: they pin the
   whole document in memory. *)
let purge_caches_of t name =
  let purge : 'v. (key, 'v) Lru.t -> unit =
   fun cache ->
    List.iter
      (fun (k, _) -> if k.kdoc = name then Lru.remove cache k)
      (Lru.to_list cache)
  in
  purge t.compiled;
  purge t.counts

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad_request of string

let find_doc t doc =
  match Registry.find t.registry doc with
  | Some e -> e
  | None -> raise (Bad_request ("unknown document: " ^ doc))

(* Resolve a (doc, query) pair to a ready-to-run compiled query,
   compiling and caching on miss.  Compilation happens under the lock:
   it is query-sized work, and publishing only precompiled values keeps
   concurrent evaluation safe. *)
let compiled_for t doc query =
  locked t (fun () ->
      let e = find_doc t doc in
      let k = { kdoc = doc; kgen = e.Registry.generation; kquery = query; kconfig = t.config_fp } in
      match Lru.find t.compiled k with
      | Some c ->
        t.metrics.Metrics.compiled_hits <- t.metrics.Metrics.compiled_hits + 1;
        (k, c)
      | None ->
        t.metrics.Metrics.compiled_misses <- t.metrics.Metrics.compiled_misses + 1;
        let c =
          try Engine.prepare e.Registry.doc query with
          | Sxsi_xpath.Xpath_parser.Parse_error (pos, msg) ->
            raise (Bad_request (Printf.sprintf "query parse error at %d: %s" pos msg))
          | Sxsi_auto.Compile.Unsupported msg -> raise (Bad_request ("unsupported query: " ^ msg))
        in
        Engine.precompile c;
        Lru.add t.compiled k c;
        (k, c))

let count t doc query =
  let k, c = compiled_for t doc query in
  let cached =
    locked t (fun () ->
        match Lru.find t.counts k with
        | Some n ->
          t.metrics.Metrics.count_hits <- t.metrics.Metrics.count_hits + 1;
          Some n
        | None ->
          t.metrics.Metrics.count_misses <- t.metrics.Metrics.count_misses + 1;
          None)
  in
  match cached with
  | Some n -> n
  | None ->
    let n = Engine.count ~config:(run_config t) c in
    locked t (fun () -> Lru.add t.counts k n);
    n

let select_preorders t doc query =
  let _, c = compiled_for t doc query in
  Engine.select_preorders ~config:(run_config t) c

let materialize t doc query =
  let _, c = compiled_for t doc query in
  let d = locked t (fun () -> (find_doc t doc).Registry.doc) in
  let nodes = Engine.select ~config:(run_config t) c in
  Array.to_list (Array.map (Document.serialize d) nodes)

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                     *)
(* ------------------------------------------------------------------ *)

let stats t =
  locked t (fun () ->
      t.metrics.Metrics.doc_evictions <- Registry.evictions t.registry;
      Metrics.to_assoc t.metrics
      @ [
          ("documents", string_of_int (Registry.count t.registry));
          ("document_bytes", string_of_int (Registry.total_bytes t.registry));
          ("document_names", String.concat "," (Registry.names t.registry));
          ("compiled_entries", string_of_int (Lru.length t.compiled));
          ("compiled_evictions", string_of_int (Lru.evictions t.compiled));
          ("count_entries", string_of_int (Lru.length t.counts));
          ("count_evictions", string_of_int (Lru.evictions t.counts));
        ])

let dispatch t (req : Protocol.request) : Protocol.response =
  match req with
  | Load { name; path } -> begin
    (* parse/load outside the lock: it is the expensive part *)
    match load_document path with
    | doc ->
      let e =
        locked t (fun () ->
            purge_caches_of t name;
            Registry.add t.registry name doc)
      in
      Protocol.Ok
        [
          "loaded"; name;
          Printf.sprintf "nodes=%d" (Document.node_count doc);
          Printf.sprintf "bytes=%d" e.Registry.bytes;
        ]
    | exception Sys_error msg -> Protocol.Err msg
    | exception Failure msg -> Protocol.Err msg
    | exception Xml_parser.Parse_error (pos, msg) ->
      Protocol.Err (Printf.sprintf "XML parse error at %d: %s" pos msg)
  end
  | Count { doc; query } -> Protocol.Ok [ string_of_int (count t doc query) ]
  | Query { doc; query } ->
    Protocol.Data (Array.to_list (Array.map string_of_int (select_preorders t doc query)))
  | Materialize { doc; query } ->
    (* payload lines must be newline-free; serialized XML may not be *)
    Protocol.Data (List.concat_map (String.split_on_char '\n') (materialize t doc query))
  | Stats -> Protocol.Data (List.map (fun (k, v) -> k ^ "=" ^ v) (stats t))
  | Evict name ->
    locked t (fun () ->
        if Registry.evict t.registry name then begin
          purge_caches_of t name;
          Protocol.Ok [ "evicted"; name ]
        end
        else Protocol.Err ("unknown document: " ^ name))
  | Quit -> Protocol.Ok [ "bye" ]

let handle t req =
  let t0 = Unix.gettimeofday () in
  let resp = try dispatch t req with Bad_request msg -> Protocol.Err msg in
  let dt = Unix.gettimeofday () -. t0 in
  locked t (fun () ->
      t.metrics.Metrics.requests <- t.metrics.Metrics.requests + 1;
      (match resp with
      | Protocol.Err _ -> t.metrics.Metrics.errors <- t.metrics.Metrics.errors + 1
      | _ -> ());
      t.metrics.Metrics.latency <- t.metrics.Metrics.latency +. dt);
  resp

let handle_line t line =
  match Protocol.parse_request line with
  | Result.Ok req -> handle t req
  | Error msg ->
    locked t (fun () ->
        t.metrics.Metrics.requests <- t.metrics.Metrics.requests + 1;
        t.metrics.Metrics.errors <- t.metrics.Metrics.errors + 1);
    Protocol.Err msg

open Sxsi_xml
open Sxsi_core
module Budget = Sxsi_qos.Budget
module Breaker = Sxsi_qos.Breaker
module J = Sxsi_obs.Journal

(* Flight-recorder span names for the request lifecycle. *)
let n_parse = J.name "service/parse"
let n_eval = J.name "service/eval"
let n_request = J.name "service/request"

(* The registry lock is the most shared mutex in the process (every
   cache lookup and latency record takes it from every serving domain);
   watch it for the contention profile. *)
let lock_site = Sxsi_obs.Contend.site "service.lock"

type options = {
  max_doc_bytes : int;
  compiled_cache : int;
  count_cache : int;
  enable_jump : bool;
  enable_memo : bool;
  enable_early : bool;
  optimize : bool;  (* whole-query automaton optimization at compile time *)
  domains : int;
  default_deadline_ms : int;
  max_results : int;
  max_result_bytes : int;
  breaker_threshold : int;
  breaker_cooldown_ms : int;
  slow_ms : int;  (* requests slower than this land in the slow-query log; 0 = off *)
  backend : Document.backend option;  (* tree backend for indexing; None = env/default *)
}

let default_options =
  {
    max_doc_bytes = max_int;
    compiled_cache = 256;
    count_cache = 4096;
    enable_jump = true;
    enable_memo = true;
    enable_early = false;
    optimize = true;
    domains = 1;
    default_deadline_ms = 0;
    max_results = 0;
    max_result_bytes = 0;
    breaker_threshold = 0;
    breaker_cooldown_ms = 1000;
    slow_ms = 0;
    backend = None;
  }

(* Cache key: document name + registration generation (so a reload
   under the same name invalidates everything), the query text, and the
   engine-configuration fingerprint. *)
type key = { kdoc : string; kgen : int; kquery : string; kconfig : string }

type t = {
  opts : options;
  config_fp : string;
  lock : Mutex.t;
  registry : Registry.t;
  compiled : (key, Engine.compiled) Lru.t;
  counts : (key, int) Lru.t;
  metrics : Metrics.t;
  exposition : Sxsi_obs.Exposition.t;
  pool : Sxsi_par.Pool.t option;  (* shared by builds and queries; None when domains <= 1 *)
  breakers : (string, Breaker.t) Hashtbl.t;
      (* per-document, keyed by name (survives reloads).  Guarded by
         its own mutex: the exposition's breaker gauge renders under
         the service lock, so taking [lock] again would deadlock. *)
  breakers_lock : Mutex.t;
  slow_log : Sxsi_obs.Slowlog.t option;
}

let config_fingerprint o =
  Printf.sprintf "j%bm%be%bo%b" o.enable_jump o.enable_memo o.enable_early o.optimize

(* Everything the service knows how to report, in the Prometheus text
   format.  Gauges and callback counters read the live structures at
   render time; [metrics_text] renders under the service lock. *)
let build_exposition ~metrics ~registry ~compiled ~counts ~breakers ~breakers_lock =
  let e = Sxsi_obs.Exposition.create () in
  let counter = Sxsi_obs.Exposition.register_counter e in
  counter ~help:"Requests handled, including errors." ~name:"sxsi_requests_total"
    metrics.Metrics.requests;
  counter ~help:"Requests answered with ERR." ~name:"sxsi_errors_total"
    metrics.Metrics.errors;
  counter ~help:"Compiled-query cache hits." ~name:"sxsi_compiled_cache_hits_total"
    metrics.Metrics.compiled_hits;
  counter ~help:"Compiled-query cache misses." ~name:"sxsi_compiled_cache_misses_total"
    metrics.Metrics.compiled_misses;
  counter ~help:"Result-count cache hits." ~name:"sxsi_count_cache_hits_total"
    metrics.Metrics.count_hits;
  counter ~help:"Result-count cache misses." ~name:"sxsi_count_cache_misses_total"
    metrics.Metrics.count_misses;
  counter ~help:"Connections accepted into a session." ~name:"sxsi_connections_opened_total"
    metrics.Metrics.connections_opened;
  counter ~help:"Sessions finished, for any reason." ~name:"sxsi_connections_closed_total"
    metrics.Metrics.connections_closed;
  counter ~help:"Connections refused because the accept queue was full."
    ~name:"sxsi_connections_shed_total" metrics.Metrics.connections_shed;
  Sxsi_obs.Exposition.register_histogram e
    ~help:"Request latency." ~scale:1e-9 ~name:"sxsi_request_duration_seconds"
    metrics.Metrics.latency;
  let gauge = Sxsi_obs.Exposition.register_gauge e in
  gauge ~help:"Documents registered." ~name:"sxsi_documents" (fun () ->
      float_of_int (Registry.count registry));
  gauge ~help:"Estimated bytes of the registered document indexes."
    ~name:"sxsi_document_bytes" (fun () -> float_of_int (Registry.total_bytes registry));
  gauge ~help:"Compiled-query cache entries." ~name:"sxsi_compiled_cache_entries"
    (fun () -> float_of_int (Lru.length compiled));
  gauge ~help:"Result-count cache entries." ~name:"sxsi_count_cache_entries" (fun () ->
      float_of_int (Lru.length counts));
  let cb = Sxsi_obs.Exposition.register_callback_counter e in
  cb ~help:"Documents dropped by byte pressure." ~name:"sxsi_document_evictions_total"
    (fun () -> float_of_int (Registry.evictions registry));
  cb ~help:"Compiled queries dropped by capacity pressure."
    ~name:"sxsi_compiled_cache_evictions_total" (fun () ->
      float_of_int (Lru.evictions compiled));
  cb ~help:"Cached counts dropped by capacity pressure."
    ~name:"sxsi_count_cache_evictions_total" (fun () ->
      float_of_int (Lru.evictions counts));
  (* Resource-governance series.  The qos_* totals read the
     process-wide Sxsi_qos counters — one process runs one service in
     practice; co-hosted services report shared totals. *)
  counter ~help:"Requests answered ERR DEADLINE." ~name:"sxsi_deadline_errors_total"
    metrics.Metrics.deadline_errors;
  counter ~help:"Requests answered ERR BUDGET." ~name:"sxsi_budget_errors_total"
    metrics.Metrics.budget_errors;
  counter ~help:"Requests refused by an open circuit breaker."
    ~name:"sxsi_breaker_rejections_total" metrics.Metrics.breaker_rejections;
  counter ~help:"Query budgets tripped by their deadline (process-wide)."
    ~name:"sxsi_qos_deadline_exceeded_total" Budget.deadline_exceeded_total;
  counter ~help:"Query budgets tripped for any reason (process-wide)."
    ~name:"sxsi_qos_exceeded_total" Budget.exceeded_total;
  counter
    ~help:"Evaluation chunks cancelled because a sibling tripped the shared budget (process-wide)."
    ~name:"sxsi_qos_cancelled_chunks_total" Budget.cancelled_chunks_total;
  gauge ~help:"Documents whose circuit breaker is currently refusing requests."
    ~name:"sxsi_qos_breaker_open" (fun () ->
      Mutex.protect breakers_lock (fun () ->
          float_of_int
            (Hashtbl.fold
               (fun _ b n -> if Breaker.is_open b then n + 1 else n)
               breakers 0)));
  Sxsi_obs.Exposition.register_histogram e
    ~help:"Accept-queue wait before a connection's first request." ~scale:1e-9
    ~name:"sxsi_admission_wait_seconds" metrics.Metrics.admission_wait;
  (* Flight-recorder series.  Process-global, registered here (not in
     Runtime.register) so drops and ring pressure are visible in
     METRICS whether or not the runtime sampler is running. *)
  gauge ~help:"1 while the flight recorder is recording."
    ~name:"sxsi_journal_enabled" (fun () -> if J.enabled () then 1.0 else 0.0);
  cb ~help:"Journal records ever written, including overwritten ones."
    ~name:"sxsi_journal_records_total" (fun () -> float_of_int (J.records_total ()));
  cb ~help:"Journal records lost to ring wrap-around."
    ~name:"sxsi_journal_dropped_total" (fun () -> float_of_int (J.dropped_total ()));
  Sxsi_obs.Exposition.register_multi_gauge e
    ~help:"Journal records lost to wrap-around, by recording domain."
    ~name:"sxsi_journal_ring_dropped_total"
    (fun () ->
      List.map
        (fun (dom, dropped, _held, _cap) ->
          ([ ("domain", string_of_int dom) ], float_of_int dropped))
        (J.ring_stats ()));
  Sxsi_obs.Exposition.register_multi_gauge e
    ~help:"How full each domain's journal ring is, in percent."
    ~name:"sxsi_journal_ring_occupancy_percent"
    (fun () ->
      List.map
        (fun (dom, _dropped, held, cap) ->
          ( [ ("domain", string_of_int dom) ],
            100.0 *. float_of_int held /. float_of_int (max 1 cap) ))
        (J.ring_stats ()));
  (* The sampling profiler's series (sampler state, wall seconds by
     root span, lock contention by site). *)
  Sxsi_prof.Prof.register_metrics e;
  e

let create ?(options = default_options) ?slow_log () =
  Sxsi_qos.Failpoint.init_from_env ();
  let metrics = Metrics.create () in
  let registry = Registry.create ~max_bytes:options.max_doc_bytes () in
  let compiled = Lru.create ~cap:options.compiled_cache in
  let counts = Lru.create ~cap:options.count_cache in
  let breakers = Hashtbl.create 8 in
  let breakers_lock = Mutex.create () in
  let exposition =
    build_exposition ~metrics ~registry ~compiled ~counts ~breakers ~breakers_lock
  in
  let pool =
    if options.domains > 1 then begin
      let p = Sxsi_par.Pool.create ~name:"service" ~domains:options.domains () in
      Sxsi_par.Pool.register_metrics p exposition;
      Some p
    end
    else None
  in
  {
    opts = options;
    config_fp = config_fingerprint options;
    lock = Mutex.create ();
    registry;
    compiled;
    counts;
    metrics;
    exposition;
    pool;
    breakers;
    breakers_lock;
    slow_log;
  }

let pool t = t.pool
let service_metrics t = t.metrics
let slow_log t = t.slow_log

let shutdown t =
  Option.iter Sxsi_par.Pool.shutdown t.pool;
  Option.iter Sxsi_obs.Slowlog.close t.slow_log

(* Server front ends hang their worker/queue gauges off the service's
   exposition so METRICS reports them alongside everything else. *)
let register_server t ~workers ~queue_depth =
  Mutex.protect t.lock (fun () ->
      let gauge = Sxsi_obs.Exposition.register_gauge t.exposition in
      gauge ~help:"Server worker domains." ~name:"sxsi_server_workers" (fun () ->
          float_of_int (workers ()));
      gauge ~help:"Connections waiting in the accept queue."
        ~name:"sxsi_server_queue_depth" (fun () -> float_of_int (queue_depth ())))

(* Front ends with their own instrumentation (the event loop's turn
   and coalescing counters) register it under the same lock. *)
let register_exposition t f = Mutex.protect t.lock (fun () -> f t.exposition)

(* Likewise for the runtime sampler: the serve front end starts one
   and hangs its GC/journal series off the shared exposition. *)
let register_runtime t sampler =
  Mutex.protect t.lock (fun () ->
      Sxsi_obs.Runtime.register sampler t.exposition)

let locked t f = Sxsi_obs.Contend.with_lock lock_site t.lock f

let run_config t =
  {
    Run.enable_jump = t.opts.enable_jump;
    enable_memo = t.opts.enable_memo;
    enable_early = t.opts.enable_early;
    stats = Run.fresh_stats ();
  }

(* ------------------------------------------------------------------ *)
(* Documents                                                            *)
(* ------------------------------------------------------------------ *)

let add_document t name doc = locked t (fun () -> ignore (Registry.add t.registry name doc))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_document ?pool ?backend path =
  if Filename.check_suffix path ".sxsi" then Document.load path
  else Document.of_xml ?pool ?backend (read_file path)

(* Drop the cached queries of an evicted/replaced document right away
   rather than letting generation-stale entries age out: they pin the
   whole document in memory. *)
let purge_caches_of t name =
  let purge : 'v. (key, 'v) Lru.t -> unit =
   fun cache ->
    List.iter
      (fun (k, _) -> if k.kdoc = name then Lru.remove cache k)
      (Lru.to_list cache)
  in
  purge t.compiled;
  purge t.counts

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad_request of string

let find_doc t doc =
  match Registry.find t.registry doc with
  | Some e -> e
  | None -> raise (Bad_request ("unknown document: " ^ doc))

(* Resolve a (doc, query) pair to a ready-to-run compiled query,
   compiling and caching on miss.  Compilation happens under the lock:
   it is query-sized work, and publishing only precompiled values keeps
   concurrent evaluation safe. *)
let compiled_for ?trace t doc query =
  locked t (fun () ->
      let e = find_doc t doc in
      let k = { kdoc = doc; kgen = e.Registry.generation; kquery = query; kconfig = t.config_fp } in
      match Lru.find t.compiled k with
      | Some c ->
        Sxsi_obs.Counter.incr t.metrics.Metrics.compiled_hits;
        (match trace with
        | Some tr -> Sxsi_obs.Trace.set_counter tr "cache_hit" 1
        | None -> ());
        (k, c)
      | None ->
        Sxsi_obs.Counter.incr t.metrics.Metrics.compiled_misses;
        (match trace with
        | Some tr -> Sxsi_obs.Trace.set_counter tr "cache_hit" 0
        | None -> ());
        let c =
          try Engine.prepare ?trace ~optimize:t.opts.optimize e.Registry.doc query with
          | Sxsi_xpath.Xpath_parser.Parse_error (pos, msg) ->
            raise (Bad_request (Printf.sprintf "query parse error at %d: %s" pos msg))
          | Sxsi_auto.Compile.Unsupported msg -> raise (Bad_request ("unsupported query: " ^ msg))
        in
        Engine.precompile ?trace c;
        Lru.add t.compiled k c;
        (k, c))

let count ?budget t doc query =
  let k, c = compiled_for t doc query in
  let cached =
    locked t (fun () ->
        match Lru.find t.counts k with
        | Some n ->
          Sxsi_obs.Counter.incr t.metrics.Metrics.count_hits;
          Some n
        | None ->
          Sxsi_obs.Counter.incr t.metrics.Metrics.count_misses;
          None)
  in
  match cached with
  | Some n -> n
  | None ->
    let n = Engine.count ?budget ?pool:t.pool ~config:(run_config t) c in
    locked t (fun () -> Lru.add t.counts k n);
    n

let select_preorders ?budget t doc query =
  let _, c = compiled_for t doc query in
  Engine.select_preorders ?budget ?pool:t.pool ~config:(run_config t) c

let materialize ?budget t doc query =
  let _, c = compiled_for t doc query in
  let d = locked t (fun () -> (find_doc t doc).Registry.doc) in
  let nodes = Engine.select ?budget ?pool:t.pool ~config:(run_config t) c in
  Array.to_list
    (Array.map
       (fun x ->
         let s = Document.serialize d x in
         (match budget with
         | Some b -> Budget.add_bytes b (String.length s)
         | None -> ());
         s)
       nodes)

(* One-shot traced evaluation: resolve the compiled query (recording
   parse/compile time and whether the cache hit), then run a traced
   [select_preorders].  Deliberately bypasses the result-count cache —
   the point is to watch the query execute. *)
let trace ?budget t doc query =
  let tr = Sxsi_obs.Trace.create ~label:query () in
  let _, c = compiled_for ~trace:tr t doc query in
  ignore (Engine.select_preorders ?budget ?pool:t.pool ~config:(run_config t) ~trace:tr c);
  tr

(* ------------------------------------------------------------------ *)
(* Admission control                                                    *)
(* ------------------------------------------------------------------ *)

(* A governance refusal with its wire response already formatted
   (breaker rejections); [handle] unwraps it. *)
exception Rejected of Protocol.response

let breaker_for t doc =
  if t.opts.breaker_threshold <= 0 then None
  else
    Some
      (Mutex.protect t.breakers_lock (fun () ->
           match Hashtbl.find_opt t.breakers doc with
           | Some b -> b
           | None ->
             let b =
               Breaker.create ~threshold:t.opts.breaker_threshold
                 ~cooldown_ms:t.opts.breaker_cooldown_ms ()
             in
             Hashtbl.add t.breakers doc b;
             b))

(* The request budget: session deadline (or the configured default)
   minus whatever the request already spent waiting in the accept
   queue, plus the configured result/byte caps.  [None] when nothing
   bounds this request. *)
let budget_for t ~deadline_ms ~elapsed_ns =
  let deadline_ms =
    match deadline_ms with Some ms -> ms | None -> t.opts.default_deadline_ms
  in
  let deadline_ns =
    if deadline_ms <= 0 then None
    else Some (Sxsi_obs.Clock.now_ns () + (deadline_ms * 1_000_000) - elapsed_ns)
  in
  let lim n = if n > 0 then Some n else None in
  match (deadline_ns, lim t.opts.max_results, lim t.opts.max_result_bytes) with
  | None, None, None -> None
  | deadline_ns, max_results, max_bytes ->
    Some (Budget.create ?deadline_ns ?max_results ?max_bytes ())

(* Run one query verb under the document's circuit breaker and the
   request budget.  Only a deadline overrun counts as a breaker
   failure — result/byte overruns say the query is oversized, not
   that the document is in trouble. *)
let governed t ~deadline_ms ~elapsed_ns doc f =
  let breaker = breaker_for t doc in
  (match breaker with
  | Some b when not (Breaker.allow b) ->
    Sxsi_obs.Counter.incr t.metrics.Metrics.breaker_rejections;
    raise
      (Rejected
         (Protocol.err
            ~retry_after_ms:(Breaker.retry_after_ms b)
            "BREAKER"
            (Printf.sprintf "document %s suspended after repeated deadline overruns"
               doc)))
  | Some _ | None -> ());
  let budget = budget_for t ~deadline_ms ~elapsed_ns in
  match f budget with
  | v ->
    Option.iter Breaker.success breaker;
    v
  | exception (Budget.Exceeded reason as e) ->
    (match reason with
    | Budget.Deadline -> Option.iter Breaker.failure breaker
    | Budget.Steps | Budget.Results | Budget.Bytes -> ());
    raise e

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                     *)
(* ------------------------------------------------------------------ *)

let stats t =
  let pool_stats =
    match t.pool with
    | None -> []
    | Some p ->
      let busy = Sxsi_par.Pool.busy_fractions p in
      let mean =
        if busy = [] then 0.0
        else
          List.fold_left (fun acc (_, f) -> acc +. f) 0.0 busy
          /. float_of_int (List.length busy)
      in
      [
        ("pool_tasks", string_of_int (Sxsi_par.Pool.tasks_total p));
        ("pool_steals", string_of_int (Sxsi_par.Pool.steals_total p));
        ("pool_steal_failures", string_of_int (Sxsi_par.Pool.steal_failures_total p));
        ("pool_parks", string_of_int (Sxsi_par.Pool.parks_total p));
        ("pool_cas_retries", string_of_int (Sxsi_par.Pool.cas_retries_total p));
        ("pool_queue_depth_hwm", string_of_int (Sxsi_par.Pool.queue_depth_hwm p));
        ("pool_busy_fraction", Printf.sprintf "%.3f" mean);
        ( "pool_worker_busy",
          String.concat ","
            (List.map (fun (_, f) -> Printf.sprintf "%.3f" f) busy) );
      ]
  in
  locked t (fun () ->
      Metrics.to_assoc t.metrics ~doc_evictions:(Registry.evictions t.registry)
      @ [
          ("documents", string_of_int (Registry.count t.registry));
          ("document_bytes", string_of_int (Registry.total_bytes t.registry));
          ("document_names", String.concat "," (Registry.names t.registry));
          ( "document_backends",
            String.concat ","
              (List.map
                 (fun n ->
                   match Registry.peek t.registry n with
                   | Some e -> n ^ "=" ^ Document.backend_name e.Registry.doc
                   | None -> n ^ "=?")
                 (Registry.names t.registry)) );
          ("compiled_entries", string_of_int (Lru.length t.compiled));
          ("compiled_evictions", string_of_int (Lru.evictions t.compiled));
          ("count_entries", string_of_int (Lru.length t.counts));
          ("count_evictions", string_of_int (Lru.evictions t.counts));
        ]
      @ pool_stats
      @ [ ("optimize", if t.opts.optimize then "1" else "0") ]
      @ List.map
          (fun (k, v) -> (k, string_of_int v))
          (Sxsi_auto.Optimize.counters ())
      @ [
          ("journal_enabled", if J.enabled () then "1" else "0");
          ("journal_records", string_of_int (J.records_total ()));
          ("journal_dropped", string_of_int (J.dropped_total ()));
          ("prof_running", if Sxsi_prof.Prof.running () then "1" else "0");
          ("prof_hz", string_of_int (Sxsi_prof.Prof.hz ()));
        ])

let metrics_text t = locked t (fun () -> Sxsi_obs.Exposition.render t.exposition)

(* The PROFILE payload: one JSON line (schema sxsi-prof-v1), then the
   collapsed-stack lines — both derived from the same window diff. *)
let profile_response since =
  let r = Sxsi_prof.Prof.report ~since () in
  Protocol.Data
    (Sxsi_obs.Json.to_string (Sxsi_prof.Prof.to_json r)
    :: List.filter
         (fun l -> l <> "")
         (String.split_on_char '\n' (Sxsi_prof.Prof.to_folded r)))

let dispatch t ~deadline_ms ~elapsed_ns (req : Protocol.request) : Protocol.response =
  match req with
  | Load { name; path } -> begin
    (* parse/load outside the lock: it is the expensive part *)
    match load_document ?pool:t.pool ?backend:t.opts.backend path with
    | doc ->
      let e =
        locked t (fun () ->
            purge_caches_of t name;
            Registry.add t.registry name doc)
      in
      Protocol.Ok
        [
          "loaded"; name;
          Printf.sprintf "nodes=%d" (Document.node_count doc);
          Printf.sprintf "bytes=%d" e.Registry.bytes;
        ]
    | exception Sys_error msg -> Protocol.Err msg
    | exception Failure msg -> Protocol.Err msg
    | exception Document.Unknown_backend b ->
      Protocol.Err (Printf.sprintf "unknown tree backend %S in %s" b path)
    | exception Xml_parser.Parse_error (pos, msg) ->
      Protocol.Err (Printf.sprintf "XML parse error at %d: %s" pos msg)
  end
  | Count { doc; query } ->
    governed t ~deadline_ms ~elapsed_ns doc (fun budget ->
        Protocol.Ok [ string_of_int (count ?budget t doc query) ])
  | Query { doc; query } ->
    governed t ~deadline_ms ~elapsed_ns doc (fun budget ->
        Protocol.Data
          (Array.to_list (Array.map string_of_int (select_preorders ?budget t doc query))))
  | Materialize { doc; query } ->
    (* payload lines must be newline-free; serialized XML may not be *)
    governed t ~deadline_ms ~elapsed_ns doc (fun budget ->
        Protocol.Data
          (List.concat_map (String.split_on_char '\n') (materialize ?budget t doc query)))
  | Stats -> Protocol.Data (List.map (fun (k, v) -> k ^ "=" ^ v) (stats t))
  | Metrics ->
    let text = metrics_text t in
    Protocol.Data (List.filter (fun l -> l <> "") (String.split_on_char '\n' text))
  | Dump ->
    (* the journal dump is one (large) line of JSON: the wire format
       every trace consumer ([sxsi trace-export]) reads *)
    Protocol.Data [ Sxsi_obs.Json.to_string (J.to_json (J.snapshot ())) ]
  | Trace { doc; query } ->
    governed t ~deadline_ms ~elapsed_ns doc (fun budget ->
        Protocol.Data
          [ Sxsi_obs.Json.to_string (Sxsi_obs.Trace.to_json (trace ?budget t doc query)) ])
  | Evict name ->
    locked t (fun () ->
        if Registry.evict t.registry name then begin
          purge_caches_of t name;
          Protocol.Ok [ "evicted"; name ]
        end
        else Protocol.Err ("unknown document: " ^ name))
  | Deadline ms ->
    (* session state lives in the server loop; the service just
       acknowledges so REPL transcripts show the setting took *)
    Protocol.Ok [ "deadline"; (if ms = 0 then "off" else string_of_int ms) ]
  | Profile secs ->
    (* sample the whole process for the window, then answer with the
       JSON report followed by the collapsed-stack lines.  Blocks the
       calling worker; the event-driven front end never routes Profile
       here (it diffs snapshots off a loop timer instead). *)
    Sxsi_prof.Prof.ensure_started ();
    let since = Sxsi_prof.Prof.snapshot () in
    Unix.sleepf (float_of_int secs);
    profile_response since
  | Quit -> Protocol.Ok [ "bye" ]

(* A slow request dumps its reconstructed span tree (this domain's
   journal window since the request started — empty when the flight
   recorder is off) as one JSON line. *)
let slow_log_entry t req resp dt cur =
  match t.slow_log with
  | None -> ()
  | Some log ->
    let open Sxsi_obs.Json in
    let spans = List.map J.span_to_json (J.spans (J.since cur)) in
    let fields =
      [
        ("ts_ns", Int (Sxsi_obs.Clock.now_ns ()));
        ("request", String (Protocol.print_request req));
        ("duration_ms", Float (float_of_int dt /. 1e6));
        ( "status",
          String
            (match resp with
            | Protocol.Err _ -> (
              match Protocol.err_code resp with Some c -> c | None -> "ERR")
            | Protocol.Ok _ | Protocol.Data _ -> "OK") );
      ]
    in
    let fields = if spans = [] then fields else fields @ [ ("spans", List spans) ] in
    Sxsi_obs.Slowlog.write log (Obj fields)

let handle ?deadline_ms ?(elapsed_ns = 0) t req =
  let t0 = Sxsi_obs.Clock.now_ns () in
  let cur = J.cursor () in
  J.begin_span J.Service n_request ~ts:t0 ();
  let resp =
    try J.with_span J.Service n_eval (fun () -> dispatch t ~deadline_ms ~elapsed_ns req) with
    | Bad_request msg -> Protocol.Err msg
    | Rejected resp -> resp
    | Budget.Exceeded Budget.Deadline ->
      Sxsi_obs.Counter.incr t.metrics.Metrics.deadline_errors;
      Protocol.err "DEADLINE" "query exceeded its deadline"
    | Budget.Exceeded reason ->
      Sxsi_obs.Counter.incr t.metrics.Metrics.budget_errors;
      Protocol.err "BUDGET" (Budget.reason_name reason ^ " budget exhausted")
    | Sxsi_qos.Failpoint.Injected { site; message } ->
      Protocol.err "INJECTED" (Printf.sprintf "%s (failpoint %s)" message site)
  in
  let dt = Sxsi_obs.Clock.since t0 in
  J.end_span J.Service n_request ~b:dt ();
  Sxsi_obs.Counter.incr t.metrics.Metrics.requests;
  (match resp with
  | Protocol.Err _ -> Sxsi_obs.Counter.incr t.metrics.Metrics.errors
  | _ -> ());
  locked t (fun () -> Metrics.record_latency t.metrics dt);
  if t.opts.slow_ms > 0 && dt >= t.opts.slow_ms * 1_000_000 then
    slow_log_entry t req resp dt cur;
  resp

let handle_line ?deadline_ms ?elapsed_ns t line =
  match J.with_span J.Service n_parse (fun () -> Protocol.parse_request line) with
  | Result.Ok req -> handle ?deadline_ms ?elapsed_ns t req
  | Error msg ->
    Sxsi_obs.Counter.incr t.metrics.Metrics.requests;
    Sxsi_obs.Counter.incr t.metrics.Metrics.errors;
    Protocol.Err msg

(* A request refused before it reaches [dispatch] (oversized line,
   shed connection): count it like any other errored request so the
   rate shows up in metrics. *)
let reject t resp =
  Sxsi_obs.Counter.incr t.metrics.Metrics.requests;
  (match resp with
  | Protocol.Err _ -> Sxsi_obs.Counter.incr t.metrics.Metrics.errors
  | _ -> ());
  resp

let record_admission_wait t ns =
  locked t (fun () -> Metrics.record_admission_wait t.metrics ns)

open Sxsi_xml

type entry = {
  doc : Document.t;
  bytes : int;
  generation : int;
}

(* Recency is tracked with a logical clock per entry; documents are few
   (the byte budget bounds them), so min-scan eviction is fine and
   avoids duplicating the intrusive-list machinery of [Lru]. *)
type t = {
  max_bytes : int;
  tbl : (string, entry * int ref) Hashtbl.t;   (* entry, last-use tick *)
  mutable clock : int;
  mutable bytes : int;
  mutable evicted : int;
  mutable next_generation : int;
}

let create ?(max_bytes = max_int) () =
  if max_bytes <= 0 then invalid_arg "Registry.create: non-positive byte budget";
  {
    max_bytes;
    tbl = Hashtbl.create 16;
    clock = 0;
    bytes = 0;
    evicted = 0;
    next_generation = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let count t = Hashtbl.length t.tbl
let total_bytes t = t.bytes
let evictions t = t.evicted

let drop t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> false
  | Some (e, _) ->
    Hashtbl.remove t.tbl name;
    t.bytes <- t.bytes - e.bytes;
    true

let evict = drop

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun name (_, last) acc ->
        match acc with
        | Some (_, best) when best <= !last -> acc
        | _ -> Some (name, !last))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (name, _) ->
    ignore (drop t name);
    t.evicted <- t.evicted + 1

let doc_bytes doc = Document.space_bits doc / 8

let add t name doc =
  ignore (drop t name);
  let entry = { doc; bytes = doc_bytes doc; generation = t.next_generation } in
  t.next_generation <- t.next_generation + 1;
  (* keep at least the newcomer, even when it alone busts the budget *)
  while Hashtbl.length t.tbl > 0 && t.bytes + entry.bytes > t.max_bytes do
    evict_lru t
  done;
  Hashtbl.replace t.tbl name (entry, ref (tick t));
  t.bytes <- t.bytes + entry.bytes;
  entry

let find t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some (e, last) ->
    last := tick t;
    Some e

let peek t name = Option.map fst (Hashtbl.find_opt t.tbl name)

let names t =
  Hashtbl.fold (fun name (_, last) acc -> (name, !last) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst

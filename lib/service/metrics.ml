type t = {
  mutable requests : int;
  mutable errors : int;
  mutable compiled_hits : int;
  mutable compiled_misses : int;
  mutable count_hits : int;
  mutable count_misses : int;
  mutable doc_evictions : int;
  mutable latency : float;
}

let create () =
  {
    requests = 0;
    errors = 0;
    compiled_hits = 0;
    compiled_misses = 0;
    count_hits = 0;
    count_misses = 0;
    doc_evictions = 0;
    latency = 0.0;
  }

let to_assoc t =
  [
    ("requests", string_of_int t.requests);
    ("errors", string_of_int t.errors);
    ("compiled_hits", string_of_int t.compiled_hits);
    ("compiled_misses", string_of_int t.compiled_misses);
    ("count_hits", string_of_int t.count_hits);
    ("count_misses", string_of_int t.count_misses);
    ("doc_evictions", string_of_int t.doc_evictions);
    ("latency_ms_total", Printf.sprintf "%.3f" (t.latency *. 1000.0));
  ]

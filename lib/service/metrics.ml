open Sxsi_obs

type t = {
  requests : Counter.t;
  errors : Counter.t;
  compiled_hits : Counter.t;
  compiled_misses : Counter.t;
  count_hits : Counter.t;
  count_misses : Counter.t;
  connections_opened : Counter.t;
  connections_closed : Counter.t;
  connections_shed : Counter.t;
  deadline_errors : Counter.t;
  budget_errors : Counter.t;
  breaker_rejections : Counter.t;
  latency : Histogram.t;
  admission_wait : Histogram.t;
}

let create () =
  {
    requests = Counter.create ();
    errors = Counter.create ();
    compiled_hits = Counter.create ();
    compiled_misses = Counter.create ();
    count_hits = Counter.create ();
    count_misses = Counter.create ();
    connections_opened = Counter.create ();
    connections_closed = Counter.create ();
    connections_shed = Counter.create ();
    deadline_errors = Counter.create ();
    budget_errors = Counter.create ();
    breaker_rejections = Counter.create ();
    latency = Histogram.create ();
    admission_wait = Histogram.create ();
  }

let record_latency t ns = Histogram.record t.latency ns

let record_admission_wait t ns = Histogram.record t.admission_wait ns

let ms ns = float_of_int ns /. 1e6

let to_assoc t ~doc_evictions =
  let q h p = Printf.sprintf "%.3f" (Histogram.quantile h p /. 1e6) in
  [
    ("requests", string_of_int (Counter.get t.requests));
    ("errors", string_of_int (Counter.get t.errors));
    ("compiled_hits", string_of_int (Counter.get t.compiled_hits));
    ("compiled_misses", string_of_int (Counter.get t.compiled_misses));
    ("count_hits", string_of_int (Counter.get t.count_hits));
    ("count_misses", string_of_int (Counter.get t.count_misses));
    ("connections_opened", string_of_int (Counter.get t.connections_opened));
    ("connections_closed", string_of_int (Counter.get t.connections_closed));
    ("connections_shed", string_of_int (Counter.get t.connections_shed));
    ("deadline_errors", string_of_int (Counter.get t.deadline_errors));
    ("budget_errors", string_of_int (Counter.get t.budget_errors));
    ("breaker_rejections", string_of_int (Counter.get t.breaker_rejections));
    ("doc_evictions", string_of_int doc_evictions);
    ("latency_ms_total", Printf.sprintf "%.3f" (ms (Histogram.sum t.latency)));
    ("latency_p50_ms", q t.latency 0.5);
    ("latency_p95_ms", q t.latency 0.95);
    ("latency_p99_ms", q t.latency 0.99);
    ("admission_wait_ms_total", Printf.sprintf "%.3f" (ms (Histogram.sum t.admission_wait)));
    ("admission_wait_p95_ms", q t.admission_wait 0.95);
  ]

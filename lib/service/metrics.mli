(** Per-service monotonic counters, reported by the [STATS] request.
    Mutated only under the service lock. *)

type t = {
  mutable requests : int;         (* requests handled, including errors *)
  mutable errors : int;           (* requests answered with ERR *)
  mutable compiled_hits : int;    (* compiled-query cache hits *)
  mutable compiled_misses : int;
  mutable count_hits : int;       (* result-count cache hits *)
  mutable count_misses : int;
  mutable doc_evictions : int;    (* documents dropped by byte pressure *)
  mutable latency : float;        (* cumulative request latency, seconds *)
}

val create : unit -> t

val to_assoc : t -> (string * string) list
(** Stable key/value rendering for the [STATS] response. *)

(** Per-service monotonic counters and the request-latency histogram,
    reported by the [STATS] and [METRICS] requests.

    Counters are atomic and safe to bump from any domain; the latency
    and admission-wait {!Sxsi_obs.Histogram.t}s are not synchronized
    and must only be touched under the service lock.  Latency is
    recorded in integer nanoseconds, so the cumulative total no longer
    loses precision the way summing small [float] seconds did. *)

type t = {
  requests : Sxsi_obs.Counter.t;        (** requests handled, including errors *)
  errors : Sxsi_obs.Counter.t;          (** requests answered with ERR *)
  compiled_hits : Sxsi_obs.Counter.t;   (** compiled-query cache hits *)
  compiled_misses : Sxsi_obs.Counter.t;
  count_hits : Sxsi_obs.Counter.t;      (** result-count cache hits *)
  count_misses : Sxsi_obs.Counter.t;
  connections_opened : Sxsi_obs.Counter.t;  (** connections accepted into a session *)
  connections_closed : Sxsi_obs.Counter.t;  (** sessions finished (any reason) *)
  connections_shed : Sxsi_obs.Counter.t;    (** connections refused: accept queue full *)
  deadline_errors : Sxsi_obs.Counter.t;     (** requests answered [ERR DEADLINE] *)
  budget_errors : Sxsi_obs.Counter.t;       (** requests answered [ERR BUDGET] *)
  breaker_rejections : Sxsi_obs.Counter.t;  (** requests refused by an open breaker *)
  latency : Sxsi_obs.Histogram.t;       (** per-request latency, nanoseconds *)
  admission_wait : Sxsi_obs.Histogram.t;
      (** per-connection accept-queue wait, nanoseconds *)
}

val create : unit -> t
(** All counters at zero, empty histograms. *)

val record_latency : t -> int -> unit
(** Record one request's latency in nanoseconds (caller holds the
    service lock). *)

val record_admission_wait : t -> int -> unit
(** Record one connection's accept-queue wait in nanoseconds (caller
    holds the service lock). *)

val to_assoc : t -> doc_evictions:int -> (string * string) list
(** Stable key/value rendering for the [STATS] response.  The key set
    of the pre-histogram implementation is preserved ([requests],
    [errors], [compiled_hits], [compiled_misses], [count_hits],
    [count_misses], [doc_evictions], [latency_ms_total] — the latter
    now derived exactly from the histogram sum) and extended with
    [latency_p50_ms], [latency_p95_ms], [latency_p99_ms], the
    connection counters [connections_opened], [connections_closed],
    [connections_shed], the governance counters [deadline_errors],
    [budget_errors], [breaker_rejections], and the admission-wait
    aggregates [admission_wait_ms_total], [admission_wait_p95_ms]. *)

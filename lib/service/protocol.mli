(** The line-oriented request/response protocol spoken by [sxsi serve]
    and [sxsi repl].  Pure parser and printer, unit-testable without
    sockets.

    Request grammar (one request per line):
    {v
    LOAD <name> <path>          register the document in <path>
                                (.xml or .sxsi) under <name>
    QUERY <name> <query...>     preorder ids of the selected nodes
    COUNT <name> <query...>     number of selected nodes
    MATERIALIZE <name> <query...>  serialized XML of the selected nodes
    STATS                       service counters as key=value lines
    METRICS                     Prometheus text exposition of the
                                service metrics
    TRACE <name> <query...>     evaluate once with tracing on; one
                                JSON trace record
    DUMP                        the flight recorder's journal as one
                                JSON line (schema sxsi-journal-v1)
    EVICT <name>                drop a document (and its cached queries)
    DEADLINE <ms>               set the session's per-request deadline
                                in milliseconds (0 clears it)
    PROFILE [secs]              sample the whole process for [secs]
                                (default 1, max 60) seconds; one JSON
                                line (schema sxsi-prof-v1) followed by
                                the collapsed-stack profile lines
    QUIT                        close the session
    v}
    Verbs are case-insensitive; [<name>] and [<path>] contain no
    whitespace; [<query...>] is the rest of the line.

    Response grammar:
    {v
    OK [tok ...]                single-line success
    ERR <message>               single-line failure
    DATA                        multi-line payload: payload lines with a
    <payload lines>             leading '.' doubled (SMTP-style
    .                           dot-stuffing), terminated by "." alone
    v}

    Governance failures carry a machine-readable code as the first
    word of the [ERR] message (see {!err} and {!err_code}):
    [DEADLINE], [BUDGET], [BREAKER], [SHED], [TOOLONG], [INJECTED].
    [BREAKER] and [SHED] messages end with [retry-after-ms=<n>]
    (see {!retry_after_ms}).  Other failures — parse errors, unknown
    documents — remain code-less [ERR] messages. *)

type request =
  | Load of { name : string; path : string }
  | Query of { doc : string; query : string }
  | Count of { doc : string; query : string }
  | Materialize of { doc : string; query : string }
  | Stats
  | Metrics
  | Dump
  | Trace of { doc : string; query : string }
  | Evict of string
  | Deadline of int
  | Profile of int
  | Quit

type response =
  | Ok of string list       (* OK tok1 tok2 ... *)
  | Data of string list     (* payload lines, unstuffed, newline-free *)
  | Err of string

val parse_request : string -> (request, string) result
(** Parse one request line (no trailing newline). *)

val print_request : request -> string
(** Canonical one-line rendering; [parse_request (print_request r) = Ok r]
    whenever names/paths are whitespace-free and the query is non-empty
    and trimmed. *)

val err : ?retry_after_ms:int -> string -> string -> response
(** [err CODE detail] is [Err "CODE detail"], optionally suffixed with
    ["; retry-after-ms=<n>"].  [CODE] must be upper-case ASCII for
    {!err_code} to recover it. *)

val err_code : response -> string option
(** The leading upper-case error code of an [Err] response, if it has
    one ([None] for [Ok]/[Data] and for code-less errors). *)

val retry_after_ms : response -> int option
(** The [retry-after-ms=<n>] hint of an [Err] response, if present. *)

val print_response : response -> string
(** Wire rendering, dot-stuffed, every line ["\n"]-terminated. *)

val parse_response : string list -> (response * string list, string) result
(** Consume one response from a list of received lines (no trailing
    newlines); returns the remaining lines.
    [parse_response (lines (print_response r)) = Ok (r, [])]. *)

val read_response : (unit -> string option) -> (response, string) result
(** Incremental client-side reader: pull lines until one full response
    is consumed.  [None] from the reader means EOF. *)

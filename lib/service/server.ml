let session ic oc svc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      let resp = Service.handle_line svc line in
      output_string oc (Protocol.print_response resp);
      flush oc;
      let quit = match Protocol.parse_request line with Ok Protocol.Quit -> true | _ -> false in
      if not quit then loop ()
  in
  loop ()

(* Bounded hand-off queue between the accept loop and the fixed worker
   domains.  [try_push] refuses instead of blocking — the accept loop
   must keep polling [stop] — and [pop] keeps draining queued
   connections after [close], so accepted clients are still served
   during shutdown. *)
type queue = {
  m : Mutex.t;
  nonempty : Condition.t;
  items : Unix.file_descr Queue.t;
  cap : int;
  mutable closed : bool;
}

let queue_create cap =
  { m = Mutex.create (); nonempty = Condition.create (); items = Queue.create (); cap; closed = false }

let try_push q fd =
  Mutex.protect q.m (fun () ->
      if q.closed || Queue.length q.items >= q.cap then false
      else begin
        Queue.push fd q.items;
        Condition.signal q.nonempty;
        true
      end)

let pop q =
  Mutex.protect q.m (fun () ->
      let rec wait () =
        if not (Queue.is_empty q.items) then Some (Queue.pop q.items)
        else if q.closed then None
        else begin
          Condition.wait q.nonempty q.m;
          wait ()
        end
      in
      wait ())

let queue_close q =
  Mutex.protect q.m (fun () ->
      q.closed <- true;
      Condition.broadcast q.nonempty)

let queue_depth q = Mutex.protect q.m (fun () -> Queue.length q.items)

let handle_connection svc fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try session ic oc svc with Sys_error _ | Unix.Unix_error _ -> ())

(* Load shedding: answer with one ERR line and close, so a client sees
   a protocol-shaped refusal rather than a hung connection. *)
let shed metrics fd =
  Sxsi_obs.Counter.incr metrics.Metrics.connections_shed;
  (try
     let oc = Unix.out_channel_of_descr fd in
     output_string oc
       (Protocol.print_response (Protocol.Err "server busy: accept queue full"));
     flush oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve ?(host = "127.0.0.1") ?(backlog = 64) ?(workers = 4) ?(queue = 64)
    ?(on_listen = fun _ -> ()) ?(stop = fun () -> false) ~port svc =
  let nworkers = max 1 workers in
  let q = queue_create (max 1 queue) in
  let metrics = Service.service_metrics svc in
  Service.register_server svc
    ~workers:(fun () -> nworkers)
    ~queue_depth:(fun () -> queue_depth q);
  let worker () =
    let rec loop () =
      match pop q with
      | None -> ()
      | Some fd ->
        handle_connection svc fd;
        Sxsi_obs.Counter.incr metrics.Metrics.connections_closed;
        loop ()
    in
    loop ()
  in
  let domains = Array.init nworkers (fun _ -> Domain.spawn worker) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (* stop accepting, serve what was queued, join every worker: no
         domain outlives [serve] *)
      (try Unix.close sock with Unix.Unix_error _ -> ());
      queue_close q;
      Array.iter Domain.join domains)
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen sock backlog;
      (match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> on_listen p
      | _ -> ());
      (* a short accept timeout so [stop] is polled even when idle *)
      Unix.setsockopt_float sock Unix.SO_RCVTIMEO 0.2;
      while not (stop ()) do
        match Unix.accept sock with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
        | fd, _ ->
          if try_push q fd then
            Sxsi_obs.Counter.incr metrics.Metrics.connections_opened
          else shed metrics fd
      done)

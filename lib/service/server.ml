module J = Sxsi_obs.Journal

let n_accept = J.name "service/accept"
let n_queue = J.name "service/queue"
let n_write = J.name "service/write"
let n_shed = J.name "service/shed"

(* Request lines are read through a bounded reader: a protocol line is
   small (a verb, a name, a query), so anything longer than
   [max_line] is abuse or a framing bug.  The oversized line is
   drained to its newline — the session stays usable — and answered
   with ERR TOOLONG. *)
let default_max_line = 64 * 1024

type line = Line of string | Too_long | Eof

let read_request_line ?(max_line = default_max_line) ic =
  let buf = Buffer.create 128 in
  let rec fill () =
    match input_char ic with
    | exception End_of_file -> if Buffer.length buf = 0 then Eof else Line (Buffer.contents buf)
    | '\n' -> Line (Buffer.contents buf)
    | c ->
      if Buffer.length buf >= max_line then begin
        (* drain the rest of the oversized line; EOF here still counts
           as end-of-line so the TOOLONG answer is sent *)
        (try
           while input_char ic <> '\n' do
             ()
           done
         with End_of_file -> ());
        Too_long
      end
      else begin
        Buffer.add_char buf c;
        fill ()
      end
  in
  fill ()

(* strip the '\r' of CRLF clients, like [input_line] followers expect *)
let chomp_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let session ?max_line ?(elapsed_ns = 0) ic oc svc =
  (* session-level deadline override, set by the DEADLINE verb; [None]
     defers to the service's [default_deadline_ms] *)
  let deadline_ms = ref None in
  (* accept-queue wait is charged against the first request only: later
     requests did not wait in the queue *)
  let pending_wait = ref elapsed_ns in
  let rec loop () =
    match read_request_line ?max_line ic with
    | Eof -> ()
    | Too_long ->
      let resp =
        Service.reject svc
          (Protocol.err "TOOLONG"
             (Printf.sprintf "request line longer than %d bytes"
                (match max_line with Some n -> n | None -> default_max_line)))
      in
      output_string oc (Protocol.print_response resp);
      flush oc;
      loop ()
    | Line line ->
      let line = chomp_cr line in
      (match Protocol.parse_request line with
      | Ok (Protocol.Deadline ms) -> deadline_ms := Some ms
      | _ -> ());
      let wait = !pending_wait in
      pending_wait := 0;
      let resp =
        Service.handle_line ?deadline_ms:!deadline_ms ~elapsed_ns:wait svc line
      in
      J.with_span J.Service n_write (fun () ->
          output_string oc (Protocol.print_response resp);
          flush oc);
      let quit = match Protocol.parse_request line with Ok Protocol.Quit -> true | _ -> false in
      if not quit then loop ()
  in
  loop ()

(* Bounded hand-off queue between the accept loop and the fixed worker
   domains.  [try_push] refuses instead of blocking — the accept loop
   must keep polling [stop] — and [pop] keeps draining queued
   connections after [close], so accepted clients are still served
   during shutdown.  Items carry their enqueue timestamp so the worker
   can account the admission wait and charge it to the session's first
   deadline. *)
type queue = {
  m : Mutex.t;
  nonempty : Condition.t;
  items : (Unix.file_descr * int) Queue.t;  (* fd, enqueue time (Clock ns) *)
  cap : int;
  mutable closed : bool;
}

let queue_create cap =
  { m = Mutex.create (); nonempty = Condition.create (); items = Queue.create (); cap; closed = false }

let try_push q fd =
  Mutex.protect q.m (fun () ->
      if q.closed || Queue.length q.items >= q.cap then false
      else begin
        Queue.push (fd, Sxsi_obs.Clock.now_ns ()) q.items;
        Condition.signal q.nonempty;
        true
      end)

let pop q =
  Mutex.protect q.m (fun () ->
      let rec wait () =
        if not (Queue.is_empty q.items) then Some (Queue.pop q.items)
        else if q.closed then None
        else begin
          Condition.wait q.nonempty q.m;
          wait ()
        end
      in
      wait ())

let queue_close q =
  Mutex.protect q.m (fun () ->
      q.closed <- true;
      Condition.broadcast q.nonempty)

let queue_depth q = Mutex.protect q.m (fun () -> Queue.length q.items)

let handle_connection svc fd ~elapsed_ns =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try session ~elapsed_ns ic oc svc with Sys_error _ | Unix.Unix_error _ -> ())

(* Load shedding: answer with one ERR line and close, so a client sees
   a protocol-shaped refusal rather than a hung connection.  The
   retry-after hint is the crude truth: try again once the queue has
   had a moment to drain. *)
let shed_retry_after_ms = 100

let shed svc metrics fd =
  Sxsi_obs.Counter.incr metrics.Metrics.connections_shed;
  J.instant J.Service n_shed ();
  (try
     let oc = Unix.out_channel_of_descr fd in
     let resp =
       Service.reject svc
         (Protocol.err ~retry_after_ms:shed_retry_after_ms "SHED"
            "server busy: accept queue full")
     in
     output_string oc (Protocol.print_response resp);
     flush oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve ?(host = "127.0.0.1") ?(backlog = 64) ?(workers = 4) ?(queue = 64)
    ?(on_listen = fun _ -> ()) ?(stop = fun () -> false) ~port svc =
  let nworkers = max 1 workers in
  let q = queue_create (max 1 queue) in
  let metrics = Service.service_metrics svc in
  Service.register_server svc
    ~workers:(fun () -> nworkers)
    ~queue_depth:(fun () -> queue_depth q);
  let worker () =
    let rec loop () =
      match pop q with
      | None -> ()
      | Some (fd, enqueued_ns) ->
        let wait = Sxsi_obs.Clock.since enqueued_ns in
        (* the queue wait happened on no domain in particular: record
           it on the worker's ring, backdated to the enqueue time *)
        J.begin_span J.Service n_queue ~ts:enqueued_ns ();
        J.end_span J.Service n_queue ();
        Service.record_admission_wait svc wait;
        handle_connection svc fd ~elapsed_ns:wait;
        Sxsi_obs.Counter.incr metrics.Metrics.connections_closed;
        loop ()
    in
    loop ()
  in
  let domains = Array.init nworkers (fun _ -> Domain.spawn worker) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (* stop accepting, serve what was queued, join every worker: no
         domain outlives [serve] *)
      (try Unix.close sock with Unix.Unix_error _ -> ());
      queue_close q;
      Array.iter Domain.join domains)
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen sock backlog;
      (match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> on_listen p
      | _ -> ());
      (* a short accept timeout so [stop] is polled even when idle *)
      Unix.setsockopt_float sock Unix.SO_RCVTIMEO 0.2;
      while not (stop ()) do
        match Unix.accept sock with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
        | fd, _ ->
          if try_push q fd then begin
            J.instant J.Service n_accept ();
            Sxsi_obs.Counter.incr metrics.Metrics.connections_opened
          end
          else shed svc metrics fd
      done)

let session ic oc svc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      let resp = Service.handle_line svc line in
      output_string oc (Protocol.print_response resp);
      flush oc;
      let quit = match Protocol.parse_request line with Ok Protocol.Quit -> true | _ -> false in
      if not quit then loop ()
  in
  loop ()

(* Domain-per-connection with opportunistic reaping: finished workers
   flag themselves and are joined on later accepts, so handles do not
   accumulate over a long-lived server. *)
type worker = { handle : unit Domain.t; done_flag : bool Atomic.t }

let reap workers = List.filter (fun w ->
    if Atomic.get w.done_flag then begin
      Domain.join w.handle;
      false
    end
    else true)
  workers

let handle_connection svc fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try session ic oc svc with Sys_error _ | Unix.Unix_error _ -> ())

let serve ?(host = "127.0.0.1") ?(backlog = 64) ?(on_listen = fun _ -> ())
    ?(stop = fun () -> false) ~port svc =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen sock backlog;
      (match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> on_listen p
      | _ -> ());
      (* a short accept timeout so [stop] is polled even when idle *)
      Unix.setsockopt_float sock Unix.SO_RCVTIMEO 0.2;
      let workers = ref [] in
      while not (stop ()) do
        match Unix.accept sock with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          workers := reap !workers
        | fd, _ ->
          workers := reap !workers;
          let done_flag = Atomic.make false in
          let handle =
            Domain.spawn (fun () ->
                Fun.protect
                  ~finally:(fun () -> Atomic.set done_flag true)
                  (fun () -> handle_connection svc fd))
          in
          workers := { handle; done_flag } :: !workers
      done;
      List.iter (fun w -> Domain.join w.handle) !workers)

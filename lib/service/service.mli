(** The query service: a document registry plus compiled-query and
    result-count caches behind one lock, driven by {!Protocol}
    requests.

    Threading model: every handler is safe to call from any domain.
    Registry and cache bookkeeping happen under the service lock;
    document parsing/loading and query evaluation run outside it, so
    requests against warm caches execute concurrently (the engine's
    shared hash-consing tables are internally synchronized and cached
    compiled queries are {!Sxsi_core.Engine.precompile}d before they
    are published).

    Resource governance: query verbs ([QUERY], [COUNT], [MATERIALIZE],
    [TRACE]) run under a {!Sxsi_qos.Budget.t} derived from the request's
    effective deadline (the session's [DEADLINE] override, else
    {!options.default_deadline_ms}) and the configured result/byte
    caps, and under a per-document {!Sxsi_qos.Breaker.t} when
    {!options.breaker_threshold} is positive.  Overruns surface as
    [ERR DEADLINE] / [ERR BUDGET]; an open breaker refuses the request
    up front with [ERR BREAKER ... retry-after-ms=<n>].  See
    {!Protocol.err_code}. *)

type t

type options = {
  max_doc_bytes : int;      (* registry byte budget *)
  compiled_cache : int;     (* compiled-query LRU capacity; 0 disables *)
  count_cache : int;        (* result-count LRU capacity; 0 disables *)
  enable_jump : bool;       (* engine knobs, part of the cache key *)
  enable_memo : bool;
  enable_early : bool;
  optimize : bool;
      (* run the whole-query {!Sxsi_auto.Optimize} pass when compiling
         queries (default); part of the cache key, so flipping it
         never mixes optimized and raw automata in one cache.  [STATS]
         reports the setting ([optimize]) and the process-wide
         [opt_automata] / [opt_states_removed] /
         [opt_transitions_removed] tallies *)
  domains : int;            (* evaluation pool size; <= 1 means sequential *)
  default_deadline_ms : int;
      (* per-request deadline applied when the session has not set one
         with [DEADLINE]; 0 means none *)
  max_results : int;        (* per-request result-count cap; 0 means none *)
  max_result_bytes : int;   (* per-request serialized-output cap; 0 means none *)
  breaker_threshold : int;
      (* consecutive deadline overruns that open a document's circuit
         breaker; 0 disables breakers *)
  breaker_cooldown_ms : int;  (* how long an open breaker refuses requests *)
  slow_ms : int;
      (* requests slower than this are written to the slow-query log
         (when one was passed to [create]); 0 disables the log *)
  backend : Sxsi_xml.Document.backend option;
      (* tree backend for documents indexed by [LOAD] (None defers to
         SXSI_BACKEND / the build default); pre-built [.sxsi] files
         keep the backend they were saved with *)
}

val default_options : options

val create : ?options:options -> ?slow_log:Sxsi_obs.Slowlog.t -> unit -> t
(** With [options.domains > 1] the service owns a {!Sxsi_par.Pool.t}
    shared by document builds ([LOAD]) and query evaluation; its task
    and steal counters join the metrics exposition.

    [slow_log] is the slow-query log's sink: every request slower than
    [options.slow_ms] milliseconds appends one JSON line ([ts_ns],
    [request], [duration_ms], [status] and — when the
    {!Sxsi_obs.Journal} flight recorder is enabled — the request's
    reconstructed [spans]).  The service closes the sink on
    {!shutdown}. *)

val pool : t -> Sxsi_par.Pool.t option

val service_metrics : t -> Metrics.t
(** The live counters, for front ends that account connections. *)

val slow_log : t -> Sxsi_obs.Slowlog.t option

val shutdown : t -> unit
(** Join the evaluation pool's domains, if any, and close the
    slow-query log.  Call once no request is in flight; idempotent. *)

val register_server : t -> workers:(unit -> int) -> queue_depth:(unit -> int) -> unit
(** Hang a server front end's worker-count and accept-queue-depth
    gauges off the service exposition, so [METRICS] reports them
    alongside the request counters. *)

val register_exposition : t -> (Sxsi_obs.Exposition.t -> unit) -> unit
(** Run a registration callback against the service's exposition under
    the service lock — how a front end with its own instrumentation
    (the event loop's turn and coalescing counters) joins [METRICS]. *)

val register_runtime : t -> Sxsi_obs.Runtime.t -> unit
(** Register a runtime sampler's GC/journal series
    ({!Sxsi_obs.Runtime.register}) on the service exposition. *)

val add_document : t -> string -> Sxsi_xml.Document.t -> unit
(** Register an already-built document (bench and test entry point;
    the [LOAD] request is this plus file IO). *)

val handle :
  ?deadline_ms:int -> ?elapsed_ns:int -> t -> Protocol.request -> Protocol.response
(** Execute one request, updating metrics (request and error counters,
    the latency histogram, cache counters).

    [deadline_ms] overrides [options.default_deadline_ms] for this
    request (a session's [DEADLINE] setting; 0 disables the deadline
    entirely).  [elapsed_ns] is time the request already spent before
    reaching the service — accept-queue wait — and is charged against
    the deadline, so a request that queued past its deadline fails
    with [ERR DEADLINE] before doing any work.  Budget overruns inside
    evaluation surface as [ERR DEADLINE] / [ERR BUDGET]; open circuit
    breakers as [ERR BREAKER]; tripped failpoints as [ERR INJECTED]. *)

val handle_line :
  ?deadline_ms:int -> ?elapsed_ns:int -> t -> string -> Protocol.response
(** Parse and execute one request line; parse errors become [ERR]
    responses and count as errored requests.  Optional arguments as in
    {!handle}. *)

val reject : t -> Protocol.response -> Protocol.response
(** Account a request that was refused before reaching {!handle} (an
    oversized request line, a shed connection): bump the request and —
    for [Err] — error counters, and return the response unchanged. *)

val record_admission_wait : t -> int -> unit
(** Record one connection's accept-queue wait (nanoseconds) in the
    admission-wait histogram. *)

val profile_response : Sxsi_prof.Prof.snapshot -> Protocol.response
(** Render the profile window that opened at [since] as the [PROFILE]
    response: a [Data] block whose first line is the
    {!Sxsi_prof.Prof.to_json} report and whose remaining lines are the
    collapsed-stack ({!Sxsi_prof.Prof.to_folded}) output.  Front ends
    that cannot afford to block a worker for the window (the event
    loop) take their own snapshot up front and call this from a timer;
    the threaded path just sleeps inside [handle]. *)

val stats : t -> (string * string) list
(** The same key=value pairs the [STATS] request reports. *)

val metrics_text : t -> string
(** The service metrics in the Prometheus text exposition format — the
    body of the [METRICS] response: request/error/cache counters, the
    request-latency histogram, and live registry/cache gauges. *)

val trace : ?budget:Sxsi_qos.Budget.t -> t -> string -> string -> Sxsi_obs.Trace.t
(** [trace t doc query] evaluates the query once with tracing on and
    returns the trace (phase timings, engine and index counters, a
    [cache_hit] flag).  The [TRACE] request renders this as one JSON
    line.  Bypasses the result-count cache: the point is to watch the
    query execute.  Unknown documents and malformed queries raise the
    same internal exception the other query paths use, which {!handle}
    turns into an [ERR] response. *)

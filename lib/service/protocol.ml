type request =
  | Load of { name : string; path : string }
  | Query of { doc : string; query : string }
  | Count of { doc : string; query : string }
  | Materialize of { doc : string; query : string }
  | Stats
  | Metrics
  | Dump
  | Trace of { doc : string; query : string }
  | Evict of string
  | Deadline of int
  | Profile of int
  | Quit

type response =
  | Ok of string list
  | Data of string list
  | Err of string

(* ------------------------------------------------------------------ *)
(* Requests                                                             *)
(* ------------------------------------------------------------------ *)

let is_space c = c = ' ' || c = '\t'

(* Split off the first whitespace-delimited word; the remainder keeps
   its internal spacing (queries contain spaces). *)
let next_word s i =
  let n = String.length s in
  let i = ref i in
  while !i < n && is_space s.[!i] do incr i done;
  let start = !i in
  while !i < n && not (is_space s.[!i]) do incr i done;
  if start = !i then None
  else begin
    let word = String.sub s start (!i - start) in
    while !i < n && is_space s.[!i] do incr i done;
    Some (word, !i)
  end

let rest s i =
  let r = String.sub s i (String.length s - i) in
  String.trim r

let parse_request line =
  match next_word line 0 with
  | None -> Error "empty request"
  | Some (verb, i) -> begin
    let two_args ctor what =
      match next_word line i with
      | None -> Error (what ^ ": missing document name")
      | Some (doc, j) ->
        let q = rest line j in
        if q = "" then Error (what ^ ": missing query") else ctor doc q
    in
    match String.uppercase_ascii verb with
    | "LOAD" -> begin
      match next_word line i with
      | None -> Error "LOAD: missing name"
      | Some (name, j) -> begin
        match next_word line j with
        | None -> Error "LOAD: missing path"
        | Some (path, k) ->
          if rest line k <> "" then Error "LOAD: trailing garbage"
          else Result.Ok (Load { name; path })
      end
    end
    | "QUERY" -> two_args (fun doc query -> Result.Ok (Query { doc; query })) "QUERY"
    | "COUNT" -> two_args (fun doc query -> Result.Ok (Count { doc; query })) "COUNT"
    | "MATERIALIZE" ->
      two_args (fun doc query -> Result.Ok (Materialize { doc; query })) "MATERIALIZE"
    | "STATS" ->
      if rest line i <> "" then Error "STATS takes no argument" else Result.Ok Stats
    | "METRICS" ->
      if rest line i <> "" then Error "METRICS takes no argument" else Result.Ok Metrics
    | "DUMP" ->
      if rest line i <> "" then Error "DUMP takes no argument" else Result.Ok Dump
    | "TRACE" -> two_args (fun doc query -> Result.Ok (Trace { doc; query })) "TRACE"
    | "EVICT" -> begin
      match next_word line i with
      | None -> Error "EVICT: missing name"
      | Some (name, j) ->
        if rest line j <> "" then Error "EVICT: trailing garbage"
        else Result.Ok (Evict name)
    end
    | "DEADLINE" -> begin
      match next_word line i with
      | None -> Error "DEADLINE: missing milliseconds"
      | Some (ms, j) ->
        if rest line j <> "" then Error "DEADLINE: trailing garbage"
        else begin
          match int_of_string_opt ms with
          | Some v when v >= 0 -> Result.Ok (Deadline v)
          | Some _ | None -> Error "DEADLINE: want a non-negative millisecond count"
        end
    end
    | "PROFILE" -> begin
      match next_word line i with
      | None -> Result.Ok (Profile 1)
      | Some (secs, j) ->
        if rest line j <> "" then Error "PROFILE: trailing garbage"
        else begin
          match int_of_string_opt secs with
          | Some v when v >= 1 && v <= 60 -> Result.Ok (Profile v)
          | Some _ | None -> Error "PROFILE: want a window of 1..60 seconds"
        end
    end
    | "QUIT" ->
      if rest line i <> "" then Error "QUIT takes no argument" else Result.Ok Quit
    | v -> Error ("unknown request: " ^ v)
  end

let print_request = function
  | Load { name; path } -> Printf.sprintf "LOAD %s %s" name path
  | Query { doc; query } -> Printf.sprintf "QUERY %s %s" doc query
  | Count { doc; query } -> Printf.sprintf "COUNT %s %s" doc query
  | Materialize { doc; query } -> Printf.sprintf "MATERIALIZE %s %s" doc query
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Dump -> "DUMP"
  | Trace { doc; query } -> Printf.sprintf "TRACE %s %s" doc query
  | Evict name -> "EVICT " ^ name
  | Deadline ms -> Printf.sprintf "DEADLINE %d" ms
  | Profile secs -> Printf.sprintf "PROFILE %d" secs
  | Quit -> "QUIT"

(* ------------------------------------------------------------------ *)
(* Responses                                                            *)
(* ------------------------------------------------------------------ *)

(* Machine-readable error codes lead the ERR message: "ERR DEADLINE
   ..." etc.  Anything else (parse errors, unknown documents) is a
   code-less ERR, so [err_code] returns [None] for it. *)
let err ?retry_after_ms code detail =
  match retry_after_ms with
  | None -> Err (Printf.sprintf "%s %s" code detail)
  | Some ms -> Err (Printf.sprintf "%s %s; retry-after-ms=%d" code detail ms)

let is_code w =
  w <> ""
  && String.for_all (fun c -> c >= 'A' && c <= 'Z') w

let err_code = function
  | Ok _ | Data _ -> None
  | Err msg -> begin
    match String.index_opt msg ' ' with
    | Some i when is_code (String.sub msg 0 i) -> Some (String.sub msg 0 i)
    | None when is_code msg -> Some msg
    | Some _ | None -> None
  end

let retry_after_ms = function
  | Ok _ | Data _ -> None
  | Err msg ->
    let marker = "retry-after-ms=" in
    let mlen = String.length marker in
    let n = String.length msg in
    let rec find i =
      if i + mlen > n then None
      else if String.sub msg i mlen = marker then begin
        let j = ref (i + mlen) in
        while !j < n && msg.[!j] >= '0' && msg.[!j] <= '9' do incr j done;
        int_of_string_opt (String.sub msg (i + mlen) (!j - i - mlen))
      end
      else find (i + 1)
    in
    find 0

let stuff line = if String.length line > 0 && line.[0] = '.' then "." ^ line else line

let unstuff line =
  if String.length line > 0 && line.[0] = '.' then String.sub line 1 (String.length line - 1)
  else line

let print_response = function
  | Ok [] -> "OK\n"
  | Ok toks -> "OK " ^ String.concat " " toks ^ "\n"
  | Err msg -> "ERR " ^ msg ^ "\n"
  | Data lines ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "DATA\n";
    List.iter
      (fun l ->
        Buffer.add_string buf (stuff l);
        Buffer.add_char buf '\n')
      lines;
    Buffer.add_string buf ".\n";
    Buffer.contents buf

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_response lines =
  match lines with
  | [] -> Error "empty response"
  | first :: tl ->
    if first = "OK" then Result.Ok (Ok [], tl)
    else if String.length first >= 3 && String.sub first 0 3 = "OK " then
      Result.Ok (Ok (split_words (String.sub first 3 (String.length first - 3))), tl)
    else if String.length first >= 4 && String.sub first 0 4 = "ERR " then
      Result.Ok (Err (String.sub first 4 (String.length first - 4)), tl)
    else if first = "DATA" then begin
      let rec body acc = function
        | [] -> Error "unterminated DATA payload"
        | "." :: tl -> Result.Ok (Data (List.rev acc), tl)
        | l :: tl -> body (unstuff l :: acc) tl
      in
      body [] tl
    end
    else Error ("malformed response line: " ^ first)

let read_response read_line =
  match read_line () with
  | None -> Error "connection closed"
  | Some first ->
    if first = "DATA" then begin
      let rec body acc =
        match read_line () with
        | None -> Error "connection closed inside DATA payload"
        | Some "." -> Result.Ok (Data (List.rev acc))
        | Some l -> body (unstuff l :: acc)
      in
      body []
    end
    else begin
      match parse_response [ first ] with
      | Result.Ok (r, _) -> Result.Ok r
      | Error e -> Error e
    end

(** TCP front end: a blocking accept loop feeding a bounded hand-off
    queue drained by a fixed pool of worker domains, each running the
    {!Protocol} line protocol over the shared {!Service.t}.

    Concurrency is capped at [workers] sessions: when all workers are
    busy and the queue is full, new connections are refused with an
    [ERR SHED ... retry-after-ms=<n>] line (load shedding) instead of
    piling up a domain per connection.  Request lines are length-bounded;
    an oversized line is drained and answered [ERR TOOLONG] without
    dropping the session.  Time a connection spends in the accept queue
    is recorded in the admission-wait histogram and charged against the
    deadline of the session's first request, so a request that queued
    past its deadline fails fast instead of running anyway.  The
    connection counters and the worker/queue gauges appear in the
    service's [METRICS] output. *)

val default_max_line : int
(** Default bound on a request line, in bytes (64 KiB). *)

val serve :
  ?host:string ->
  ?backlog:int ->
  ?workers:int ->
  ?queue:int ->
  ?on_listen:(int -> unit) ->
  ?stop:(unit -> bool) ->
  port:int ->
  Service.t ->
  unit
(** [serve ~port svc] binds [host] (default ["127.0.0.1"]) on [port]
    ([0] picks an ephemeral port, reported through [on_listen]) and
    serves until [stop ()] (polled between accepts, default: never)
    returns [true].  [workers] (default [4], clamped to at least [1])
    fixes the session concurrency; [queue] (default [64]) bounds the
    accepted-but-unserved backlog.  Each connection reads one request
    per line and gets the rendered response; [QUIT] or EOF ends the
    connection.  On return every worker domain has been joined —
    connections already queued are served first, so no session is
    dropped and no domain leaks. *)

val session :
  ?max_line:int -> ?elapsed_ns:int -> in_channel -> out_channel -> Service.t -> unit
(** One protocol session over arbitrary channels: the per-connection
    loop of {!serve}, also usable for an stdin/stdout REPL.

    Reads at most [max_line] (default {!default_max_line}) bytes per
    request line, answering [ERR TOOLONG] for longer ones.  Tracks the
    session's [DEADLINE] override and passes it to
    {!Service.handle_line}; [elapsed_ns] (default [0]) is charged
    against the first request's deadline — {!serve} passes the
    connection's accept-queue wait. *)

(** TCP front end: a blocking accept loop that hands each connection to
    its own OCaml 5 domain running the {!Protocol} line protocol over
    the shared {!Service.t}. *)

val serve :
  ?host:string ->
  ?backlog:int ->
  ?on_listen:(int -> unit) ->
  ?stop:(unit -> bool) ->
  port:int ->
  Service.t ->
  unit
(** [serve ~port svc] binds [host] (default ["127.0.0.1"]) on [port]
    ([0] picks an ephemeral port, reported through [on_listen]) and
    serves until [stop ()] (polled between accepts, default: never)
    returns [true].  Each connection reads one request per line and
    gets the rendered response; [QUIT] or EOF ends the connection. *)

val session : in_channel -> out_channel -> Service.t -> unit
(** One protocol session over arbitrary channels: the per-connection
    loop of {!serve}, also usable for an stdin/stdout REPL. *)

(** TCP front end: a blocking accept loop feeding a bounded hand-off
    queue drained by a fixed pool of worker domains, each running the
    {!Protocol} line protocol over the shared {!Service.t}.

    Concurrency is capped at [workers] sessions: when all workers are
    busy and the queue is full, new connections are refused with an
    [ERR server busy] line (load shedding) instead of piling up a
    domain per connection.  The connection counters and the
    worker/queue gauges appear in the service's [METRICS] output. *)

val serve :
  ?host:string ->
  ?backlog:int ->
  ?workers:int ->
  ?queue:int ->
  ?on_listen:(int -> unit) ->
  ?stop:(unit -> bool) ->
  port:int ->
  Service.t ->
  unit
(** [serve ~port svc] binds [host] (default ["127.0.0.1"]) on [port]
    ([0] picks an ephemeral port, reported through [on_listen]) and
    serves until [stop ()] (polled between accepts, default: never)
    returns [true].  [workers] (default [4], clamped to at least [1])
    fixes the session concurrency; [queue] (default [64]) bounds the
    accepted-but-unserved backlog.  Each connection reads one request
    per line and gets the rendered response; [QUIT] or EOF ends the
    connection.  On return every worker domain has been joined —
    connections already queued are served first, so no session is
    dropped and no domain leaks. *)

val session : in_channel -> out_channel -> Service.t -> unit
(** One protocol session over arbitrary channels: the per-connection
    loop of {!serve}, also usable for an stdin/stdout REPL. *)

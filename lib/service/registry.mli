(** Named in-memory documents with byte-size accounting and
    least-recently-used eviction under a byte budget.

    Each registration gets a process-unique [generation] number; cache
    keys downstream include it, so reloading a document under the same
    name silently invalidates cached compiled queries and counts.

    Not thread-safe on its own — the service serializes access behind
    its lock. *)

type t

type entry = {
  doc : Sxsi_xml.Document.t;
  bytes : int;          (* estimated in-memory index size *)
  generation : int;
}

val create : ?max_bytes:int -> unit -> t
(** [max_bytes] (default: unlimited) caps the summed index sizes;
    adding past the cap evicts least-recently-used documents first.
    A single document larger than the cap is still admitted (alone). *)

val add : t -> string -> Sxsi_xml.Document.t -> entry
(** Register (or replace) a document under a name, evicting as needed.
    Returns the new entry. *)

val find : t -> string -> entry option
(** Lookup, promoting the document to most-recently-used. *)

val peek : t -> string -> entry option
(** Lookup without touching recency — for introspection (STATS) that
    must not perturb eviction order. *)

val evict : t -> string -> bool
(** Explicitly drop a document; [false] when unknown.  Does not count
    towards {!evictions}. *)

val names : t -> string list
(** Registered names, most-recently-used first. *)

val count : t -> int
(** Number of registered documents. *)

val total_bytes : t -> int
(** Summed estimated index sizes of the registered documents. *)

val evictions : t -> int
(** Documents dropped by byte pressure since [create]. *)

(* The event-driven TCP front end: one loop domain owning every
   socket, plus one executor domain per shard owning that shard's
   {!Service.t}.

   The loop accepts, reads, frames protocol lines, and flushes
   responses, all non-blocking; evaluation is handed to the document's
   shard executor and the response posted back to the loop.  Each
   connection keeps a FIFO of response slots, one per request in
   submission order, and only the completed prefix is ever written —
   pipelined responses come back in request order even when a slow
   query is overtaken by a fast one, and a partial write never
   interleaves two responses.

   Identical in-flight lookups (same verb, document, query and
   effective deadline) coalesce through a {!Sxsi_evloop.Single_flight}
   table at submission time: the first becomes the leader and
   evaluates once, the rest attach and receive the leader's response
   verbatim.  A LOAD or EVICT seals the document's in-flight entries
   first, so coalescing never crosses a mutation.

   Deadlines are charged from submission: the executor measures how
   long the request sat in its queue and passes it to the service as
   [elapsed_ns], so a request that queued past its deadline fails
   before doing any work — the evloop analog of the threaded server's
   accept-queue charging. *)

module Counter = Sxsi_obs.Counter
module Clock = Sxsi_obs.Clock
module J = Sxsi_obs.Journal
module Poll = Sxsi_evloop.Poll
module Netbuf = Sxsi_evloop.Netbuf
module Loop = Sxsi_evloop.Loop
module Single_flight = Sxsi_evloop.Single_flight

let n_accept = J.name "evloop/accept"
let n_flush = J.name "evloop/flush"
let n_coalesce = J.name "evloop/coalesce"
let n_idle = J.name "evloop/idle_close"
let n_shed = J.name "evloop/shed"
let n_exec_queue = J.name "evloop/exec_queue"
let n_exec_idle = J.name "evloop/exec_idle"

let default_high_water = 256 * 1024
let default_max_conns = 1024
let read_chunk = 16 * 1024
let shed_retry_after_ms = 100

(* ------------------------------------------------------------------ *)
(* Shard executors                                                      *)
(* ------------------------------------------------------------------ *)

(* One domain per shard, fed through a blocking queue.  Jobs enqueued
   before [close] still run, mirroring the threaded server's
   drain-on-shutdown queue. *)
type exec = {
  jobs : (unit -> unit) Queue.t;
  em : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  jobs_done : Counter.t;
  busy_ns : Counter.t;   (* wall time spent inside jobs *)
}

let exec_create () =
  {
    jobs = Queue.create ();
    em = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    jobs_done = Counter.create ();
    busy_ns = Counter.create ();
  }

let exec_submit e job =
  Mutex.protect e.em (fun () ->
      Queue.push job e.jobs;
      Condition.signal e.nonempty)

let exec_depth e = Mutex.protect e.em (fun () -> Queue.length e.jobs)

let exec_close e =
  Mutex.protect e.em (fun () ->
      e.closed <- true;
      Condition.broadcast e.nonempty)

let exec_run e =
  let pop () =
    Mutex.protect e.em (fun () ->
        let rec wait () =
          if not (Queue.is_empty e.jobs) then Some (Queue.pop e.jobs)
          else if e.closed then None
          else begin
            (* spanned so an idle executor profiles as evloop/exec_idle
               rather than unattributed time *)
            J.begin_span J.Evloop n_exec_idle ();
            Condition.wait e.nonempty e.em;
            J.end_span J.Evloop n_exec_idle ();
            wait ()
          end
        in
        wait ())
  in
  let rec loop () =
    match pop () with
    | None -> ()
    | Some job ->
      let t0 = Clock.now_ns () in
      job ();
      Counter.add e.busy_ns (Clock.since t0);
      Counter.incr e.jobs_done;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connections                                                          *)
(* ------------------------------------------------------------------ *)

(* A response slot: one per submitted request, filled when its
   evaluation completes.  Only the completed prefix of the queue is
   flushed, which is what keeps pipelined responses ordered. *)
type slot = { mutable out : string option }

type conn = {
  fd : Unix.file_descr;
  rbuf : Netbuf.t;
  wbuf : Netbuf.t;
  slots : slot Queue.t;
  mutable draining : bool;           (* discarding an oversized line *)
  mutable deadline_ms : int option;  (* session DEADLINE override *)
  mutable closing : bool;            (* no more reads; close once flushed *)
  mutable closed : bool;
  mutable idle_timer : (unit -> unit) Sxsi_evloop.Wheel.timer option;
  mutable last_ns : int;             (* last read activity *)
}

type t = {
  loop : Loop.t;
  shards : Shards.t;
  execs : exec array;
  sf : waiter Single_flight.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  lsock : Unix.file_descr;
  max_line : int;
  high_water : int;
  idle_ms : int;
  max_conns : int;
  sndbuf : int option;
  idle_closed : Counter.t;
  metrics : Metrics.t;  (* the primary shard's, for connection counters *)
}

and waiter = { wc : conn; wslot : slot; wsvc : Service.t }

let chomp_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let close_conn t c =
  if not c.closed then begin
    c.closed <- true;
    (match c.idle_timer with
    | Some tm ->
      Loop.cancel_timer t.loop tm;
      c.idle_timer <- None
    | None -> ());
    Loop.unregister t.loop c.fd;
    Hashtbl.remove t.conns c.fd;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Counter.incr t.metrics.Metrics.connections_closed
  end

(* Recompute what the connection should be polled for: reads unless it
   is closing or its write buffer is above the high-water mark
   (backpressure: a slow reader stops being read from), writes while
   response bytes are queued. *)
let update_interest t c =
  if not c.closed then begin
    let want_read = (not c.closing) && Netbuf.length c.wbuf < t.high_water in
    let want_write = not (Netbuf.is_empty c.wbuf) in
    Loop.set_interest t.loop c.fd
      ((if want_read then Poll.ev_read else 0)
      lor (if want_write then Poll.ev_write else 0))
  end

let rec move_completed c =
  match Queue.peek_opt c.slots with
  | Some ({ out = Some bytes } as s) ->
    ignore (Queue.pop c.slots : slot);
    s.out <- None;
    Netbuf.add_string c.wbuf bytes;
    move_completed c
  | Some { out = None } | None -> ()

let flush_conn t c =
  if not c.closed then begin
    move_completed c;
    if not (Netbuf.is_empty c.wbuf) then begin
      J.begin_span J.Evloop n_flush ();
      let r = Netbuf.flush_to c.wbuf c.fd in
      (match r with
      | Netbuf.Flushed n | Netbuf.Flush_would_block n -> J.end_span J.Evloop n_flush ~a:n ()
      | Netbuf.Peer_gone -> J.end_span J.Evloop n_flush ());
      match r with
      | Netbuf.Peer_gone -> close_conn t c
      | Netbuf.Flushed _ | Netbuf.Flush_would_block _ -> ()
    end;
    if not c.closed then
      if c.closing && Queue.is_empty c.slots && Netbuf.is_empty c.wbuf then close_conn t c
      else update_interest t c
  end

(* ------------------------------------------------------------------ *)
(* Evaluation and delivery                                              *)
(* ------------------------------------------------------------------ *)

(* Evloop-specific STATS lines, appended to the service's own so the
   coalescing and loop counters are scrapeable over the protocol. *)
let ev_stats_lines t =
  [
    ("ev_backend", (match Poll.backend () with Poll.Poll_syscall -> "poll" | Poll.Select -> "select"));
    ("ev_shards", string_of_int (Shards.count t.shards));
    ("ev_connections", string_of_int (Hashtbl.length t.conns));
    ("ev_turns", string_of_int (Loop.turns_total t.loop));
    ("ev_wakeups", string_of_int (Loop.wakeups_total t.loop));
    ("ev_timers_fired", string_of_int (Loop.timers_fired_total t.loop));
    ("ev_leaders", string_of_int (Single_flight.leaders_total t.sf));
    ("ev_coalesced", string_of_int (Single_flight.coalesced_total t.sf));
    ("ev_seals", string_of_int (Single_flight.seals_total t.sf));
    ("ev_in_flight", string_of_int (Single_flight.in_flight t.sf));
    ("ev_idle_closed", string_of_int (Counter.get t.idle_closed));
    ( "ev_exec_jobs",
      String.concat ","
        (Array.to_list
           (Array.map (fun e -> string_of_int (Counter.get e.jobs_done)) t.execs)) );
    ( "ev_exec_busy_ms",
      String.concat ","
        (Array.to_list
           (Array.map
              (fun e -> string_of_int (Counter.get e.busy_ns / 1_000_000))
              t.execs)) );
    ( "ev_exec_depth",
      String.concat ","
        (Array.to_list (Array.map (fun e -> string_of_int (exec_depth e)) t.execs)) );
  ]

let give t w bytes =
  if not w.wc.closed then begin
    w.wslot.out <- Some bytes;
    flush_conn t w.wc
  end

(* A coalesced evaluation completed: fan the leader's response out to
   every waiter.  Waiters beyond the leader never reached
   [Service.handle], so account them as requests (and errors, for ERR
   responses) to keep the request rate honest. *)
let deliver_entry t entry resp =
  match Single_flight.complete t.sf entry with
  | [] -> ()
  | leader :: rest ->
    let bytes = Protocol.print_response resp in
    if rest <> [] then J.instant J.Evloop n_coalesce ~a:(List.length rest) ();
    give t leader bytes;
    List.iter
      (fun w ->
        ignore (Service.reject w.wsvc resp : Protocol.response);
        give t w bytes)
      rest

let deliver_one t w ~stats resp =
  let resp =
    if stats then
      match resp with
      | Protocol.Data lines ->
        Protocol.Data (lines @ List.map (fun (k, v) -> k ^ "=" ^ v) (ev_stats_lines t))
      | other -> other
    else resp
  in
  give t w (Protocol.print_response resp)

(* Evaluate one line on its shard's service.  STATS and METRICS under
   real sharding aggregate across every shard instead of reporting one
   shard's view; everything else — including parse errors — is exactly
   [Service.handle_line]. *)
let evaluate t svc parsed ~deadline_ms ~elapsed_ns line =
  let aggregated = Shards.count t.shards > 1 in
  match parsed with
  | Result.Ok Protocol.Stats when aggregated ->
    Service.reject svc
      (Protocol.Data (List.map (fun (k, v) -> k ^ "=" ^ v) (Shards.stats t.shards)))
  | Result.Ok Protocol.Metrics when aggregated ->
    Service.reject svc
      (Protocol.Data
         (List.filter
            (fun l -> l <> "")
            (String.split_on_char '\n' (Shards.metrics_text t.shards))))
  | _ -> (
    try Service.handle_line ?deadline_ms ~elapsed_ns svc line
    with exn ->
      Service.reject svc (Protocol.Err ("internal error: " ^ Printexc.to_string exn)))

(* Submit one request line from [c]: reserve the next response slot,
   update session state, then either attach to an identical in-flight
   evaluation or enqueue a fresh one on the document's shard
   executor. *)
let submit t c line =
  let slot = { out = None } in
  Queue.push slot c.slots;
  let parsed = Protocol.parse_request line in
  (match parsed with
  | Result.Ok (Protocol.Deadline ms) -> c.deadline_ms <- Some ms
  | _ -> ());
  (* seal before dispatch: queries submitted after this mutation must
     not share a pre-mutation evaluation *)
  (match parsed with
  | Result.Ok (Protocol.Load { name; _ }) | Result.Ok (Protocol.Evict name) ->
    Single_flight.seal_group t.sf name
  | _ -> ());
  let shard =
    match parsed with
    | Result.Ok req -> Shards.shard_of_request t.shards req
    | Error _ -> 0
  in
  let svc = Shards.service t.shards shard in
  let exec = t.execs.(shard) in
  let deadline_ms = c.deadline_ms in
  let stats = match parsed with Result.Ok Protocol.Stats -> true | _ -> false in
  let enqueued_ns = Clock.now_ns () in
  let w = { wc = c; wslot = slot; wsvc = svc } in
  let run_leader deliver =
    exec_submit exec (fun () ->
        let elapsed_ns = Clock.since enqueued_ns in
        J.begin_span J.Evloop n_exec_queue ~ts:enqueued_ns ();
        J.end_span J.Evloop n_exec_queue ();
        Service.record_admission_wait svc elapsed_ns;
        let resp = evaluate t svc parsed ~deadline_ms ~elapsed_ns line in
        Loop.post t.loop (fun () -> deliver resp))
  in
  let coalesce_key =
    match parsed with
    | Result.Ok (Protocol.Query { doc; query }) -> Some ("Q", doc, query)
    | Result.Ok (Protocol.Count { doc; query }) -> Some ("C", doc, query)
    | Result.Ok (Protocol.Materialize { doc; query }) -> Some ("M", doc, query)
    | _ -> None
  in
  (match parsed with
  | Result.Ok (Protocol.Profile secs) ->
    (* never blocks an executor domain (a blocked shard executor would
       starve the very load being profiled): snapshot now, let a loop
       timer deliver the window diff when it closes *)
    Sxsi_prof.Prof.ensure_started ();
    let since = Sxsi_prof.Prof.snapshot () in
    let at_ns = enqueued_ns + (secs * 1_000_000_000) in
    ignore
      (Loop.timer_at t.loop ~at_ns (fun () ->
           deliver_one t w ~stats:false
             (Service.reject svc (Service.profile_response since)))
        : (unit -> unit) Sxsi_evloop.Wheel.timer)
  | _ -> (
    match coalesce_key with
    | Some (verb, doc, query) ->
      let eff_dl = match deadline_ms with Some d -> d | None -> -1 in
      let key = Printf.sprintf "%s\x00%s\x00%s\x00%d" verb doc query eff_dl in
      (match Single_flight.join t.sf ~key ~group:doc w with
      | Single_flight.Attached -> ()
      | Single_flight.Leader entry -> run_leader (fun resp -> deliver_entry t entry resp))
    | None -> run_leader (fun resp -> deliver_one t w ~stats resp)));
  (* QUIT answers, then closes: stop reading now, close once the
     pipeline ahead of it (and its own OK) has flushed *)
  match parsed with
  | Result.Ok Protocol.Quit -> c.closing <- true
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Reading and framing                                                  *)
(* ------------------------------------------------------------------ *)

let too_long_resp t =
  Protocol.err "TOOLONG"
    (Printf.sprintf "request line longer than %d bytes" t.max_line)

let rec parse_buffered t c =
  if (not c.closed) && not c.closing then
    if c.draining then begin
      if Netbuf.drain_line c.rbuf then begin
        c.draining <- false;
        let resp = Service.reject (Shards.primary t.shards) (too_long_resp t) in
        Queue.push { out = Some (Protocol.print_response resp) } c.slots;
        parse_buffered t c
      end
      (* else: newline not seen yet, keep draining on the next read *)
    end
    else
      match Netbuf.next_line c.rbuf ~max_line:t.max_line with
      | Netbuf.Line l ->
        submit t c (chomp_cr l);
        parse_buffered t c
      | Netbuf.Too_long ->
        c.draining <- true;
        parse_buffered t c
      | Netbuf.More -> ()

let on_readable t c =
  match Netbuf.fill_from c.rbuf c.fd ~max:read_chunk with
  | Netbuf.Filled _ ->
    c.last_ns <- Clock.now_ns ();
    parse_buffered t c;
    flush_conn t c
  | Netbuf.Fill_would_block -> ()
  | Netbuf.Eof ->
    (* half-close: frame what was buffered; a trailing unterminated
       line still gets an answer, like the threaded reader's
       EOF-as-end-of-line *)
    parse_buffered t c;
    if (not c.closing) && (not c.draining) && Netbuf.length c.rbuf > 0 then begin
      let tail = Netbuf.contents c.rbuf in
      Netbuf.clear c.rbuf;
      submit t c (chomp_cr tail)
    end;
    c.closing <- true;
    c.draining <- false;
    if Queue.is_empty c.slots && Netbuf.is_empty c.wbuf then close_conn t c
    else flush_conn t c
  | Netbuf.Closed_by_peer -> close_conn t c

let on_conn_event t c mask =
  if not c.closed then begin
    if mask land Poll.ev_error <> 0 then close_conn t c
    else begin
      if mask land Poll.ev_write <> 0 then flush_conn t c;
      if (not c.closed) && mask land Poll.ev_read <> 0 then on_readable t c
    end
  end

(* ------------------------------------------------------------------ *)
(* Idle timeout                                                         *)
(* ------------------------------------------------------------------ *)

(* Lazy re-arm: the timer fires at [last activity + idle], and if
   activity happened meanwhile (or a response is still in flight) it
   pushes itself forward instead of being rescheduled on every read. *)
let rec idle_fire t c () =
  c.idle_timer <- None;
  if not c.closed then begin
    let now = Clock.now_ns () in
    let deadline = c.last_ns + (t.idle_ms * 1_000_000) in
    let busy = (not (Queue.is_empty c.slots)) || not (Netbuf.is_empty c.wbuf) in
    if now >= deadline && (not busy) && not c.closing then begin
      Counter.incr t.idle_closed;
      J.instant J.Evloop n_idle ();
      let resp = Protocol.err "IDLE" (Printf.sprintf "idle for %dms; closing" t.idle_ms) in
      Queue.push { out = Some (Protocol.print_response resp) } c.slots;
      c.closing <- true;
      flush_conn t c
    end
    else
      let at_ns = if now >= deadline then now + (t.idle_ms * 1_000_000) else deadline in
      c.idle_timer <- Some (Loop.timer_at t.loop ~at_ns (idle_fire t c))
  end

let arm_idle t c =
  if t.idle_ms > 0 then
    c.idle_timer <-
      Some (Loop.timer_at t.loop ~at_ns:(c.last_ns + (t.idle_ms * 1_000_000)) (idle_fire t c))

(* ------------------------------------------------------------------ *)
(* Accepting                                                            *)
(* ------------------------------------------------------------------ *)

let shed t fd =
  Counter.incr t.metrics.Metrics.connections_shed;
  J.instant J.Evloop n_shed ();
  let resp =
    Service.reject (Shards.primary t.shards)
      (Protocol.err ~retry_after_ms:shed_retry_after_ms "SHED"
         "server busy: connection limit")
  in
  let bytes = Protocol.print_response resp in
  (try ignore (Unix.write_substring fd bytes 0 (String.length bytes) : int)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_conn t fd =
  Unix.set_nonblock fd;
  (match t.sndbuf with
  | Some n -> ( try Unix.setsockopt_int fd Unix.SO_SNDBUF n with Unix.Unix_error _ -> ())
  | None -> ());
  let c =
    {
      fd;
      rbuf = Netbuf.create ();
      wbuf = Netbuf.create ();
      slots = Queue.create ();
      draining = false;
      deadline_ms = None;
      closing = false;
      closed = false;
      idle_timer = None;
      last_ns = Clock.now_ns ();
    }
  in
  Hashtbl.replace t.conns fd c;
  Loop.register t.loop fd ~interest:Poll.ev_read ~on_event:(on_conn_event t c);
  arm_idle t c;
  Counter.incr t.metrics.Metrics.connections_opened;
  J.instant J.Evloop n_accept ()

let on_acceptable t _mask =
  (* bounded accepts per turn so one burst cannot starve live
     connections *)
  let rec loop n =
    if n > 0 then
      match Unix.accept ~cloexec:true t.lsock with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop (n - 1)
      | fd, _ ->
        if Hashtbl.length t.conns >= t.max_conns then shed t fd else accept_conn t fd;
        loop (n - 1)
  in
  loop 64

(* ------------------------------------------------------------------ *)
(* Serve                                                                *)
(* ------------------------------------------------------------------ *)

let register_metrics t =
  let primary = Shards.primary t.shards in
  (* a service can only register a given exposition name once; a
     second serve over the same service keeps the first wiring *)
  try
    Service.register_server primary
      ~workers:(fun () -> Shards.count t.shards)
      ~queue_depth:(fun () ->
        Array.fold_left (fun acc e -> acc + exec_depth e) 0 t.execs);
    Service.register_exposition primary (fun e ->
        let counter = Sxsi_obs.Exposition.register_counter e in
        counter ~help:"Event-loop turns." ~name:"sxsi_evloop_turns_total"
          (Loop.turns_counter t.loop);
        counter ~help:"Cross-thread event-loop wakeups."
          ~name:"sxsi_evloop_wakeups_total"
          (Loop.wakeups_counter t.loop);
        counter ~help:"Single-flight evaluations started."
          ~name:"sxsi_evloop_leaders_total"
          (Single_flight.leaders_counter t.sf);
        counter ~help:"Requests coalesced onto an in-flight evaluation."
          ~name:"sxsi_evloop_coalesced_total"
          (Single_flight.coalesced_counter t.sf);
        counter ~help:"Connections closed by the idle timeout."
          ~name:"sxsi_evloop_idle_closed_total" t.idle_closed;
        let gauge = Sxsi_obs.Exposition.register_gauge e in
        gauge ~help:"Open connections." ~name:"sxsi_evloop_connections" (fun () ->
            float_of_int (Hashtbl.length t.conns));
        gauge ~help:"Shards." ~name:"sxsi_evloop_shards" (fun () ->
            float_of_int (Shards.count t.shards));
        let multi = Sxsi_obs.Exposition.register_multi_gauge e in
        let per_shard f () =
          Array.to_list
            (Array.mapi (fun i ex -> ([ ("shard", string_of_int i) ], f ex)) t.execs)
        in
        multi ~help:"Jobs completed per shard executor."
          ~name:"sxsi_evloop_exec_jobs_total"
          (per_shard (fun ex -> float_of_int (Counter.get ex.jobs_done)));
        multi ~help:"Seconds each shard executor spent running jobs."
          ~name:"sxsi_evloop_exec_busy_seconds_total"
          (per_shard (fun ex -> float_of_int (Counter.get ex.busy_ns) /. 1e9));
        multi ~help:"Queued jobs per shard executor."
          ~name:"sxsi_evloop_exec_queue_depth"
          (per_shard (fun ex -> float_of_int (exec_depth ex))))
  with Invalid_argument _ -> ()

let serve ?(host = "127.0.0.1") ?(backlog = 64) ?(max_line = Server.default_max_line)
    ?(high_water = default_high_water) ?(idle_ms = 0) ?(max_conns = default_max_conns)
    ?sndbuf ?(on_listen = fun _ -> ()) ?(stop = fun () -> false) ~port shards =
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let loop = Loop.create () in
  let nshards = Shards.count shards in
  let t =
    {
      loop;
      shards;
      execs = Array.init nshards (fun _ -> exec_create ());
      sf = Single_flight.create ();
      conns = Hashtbl.create 64;
      lsock;
      max_line;
      high_water = max 1 high_water;
      idle_ms;
      max_conns = max 1 max_conns;
      sndbuf;
      idle_closed = Counter.create ();
      metrics = Service.service_metrics (Shards.primary shards);
    }
  in
  register_metrics t;
  let domains =
    Array.map
      (fun e ->
        Domain.spawn (fun () ->
            Fun.protect ~finally:J.retire_slot (fun () -> exec_run e)))
      t.execs
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      (* close every live connection, then drain and join the
         executors: completions they post after this never run, which
         is fine — their connections are gone *)
      let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      List.iter (close_conn t) live;
      Array.iter exec_close t.execs;
      Array.iter Domain.join domains;
      Loop.close loop)
    (fun () ->
      Unix.setsockopt lsock Unix.SO_REUSEADDR true;
      Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen lsock backlog;
      Unix.set_nonblock lsock;
      (match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> on_listen p
      | _ -> ());
      Loop.register loop lsock ~interest:Poll.ev_read ~on_event:(on_acceptable t);
      Loop.run ~stop loop)

(* Shared-nothing sharding: N independent {!Service.t}s, one per
   shard, with documents routed by a stable hash of their name.  Each
   shard owns a private registry and cache partition and is only ever
   driven by its own executor, so shards never contend on the service
   lock.  One shard (the default) is plain delegation — byte-identical
   to an unsharded service. *)

type t = { services : Service.t array }

let create ~shards f =
  if shards < 1 then invalid_arg "Shards.create";
  { services = Array.init shards f }

let of_service svc = { services = [| svc |] }
let count t = Array.length t.services
let primary t = t.services.(0)
let service t i = t.services.(i)
let iter f t = Array.iteri f t.services

let shard_of_doc t name =
  if Array.length t.services = 1 then 0
  else Hashtbl.hash name mod Array.length t.services

let for_doc t name = t.services.(shard_of_doc t name)

(* Requests that name a document route to its shard; everything else
   (STATS, METRICS, DUMP, DEADLINE, QUIT, parse errors) runs on the
   primary. *)
let shard_of_request t (req : Protocol.request) =
  match req with
  | Load { name; _ } | Evict name -> shard_of_doc t name
  | Query { doc; _ } | Count { doc; _ } | Materialize { doc; _ } | Trace { doc; _ }
    -> shard_of_doc t doc
  | Stats | Metrics | Dump | Deadline _ | Profile _ | Quit -> 0

let add_document t name doc = Service.add_document (for_doc t name) name doc
let shutdown t = Array.iter Service.shutdown t.services

(* Aggregate STATS across shards: integer values sum, percentile keys
   take the worst shard, other floats sum, non-numeric values keep the
   primary's.  Key order follows the primary; keys later shards add
   are appended.  With one shard this is exactly [Service.stats]. *)
let is_percentile k =
  let suffixed s = String.length k >= String.length s
    && String.sub k (String.length k - String.length s) (String.length s) = s
  in
  suffixed "_p50_ms" || suffixed "_p95_ms" || suffixed "_p99_ms"

let merge_values k a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> string_of_int (x + y)
  | _ -> (
    match (float_of_string_opt a, float_of_string_opt b) with
    | Some x, Some y ->
      if is_percentile k then Printf.sprintf "%.3f" (Float.max x y)
      else Printf.sprintf "%.3f" (x +. y)
    | _ -> a)

let stats t =
  match Array.to_list t.services with
  | [] -> []
  | [ s ] -> Service.stats s
  | first :: rest ->
    let acc = ref (Service.stats first) in
    List.iter
      (fun s ->
        let theirs = Service.stats s in
        let merged =
          List.map
            (fun (k, v) ->
              match List.assoc_opt k theirs with
              | None -> (k, v)
              | Some v' -> (k, merge_values k v v'))
            !acc
        in
        let extra = List.filter (fun (k, _) -> not (List.mem_assoc k !acc)) theirs in
        acc := merged @ extra)
      rest;
    !acc

(* METRICS with shards is a debugging view: each shard's exposition
   under a marker comment.  With one shard it is the plain
   exposition. *)
let metrics_text t =
  if Array.length t.services = 1 then Service.metrics_text t.services.(0)
  else
    String.concat ""
      (List.mapi
         (fun i s -> Printf.sprintf "# shard %d\n%s" i (Service.metrics_text s))
         (Array.to_list t.services))

(** The event-driven TCP front end: a single non-blocking loop domain
    owning every socket, one executor domain per {!Shards} shard
    owning that shard's {!Service.t}.

    Differences from the threaded {!Server}:

    {ul
    {- {b Pipelining.}  Clients may send many requests without reading
       responses; each connection keeps a FIFO of response slots and
       only the completed prefix is flushed, so responses come back in
       request order and a partial write never interleaves two
       responses.}
    {- {b Single-flight coalescing.}  Identical in-flight lookups
       ([QUERY]/[COUNT]/[MATERIALIZE] with the same document, query
       and effective deadline) evaluate once; the other submitters
       receive the leader's response — errors included — and are
       accounted as requests.  A [LOAD] or [EVICT] seals the
       document's in-flight entries so coalescing never crosses a
       mutation.}
    {- {b Backpressure.}  A connection whose write buffer exceeds the
       high-water mark stops being read from until it drains.}
    {- {b Idle timeout.}  With [idle_ms > 0], a connection with no
       read activity and nothing in flight for that long is sent
       [ERR IDLE ...] and closed.}
    {- {b Deadline charging.}  Time a request spends queued for its
       shard executor is charged against its deadline, like the
       threaded server's accept-queue charging.}}

    Byte-compatibility: with one shard, every response is rendered by
    the same {!Service.handle_line} the threaded server uses ([STATS]
    gains trailing [ev_*] keys).  With several shards, [STATS] and
    [METRICS] aggregate across shards ({!Shards.stats}). *)

val serve :
  ?host:string ->
  ?backlog:int ->
  ?max_line:int ->
  ?high_water:int ->
  ?idle_ms:int ->
  ?max_conns:int ->
  ?sndbuf:int ->
  ?on_listen:(int -> unit) ->
  ?stop:(unit -> bool) ->
  port:int ->
  Shards.t ->
  unit
(** [serve ~port shards] binds [host] (default ["127.0.0.1"]) on
    [port] ([0] picks an ephemeral port, reported through [on_listen])
    and turns the event loop until [stop ()] returns [true] (checked
    at least every 200ms).  On return the listener and every
    connection are closed and every executor domain joined.

    [max_line] bounds a request line ({!Server.default_max_line});
    longer lines are drained and answered [ERR TOOLONG].  [high_water]
    (default 256 KiB) is the per-connection write-buffer backpressure
    threshold.  [idle_ms] (default [0]: off) closes idle connections
    with [ERR IDLE].  [max_conns] (default 1024) sheds further
    connections with [ERR SHED ... retry-after-ms=<n>].  [sndbuf]
    sets [SO_SNDBUF] on accepted sockets — a test hook for forcing
    partial writes. *)

(** Shared-nothing sharding for the event-driven front end: N
    independent {!Service.t}s with documents routed by a stable hash
    of their name.

    Each shard owns a private registry and cache partition and is
    driven by a single executor, so shards never contend on a shared
    lock.  The default of one shard is plain delegation:
    byte-identical responses to an unsharded service. *)

type t

val create : shards:int -> (int -> Service.t) -> t
(** [create ~shards f] builds shard [i] with [f i].
    @raise Invalid_argument when [shards < 1]. *)

val of_service : Service.t -> t
(** A single-shard router over an existing service (tests, REPL). *)

val count : t -> int

val primary : t -> Service.t
(** Shard 0: where document-less requests run and where front ends
    account connections. *)

val service : t -> int -> Service.t
val iter : (int -> Service.t -> unit) -> t -> unit

val shard_of_doc : t -> string -> int
val for_doc : t -> string -> Service.t

val shard_of_request : t -> Protocol.request -> int
(** The shard a request runs on: its document's shard for
    document-addressed verbs, the primary for the rest. *)

val add_document : t -> string -> Sxsi_xml.Document.t -> unit
(** Register a pre-built document on its home shard. *)

val stats : t -> (string * string) list
(** Aggregated [STATS]: integers sum across shards, percentiles take
    the worst shard, the primary's key order is preserved.  Exactly
    {!Service.stats} with one shard. *)

val metrics_text : t -> string
(** The primary's exposition with one shard; with more, each shard's
    exposition under a [# shard <i>] marker (a debugging view). *)

val shutdown : t -> unit
(** {!Service.shutdown} every shard. *)

(* Classic hash table + doubly-linked recency list.  The list is
   intrusive: each table entry is a list node, so promotion and
   eviction are pointer splices. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most recent *)
  mutable next : ('k, 'v) node option;  (* towards least recent *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable evicted : int;
}

let create ~cap =
  if cap < 0 then invalid_arg "Lru.create: negative capacity";
  { cap; tbl = Hashtbl.create (max 16 cap); head = None; tail = None; evicted = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let evictions t = t.evicted

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    (match t.head with
    | Some h when h == n -> ()
    | _ ->
      unlink t n;
      push_front t n);
    Some n.value

let evict_over_cap t =
  while Hashtbl.length t.tbl > t.cap do
    match t.tail with
    | None -> assert false
    | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      t.evicted <- t.evicted + 1
  done

let add t k v =
  if t.cap > 0 then begin
    (match Hashtbl.find_opt t.tbl k with
    | Some n ->
      n.value <- v;
      unlink t n;
      push_front t n
    | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.add t.tbl k n;
      push_front t n);
    evict_over_cap t
  end

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl k

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head

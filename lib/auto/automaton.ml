open Sxsi_xml

type state = int

type pred_descr =
  | Text_pred of Sxsi_xpath.Ast.value_op * string
  | Custom_pred of string * string

type transition = {
  guard : Formula.guard;
  phi : Formula.t;
}

type scan_info = {
  scan_guard : Formula.guard;
  scan_recursive : bool;
  scan_collect : bool;
  scan_match : Formula.t;
  scan_marking : bool;
  scan_drop : bool;
  scan_tags : int list;
}

type opt_stats = {
  opt_states_before : int;
  opt_states_after : int;
  opt_trans_before : int;
  opt_trans_after : int;
  opt_merged_states : int;
  opt_jump_states : int;
  opt_jump_tags : int;
}

type t = {
  doc : Document.t;
  start : state;
  mutable states : state list;
  trans : (state, transition list) Hashtbl.t;
  bottom : (state, unit) Hashtbl.t;
  mutable preds : pred_descr array;
  scan : (state, scan_info) Hashtbl.t;
  mutable needs_dedup : bool;
  jumps : (state, int array) Hashtbl.t;
  mutable opt : opt_stats option;
}

let state_counter = ref 0

let fresh_state () =
  let q = !state_counter in
  incr state_counter;
  q

let create doc ~start =
  {
    doc;
    start;
    states = [ start ];
    trans = Hashtbl.create 16;
    bottom = Hashtbl.create 16;
    preds = [||];
    scan = Hashtbl.create 16;
    needs_dedup = false;
    jumps = Hashtbl.create 16;
    opt = None;
  }

let add_transition t q guard phi =
  if not (List.mem q t.states) then t.states <- q :: t.states;
  let existing = match Hashtbl.find_opt t.trans q with Some l -> l | None -> [] in
  Hashtbl.replace t.trans q (existing @ [ { guard; phi } ])

let set_bottom t q = Hashtbl.replace t.bottom q ()
let is_bottom t q = Hashtbl.mem t.bottom q
let set_scan_info t q i = Hashtbl.replace t.scan q i
let scan_info t q = Hashtbl.find_opt t.scan q
let set_jump_set t q tags = Hashtbl.replace t.jumps q tags
let jump_set t q = Hashtbl.find_opt t.jumps q

let add_pred t d =
  t.preds <- Array.append t.preds [| d |];
  Array.length t.preds - 1

let transitions t q =
  match Hashtbl.find_opt t.trans q with Some l -> l | None -> []

let guard_matches t g tag =
  match g with
  | Formula.Any -> true
  | Formula.Tag tg -> tag = tg
  | Formula.Elements -> Document.is_element_tag t.doc tag
  | Formula.Attributes -> Document.is_attribute_tag t.doc tag
  | Formula.Node_kind ->
    Document.is_element_tag t.doc tag
    || tag = Document.text_tag || tag = Document.root_tag

let matching_phi t q tag =
  List.fold_left
    (fun acc tr ->
      if guard_matches t tr.guard tag then Formula.disj acc tr.phi else acc)
    Formula.fls (transitions t q)

let to_string t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "start: q%d\n" t.start;
  List.iter
    (fun q ->
      List.iter
        (fun tr ->
          Printf.bprintf buf "q%d, %s -> %s%s\n" q
            (match tr.guard with
            | Formula.Any -> "L"
            | Formula.Tag tg -> Printf.sprintf "{%s}" (Document.tag_name t.doc tg)
            | Formula.Elements -> "{*}"
            | Formula.Attributes -> "{@*}"
            | Formula.Node_kind -> "{node()}")
            (Formula.to_string tr.phi)
            (if is_bottom t q then "  [bottom]" else ""))
        (transitions t q))
    (List.sort compare t.states);
  Buffer.contents buf

(** Whole-query automaton optimization (the static pass of Maneth &
    Nguyên's "XPath Whole Query Optimization", applied to the marking
    alternating automata of §5.2).

    {!Compile.compile} translates each step of the query into a
    scanning state mechanically, so the raw automaton routinely
    carries work that can be discharged before the first node is
    visited: predicates over tags the document does not contain,
    duplicated sub-plans compiled to twin states, and scans whose
    match can never (or must always) succeed.  [Optimize.run] rewrites
    the automaton in place through three analyses:

    {ol
    {- {b Relevant-state analysis.}  A joint fixpoint classifies
       states as {e dead} (accepting at no node and not at Nil — every
       transition formula folds to [fls] once the currently-dead set
       is substituted) or {e trivially true} (a bottom state accepting
       at every node without producing marks).  Both facts substitute
       soundly into every formula of the automaton: dead atoms become
       {!Formula.fls}, trivial atoms {!Formula.tru}, and the
       hash-consing smart constructors constant-fold the consequences
       through conjunctions, disjunctions and negations.  The
       classified states are deleted.}
    {- {b Dead- and duplicate-transition pruning.}  After
       substitution, transitions whose formula folded to [fls] are
       removed (they can never fire), exact guard/formula duplicates
       are removed (redundant under the engine's left-biased
       disjunction), and states with identical outgoing behaviour —
       same bottom flag, same scan shape, same guarded formulas modulo
       their own self-references — are merged onto one representative,
       to a fixpoint.  Unreachable states are dropped last.}
    {- {b Jump sets.}  Every surviving scanning state gets the array
       of concrete tags that can fire its match transition, filtered
       to tags that occur in the document ({!Automaton.set_jump_set}).
       Their presence licenses the engine to drive the scan with
       [Tag_index] jumps over exactly those tags — including
       multi-tag guards like [*] and sibling (non-recursive) scans —
       instead of a child-by-child walk.}}

    The pass never changes observable results: optimized and
    unoptimized automata are byte-identical on count, select and
    serialize (enforced by the differential harness in
    [test/test_auto.ml]).  What it changes is the work: the
    visited-node ledger in [EXPERIMENTS.md] tracks the reduction per
    XMark query. *)

val run : Automaton.t -> unit
(** Optimize the automaton in place and record an
    {!Automaton.opt_stats} on it.  Idempotent: a second call on an
    already-optimized automaton is a no-op.  The start state is never
    substituted, merged away or dropped. *)

val stats : Automaton.t -> Automaton.opt_stats option
(** The recorded statistics, [None] for unoptimized automata. *)

val counters : unit -> (string * int) list
(** Process-wide tallies since start-up, for the service layer's
    [STATS] report: [opt_automata] (automata optimized),
    [opt_states_removed] and [opt_transitions_removed] (total
    reduction achieved). *)

open Sxsi_xml
open Sxsi_xpath.Ast

exception Unsupported of string

module F = Formula
module A = Automaton

(* Guard for a node test, per axis context; [None] = cannot match any
   node of this document (unknown tag). *)
let element_guard doc = function
  | Star -> Some F.Elements
  | Name n -> Option.map (fun t -> F.Tag t) (Document.tag_id doc n)
  | Text -> Some (F.Tag Document.text_tag)
  | Node -> Some F.Node_kind

let attribute_guard doc = function
  | Star | Node -> Some F.Attributes
  | Name n -> Option.map (fun t -> F.Tag t) (Document.attribute_tag_id doc n)
  | Text -> None

(* Concrete tags matching a guard in this document. *)
let tags_of_guard doc = function
  | F.Tag t -> [ t ]
  | F.Elements ->
    List.filter
      (Document.is_element_tag doc)
      (List.init (Document.tag_count doc) (fun i -> i))
  | F.Attributes ->
    List.filter
      (Document.is_attribute_tag doc)
      (List.init (Document.tag_count doc) (fun i -> i))
  | F.Node_kind ->
    List.filter
      (fun t -> Document.is_element_tag doc t || t = Document.text_tag)
      (List.init (Document.tag_count doc) (fun i -> i))
  | F.Any -> List.init (Document.tag_count doc) (fun i -> i)

(* Default for [?optimize], read once: the CI matrix (and any
   debugging session) flips the whole suite with SXSI_OPTIMIZE=off
   without threading a flag through every entry point. *)
let optimize_default =
  lazy
    (match Sys.getenv_opt "SXSI_OPTIMIZE" with
    | Some ("0" | "off" | "false" | "no") -> false
    | Some _ | None -> true)

let compile ?optimize doc path =
  let a = A.create doc ~start:(A.fresh_state ()) in
  let pred_cache : (A.pred_descr, int) Hashtbl.t = Hashtbl.create 8 in
  let intern_pred d =
    match Hashtbl.find_opt pred_cache d with
    | Some i -> i
    | None ->
      let i = A.add_pred a d in
      Hashtbl.add pred_cache d i;
      i
  in
  (* [marking] distinguishes the top-level (answer-collecting) path,
     whose scans accept with zero matches, from predicate paths, whose
     scans must find a match. *)
  let rec formula_of_steps ?(top = false) steps ~marking ~final =
    match steps with
    | [] -> final ()
    (* //@x at the very top of an absolute query: the root carries no
       attributes, so "attributes of any descendant" is exactly "every
       @x-tagged node" — one collectible recursive scan (O(1) counting,
       direct jumps) instead of scanning every node *)
    | { axis = Descendant; test = Node; preds = [] }
      :: ({ axis = Attribute; _ } as astep)
      :: rest
      when top ->
      launch ~marking ~recurse:true ~move:F.down1
        (attribute_guard doc astep.test)
        astep.preds rest ~final
    | step :: rest -> begin
      match step.axis with
      | Self -> begin
        match element_guard doc step.test with
        | None -> if marking then F.tru else F.fls
        | Some g ->
          F.conj_list
            [
              F.is_label g;
              preds_formula step.preds;
              formula_of_steps rest ~marking ~final;
            ]
      end
      | Child ->
        launch ~marking ~recurse:false ~move:F.down1
          (element_guard doc step.test)
          step.preds rest ~final
      | Descendant ->
        launch ~marking ~recurse:true ~move:F.down1
          (element_guard doc step.test)
          step.preds rest ~final
      | Following_sibling ->
        launch ~marking ~recurse:false ~move:F.down2
          (element_guard doc step.test)
          step.preds rest ~final
      (* (Attribute handled below) *)
      | Attribute -> begin
        match attribute_guard doc step.test with
        | None -> if marking then F.tru else F.fls
        | Some ag ->
          (* context/child::@/child::attr — the model encoding of §2 *)
          let inner () =
            launch ~marking ~recurse:false ~move:F.down1 (Some ag) step.preds
              rest ~final
          in
          launch_with_match ~marking ~recurse:false ~move:F.down1
            (F.Tag Document.attlist_tag) inner
      end
    end
  (* A scanning state for one step: [guard] labels trigger the match
     formula; every label continues the scan (down2, and also down1
     when recursive).  Marking scans are bottom states.

     Marks must be produced at most once per node (so counters and O(1)
     concatenation are sound, §5.5.3).  Two rules guarantee it together
     with the engine's left-biased disjunction: transitions are ordered
     match-first, and when the remainder of the path starts with a
     descendant step, a successful match does not descend again — every
     answer below is already covered by the remainder launched at the
     match ([drop_down1]). *)
  and launch ~marking ~recurse ~move guard preds rest ~final =
    match guard with
    | None -> if marking then F.tru else F.fls
    | Some guard ->
      let match_phi () =
        F.conj (preds_formula preds) (formula_of_steps rest ~marking ~final)
      in
      let rec first_effective = function
        | { axis = Self; _ } :: tl -> first_effective tl
        | { axis; _ } :: _ -> Some axis
        | [] -> None
      in
      let drop_down1 = marking && recurse && first_effective rest = Some Descendant in
      launch_with_match ~marking ~recurse ~move ~drop_down1 guard match_phi
        ~collect:(marking && preds = [] && rest = [])
  and launch_with_match ?(collect = false) ?(drop_down1 = false) ~marking ~recurse
      ~move guard match_phi =
    let q = A.fresh_state () in
    (* a marking scan must keep collecting in both directions (it
       accepts vacuously at Nil); an existence scan succeeds if a match
       is found below OR to the right *)
    let cont =
      if marking then F.conj (if recurse then F.down1 q else F.tru) (F.down2 q)
      else F.disj (if recurse then F.down1 q else F.fls) (F.down2 q)
    in
    let cont_on_match =
      F.conj (if recurse && not drop_down1 then F.down1 q else F.tru) (F.down2 q)
    in
    let mp = match_phi () in
    if marking then begin
      A.add_transition a q guard (F.conj mp cont_on_match);
      A.add_transition a q F.Any cont;
      A.set_bottom a q
    end
    else begin
      (* existence: stop at the first success, keep scanning otherwise *)
      A.add_transition a q guard mp;
      A.add_transition a q F.Any cont
    end;
    A.set_scan_info a q
      {
        A.scan_guard = guard;
        scan_recursive = recurse;
        scan_collect = collect && mp == F.mark;
        scan_match = mp;
        scan_marking = marking;
        scan_drop = drop_down1;
        scan_tags = tags_of_guard doc guard;
      };
    move q
  and preds_formula preds = F.conj_list (List.map pred_formula preds)
  and pred_formula = function
    | And (p1, p2) -> F.conj (pred_formula p1) (pred_formula p2)
    | Or (p1, p2) -> F.disj (pred_formula p1) (pred_formula p2)
    | Not p -> F.neg (pred_formula p)
    | Exists p ->
      if p.absolute then raise (Unsupported "absolute path inside a predicate");
      formula_of_steps p.steps ~marking:false ~final:(fun () -> F.tru)
    | Value (p, op, lit) ->
      if p.absolute then raise (Unsupported "absolute path inside a predicate");
      let idx = intern_pred (A.Text_pred (op, lit)) in
      formula_of_steps p.steps ~marking:false ~final:(fun () -> F.pred idx)
    | Fun (name, p, arg) ->
      if p.absolute then raise (Unsupported "absolute path inside a predicate");
      let idx = intern_pred (A.Custom_pred (name, arg)) in
      formula_of_steps p.steps ~marking:false ~final:(fun () -> F.pred idx)
  in
  let phi =
    formula_of_steps ~top:true path.steps ~marking:true ~final:(fun () -> F.mark)
  in
  A.add_transition a a.A.start (F.Tag Document.root_tag) phi;
  A.set_bottom a a.A.start;
  (* Can a node be marked through two overlapping scans?  Yes when a
     following-sibling scan is launched from several sibling anchors,
     or when a recursive (descendant) scan is launched from two nested
     anchors.  Anchor nesting is tracked along the step chain; the
     drop-down1 rule prevents it within one scan, so it can only creep
     in when the remainder is not descendant-led and the step's own
     matches can nest in this document. *)
  let self_nest test =
    match test with
    | Star | Node -> true
    | Text -> false
    | Name n -> begin
      match Document.tag_id doc n with
      | Some t -> Sxsi_tree.Tag_rel.mem (Document.rel doc) Sxsi_tree.Tag_rel.Descendant t t
      | None -> false
    end
  in
  let rec first_effective = function
    | { axis = Self; _ } :: tl -> first_effective tl
    | { axis; _ } :: _ -> Some axis
    | [] -> None
  in
  let rec dup nested = function
    | [] -> false
    | step :: rest -> begin
      match step.axis with
      | Following_sibling -> true
      | Descendant ->
        nested
        ||
        let dropped = first_effective rest = Some Descendant in
        dup (nested || ((not dropped) && self_nest step.test)) rest
      | Child | Attribute | Self -> dup nested rest
    end
  in
  a.A.needs_dedup <- dup false path.steps;
  let optimize =
    match optimize with Some b -> b | None -> Lazy.force optimize_default
  in
  if optimize then Optimize.run a;
  a

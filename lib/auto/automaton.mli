(** Marking alternating tree automata over the first-child/next-sibling
    binary view of the document tree (Definition 5.1 of the paper).

    States are globally unique integers (so formulas and state sets can
    be hash-consed across automata).  Each state carries a list of
    guarded transitions; several may match one label, and their
    formulas are combined disjunctively (the non-deterministic runs of
    §5.2). *)

type state = int

type pred_descr =
  | Text_pred of Sxsi_xpath.Ast.value_op * string
      (** value test on the current node's string-value *)
  | Custom_pred of string * string  (** name, argument *)

type transition = {
  guard : Formula.guard;
  phi : Formula.t;
}

(** How a state scans its region — used by the engine to decide jumps
    (§5.4.1) and constant-time subtree collection (§5.5.3-4). *)
type scan_info = {
  scan_guard : Formula.guard;   (* labels that trigger the match transition *)
  scan_recursive : bool;        (* moves both down1 and down2 *)
  scan_collect : bool;          (* match formula is exactly mark: the state
                                   only accumulates matches *)
  scan_match : Formula.t;       (* the match formula alone (no continuation) *)
  scan_marking : bool;          (* top-level scan: accepts with zero matches *)
  scan_drop : bool;             (* a successful match does not rescan its
                                   subtree (descendant-led remainder) *)
  scan_tags : int list;         (* concrete tags matching the guard in
                                   this document *)
}

(** What the {!Optimize} pass did to an automaton: state and
    transition counts on each side of the pass, how many states were
    merged as behaviourally identical, and the size of the jump-set
    table it attached.  Recorded on the automaton itself ({!field-t.opt})
    so the engine can publish it in traces and the flight recorder. *)
type opt_stats = {
  opt_states_before : int;
  opt_states_after : int;
  opt_trans_before : int;
  opt_trans_after : int;
  opt_merged_states : int;   (** states folded into an identical sibling *)
  opt_jump_states : int;     (** states that received a jump set *)
  opt_jump_tags : int;       (** total tags across all jump sets *)
}

type t = {
  doc : Sxsi_xml.Document.t;
  start : state;
  mutable states : state list;            (* all states of this automaton *)
  trans : (state, transition list) Hashtbl.t;
  bottom : (state, unit) Hashtbl.t;       (* states accepting at Nil *)
  mutable preds : pred_descr array;
  scan : (state, scan_info) Hashtbl.t;
  mutable needs_dedup : bool;
  (* marks may be produced twice for the same node (overlapping
     following-sibling scans, recursive scans from nested anchors);
     the engine then deduplicates materialized results *)
  jumps : (state, int array) Hashtbl.t;
  (* per-state jump sets: the tags that can fire this state's match
     transition, precomputed by the optimizer.  Only optimized
     automata carry entries, so their presence also tells the engine
     the optimizer's invariants hold *)
  mutable opt : opt_stats option;         (* set by the optimizer *)
}

val fresh_state : unit -> state
(** Globally unique. *)

val create : Sxsi_xml.Document.t -> start:state -> t
val add_transition : t -> state -> Formula.guard -> Formula.t -> unit
val set_bottom : t -> state -> unit
val is_bottom : t -> state -> bool
val set_scan_info : t -> state -> scan_info -> unit
val scan_info : t -> state -> scan_info option

val set_jump_set : t -> state -> int array -> unit
(** Attach a jump set: the concrete tags (occurring in this document)
    that can fire the state's match transition.  Written by the
    {!Optimize} pass only. *)

val jump_set : t -> state -> int array option
(** The state's jump set, when the optimizer attached one.  The engine
    takes its presence as permission to drive the state's scan by
    [Tag_index] jumps over exactly these tags instead of a
    child-by-child walk. *)

val add_pred : t -> pred_descr -> int
(** Register a predicate, returning its index for {!Formula.pred}. *)

val transitions : t -> state -> transition list
val guard_matches : t -> Formula.guard -> int -> bool
(** Does a tag identifier satisfy a guard in this document? *)

val matching_phi : t -> state -> int -> Formula.t
(** Disjunction of the formulas of all transitions of a state matching
    a tag ([Formula.fls] when none match). *)

val to_string : t -> string

(** Syntax-directed translation from Core+ to marking tree automata
    (§5.2).  The produced automaton is run from the document root in
    its start state; marked nodes are the query answers.

    The translation is compositional: each [child::]/[descendant::]/
    [following-sibling::] step becomes a scanning state over the
    first-child/next-sibling encoding; [self::] steps become label
    tests inside formulas; the [attribute::] axis is rewritten through
    the ["@"]-list encoding of the model; predicates become
    sub-automata (existence scans) or built-in predicate atoms. *)

exception Unsupported of string
(** Raised on constructs the automaton engine does not evaluate
    (currently: absolute paths inside predicates). *)

val compile : ?optimize:bool -> Sxsi_xml.Document.t -> Sxsi_xpath.Ast.path -> Automaton.t
(** Translate, then (by default) run the whole-query {!Optimize} pass
    over the produced automaton.  [~optimize:false] returns the raw
    translation — the differential-testing baseline.  When the
    argument is omitted, the [SXSI_OPTIMIZE] environment variable
    decides ([0]/[off]/[false]/[no] disable it; anything else, or an
    unset variable, leaves the pass on), so a whole test run can be
    flipped without threading flags. *)

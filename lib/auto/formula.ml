type state = int

type guard =
  | Any
  | Tag of int
  | Elements
  | Attributes
  | Node_kind

type t = {
  id : int;
  node : node;
  down1 : state list;
  down2 : state list;
  has_mark : bool;
}

and node =
  | True
  | False
  | Mark
  | Down1 of state
  | Down2 of state
  | Is_label of guard
  | Pred of int
  | And of t * t
  | Or of t * t
  | Not of t

(* Hash-consing: key on the shape with child ids. *)
type key =
  | KTrue
  | KFalse
  | KMark
  | KDown1 of state
  | KDown2 of state
  | KLabel of guard
  | KPred of int
  | KAnd of int * int
  | KOr of int * int
  | KNot of int

(* The hash-consing table is process-global and compilation can happen
   lazily at query time, so concurrent domains (the serve front end)
   must serialize access to it. *)
let table : (key, t) Hashtbl.t = Hashtbl.create 256
let counter = ref 0
let lock = Mutex.create ()
let lock_site = Sxsi_obs.Contend.site "formula.cons"

let union_sorted a b =
  let rec go a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
      if x < y then x :: go xs b
      else if x > y then y :: go a ys
      else x :: go xs ys
  in
  go a b

let key_of = function
  | True -> KTrue
  | False -> KFalse
  | Mark -> KMark
  | Down1 q -> KDown1 q
  | Down2 q -> KDown2 q
  | Is_label g -> KLabel g
  | Pred i -> KPred i
  | And (a, b) -> KAnd (a.id, b.id)
  | Or (a, b) -> KOr (a.id, b.id)
  | Not a -> KNot a.id

let cons node =
  let key = key_of node in
  Sxsi_obs.Contend.with_lock lock_site lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some f -> f
      | None ->
        let down1, down2, has_mark =
          match node with
          | True | False | Is_label _ | Pred _ -> ([], [], false)
          | Mark -> ([], [], true)
          | Down1 q -> ([ q ], [], false)
          | Down2 q -> ([], [ q ], false)
          | And (a, b) | Or (a, b) ->
            ( union_sorted a.down1 b.down1,
              union_sorted a.down2 b.down2,
              a.has_mark || b.has_mark )
          | Not a -> (a.down1, a.down2, a.has_mark)
        in
        let f = { id = !counter; node; down1; down2; has_mark } in
        incr counter;
        Hashtbl.add table key f;
        f)

let tru = cons True
let fls = cons False
let mark = cons Mark
let down1 q = cons (Down1 q)
let down2 q = cons (Down2 q)
let is_label g = cons (Is_label g)
let pred i = cons (Pred i)

let conj a b =
  if a == fls || b == fls then fls
  else if a == tru then b
  else if b == tru then a
  else if a == b then a
  else cons (And (a, b))

let disj a b =
  if a == tru || b == tru then tru
  else if a == fls then b
  else if b == fls then a
  else if a == b then a
  else cons (Or (a, b))

let neg a = if a == tru then fls else if a == fls then tru else cons (Not a)

let conj_list l = List.fold_left conj tru l

let guard_to_string = function
  | Any -> "L"
  | Tag t -> Printf.sprintf "tag(%d)" t
  | Elements -> "*"
  | Attributes -> "@*"
  | Node_kind -> "node()"

let rec to_string f =
  match f.node with
  | True -> "T"
  | False -> "F"
  | Mark -> "mark"
  | Down1 q -> Printf.sprintf "d1 q%d" q
  | Down2 q -> Printf.sprintf "d2 q%d" q
  | Is_label g -> Printf.sprintf "label=%s" (guard_to_string g)
  | Pred i -> Printf.sprintf "p%d" i
  | And (a, b) -> Printf.sprintf "(%s & %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "~%s" (to_string a)

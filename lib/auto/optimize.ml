open Sxsi_xml
module F = Formula
module A = Automaton

(* Process-wide tallies, read by the service layer's STATS verb. *)
let states_removed_total = Atomic.make 0
let transitions_removed_total = Atomic.make 0
let automata_total = Atomic.make 0

let counters () =
  [
    ("opt_automata", Atomic.get automata_total);
    ("opt_states_removed", Atomic.get states_removed_total);
    ("opt_transitions_removed", Atomic.get transitions_removed_total);
  ]

(* Rewrite a formula bottom-up through the smart constructors, mapping
   Down1/Down2 atoms through [lookup] ([`D1]/[`D2] tells the atom's
   direction).  Reconstruction through {!Formula.conj}/[disj]/[neg]
   constant-folds as it goes, so substituting [tru]/[fls] for an atom
   collapses everything the constant decides.  Memoized per formula id:
   formulas are hash-consed DAGs and sharing must not be re-expanded. *)
let rewrite_with lookup =
  let cache : (int, F.t) Hashtbl.t = Hashtbl.create 32 in
  let rec rw (f : F.t) =
    match Hashtbl.find_opt cache f.F.id with
    | Some g -> g
    | None ->
      let g =
        match f.F.node with
        | F.True | F.False | F.Mark | F.Is_label _ | F.Pred _ -> f
        | F.Down1 q -> ( match lookup `D1 q with Some g -> g | None -> f)
        | F.Down2 q -> ( match lookup `D2 q with Some g -> g | None -> f)
        | F.And (x, y) -> F.conj (rw x) (rw y)
        | F.Or (x, y) -> F.disj (rw x) (rw y)
        | F.Not x -> F.neg (rw x)
      in
      Hashtbl.add cache f.F.id g;
      g
  in
  rw

(* The marker state used to normalize a state's self-references when
   comparing outgoing behaviour: never allocated by [fresh_state]. *)
let self_marker = -1

let run (a : A.t) =
  match a.A.opt with
  | Some _ -> ()   (* already optimized *)
  | None ->
    let doc = a.A.doc in
    let ti = Document.tree doc in
    let states () = List.sort_uniq compare a.A.states in
    let trans_count () =
      List.fold_left (fun acc q -> acc + List.length (A.transitions a q)) 0 (states ())
    in
    let states_before = List.length (states ()) in
    let trans_before = trans_count () in
    (* ---------------------------------------------------------------- *)
    (* 1. Relevant-state analysis: a joint fixpoint of two semantic     *)
    (* facts, each sound to substitute into every formula.              *)
    (*   dead q: q accepts at no node and not at Nil — its atoms are    *)
    (*     [fls].  Least fixpoint of the complement ("alive"): bottom   *)
    (*     states are alive, and a state is alive once some transition  *)
    (*     formula survives the substitution of the currently-presumed  *)
    (*     dead set.                                                    *)
    (*   triv q: q accepts at every node and at Nil, producing no       *)
    (*     marks — its atoms are [tru].  Greatest fixpoint: assume all  *)
    (*     bottom states trivial, then evict any state with a           *)
    (*     transition that does not fold to a constant, or without an   *)
    (*     Any-guarded transition folding to [tru] (some label must     *)
    (*     always accept, mark-free, under the left-biased evaluation). *)
    (* The two interact (a pruned match can make a scan trivial), so    *)
    (* alternate the passes until neither set changes.                  *)
    (* ---------------------------------------------------------------- *)
    let dead : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let triv : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let bool_subst extra_dead _dir q =
      if q <> a.A.start && (Hashtbl.mem dead q || extra_dead q) then Some F.fls
      else if q <> a.A.start && Hashtbl.mem triv q then Some F.tru
      else None
    in
    let dead_pass () =
      let alive : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter (fun q -> if A.is_bottom a q then Hashtbl.replace alive q ()) (states ());
      let changed = ref true in
      while !changed do
        changed := false;
        let rw = rewrite_with (bool_subst (fun q -> not (Hashtbl.mem alive q))) in
        List.iter
          (fun q ->
            if not (Hashtbl.mem alive q)
               && List.exists (fun tr -> rw tr.A.phi != F.fls) (A.transitions a q)
            then begin
              Hashtbl.replace alive q ();
              changed := true
            end)
          (states ())
      done;
      let next = List.filter (fun q -> not (Hashtbl.mem alive q)) (states ()) in
      let grew = List.exists (fun q -> not (Hashtbl.mem dead q)) next in
      let shrank = Hashtbl.length dead <> List.length next in
      Hashtbl.reset dead;
      List.iter (fun q -> Hashtbl.replace dead q ()) next;
      grew || shrank
    in
    let triv_pass () =
      let before = Hashtbl.length triv in
      Hashtbl.reset triv;
      List.iter
        (fun q ->
          if q <> a.A.start && A.is_bottom a q && not (Hashtbl.mem dead q) then
            Hashtbl.replace triv q ())
        (states ());
      let changed = ref true in
      while !changed do
        changed := false;
        let rw = rewrite_with (bool_subst (fun _ -> false)) in
        Hashtbl.iter
          (fun q () ->
            let trs = A.transitions a q in
            let constant =
              List.for_all (fun tr -> let g = rw tr.A.phi in g == F.tru || g == F.fls) trs
            in
            let always =
              List.exists (fun tr -> tr.A.guard = F.Any && rw tr.A.phi == F.tru) trs
            in
            if not (constant && always) then begin
              Hashtbl.remove triv q;
              changed := true
            end)
          (Hashtbl.copy triv)
      done;
      Hashtbl.length triv <> before
    in
    let joint_changed = ref true in
    while !joint_changed do
      let d = dead_pass () in
      let t = triv_pass () in
      joint_changed := d || t
    done;
    (* ---------------------------------------------------------------- *)
    (* 2. Substitute the facts everywhere, then prune: transitions      *)
    (* whose formula folded to [fls] can never fire; a second           *)
    (* transition with the same guard and formula is redundant under    *)
    (* the left-biased disjunction.                                     *)
    (* ---------------------------------------------------------------- *)
    let removed_states = Hashtbl.create 8 in
    Hashtbl.iter (fun q () -> Hashtbl.replace removed_states q ()) dead;
    Hashtbl.iter (fun q () -> Hashtbl.replace removed_states q ()) triv;
    let rw = rewrite_with (bool_subst (fun _ -> false)) in
    let rewrite_state q =
      let trs =
        List.filter_map
          (fun tr ->
            let phi = rw tr.A.phi in
            if phi == F.fls then None else Some { tr with A.phi })
          (A.transitions a q)
      in
      let seen = Hashtbl.create 4 in
      let trs =
        List.filter
          (fun tr ->
            let key = (tr.A.guard, tr.A.phi.F.id) in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.replace seen key ();
              true
            end)
          trs
      in
      Hashtbl.replace a.A.trans q trs;
      match A.scan_info a q with
      | None -> ()
      | Some si ->
        let mp = rw si.A.scan_match in
        A.set_scan_info a q
          {
            si with
            A.scan_match = mp;
            scan_collect =
              si.A.scan_marking && (not si.A.scan_drop) && mp == F.mark;
          }
    in
    let drop_state q =
      a.A.states <- List.filter (fun q' -> q' <> q) a.A.states;
      Hashtbl.remove a.A.trans q;
      Hashtbl.remove a.A.bottom q;
      Hashtbl.remove a.A.scan q;
      Hashtbl.remove a.A.jumps q
    in
    Hashtbl.iter (fun q () -> drop_state q) removed_states;
    List.iter rewrite_state (states ());
    (* ---------------------------------------------------------------- *)
    (* 3. Merge states with identical outgoing behaviour: same bottom   *)
    (* flag, same scan shape, same guarded formulas once each state's   *)
    (* self-references are normalized to a marker.  Every survivor's    *)
    (* formulas are renamed onto the representative; renaming can make  *)
    (* two more states identical, so iterate.                           *)
    (* ---------------------------------------------------------------- *)
    let merged = ref 0 in
    let merge_changed = ref true in
    while !merge_changed do
      merge_changed := false;
      let signature q =
        let norm =
          rewrite_with (fun dir q' ->
              if q' = q then
                Some (match dir with `D1 -> F.down1 self_marker | `D2 -> F.down2 self_marker)
              else None)
        in
        let scan_sig =
          match A.scan_info a q with
          | None -> None
          | Some si ->
            Some
              ( si.A.scan_guard,
                si.A.scan_recursive,
                si.A.scan_marking,
                si.A.scan_drop,
                (norm si.A.scan_match).F.id )
        in
        ( A.is_bottom a q,
          scan_sig,
          List.map (fun tr -> (tr.A.guard, (norm tr.A.phi).F.id)) (A.transitions a q) )
      in
      let groups = Hashtbl.create 8 in
      List.iter
        (fun q ->
          let s = signature q in
          let l = match Hashtbl.find_opt groups s with Some l -> l | None -> [] in
          Hashtbl.replace groups s (q :: l))
        (states ());
      let rename = Hashtbl.create 4 in
      Hashtbl.iter
        (fun _ qs ->
          match List.sort compare qs with
          | rep :: (_ :: _ as rest) ->
            (* the start state is the automaton's entry point: created
               first, so it is always its group's representative *)
            List.iter (fun q -> Hashtbl.replace rename q rep) rest
          | _ -> ())
        groups;
      if Hashtbl.length rename > 0 then begin
        merge_changed := true;
        merged := !merged + Hashtbl.length rename;
        let rn =
          rewrite_with (fun dir q ->
              match Hashtbl.find_opt rename q with
              | None -> None
              | Some rep ->
                Some (match dir with `D1 -> F.down1 rep | `D2 -> F.down2 rep))
        in
        Hashtbl.iter (fun q _ -> drop_state q) rename;
        List.iter
          (fun q ->
            Hashtbl.replace a.A.trans q
              (List.map (fun tr -> { tr with A.phi = rn tr.A.phi }) (A.transitions a q));
            match A.scan_info a q with
            | None -> ()
            | Some si -> A.set_scan_info a q { si with A.scan_match = rn si.A.scan_match })
          (states ())
      end
    done;
    (* ---------------------------------------------------------------- *)
    (* 4. Reachability from the start state through the surviving       *)
    (* formulas' atom sets; anything unreached can never be simulated.  *)
    (* ---------------------------------------------------------------- *)
    let reach = Hashtbl.create 8 in
    let rec visit q =
      if not (Hashtbl.mem reach q) then begin
        Hashtbl.replace reach q ();
        List.iter
          (fun tr ->
            List.iter visit tr.A.phi.F.down1;
            List.iter visit tr.A.phi.F.down2)
          (A.transitions a q)
      end
    in
    visit a.A.start;
    List.iter (fun q -> if not (Hashtbl.mem reach q) then drop_state q) (states ());
    (* ---------------------------------------------------------------- *)
    (* 5. Jump sets: for every surviving scanning state, the concrete   *)
    (* tags that can fire its match transition, restricted to tags      *)
    (* that occur in this document at all.  Their presence licenses     *)
    (* the engine to drive the scan by tag jumps.                       *)
    (* ---------------------------------------------------------------- *)
    let jump_states = ref 0 and jump_tags = ref 0 in
    List.iter
      (fun q ->
        match A.scan_info a q with
        | None -> ()
        | Some si ->
          let tags =
            List.filter (fun t -> Sxsi_tree.Tree_backend.count ti t > 0) si.A.scan_tags
          in
          incr jump_states;
          jump_tags := !jump_tags + List.length tags;
          A.set_jump_set a q (Array.of_list tags))
      (states ());
    let states_after = List.length (states ()) in
    let trans_after = trans_count () in
    Atomic.incr automata_total;
    ignore (Atomic.fetch_and_add states_removed_total (states_before - states_after));
    ignore (Atomic.fetch_and_add transitions_removed_total (trans_before - trans_after));
    a.A.opt <-
      Some
        {
          A.opt_states_before = states_before;
          opt_states_after = states_after;
          opt_trans_before = trans_before;
          opt_trans_after = trans_after;
          opt_merged_states = !merged;
          opt_jump_states = !jump_states;
          opt_jump_tags = !jump_tags;
        }

let stats (a : A.t) = a.A.opt

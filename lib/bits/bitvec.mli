(** Static bit vectors with constant-time [rank] and sampled-directory
    [select], the base layer of every succinct structure in SXSI.

    The layout is broadword throughout: interleaved superblock rank
    directories (absolute count + packed per-word cumulative counts,
    one 8-word superblock per cache line of payload), a sampled select
    directory narrowing the superblock search, and branch-free in-word
    popcount/select kernels ({!Popcnt}).

    Positions are 0-based. [rank1 t i] counts set bits in the half-open
    prefix [\[0, i)]; [select1 t j] is the position of the [j]-th set
    bit (0-based), so [rank1 t (select1 t j) = j]. *)

type t

module Builder : sig
  type bv = t
  type t

  val create : ?hint:int -> unit -> t
  val push : t -> bool -> unit
  val push_run : t -> bool -> int -> unit

  val length : t -> int

  val finish : t -> bv
  (** Freeze into a static bitvector with rank/select support. *)
end

val of_fun : int -> (int -> bool) -> t
(** [of_fun n f] builds an [n]-bit vector whose bit [i] is [f i]. *)

val length : t -> int
val get : t -> int -> bool
val count : t -> int
(** Total number of set bits. *)

val rank1 : t -> int -> int
val rank0 : t -> int -> int
val select1 : t -> int -> int
val select0 : t -> int -> int

val next1 : t -> int -> int
(** [next1 t i] is the smallest position [p >= i] with bit [p] set, or
    [-1] if none. *)

val to_bytes : t -> bytes
(** Portable serialized form: magic, bit length and payload words only
    (little-endian).  Directory layout is never persisted, so stored
    bytes survive kernel/layout changes unchanged. *)

val of_bytes : bytes -> t
(** Decode {!to_bytes} output (from this or any previous directory
    layout) and rebuild the rank/select directories.  Validates the
    header, the zero padding of the final word, and the total
    popcount.
    @raise Invalid_argument on malformed input. *)

val space_bits : t -> int
(** Total space of the structure, in bits (payload plus directories). *)

(* Bits are packed 63 per OCaml int.  Rank and select run over a
   two-level directory sized to cache lines:

   - Superblocks of 8 words (504 bits).  The directory interleaves,
     per superblock, the absolute number of ones before it and the
     seven in-superblock cumulative word counts packed into one int
     (7 lanes x 9 bits; counts within a superblock are <= 504 < 512).
     The two ints of a superblock are adjacent in [dir], so a rank is
     one directory cache line plus one payload word: absolute count +
     packed lane + masked popcount, no loop, no branch.

   - A sampled select directory per bit value: [samples1.(k)] is the
     superblock holding the [k * select_sample]-th one, so select
     binary-searches only the superblock range between two consecutive
     samples, then pins the word with a branchless lane comparison and
     finishes inside the word with broadword select.

   Directories are derived data: the portable serialized form
   ([to_bytes]/[of_bytes]) carries only the length and the payload
   words, and loading rebuilds the directories — a layout change never
   invalidates stored bytes. *)

let word_bits = 63
let words_per_super = 8
let super_bits = word_bits * words_per_super (* 504 *)

(* Ones (zeros) between consecutive select samples.  Small enough that
   test-sized vectors exercise the sampled path, large enough that the
   directory stays negligible (one int per 512 ones). *)
let select_sample = 512

type t = {
  len : int;                (* length in bits *)
  words : int array;
  dir : int array;          (* 2 ints per superblock: absolute ones
                               before it; 7x9-bit packed cumulative
                               word counts (lane k = ones in words
                               0..k of the superblock) *)
  samples1 : int array;     (* superblock of the (k*select_sample)-th one *)
  samples0 : int array;     (* ... and zero (zeros within [0, len) only) *)
  ones : int;
}

let nsupers_of nwords = max 1 ((nwords + words_per_super - 1) / words_per_super)

(* Rebuild every directory from the payload.  [len] and [words] fully
   determine the structure. *)
let build len words =
  let nwords = Array.length words in
  let nsupers = nsupers_of nwords in
  let dir = Array.make ((2 * nsupers) + 2) 0 in
  let acc = ref 0 in
  for s = 0 to nsupers - 1 do
    dir.(2 * s) <- !acc;
    let base = s * words_per_super in
    let packed = ref 0 and sub = ref 0 in
    for i = 0 to words_per_super - 1 do
      let w = base + i in
      let c = if w < nwords then Popcnt.popcount (Array.unsafe_get words w) else 0 in
      sub := !sub + c;
      if i < words_per_super - 1 then packed := !packed lor (!sub lsl (9 * i))
    done;
    dir.((2 * s) + 1) <- !packed;
    acc := !acc + !sub
  done;
  dir.(2 * nsupers) <- !acc;
  let ones = !acc in
  let zeros = len - ones in
  (* [before s] = items before superblock s, monotone in s; walk the
     superblocks once per directory.  Zeros are counted within
     [0, len) only: the padding tail of the last word must never be
     selectable (it is physical zero bits beyond the vector). *)
  let fill total before =
    let samples = Array.make ((total / select_sample) + 2) 0 in
    let s = ref 0 in
    for k = 0 to Array.length samples - 1 do
      let target = k * select_sample in
      if target >= total then samples.(k) <- nsupers - 1
      else begin
        while before (!s + 1) <= target do
          incr s
        done;
        samples.(k) <- !s
      end
    done;
    samples
  in
  let ones_before s = dir.(2 * s) in
  let zeros_before s = min (s * super_bits) len - dir.(2 * s) in
  {
    len;
    words;
    dir;
    samples1 = fill ones ones_before;
    samples0 = fill zeros zeros_before;
    ones;
  }

module Builder = struct
  type bv = t

  type t = {
    mutable data : int array;
    mutable nbits : int;
  }

  let create ?(hint = 64) () =
    { data = Array.make (max 1 ((hint + word_bits - 1) / word_bits)) 0; nbits = 0 }

  let ensure b nwords =
    if nwords > Array.length b.data then begin
      let data = Array.make (max nwords (2 * Array.length b.data)) 0 in
      Array.blit b.data 0 data 0 (Array.length b.data);
      b.data <- data
    end

  let push b bit =
    let w = b.nbits / word_bits and o = b.nbits mod word_bits in
    ensure b (w + 1);
    if bit then b.data.(w) <- b.data.(w) lor (1 lsl o);
    b.nbits <- b.nbits + 1

  let push_run b bit k =
    (* Simple loop: runs in our workloads are short except for zeros,
       which only need the length bump. *)
    if not bit then begin
      ensure b (((b.nbits + k) / word_bits) + 1);
      b.nbits <- b.nbits + k
    end
    else
      for _ = 1 to k do
        push b bit
      done

  let length b = b.nbits

  let finish b : bv =
    let nwords = (b.nbits + word_bits - 1) / word_bits in
    build b.nbits (Array.sub b.data 0 (max 1 nwords))
end

let of_fun n f =
  let b = Builder.create ~hint:n () in
  for i = 0 to n - 1 do
    Builder.push b (f i)
  done;
  Builder.finish b

let length t = t.len
let count t = t.ones

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec.get";
  (Array.unsafe_get t.words (i / word_bits) lsr (i mod word_bits)) land 1 = 1

(* Ones strictly before word [w].  The lane shift maps wi = 0 to a
   63-bit shift, which is defined (Sys.int_size) and yields 0 — the
   whole lookup is branch-free. *)
let[@inline] rank_before_word t w =
  let s = w lsr 3 and wi = w land 7 in
  Array.unsafe_get t.dir (2 * s)
  + ((Array.unsafe_get t.dir ((2 * s) + 1) lsr (9 * ((wi - 1) land 7))) land 511)

let rank1 t i =
  if i <= 0 then 0
  else if i >= t.len then t.ones
  else
    let w = i / word_bits and o = i mod word_bits in
    rank_before_word t w
    + Popcnt.popcount (Array.unsafe_get t.words w land ((1 lsl o) - 1))

let rank0 t i =
  let i = if i < 0 then 0 else if i > t.len then t.len else i in
  i - rank1 t i

(* Superblock search shared by both selects: last s in [lo, hi] with
   [before s <= j], where [before] is monotone and read straight from
   the directory. *)
let[@inline] search_super t j lo hi ones_dir =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) lsr 1 in
    let before =
      if ones_dir then Array.unsafe_get t.dir (2 * mid)
      else (mid * super_bits) - Array.unsafe_get t.dir (2 * mid)
    in
    if before <= j then lo := mid else hi := mid - 1
  done;
  !lo

(* 1 when [v <= j], 0 otherwise, via the sign bit (63-bit ints: bit 62). *)
let[@inline] le j v = ((v - j - 1) asr 62) land 1

let select1 t j =
  if j < 0 || j >= t.ones then invalid_arg "Bitvec.select";
  let k = j / select_sample in
  let nsupers = nsupers_of (Array.length t.words) in
  let lo = Array.unsafe_get t.samples1 k in
  let hi = min (nsupers - 1) (Array.unsafe_get t.samples1 (k + 1)) in
  let s = search_super t j lo hi true in
  let rem = j - t.dir.(2 * s) in
  let packed = t.dir.((2 * s) + 1) in
  (* word index = number of lanes whose cumulative count is <= rem
     (lanes are nondecreasing, so the indicators form a prefix) *)
  let wi =
    le rem (packed land 511)
    + le rem ((packed lsr 9) land 511)
    + le rem ((packed lsr 18) land 511)
    + le rem ((packed lsr 27) land 511)
    + le rem ((packed lsr 36) land 511)
    + le rem ((packed lsr 45) land 511)
    + le rem ((packed lsr 54) land 511)
  in
  let sub = (packed lsr (9 * ((wi - 1) land 7))) land 511 in
  let w = (s * words_per_super) + wi in
  (w * word_bits) + Popcnt.select_in_word (Array.unsafe_get t.words w) (rem - sub)

let select0 t j =
  let zeros = t.len - t.ones in
  if j < 0 || j >= zeros then invalid_arg "Bitvec.select";
  let k = j / select_sample in
  let nsupers = nsupers_of (Array.length t.words) in
  let lo = Array.unsafe_get t.samples0 k in
  let hi = min (nsupers - 1) (Array.unsafe_get t.samples0 (k + 1)) in
  let s = search_super t j lo hi false in
  let rem = j - ((s * super_bits) - t.dir.(2 * s)) in
  let packed = t.dir.((2 * s) + 1) in
  (* zero cumulative through word i of the superblock is
     63*(i+1) - ones lane; the last superblock's lanes count the
     implicit zero padding of the tail too, but [j < zeros] guarantees
     the target zero is a real position, so the prefix of qualifying
     lanes never extends past it. *)
  let wi =
    le rem (word_bits - (packed land 511))
    + le rem ((2 * word_bits) - ((packed lsr 9) land 511))
    + le rem ((3 * word_bits) - ((packed lsr 18) land 511))
    + le rem ((4 * word_bits) - ((packed lsr 27) land 511))
    + le rem ((5 * word_bits) - ((packed lsr 36) land 511))
    + le rem ((6 * word_bits) - ((packed lsr 45) land 511))
    + le rem ((7 * word_bits) - ((packed lsr 54) land 511))
  in
  let sub = (wi * word_bits) - ((packed lsr (9 * ((wi - 1) land 7))) land 511) in
  let w = (s * words_per_super) + wi in
  (w * word_bits)
  + Popcnt.select_in_word (lnot (Array.unsafe_get t.words w)) (rem - sub)

let next1 t i =
  let i = if i < 0 then 0 else i in
  if i >= t.len then -1
  else begin
    let w = i / word_bits and o = i mod word_bits in
    let masked = Array.unsafe_get t.words w lsr o in
    if masked <> 0 then i + Popcnt.select_in_word masked 0
    else begin
      (* no one left in this word (bits beyond [len] are stored as
         zeros, so the masked test is exact at the final word); jump
         via the directory *)
      let w' = w + 1 in
      let r = if w' >= Array.length t.words then t.ones else rank_before_word t w' in
      if r >= t.ones then -1 else select1 t r
    end
  end

(* ------------------------------------------------------------------ *)
(* Portable serialization: payload only, directories rebuilt on load   *)
(* ------------------------------------------------------------------ *)

(* Format "BV1": magic, 8-byte LE length in bits, 8-byte LE word
   count, then the 63-bit payload words as 8-byte LE each.  No
   directory data is stored, so files survive directory-layout
   changes unmodified. *)
let bytes_magic = "BV1\n"

let to_bytes t =
  let nwords = Array.length t.words in
  let b = Bytes.create (String.length bytes_magic + 16 + (8 * nwords)) in
  Bytes.blit_string bytes_magic 0 b 0 (String.length bytes_magic);
  Bytes.set_int64_le b 4 (Int64.of_int t.len);
  Bytes.set_int64_le b 12 (Int64.of_int nwords);
  for w = 0 to nwords - 1 do
    (* words with bit 62 set are negative OCaml ints; mask off the
       sign extension so the stored 64-bit image is the canonical
       63-bit payload *)
    Bytes.set_int64_le b
      (20 + (8 * w))
      (Int64.logand (Int64.of_int t.words.(w)) 0x7FFF_FFFF_FFFF_FFFFL)
  done;
  b

let of_bytes b =
  let fail msg = invalid_arg ("Bitvec.of_bytes: " ^ msg) in
  let mlen = String.length bytes_magic in
  if Bytes.length b < mlen + 16 then fail "truncated header";
  if Bytes.sub_string b 0 mlen <> bytes_magic then fail "bad magic";
  let len = Int64.to_int (Bytes.get_int64_le b 4) in
  let nwords = Int64.to_int (Bytes.get_int64_le b 12) in
  if len < 0 || nwords <> max 1 ((len + word_bits - 1) / word_bits) then
    fail "bad header";
  if Bytes.length b < mlen + 16 + (8 * nwords) then fail "truncated payload";
  let words =
    Array.init nwords (fun w ->
        let v64 = Bytes.get_int64_le b (20 + (8 * w)) in
        if Int64.shift_right_logical v64 63 <> 0L then fail "word out of range";
        (* Int64.to_int keeps exactly the low 63 bits; bit 62 of the
           payload lands in the OCaml sign bit, which is fine — all
           kernel arithmetic is bit-pattern based *)
        Int64.to_int v64)
  in
  (* tail bits beyond [len] must be physical zeros: rank/select and
     next1 rely on it *)
  let tail = len mod word_bits in
  if len / word_bits < nwords && tail > 0
     && words.(len / word_bits) lsr tail <> 0
  then fail "nonzero padding tail";
  let t = build len words in
  (* integrity: recount the payload (2-word unrolled) against the
     directory total *)
  if Popcnt.count_words words 0 nwords <> t.ones then fail "count mismatch";
  t

let space_bits t =
  (Array.length t.words + Array.length t.dir + Array.length t.samples1
  + Array.length t.samples0)
  * 64
  + 192

(** Broadword (SWAR) population-count and in-word select primitives for
    63-bit OCaml integers — the innermost kernels every rank/select
    directory bottoms out in.  All functions treat their argument as a
    63-bit bit pattern; values with bit 62 set (negative as OCaml ints)
    are handled. *)

val popcount : int -> int
(** [popcount x] is the number of set bits among the 63 bits of [x].
    Branchless sideways addition: no table, no memory traffic. *)

val popcount2 : int -> int -> int
(** [popcount2 x y] is [popcount x + popcount y], fused so the two
    words share one horizontal-sum multiply — the unrolled 2-word
    unit used when building rank directories. *)

val count_words : int array -> int -> int -> int
(** [count_words a lo hi] is the total popcount of [a.(lo) .. a.(hi-1)],
    processed two words per iteration via {!popcount2}. *)

val select_in_word : int -> int -> int
(** [select_in_word x j] is the 0-based position of the [j]-th set bit
    of [x] (0-based [j]), computed branch-free: byte-cumulative
    sideways addition, a broadword lane comparison to pin the byte,
    and an 8-bit table finish.  Behaviour is unspecified when
    [j >= popcount x] (no exception, result meaningless). *)

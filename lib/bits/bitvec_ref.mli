(** Snapshot of the pre-broadword rank/select kernels (table popcount,
    scanning rank, loop select), kept as the differential oracle for
    the property-test suite and the reference arm of [bench bits].
    Semantics match {!Bitvec} exactly; only the directory layout and
    per-word kernels differ.  Never used on a query path. *)

type t

val of_fun : int -> (int -> bool) -> t
val length : t -> int
val count : t -> int
val get : t -> int -> bool
val rank1 : t -> int -> int
val rank0 : t -> int -> int
val select1 : t -> int -> int
val select0 : t -> int -> int
val next1 : t -> int -> int

val popcount : int -> int
(** The old 16-bit-table popcount (per-word kernel of this layout). *)

val select_in_word : int -> int -> int
(** The old loop-based in-word select. *)

val to_bytes : t -> bytes
(** The portable payload in the same format {!Bitvec.of_bytes} reads:
    the bytes a pre-layout-change build would have persisted. *)

(** Huffman-shaped wavelet tree over byte sequences, the sequence
    representation SXSI uses for the BWT (§3.1 of the paper): plain
    bitmaps inside a Huffman-shaped tree give [H0]-compressed space and
    [O(H0)] average-time [access]/[rank]/[select]. *)

type t

val of_string : ?pool:Sxsi_par.Pool.t -> string -> t
(** [of_string ?pool s] builds the tree over the bytes of [s].  With a
    [pool] of size [> 1], sibling subtrees (which partition disjoint
    copies of the symbol stream) are built concurrently; the resulting
    structure is identical to the sequential build. *)

val length : t -> int

val access : t -> int -> char

val rank : t -> char -> int -> int
(** [rank t c i] is the number of occurrences of [c] in the half-open
    prefix [\[0, i)]. *)

val rank2 : t -> char -> int -> int -> int * int
(** [rank2 t c i j] is [(rank t c i, rank t c j)] computed in a single
    root-to-leaf descent — half the bitmap ranks of two separate
    calls.  This is the shape of every FM-index backward-search step. *)

val select : t -> char -> int -> int
(** [select t c j] is the position of the [j]-th occurrence of [c]
    (0-based), so [rank t c (select t c j) = j]. *)

val count : t -> char -> int
(** Total occurrences of [c]. *)

val space_bits : t -> int

type t = {
  m : int;
  universe : int;
  lbits : int;
  low : Intvec.t option;    (* None when lbits = 0 *)
  high : Bitvec.t;
}

let of_sorted ~universe a =
  let m = Array.length a in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= universe then invalid_arg "Sparse.of_sorted: out of universe";
      if i > 0 && a.(i - 1) >= v then invalid_arg "Sparse.of_sorted: not increasing")
    a;
  let lbits =
    if m = 0 then 0
    else begin
      let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
      max 0 (log2 (universe / m) 0)
    end
  in
  let low =
    if lbits = 0 then None
    else begin
      let iv = Intvec.make m lbits in
      let mask = (1 lsl lbits) - 1 in
      Array.iteri (fun i v -> Intvec.set iv i (v land mask)) a;
      Some iv
    end
  in
  let hlen = m + (universe lsr lbits) + 1 in
  let b = Bitvec.Builder.create ~hint:hlen () in
  let prev_bucket = ref 0 in
  Array.iter
    (fun v ->
      let bucket = v lsr lbits in
      Bitvec.Builder.push_run b false (bucket - !prev_bucket);
      Bitvec.Builder.push b true;
      prev_bucket := bucket)
    a;
  Bitvec.Builder.push_run b false (hlen - Bitvec.Builder.length b);
  { m; universe; lbits; low; high = Bitvec.Builder.finish b }

let length t = t.m
let universe t = t.universe

let low_of t i = match t.low with None -> 0 | Some iv -> Intvec.get iv i

let get t i =
  if i < 0 || i >= t.m then invalid_arg "Sparse.get";
  let p = Bitvec.select1 t.high i in
  ((p - i) lsl t.lbits) lor low_of t i

let rank t i =
  if t.m = 0 || i <= 0 then 0
  else if i >= t.universe then t.m
  else begin
    let hb = i lsr t.lbits in
    (* the elements of bucket [hb] sit strictly between zero number
       hb-1 and zero number hb of the upper bitmap: two selects bound
       the whole bucket, so the scan below never touches the bitmap
       again *)
    let start = if hb = 0 then 0 else Bitvec.select0 t.high (hb - 1) + 1 in
    let stop = Bitvec.select0 t.high hb in
    let j0 = start - hb in
    let cnt = stop - start in
    if t.lbits = 0 then j0
    else begin
      let ilow = i land ((1 lsl t.lbits) - 1) in
      (* low halves are strictly increasing within a bucket: binary
         search for the first one >= ilow *)
      let lo = ref 0 and hi = ref cnt in
      while !lo < !hi do
        let mid = (!lo + !hi) lsr 1 in
        if low_of t (j0 + mid) < ilow then lo := mid + 1 else hi := mid
      done;
      j0 + !lo
    end
  end

let next t i =
  let r = rank t i in
  if r >= t.m then -1 else get t r

let prev t i =
  let r = rank t i in
  if r = 0 then -1 else get t (r - 1)

let mem t i = next t i = i

let space_bits t =
  Bitvec.space_bits t.high
  + (match t.low with None -> 0 | Some iv -> Intvec.space_bits iv)
  + 192

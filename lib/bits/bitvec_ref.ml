(* Faithful snapshot of the pre-broadword kernels: 16-bit-table
   popcount, loop-based in-word select, one absolute count per 8-word
   block with a full word scan in rank and a whole-directory binary
   search in select.  Kept as (a) the differential oracle the property
   suite cross-checks the broadword kernels against, and (b) the
   reference arm of `bench bits`, so the speedup the rewrite buys is
   measured in-run on the same machine rather than against stale
   numbers.  Not used on any query path. *)

let word_bits = 63
let words_per_block = 8
let block_bits = word_bits * words_per_block

type t = {
  len : int;
  words : int array;
  blocks : int array; (* blocks.(k) = ones before word k*8 *)
  ones : int;
}

(* old table-based popcount *)
let table =
  let t = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
    Bytes.unsafe_set t i (Char.unsafe_chr (count i 0))
  done;
  t

let popcount x =
  Char.code (Bytes.unsafe_get table (x land 0xffff))
  + Char.code (Bytes.unsafe_get table ((x lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get table ((x lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get table (x lsr 48))

(* old loop-based in-word select *)
let select_in_word x j =
  let rec go x j pos =
    let c = Char.code (Bytes.unsafe_get table (x land 0xffff)) in
    if j < c then
      let rec bit x j pos =
        if x land 1 = 1 then if j = 0 then pos else bit (x lsr 1) (j - 1) (pos + 1)
        else bit (x lsr 1) j (pos + 1)
      in
      bit x j pos
    else go (x lsr 16) (j - c) (pos + 16)
  in
  go x j 0

let of_fun n f =
  let nwords = max 1 ((n + word_bits - 1) / word_bits) in
  let words = Array.make nwords 0 in
  for i = 0 to n - 1 do
    if f i then words.(i / word_bits) <- words.(i / word_bits) lor (1 lsl (i mod word_bits))
  done;
  let nblocks = ((nwords + words_per_block - 1) / words_per_block) + 1 in
  let blocks = Array.make nblocks 0 in
  let acc = ref 0 in
  for w = 0 to nwords - 1 do
    if w mod words_per_block = 0 then blocks.(w / words_per_block) <- !acc;
    acc := !acc + popcount words.(w)
  done;
  blocks.(nblocks - 1) <- !acc;
  { len = n; words; blocks; ones = !acc }

let length t = t.len
let count t = t.ones

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec_ref.get";
  (Array.unsafe_get t.words (i / word_bits) lsr (i mod word_bits)) land 1 = 1

let rank1 t i =
  if i <= 0 then 0
  else if i >= t.len then t.ones
  else begin
    let w = i / word_bits and o = i mod word_bits in
    let blk = w / words_per_block in
    let r = ref t.blocks.(blk) in
    for k = blk * words_per_block to w - 1 do
      r := !r + popcount (Array.unsafe_get t.words k)
    done;
    if o > 0 then
      r := !r + popcount (Array.unsafe_get t.words w land ((1 lsl o) - 1));
    !r
  end

let rank0 t i =
  let i = if i < 0 then 0 else if i > t.len then t.len else i in
  i - rank1 t i

let select_gen t j ones_before_block word_count word_select total =
  if j < 0 || j >= total then invalid_arg "Bitvec_ref.select";
  let nwords = Array.length t.words in
  let nblocks = (nwords + words_per_block - 1) / words_per_block in
  let lo = ref 0 and hi = ref (nblocks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if ones_before_block mid <= j then lo := mid else hi := mid - 1
  done;
  let blk = !lo in
  let rem = ref (j - ones_before_block blk) in
  let w = ref (blk * words_per_block) in
  let wmax = min nwords ((blk + 1) * words_per_block) in
  let res = ref (-1) in
  (try
     while !w < wmax do
       let c = word_count (Array.unsafe_get t.words !w) in
       if !rem < c then begin
         res := (!w * word_bits) + word_select (Array.unsafe_get t.words !w) !rem;
         raise Exit
       end;
       rem := !rem - c;
       incr w
     done
   with Exit -> ());
  if !res < 0 then invalid_arg "Bitvec_ref.select: out of range" else !res

let mask63 = (1 lsl word_bits) - 1

let select1 t j =
  select_gen t j (fun b -> t.blocks.(b)) popcount select_in_word t.ones

let select0 t j =
  let zeros_before b = (b * block_bits) - t.blocks.(b) in
  let word_count w = word_bits - popcount w in
  let word_select w r = select_in_word (lnot w land mask63) r in
  let total = t.len - t.ones in
  select_gen t j zeros_before word_count word_select total

let next1 t i =
  if i >= t.len then -1
  else begin
    let r = rank1 t i in
    if r >= t.ones then -1 else select1 t r
  end

(* Same portable payload format as [Bitvec.to_bytes]: what a
   pre-layout-change build would have written to disk.  The
   differential ladder feeds these bytes to [Bitvec.of_bytes] and
   asserts answers are identical. *)
let to_bytes t =
  let nwords = Array.length t.words in
  let b = Bytes.create (4 + 16 + (8 * nwords)) in
  Bytes.blit_string "BV1\n" 0 b 0 4;
  Bytes.set_int64_le b 4 (Int64.of_int t.len);
  Bytes.set_int64_le b 12 (Int64.of_int nwords);
  for w = 0 to nwords - 1 do
    Bytes.set_int64_le b
      (20 + (8 * w))
      (Int64.logand (Int64.of_int t.words.(w)) 0x7FFF_FFFF_FFFF_FFFFL)
  done;
  b

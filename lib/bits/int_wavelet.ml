(* Balanced shape: level k partitions values by bit (width-1-k).  Node
   bitmaps are stored per level over implicit value intervals, so the
   whole tree is [width] bitvectors of length [n]. *)

type t = {
  n : int;
  sigma : int;
  width : int;
  levels : Bitvec.t array;    (* levels.(k): bit (width-1-k) of each value,
                                 in the order induced by the upper bits *)
}

let bits_for v =
  let rec go v acc = if v = 0 then max 1 acc else go (v lsr 1) (acc + 1) in
  go v 0

let of_array ~sigma a =
  Array.iter
    (fun v -> if v < 0 || v >= sigma then invalid_arg "Int_wavelet.of_array")
    a;
  let n = Array.length a in
  let width = bits_for (max 1 (sigma - 1)) in
  let levels = Array.make width (Bitvec.of_fun 0 (fun _ -> false)) in
  let cur = ref (Array.copy a) in
  for k = 0 to width - 1 do
    let bit = width - 1 - k in
    let seq = !cur in
    levels.(k) <- Bitvec.of_fun n (fun i -> (seq.(i) lsr bit) land 1 = 1);
    (* next level: stable counting sort by the top (k+1) bits, which
       partitions within every node while keeping node spans intact *)
    if k < width - 1 then begin
      let shift = bit in
      let buckets = 1 lsl (k + 1) in
      let counts = Array.make (buckets + 1) 0 in
      Array.iter (fun v -> counts.((v lsr shift) + 1) <- counts.((v lsr shift) + 1) + 1) seq;
      for b = 1 to buckets do
        counts.(b) <- counts.(b) + counts.(b - 1)
      done;
      let next = Array.make n 0 in
      Array.iter
        (fun v ->
          let b = v lsr shift in
          next.(counts.(b)) <- v;
          counts.(b) <- counts.(b) + 1)
        seq;
      cur := next
    end
  done;
  { n; sigma; width; levels }

let length t = t.n
let sigma t = t.sigma

let access t i =
  if i < 0 || i >= t.n then invalid_arg "Int_wavelet.access";
  let v = ref 0 and pos = ref i and lo = ref 0 and hi = ref t.n in
  for k = 0 to t.width - 1 do
    let bv = t.levels.(k) in
    (* three ranks per level; every zero-side count is derived by
       arithmetic from the one-side counts *)
    let ones_before = Bitvec.rank1 bv !lo in
    let ones_at_pos = Bitvec.rank1 bv !pos in
    let node_ones = Bitvec.rank1 bv !hi - ones_before in
    if Bitvec.get bv !pos then begin
      v := (!v lsl 1) lor 1;
      (* ones of this node go to the right part of the next level *)
      let rank_in = ones_at_pos - ones_before in
      let zeros_total = !hi - !lo - node_ones in
      pos := !lo + zeros_total + rank_in;
      lo := !lo + zeros_total
    end
    else begin
      v := !v lsl 1;
      let rank_in = !pos - !lo - (ones_at_pos - ones_before) in
      pos := !lo + rank_in;
      hi := !hi - node_ones
    end
  done;
  !v

(* Generic traversal: visit leaves intersecting the value range,
   carrying the mapped positional interval. *)
let traverse t ~lo ~hi ~vlo ~vhi f =
  let lo = max 0 lo and hi = min t.n hi in
  let vlo = max 0 vlo and vhi = min t.sigma vhi in
  if lo < hi && vlo < vhi then begin
    let rec go k node_lo node_hi seg_lo seg_hi vmin vmax =
      (* seg = positional node interval at level k; [vmin, vmax) = value
         interval of this node *)
      if node_lo < node_hi && vmin < vhi && vmax > vlo then begin
        if k = t.width then f vmin (node_hi - node_lo)
        else begin
          let bv = t.levels.(k) in
          (* four ranks per node (down from eight): every zero-side
             count is position arithmetic over the one-side ranks *)
          let seg_ones_before = Bitvec.rank1 bv seg_lo in
          let seg_ones = Bitvec.rank1 bv seg_hi - seg_ones_before in
          let seg_zeros = seg_hi - seg_lo - seg_ones in
          let o_at_node_lo = Bitvec.rank1 bv node_lo in
          let o_at_node_hi = Bitvec.rank1 bv node_hi in
          let o_before = o_at_node_lo - seg_ones_before in
          let o_inside = o_at_node_hi - o_at_node_lo in
          let z_before = node_lo - seg_lo - o_before in
          let z_inside = node_hi - node_lo - o_inside in
          let vmid = vmin + ((vmax - vmin + 1) / 2) in
          (* left child occupies [seg_lo, seg_lo + seg_zeros) next level *)
          go (k + 1) (seg_lo + z_before)
            (seg_lo + z_before + z_inside)
            seg_lo (seg_lo + seg_zeros) vmin vmid;
          go (k + 1)
            (seg_lo + seg_zeros + o_before)
            (seg_lo + seg_zeros + o_before + o_inside)
            (seg_lo + seg_zeros) seg_hi vmid vmax
        end
      end
    in
    go 0 lo hi 0 t.n 0 (1 lsl t.width)
  end

let range_count t ~lo ~hi ~vlo ~vhi =
  let acc = ref 0 in
  traverse t ~lo ~hi ~vlo ~vhi (fun v c -> if v >= vlo && v < vhi then acc := !acc + c);
  !acc

let range_report t ~lo ~hi ~vlo ~vhi =
  let acc = ref [] in
  traverse t ~lo ~hi ~vlo ~vhi (fun v c ->
      if v >= vlo && v < vhi && c > 0 then acc := v :: !acc);
  List.sort compare !acc

let rank_value t v i =
  if v < 0 || v >= t.sigma then 0 else range_count t ~lo:0 ~hi:i ~vlo:v ~vhi:(v + 1)

let space_bits t =
  Array.fold_left (fun acc bv -> acc + Bitvec.space_bits bv) 192 t.levels

type node =
  | Leaf of int                                    (* symbol *)
  | Node of { bits : Bitvec.t; left : node; right : node }

type t = {
  root : node;
  len : int;
  (* per byte: code length (-1 if absent), code path (bit k = direction
     at depth k, 0 = left), total count *)
  code_len : int array;
  code_path : int array;
  counts : int array;
}

(* Huffman tree over the distinct bytes of [s], by repeatedly merging
   the two smallest-weight trees.  A sorted-list based merge is ample
   for a 256-symbol alphabet. *)
type htree = HLeaf of int * int | HNode of int * htree * htree

let hweight = function HLeaf (w, _) -> w | HNode (w, _, _) -> w

let build_huffman counts =
  let leaves = ref [] in
  for c = 255 downto 0 do
    if counts.(c) > 0 then leaves := HLeaf (counts.(c), c) :: !leaves
  done;
  let sorted = List.sort (fun a b -> compare (hweight a) (hweight b)) !leaves in
  let rec insert t = function
    | [] -> [ t ]
    | x :: rest as l ->
      if hweight t <= hweight x then t :: l else x :: insert t rest
  in
  let rec merge = function
    | [] -> None
    | [ t ] -> Some t
    | a :: b :: rest ->
      merge (insert (HNode (hweight a + hweight b, a, b)) rest)
  in
  merge sorted

(* Below this many routed symbols a subtree is built inline even when a
   pool is available: the partition copy dominates and task overhead
   would swamp the win. *)
let par_cutoff = 1 lsl 15

let of_string ?pool s =
  let len = String.length s in
  let counts = Array.make 256 0 in
  String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) s;
  let code_len = Array.make 256 (-1) and code_path = Array.make 256 0 in
  match build_huffman counts with
  | None ->
    { root = Leaf 0; len; code_len; code_path; counts }
  | Some (HLeaf (_, sym)) ->
    code_len.(sym) <- 0;
    { root = Leaf sym; len; code_len; code_path; counts }
  | Some hroot ->
    let rec assign depth path = function
      | HLeaf (_, sym) ->
        if depth > 62 then failwith "Wavelet: code too long";
        code_len.(sym) <- depth;
        code_path.(sym) <- path
      | HNode (_, l, r) ->
        assign (depth + 1) path l;
        assign (depth + 1) (path lor (1 lsl depth)) r
    in
    assign 0 0 hroot;
    (* Build each node's bitmap by recursively partitioning the symbol
       stream; [seq] holds the byte values routed to this node, in
       order, and [depth] selects the code bit deciding the direction.
       The left and right subtrees partition disjoint copies of the
       stream, so with a pool the two recursions run as a fork/join
       (above a size cutoff that keeps task grain coarse). *)
    let rec build2 ht depth (seq : Bytes.t) n =
      match ht with
      | HLeaf (_, sym) -> Leaf sym
      | HNode (_, hl, hr) ->
        let b = Bitvec.Builder.create ~hint:n () in
        let nr = ref 0 in
        for i = 0 to n - 1 do
          let c = Char.code (Bytes.unsafe_get seq i) in
          let dir = (code_path.(c) lsr depth) land 1 in
          Bitvec.Builder.push b (dir = 1);
          if dir = 1 then incr nr
        done;
        let sl = Bytes.create (n - !nr) and sr = Bytes.create !nr in
        let il = ref 0 and ir = ref 0 in
        for i = 0 to n - 1 do
          let ch = Bytes.unsafe_get seq i in
          let dir = (code_path.(Char.code ch) lsr depth) land 1 in
          if dir = 1 then begin
            Bytes.unsafe_set sr !ir ch;
            incr ir
          end
          else begin
            Bytes.unsafe_set sl !il ch;
            incr il
          end
        done;
        let bits = Bitvec.Builder.finish b in
        let build_left () = build2 hl (depth + 1) sl (n - !nr) in
        let build_right () = build2 hr (depth + 1) sr !nr in
        let left, right =
          match pool with
          | Some p when Sxsi_par.Pool.size p > 1 && n >= par_cutoff ->
            Sxsi_par.Pool.fork_join p build_left build_right
          | _ ->
            let l = build_left () in
            (l, build_right ())
        in
        Node { bits; left; right }
    in
    let root = build2 hroot 0 (Bytes.of_string s) len in
    { root; len; code_len; code_path; counts }

let length t = t.len

let access t i =
  if i < 0 || i >= t.len then invalid_arg "Wavelet.access";
  let rec go node i =
    match node with
    | Leaf sym -> Char.chr sym
    | Node { bits; left; right } ->
      if Bitvec.get bits i then go right (Bitvec.rank1 bits i)
      else go left (Bitvec.rank0 bits i)
  in
  go t.root i

let rank t c i =
  let sym = Char.code c in
  if t.code_len.(sym) < 0 then 0
  else begin
    let i = if i < 0 then 0 else if i > t.len then t.len else i in
    let path = t.code_path.(sym) in
    let rec go node depth i =
      if i = 0 then 0
      else
        match node with
        | Leaf _ -> i
        | Node { bits; left; right } ->
          if (path lsr depth) land 1 = 1 then go right (depth + 1) (Bitvec.rank1 bits i)
          else go left (depth + 1) (Bitvec.rank0 bits i)
    in
    go t.root 0 i
  end

(* Both endpoints of a backward-search step descend the same root-leaf
   path, so mapping them together halves the bitmap-rank work of the
   dominant rank pattern (FM-index [sp]/[ep] updates). *)
let rank2 t c i j =
  let sym = Char.code c in
  if t.code_len.(sym) < 0 then (0, 0)
  else begin
    let clamp v = if v < 0 then 0 else if v > t.len then t.len else v in
    let i = clamp i and j = clamp j in
    let path = t.code_path.(sym) in
    let rec go node depth i j =
      if j = 0 then (0, 0)
      else
        match node with
        | Leaf _ -> (i, j)
        | Node { bits; left; right } ->
          if (path lsr depth) land 1 = 1 then
            go right (depth + 1) (Bitvec.rank1 bits i) (Bitvec.rank1 bits j)
          else go left (depth + 1) (Bitvec.rank0 bits i) (Bitvec.rank0 bits j)
    in
    if i <= j then go t.root 0 i j
    else begin
      let b, a = go t.root 0 j i in
      (a, b)
    end
  end

let count t c = t.counts.(Char.code c)

let select t c j =
  let sym = Char.code c in
  if t.code_len.(sym) < 0 || j < 0 || j >= t.counts.(sym) then
    invalid_arg "Wavelet.select";
  let path = t.code_path.(sym) in
  let rec go node depth j =
    match node with
    | Leaf _ -> j
    | Node { bits; left; right } ->
      if (path lsr depth) land 1 = 1 then
        Bitvec.select1 bits (go right (depth + 1) j)
      else Bitvec.select0 bits (go left (depth + 1) j)
  in
  go t.root 0 j

let space_bits t =
  let rec go = function
    | Leaf _ -> 64
    | Node { bits; left; right } -> Bitvec.space_bits bits + go left + go right
  in
  go t.root + (3 * 256 * 64)

(* Broadword (SWAR) bit kernels over 63-bit OCaml ints, after Vigna's
   sideways-addition rank/select primitives ("Broadword implementation
   of rank/select queries", WEA 2008), adapted to the 63-bit word: the
   classic 64-bit MSB mask 0x8080..80 has bit 63 set and cannot exist
   as an OCaml int, so the lane-compare step runs over bytes 0..6 only
   and byte 7 falls out as the complement.  Constants with bit 62 set
   (0x5555..55) are negative as OCaml ints; every operator applied to
   them here is bitwise or wraps mod 2^63, so the bit patterns behave
   as unsigned. *)

let m55 = 0x5555555555555555
let m33 = 0x3333333333333333
let m0f = 0x0f0f0f0f0f0f0f0f
let h01 = 0x0101010101010101
let msbs7 = 0x0080808080808080 (* MSB of bytes 0..6 *)
let ones7 = 0x0001010101010101 (* 0x01 in bytes 0..6 *)
let low56 = 0x00ffffffffffffff

(* Per-byte popcounts of [x], one count per byte lane (byte 7 covers
   the top seven bits of the 63-bit word). *)
let[@inline] byte_counts x =
  let x = x - ((x lsr 1) land m55) in
  let x = (x land m33) + ((x lsr 2) land m33) in
  (x + (x lsr 4)) land m0f

(* The multiply accumulates byte counts left-to-right; byte 7 of the
   product is the total (<= 63, so bit 62 stays clear and the shift is
   exact). *)
let[@inline] popcount x = (byte_counts x * h01) lsr 56

(* Fused two-word popcount: one shared multiply over the summed byte
   counts (each lane <= 16, total <= 126 — no inter-byte carry).  The
   unrolled pair is the unit the rank directories are built from. *)
let[@inline] popcount2 x y = ((byte_counts x + byte_counts y) * h01) lsr 56

let count_words a lo hi =
  let acc = ref 0 and i = ref lo in
  while !i + 1 < hi do
    acc := !acc + popcount2 (Array.unsafe_get a !i) (Array.unsafe_get a (!i + 1));
    i := !i + 2
  done;
  if !i < hi then acc := !acc + popcount (Array.unsafe_get a !i);
  !acc

(* Final 8-bit step of select: position of the j-th set bit of a byte.
   256 x 8 entries, 2 KB. *)
let select_byte =
  let t = Bytes.make (256 * 8) '\000' in
  for b = 0 to 255 do
    let j = ref 0 in
    for p = 0 to 7 do
      if (b lsr p) land 1 = 1 then begin
        Bytes.unsafe_set t ((b lsl 3) lor !j) (Char.unsafe_chr p);
        incr j
      end
    done
  done;
  t

let[@inline] select_in_word x j =
  (* cumulative byte counts: byte k of [cs] = ones in bytes 0..k *)
  let cs = byte_counts x * h01 in
  (* bytes 0..6 with cumulative count >= j+1, found without branching:
     lane values are <= 63 and j+1 <= 63, so (c | 0x80) - (j+1) keeps
     the lane MSB set exactly when c >= j+1 and never borrows across
     lanes.  Cumulative counts are nondecreasing, so the count of such
     lanes pins the target byte; if none qualifies the bit lives in
     byte 7. *)
  let ge = (((cs land low56) lor msbs7) - ((j + 1) * ones7)) land msbs7 in
  let byte = 7 - ((((ge lsr 7) * ones7) lsr 48) land 0xff) in
  let shift = byte lsl 3 in
  (* ones strictly before the target byte: byte [byte] of [cs lsl 8]
     (byte 0 of the shifted value is zero, byte 7 reads cs's byte 6) *)
  let prev = ((cs lsl 8) lsr shift) land 0xff in
  shift
  + Char.code
      (Bytes.unsafe_get select_byte ((((x lsr shift) land 0xff) lsl 3) lor (j - prev)))

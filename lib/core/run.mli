(** The SXSI execution engine: evaluation of a marking tree automaton
    over the succinct document (Figure 5 of the paper), with the §5.4-5.5
    optimizations:

    - per-(state-set, label) memoization of transition analysis (the
      "just-in-time compilation" of §5.5.2);
    - jumping to the next relevant node with [TaggedDesc]-style moves
      when a single recursive scanning state is active (§5.4.1);
    - constant-time collection of whole tagged ranges, in both counting
      and materialization mode (the counters and lazy result sets of
      §5.5.3-4);
    - generalized jumps over the per-state jump sets the
      {!Sxsi_auto.Optimize} pass attaches ([Automaton.jump_set]): a
      recursive scan whose guard covers several tags (e.g. [//*]
      restricted to the labels that can actually fire) is driven by a
      merged multi-tag frontier of [Tag_index] cursors instead of a
      node-by-node walk, and a non-recursive ([child::] /
      [following-sibling::]) scan probes exactly the sibling positions
      carrying a jump-set tag, skipping whole subtrees between them.
      Unoptimized automata carry no jump sets, so they take exactly
      the seed engine's paths;
    - left-biased disjunctions, so every answer is marked exactly once
      and counters/concatenation are sound.

    Results are produced through a pluggable semantics so counting
    never materializes nodes. *)

type stats = {
  mutable visited : int;  (* nodes the run function touched (scan
                             positions, simulation steps; multi-tag
                             frontier and sibling probes count each
                             candidate position they evaluate) *)
  mutable marked : int;   (* mark operations (excluding lazy ranges) *)
  mutable jumps : int;    (* tagged jumps, frontier advances and range
                             collections *)
  mutable memo_hits : int;
}

val fresh_stats : unit -> stats

val copy_stats : stats -> stats
(** A snapshot, so a caller can diff counters across a run. *)

val stats_assoc : stats -> (string * int) list
(** Stable [(name, value)] view ([visited], [marked], [jumps],
    [memo_hits]) for traces and reports. *)

type config = {
  enable_jump : bool;   (* §5.4.1 jumping, §5.5.4 range collection and
                           the optimizer's jump-set driven scans *)
  enable_memo : bool;   (* §5.5.2 caching of the transition analysis *)
  enable_early : bool;  (* §5.5.5 early formula evaluation: skip the
                           next-sibling recursion for formulas already
                           decided by the first-child results.  Off by
                           default: it pays off on heavy filters (3x on
                           X12) but costs a pre-pass everywhere else *)
  stats : stats;
}

val default_config : unit -> config

type 'r sem = {
  empty : 'r;
  mark : int -> 'r;
  cat : 'r -> 'r -> 'r;
  range : int list -> int -> int -> 'r;   (* tags, lo, hi *)
}

val count_sem : Sxsi_tree.Tree_backend.t -> int sem
val marks_sem : Marks.t sem

type custom_impl = {
  cp_match : string -> bool;
      (** node-level test on a string-value (the fallback path) *)
  cp_texts : (unit -> int list) option;
      (** when the predicate is backed by its own index: the sorted
          identifiers of all matching texts, computed once per run
          (§6.6.2/§6.7 — word-based and PSSM indexes plug in here) *)
}

val simple_fun : (string -> bool) -> custom_impl
(** A custom predicate with no index of its own (every text is
    scanned). *)

type text_funs = string -> custom_impl option
(** Custom predicate registry: looked up as ["name:arg"], then
    ["name"]. *)

val value_matches : Sxsi_xpath.Ast.value_op -> string -> string -> bool
(** [value_matches op value literal]. *)

val text_set_of_pred :
  Sxsi_xml.Document.t -> text_funs -> Sxsi_auto.Automaton.pred_descr -> int array
(** Identifiers of the texts satisfying a predicate, sorted — one
    global index query (or one scan, for custom predicates). *)

val custom_fn : text_funs -> string -> string -> custom_impl
(** Resolve a custom predicate.
    @raise Invalid_argument when unregistered. *)

val run :
  ?budget:Sxsi_qos.Budget.t ->
  ?pool:Sxsi_par.Pool.t ->
  ?config:config ->
  ?funs:text_funs ->
  'r sem ->
  Sxsi_auto.Automaton.t ->
  'r
(** Run the automaton from the document root; the result is the
    combined marks of the start state ([sem.empty] when the automaton
    has no accepting run).

    With a [budget], every node visit (simulation step, scan position,
    chunk iteration) charges one step via {!Sxsi_qos.Budget.check}:
    the run either completes with its full, deterministic result or
    raises {!Sxsi_qos.Budget.Exceeded} — chunks share the budget, so
    one chunk tripping cancels the siblings at their next check and
    no truncated result can escape.

    With a [pool] of size [> 1], marking scan regions (§5.4.1) over
    enough positions are partitioned across the pool's domains: chunk
    marks concatenate in preorder, so [positions]/[count] over the
    result — and therefore every {!Engine} answer — are identical to
    the sequential run (only the associativity of the mark
    concatenation differs).  Predicate text-sets are then computed
    eagerly once and shared read-only.  Dropping and existence scans,
    whose traversal depends on match results, always run sequentially.
    Stats are aggregated across chunk contexts; [memo_hits] may differ
    from a sequential run since each chunk warms its own tables.
    @raise Invalid_argument on an unregistered custom predicate. *)

open Sxsi_xml
open Sxsi_tree
open Sxsi_xpath.Ast

(* The plan flattens the query into one chain of child/descendant steps
   ending at the node the text predicate applies to; the query's answer
   node sits at [result_idx] in the chain.  E.g.
   //Article[.//AbstractText[contains(., "x")]]  becomes the chain
   [descendant::Article; descendant::AbstractText] with the predicate
   on the last step and result_idx = 0. *)
type plan = {
  steps : step array;     (* chain, predicates stripped *)
  result_idx : int;
  pred : Sxsi_auto.Automaton.pred_descr;
}

(* Flatten a step list into (chain, predicate), accepting only
   single-chain shapes: child/descendant axes, no predicates except one
   trailing value predicate (possibly nested through Exists paths or a
   value path). *)
let rec flatten steps =
  match steps with
  | [] -> None
  | [ last ] ->
    if last.axis <> Child && last.axis <> Descendant && last.axis <> Attribute then
      None
    else begin
      match last.preds with
      | [ Value ({ absolute = false; steps = [] }, op, lit) ] ->
        Some ([ { last with preds = [] } ], Sxsi_auto.Automaton.Text_pred (op, lit))
      | [ Fun (name, { absolute = false; steps = [] }, arg) ] ->
        Some ([ { last with preds = [] } ], Sxsi_auto.Automaton.Custom_pred (name, arg))
      | [ Value ({ absolute = false; steps = inner_steps }, op, lit) ] ->
        (* contains(a/b, "x"): the value path extends the chain *)
        let inner =
          flatten
            (match List.rev inner_steps with
            | last_inner :: rev_init ->
              List.rev rev_init
              @ [ { last_inner with preds = last_inner.preds @ [ Value ({ absolute = false; steps = [] }, op, lit) ] } ]
            | [] -> [])
        in
        Option.map
          (fun (chain, pred) -> ({ last with preds = [] } :: chain, pred))
          inner
      | [ Exists { absolute = false; steps = inner_steps } ] ->
        Option.map
          (fun (chain, pred) -> ({ last with preds = [] } :: chain, pred))
          (flatten inner_steps)
      | _ -> None
    end
  | step :: rest ->
    if step.preds <> [] || (step.axis <> Child && step.axis <> Descendant) then None
    else
      Option.map (fun (chain, pred) -> ({ step with preds = [] } :: chain, pred)) (flatten rest)

let plan doc (path : path) =
  if not path.absolute || path.steps = [] then None
  else begin
    match flatten path.steps with
    | None -> None
    | Some (chain, pred) ->
      let steps = Array.of_list chain in
      let result_idx = List.length path.steps - 1 in
      let last = steps.(Array.length steps - 1) in
      (* one matching text must pin down one candidate node; attribute
         nodes always hold exactly one value *)
      let target_ok =
        match (last.axis, last.test) with
        | Attribute, (Star | Name _ | Node) -> true
        | Attribute, Text -> false
        | _, Text -> true
        | _, Name n -> begin
          match Document.tag_id doc n with
          | Some tg -> Document.tag_is_pcdata doc tg
          | None -> true (* unknown tag: no results either way *)
        end
        | _, (Star | Node) -> false
      in
      (* attribute steps are only supported in final position *)
      let attrs_ok =
        Array.for_all (fun s -> s.axis <> Attribute)
          (Array.sub steps 0 (Array.length steps - 1))
      in
      if target_ok && attrs_ok then Some { steps; result_idx; pred } else None
  end

let pred_of p = p.pred

let matches_empty_value ?(funs = fun _ -> None) p =
  match p.pred with
  | Sxsi_auto.Automaton.Text_pred (op, lit) -> Run.value_matches op "" lit
  | Sxsi_auto.Automaton.Custom_pred (name, arg) ->
    (Run.custom_fn funs name arg).Run.cp_match ""

let test_ok doc (step : step) x =
  let tg = Document.tag_of doc x in
  match step.axis with
  | Attribute -> begin
    match step.test with
    | Star | Node -> Document.is_attribute_tag doc tg
    | Name n -> Document.attribute_tag_id doc n = Some tg
    | Text -> false
  end
  | Self | Child | Descendant | Following_sibling -> begin
    match step.test with
    | Star -> Document.is_element_tag doc tg
    | Name n -> Document.tag_id doc n = Some tg
    | Text -> tg = Document.text_tag
    | Node ->
      Document.is_element_tag doc tg
      || tg = Document.text_tag || tg = Document.root_tag
  end

(* Minimum matching texts before the candidate verification is chunked
   across a pool. *)
let par_cutoff = 64

(* Whole-query static feasibility, the bottom-up counterpart of the
   optimizer's jump sets: the §5.5.6 relative-tag tables already know
   which tags ever occur below which.  A chain with an impossible
   consecutive Name/Name pair selects nothing, whatever the texts say
   — skip the text-index query and the candidate walks entirely. *)
let chain_feasible doc p =
  let rel = Document.rel doc in
  let k = Array.length p.steps in
  let tag_of i =
    match (p.steps.(i).axis, p.steps.(i).test) with
    | Attribute, _ -> None
    | _, Name n -> Document.tag_id doc n
    | _, (Star | Text | Node) -> None
  in
  let ok = ref true in
  for i = 1 to k - 1 do
    match (tag_of (i - 1), tag_of i, p.steps.(i).axis) with
    | Some ta, Some tb, Child ->
      if not (Tag_rel.mem rel Tag_rel.Child ta tb) then ok := false
    | Some ta, Some tb, Descendant ->
      if not (Tag_rel.mem rel Tag_rel.Descendant ta tb) then ok := false
    | _ -> ()
  done;
  !ok

let run_with_text_time ?budget ?pool ?(funs = fun _ -> None) doc p =
  if not (chain_feasible doc p) then (0.0, [])
  else begin
  let bp = Document.tree doc in
  let k = Array.length p.steps in
  let r = p.result_idx in
  (* One step per candidate text: each verification walks a root path
     of bounded depth, so per-candidate granularity keeps the check
     off the inner memoized recursions while still bounding the
     scan-shaped outer loop. *)
  let bcheck =
    match budget with
    | None -> fun () -> ()
    | Some b -> fun () -> Sxsi_qos.Budget.check b
  in
  let t0 = Unix.gettimeofday () in
  let texts = Run.text_set_of_pred doc funs p.pred in
  let text_time = Unix.gettimeofday () -. t0 in
  (* Verify the candidates of texts [lo, hi).  The upward-verification
     memo is shared within a slice only; it caches a pure relation, so
     chunked evaluation returns the same candidate set (the final
     [sort_uniq] erases chunk order and duplicates). *)
  let eval_slice lo hi =
  (* upward verification, shared across candidates: can [x] serve as
     the chain's step [i], with steps 0..i-1 assigned to ancestors? *)
  let memo : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let rec up_ok i x =
    x >= 0
    &&
    let key = (x * k) + i in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
      let b =
        test_ok doc p.steps.(i) x
        &&
        if i = 0 then begin
          match p.steps.(0).axis with
          | Child -> Tree_backend.parent bp x = Document.root doc
          | Descendant -> x <> Document.root doc
          | Self | Attribute | Following_sibling -> false
        end
        else begin
          match p.steps.(i).axis with
          | Child -> up_ok (i - 1) (Tree_backend.parent bp x)
          | Descendant ->
            let rec up y = y >= 0 && (up_ok (i - 1) y || up (Tree_backend.parent bp y)) in
            up (Tree_backend.parent bp x)
          | Attribute ->
            (* the owner element: above the attribute's "@" list node *)
            let at = Tree_backend.parent bp x in
            at >= 0 && up_ok (i - 1) (Tree_backend.parent bp at)
          | Self | Following_sibling -> false
        end
      in
      Hashtbl.replace memo key b;
      b
  in
  let results = ref [] in
  for ti = lo to hi - 1 do
      bcheck ();
      let d = texts.(ti) in
      let leaf = Document.leaf_of_text doc d in
      let candidate =
        if p.steps.(k - 1).axis = Attribute then begin
          (* matched value leaf must be a "%" under an attribute node *)
          if Document.tag_of doc leaf = Document.attval_tag then
            Some (Tree_backend.parent bp leaf)
          else None
        end
        else begin
          match p.steps.(k - 1).test with
          | Text ->
            if Document.tag_of doc leaf = Document.text_tag then Some leaf else None
          | Star | Name _ | Node ->
            let parent = Tree_backend.parent bp leaf in
            if parent >= 0
               && Document.tag_of doc leaf = Document.text_tag
               && Document.pcdata_only doc parent
            then Some parent
            else None
        end
      in
      match candidate with
      | None -> ()
      | Some x_last ->
        (* ancestors of the candidate, chain order A.(0) = candidate *)
        let ancestors =
          let rec go y acc = if y < 0 then List.rev acc else go (Tree_backend.parent bp y) (y :: acc) in
          Array.of_list (go x_last [])
        in
        let depth = Array.length ancestors in
        (* down_ok j idx: ancestors.(idx) serves as step j, with steps
           j+1..k-1 assigned strictly below it on this root path *)
        let down_memo = Hashtbl.create 16 in
        let rec down_ok j idx =
          let key = (j * depth) + idx in
          match Hashtbl.find_opt down_memo key with
          | Some b -> b
          | None ->
            let b =
              test_ok doc p.steps.(j) ancestors.(idx)
              &&
              (if j = k - 1 then idx = 0
               else begin
                 match p.steps.(j + 1).axis with
                 | Child -> idx > 0 && down_ok (j + 1) (idx - 1)
                 | Descendant ->
                   let rec any idx' =
                     idx' >= 0 && (down_ok (j + 1) idx' || any (idx' - 1))
                   in
                   any (idx - 1)
                 | Attribute ->
                   (* attribute of this element: two levels down via "@" *)
                   idx > 1 && down_ok (j + 1) (idx - 2)
                 | Self | Following_sibling -> false
               end)
            in
            Hashtbl.replace down_memo key b;
            b
        in
        (for idx = 0 to depth - 1 do
           if down_ok r idx && up_ok r ancestors.(idx) then
             results := ancestors.(idx) :: !results
         done)
  done;
  !results
  in
  let n = Array.length texts in
  let results =
    match pool with
    | Some pl when Sxsi_par.Pool.size pl > 1 && n >= par_cutoff ->
      let nchunks = min (4 * Sxsi_par.Pool.size pl) n in
      let ranges =
        Array.init nchunks (fun j -> (n * j / nchunks, n * (j + 1) / nchunks))
      in
      List.concat
        (Array.to_list
           (Sxsi_par.Pool.map_array pl (fun (lo, hi) -> eval_slice lo hi) ranges))
    | _ -> eval_slice 0 n
  in
  (text_time, List.sort_uniq compare results)
  end

let run ?budget ?pool ?funs doc p =
  snd (run_with_text_time ?budget ?pool ?funs doc p)

open Sxsi_xml
open Sxsi_tree
open Sxsi_auto

type stats = {
  mutable visited : int;
  mutable marked : int;
  mutable jumps : int;
  mutable memo_hits : int;
}

let fresh_stats () = { visited = 0; marked = 0; jumps = 0; memo_hits = 0 }

let copy_stats s =
  { visited = s.visited; marked = s.marked; jumps = s.jumps; memo_hits = s.memo_hits }

let stats_assoc s =
  [
    ("visited", s.visited);
    ("marked", s.marked);
    ("jumps", s.jumps);
    ("memo_hits", s.memo_hits);
  ]

type config = {
  enable_jump : bool;
  enable_memo : bool;
  enable_early : bool;
  stats : stats;
}

let default_config () =
  { enable_jump = true; enable_memo = true; enable_early = false; stats = fresh_stats () }

type 'r sem = {
  empty : 'r;
  mark : int -> 'r;
  cat : 'r -> 'r -> 'r;
  range : int list -> int -> int -> 'r;
}

let count_sem ti =
  {
    empty = 0;
    mark = (fun _ -> 1);
    cat = ( + );
    range = (fun tags lo hi -> Marks.range_count ti tags lo hi);
  }

let marks_sem =
  {
    empty = Marks.Empty;
    mark = (fun x -> Marks.One x);
    cat =
      (fun a b ->
        match (a, b) with
        | Marks.Empty, m | m, Marks.Empty -> m
        | _ -> Marks.Cat (a, b));
    range = (fun tags lo hi -> Marks.Tagged_range (tags, lo, hi));
  }

type custom_impl = {
  cp_match : string -> bool;
  cp_texts : (unit -> int list) option;
}

let simple_fun f = { cp_match = f; cp_texts = None }

type text_funs = string -> custom_impl option

(* ------------------------------------------------------------------ *)
(* Built-in and custom predicate evaluation (§6.6 step 2): when the    *)
(* candidate node's value is a single text, one global index query     *)
(* answers every node-level test by membership; otherwise fall back    *)
(* to comparing the string-value.                                      *)
(* ------------------------------------------------------------------ *)

let value_matches op value lit =
  let open Sxsi_xpath.Ast in
  match op with
  | Eq -> value = lit
  | Contains ->
    let n = String.length value and m = String.length lit in
    if m = 0 then true
    else begin
      let found = ref false in
      for i = 0 to n - m do
        if not !found && String.sub value i m = lit then found := true
      done;
      !found
    end
  | Starts_with ->
    String.length lit <= String.length value
    && String.sub value 0 (String.length lit) = lit
  | Ends_with ->
    String.length lit <= String.length value
    && String.sub value (String.length value - String.length lit) (String.length lit)
       = lit
  | Lt -> value < lit
  | Le -> value <= lit
  | Gt -> value > lit
  | Ge -> value >= lit

let rec text_set_of_pred doc funs = function
  | Automaton.Text_pred (op, lit) ->
    let tc = Document.text doc in
    let open Sxsi_xpath.Ast in
    let ids =
      match op with
      | Eq -> Sxsi_text.Text_collection.equals tc lit
      | Contains -> Sxsi_text.Text_collection.contains tc lit
      | Starts_with -> Sxsi_text.Text_collection.starts_with tc lit
      | Ends_with -> Sxsi_text.Text_collection.ends_with tc lit
      | Lt -> Sxsi_text.Text_collection.less_than tc lit
      | Le -> Sxsi_text.Text_collection.less_equal tc lit
      | Gt -> Sxsi_text.Text_collection.greater_than tc lit
      | Ge -> Sxsi_text.Text_collection.greater_equal tc lit
    in
    Array.of_list ids
  | Automaton.Custom_pred (name, arg) -> begin
    let impl = custom_fn funs name arg in
    match impl.cp_texts with
    | Some indexed -> Array.of_list (indexed ())
    | None ->
      let acc = ref [] in
      for d = Document.text_count doc - 1 downto 0 do
        if impl.cp_match (Document.get_text doc d) then acc := d :: !acc
      done;
      Array.of_list !acc
  end

and custom_fn funs name arg =
  match funs (name ^ ":" ^ arg) with
  | Some f -> f
  | None -> begin
    match funs name with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Run: unknown predicate %s" name)
  end

(* any element of the sorted array in [lo, hi)? *)
let mem_range arr lo hi =
  let n = Array.length arr in
  let l = ref 0 and r = ref n in
  while !l < !r do
    let m = (!l + !r) / 2 in
    if arr.(m) < lo then l := m + 1 else r := m
  done;
  !l < n && arr.(!l) < hi

let make_pred_eval ?sets doc (auto : Automaton.t) funs =
  let n = Array.length auto.Automaton.preds in
  let sets : int array option array =
    match sets with Some s -> s | None -> Array.make n None
  in
  let get_set i =
    match sets.(i) with
    | Some s -> s
    | None ->
      let s = text_set_of_pred doc funs auto.Automaton.preds.(i) in
      sets.(i) <- Some s;
      s
  in
  fun i x ->
    let descr = auto.Automaton.preds.(i) in
    if Document.pcdata_only doc x then begin
      let lo, hi = Document.text_range doc x in
      if hi <= lo then begin
        match descr with
        | Automaton.Text_pred (op, lit) -> value_matches op "" lit
        | Automaton.Custom_pred (name, arg) -> (custom_fn funs name arg).cp_match ""
      end
      else begin
        (* an empty literal matches every non-empty text for the
           substring-family operators, but the index query returns
           nothing: answer directly *)
        match descr with
        | Automaton.Text_pred ((Contains | Starts_with | Ends_with), "") -> true
        | Automaton.Text_pred _ | Automaton.Custom_pred _ ->
          mem_range (get_set i) lo hi
      end
    end
    else begin
      match descr with
      | Automaton.Text_pred (op, lit) ->
        value_matches op (Document.string_value doc x) lit
      | Automaton.Custom_pred (name, arg) ->
        (custom_fn funs name arg).cp_match (Document.string_value doc x)
    end

(* ------------------------------------------------------------------ *)
(* The run function                                                     *)
(* ------------------------------------------------------------------ *)

type analysis = {
  a_phis : (int * Formula.t) array;   (* surviving state, combined formula *)
  a_q1 : Stateset.t;
  a_q2 : Stateset.t;
}

(* One domain's evaluation functions, closed over its own stats and
   memo tables. *)
type 'r context = {
  c_eval : int -> Stateset.t -> int -> (int * 'r) list;
  c_scan_chunk : int -> Formula.t -> int -> int array -> int -> int -> 'r;
}

(* Positions a non-dropping marking scan will visit in [x, limit): all
   occurrences reported by [next], independent of match results.
   [check] is the run's budget check (a no-op without a budget):
   collection can cover a whole document before any chunk evaluates. *)
let scan_positions check next x limit =
  let acc = ref [] in
  let p = ref (next x) in
  while !p >= 0 && !p < limit do
    check ();
    acc := !p :: !acc;
    p := next (!p + 1)
  done;
  Array.of_list (List.rev !acc)

(* Minimum scan positions before a region is chunked across a pool. *)
let scan_par_cutoff = 64

let merge_stats into from =
  into.visited <- into.visited + from.visited;
  into.marked <- into.marked + from.marked;
  into.jumps <- into.jumps + from.jumps;
  into.memo_hits <- into.memo_hits + from.memo_hits

let run ?budget ?pool ?config ?(funs = fun _ -> None) sem (auto : Automaton.t) =
  let config = match config with Some c -> c | None -> default_config () in
  (* One step charged per node visited (scan or simulation); the check
     is a single atomic increment, with the deadline read sampled —
     see [Sxsi_qos.Budget].  Chunk contexts share the same budget, so
     one chunk tripping cancels the siblings at their next check. *)
  let bcheck =
    match budget with
    | None -> fun () -> ()
    | Some b -> fun () -> Sxsi_qos.Budget.check b
  in
  let doc = auto.Automaton.doc in
  let bp = Document.tree doc in
  let ti = Document.tree doc in
  let tag_count = Document.tag_count doc in
  let pool =
    match pool with Some p when Sxsi_par.Pool.size p > 1 -> Some p | _ -> None
  in
  (* A merged cursor over the occurrences of a jump set: [next p] is
     the first occurrence >= p of any tag in [tags], or -1.  Per-tag
     candidates are cached and refreshed lazily, so a whole scan costs
     one [tagged_next] per occurrence consumed plus one per tag —
     the single-tag jumping of §5.4.1, generalized.  Calls must have
     non-decreasing [p] (scans only move forward). *)
  let frontier tags =
    let n = Array.length tags in
    if n = 1 then begin
      let t = Array.unsafe_get tags 0 in
      fun p -> Tree_backend.tagged_next ti p t
    end
    else begin
      let cand = Array.make n min_int in
      fun p ->
        let best = ref max_int in
        for i = 0 to n - 1 do
          let c = Array.unsafe_get cand i in
          let c =
            if c < p then begin
              let nx = Tree_backend.tagged_next ti p (Array.unsafe_get tags i) in
              let nx = if nx < 0 then max_int else nx in
              Array.unsafe_set cand i nx;
              nx
            end
            else c
          in
          if c < !best then best := c
        done;
        if !best = max_int then -1 else !best
    end
  in
  (* With a pool, predicate text-sets are computed once up front and
     shared read-only by every evaluation context (the lazy per-context
     initialization would race).  A predicate whose resolution fails
     stays unresolved here and raises at its first evaluation, exactly
     like the sequential lazy path. *)
  let pred_sets =
    match pool with
    | None -> None
    | Some _ ->
      Some
        (Array.init (Array.length auto.Automaton.preds) (fun i ->
             match text_set_of_pred doc funs auto.Automaton.preds.(i) with
             | s -> Some s
             | exception _ -> None))
  in
  (* One evaluation context per domain: the §5.5.2 memo tables and the
     mutable stats are context-local, and both are semantically
     transparent (the memo caches pure analyses), so a chunk of a scan
     evaluated in a fresh context yields exactly the sequential result.
     [par] is the pool the context may fan out on; chunk contexts get
     [None], so parallel scans do not nest. *)
  let rec make_context ~par stats =
  let pred_eval = make_pred_eval ?sets:pred_sets doc auto funs in
  (* per-state-set arrays indexed by tag: one pointer chase per visit
     once warm (the "just-in-time compilation" tables of §5.5.2) *)
  let memo : (int, analysis option array) Hashtbl.t = Hashtbl.create 16 in
  let compute_analysis qtd tag =
    let phis =
      List.filter_map
        (fun q ->
          let phi = Automaton.matching_phi auto q tag in
          if phi == Formula.fls then None else Some (q, phi))
        (Stateset.to_list qtd)
    in
    {
      a_phis = Array.of_list phis;
      a_q1 = Stateset.of_list (List.concat_map (fun (_, p) -> p.Formula.down1) phis);
      a_q2 = Stateset.of_list (List.concat_map (fun (_, p) -> p.Formula.down2) phis);
    }
  in
  let analyse qtd tag =
    if not config.enable_memo then compute_analysis qtd tag
    else begin
      let arr =
        match Hashtbl.find_opt memo qtd.Stateset.id with
        | Some arr -> arr
        | None ->
          let arr = Array.make tag_count None in
          Hashtbl.add memo qtd.Stateset.id arr;
          arr
      in
      match Array.unsafe_get arr tag with
      | Some a ->
        stats.memo_hits <- stats.memo_hits + 1;
        a
      | None ->
        let a = compute_analysis qtd tag in
        arr.(tag) <- Some a;
        a
    end
  in
  let bottom_cache : (int, (int * 'a) list) Hashtbl.t = Hashtbl.create 16 in
  let bottom qtd =
    match Hashtbl.find_opt bottom_cache qtd.Stateset.id with
    | Some r -> r
    | None ->
      let r =
        List.filter_map
          (fun q -> if Automaton.is_bottom auto q then Some (q, sem.empty) else None)
          (Stateset.to_list qtd)
      in
      Hashtbl.add bottom_cache qtd.Stateset.id r;
      r
  in
  let lookup res q =
    match List.assoc_opt q res with
    | Some m -> (true, m)
    | None -> (false, sem.empty)
  in
  let rec eval x qtd limit =
    if Stateset.is_empty qtd then []
    else if x < 0 || x >= limit then bottom qtd
    else begin
      let shortcut =
        if not config.enable_jump then None
        else
          match Stateset.singleton qtd with
          | None -> None
          | Some q -> begin
            match Automaton.scan_info auto q with
            | Some ({ Automaton.scan_recursive = true; scan_collect = true; _ } as si) ->
              Some (`Collect (q, si))
            | Some ({ Automaton.scan_guard = Formula.Tag tag; scan_recursive = true; _ } as si) ->
              Some (`Scan (q, tag, si))
            | Some si -> begin
              (* an optimized automaton: its jump set lists exactly the
                 tags that can fire this state's match, so the scan can
                 be driven by tag jumps even for multi-tag guards ([*],
                 [node()], [@*]) and for sibling (non-recursive) scans *)
              match Automaton.jump_set auto q with
              | Some tags when si.Automaton.scan_recursive ->
                Some (`Multi (q, tags, si))
              | Some tags -> Some (`Sibling (q, tags, si))
              | None -> None
            end
            | None -> None
          end
      in
      match shortcut with
      | Some (`Collect (q, si)) ->
        stats.jumps <- stats.jumps + 1;
        [ (q, sem.range si.Automaton.scan_tags x limit) ]
      | Some (`Scan (q, tag, si)) ->
        scan_region q si x limit ~gtag:tag ~next:(fun p ->
            Tree_backend.tagged_next ti p tag)
      | Some (`Multi (q, tags, si)) ->
        scan_region q si x limit ~gtag:(-1) ~next:(frontier tags)
      | Some (`Sibling (q, tags, si)) -> sib_scan q si tags x limit
      | None -> visit x qtd limit
    end
  (* A single recursive scanning state over the region [x, limit):
     instead of simulating the first-child/next-sibling recursion, jump
     from one [tag] occurrence to the next (§5.4.1).  The matches in
     preorder are exactly the region's matches, so marks concatenate in
     document order; for drop-down1 scans a successful match skips its
     whole subtree, and existence scans stop at the first success. *)
  and scan_region q si x limit ~gtag ~next =
    stats.jumps <- stats.jumps + 1;
    let mp = si.Automaton.scan_match in
    let parallel =
      (* Only a marking, non-dropping scan visits a match-independent
         position sequence (every tag occurrence in the region, each
         advancing by one): those positions evaluate independently and
         their marks concatenate in preorder.  Dropping scans skip
         subtrees of successful matches and existence scans stop at the
         first success, so both stay sequential. *)
      match par with
      | Some pl when si.Automaton.scan_marking && not si.Automaton.scan_drop -> Some pl
      | _ -> None
    in
    match parallel with
    | Some pl ->
      let ps = scan_positions bcheck next x limit in
      let np = Array.length ps in
      if np < scan_par_cutoff then [ (q, scan_chunk gtag mp limit ps 0 np) ]
      else begin
        let nchunks = min (4 * Sxsi_par.Pool.size pl) np in
        let ranges =
          Array.init nchunks (fun j -> (np * j / nchunks, np * (j + 1) / nchunks))
        in
        let results =
          Sxsi_par.Pool.map_array pl
            (fun (lo, hi) ->
              let cstats = fresh_stats () in
              let ctx = make_context ~par:None cstats in
              (ctx.c_scan_chunk gtag mp limit ps lo hi, cstats))
            ranges
        in
        let marks =
          Array.fold_left
            (fun acc (m, cstats) ->
              merge_stats stats cstats;
              sem.cat acc m)
            sem.empty results
        in
        [ (q, marks) ]
      end
    | None ->
      let rec loop p acc found =
        let p = next p in
        if p < 0 || p >= limit then (acc, found)
        else begin
          bcheck ();
          stats.visited <- stats.visited + 1;
          let tag = if gtag >= 0 then gtag else Tree_backend.tag ti p in
          let r1 =
            if mp.Formula.down1 = [] then []
            else
              eval (Tree_backend.first_child bp p)
                (Stateset.of_list mp.Formula.down1)
                (Tree_backend.close bp p)
          in
          let r2 =
            if mp.Formula.down2 = [] then []
            else eval (Tree_backend.next_sibling bp p) (Stateset.of_list mp.Formula.down2) limit
          in
          let b, m = eval_phi r1 r2 p tag mp in
          if si.Automaton.scan_marking then begin
            let acc = if b then sem.cat acc m else acc in
            let next = if b && si.Automaton.scan_drop then Tree_backend.close bp p else p + 1 in
            loop next acc true
          end
          else if b then (acc, true)
          else loop (p + 1) acc found
        end
      in
      let marks, found = loop x sem.empty false in
      if si.Automaton.scan_marking then [ (q, marks) ]
      else if found then [ (q, sem.empty) ]
      else []
  (* A single non-recursive scanning state over the sibling chain
     starting at [x] (the child:: and following-sibling:: steps):
     jump between occurrences of the jump set instead of walking
     sibling by sibling.  An occurrence that is a direct sibling is a
     match candidate; one nested deeper lies inside some sibling's
     subtree, which this scan can never match — resume past that
     subtree.  After a candidate the scan resumes at the next sibling
     (the continuation moves down2 only), so every probe either
     decides a sibling or discards one whole sibling: never more
     probes than the sibling walk's visits.  Matches arrive in
     document order, so marks concatenate exactly as the walk's
     would; existence scans stop at the first success. *)
  and sib_scan q si tags x limit =
    stats.jumps <- stats.jumps + 1;
    let mp = si.Automaton.scan_match in
    let par = Tree_backend.parent bp x in
    let bound = if par < 0 then limit else min limit (Tree_backend.close bp par) in
    let next = frontier tags in
    (* the sibling of the chain whose subtree contains [p] *)
    let rec anchor p =
      let pr = Tree_backend.parent bp p in
      if pr = par then p else anchor pr
    in
    let rec loop p acc found =
      let p = next p in
      if p < 0 || p >= bound then (acc, found)
      else begin
        bcheck ();
        stats.visited <- stats.visited + 1;
        if Tree_backend.parent bp p <> par then
          loop (Tree_backend.close bp (anchor p) + 1) acc found
        else begin
          let tag = Tree_backend.tag ti p in
          let r1 =
            if mp.Formula.down1 = [] then []
            else
              eval (Tree_backend.first_child bp p)
                (Stateset.of_list mp.Formula.down1)
                (Tree_backend.close bp p)
          in
          let r2 =
            if mp.Formula.down2 = [] then []
            else
              eval (Tree_backend.next_sibling bp p)
                (Stateset.of_list mp.Formula.down2)
                limit
          in
          let b, m = eval_phi r1 r2 p tag mp in
          let after = Tree_backend.close bp p + 1 in
          if si.Automaton.scan_marking then
            loop after (if b then sem.cat acc m else acc) true
          else if b then (acc, true)
          else loop after acc found
        end
      end
    in
    let marks, found = loop x sem.empty false in
    if si.Automaton.scan_marking then [ (q, marks) ]
    else if found then [ (q, sem.empty) ]
    else []
  (* One chunk of a parallel scan: evaluate the positions [lo, hi) of
     [ps] in this context and concatenate their marks in order.
     [gtag] is the scan's single guard tag, or negative when the guard
     is multi-tag (the tag is then read per position). *)
  and scan_chunk gtag mp limit ps lo hi =
    let acc = ref sem.empty in
    for k = lo to hi - 1 do
      bcheck ();
      let p = ps.(k) in
      stats.visited <- stats.visited + 1;
      let tag = if gtag >= 0 then gtag else Tree_backend.tag ti p in
      let r1 =
        if mp.Formula.down1 = [] then []
        else
          eval (Tree_backend.first_child bp p) (Stateset.of_list mp.Formula.down1) (Tree_backend.close bp p)
      in
      let r2 =
        if mp.Formula.down2 = [] then []
        else eval (Tree_backend.next_sibling bp p) (Stateset.of_list mp.Formula.down2) limit
      in
      let b, m = eval_phi r1 r2 p tag mp in
      if b then acc := sem.cat !acc m
    done;
    !acc
  and visit x qtd limit =
    bcheck ();
    stats.visited <- stats.visited + 1;
    let tag = Tree_backend.tag ti x in
    let an = analyse qtd tag in
    if an.a_phis = [||] then []
    else begin
      let r1 =
        if Stateset.is_empty an.a_q1 then []
        else eval (Tree_backend.first_child bp x) an.a_q1 (Tree_backend.close bp x)
      in
      if Stateset.is_empty an.a_q2 then
        Array.to_list an.a_phis
        |> List.filter_map (fun (q, phi) ->
               let b, m = eval_phi r1 [] x tag phi in
               if b then Some (q, m) else None)
      else if not config.enable_early then begin
        let r2 = eval (Tree_backend.next_sibling bp x) an.a_q2 limit in
        Array.to_list an.a_phis
        |> List.filter_map (fun (q, phi) ->
               let b, m = eval_phi r1 r2 x tag phi in
               if b then Some (q, m) else None)
      end
      else begin
        (* §5.5.5: decide truth with the left results alone where
           possible; only undecided formulas force the next-sibling
           recursion.  A formula decided true here stays true under the
           empty right results (its accepted branch contains no Down2
           atom), so marks are built once, by eval_phi. *)
        let partial =
          Array.map (fun (q, phi) -> (q, phi, eval3 r1 x tag phi)) an.a_phis
        in
        let q2 =
          Array.fold_left
            (fun acc (_, phi, v) ->
              match v with `Unknown -> phi.Formula.down2 @ acc | `True | `False -> acc)
            [] partial
        in
        let r2 =
          if q2 = [] then [] else eval (Tree_backend.next_sibling bp x) (Stateset.of_list q2) limit
        in
        Array.to_list partial
        |> List.filter_map (fun (q, phi, v) ->
               match v with
               | `False -> None
               | `True ->
                 let _, m = eval_phi r1 [] x tag phi in
                 Some (q, m)
               | `Unknown ->
                 let b, m = eval_phi r1 r2 x tag phi in
                 if b then Some (q, m) else None)
      end
    end
  (* Truth-only three-valued evaluation with the first-child results:
     Down2 atoms are unknown. *)
  and eval3 r1 x tag (phi : Formula.t) =
    match phi.Formula.node with
    | Formula.True -> `True
    | Formula.False -> `False
    | Formula.Mark -> `True
    | Formula.Down1 q ->
      if List.mem_assoc q r1 then `True else `False
    | Formula.Down2 _ -> `Unknown
    | Formula.Is_label g ->
      if Automaton.guard_matches auto g tag then `True else `False
    | Formula.Pred i -> if pred_eval i x then `True else `False
    | Formula.And (p1, p2) -> begin
      match eval3 r1 x tag p1 with
      | `False -> `False
      | `True -> eval3 r1 x tag p2
      | `Unknown -> begin
        (* still short-circuit on a definitely-false right arm *)
        match eval3 r1 x tag p2 with `False -> `False | `True | `Unknown -> `Unknown
      end
    end
    | Formula.Or (p1, p2) -> begin
      match eval3 r1 x tag p1 with
      | `True -> `True
      | `False -> eval3 r1 x tag p2
      | `Unknown -> `Unknown
    end
    | Formula.Not p -> begin
      match eval3 r1 x tag p with
      | `True -> `False
      | `False -> `True
      | `Unknown -> `Unknown
    end
  and eval_phi r1 r2 x tag (phi : Formula.t) =
    match phi.Formula.node with
    | Formula.True -> (true, sem.empty)
    | Formula.False -> (false, sem.empty)
    | Formula.Mark ->
      stats.marked <- stats.marked + 1;
      (true, sem.mark x)
    | Formula.Down1 q -> lookup r1 q
    | Formula.Down2 q -> lookup r2 q
    | Formula.Is_label g -> (Automaton.guard_matches auto g tag, sem.empty)
    | Formula.Pred i -> (pred_eval i x, sem.empty)
    | Formula.And (p1, p2) ->
      let b1, m1 = eval_phi r1 r2 x tag p1 in
      if not b1 then (false, sem.empty)
      else begin
        let b2, m2 = eval_phi r1 r2 x tag p2 in
        if b2 then (true, sem.cat m1 m2) else (false, sem.empty)
      end
    | Formula.Or (p1, p2) ->
      (* left-biased: marks of the first accepting disjunct only,
         which is a superset of the generic continuation's by
         construction *)
      let b1, m1 = eval_phi r1 r2 x tag p1 in
      if b1 then (true, m1) else eval_phi r1 r2 x tag p2
    | Formula.Not p -> (not (fst (eval_phi r1 r2 x tag p)), sem.empty)
  in
  { c_eval = eval; c_scan_chunk = scan_chunk }
  in
  let ctx = make_context ~par:pool config.stats in
  let res =
    ctx.c_eval (Document.root doc)
      (Stateset.of_list [ auto.Automaton.start ])
      (Tree_backend.length bp)
  in
  match List.assoc_opt auto.Automaton.start res with
  | Some m -> m
  | None -> sem.empty

open Sxsi_xml
open Sxsi_tree
open Sxsi_auto

type one = {
  doc : Document.t;
  path : Sxsi_xpath.Ast.path;
  auto : Automaton.t Lazy.t;
  bu : Bottom_up.plan option;
}

type compiled = one list   (* a union of absolute paths; never empty *)

type strategy = Auto | Top_down | Bottom_up

module Trace = Sxsi_obs.Trace
module Budget = Sxsi_qos.Budget
module J = Sxsi_obs.Journal

let maybe_time trace phase f =
  match trace with None -> f () | Some tr -> Trace.time tr phase f

(* Flight-recorder span names, interned once. *)
let n_prepare = J.name "engine/prepare"
let n_compile = J.name "engine/compile"
let n_select = J.name "engine/select"
let n_count = J.name "engine/count"
let n_bottom_up = J.name "engine/bottom_up"
let n_top_down = J.name "engine/top_down"
let n_materialize = J.name "engine/materialize"
let n_optimize = J.name "engine/optimize"

(* A span whose End record carries a result count in [b] — the count
   only exists once the thunk returns. *)
let span_counted nm count f =
  J.begin_span J.Engine nm ();
  match f () with
  | v ->
    J.end_span J.Engine nm ~b:(count v) ();
    v
  | exception e ->
    J.end_span J.Engine nm ();
    raise e

(* Fault-injection site at the head of every evaluation entry point
   (count/select/...): lets tests stall or fail a query between
   admission and the first budget check.  One atomic load when
   inactive. *)
let eval_failpoint = Sxsi_qos.Failpoint.site "engine.eval"

(* Run [f] under [budget]: fail fast if the deadline already passed
   (e.g. the request waited it out in the accept queue), and install
   the budget ambiently so the FM-index loops — and, via
   [Pool.fork]'s capture, any chunk running on another domain — check
   it without parameter threading. *)
let with_budget budget f =
  match budget with
  | None -> f ()
  | Some b ->
    Budget.check_now b;
    Budget.with_ambient b f

let charge_results budget n =
  match budget with None -> () | Some b -> Budget.add_results b n

let charge_bytes budget n =
  match budget with None -> () | Some b -> Budget.add_bytes b n

let prepare_path ?optimize doc path =
  [
    {
      doc;
      path;
      auto =
        lazy
          (let a = Compile.compile ?optimize doc path in
           (* one instant event per optimized compilation: the journal
              shows the state reduction without a trace attached *)
           (match a.Automaton.opt with
           | Some o ->
             J.instant J.Engine n_optimize ~a:o.Automaton.opt_states_before
               ~b:o.Automaton.opt_states_after ()
           | None -> ());
           a);
      bu = Bottom_up.plan doc path;
    };
  ]

let prepare ?trace ?optimize doc src =
  span_counted n_prepare List.length (fun () ->
      let paths =
        maybe_time trace Trace.Parse (fun () -> Sxsi_xpath.Xpath_parser.parse_union src)
      in
      List.concat_map (prepare_path ?optimize doc) paths)

let one c = List.hd c
let automaton c = Lazy.force (one c).auto
let bottom_up_plan c = (one c).bu

let precompile ?trace c =
  J.with_span J.Engine n_compile (fun () ->
      maybe_time trace Trace.Compile (fun () ->
          List.iter (fun b -> ignore (Lazy.force b.auto)) c))

(* Cheap selectivity estimate for the predicate of a bottom-up plan. *)
let estimate_matches doc plan =
  let tc = Document.text doc in
  let open Sxsi_xpath.Ast in
  match Bottom_up.pred_of plan with
  | Automaton.Text_pred (op, lit) -> begin
    match op with
    | Contains -> Sxsi_text.Text_collection.global_count tc lit
    | Eq -> Sxsi_text.Text_collection.equals_count tc lit
    | Starts_with -> Sxsi_text.Text_collection.starts_with_count tc lit
    | Ends_with -> Sxsi_text.Text_collection.ends_with_count tc lit
    | Lt | Le -> Sxsi_text.Text_collection.less_equal_count tc lit
    | Gt | Ge ->
      Sxsi_text.Text_collection.doc_count tc
      - Sxsi_text.Text_collection.less_than_count tc lit
  end
  | Automaton.Custom_pred _ ->
    (* custom predicates have no index estimate; treat as selective
       (the §6.7 behaviour: scan texts once, verify upward) *)
    0

let min_step_tag_count (c : one) =
  let ti = Document.tree c.doc in
  let open Sxsi_xpath.Ast in
  List.fold_left
    (fun acc step ->
      match step.test with
      | Name n -> begin
        match Document.tag_id c.doc n with
        | Some tg -> min acc (Tree_backend.count ti tg)
        | None -> 0
      end
      | Star | Text | Node -> acc)
    (Document.node_count c.doc)
    c.path.steps

let chosen_strategy_one ~funs ~strategy (c : one) =
  match strategy with
  | Top_down -> `Top_down
  | Bottom_up -> begin
    match c.bu with
    | Some _ -> `Bottom_up
    | None -> invalid_arg "Engine: query has no bottom-up shape"
  end
  | Auto -> begin
    match c.bu with
    | Some plan when not (Bottom_up.matches_empty_value ~funs plan) ->
      if estimate_matches c.doc plan < min_step_tag_count c then `Bottom_up
      else `Top_down
    | Some _ | None -> `Top_down
  end

let chosen_strategy ?(funs = fun _ -> None) ?(strategy = Auto) c =
  chosen_strategy_one ~funs ~strategy (one c)

let select_one ?budget ?pool ?config ~funs ~strategy (c : one) =
  match chosen_strategy_one ~funs ~strategy c with
  | `Bottom_up ->
    span_counted n_bottom_up Array.length (fun () ->
        match c.bu with
        | Some plan -> Array.of_list (Bottom_up.run ?budget ?pool ~funs c.doc plan)
        | None -> assert false)
  | `Top_down ->
    span_counted n_top_down Array.length (fun () ->
        let auto = Lazy.force c.auto in
        let marks = Run.run ?budget ?pool ?config ~funs Run.marks_sem auto in
        let pos = Marks.positions (Document.tree c.doc) marks in
        if auto.Automaton.needs_dedup then
          Array.of_list (List.sort_uniq compare (Array.to_list pos))
        else begin
          (* marks are duplicate-free but the interleaving of a match
             formula with its scan continuation is not ordered *)
          Array.sort compare pos;
          pos
        end)

let select_impl ?budget ?pool ?config ~funs ~strategy c =
  match c with
  | [ single ] -> select_one ?budget ?pool ?config ~funs ~strategy single
  | branches ->
    (* union: evaluate each branch and merge, removing duplicates (each
       branch fans out on the pool internally) *)
    List.concat_map
      (fun b -> Array.to_list (select_one ?budget ?pool ?config ~funs ~strategy b))
      branches
    |> List.sort_uniq compare |> Array.of_list

let count_impl ?budget ?pool ?config ~funs ~strategy c =
  match c with
  | [ single ] -> begin
    match chosen_strategy_one ~funs ~strategy single with
    | `Bottom_up ->
      span_counted n_bottom_up Fun.id (fun () ->
          match single.bu with
          | Some plan -> List.length (Bottom_up.run ?budget ?pool ~funs single.doc plan)
          | None -> assert false)
    | `Top_down ->
      let auto = Lazy.force single.auto in
      if auto.Automaton.needs_dedup then
        Array.length (select_one ?budget ?pool ?config ~funs ~strategy:Top_down single)
      else
        span_counted n_top_down Fun.id (fun () ->
            Run.run ?budget ?pool ?config ~funs
              (Run.count_sem (Document.tree single.doc))
              auto)
  end
  | branches -> Array.length (select_impl ?budget ?pool ?config ~funs ~strategy branches)

(* Install fresh FM/tag probes for the duration of a traced evaluation
   and fold their readings into the trace: call/step counts become
   trace counters, the locate/extract wall time becomes the [Fm_locate]
   and [Fm_extract] sub-phases.  The previous probes are restored on
   exit; attribution is approximate when other domains evaluate
   concurrently (they feed whichever probe is installed). *)
let with_probes tr f =
  let open Sxsi_fm.Fm_index in
  let fm_prev = current_probe () in
  let tag_prev = Tag_index.current_probe () in
  let fm = create_probe () in
  let tag = Tag_index.create_probe () in
  set_probe (Some fm);
  Tag_index.set_probe (Some tag);
  Fun.protect
    ~finally:(fun () ->
      set_probe fm_prev;
      Tag_index.set_probe tag_prev;
      let get = Sxsi_obs.Counter.get in
      Trace.add_counter tr "fm_search_calls" (get fm.search_calls);
      Trace.add_counter tr "fm_search_steps" (get fm.search_steps);
      Trace.add_counter tr "fm_locate_calls" (get fm.locate_calls);
      Trace.add_counter tr "fm_locate_steps" (get fm.locate_steps);
      Trace.add_counter tr "fm_extract_calls" (get fm.extract_calls);
      Trace.add_counter tr "tag_jumps" (get tag.Tag_index.jump_calls);
      Trace.add_counter tr "tag_reads" (get tag.Tag_index.tag_reads);
      Trace.add_ns tr Trace.Fm_locate (get fm.locate_ns);
      Trace.add_ns tr Trace.Fm_extract (get fm.extract_ns))
    f

(* Time the [Run] phase of a traced evaluation and publish the run
   statistics (as deltas, so a reused caller-supplied config still
   reports this query alone). *)
let eval_traced trace config f =
  match trace with
  | None -> f config
  | Some tr ->
    let config = match config with Some c -> c | None -> Run.default_config () in
    let before = Run.copy_stats config.Run.stats in
    let result = with_probes tr (fun () -> Trace.time tr Trace.Run (fun () -> f (Some config))) in
    List.iter2
      (fun (k, a) (_, b) -> Trace.add_counter tr k (a - b))
      (Run.stats_assoc config.Run.stats)
      (Run.stats_assoc before);
    result

let finish_trace ~funs ~strategy trace c nresults =
  match trace with
  | None -> ()
  | Some tr ->
    Trace.set_counter tr "results" nresults;
    (match c with
    | [ single ] ->
      let bu =
        match chosen_strategy_one ~funs ~strategy single with
        | `Bottom_up -> 1
        | `Top_down -> 0
      in
      Trace.set_counter tr "bottom_up" bu;
      (* optimizer ledger, when the automaton was compiled (traced
         evaluations precompile, so this is the common case) *)
      if Lazy.is_val single.auto then begin
        match (Lazy.force single.auto).Automaton.opt with
        | Some o ->
          Trace.set_counter tr "opt_states_before" o.Automaton.opt_states_before;
          Trace.set_counter tr "opt_states_after" o.Automaton.opt_states_after;
          Trace.set_counter tr "opt_trans_before" o.Automaton.opt_trans_before;
          Trace.set_counter tr "opt_trans_after" o.Automaton.opt_trans_after;
          Trace.set_counter tr "opt_jump_tags" o.Automaton.opt_jump_tags
        | None -> ()
      end
    | _ -> ())

let select ?budget ?pool ?config ?(funs = fun _ -> None) ?(strategy = Auto) ?trace c =
  Sxsi_qos.Failpoint.hit eval_failpoint;
  if Option.is_some trace then precompile ?trace c;
  let nodes =
    span_counted n_select Array.length (fun () ->
        with_budget budget (fun () ->
            eval_traced trace config (fun config ->
                select_impl ?budget ?pool ?config ~funs ~strategy c)))
  in
  charge_results budget (Array.length nodes);
  finish_trace ~funs ~strategy trace c (Array.length nodes);
  nodes

let count ?budget ?pool ?config ?(funs = fun _ -> None) ?(strategy = Auto) ?trace c =
  Sxsi_qos.Failpoint.hit eval_failpoint;
  if Option.is_some trace then precompile ?trace c;
  let n =
    span_counted n_count Fun.id (fun () ->
        with_budget budget (fun () ->
            eval_traced trace config (fun config ->
                count_impl ?budget ?pool ?config ~funs ~strategy c)))
  in
  finish_trace ~funs ~strategy trace c n;
  n

let select_preorders ?budget ?pool ?config ?funs ?strategy ?trace c =
  let nodes = select ?budget ?pool ?config ?funs ?strategy ?trace c in
  J.with_span J.Engine n_materialize (fun () ->
      maybe_time trace Trace.Materialize (fun () ->
          Array.map (Document.preorder (one c).doc) nodes))

(* Minimum result count before serialization fans out on a pool. *)
let serialize_par_cutoff = 4

let serialize_to ?budget ?pool ?config ?funs ?strategy ?trace buf c =
  let nodes = select ?budget ?pool ?config ?funs ?strategy ?trace c in
  let doc = (one c).doc in
  (* Byte accounting is shared and atomic: parallel serialization adds
     chunk sizes in scheduling order, but whether the total passes the
     byte budget does not depend on that order, so the outcome is
     still complete-or-[Exceeded]. *)
  let serialize x =
    let s = Document.serialize doc x in
    charge_bytes budget (String.length s);
    s
  in
  J.with_span J.Engine n_materialize (fun () ->
      maybe_time trace Trace.Materialize (fun () ->
          with_budget budget (fun () ->
              match pool with
          | Some p
            when Sxsi_par.Pool.size p > 1 && Array.length nodes >= serialize_par_cutoff
            ->
            (* subtrees serialize independently; append in document order *)
            let parts = Sxsi_par.Pool.map_array p serialize nodes in
            Array.iter (Buffer.add_string buf) parts
          | _ -> Array.iter (fun x -> Buffer.add_string buf (serialize x)) nodes)));
  Array.length nodes

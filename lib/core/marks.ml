open Sxsi_tree

type t =
  | Empty
  | One of int
  | Cat of t * t
  | Tagged_range of int list * int * int

let range_count ti tags lo hi =
  List.fold_left
    (fun acc tag -> acc + Tree_backend.rank_tag ti tag hi - Tree_backend.rank_tag ti tag lo)
    0 tags

let rec count ti = function
  | Empty -> 0
  | One _ -> 1
  | Cat (a, b) -> count ti a + count ti b
  | Tagged_range (tags, lo, hi) -> range_count ti tags lo hi

let iter ti f m =
  let rec go = function
    | Empty -> ()
    | One x -> f x
    | Cat (a, b) ->
      go a;
      go b
    | Tagged_range (tags, lo, hi) ->
      List.iter
        (fun tag ->
          let jlo = Tree_backend.rank_tag ti tag lo
          and jhi = Tree_backend.rank_tag ti tag hi in
          for j = jlo to jhi - 1 do
            f (Tree_backend.select_tag ti tag j)
          done)
        tags
  in
  go m

let positions ti m =
  let n = count ti m in
  let a = Array.make n 0 in
  let i = ref 0 in
  iter ti
    (fun x ->
      a.(!i) <- x;
      incr i)
    m;
  a

(** Result sets of the marking automaton (§5.5.3-4): sequences of
    marked nodes with O(1) concatenation, plus lazy "every [tag] in a
    position range" leaves so that whole-subtree collections cost O(1)
    during the run and are expanded only at serialization time.

    The engine's evaluation discipline guarantees marks are produced in
    document order without duplicates, so [count] and [positions] never
    need to sort or deduplicate. *)

type t =
  | Empty
  | One of int                                   (* a node position *)
  | Cat of t * t
  | Tagged_range of int list * int * int         (* tags, lo, hi: all
                                                    nodes in [lo, hi)
                                                    carrying one of the
                                                    tags *)

val range_count : Sxsi_tree.Tree_backend.t -> int list -> int -> int -> int
(** Number of nodes in a position range carrying one of the tags. *)

val count : Sxsi_tree.Tree_backend.t -> t -> int
val positions : Sxsi_tree.Tree_backend.t -> t -> int array
(** Marked node positions.  Single-tag runs come out in document
    order; multi-tag ranges are grouped by tag, so callers sort when
    order matters (the engine does). *)

val iter : Sxsi_tree.Tree_backend.t -> (int -> unit) -> t -> unit

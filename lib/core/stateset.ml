type t = {
  id : int;
  states : int array;
}

(* The hash-consing table is process-global and statesets are created
   while queries run, so concurrent domains (the serve front end) must
   serialize access to it. *)
let table : (int list, t) Hashtbl.t = Hashtbl.create 64
let counter = ref 0
let lock = Mutex.create ()
let lock_site = Sxsi_obs.Contend.site "stateset.cons"

let of_list l =
  let key = List.sort_uniq compare l in
  Sxsi_obs.Contend.with_lock lock_site lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some s -> s
      | None ->
        let s = { id = !counter; states = Array.of_list key } in
        incr counter;
        Hashtbl.add table key s;
        s)

let empty = of_list []
let is_empty s = Array.length s.states = 0

let mem s q =
  (* sets are tiny (query-sized); linear scan beats binary search *)
  let n = Array.length s.states in
  let rec go i = i < n && (s.states.(i) = q || go (i + 1)) in
  go 0

let cardinal s = Array.length s.states
let iter f s = Array.iter f s.states
let to_list s = Array.to_list s.states
let singleton s = if Array.length s.states = 1 then Some s.states.(0) else None

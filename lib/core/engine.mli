(** Public query interface of SXSI: parse/compile once, then count,
    materialize or serialize, with the evaluation strategy of §6.6:
    selective single-text predicates of the right shape run bottom-up
    from the text index; everything else runs the top-down automaton.

    Custom predicates (the [PSSM(...)] hook of §6.7) are supplied
    through a {!Run.text_funs} registry. *)

type compiled

type strategy = Auto | Top_down | Bottom_up

val prepare : Sxsi_xml.Document.t -> string -> compiled
(** Parse and compile a Core+ query against a document.
    @raise Sxsi_xpath.Xpath_parser.Parse_error on syntax errors.
    @raise Sxsi_auto.Compile.Unsupported on unsupported constructs. *)

val prepare_path : Sxsi_xml.Document.t -> Sxsi_xpath.Ast.path -> compiled

val precompile : compiled -> unit
(** Force the automaton of every union branch now.  Compilation is
    otherwise lazy and not safe to trigger from several domains at
    once; a compiled value shared across domains (the service layer's
    query cache) must be precompiled first. *)

val automaton : compiled -> Sxsi_auto.Automaton.t
val bottom_up_plan : compiled -> Bottom_up.plan option

val chosen_strategy :
  ?funs:Run.text_funs -> ?strategy:strategy -> compiled -> [ `Top_down | `Bottom_up ]
(** The strategy [Auto] resolves to, following the paper's rule: a
    bottom-up-shaped query runs bottom-up when the text predicate
    selects fewer texts than the rarest step tag occurs. *)

val count :
  ?config:Run.config -> ?funs:Run.text_funs -> ?strategy:strategy -> compiled -> int

val select :
  ?config:Run.config -> ?funs:Run.text_funs -> ?strategy:strategy -> compiled ->
  int array
(** Selected node positions in document order. *)

val select_preorders :
  ?config:Run.config -> ?funs:Run.text_funs -> ?strategy:strategy -> compiled ->
  int array
(** Global identifiers (preorders) of the selected nodes. *)

val serialize_to :
  ?config:Run.config -> ?funs:Run.text_funs -> ?strategy:strategy ->
  Buffer.t -> compiled -> int
(** Materialize and serialize every result into the buffer; returns the
    number of results. *)

(** Public query interface of SXSI: parse/compile once, then count,
    materialize or serialize, with the evaluation strategy of §6.6:
    selective single-text predicates of the right shape run bottom-up
    from the text index; everything else runs the top-down automaton.

    Custom predicates (the [PSSM(...)] hook of §6.7) are supplied
    through a {!Run.text_funs} registry. *)

type compiled

type strategy = Auto | Top_down | Bottom_up

val prepare :
  ?trace:Sxsi_obs.Trace.t -> ?optimize:bool -> Sxsi_xml.Document.t -> string -> compiled
(** Parse and compile a Core+ query against a document.  With [trace],
    parsing time is recorded in its [Parse] phase.  [optimize] is
    passed to {!Sxsi_auto.Compile.compile}: whether the whole-query
    {!Sxsi_auto.Optimize} pass runs over the compiled automaton
    (default: on, unless [SXSI_OPTIMIZE] says otherwise).  Each
    optimized compilation also drops an [engine/optimize] instant
    event in the flight recorder, carrying the state counts
    before/after.
    @raise Sxsi_xpath.Xpath_parser.Parse_error on syntax errors.
    @raise Sxsi_auto.Compile.Unsupported on unsupported constructs. *)

val prepare_path :
  ?optimize:bool -> Sxsi_xml.Document.t -> Sxsi_xpath.Ast.path -> compiled

val precompile : ?trace:Sxsi_obs.Trace.t -> compiled -> unit
(** Force the automaton of every union branch now.  Compilation is
    otherwise lazy and not safe to trigger from several domains at
    once; a compiled value shared across domains (the service layer's
    query cache) must be precompiled first.  With [trace], the forcing
    time lands in the [Compile] phase (near zero when already
    forced). *)

val automaton : compiled -> Sxsi_auto.Automaton.t
val bottom_up_plan : compiled -> Bottom_up.plan option

val chosen_strategy :
  ?funs:Run.text_funs -> ?strategy:strategy -> compiled -> [ `Top_down | `Bottom_up ]
(** The strategy [Auto] resolves to, following the paper's rule: a
    bottom-up-shaped query runs bottom-up when the text predicate
    selects fewer texts than the rarest step tag occurs. *)

(** {1 Evaluation}

    Every entry point takes an optional [trace].  When present, the
    evaluation is instrumented: any pending compilation is forced under
    the [Compile] phase, the evaluation itself is timed as [Run]
    (materialization steps as [Materialize]), fresh FM-index and
    tag-index probes are installed for the duration of the call, and
    the trace gains the counters [visited], [marked], [jumps],
    [memo_hits] (run statistics, reported as deltas even for a reused
    [config]), [fm_search_calls], [fm_search_steps], [fm_locate_calls],
    [fm_locate_steps], [fm_extract_calls], [tag_jumps], [tag_reads]
    (probe readings), [results], and — for single-branch queries —
    [bottom_up] (1 when the bottom-up strategy ran).  Probe readings
    are approximate when other domains evaluate concurrently.  Without
    [trace] the only cost left in the hot paths is a disabled probe
    check: one atomic load and branch per FM or tag-jump call.

    Every entry point also takes an optional
    [budget] ({!Sxsi_qos.Budget.t}).  When present the deadline is
    checked once up front (a request that already blew it fails before
    doing work), the budget is installed ambiently so FM-index loops
    and pool chunks charge it, every evaluator step calls the sampled
    {!Sxsi_qos.Budget.check}, [select]/[select_preorders] charge the
    result count against the budget's result limit, and [serialize_to]
    charges serialized bytes against its byte limit.  A blown budget
    raises {!Sxsi_qos.Budget.Exceeded}; results are never truncated —
    the caller gets the complete answer or the exception.  Each entry
    point also triggers the ["engine.eval"]
    {!Sxsi_qos.Failpoint} site first, for fault-injection tests. *)

val count :
  ?budget:Sxsi_qos.Budget.t ->
  ?pool:Sxsi_par.Pool.t ->
  ?config:Run.config -> ?funs:Run.text_funs -> ?strategy:strategy ->
  ?trace:Sxsi_obs.Trace.t -> compiled -> int

val select :
  ?budget:Sxsi_qos.Budget.t ->
  ?pool:Sxsi_par.Pool.t ->
  ?config:Run.config -> ?funs:Run.text_funs -> ?strategy:strategy ->
  ?trace:Sxsi_obs.Trace.t -> compiled -> int array
(** Selected node positions in document order.

    Every evaluation entry point also takes an optional [pool]: with a
    pool of size [> 1], top-down marking scans partition across subtree
    chunks, bottom-up plans partition across text-hit ranges, and
    serialization fans out per result — all with deterministic
    document-order merging, so counts, positions and serialized bytes
    are identical to the sequential run.  Small inputs fall back to the
    sequential path.  The [compiled] value must be {!precompile}d
    before it is shared across domains; passing a pool here is safe
    because the evaluating domain forces compilation before fanning
    out. *)

val select_preorders :
  ?budget:Sxsi_qos.Budget.t ->
  ?pool:Sxsi_par.Pool.t ->
  ?config:Run.config -> ?funs:Run.text_funs -> ?strategy:strategy ->
  ?trace:Sxsi_obs.Trace.t -> compiled -> int array
(** Global identifiers (preorders) of the selected nodes. *)

val serialize_to :
  ?budget:Sxsi_qos.Budget.t ->
  ?pool:Sxsi_par.Pool.t ->
  ?config:Run.config -> ?funs:Run.text_funs -> ?strategy:strategy ->
  ?trace:Sxsi_obs.Trace.t -> Buffer.t -> compiled -> int
(** Materialize and serialize every result into the buffer; returns the
    number of results. *)

(** Bottom-up evaluation (§5.4.2): for queries of the shape
    [/axis::t1/.../axis::tk\[text-predicate\]], ask the text index for
    the matching texts first, then verify each candidate's upward path
    to the root — a huge win when the predicate is selective.

    Shared ancestors are verified once through a (step, node) memo
    table, which plays the role of the shift-reduce bookkeeping of the
    paper's Figure 6. *)

type plan

val plan : Sxsi_xml.Document.t -> Sxsi_xpath.Ast.path -> plan option
(** [Some] when the query has the bottom-up-compatible shape: child or
    descendant steps, no intermediate filters, and a single text
    predicate on the last step applied to the node's own value — where
    the last step selects text nodes, or elements whose tag the index
    knows to be PCDATA-only (so "one matching text = one matching
    node" holds, §6.6). *)

val pred_of : plan -> Sxsi_auto.Automaton.pred_descr

val matches_empty_value : ?funs:Run.text_funs -> plan -> bool
(** Whether the predicate accepts the empty string — if so, nodes
    without texts qualify and the bottom-up strategy is unsound. *)

val run :
  ?budget:Sxsi_qos.Budget.t -> ?pool:Sxsi_par.Pool.t -> ?funs:Run.text_funs ->
  Sxsi_xml.Document.t -> plan -> int list
(** Selected node positions, sorted (document order).  With a [pool] of
    size [> 1] and enough matching texts, candidate verification is
    chunked across the pool's domains; the sorted, deduplicated result
    is identical to the sequential run.  With a [budget], each
    candidate text charges one {!Sxsi_qos.Budget.check} step: the run
    completes in full or raises {!Sxsi_qos.Budget.Exceeded}. *)

val run_with_text_time :
  ?budget:Sxsi_qos.Budget.t -> ?pool:Sxsi_par.Pool.t -> ?funs:Run.text_funs ->
  Sxsi_xml.Document.t -> plan -> float * int list
(** Like {!run}, also reporting the seconds spent in the text-index
    phase (for the Figure 15 time split). *)

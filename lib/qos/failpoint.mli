(** Named fault-injection sites.

    A failpoint is a named hook compiled into a code path.  Inactive —
    the production state — a site costs one [Atomic.get] and a branch,
    mirroring the probe-hook design in [Sxsi_fm.Fm_index].  Activated
    (programmatically via {!activate}, or from the environment via
    {!init_from_env}) a site injects one of three faults when
    {!hit}:

    - {!Fail}: raise {!Injected};
    - {!Delay_ms}: sleep, then continue — for deadline and race
      testing;
    - {!Return_err}: raise {!Injected} carrying a caller-visible
      error message.

    Sites are identified by string name in a process-global registry;
    looking a site up with {!site} at module-init time keeps the name
    → site resolution out of hot paths. *)

type action =
  | Fail  (** Raise {!Injected} with the site's name as the message. *)
  | Delay_ms of int  (** Sleep that many milliseconds, then proceed. *)
  | Return_err of string  (** Raise {!Injected} with this message. *)
(** What an activated site does on {!hit}. *)

exception Injected of { site : string; message : string }
(** Raised by {!hit} at a site activated with {!Fail} or
    {!Return_err}. *)

type site
(** An activation slot for one named failpoint. *)

val site : string -> site
(** [site name] returns the registry entry for [name], creating an
    inactive one on first use.  Idempotent: every caller of
    [site "x"] shares one slot. *)

val name : site -> string
(** The name the site was registered under. *)

val hit : site -> unit
(** Trigger the site: no-op when inactive (one atomic load),
    otherwise perform the activated {!action}. *)

val activate : string -> action -> unit
(** Arm the named site (creating it if needed). *)

val deactivate : string -> unit
(** Disarm the named site; unknown names are ignored. *)

val deactivate_all : unit -> unit
(** Disarm every site (tests). *)

val active : unit -> (string * action) list
(** Currently armed sites, sorted by name. *)

val parse_action : string -> (action, string) result
(** Parse one action spec: ["fail"], ["delay:<ms>"], or
    ["err:<message>"]. *)

val activate_spec : string -> (unit, string) result
(** Parse and arm a [;]-separated spec of [name=action] pairs, e.g.
    ["service.dispatch=delay:5;engine.eval=fail"].  On a malformed
    entry nothing is armed and the error names the bad entry. *)

val env_var : string
(** ["SXSI_FAILPOINTS"] — the environment variable consulted by
    {!init_from_env}. *)

val init_from_env : unit -> unit
(** Arm sites from [$SXSI_FAILPOINTS] if set.  Called by the service
    and the CLI at startup; malformed specs abort with a message on
    [stderr] rather than silently running without the requested
    faults.  Idempotent. *)

(** Cooperative per-request resource budgets.

    A budget bounds a single query evaluation along four axes: wall
    clock (an absolute deadline on the {!Sxsi_obs.Clock} timeline),
    evaluator steps, result cardinality, and output bytes.  Budgets
    are cooperative: hot loops call {!check} once per unit of work,
    and a blown budget surfaces as the typed exception {!Exceeded}
    rather than a truncated result.

    {2 Cost model}

    [check] is one [Atomic.fetch_and_add] on the fast path.  The
    expensive part — reading the clock and comparing against the
    deadline — runs only every [check_every] steps (a power of two,
    default {!val:default_check_every}), plus unconditionally on the
    very first step so a request that arrives already past its
    deadline fails before doing any work.  Result and byte accounting
    ({!add_results}, {!add_bytes}) is exact and checked immediately.

    {2 Sharing and cancellation}

    One budget is shared by every domain working on the same request:
    step/result/byte counters are atomics, and the first check that
    detects an overrun records the {!type:reason} in a [tripped] flag
    with a compare-and-set.  Subsequent checks — including those in
    sibling chunks running on other pool domains — observe the flag at
    their next sampled check and raise [Exceeded] with the {e same}
    recorded reason, so the exception a caller sees is deterministic
    even though which chunk trips first is not.  Chunks cancelled this
    way are counted in {!cancelled_chunks_total}.

    {2 Ambient propagation}

    Deep callees (the FM-index search loops) check the budget without
    parameter threading: {!with_ambient} installs a budget in
    domain-local storage for the extent of a callback, and
    {!ambient} reads it back.  [Sxsi_par.Pool.fork] captures the
    forking domain's ambient budget and re-installs it inside the
    task, so the ambient budget follows the request across domains. *)

type reason =
  | Deadline  (** The wall-clock deadline passed. *)
  | Steps  (** The evaluator step budget ran out. *)
  | Results  (** The result-count budget ran out. *)
  | Bytes  (** The output-byte budget ran out. *)
(** Which axis of the budget was exhausted first. *)

exception Exceeded of reason
(** Raised by {!check}, {!add_results} and {!add_bytes} when the
    budget is exhausted, and by every later check on the same budget
    (with the originally recorded reason). *)

val reason_to_string : reason -> string
(** Upper-case wire code for a reason: ["DEADLINE"], ["BUDGET"]...
    Deadline overruns map to ["DEADLINE"]; every other axis maps to
    ["BUDGET"], matching the protocol error codes. *)

val reason_name : reason -> string
(** Lower-case human label: ["deadline"], ["steps"], ["results"],
    ["bytes"]. *)

type t
(** A budget context for one request.  Safe to share across domains. *)

val default_check_every : int
(** Default sampling interval for deadline checks, in steps. *)

val create :
  ?deadline_ns:int ->
  ?max_steps:int ->
  ?max_results:int ->
  ?max_bytes:int ->
  ?check_every:int ->
  unit ->
  t
(** [create ()] with no limits never trips.  [deadline_ns] is an
    absolute {!Sxsi_obs.Clock.now_ns} timestamp.  [check_every] is
    rounded up to a power of two; step-limit enforcement is exact to
    within one sampling interval. *)

val of_limits :
  ?deadline_ms:int ->
  ?max_steps:int ->
  ?max_results:int ->
  ?max_bytes:int ->
  unit ->
  t option
(** Convenience for entry points: builds a budget whose deadline is
    [deadline_ms] milliseconds from now.  Non-positive or absent
    limits are dropped; returns [None] when no limit remains, so
    callers can skip budget plumbing entirely. *)

val deadline_ns : t -> int option
(** The absolute deadline, if any. *)

val remaining_ns : t -> int option
(** Nanoseconds until the deadline, clamped to zero; [None] when the
    budget has no deadline. *)

val check : t -> unit
(** Account one step of work; raise {!Exceeded} if the budget is
    exhausted.  One atomic increment on the fast path; see the cost
    model above. *)

val check_now : t -> unit
(** Like {!check} but forces the deadline comparison regardless of
    sampling.  Entry points call this once before starting work. *)

val add_results : t -> int -> unit
(** Account [n] results; raise {!Exceeded}[ Results] when the total
    passes the result budget.  Exact (not sampled). *)

val add_bytes : t -> int -> unit
(** Account [n] output bytes; raise {!Exceeded}[ Bytes] when the total
    passes the byte budget.  Exact (not sampled). *)

val tripped : t -> reason option
(** The recorded overrun reason, if the budget has tripped. *)

val steps : t -> int
(** Steps accounted so far (across all domains). *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** [with_ambient b f] runs [f] with [b] installed as the calling
    domain's ambient budget, restoring the previous one on exit
    (exceptions included). *)

val ambient : unit -> t option
(** The calling domain's ambient budget, if one is installed. *)

val deadline_exceeded_total : Sxsi_obs.Counter.t
(** Process-wide count of budgets tripped by their deadline. *)

val exceeded_total : Sxsi_obs.Counter.t
(** Process-wide count of budgets tripped for any reason. *)

val cancelled_chunks_total : Sxsi_obs.Counter.t
(** Process-wide count of checks that raised because a {e sibling}
    had already tripped the shared budget — i.e. chunks cancelled
    cooperatively rather than overrunning themselves. *)

module Clock = Sxsi_obs.Clock
module Counter = Sxsi_obs.Counter
module J = Sxsi_obs.Journal

let n_trip = J.name "qos/budget_trip"
let n_cancel = J.name "qos/budget_cancel"

type reason = Deadline | Steps | Results | Bytes

let reason_index = function Deadline -> 0 | Steps -> 1 | Results -> 2 | Bytes -> 3

exception Exceeded of reason

let reason_to_string = function
  | Deadline -> "DEADLINE"
  | Steps | Results | Bytes -> "BUDGET"

let reason_name = function
  | Deadline -> "deadline"
  | Steps -> "steps"
  | Results -> "results"
  | Bytes -> "bytes"

type t = {
  deadline_ns : int option;
  max_steps : int option;
  max_results : int option;
  max_bytes : int option;
  mask : int;                       (* check_every - 1; check_every is 2^k *)
  steps : int Atomic.t;
  results : int Atomic.t;
  bytes : int Atomic.t;
  tripped : reason option Atomic.t;
}

let default_check_every = 1024

let deadline_exceeded_total = Counter.create ()
let exceeded_total = Counter.create ()
let cancelled_chunks_total = Counter.create ()

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?deadline_ns ?max_steps ?max_results ?max_bytes
    ?(check_every = default_check_every) () =
  let check_every = round_pow2 (max 1 check_every) in
  {
    deadline_ns;
    max_steps;
    max_results;
    max_bytes;
    mask = check_every - 1;
    steps = Atomic.make 0;
    results = Atomic.make 0;
    bytes = Atomic.make 0;
    tripped = Atomic.make None;
  }

let pos = function Some n when n > 0 -> Some n | Some _ | None -> None

let of_limits ?deadline_ms ?max_steps ?max_results ?max_bytes () =
  let deadline_ns =
    match pos deadline_ms with
    | None -> None
    | Some ms -> Some (Clock.now_ns () + (ms * 1_000_000))
  in
  let max_steps = pos max_steps
  and max_results = pos max_results
  and max_bytes = pos max_bytes in
  match (deadline_ns, max_steps, max_results, max_bytes) with
  | None, None, None, None -> None
  | _ -> Some (create ?deadline_ns ?max_steps ?max_results ?max_bytes ())

let deadline_ns t = t.deadline_ns

let remaining_ns t =
  match t.deadline_ns with
  | None -> None
  | Some d -> Some (max 0 (d - Clock.now_ns ()))

let tripped t = Atomic.get t.tripped
let steps t = Atomic.get t.steps

(* First overrun wins: record it and raise; a loser (or a sibling
   observing the flag) raises the recorded reason and counts as a
   cooperative cancellation. *)
let trip t reason =
  if Atomic.compare_and_set t.tripped None (Some reason) then begin
    Counter.incr exceeded_total;
    if reason = Deadline then Counter.incr deadline_exceeded_total;
    J.instant J.Qos n_trip ~a:(reason_index reason) ();
    raise (Exceeded reason)
  end
  else
    match Atomic.get t.tripped with
    | Some r ->
      Counter.incr cancelled_chunks_total;
      J.instant J.Qos n_cancel ~a:(reason_index r) ();
      raise (Exceeded r)
    | None -> assert false            (* tripped is never reset *)

let slow_check t =
  (match Atomic.get t.tripped with
  | Some r ->
    Counter.incr cancelled_chunks_total;
    J.instant J.Qos n_cancel ~a:(reason_index r) ();
    raise (Exceeded r)
  | None -> ());
  (match t.max_steps with
  | Some m when Atomic.get t.steps > m -> trip t Steps
  | Some _ | None -> ());
  match t.deadline_ns with
  | Some d when Clock.now_ns () > d -> trip t Deadline
  | Some _ | None -> ()

let check t =
  let n = Atomic.fetch_and_add t.steps 1 in
  if n land t.mask = 0 then slow_check t

let check_now t =
  Atomic.incr t.steps;
  slow_check t

let add_results t n =
  match t.max_results with
  | None -> ()
  | Some m ->
    let total = Atomic.fetch_and_add t.results n + n in
    if total > m then trip t Results

let add_bytes t n =
  match t.max_bytes with
  | None -> ()
  | Some m ->
    let total = Atomic.fetch_and_add t.bytes n + n in
    if total > m then trip t Bytes

(* Ambient budget: one slot per domain, saved/restored around the
   callback so nested installs (re-entrant engine calls) unwind. *)
let ambient_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_ambient b f =
  let slot = Domain.DLS.get ambient_key in
  let prev = !slot in
  slot := Some b;
  Fun.protect ~finally:(fun () -> slot := prev) f

let ambient () = !(Domain.DLS.get ambient_key)

module Clock = Sxsi_obs.Clock
module J = Sxsi_obs.Journal

let n_transition = J.name "qos/breaker_transition"

type state = Closed | Open | Half_open

let state_index = function Closed -> 0 | Open -> 1 | Half_open -> 2

type t = {
  threshold : int;
  cooldown_ns : int;
  lock : Mutex.t;
  mutable st : state;
  mutable failures : int;           (* consecutive, in Closed *)
  mutable open_until : int;         (* Clock timestamp, in Open *)
}

let create ?(threshold = 5) ?(cooldown_ms = 1000) () =
  {
    threshold = max 1 threshold;
    cooldown_ns = max 0 cooldown_ms * 1_000_000;
    lock = Mutex.create ();
    st = Closed;
    failures = 0;
    open_until = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let state t = locked t (fun () -> t.st)

(* All state changes funnel through here (under the lock) so every
   transition leaves a journal instant: a = from, b = to. *)
let transition t st' =
  if t.st <> st' then
    J.instant J.Qos n_transition ~a:(state_index t.st) ~b:(state_index st') ();
  t.st <- st'

let allow t =
  locked t (fun () ->
      match t.st with
      | Closed -> true
      | Half_open -> false            (* a probe is already in flight *)
      | Open ->
        if Clock.now_ns () >= t.open_until then begin
          transition t Half_open;     (* admit exactly one probe *)
          true
        end
        else false)

let success t =
  locked t (fun () ->
      t.failures <- 0;
      transition t Closed)

let failure t =
  locked t (fun () ->
      match t.st with
      | Half_open | Open ->
        (* a probe blew its deadline (or a straggler reported late):
           restart the cooldown *)
        transition t Open;
        t.failures <- t.threshold;
        t.open_until <- Clock.now_ns () + t.cooldown_ns
      | Closed ->
        t.failures <- t.failures + 1;
        if t.failures >= t.threshold then begin
          transition t Open;
          t.open_until <- Clock.now_ns () + t.cooldown_ns
        end)

let retry_after_ms t =
  locked t (fun () ->
      match t.st with
      | Closed -> 0
      | Half_open -> 1                (* probe pending; retry shortly *)
      | Open ->
        let ns = max 0 (t.open_until - Clock.now_ns ()) in
        (ns + 999_999) / 1_000_000)

let is_open t =
  locked t (fun () ->
      match t.st with
      | Closed -> false
      | Half_open -> true
      | Open -> Clock.now_ns () < t.open_until)

(** Per-resource circuit breakers.

    A breaker protects a resource (in the service: one loaded
    document) from repeated deadline blowups.  State machine:

    - {b Closed} — requests flow; consecutive failures are counted
      and a success resets the count.  After [threshold] consecutive
      failures the breaker {e opens}.
    - {b Open} — {!allow} refuses immediately (callers answer
      [ERR BREAKER] without doing work) until [cooldown_ms] elapses.
    - {b Half-open} — after the cooldown, exactly one probe request
      is admitted.  Its success closes the breaker; its failure
      reopens it for another full cooldown.

    All transitions happen inside {!allow}, {!success} and
    {!failure} under the breaker's own mutex; these are
    request-granularity operations, never in evaluation hot loops.
    Time comes from {!Sxsi_obs.Clock}. *)

type t
(** One breaker.  Safe to share across domains. *)

type state =
  | Closed  (** Normal operation. *)
  | Open  (** Refusing requests until the cooldown elapses. *)
  | Half_open  (** One probe in flight; its outcome decides. *)
(** Observable breaker state. *)

val create : ?threshold:int -> ?cooldown_ms:int -> unit -> t
(** [create ()] makes a closed breaker that opens after [threshold]
    (default 5) consecutive failures and stays open for
    [cooldown_ms] (default 1000) milliseconds. *)

val state : t -> state
(** Current state (transitions Open → Half-open lazily, so a cooled-
    down breaker reads as [Half_open] only once {!allow} admits the
    probe). *)

val allow : t -> bool
(** Ask to admit a request.  [true] in the closed state, [false]
    while open; the first [allow] after the cooldown admits a single
    half-open probe and refuses further requests until {!success} or
    {!failure} settles it. *)

val success : t -> unit
(** Report a request that completed in budget: resets the failure
    count; closes a half-open breaker. *)

val failure : t -> unit
(** Report a deadline blowup: bumps the failure count (opening the
    breaker at the threshold); reopens a half-open breaker. *)

val retry_after_ms : t -> int
(** Milliseconds until the breaker will next admit a probe; [0] when
    not refusing. *)

val is_open : t -> bool
(** [true] while the breaker refuses requests (open and not yet
    cooled down, or waiting on a half-open probe). *)

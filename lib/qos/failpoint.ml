type action = Fail | Delay_ms of int | Return_err of string

exception Injected of { site : string; message : string }

type site = { name : string; armed : action option Atomic.t }

(* Registry of every site ever named; guarded by [registry_lock] so
   [site] can be called from any domain.  [hit] never touches the
   registry — only the site's own atomic slot. *)
let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let site name =
  Mutex.lock registry_lock;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
      let s = { name; armed = Atomic.make None } in
      Hashtbl.add registry name s;
      s
  in
  Mutex.unlock registry_lock;
  s

let name s = s.name

let hit s =
  match Atomic.get s.armed with
  | None -> ()
  | Some Fail -> raise (Injected { site = s.name; message = s.name })
  | Some (Delay_ms ms) -> if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)
  | Some (Return_err message) -> raise (Injected { site = s.name; message })

let activate n action = Atomic.set (site n).armed (Some action)

let deactivate n =
  Mutex.lock registry_lock;
  let s = Hashtbl.find_opt registry n in
  Mutex.unlock registry_lock;
  match s with None -> () | Some s -> Atomic.set s.armed None

let deactivate_all () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ s -> Atomic.set s.armed None) registry;
  Mutex.unlock registry_lock

let active () =
  Mutex.lock registry_lock;
  let out =
    Hashtbl.fold
      (fun n s acc ->
        match Atomic.get s.armed with None -> acc | Some a -> (n, a) :: acc)
      registry []
  in
  Mutex.unlock registry_lock;
  List.sort compare out

let parse_action spec =
  match String.index_opt spec ':' with
  | None -> (
    match spec with
    | "fail" -> Ok Fail
    | _ -> Error (Printf.sprintf "unknown failpoint action %S" spec))
  | Some i -> (
    let kind = String.sub spec 0 i in
    let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
    match kind with
    | "delay" -> (
      match int_of_string_opt arg with
      | Some ms when ms >= 0 -> Ok (Delay_ms ms)
      | Some _ | None -> Error (Printf.sprintf "bad delay %S" arg))
    | "err" -> Ok (Return_err arg)
    | _ -> Error (Printf.sprintf "unknown failpoint action %S" spec))

let activate_spec spec =
  let entries =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parse entry =
    match String.index_opt entry '=' with
    | None -> Error (Printf.sprintf "bad failpoint entry %S (want name=action)" entry)
    | Some i ->
      let n = String.sub entry 0 i in
      let a = String.sub entry (i + 1) (String.length entry - i - 1) in
      if n = "" then Error (Printf.sprintf "bad failpoint entry %S" entry)
      else Result.map (fun action -> (n, action)) (parse_action a)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
      match parse e with Ok p -> collect (p :: acc) rest | Error _ as e -> e)
  in
  match collect [] entries with
  | Error _ as e -> e
  | Ok pairs ->
    List.iter (fun (n, a) -> activate n a) pairs;
    Ok ()

let env_var = "SXSI_FAILPOINTS"

let env_done = Atomic.make false

let init_from_env () =
  if not (Atomic.exchange env_done true) then
    match Sys.getenv_opt env_var with
    | None | Some "" -> ()
    | Some spec -> (
      match activate_spec spec with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "sxsi: bad %s: %s\n%!" env_var msg;
        exit 2)

(** The SXSI document: the XML data modelled as in §2 of the paper and
    represented by the succinct tree + tag index + text collection.

    Model: an extra root labeled ["&"] sits above the document element;
    every non-empty character-data run becomes a leaf labeled ["#"]
    whose string is stored in the text collection; a node with
    attributes gets a first child labeled ["@"], below which each
    attribute [@a=v] contributes a node labeled [a] (registered in the
    tag table as ["@a"], so element and attribute tests never collide)
    with a ["%"]-labeled leaf holding [v].

    A [node] is the position of its opening parenthesis in the
    balanced-parentheses sequence; [nil] (= -1) means "no node". *)

type t

type node = int

val nil : node

type backend = [ `Bp | `Grammar ]
(** The physical tree representation: balanced parentheses + tag index
    (the default) or the grammar-compressed SLP
    ({!Sxsi_tree.Tree_backend}).  Query results are byte-identical
    either way. *)

exception Unknown_backend of string
(** Raised by {!load} when a container's header names a backend this
    build does not know. *)

(** {1 Construction} *)

val of_xml : ?pool:Sxsi_par.Pool.t -> ?backend:backend ->
  ?keep_whitespace:bool -> ?sample_rate:int -> ?store_plain:bool ->
  string -> t
(** Parse and index an XML document.  [keep_whitespace] (default
    [true]) controls whether whitespace-only texts become text nodes.
    [backend] picks the tree representation; it defaults to the
    [SXSI_BACKEND] environment variable (["bp"] or ["grammar"]), or
    [`Bp].  With a [pool] of size [> 1], the tree structures and the
    text collection are built concurrently (and each chunks its own
    work across the pool); the resulting document is identical to a
    sequential build.
    @raise Xml_parser.Parse_error on malformed input. *)

val build : ?pool:Sxsi_par.Pool.t -> ?backend:backend ->
  ?keep_whitespace:bool -> ?sample_rate:int -> ?store_plain:bool ->
  string -> t
(** Alias of {!of_xml} under the name the parallel-build entry point is
    documented by. *)

val save : t -> string -> unit
(** Write the whole self-index to a file (versioned container around
    the runtime representation: magic, backend tag, payload length, MD5
    digest, payload), so later sessions pay the §6.2 "loading time"
    instead of reconstruction. *)

val load : string -> t
(** Read an index written by {!save}.
    @raise Unknown_backend when the header carries a backend tag this
    build does not implement.
    @raise Failure on a bad magic number, version mismatch, truncated
    file, or checksum failure — never crashes on corrupt input. *)

val of_texts_override : t -> Sxsi_text.Text_collection.t -> t
(** Replace the text collection (the modularity hook of §6.6-6.7: plug
    a word-based or run-length index built over [texts t]). *)

(** {1 Components} *)

val tree : t -> Sxsi_tree.Tree_backend.t
(** The tree backend every navigation below goes through. *)

val backend : t -> backend
val backend_name : t -> string
(** ["bp"] or ["grammar"]. *)

val bp : t -> Sxsi_tree.Bp.t
(** The balanced-parentheses structure.
    @raise Invalid_argument on a non-[`Bp] document. *)

val tag_index : t -> Sxsi_tree.Tag_index.t
(** The tag index.
    @raise Invalid_argument on a non-[`Bp] document. *)

val text : t -> Sxsi_text.Text_collection.t
val rel : t -> Sxsi_tree.Tag_rel.t

(** {1 Reserved tags} *)

val root_tag : int
(** Tag of the extra root node ["&"]. *)

val text_tag : int
(** Tag of text leaves ["#"]. *)

val attlist_tag : int
(** Tag of the attribute-list node ["@"]. *)

val attval_tag : int
(** Tag of attribute-value leaves ["%"]. *)

(** {1 Tags} *)

val tag_count : t -> int
val tag_name : t -> int -> string
val tag_id : t -> string -> int option
(** Element-name lookup; attribute names are registered as ["@name"]. *)

val attribute_tag_id : t -> string -> int option

(** {1 Nodes} *)

val root : t -> node
val node_count : t -> int
val tag_of : t -> node -> int
val preorder : t -> node -> int
(** Global identifier (0-based preorder, §4.2.3). *)

val is_element : t -> node -> bool
(** True for named element nodes (not [&], [#], [@], [%], and not
    attribute-name nodes). *)

val is_text_leaf : t -> node -> bool
(** True for [#] and [%] leaves. *)

val is_element_tag : t -> int -> bool
(** Whether a tag identifier denotes a named element. *)

val is_attribute_tag : t -> int -> bool
(** Whether a tag identifier denotes an attribute name. *)

val tag_is_pcdata : t -> int -> bool
(** Whether every node carrying this tag satisfies {!pcdata_only} —
    the "content known to be PCDATA" information of §6.6, kept in the
    index so the engine can prove a text predicate applies to a single
    text. *)

(** {1 Texts} *)

val text_count : t -> int
val texts : t -> string array
(** The texts in document order (id order). *)

val text_id_of_leaf : t -> node -> int
val leaf_of_text : t -> int -> node
val text_range : t -> node -> int * int
(** Half-open range of text identifiers inside the subtree
    ([TextIds]). *)

val get_text : t -> int -> string
val string_value : t -> node -> string
(** XPath string-value: concatenation of all texts in the subtree. *)

val pcdata_only : t -> node -> bool
(** True when the subtree contains at most one text and no element
    children other than the texts — i.e. a text predicate on this node
    can be answered by the text index on a single text (§6.6 step 2). *)

(** {1 Serialization (§4.3)} *)

val serialize : t -> node -> string
(** Recreate the XML serialization of the subtree ([GetSubtree]). *)

val space_bits : t -> int
val tree_space_bits : t -> int
val text_space_bits : t -> int

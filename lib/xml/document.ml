open Sxsi_bits
open Sxsi_tree
open Sxsi_text

type node = int

let nil = -1

let root_tag = 0
let text_tag = 1
let attlist_tag = 2
let attval_tag = 3

let reserved_names = [| "&"; "#"; "@"; "%" |]

(* Spans over the document-build phases, so indexing shows up as named
   cost centers in sampled profiles (the tree/text closures may run on
   pool worker domains, nesting under their task span). *)
module J = Sxsi_obs.Journal

let n_build = J.name "doc/build"
let n_parse = J.name "doc/parse"
let n_tree = J.name "doc/tree"
let n_text = J.name "doc/text"

type backend = [ `Bp | `Grammar ]

exception Unknown_backend of string

type t = {
  tree : Tree_backend.t;
  names : string array;
  ids : (string, int) Hashtbl.t;
  elem_tag : bool array;          (* per tag: is a named element tag *)
  attr_tag : bool array;          (* per tag: is an attribute-name tag *)
  text : Text_collection.t;
  rel : Tag_rel.t;
  pcdata_tag : bool array;        (* per tag: every occurrence is PCDATA-only *)
}

(* The build-time default backend mirrors SXSI_DOMAINS: the environment
   picks the representation when the caller does not. *)
let default_backend () =
  match Sys.getenv_opt "SXSI_BACKEND" with
  | None | Some "" | Some "bp" -> `Bp
  | Some "grammar" -> `Grammar
  | Some other ->
    failwith
      (Printf.sprintf "SXSI_BACKEND=%S: unknown backend (expected bp or grammar)"
         other)

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

(* Minimal growable int array (OCaml 5.1 has no Dynarray). *)
module Grow = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 1024 0; n = 0 }

  let push g v =
    if g.n = Array.length g.a then begin
      let a = Array.make (2 * g.n) 0 in
      Array.blit g.a 0 a 0 g.n;
      g.a <- a
    end;
    g.a.(g.n) <- v;
    g.n <- g.n + 1

  let to_array g = Array.sub g.a 0 g.n
end

type builder = {
  bpb : Bp.Builder.t;
  tag_seq : Grow.t;
  leaf_bits : Bitvec.Builder.t;
  mutable texts_rev : string list;
  mutable text_count : int;
  b_ids : (string, int) Hashtbl.t;
  mutable names_rev : string list;
  mutable name_count : int;
  (* pcdata tracking: per-frame child profile *)
  mutable frames : (int ref * int ref) list;   (* non-text kids, text kids *)
  pcdata_flag : (int, bool) Hashtbl.t;
  (* relation recording *)
  rel_seen : (int * int * int, unit) Hashtbl.t;
  mutable rel_pairs : (Tag_rel.relation * int * int) list;
  mutable ancestors : int list;          (* tag stack, top = current node *)
  mutable sibling_frames : int list list;  (* distinct earlier-sibling tags *)
  closed_order : Grow.t;                 (* distinct tags in close order *)
  closed_flag : (int, unit) Hashtbl.t;
  watermark : (int, int) Hashtbl.t;
}

let new_builder () =
  let b =
    {
      bpb = Bp.Builder.create ();
      tag_seq = Grow.create ();
      leaf_bits = Bitvec.Builder.create ();
      texts_rev = [];
      text_count = 0;
      b_ids = Hashtbl.create 64;
      names_rev = [];
      name_count = 0;
      frames = [];
      pcdata_flag = Hashtbl.create 64;
      rel_seen = Hashtbl.create 256;
      rel_pairs = [];
      ancestors = [];
      sibling_frames = [];
      closed_order = Grow.create ();
      closed_flag = Hashtbl.create 64;
      watermark = Hashtbl.create 64;
    }
  in
  Array.iter
    (fun name ->
      Hashtbl.add b.b_ids name b.name_count;
      b.names_rev <- name :: b.names_rev;
      b.name_count <- b.name_count + 1)
    reserved_names;
  b

let intern b name =
  match Hashtbl.find_opt b.b_ids name with
  | Some id -> id
  | None ->
    let id = b.name_count in
    Hashtbl.add b.b_ids name id;
    b.names_rev <- name :: b.names_rev;
    b.name_count <- b.name_count + 1;
    id

let rel_code = function
  | Tag_rel.Child -> 0
  | Tag_rel.Descendant -> 1
  | Tag_rel.Following_sibling -> 2
  | Tag_rel.Following -> 3

let record_rel b rel a tg =
  let key = (rel_code rel, a, tg) in
  if not (Hashtbl.mem b.rel_seen key) then begin
    Hashtbl.add b.rel_seen key ();
    b.rel_pairs <- (rel, a, tg) :: b.rel_pairs
  end

let open_node b tg ~leaf =
  (* relations with the context *)
  (match b.ancestors with
  | parent :: _ -> record_rel b Tag_rel.Child parent tg
  | [] -> ());
  List.iter (fun a -> record_rel b Tag_rel.Descendant a tg) b.ancestors;
  (match b.sibling_frames with
  | seen :: rest ->
    List.iter (fun a -> record_rel b Tag_rel.Following_sibling a tg) seen;
    if not (List.mem tg seen) then b.sibling_frames <- (tg :: seen) :: rest
  | [] -> ());
  let wm = match Hashtbl.find_opt b.watermark tg with Some w -> w | None -> 0 in
  for i = wm to b.closed_order.Grow.n - 1 do
    record_rel b Tag_rel.Following b.closed_order.Grow.a.(i) tg
  done;
  Hashtbl.replace b.watermark tg b.closed_order.Grow.n;
  (* structure *)
  Bp.Builder.open_node b.bpb;
  Grow.push b.tag_seq tg;
  Bitvec.Builder.push b.leaf_bits leaf;
  b.ancestors <- tg :: b.ancestors;
  b.sibling_frames <- [] :: b.sibling_frames;
  (match b.frames with
  | (nontext, text) :: _ ->
    if tg = text_tag then incr text else incr nontext
  | [] -> ());
  b.frames <- (ref 0, ref 0) :: b.frames

let close_node b =
  match b.ancestors with
  | [] -> invalid_arg "Document: unbalanced close"
  | tg :: rest ->
    Bp.Builder.close_node b.bpb;
    Grow.push b.tag_seq tg;
    Bitvec.Builder.push b.leaf_bits false;
    b.ancestors <- rest;
    b.sibling_frames <- List.tl b.sibling_frames;
    (match b.frames with
    | (nontext, text) :: frest ->
      b.frames <- frest;
      let ok = !nontext = 0 && !text <= 1 in
      (match Hashtbl.find_opt b.pcdata_flag tg with
      | Some prev -> Hashtbl.replace b.pcdata_flag tg (prev && ok)
      | None -> Hashtbl.replace b.pcdata_flag tg ok)
    | [] -> ());
    if not (Hashtbl.mem b.closed_flag tg) then begin
      Hashtbl.add b.closed_flag tg ();
      Grow.push b.closed_order tg
    end

let add_text b s =
  b.texts_rev <- s :: b.texts_rev;
  b.text_count <- b.text_count + 1

let of_xml ?pool ?backend ?(keep_whitespace = true) ?(sample_rate = 32)
    ?(store_plain = true) src =
  J.with_span J.Engine n_build @@ fun () ->
  let b = new_builder () in
  open_node b root_tag ~leaf:false;
  let emit_text s =
    let blank = String.for_all (function ' ' | '\t' | '\n' | '\r' -> true | _ -> false) s in
    if String.length s > 0 && (keep_whitespace || not blank) then begin
      open_node b text_tag ~leaf:true;
      add_text b s;
      close_node b
    end
  in
  let on_open name attrs =
    open_node b (intern b name) ~leaf:false;
    if attrs <> [] then begin
      open_node b attlist_tag ~leaf:false;
      List.iter
        (fun (aname, avalue) ->
          open_node b (intern b ("@" ^ aname)) ~leaf:false;
          if String.length avalue > 0 then begin
            open_node b attval_tag ~leaf:true;
            add_text b avalue;
            close_node b
          end;
          close_node b)
        attrs;
      close_node b
    end
  in
  let on_close _ = close_node b in
  J.with_span J.Engine n_parse (fun () ->
      Xml_parser.parse ~on_open ~on_close ~on_text:emit_text src);
  close_node b;
  let bp = Bp.Builder.finish b.bpb in
  let names = Array.of_list (List.rev b.names_rev) in
  let texts = Array.of_list (List.rev b.texts_rev) in
  let backend = match backend with Some bk -> bk | None -> default_backend () in
  (* The tree structures and the text collection depend on disjoint
     builder output, so with a pool the two builds overlap (each also
     chunks internally across the same pool). *)
  let build_tree () =
    J.with_span J.Engine n_tree @@ fun () ->
    match backend with
    | `Bp ->
      let tag_index =
        Tag_index.build ?pool bp ~tag_count:(Array.length names)
          ~tags:(Grow.to_array b.tag_seq)
      in
      Tree_backend.of_bp ~bp ~tags:tag_index
        ~leaves:(Bitvec.Builder.finish b.leaf_bits)
    | `Grammar ->
      (* the parenthesis sequence with its tags, one terminal per
         position (the in-memory Bp just built supplies direction) *)
      let tags = Grow.to_array b.tag_seq in
      let syms =
        Array.init (Array.length tags) (fun i ->
            (2 * tags.(i)) + if Bp.is_open bp i then 0 else 1)
      in
      Tree_backend.of_slp
        (Sxsi_grammar.Slp.build ~tag_count:(Array.length names)
           ~leaf_tags:[ text_tag; attval_tag ] syms)
  in
  let build_text () =
    J.with_span J.Engine n_text (fun () ->
        Text_collection.build ?pool ~sample_rate ~store_plain texts)
  in
  let tree, text =
    match pool with
    | Some p when Sxsi_par.Pool.size p > 1 -> Sxsi_par.Pool.fork_join p build_tree build_text
    | _ ->
      let tr = build_tree () in
      (tr, build_text ())
  in
  let rel = Tag_rel.make ~tag_count:(Array.length names) in
  List.iter (fun (r, a, tg) -> Tag_rel.add rel r ~parent:a ~child:tg) b.rel_pairs;
  let elem_tag =
    Array.map (fun n -> String.length n > 0 && n.[0] <> '@' && n <> "&" && n <> "#" && n <> "%") names
  in
  elem_tag.(attlist_tag) <- false;
  let attr_tag = Array.map (fun n -> String.length n > 1 && n.[0] = '@') names in
  {
    tree;
    names;
    ids = b.b_ids;
    elem_tag;
    attr_tag;
    text;
    rel;
    pcdata_tag =
      Array.init (Array.length names) (fun tg ->
          match Hashtbl.find_opt b.pcdata_flag tg with
          | Some ok -> ok
          | None -> false);
  }

let build = of_xml

(* Container format v4: magic, one length byte + backend tag name,
   8-byte big-endian payload length, MD5 digest of the payload, payload
   (the marshalled [t]).  The length and digest let [load] reject
   truncated or corrupt files with a clean [Failure] instead of handing
   garbage to [Marshal.from_channel], which would crash the process.
   The backend tag sits in the header so a reader rejects a container
   built with a backend it does not know — a typed [Unknown_backend]
   error — without unmarshalling the payload.  v4 bumps v3 for the
   broadword [Bitvec] layout: the marshalled record shape changed
   (interleaved rank directories + select samples), so v3 payloads no
   longer unmarshal into the current types. *)
let magic = "SXSI-INDEX-v4\n"
let old_magic_prefix = "SXSI-INDEX-v"

let backend_name t = Tree_backend.kind_name t.tree

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let payload = Marshal.to_string t [] in
      output_string oc magic;
      let bk = backend_name t in
      output_byte oc (String.length bk);
      output_string oc bk;
      let len = Bytes.create 8 in
      Bytes.set_int64_be len 0 (Int64.of_int (String.length payload));
      output_bytes oc len;
      output_string oc (Digest.string payload);
      output_string oc payload)

let load path =
  let ic = open_in_bin path in
  let corrupt msg = failwith ("Document.load: " ^ msg ^ ": " ^ path) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let avail = in_channel_length ic in
      if avail < String.length magic then
        corrupt "truncated header (not an SXSI index)";
      let m = really_input_string ic (String.length magic) in
      if m <> magic then
        if String.length m >= String.length old_magic_prefix
           && String.sub m 0 (String.length old_magic_prefix) = old_magic_prefix
        then corrupt "unsupported index version (re-index with this build)"
        else corrupt "bad magic (not an SXSI v4 index)";
      if avail < String.length magic + 1 then corrupt "truncated header";
      let bk_len = input_byte ic in
      if avail < String.length magic + 1 + bk_len + 8 + 16 then
        corrupt "truncated header";
      let bk = really_input_string ic bk_len in
      if Tree_backend.kind_of_name bk = None then raise (Unknown_backend bk);
      let len = Int64.to_int (Bytes.get_int64_be (Bytes.of_string (really_input_string ic 8)) 0) in
      let header_len = String.length magic + 1 + bk_len + 8 + 16 in
      if len < 0 || len > avail - header_len then corrupt "truncated payload";
      let digest = really_input_string ic 16 in
      let payload =
        match really_input_string ic len with
        | s -> s
        | exception End_of_file -> corrupt "truncated payload"
      in
      if Digest.string payload <> digest then corrupt "checksum mismatch (corrupt index)";
      match (Marshal.from_string payload 0 : t) with
      | t ->
        if backend_name t <> bk then corrupt "backend tag does not match payload";
        t
      | exception _ -> corrupt "undecodable payload")

let of_texts_override t text = { t with text }

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let tree t = t.tree
let backend t = Tree_backend.kind t.tree
let bp t = Tree_backend.bp_exn t.tree
let tag_index t = Tree_backend.tag_index_exn t.tree
let text t = t.text
let rel t = t.rel
let tag_count t = Array.length t.names
let tag_name t i = t.names.(i)
let tag_id t name = Hashtbl.find_opt t.ids name
let attribute_tag_id t name = Hashtbl.find_opt t.ids ("@" ^ name)
let root _ = 0
let node_count t = Tree_backend.node_count t.tree
let tag_of t x = Tree_backend.tag t.tree x
let preorder t x = Tree_backend.preorder t.tree x
let is_element t x = t.elem_tag.(tag_of t x)

let is_text_leaf t x =
  let tg = tag_of t x in
  tg = text_tag || tg = attval_tag

let is_element_tag t tg = t.elem_tag.(tg)
let is_attribute_tag t tg = t.attr_tag.(tg)
let tag_is_pcdata t tg = t.pcdata_tag.(tg)

(* ------------------------------------------------------------------ *)
(* Texts                                                                *)
(* ------------------------------------------------------------------ *)

let text_count t = Text_collection.doc_count t.text
let texts t = Array.init (text_count t) (fun i -> Text_collection.get_text t.text i)
let text_id_of_leaf t x = Tree_backend.leaf_rank t.tree x
let leaf_of_text t d = Tree_backend.leaf_select t.tree d

let text_range t x =
  let c = Tree_backend.close t.tree x in
  (Tree_backend.leaf_rank t.tree x, Tree_backend.leaf_rank t.tree (c + 1))

let get_text t d = Text_collection.get_text t.text d

let string_value t x =
  let lo, hi = text_range t x in
  if hi - lo = 1 && is_text_leaf t x then get_text t lo
  else begin
    (* Attribute values contribute only when the context node is itself
       in the attribute encoding ([@], attribute name, or [%]). *)
    let xtag = tag_of t x in
    let in_attributes =
      t.attr_tag.(xtag) || xtag = attval_tag || xtag = attlist_tag
    in
    let buf = Buffer.create 32 in
    for d = lo to hi - 1 do
      if in_attributes || tag_of t (leaf_of_text t d) <> attval_tag then
        Buffer.add_string buf (get_text t d)
    done;
    Buffer.contents buf
  end

let pcdata_only t x =
  if is_text_leaf t x then true
  else begin
    let rec check c count =
      if c = nil then count <= 1
      else begin
        let tg = tag_of t c in
        if tg = text_tag || tg = attval_tag then check (Tree_backend.next_sibling t.tree c) (count + 1)
        else false
      end
    in
    check (Tree_backend.first_child t.tree x) 0
  end

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let serialize t x =
  let buf = Buffer.create 256 in
  let rec children_of x f =
    let c = ref (Tree_backend.first_child t.tree x) in
    while !c <> nil do
      f !c;
      c := Tree_backend.next_sibling t.tree !c
    done
  and emit x =
    let tg = tag_of t x in
    if tg = text_tag then
      Buffer.add_string buf (Xml_parser.escape_text (get_text t (text_id_of_leaf t x)))
    else if tg = attval_tag then
      Buffer.add_string buf (Xml_parser.escape_text (get_text t (text_id_of_leaf t x)))
    else if tg = root_tag then children_of x emit
    else if tg = attlist_tag then ()
    else if t.attr_tag.(tg) then begin
      (* attribute node on its own: serialize as its value *)
      let lo, hi = text_range t x in
      if hi > lo then Buffer.add_string buf (Xml_parser.escape_text (get_text t lo))
    end
    else begin
      let name = t.names.(tg) in
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      (* attributes live under a first child labeled "@" *)
      let first = Tree_backend.first_child t.tree x in
      let has_attlist = first <> nil && tag_of t first = attlist_tag in
      if has_attlist then
        children_of first (fun a ->
            let aname = t.names.(tag_of t a) in
            Buffer.add_char buf ' ';
            Buffer.add_string buf (String.sub aname 1 (String.length aname - 1));
            Buffer.add_string buf "=\"";
            let lo, hi = text_range t a in
            if hi > lo then Buffer.add_string buf (Xml_parser.escape_attr (get_text t lo));
            Buffer.add_string buf "\"");
      let content_start = if has_attlist then Tree_backend.next_sibling t.tree first else first in
      if content_start = nil then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        let c = ref content_start in
        while !c <> nil do
          emit !c;
          c := Tree_backend.next_sibling t.tree !c
        done;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
      end
    end
  in
  emit x;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let tree_space_bits t =
  Tree_backend.space_bits t.tree + Tag_rel.space_bits t.rel

let text_space_bits t = Text_collection.space_bits t.text
let space_bits t = tree_space_bits t + text_space_bits t

let default () = int_of_float (Unix.gettimeofday () *. 1e9)

let source = ref default

let now_ns () = !source ()

let set_source f = source := f

let since t0 = max 0 (now_ns () - t0)

let diff_ns ~from ~until = max 0 (until - from)

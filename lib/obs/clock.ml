let default () = int_of_float (Unix.gettimeofday () *. 1e9)

let source = ref default

let now_ns () = !source ()

let set_source f = source := f

(** A minimal JSON tree, emitter and parser — just enough for trace
    records and machine-readable benchmark output, with no external
    dependency.

    The emitter produces compact, single-line, standard-conforming
    JSON (strings are escaped, non-finite floats degrade to [null]).
    The parser accepts standard JSON with arbitrary whitespace; it
    exists so tests can assert "this output parses" and so tooling can
    read [BENCH_*.json] files back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering.  Object members keep their given
    order.  [Float] values that are not finite render as [null]
    (JSON has no spelling for them). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an
    error.  Numbers without [.], [e] or [E] become [Int], all others
    [Float].  The error string names the failing byte offset. *)

val member : string -> t -> t option
(** [member k j] is the value of key [k] when [j] is an [Obj]
    containing it. *)

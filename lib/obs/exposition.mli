(** A registry of named metrics rendered in the Prometheus text
    exposition format (version 0.0.4) — what the service's [METRICS]
    request returns.

    Metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*] and label names
    [[a-zA-Z_][a-zA-Z0-9_]*]; registration rejects anything else, and
    duplicate (name, label-set) pairs, with [Invalid_argument].  Label
    {e values} are arbitrary: rendering escapes backslash, double
    quote and line feed as ["\\\\"], ["\\\""] and ["\\n"] per the
    text-format spec.  Every metric gets [# HELP] and [# TYPE] lines —
    entries
    registered under the same name with different labels share one
    header block (the first registration's help text wins).

    Rendering walks the metrics in registration order; gauge callbacks
    run at render time, so derived sizes (documents registered, cache
    entries, journal occupancy) are read fresh on every scrape.  The
    registry itself is not synchronized — the service registers at
    startup and renders under its lock. *)

type t

val create : unit -> t

val register_counter :
  t -> help:string -> ?labels:(string * string) list -> name:string -> Counter.t -> unit
(** Expose a counter as metric [name] (conventionally suffixed
    [_total]). *)

val register_histogram :
  t ->
  help:string ->
  ?scale:float ->
  ?labels:(string * string) list ->
  name:string ->
  Histogram.t ->
  unit
(** Expose a histogram.  [scale] (default [1.0]) multiplies every
    rendered value — pass [1e-9] to expose nanosecond recordings in
    seconds, the Prometheus base unit. *)

val register_gauge :
  t -> help:string -> ?labels:(string * string) list -> name:string -> (unit -> float) -> unit
(** Expose a value computed at render time as a gauge. *)

val register_callback_counter :
  t -> help:string -> ?labels:(string * string) list -> name:string -> (unit -> float) -> unit
(** Like {!register_gauge} but typed [counter]: for values that are
    monotonic but owned elsewhere (the registry's eviction count). *)

val register_multi_gauge :
  t ->
  help:string ->
  name:string ->
  (unit -> ((string * string) list * float) list) ->
  unit
(** A gauge family whose label sets are only known at render time (one
    journal ring per recording domain, one busy fraction per pool
    worker): the callback returns [(labels, value)] pairs and each
    renders as one sample line under a single [# HELP]/[# TYPE]
    header. *)

val escape_label_value : string -> string
(** The text-format label-value escaping (backslash, double quote and
    line feed); exposed for tests. *)

val render : t -> string
(** The full exposition: [# HELP]/[# TYPE] comments and one sample
    line per value, ['\n']-separated with a trailing newline. *)

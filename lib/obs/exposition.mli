(** A registry of named metrics rendered in the Prometheus text
    exposition format (version 0.0.4) — what the service's [METRICS]
    request returns.

    Metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*]; registration
    rejects anything else, and duplicate names, with
    [Invalid_argument].  Rendering walks the metrics in registration
    order; gauge callbacks run at render time, so derived sizes
    (documents registered, cache entries) are read fresh on every
    scrape.  The registry itself is not synchronized — the service
    registers at startup and renders under its lock. *)

type t

val create : unit -> t

val register_counter : t -> help:string -> name:string -> Counter.t -> unit
(** Expose a counter as metric [name] (conventionally suffixed
    [_total]). *)

val register_histogram : t -> help:string -> ?scale:float -> name:string -> Histogram.t -> unit
(** Expose a histogram.  [scale] (default [1.0]) multiplies every
    rendered value — pass [1e-9] to expose nanosecond recordings in
    seconds, the Prometheus base unit. *)

val register_gauge : t -> help:string -> name:string -> (unit -> float) -> unit
(** Expose a value computed at render time as a gauge. *)

val register_callback_counter : t -> help:string -> name:string -> (unit -> float) -> unit
(** Like {!register_gauge} but typed [counter]: for values that are
    monotonic but owned elsewhere (the registry's eviction count). *)

val render : t -> string
(** The full exposition: [# HELP]/[# TYPE] comments and one sample
    line per value, ['\n']-separated with a trailing newline. *)

(** A bounded JSON-lines file: the slow-query log's sink.

    Each {!write} appends one compact JSON document and a newline,
    flushing immediately (a crashing server keeps its evidence).  The
    file is opened in append mode and is bounded: once [max_bytes] of
    this process's writes are spent, further entries are silently
    counted in {!dropped} instead of written, so a pathological
    workload cannot fill the disk.  Writes are serialized by an
    internal lock and safe from any domain. *)

type t

val default_max_bytes : int
(** 64 MiB. *)

val create : ?max_bytes:int -> string -> t
(** Open (appending) or create the file at a path.  Raises [Sys_error]
    like [open_out] when the path is unwritable. *)

val write : t -> Json.t -> unit
(** Append one entry as a single line, or count it dropped when the
    byte budget is spent. *)

val entries : t -> int
(** Entries written by this process. *)

val dropped : t -> int
(** Entries refused by the byte bound. *)

val bytes_written : t -> int

val close : t -> unit
(** Close the underlying channel; later {!write}s raise. *)

(** Monotonic event counters.

    Counters are atomic, so probe sites in the index hot paths (FM
    locate steps, tagged jumps) can increment them from any domain
    without taking a lock; reads are linearizable snapshots. *)

type t

val create : unit -> t
(** A fresh counter at zero. *)

val incr : t -> unit
(** Add one. *)

val add : t -> int -> unit
(** Add an arbitrary (non-negative, by convention) delta. *)

val get : t -> int
(** Current value. *)

val reset : t -> unit
(** Set back to zero (tests and benchmark warm-up only; production
    consumers treat counters as monotonic and diff readings). *)

(* A bounded append-only JSON-lines sink for the slow-query log.  The
   bound is on bytes written, not entries: once the budget is spent the
   file stops growing and further entries are counted, not written —
   a misbehaving workload cannot fill the disk. *)

type t = {
  oc : out_channel;
  max_bytes : int;
  lock : Mutex.t;
  mutable written : int;
  dropped : Counter.t;
  entries : Counter.t;
}

let default_max_bytes = 64 * 1024 * 1024

let create ?(max_bytes = default_max_bytes) path =
  {
    oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path;
    max_bytes = max 0 max_bytes;
    lock = Mutex.create ();
    written = 0;
    dropped = Counter.create ();
    entries = Counter.create ();
  }

let write t json =
  let line = Json.to_string json in
  let len = String.length line + 1 in
  Mutex.protect t.lock (fun () ->
      if t.written + len > t.max_bytes then Counter.incr t.dropped
      else begin
        output_string t.oc line;
        output_char t.oc '\n';
        flush t.oc;
        t.written <- t.written + len;
        Counter.incr t.entries
      end)

let entries t = Counter.get t.entries
let dropped t = Counter.get t.dropped
let bytes_written t = Mutex.protect t.lock (fun () -> t.written)

let close t = Mutex.protect t.lock (fun () -> try close_out t.oc with Sys_error _ -> ())

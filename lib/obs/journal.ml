(* The flight recorder: a per-domain ring buffer of timestamped span
   and event records, cheap enough to leave on in production.

   Write path: each domain that records owns one ring (acquired lazily
   through domain-local storage, registered in a global table under a
   mutex once).  A ring is four preallocated int arrays plus a head
   counter; the single writer reads the head, fills the slot's fields
   with plain stores and publishes with one [Atomic.set] of the head —
   that store is the only synchronization per record.  When the ring is
   full the oldest slot is overwritten: the journal always holds the
   newest [capacity] records per domain and the head counter doubles as
   the drop count ([head - capacity] records have been lost).

   Read path: [snapshot] copies every ring without stopping writers.  A
   record being written concurrently with the copy can tear (its fields
   mix two records); snapshots are diagnostics, not evidence, and the
   span reconstruction below tolerates arbitrary prefixes/garbage, so a
   torn record costs at most one bogus span. *)

type category = Engine | Pool | Qos | Service | Runtime | Evloop

let all_categories = [ Engine; Pool; Qos; Service; Runtime; Evloop ]

let category_index = function
  | Engine -> 0
  | Pool -> 1
  | Qos -> 2
  | Service -> 3
  | Runtime -> 4
  | Evloop -> 5

let category_label = function
  | Engine -> "engine"
  | Pool -> "pool"
  | Qos -> "qos"
  | Service -> "service"
  | Runtime -> "runtime"
  | Evloop -> "evloop"

let category_of_label = function
  | "engine" -> Some Engine
  | "pool" -> Some Pool
  | "qos" -> Some Qos
  | "service" -> Some Service
  | "runtime" -> Some Runtime
  | "evloop" -> Some Evloop
  | _ -> None

type kind = Begin | End | Instant

let kind_index = function Begin -> 0 | End -> 1 | Instant -> 2
let kind_label = function Begin -> "B" | End -> "E" | Instant -> "I"

let kind_of_label = function
  | "B" -> Some Begin
  | "E" -> Some End
  | "I" -> Some Instant
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Interned names                                                       *)
(* ------------------------------------------------------------------ *)

(* Span/event names are interned once (at module initialization of the
   recording sites) so the hot path stores a small int.  The table only
   grows; lookups by id on the snapshot path read the array without the
   lock (entries are published before their id escapes). *)

let names_lock = Mutex.create ()
let names : string array ref = ref (Array.make 0 "")
let names_by_string : (string, int) Hashtbl.t = Hashtbl.create 64
let names_count = ref 0

let name s =
  Mutex.protect names_lock (fun () ->
      match Hashtbl.find_opt names_by_string s with
      | Some id -> id
      | None ->
        let id = !names_count in
        if id >= Array.length !names then begin
          let bigger = Array.make (max 16 (2 * Array.length !names)) "" in
          Array.blit !names 0 bigger 0 (Array.length !names);
          names := bigger
        end;
        !names.(id) <- s;
        names_count := id + 1;
        Hashtbl.add names_by_string s id;
        id)

let name_label id =
  let a = !names in
  if id >= 0 && id < Array.length a && a.(id) <> "" then a.(id)
  else "name#" ^ string_of_int id

(* ------------------------------------------------------------------ *)
(* Label slots: the current span path per domain, for the profiler     *)
(* ------------------------------------------------------------------ *)

(* The sampling profiler (lib/prof) needs to know, at any instant, what
   each domain is doing.  Rather than unwind stacks, every span
   enter/exit also maintains a per-domain *slot* holding the id of the
   current label path ("service/request;engine/count").  Paths are
   interned globally — a path id names a (parent path, span name) pair —
   so publishing the current path is one plain int store, and the
   sampler attributes a tick to a domain with one racy int read.  A torn
   or stale read costs one sample attributed one span early or late;
   profiles are statistical, so this needs no synchronization at all on
   the mutator side.

   Memory model: path ids are published by bumping [paths_count]
   (Atomic.set, a release) after the parent/name entries are stored and
   the grown arrays are swapped in (Atomic.set of the array refs).  A
   reader that observes count >= id through an Atomic.get is therefore
   guaranteed to see the entries for every path below it. *)

let labels_flag = Atomic.make false
let labels_enabled () = Atomic.get labels_flag
let set_labels_enabled on = Atomic.set labels_flag on

let paths_lock = Mutex.create ()
let paths_parent : int array Atomic.t = Atomic.make (Array.make 64 (-1))
let paths_name : int array Atomic.t = Atomic.make (Array.make 64 (-1))
let paths_count = Atomic.make 1 (* path 0 is the root: "not in any span" *)
let paths_by_key : (int, int) Hashtbl.t = Hashtbl.create 256

(* names are interned small ints (tens of them); 20 bits is plenty *)
let path_key parent nm = (parent lsl 20) lor (nm land 0xfffff)

let intern_path parent nm =
  Mutex.protect paths_lock (fun () ->
      let key = path_key parent nm in
      match Hashtbl.find_opt paths_by_key key with
      | Some id -> id
      | None ->
        let id = Atomic.get paths_count in
        if id >= Array.length (Atomic.get paths_parent) then begin
          let old_p = Atomic.get paths_parent and old_n = Atomic.get paths_name in
          let cap = 2 * Array.length old_p in
          let np = Array.make cap (-1) and nn = Array.make cap (-1) in
          Array.blit old_p 0 np 0 id;
          Array.blit old_n 0 nn 0 id;
          Atomic.set paths_parent np;
          Atomic.set paths_name nn
        end;
        (Atomic.get paths_parent).(id) <- parent;
        (Atomic.get paths_name).(id) <- nm;
        Atomic.set paths_count (id + 1);
        Hashtbl.add paths_by_key key id;
        id)

let path_count () = Atomic.get paths_count

let path_parts p =
  let n = Atomic.get paths_count in
  let pp = Atomic.get paths_parent and pn = Atomic.get paths_name in
  let rec up p acc =
    if p <= 0 || p >= n then acc
    else up pp.(p) (name_label pn.(p) :: acc)
  in
  up p []

(* One slot per domain.  Only the owning domain writes it (the sampler
   and the allocation snapshot read racily).  The frame stack mirrors
   the open spans: [stk_path.(i)] is the path id of frame [i] itself,
   so restoring the parent on exit is reading the frame below. *)
type slot = {
  sl_domain : int;
  mutable sl_path : int;            (* current path id; racy reads ok *)
  mutable sl_depth : int;
  mutable stk_path : int array;
  mutable stk_name : int array;
  mutable stk_minor : float array;  (* Gc minor_words at frame entry *)
  mutable stk_major : float array;
  mutable stk_cminor : float array; (* words attributed to children *)
  mutable stk_cmajor : float array;
  sl_cache : (int, int) Hashtbl.t;  (* domain-local (parent,name) -> path *)
  mutable alloc_minor : float array;  (* per path id; owner-written *)
  mutable alloc_major : float array;
}

let slots_lock = Mutex.create ()
let slots : slot list ref = ref []

let new_slot () =
  {
    sl_domain = (Domain.self () :> int);
    sl_path = 0;
    sl_depth = 0;
    stk_path = Array.make 32 0;
    stk_name = Array.make 32 0;
    stk_minor = Array.make 32 0.0;
    stk_major = Array.make 32 0.0;
    stk_cminor = Array.make 32 0.0;
    stk_cmajor = Array.make 32 0.0;
    sl_cache = Hashtbl.create 64;
    alloc_minor = Array.make 64 0.0;
    alloc_major = Array.make 64 0.0;
  }

let slot_key : slot option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_slot () =
  let cell = Domain.DLS.get slot_key in
  match !cell with
  | Some s -> s
  | None ->
    let s = new_slot () in
    Mutex.protect slots_lock (fun () -> slots := s :: !slots);
    cell := Some s;
    s

let grow_stack sl =
  let cap = 2 * Array.length sl.stk_path in
  let gi a = let b = Array.make cap 0 in Array.blit a 0 b 0 (Array.length a); b in
  let gf a = let b = Array.make cap 0.0 in Array.blit a 0 b 0 (Array.length a); b in
  sl.stk_path <- gi sl.stk_path;
  sl.stk_name <- gi sl.stk_name;
  sl.stk_minor <- gf sl.stk_minor;
  sl.stk_major <- gf sl.stk_major;
  sl.stk_cminor <- gf sl.stk_cminor;
  sl.stk_cmajor <- gf sl.stk_cmajor

(* grow-by-replace: the sampler may racily read the old array and miss
   the latest additions — stale by one snapshot, never out of bounds *)
let alloc_add sl p minor major =
  if p >= Array.length sl.alloc_minor then begin
    let cap = ref (2 * Array.length sl.alloc_minor) in
    while p >= !cap do cap := 2 * !cap done;
    let nm = Array.make !cap 0.0 and nj = Array.make !cap 0.0 in
    Array.blit sl.alloc_minor 0 nm 0 (Array.length sl.alloc_minor);
    Array.blit sl.alloc_major 0 nj 0 (Array.length sl.alloc_major);
    sl.alloc_minor <- nm;
    sl.alloc_major <- nj
  end;
  sl.alloc_minor.(p) <- sl.alloc_minor.(p) +. minor;
  sl.alloc_major.(p) <- sl.alloc_major.(p) +. major

(* A profiler can ask to be called back at every span boundary while
   labels are on.  The cooperative sampler backend in Sxsi_prof hangs
   off this: on machines where a dedicated sampler domain is too
   expensive (one core: every extra domain turns each minor GC into a
   scheduling round-trip), the working domains tick the sampler
   themselves.  The hook runs BEFORE the path update, so the interval
   since the previous tick is attributed to the path that was actually
   current while it elapsed. *)
let tick_hook : (unit -> unit) Atomic.t = Atomic.make (fun () -> ())
let set_tick_hook f = Atomic.set tick_hook f
let clear_tick_hook () = Atomic.set tick_hook (fun () -> ())

let slot_enter nm =
  (Atomic.get tick_hook) ();
  let sl = my_slot () in
  let parent = sl.sl_path in
  let key = path_key parent nm in
  let p =
    match Hashtbl.find_opt sl.sl_cache key with
    | Some p -> p
    | None ->
      let p = intern_path parent nm in
      Hashtbl.add sl.sl_cache key p;
      p
  in
  let d = sl.sl_depth in
  if d >= Array.length sl.stk_path then grow_stack sl;
  sl.stk_path.(d) <- p;
  sl.stk_name.(d) <- nm;
  let minor, _, major = Gc.counters () in
  sl.stk_minor.(d) <- minor;
  sl.stk_major.(d) <- major;
  sl.stk_cminor.(d) <- 0.0;
  sl.stk_cmajor.(d) <- 0.0;
  sl.sl_depth <- d + 1;
  sl.sl_path <- p

(* Mismatch-tolerant, like the snapshot reconstruction: an exit whose
   name matches a deeper frame (an End skipped by an exception, or
   labelling switched on mid-span) pops the frames above it, each
   attributing its allocation; an exit matching nothing is ignored. *)
let slot_exit nm =
  (Atomic.get tick_hook) ();
  let sl = my_slot () in
  let d = sl.sl_depth in
  if d > 0 then begin
    let rec find i =
      if i < 0 then -1 else if sl.stk_name.(i) = nm then i else find (i - 1)
    in
    let i = find (d - 1) in
    if i >= 0 then begin
      let minor_now, _, major_now = Gc.counters () in
      for j = d - 1 downto i do
        let total_minor = minor_now -. sl.stk_minor.(j)
        and total_major = major_now -. sl.stk_major.(j) in
        alloc_add sl sl.stk_path.(j)
          (total_minor -. sl.stk_cminor.(j))
          (total_major -. sl.stk_cmajor.(j));
        if j > 0 then begin
          sl.stk_cminor.(j - 1) <- sl.stk_cminor.(j - 1) +. total_minor;
          sl.stk_cmajor.(j - 1) <- sl.stk_cmajor.(j - 1) +. total_major
        end
      done;
      sl.sl_depth <- i;
      sl.sl_path <- (if i = 0 then 0 else sl.stk_path.(i - 1))
    end
  end

let current_path () =
  if Atomic.get labels_flag then (my_slot ()).sl_path else 0

let slot_paths () =
  Mutex.protect slots_lock (fun () -> !slots)
  |> List.map (fun sl -> (sl.sl_domain, sl.sl_path))

(* allocation attributed by domains that have since retired; folded in
   so alloc totals stay monotonic across pool teardowns *)
let retired_minor : float array ref = ref (Array.make 64 0.0)
let retired_major : float array ref = ref (Array.make 64 0.0)

let retire_slot () =
  let cell = Domain.DLS.get slot_key in
  match !cell with
  | None -> ()
  | Some s ->
    cell := None;
    Mutex.protect slots_lock (fun () ->
        slots := List.filter (fun x -> x != s) !slots;
        let n = Array.length s.alloc_minor in
        if n > Array.length !retired_minor then begin
          let gm = Array.make n 0.0 and gj = Array.make n 0.0 in
          Array.blit !retired_minor 0 gm 0 (Array.length !retired_minor);
          Array.blit !retired_major 0 gj 0 (Array.length !retired_major);
          retired_minor := gm;
          retired_major := gj
        end;
        for p = 0 to n - 1 do
          !retired_minor.(p) <- !retired_minor.(p) +. s.alloc_minor.(p);
          !retired_major.(p) <- !retired_major.(p) +. s.alloc_major.(p)
        done)

let alloc_snapshot () =
  let n = Atomic.get paths_count in
  let minor = Array.make n 0.0 and major = Array.make n 0.0 in
  let sls =
    Mutex.protect slots_lock (fun () ->
        let k = min n (Array.length !retired_minor) in
        for p = 0 to k - 1 do
          minor.(p) <- !retired_minor.(p);
          major.(p) <- !retired_major.(p)
        done;
        !slots)
  in
  List.iter
    (fun sl ->
      let am = sl.alloc_minor and aj = sl.alloc_major in
      let k = min n (Array.length am) in
      for p = 0 to k - 1 do
        minor.(p) <- minor.(p) +. am.(p);
        major.(p) <- major.(p) +. aj.(p)
      done)
    sls;
  (minor, major)

(* ------------------------------------------------------------------ *)
(* Rings                                                                *)
(* ------------------------------------------------------------------ *)

(* code packs kind (2 bits), category (3 bits) and the interned name id
   into one int, so a record is four int stores. *)
let pack kind cat nm = kind_index kind lor (category_index cat lsl 2) lor (nm lsl 5)
let code_kind code = code land 3
let code_category code = (code lsr 2) land 7
let code_name code = code lsr 5

type ring = {
  rdomain : int;            (* Domain id of the owning writer *)
  generation : int;         (* see [reset] *)
  mask : int;               (* capacity - 1; capacity is 2^k *)
  rts : int array;
  rcode : int array;
  ra : int array;
  rb : int array;
  head : int Atomic.t;      (* records ever written to this ring *)
}

let default_capacity = 16384

let enabled_flag = Atomic.make false
let capacity_setting = Atomic.make default_capacity
let generation = Atomic.make 0

let rings_lock = Mutex.create ()
let rings : ring list ref = ref []

let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let configure ?capacity () =
  (match capacity with
  | Some c -> Atomic.set capacity_setting (round_pow2 (max 2 c))
  | None -> ())

let reset () =
  (* orphan every ring: writers re-register against the new generation
     on their next record, picking up a fresh (and freshly-sized) ring *)
  Mutex.protect rings_lock (fun () ->
      Atomic.incr generation;
      rings := [])

let new_ring () =
  let cap = Atomic.get capacity_setting in
  {
    rdomain = (Domain.self () :> int);
    generation = Atomic.get generation;
    mask = cap - 1;
    rts = Array.make cap 0;
    rcode = Array.make cap 0;
    ra = Array.make cap 0;
    rb = Array.make cap 0;
    head = Atomic.make 0;
  }

let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_ring () =
  let slot = Domain.DLS.get ring_key in
  match !slot with
  | Some r when r.generation = Atomic.get generation -> r
  | Some _ | None ->
    let r = new_ring () in
    Mutex.protect rings_lock (fun () -> rings := r :: !rings);
    slot := Some r;
    r

(* The one hot function: fill the slot, publish with a single atomic
   store of the head. *)
let record_packed ts code a b =
  let r = my_ring () in
  let h = Atomic.get r.head in
  let i = h land r.mask in
  r.rts.(i) <- ts;
  r.rcode.(i) <- code;
  r.ra.(i) <- a;
  r.rb.(i) <- b;
  Atomic.set r.head (h + 1)

let emit kind cat nm ?ts ?(a = 0) ?(b = 0) () =
  if Atomic.get enabled_flag then begin
    let ts = match ts with Some t -> t | None -> Clock.now_ns () in
    record_packed ts (pack kind cat nm) a b
  end

let begin_span cat nm ?ts ?a ?b () =
  if Atomic.get labels_flag then slot_enter nm;
  emit Begin cat nm ?ts ?a ?b ()

let end_span cat nm ?ts ?a ?b () =
  emit End cat nm ?ts ?a ?b ();
  if Atomic.get labels_flag then slot_exit nm

let instant cat nm ?ts ?a ?b () = emit Instant cat nm ?ts ?a ?b ()

let with_span cat nm ?a f =
  let labelled = Atomic.get labels_flag in
  if not (labelled || Atomic.get enabled_flag) then f ()
  else begin
    if labelled then slot_enter nm;
    emit Begin cat nm ?a ();
    Fun.protect
      ~finally:(fun () ->
        emit End cat nm ();
        (* exit even if labelling flipped off mid-span, to keep the
           frame stack balanced; an exit without its enter is ignored *)
        if labelled || Atomic.get labels_flag then slot_exit nm)
      f
  end

(* ------------------------------------------------------------------ *)
(* Cursors: the window of the current domain's ring since a mark        *)
(* ------------------------------------------------------------------ *)

type cursor = { cring : ring; chead : int }

let cursor () =
  let r = my_ring () in
  { cring = r; chead = Atomic.get r.head }

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

type record = {
  seq : int;                (* position in the ring's write sequence *)
  ts : int;
  kind : kind;
  cat : category;
  rname : string;
  a : int;
  b : int;
}

type snapshot = {
  sdomain : int;
  dropped : int;            (* records overwritten and lost *)
  records : record array;   (* oldest first *)
}

let decode r seq =
  let i = seq land r.mask in
  let code = r.rcode.(i) in
  let kind =
    match code_kind code with 0 -> Begin | 1 -> End | _ -> Instant
  in
  let cat =
    match code_category code with
    | 0 -> Engine
    | 1 -> Pool
    | 2 -> Qos
    | 3 -> Service
    | 5 -> Evloop
    | _ -> Runtime
  in
  { seq; ts = r.rts.(i); kind; cat; rname = name_label (code_name code); a = r.ra.(i); b = r.rb.(i) }

let snapshot_ring ?(from = 0) r =
  let head = Atomic.get r.head in
  let cap = r.mask + 1 in
  let first = max from (max 0 (head - cap)) in
  {
    sdomain = r.rdomain;
    dropped = max 0 (head - cap);
    records = Array.init (head - first) (fun k -> decode r (first + k));
  }

let snapshot () =
  let rs = Mutex.protect rings_lock (fun () -> !rings) in
  List.sort
    (fun s1 s2 -> compare s1.sdomain s2.sdomain)
    (List.map (fun r -> snapshot_ring r) rs)

let since c = snapshot_ring ~from:c.chead c.cring

let records_total () =
  List.fold_left (fun acc r -> acc + Atomic.get r.head) 0
    (Mutex.protect rings_lock (fun () -> !rings))

let dropped_total () =
  List.fold_left
    (fun acc r -> acc + max 0 (Atomic.get r.head - (r.mask + 1)))
    0
    (Mutex.protect rings_lock (fun () -> !rings))

let occupancy () =
  List.map
    (fun r -> (r.rdomain, min (Atomic.get r.head) (r.mask + 1), r.mask + 1))
    (Mutex.protect rings_lock (fun () -> !rings))

let ring_stats () =
  List.map
    (fun r ->
      let head = Atomic.get r.head in
      let cap = r.mask + 1 in
      (r.rdomain, max 0 (head - cap), min head cap, cap))
    (Mutex.protect rings_lock (fun () -> !rings))

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                      *)
(* ------------------------------------------------------------------ *)

let record_to_json r =
  Json.List
    [
      Json.Int r.ts;
      Json.String (kind_label r.kind);
      Json.String (category_label r.cat);
      Json.String r.rname;
      Json.Int r.a;
      Json.Int r.b;
    ]

let to_json snaps =
  Json.Obj
    [
      ("schema", Json.String "sxsi-journal-v1");
      ( "rings",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("domain", Json.Int s.sdomain);
                   ("dropped", Json.Int s.dropped);
                   ("records", Json.List (Array.to_list (Array.map record_to_json s.records)));
                 ])
             snaps) );
    ]

let record_of_json seq j =
  match j with
  | Json.List [ Json.Int ts; Json.String k; Json.String c; Json.String nm; Json.Int a; Json.Int b ]
    -> begin
    match (kind_of_label k, category_of_label c) with
    | Some kind, Some cat -> Ok { seq; ts; kind; cat; rname = nm; a; b }
    | _ -> Error (Printf.sprintf "journal record: unknown kind %S or category %S" k c)
  end
  | _ -> Error "journal record: expected [ts, kind, cat, name, a, b]"

let of_json j =
  let ( let* ) = Result.bind in
  let int_member k j =
    match Json.member k j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "journal: missing int field %S" k)
  in
  match Json.member "rings" j with
  | Some (Json.List rings) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | r :: tl ->
        let* sdomain = int_member "domain" r in
        let* dropped = int_member "dropped" r in
        let* records =
          match Json.member "records" r with
          | Some (Json.List recs) ->
            let rec conv i acc = function
              | [] -> Ok (Array.of_list (List.rev acc))
              | rj :: tl ->
                let* r = record_of_json i rj in
                conv (i + 1) (r :: acc) tl
            in
            conv 0 [] recs
          | _ -> Error "journal ring: missing records list"
        in
        go ({ sdomain; dropped; records } :: acc) tl
    in
    go [] rings
  | _ -> Error "journal: missing rings list"

(* ------------------------------------------------------------------ *)
(* Span reconstruction                                                  *)
(* ------------------------------------------------------------------ *)

type span = {
  sname : string;
  scat : category;
  start_ns : int;
  end_ns : int;
  sa : int;
  sb : int;
  truncated : bool;         (* one endpoint synthesized from the window edge *)
  children : span list;
}

(* Rebuild the span forest of one ring.  Writers emit well-nested
   Begin/End pairs, but the window can start or end mid-span (the ring
   wrapped, or the snapshot caught spans still open), so:

   - an [End] with no matching [Begin] on the stack becomes a span
     opening at the window's first timestamp, marked truncated;
   - a [Begin] still on the stack when the records run out becomes a
     span closing at the window's last timestamp, marked truncated;
   - an [End] whose name matches a deeper stack entry (a torn record or
     a span abandoned by an exception) closes the entries above it as
     truncated rather than corrupting the nesting. *)
let spans snap =
  let n = Array.length snap.records in
  if n = 0 then []
  else begin
    let window_start = snap.records.(0).ts in
    let window_end = snap.records.(n - 1).ts in
    (* stack frames: the Begin record plus the children built so far *)
    let stack : (record * span list ref) list ref = ref [] in
    let top_level : span list ref = ref [] in
    let attach sp =
      match !stack with
      | [] -> top_level := sp :: !top_level
      | (_, kids) :: _ -> kids := sp :: !kids
    in
    let close ?(truncated = false) ~end_ns ~eb (b, kids) =
      {
        sname = b.rname;
        scat = b.cat;
        start_ns = b.ts;
        end_ns = max b.ts end_ns;
        sa = b.a;
        sb = eb;
        truncated;
        children = List.rev !kids;
      }
    in
    let orphan name cat ts eb =
      (* the matching Begin fell off the ring (or was torn): the span
         opened at or before the window's first record *)
      attach
        {
          sname = name;
          scat = cat;
          start_ns = window_start;
          end_ns = ts;
          sa = 0;
          sb = eb;
          truncated = true;
          children = [];
        }
    in
    let rec close_down_to name cat ts eb =
      match !stack with
      | [] -> assert false              (* caller checked a match exists *)
      | ((b, _) as frame) :: rest ->
        stack := rest;
        if b.rname = name && b.cat = cat then attach (close ~end_ns:ts ~eb frame)
        else begin
          (* the top span never saw its End (abandoned by an exception,
             or its End was torn): close it here, truncated, and keep
             unwinding to the matching opener *)
          attach (close ~truncated:true ~end_ns:ts ~eb:b.b frame);
          close_down_to name cat ts eb
        end
    in
    Array.iter
      (fun r ->
        match r.kind with
        | Begin -> stack := (r, ref []) :: !stack
        | End ->
          if List.exists (fun (b, _) -> b.rname = r.rname && b.cat = r.cat) !stack
          then close_down_to r.rname r.cat r.ts r.b
          else orphan r.rname r.cat r.ts r.b
        | Instant ->
          attach
            {
              sname = r.rname;
              scat = r.cat;
              start_ns = r.ts;
              end_ns = r.ts;
              sa = r.a;
              sb = r.b;
              truncated = false;
              children = [];
            })
      snap.records;
    (* spans still open when the window closed *)
    while !stack <> [] do
      match !stack with
      | frame :: rest ->
        stack := rest;
        attach (close ~truncated:true ~end_ns:window_end ~eb:0 frame)
      | [] -> ()
    done;
    List.rev !top_level
  end

let rec span_to_json sp =
  Json.Obj
    ([
       ("name", Json.String sp.sname);
       ("cat", Json.String (category_label sp.scat));
       ("start_ns", Json.Int sp.start_ns);
       ("dur_ns", Json.Int (sp.end_ns - sp.start_ns));
       ("a", Json.Int sp.sa);
       ("b", Json.Int sp.sb);
     ]
    @ (if sp.truncated then [ ("truncated", Json.Bool true) ] else [])
    @
    match sp.children with
    | [] -> []
    | kids -> [ ("children", Json.List (List.map span_to_json kids)) ])

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                            *)
(* ------------------------------------------------------------------ *)

(* Complete ("X") events are emitted from the reconstructed spans
   rather than raw "B"/"E" pairs, so a truncated window still produces
   a trace every viewer accepts.  Timestamps are microseconds (floats,
   per the format); the process id is fixed and each domain becomes a
   thread. *)
let to_chrome_trace snaps =
  let events = ref [] in
  let push e = events := e :: !events in
  let us ns = float_of_int ns /. 1e3 in
  let args sp extra =
    ("args", Json.Obj ([ ("a", Json.Int sp.sa); ("b", Json.Int sp.sb) ] @ extra))
  in
  List.iter
    (fun snap ->
      let tid = snap.sdomain in
      let rec walk sp =
        let extra = if sp.truncated then [ ("truncated", Json.Bool true) ] else [] in
        if sp.start_ns = sp.end_ns && sp.children = [] && not sp.truncated then
          push
            (Json.Obj
               [
                 ("name", Json.String sp.sname);
                 ("cat", Json.String (category_label sp.scat));
                 ("ph", Json.String "i");
                 ("s", Json.String "t");
                 ("ts", Json.Float (us sp.start_ns));
                 ("pid", Json.Int 1);
                 ("tid", Json.Int tid);
                 args sp extra;
               ])
        else begin
          push
            (Json.Obj
               [
                 ("name", Json.String sp.sname);
                 ("cat", Json.String (category_label sp.scat));
                 ("ph", Json.String "X");
                 ("ts", Json.Float (us sp.start_ns));
                 ("dur", Json.Float (us (max 1 (sp.end_ns - sp.start_ns))));
                 ("pid", Json.Int 1);
                 ("tid", Json.Int tid);
                 args sp extra;
               ]);
          List.iter walk sp.children
        end
      in
      List.iter walk (spans snap);
      push
        (Json.Obj
           [
             ("name", Json.String "thread_name");
             ("ph", Json.String "M");
             ("pid", Json.Int 1);
             ("tid", Json.Int tid);
             ( "args",
               Json.Obj
                 [ ("name", Json.String (Printf.sprintf "domain %d" snap.sdomain)) ] );
           ]))
    snaps;
  Json.Obj [ ("traceEvents", Json.List (List.rev !events)) ]

type metric =
  | M_counter of Counter.t
  | M_histogram of float * Histogram.t    (* scale, histogram *)
  | M_fn of string * (unit -> float)      (* rendered TYPE, callback *)
  | M_multi of (unit -> ((string * string) list * float) list)
      (* gauge families: one sample line per (labels, value), read at
         render time; see [register_multi_gauge] *)

type entry = {
  name : string;
  help : string;
  labels : (string * string) list;
  metric : metric;
}

type t = { mutable entries : entry list (* reversed *) }

let create () = { entries = [] }

let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let valid_label_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let register t ~help ?(labels = []) ~name metric =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Exposition: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Exposition: invalid label name %S on %S" k name))
    labels;
  if List.exists (fun e -> e.name = name && e.labels = labels) t.entries then
    invalid_arg (Printf.sprintf "Exposition: duplicate metric %S" name);
  t.entries <- { name; help; labels; metric } :: t.entries

let register_counter t ~help ?labels ~name c = register t ~help ?labels ~name (M_counter c)

let register_histogram t ~help ?(scale = 1.0) ?labels ~name h =
  register t ~help ?labels ~name (M_histogram (scale, h))

let register_gauge t ~help ?labels ~name f = register t ~help ?labels ~name (M_fn ("gauge", f))

let register_callback_counter t ~help ?labels ~name f =
  register t ~help ?labels ~name (M_fn ("counter", f))

let register_multi_gauge t ~help ~name f = register t ~help ~name (M_multi f)

(* Prometheus floats: decimal or scientific notation; "%.17g" is exact
   but noisy, so use the shortest round-tripping form. *)
let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let short = Printf.sprintf "%g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f
  end

(* HELP text: the text format escapes backslash and newline. *)
let escape_help s =
  String.concat "\\n" (String.split_on_char '\n' (String.concat "\\\\" (String.split_on_char '\\' s)))

(* Label values additionally escape the double quote, per the text
   format spec ("label_value can be any sequence of UTF-8 characters,
   but the backslash, double-quote and line-feed characters have to be
   escaped as \\, \" and \n"). *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* name{k="v",...} — or the bare name with no labels.  [extra] carries
   per-sample labels (a histogram's [le]) after the entry's own. *)
let series name labels extra =
  match labels @ extra with
  | [] -> name
  | pairs ->
    Printf.sprintf "%s{%s}" name
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) pairs))

let type_of_metric = function
  | M_counter _ -> "counter"
  | M_histogram _ -> "histogram"
  | M_fn (typ, _) -> typ
  | M_multi _ -> "gauge"

(* One # HELP/# TYPE block per metric name: entries sharing a name
   (the same gauge at different label sets) render their samples under
   a single header, taking the first entry's help text. *)
let render_entry buf ~with_header e =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  if with_header then begin
    line "# HELP %s %s" e.name (escape_help e.help);
    line "# TYPE %s %s" e.name (type_of_metric e.metric)
  end;
  match e.metric with
  | M_counter c -> line "%s %d" (series e.name e.labels []) (Counter.get c)
  | M_fn (_, f) -> line "%s %s" (series e.name e.labels []) (number (f ()))
  | M_multi f ->
    List.iter
      (fun (labels, v) -> line "%s %s" (series e.name e.labels labels) (number v))
      (f ())
  | M_histogram (scale, h) ->
    List.iter
      (fun (ub, cum) ->
        line "%s %d"
          (series (e.name ^ "_bucket") e.labels
             [ ("le", number (float_of_int ub *. scale)) ])
          cum)
      (Histogram.cumulative h);
    line "%s %d" (series (e.name ^ "_bucket") e.labels [ ("le", "+Inf") ]) (Histogram.count h);
    line "%s %s" (series (e.name ^ "_sum") e.labels []) (number (float_of_int (Histogram.sum h) *. scale));
    line "%s %d" (series (e.name ^ "_count") e.labels []) (Histogram.count h)

let render t =
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let with_header = not (Hashtbl.mem seen e.name) in
      Hashtbl.replace seen e.name ();
      render_entry buf ~with_header e)
    (List.rev t.entries);
  Buffer.contents buf

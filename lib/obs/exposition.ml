type metric =
  | M_counter of Counter.t
  | M_histogram of float * Histogram.t    (* scale, histogram *)
  | M_fn of string * (unit -> float)      (* rendered TYPE, callback *)

type entry = { name : string; help : string; metric : metric }

type t = { mutable entries : entry list (* reversed *) }

let create () = { entries = [] }

let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let register t ~help ~name metric =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Exposition: invalid metric name %S" name);
  if List.exists (fun e -> e.name = name) t.entries then
    invalid_arg (Printf.sprintf "Exposition: duplicate metric %S" name);
  t.entries <- { name; help; metric } :: t.entries

let register_counter t ~help ~name c = register t ~help ~name (M_counter c)

let register_histogram t ~help ?(scale = 1.0) ~name h =
  register t ~help ~name (M_histogram (scale, h))

let register_gauge t ~help ~name f = register t ~help ~name (M_fn ("gauge", f))

let register_callback_counter t ~help ~name f = register t ~help ~name (M_fn ("counter", f))

(* Prometheus floats: decimal or scientific notation; "%.17g" is exact
   but noisy, so use the shortest round-tripping form. *)
let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let short = Printf.sprintf "%g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f
  end

let escape_help s =
  String.concat "\\n" (String.split_on_char '\n' (String.concat "\\\\" (String.split_on_char '\\' s)))

let render_entry buf e =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let typ =
    match e.metric with
    | M_counter _ -> "counter"
    | M_histogram _ -> "histogram"
    | M_fn (typ, _) -> typ
  in
  line "# HELP %s %s" e.name (escape_help e.help);
  line "# TYPE %s %s" e.name typ;
  match e.metric with
  | M_counter c -> line "%s %d" e.name (Counter.get c)
  | M_fn (_, f) -> line "%s %s" e.name (number (f ()))
  | M_histogram (scale, h) ->
    List.iter
      (fun (ub, cum) ->
        line "%s_bucket{le=\"%s\"} %d" e.name (number (float_of_int ub *. scale)) cum)
      (Histogram.cumulative h);
    line "%s_bucket{le=\"+Inf\"} %d" e.name (Histogram.count h);
    line "%s_sum %s" e.name (number (float_of_int (Histogram.sum h) *. scale));
    line "%s_count %d" e.name (Histogram.count h)

let render t =
  let buf = Buffer.create 1024 in
  List.iter (render_entry buf) (List.rev t.entries);
  Buffer.contents buf

type phase = Parse | Compile | Run | Materialize | Fm_locate | Fm_extract

let all_phases = [ Parse; Compile; Run; Materialize; Fm_locate; Fm_extract ]

let phase_index = function
  | Parse -> 0
  | Compile -> 1
  | Run -> 2
  | Materialize -> 3
  | Fm_locate -> 4
  | Fm_extract -> 5

let phase_label = function
  | Parse -> "parse"
  | Compile -> "compile"
  | Run -> "run"
  | Materialize -> "materialize"
  | Fm_locate -> "fm_locate"
  | Fm_extract -> "fm_extract"

type t = {
  tlabel : string;
  phases : int array;                     (* ns per phase *)
  values : (string, int) Hashtbl.t;
  mutable order : string list;            (* counter names, reversed *)
}

let create ?(label = "") () =
  { tlabel = label; phases = Array.make 6 0; values = Hashtbl.create 8; order = [] }

let label t = t.tlabel

let add_ns t p ns = if ns > 0 then t.phases.(phase_index p) <- t.phases.(phase_index p) + ns

let time t p f =
  let t0 = Clock.now_ns () in
  Fun.protect ~finally:(fun () -> add_ns t p (Clock.since t0)) f

let phase_ns t p = t.phases.(phase_index p)

let total_ns t = t.phases.(0) + t.phases.(1) + t.phases.(2) + t.phases.(3)

let set_counter t name v =
  if not (Hashtbl.mem t.values name) then t.order <- name :: t.order;
  Hashtbl.replace t.values name v

let add_counter t name d =
  match Hashtbl.find_opt t.values name with
  | Some v -> Hashtbl.replace t.values name (v + d)
  | None ->
    t.order <- name :: t.order;
    Hashtbl.add t.values name d

let counters t =
  List.rev_map (fun name -> (name, Hashtbl.find t.values name)) t.order

let to_json t =
  Json.Obj
    [
      ("label", Json.String t.tlabel);
      ("total_ns", Json.Int (total_ns t));
      ( "phases",
        Json.Obj
          (List.map (fun p -> (phase_label p, Json.Int (phase_ns t p))) all_phases) );
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
    ]

let to_text t =
  let buf = Buffer.create 128 in
  if t.tlabel <> "" then Buffer.add_string buf (t.tlabel ^ ": ");
  Buffer.add_string buf (Printf.sprintf "total %.3fms" (float_of_int (total_ns t) /. 1e6));
  List.iter
    (fun p ->
      let ns = phase_ns t p in
      if ns > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  %s %.3fms" (phase_label p) (float_of_int ns /. 1e6)))
    all_phases;
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s=%d" k v))
    (counters t);
  Buffer.contents buf

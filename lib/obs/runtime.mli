(** Runtime telemetry: periodic sampling of [Gc.quick_stat] and the
    {!Journal}'s ring occupancy.

    Two complementary read paths: {!register} exposes {e live} gauges
    and callback counters (heap size, collection counts, journal
    record/drop totals, per-ring occupancy) that read the runtime at
    scrape time, plus histograms of the sampled values over time —
    what the heap and the recorder looked like {e between} scrapes.
    The histograms only fill while a sampler runs ({!start}, or manual
    {!sample} calls).

    The sampler is one background domain waking every [period_ms];
    each sample also drops a [runtime]-category instant event into the
    journal (payloads: worst-ring occupancy percent, heap bytes) so
    exported traces carry the runtime timeline.  Histograms are
    guarded by an internal lock; {!sample} may be called from any
    domain. *)

type t

val create : unit -> t

val sample : t -> unit
(** Take one sample now. *)

val start : ?period_ms:int -> t -> unit
(** Spawn the sampler domain (default period 100ms, clamped to at
    least 1).  No-op when already running. *)

val stop : t -> unit
(** Stop and join the sampler domain.  No-op when not running. *)

val samples_total : t -> int

val register : ?prefix:string -> t -> Exposition.t -> unit
(** Register the runtime series on an exposition (default prefix
    ["sxsi"]): [<p>_gc_heap_bytes], [<p>_gc_minor_collections_total],
    [<p>_gc_major_collections_total], [<p>_gc_allocated_bytes_total],
    [<p>_runtime_samples_total] and the sampled histograms
    [<p>_runtime_heap_bytes],
    [<p>_runtime_journal_occupancy_percent].  The [<p>_journal_*]
    state series live on the service exposition (always registered,
    with or without a sampler). *)

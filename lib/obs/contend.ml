(* Lock-contention accounting.  A [site] names a shared mutex (the
   document registry, the hash-consing tables); [with_lock] replaces
   [Mutex.protect] there.  When profiling is off the replacement is
   exactly [Mutex.protect].  When on, the fast path is one [try_lock]
   (uncontended acquires stay cheap); only the slow path — the lock was
   held by someone else — times the wait and attributes it to whatever
   label path the blocked domain was executing, so the profiler can say
   not just *which* lock is hot but *who* waits on it. *)

type site = {
  cs_name : string;
  acquires : Counter.t;
  contended : Counter.t;
  wait_ns : Counter.t;
  by_path : (int, int ref) Hashtbl.t; (* path id -> waited ns; under sites_lock *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

let sites_lock = Mutex.create ()
let sites : site list ref = ref []

let site cs_name =
  let s =
    {
      cs_name;
      acquires = Counter.create ();
      contended = Counter.create ();
      wait_ns = Counter.create ();
      by_path = Hashtbl.create 16;
    }
  in
  Mutex.protect sites_lock (fun () -> sites := s :: !sites);
  s

let record_wait s dt =
  Counter.incr s.contended;
  Counter.add s.wait_ns dt;
  let path = Journal.current_path () in
  Mutex.protect sites_lock (fun () ->
      match Hashtbl.find_opt s.by_path path with
      | Some cell -> cell := !cell + dt
      | None -> Hashtbl.add s.by_path path (ref dt))

let with_lock s m f =
  if not (Atomic.get enabled_flag) then Mutex.protect m f
  else begin
    if Mutex.try_lock m then Counter.incr s.acquires
    else begin
      let t0 = Clock.now_ns () in
      Mutex.lock m;
      let dt = Clock.since t0 in
      Counter.incr s.acquires;
      record_wait s dt
    end;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  end

let stats () =
  Mutex.protect sites_lock (fun () -> !sites)
  |> List.rev_map (fun s ->
         (s.cs_name, Counter.get s.acquires, Counter.get s.contended, Counter.get s.wait_ns))

let wait_by_path () =
  let acc : (int, int ref) Hashtbl.t = Hashtbl.create 32 in
  Mutex.protect sites_lock (fun () ->
      List.iter
        (fun s ->
          Hashtbl.iter
            (fun path cell ->
              match Hashtbl.find_opt acc path with
              | Some total -> total := !total + !cell
              | None -> Hashtbl.add acc path (ref !cell))
            s.by_path)
        !sites);
  Hashtbl.fold (fun path cell l -> (path, !cell) :: l) acc []

let reset () =
  Mutex.protect sites_lock (fun () ->
      List.iter
        (fun s ->
          Counter.reset s.acquires;
          Counter.reset s.contended;
          Counter.reset s.wait_ns;
          Hashtbl.reset s.by_path)
        !sites)

let buckets = 63

type t = {
  counts : int array;           (* counts.(i): observations in bucket i *)
  sums : int array;             (* sums.(i): sum of bucket i's observations *)
  mutable total : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  {
    counts = Array.make buckets 0;
    sums = Array.make buckets 0;
    total = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let bucket_index v =
  if v < 2 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      incr i
    done;
    !i
  end

let record t v =
  let v = if v < 0 then 0 else v in
  let i = bucket_index v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sums.(i) <- t.sums.(i) + v;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let sum t = t.sum
let min_value t = if t.total = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

(* lower (inclusive) and upper (exclusive) bound of a bucket *)
let lower i = if i = 0 then 0 else 1 lsl i
let upper i = 1 lsl (i + 1)

let quantile t q =
  if t.total = 0 then 0.0
  else begin
    let rank = q *. float_of_int t.total in
    if rank <= 0.0 then float_of_int (min_value t)
    else begin
      let i = ref 0 and cum = ref 0 in
      while
        !i < buckets - 1 && float_of_int (!cum + t.counts.(!i)) < rank
      do
        cum := !cum + t.counts.(!i);
        incr i
      done;
      let in_bucket = t.counts.(!i) in
      let est =
        if in_bucket = 0 then float_of_int (lower !i)
        else if in_bucket = 1 then
          (* a lone observation: its exact value is the bucket sum, so
             return it instead of the interpolated bucket midpoint *)
          float_of_int t.sums.(!i)
        else begin
          let frac = (rank -. float_of_int !cum) /. float_of_int in_bucket in
          let lo = float_of_int (lower !i) and hi = float_of_int (upper !i) in
          lo +. (frac *. (hi -. lo))
        end
      in
      Float.min (Float.max est (float_of_int (min_value t))) (float_of_int t.max_v)
    end
  end

let merge a b =
  let m = create () in
  for i = 0 to buckets - 1 do
    m.counts.(i) <- a.counts.(i) + b.counts.(i);
    m.sums.(i) <- a.sums.(i) + b.sums.(i)
  done;
  m.total <- a.total + b.total;
  m.sum <- a.sum + b.sum;
  m.min_v <- min a.min_v b.min_v;
  m.max_v <- max a.max_v b.max_v;
  m

let equal a b =
  a.total = b.total && a.sum = b.sum
  && min_value a = min_value b
  && a.max_v = b.max_v
  && a.counts = b.counts
  && a.sums = b.sums

let reset t =
  Array.fill t.counts 0 buckets 0;
  Array.fill t.sums 0 buckets 0;
  t.total <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let bucket_count t i = t.counts.(i)
let bucket_sum t i = t.sums.(i)

let cumulative t =
  let last = ref (-1) in
  for i = 0 to buckets - 1 do
    if t.counts.(i) > 0 then last := i
  done;
  let acc = ref 0 in
  List.init (!last + 1) (fun i ->
      acc := !acc + t.counts.(i);
      (upper i, !acc))

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.total);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int t.max_v);
      ("mean", Json.Float (mean t));
      ("p50", Json.Float (quantile t 0.50));
      ("p90", Json.Float (quantile t 0.90));
      ("p95", Json.Float (quantile t 0.95));
      ("p99", Json.Float (quantile t 0.99));
    ]

(** Lock-contention accounting for the sampling profiler.

    A {!site} names one shared mutex worth watching — the service's
    document registry, the hash-consing tables behind state sets and
    formulas.  {!with_lock} replaces [Mutex.protect] at such a site:
    with accounting {e off} (the default) it {e is} [Mutex.protect];
    with accounting on, an uncontended acquire costs one [try_lock],
    and only a blocked acquire pays for timing — the wait is counted,
    summed, and attributed to the label path ({!Journal.current_path})
    the blocked domain was executing, so a profile names both the hot
    lock and the code that waits on it. *)

type site

val site : string -> site
(** Register a named site.  Call once per mutex, at module
    initialization. *)

val with_lock : site -> Mutex.t -> (unit -> 'a) -> 'a
(** Run the thunk with the mutex held, accounting the acquire to the
    site.  Releases on exception, like [Mutex.protect]. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Turn contention accounting on or off, process-wide.  Off is the
    default; [with_lock] is then plain [Mutex.protect]. *)

val stats : unit -> (string * int * int * int) list
(** Per site, in registration order:
    [(name, acquires, contended acquires, total wait ns)].  Acquires
    are only counted while accounting is enabled.  Monotonic; diff two
    readings for a window. *)

val wait_by_path : unit -> (int * int) list
(** Total contended-wait nanoseconds per label path id, summed across
    sites.  Monotonic. *)

val reset : unit -> unit
(** Zero every site (tests and benchmarks only). *)

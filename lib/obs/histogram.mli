(** Log-bucketed latency histograms.

    Values (nanoseconds, by convention) land in power-of-two buckets:
    bucket [0] covers [0, 2) and bucket [i >= 1] covers
    [2{^i}, 2{^i+1}).  63 buckets cover every non-negative OCaml
    [int], so recording never saturates; negative values clamp to 0.
    Each bucket also tracks the exact sum of its observations, so a
    bucket holding a single observation yields that value {e exactly}.
    Quantiles in buckets holding two or more observations are
    estimated by linear interpolation, clamped to the exact observed
    minimum/maximum, which bounds the relative error by the bucket
    width (a factor of 2) and keeps estimates monotone in the
    requested rank: [quantile h p <= quantile h q] whenever [p <= q].

    Recording is a few array operations and is not synchronized —
    callers that share a histogram across domains must serialize
    access (the service records under its lock), or record into
    per-domain histograms and aggregate snapshots with {!merge}, which
    needs no lock at all. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one observation. *)

val count : t -> int
(** Number of observations. *)

val sum : t -> int
(** Sum of all observations (exact, not bucket-approximated). *)

val min_value : t -> int
(** Smallest observation; [0] when empty. *)

val max_value : t -> int
(** Largest observation; [0] when empty. *)

val mean : t -> float
(** [sum / count]; [0.] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]: the estimated value below which
    a [q] fraction of observations fall.  Exact when the bucket
    holding the requested rank has a single observation; [0.] when
    empty. *)

val merge : t -> t -> t
(** Pointwise sum (counts and per-bucket sums), as a fresh histogram:
    [merge a b] is {!equal} to a histogram that recorded both inputs'
    observations.  Associative and commutative up to {!equal}; neither
    argument is mutated, so per-domain histograms can be aggregated
    without locks. *)

val equal : t -> t -> bool
(** Same observation count, sum, extrema and per-bucket counts and
    sums. *)

val reset : t -> unit
(** Forget every observation. *)

val bucket_index : int -> int
(** The bucket a value lands in (pure; exposed for tests and for
    rendering bucket boundaries). *)

val bucket_count : t -> int -> int
(** Observations in one bucket. *)

val bucket_sum : t -> int -> int
(** Exact sum of one bucket's observations. *)

val cumulative : t -> (int * int) list
(** [(upper_bound_exclusive, observations_at_or_below)] for every
    bucket up to and including the last non-empty one, cumulative in
    bucket order — the shape a Prometheus histogram exposition
    needs. *)

val to_json : t -> Json.t
(** Object with [count], [sum], [min], [max], [mean], [p50], [p90],
    [p95], [p99] (floats in the recorded unit). *)

(** Per-query trace records: where one evaluation spent its time.

    A trace accumulates nanoseconds into a fixed set of {!phase}s —
    the pipeline stages of the paper's evaluation section — plus named
    counters (nodes visited, FM locate steps, cache hits...).  Phases
    are not required to partition wall-clock time: [Fm_locate] and
    [Fm_extract] happen {e inside} the [Run] and [Materialize] phases
    and are reported separately to show where those phases went.

    A trace is mutated by one evaluation at a time; it is not
    synchronized. *)

type phase =
  | Parse         (** XPath text to AST *)
  | Compile       (** AST to tree automaton *)
  | Run           (** automaton evaluation over the index *)
  | Materialize   (** marks to nodes, serialization *)
  | Fm_locate     (** FM-index locate calls (inside [Run]) *)
  | Fm_extract    (** FM-index text extraction (inside [Run]/[Materialize]) *)

val all_phases : phase list
(** In pipeline order. *)

val phase_label : phase -> string
(** Lower-case stable name ([Parse] is ["parse"], etc.), used as JSON
    key and in the text rendering. *)

type t

val create : ?label:string -> unit -> t
(** A fresh trace; [label] (default [""]) typically names the query. *)

val label : t -> string

val time : t -> phase -> (unit -> 'a) -> 'a
(** Run a thunk and add its elapsed time to a phase (added even when
    the thunk raises). *)

val add_ns : t -> phase -> int -> unit
(** Add externally measured nanoseconds to a phase. *)

val phase_ns : t -> phase -> int

val total_ns : t -> int
(** Sum of [Parse], [Compile], [Run] and [Materialize] — the
    contained FM phases are excluded so the total is not
    double-counted. *)

val set_counter : t -> string -> int -> unit
(** Set a named counter (replacing any previous value). *)

val add_counter : t -> string -> int -> unit
(** Add to a named counter, creating it at the delta if absent. *)

val counters : t -> (string * int) list
(** Counters in first-set order. *)

val to_json : t -> Json.t
(** Object with [label], [total_ns], [phases] (every phase, even when
    zero) and [counters]. *)

val to_text : t -> string
(** One-line human rendering: non-zero phases in milliseconds, then
    counters. *)

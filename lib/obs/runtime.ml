(* Runtime telemetry: a sampler that periodically polls Gc.quick_stat
   and the journal's ring occupancy, feeding histograms (what the
   distribution over time looked like) while the matching gauges read
   the live values at scrape time. *)

let n_sample = Journal.name "sample"

type t = {
  heap_bytes : Histogram.t;
  occupancy_pct : Histogram.t;
  sample_ns : Histogram.t;
  samples : Counter.t;
  mutable minor_at_start : int;
  mutable major_at_start : int;
  lock : Mutex.t;            (* histograms are not synchronized *)
  stop : bool Atomic.t;
  mutable sampler : unit Domain.t option;
}

let create () =
  let st = Gc.quick_stat () in
  {
    heap_bytes = Histogram.create ();
    occupancy_pct = Histogram.create ();
    sample_ns = Histogram.create ();
    samples = Counter.create ();
    minor_at_start = st.Gc.minor_collections;
    major_at_start = st.Gc.major_collections;
    lock = Mutex.create ();
    stop = Atomic.make false;
    sampler = None;
  }

(* Worst-case ring occupancy in percent: how close the flight recorder
   is to overwriting history. *)
let max_occupancy_pct () =
  List.fold_left
    (fun acc (_, held, cap) -> max acc (100 * held / cap))
    0 (Journal.occupancy ())

let sample t =
  let t0 = Clock.now_ns () in
  let st = Gc.quick_stat () in
  let occ = max_occupancy_pct () in
  Mutex.protect t.lock (fun () ->
      Histogram.record t.heap_bytes (st.Gc.heap_words * (Sys.word_size / 8));
      Histogram.record t.occupancy_pct occ;
      Histogram.record t.sample_ns (Clock.since t0));
  Counter.incr t.samples;
  Journal.instant Journal.Runtime n_sample ~a:occ
    ~b:(st.Gc.heap_words * (Sys.word_size / 8))
    ()

let start ?(period_ms = 100) t =
  match t.sampler with
  | Some _ -> ()
  | None ->
    Atomic.set t.stop false;
    let period_s = float_of_int (max 1 period_ms) /. 1e3 in
    t.sampler <-
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get t.stop) do
               sample t;
               Unix.sleepf period_s
             done))

let stop t =
  match t.sampler with
  | None -> ()
  | Some d ->
    Atomic.set t.stop true;
    Domain.join d;
    t.sampler <- None

let samples_total t = Counter.get t.samples

(* Allocation since process start, in bytes: minor plus major minus
   promoted, per the Gc docs' double-count caveat. *)
let allocated_bytes st =
  (st.Gc.minor_words +. st.Gc.major_words -. st.Gc.promoted_words)
  *. float_of_int (Sys.word_size / 8)

let register ?(prefix = "sxsi") t e =
  let gauge = Exposition.register_gauge e in
  let cb = Exposition.register_callback_counter e in
  gauge ~help:"Major-heap size, bytes (live at last slice)."
    ~name:(prefix ^ "_gc_heap_bytes") (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.heap_words *. float_of_int (Sys.word_size / 8));
  cb ~help:"Minor collections." ~name:(prefix ^ "_gc_minor_collections_total") (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.minor_collections);
  cb ~help:"Major collection cycles." ~name:(prefix ^ "_gc_major_collections_total")
    (fun () -> float_of_int (Gc.quick_stat ()).Gc.major_collections);
  cb ~help:"Words allocated since process start, in bytes."
    ~name:(prefix ^ "_gc_allocated_bytes_total") (fun () ->
      allocated_bytes (Gc.quick_stat ()));
  (* the sxsi_journal_* series are registered by the service exposition
     (always present, sampler or not), so none are duplicated here *)
  cb ~help:"Runtime telemetry samples taken." ~name:(prefix ^ "_runtime_samples_total")
    (fun () -> float_of_int (samples_total t));
  Exposition.register_histogram e
    ~help:"Major-heap size at each runtime sample." ~name:(prefix ^ "_runtime_heap_bytes")
    t.heap_bytes;
  Exposition.register_histogram e
    ~help:"Worst-ring journal occupancy at each runtime sample, percent."
    ~name:(prefix ^ "_runtime_journal_occupancy_percent") t.occupancy_pct

(** Nanosecond timestamps for phase timing.

    The default source derives timestamps from [Unix.gettimeofday],
    which is precise enough for the millisecond-scale phases the
    tracer measures but is {b not guaranteed monotonic}: an NTP step
    (or an operator setting the wall clock) can make a later reading
    smaller than an earlier one, so a raw [now_ns () - t0] may come
    out negative.  Derive durations through {!since} or {!diff_ns},
    which clamp negative deltas to zero — a stepped clock then costs
    one under-reported measurement instead of poisoning histograms
    and counters with huge negative values.  Deadline comparisons are
    unaffected (a backwards step only extends a deadline).

    A process that links a true monotonic clock (the benchmark
    harness links bechamel's) can install it once at startup with
    {!set_source}; every consumer of {!now_ns} picks it up. *)

val now_ns : unit -> int
(** Current timestamp in nanoseconds.  Only differences of two
    [now_ns] readings are meaningful; the epoch is unspecified. *)

val set_source : (unit -> int) -> unit
(** Replace the timestamp source.  Call once, before any timers start:
    mixing readings of two sources in one measurement yields garbage
    deltas. *)

val since : int -> int
(** [since t0] is the time elapsed since the reading [t0], clamped to
    zero so a wall-clock step backwards never yields a negative
    duration. *)

val diff_ns : from:int -> until:int -> int
(** [diff_ns ~from ~until] is [until - from] clamped to zero — the
    clamped duration between two existing readings. *)

(** Nanosecond timestamps for phase timing.

    The default source derives timestamps from [Unix.gettimeofday],
    which is precise enough for the millisecond-scale phases the
    tracer measures but is not guaranteed monotonic across NTP steps.
    A process that links a true monotonic clock (the benchmark harness
    links bechamel's) can install it once at startup with
    {!set_source}; every consumer of {!now_ns} picks it up. *)

val now_ns : unit -> int
(** Current timestamp in nanoseconds.  Only differences of two
    [now_ns] readings are meaningful; the epoch is unspecified. *)

val set_source : (unit -> int) -> unit
(** Replace the timestamp source.  Call once, before any timers start:
    mixing readings of two sources in one measurement yields garbage
    deltas. *)

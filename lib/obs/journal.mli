(** The flight recorder: an always-on, low-overhead journal of spans
    and instant events, one lock-free ring buffer per domain.

    Recording is designed to be left enabled in production: when the
    journal is {e off} every probe costs one atomic load; when {e on}
    a record is a timestamp read, four plain array stores into a
    preallocated slot and one atomic store publishing the ring head.
    Rings never allocate on the hot path and never block — when a ring
    is full the oldest record is overwritten, so the journal always
    holds the newest [capacity] records per domain and counts what it
    dropped.

    Each record carries a {!kind} (span begin, span end, or instant
    event), a {!category} (which subsystem), an interned name and two
    integer payloads whose meaning is per-name (a result count, a
    queue index...).  Spans must be emitted well-nested per domain;
    {!spans} reconstructs the span forest of a snapshot and tolerates
    windows that start or end mid-span (the ring wrapped, or spans
    were still open), marking the clipped spans [truncated].

    Snapshots copy the rings without stopping writers: a record
    written concurrently with the copy can tear.  Snapshots are
    diagnostics; the reconstruction tolerates arbitrary prefixes, so a
    torn record costs at most one bogus span. *)

(** {1 Vocabulary} *)

type category =
  | Engine    (** query evaluation: prepare, run, bottom-up, materialize *)
  | Pool      (** the work-stealing domain pool: tasks, steals, parking *)
  | Qos       (** resource governance: budget trips, breaker transitions *)
  | Service   (** the request lifecycle: queue, parse, eval, write, shed *)
  | Runtime   (** the runtime sampler's own marks *)
  | Evloop    (** the event-driven server: loop turns, flushes, coalescing *)

val all_categories : category list

val category_label : category -> string
(** Stable lower-case name, used in JSON and Chrome traces. *)

val category_of_label : string -> category option

type kind = Begin | End | Instant

val name : string -> int
(** Intern a span/event name, returning the id the recording functions
    take.  Intern once at module initialization, not per record: the
    table takes a lock.  Interning the same string twice returns the
    same id. *)

(** {1 Recording} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Turn the recorder on or off, process-wide, at any time.  Off is
    the default; every probe then costs a single atomic load. *)

val configure : ?capacity:int -> unit -> unit
(** Set the per-domain ring capacity (rounded up to a power of two,
    minimum 2; default 16384 records).  Affects rings created after
    the call — call before {!set_enabled}, or follow with {!reset}. *)

val reset : unit -> unit
(** Drop every ring.  Writers lazily re-register on their next record,
    picking up the current {!configure} capacity.  Meant for tests. *)

val begin_span : category -> int -> ?ts:int -> ?a:int -> ?b:int -> unit -> unit
(** Open a span named by an interned id.  [ts] (default: now) lets a
    caller backdate a span it measured itself — the accept-queue wait
    is recorded at dequeue time with the enqueue timestamp.  [a]/[b]
    (default 0) are the payloads. *)

val end_span : category -> int -> ?ts:int -> ?a:int -> ?b:int -> unit -> unit
(** Close the innermost open span of this name.  The [b] payload of
    the End record becomes the reconstructed span's [sb] (so a result
    count known only at the end still lands on the span). *)

val instant : category -> int -> ?ts:int -> ?a:int -> ?b:int -> unit -> unit
(** A point event. *)

val with_span : category -> int -> ?a:int -> (unit -> 'x) -> 'x
(** [begin_span]/run/[end_span], closing the span when the thunk
    raises too.  When both the journal and span labelling are disabled
    this is two atomic loads plus the call. *)

(** {1 Label slots}

    Support for the sampling profiler ([Sxsi_prof]): when labelling is
    enabled, every span enter/exit also maintains a per-domain slot
    holding the interned id of the domain's current {e label path} (the
    chain of open span names, e.g. [service/request > engine/count]).
    Publishing the path is one plain int store; a sampler attributes a
    tick to a domain with one racy int read — a torn or stale read
    costs one sample attributed one span early or late, which a
    statistical profile absorbs.  Span entry and exit additionally
    record [Gc.counters] deltas, so each path accumulates the minor and
    major words its own code (excluding children) allocated. *)

val labels_enabled : unit -> bool

val set_labels_enabled : bool -> unit
(** Turn path labelling on or off, process-wide.  Off is the default.
    Enabling mid-span is safe: exits that never saw their enter are
    ignored, so slots converge to the true path as spans unwind. *)

val current_path : unit -> int
(** The calling domain's current label path id (0 when labelling is
    off or no span is open).  Used to attribute lock-contention waits
    to whatever the blocked domain was doing. *)

val set_tick_hook : (unit -> unit) -> unit
(** Install a callback invoked at every span boundary while labels are
    on, before the boundary updates the slot path.  The cooperative
    sampler backend in [Sxsi_prof] uses this to tick from the working
    domains themselves instead of a dedicated sampler domain (which on
    a single-core machine turns every minor GC into a scheduling
    round-trip).  The hook must be cheap and must not raise. *)

val clear_tick_hook : unit -> unit
(** Reset the span-boundary callback to a no-op. *)

val slot_paths : unit -> (int * int) list
(** [(domain, current path id)] for every domain that has recorded a
    span since labelling was first enabled.  The paths are racy reads
    of live slots — exactly what a sampler wants. *)

val retire_slot : unit -> unit
(** Drop the calling domain's slot.  Call just before a worker domain
    exits (the pool and the bench harness do): a dead domain's slot
    would otherwise be sampled forever at its last path, inflating the
    idle/unattributed share.  The slot's accumulated allocation is
    folded into a retired pool so {!alloc_snapshot} stays monotonic. *)

val path_count : unit -> int
(** Number of interned paths; valid path ids are [0 .. count-1].
    Only grows. *)

val path_parts : int -> string list
(** The span names along a path, outermost first.  Path 0 (and any
    out-of-range id) is the empty list. *)

val alloc_snapshot : unit -> float array * float array
(** [(minor_words, major_words)] attributed to each path id (self
    allocation, children excluded), summed over all domains, both
    arrays sized {!path_count}.  Monotonic; diff two snapshots for a
    window. *)

val ring_stats : unit -> (int * int * int * int) list
(** Per ring: [(domain, dropped, records_held, capacity)] — the
    per-domain view behind the [sxsi_journal_*] metrics. *)

(** {1 Snapshots} *)

type record = {
  seq : int;        (** position in the ring's write sequence *)
  ts : int;         (** {!Clock} nanoseconds *)
  kind : kind;
  cat : category;
  rname : string;
  a : int;
  b : int;
}

type snapshot = {
  sdomain : int;            (** the writer's [Domain.self] id *)
  dropped : int;            (** records overwritten and lost *)
  records : record array;   (** oldest first *)
}

val snapshot : unit -> snapshot list
(** Copy every ring, ordered by domain id, without stopping writers. *)

(** {1 Cursors} *)

type cursor

val cursor : unit -> cursor
(** Mark the current position of {e this} domain's ring. *)

val since : cursor -> snapshot
(** The records this domain wrote after the mark (clipped to what the
    ring still holds), as a snapshot of one ring. *)

val records_total : unit -> int
(** Records ever written, across all rings (including overwritten
    ones). *)

val dropped_total : unit -> int
(** Records lost to ring wrap-around, across all rings. *)

val occupancy : unit -> (int * int * int) list
(** Per ring: [(domain, records_held, capacity)]. *)

(** {1 Span reconstruction} *)

type span = {
  sname : string;
  scat : category;
  start_ns : int;
  end_ns : int;
  sa : int;         (** the Begin record's [a] payload *)
  sb : int;         (** the End record's [b] payload *)
  truncated : bool; (** an endpoint was synthesized from the window edge *)
  children : span list;
}

val spans : snapshot -> span list
(** The span forest of one ring's window, oldest first.  Instants
    become zero-length childless spans.  Robust against truncation at
    any record offset: an End without its Begin opens at the window
    start, a Begin without its End closes at the window end, both
    marked [truncated]. *)

val span_to_json : span -> Json.t
(** Object with [name], [cat], [start_ns], [dur_ns], [a], [b],
    [truncated] (only when true) and [children] (only when
    non-empty) — the shape of a slow-query-log line's [spans]. *)

(** {1 Interchange} *)

val to_json : snapshot list -> Json.t
(** The wire form of a journal dump (schema [sxsi-journal-v1]): what
    the service's [DUMP] request returns. *)

val of_json : Json.t -> (snapshot list, string) result
(** Parse a dump back ([sxsi trace-export] reads these). *)

val to_chrome_trace : snapshot list -> Json.t
(** Convert a dump to Chrome [trace_event] JSON (an object with a
    [traceEvents] array of complete/instant events, one thread per
    domain), loadable in Perfetto or [chrome://tracing]. *)

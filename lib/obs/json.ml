type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter                                                              *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_finite f then begin
    (* %.17g is lossless but ugly; %g loses precision.  Use the
       shortest of the two that round-trips. *)
    let short = Printf.sprintf "%g" f in
    let s = if float_of_string short = f then short else Printf.sprintf "%.17g" f in
    (* "%g" of a whole float prints "42": still a valid JSON number *)
    Buffer.add_string buf s
  end
  else Buffer.add_string buf "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      l;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      members;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'; incr pos
        | '\\' -> Buffer.add_char buf '\\'; incr pos
        | '/' -> Buffer.add_char buf '/'; incr pos
        | 'b' -> Buffer.add_char buf '\b'; incr pos
        | 'f' -> Buffer.add_char buf '\012'; incr pos
        | 'n' -> Buffer.add_char buf '\n'; incr pos
        | 'r' -> Buffer.add_char buf '\r'; incr pos
        | 't' -> Buffer.add_char buf '\t'; incr pos
        | 'u' ->
          if !pos + 4 >= n then fail "short \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
          in
          (* non-ASCII escapes decode to UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          pos := !pos + 5
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin incr pos; Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; members ((k, v) :: acc)
          | Some '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin incr pos; List [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; elems (v :: acc)
          | Some ']' -> incr pos; List (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

(* Service-layer tests: LRU cache behaviour, registry eviction,
   protocol round trips (qcheck), the end-to-end protocol session
   (with cache-hit accounting via STATS), and the TCP front end. *)

open Sxsi_service

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* LRU                                                                  *)
(* ------------------------------------------------------------------ *)

let test_lru_basic () =
  let c = Lru.create ~cap:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  (* "b" is now least recently used: adding "c" evicts it *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  Alcotest.(check int) "length" 2 (Lru.length c)

let test_lru_replace_and_remove () =
  let c = Lru.create ~cap:3 in
  Lru.add c 1 "x";
  Lru.add c 1 "y";
  Alcotest.(check int) "replace keeps one entry" 1 (Lru.length c);
  Alcotest.(check (option string)) "replaced" (Some "y") (Lru.find c 1);
  Lru.remove c 1;
  Alcotest.(check (option string)) "removed" None (Lru.find c 1);
  Lru.remove c 1;
  Alcotest.(check int) "remove is idempotent" 0 (Lru.length c)

let test_lru_zero_cap () =
  let c = Lru.create ~cap:0 in
  Lru.add c "a" 1;
  Alcotest.(check (option int)) "cap 0 stores nothing" None (Lru.find c "a");
  Alcotest.(check int) "cap 0 is empty" 0 (Lru.length c)

let prop_lru_order =
  (* after arbitrary adds/finds, to_list is duplicate-free, bounded by
     cap, and the most recently touched key is first *)
  qtest "lru invariants" QCheck2.Gen.(list (pair (int_range 0 9) bool))
    (fun ops ->
      let cap = 4 in
      let c = Lru.create ~cap in
      let last_touch = ref None in
      List.iter
        (fun (k, is_add) ->
          if is_add then begin
            Lru.add c k k;
            last_touch := Some k
          end
          else begin
            match Lru.find c k with
            | Some _ -> last_touch := Some k
            | None -> ()
          end)
        ops;
      let l = Lru.to_list c in
      let keys = List.map fst l in
      List.length l <= cap
      && List.sort_uniq compare keys = List.sort compare keys
      && (match (!last_touch, keys) with
         | Some k, first :: _ -> k = first
         | Some _, [] -> false
         | None, _ -> keys = []))

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let small_doc tag n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("<" ^ tag ^ ">");
  for i = 1 to n do
    Buffer.add_string buf (Printf.sprintf "<item n=\"%d\">payload %d</item>" i i)
  done;
  Buffer.add_string buf ("</" ^ tag ^ ">");
  Sxsi_xml.Document.of_xml (Buffer.contents buf)

let test_registry_eviction () =
  let d1 = small_doc "a" 50 and d2 = small_doc "b" 50 and d3 = small_doc "c" 50 in
  let b1 = Sxsi_xml.Document.space_bits d1 / 8 in
  let b2 = Sxsi_xml.Document.space_bits d2 / 8 in
  (* room for two of the three *)
  let r = Registry.create ~max_bytes:(b1 + b2 + 16) () in
  ignore (Registry.add r "d1" d1);
  ignore (Registry.add r "d2" d2);
  Alcotest.(check int) "two registered" 2 (Registry.count r);
  (* touch d1 so d2 is the LRU victim *)
  Alcotest.(check bool) "find d1" true (Registry.find r "d1" <> None);
  ignore (Registry.add r "d3" d3);
  Alcotest.(check bool) "d2 evicted" true (Registry.find r "d2" = None);
  Alcotest.(check bool) "d1 kept" true (Registry.find r "d1" <> None);
  Alcotest.(check int) "eviction counted" 1 (Registry.evictions r);
  (* generations are unique across registrations *)
  let g1 = (Option.get (Registry.find r "d1")).Registry.generation in
  let g3 = (Option.get (Registry.find r "d3")).Registry.generation in
  Alcotest.(check bool) "distinct generations" true (g1 <> g3)

let test_registry_replace_changes_generation () =
  let r = Registry.create () in
  let e1 = Registry.add r "x" (small_doc "a" 5) in
  let e2 = Registry.add r "x" (small_doc "a" 7) in
  Alcotest.(check bool) "generation bumped" true
    (e1.Registry.generation <> e2.Registry.generation);
  Alcotest.(check int) "still one document" 1 (Registry.count r)

(* ------------------------------------------------------------------ *)
(* Protocol round trips (qcheck)                                        *)
(* ------------------------------------------------------------------ *)

let gen_word =
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; '0'; '9'; '-'; '_'; '.'; '/'; '['; ']';
                               '('; ')'; '@'; '*'; '"'; '='; ',' ])
      (int_range 1 8))

let gen_name =
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; 'x'; '0'; '1'; '-'; '_'; '.' ])
      (int_range 1 10))

let gen_query =
  QCheck2.Gen.(map (String.concat " ") (list_size (int_range 1 4) gen_word))

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun name path -> Protocol.Load { name; path }) gen_name gen_name;
        map2 (fun doc query -> Protocol.Query { doc; query }) gen_name gen_query;
        map2 (fun doc query -> Protocol.Count { doc; query }) gen_name gen_query;
        map2 (fun doc query -> Protocol.Materialize { doc; query }) gen_name gen_query;
        return Protocol.Stats;
        return Protocol.Metrics;
        map2 (fun doc query -> Protocol.Trace { doc; query }) gen_name gen_query;
        map (fun name -> Protocol.Evict name) gen_name;
        return Protocol.Quit;
      ])

(* payload/message lines: printable, newline-free (the printer's only
   requirement; dot-stuffing must make "." and ".x" safe) *)
let gen_line =
  QCheck2.Gen.(
    map (String.concat "")
      (list_size (int_range 0 6) (oneofl [ "."; ".."; "a"; "xyz"; " "; "<a>"; "&"; "=" ])))

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        map (fun toks -> Protocol.Ok toks) (list_size (int_range 0 4) gen_word);
        map (fun lines -> Protocol.Data lines) (list_size (int_range 0 8) gen_line);
        map (fun m -> Protocol.Err m) (map2 (fun w rest -> w ^ rest) gen_word gen_line);
      ])

let prop_request_roundtrip =
  qtest "request print -> parse round trip" gen_request (fun r ->
      Protocol.parse_request (Protocol.print_request r) = Ok r)

let split_wire s =
  (* the wire form ends with '\n'; drop the final empty fragment *)
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rev -> List.rev rev
  | _ -> Alcotest.fail "response not newline-terminated"

let prop_response_roundtrip =
  qtest "response print -> parse round trip" gen_response (fun r ->
      Protocol.parse_response (split_wire (Protocol.print_response r)) = Ok (r, []))

let prop_response_stream_roundtrip =
  qtest "response print -> incremental read round trip" gen_response (fun r ->
      let lines = ref (split_wire (Protocol.print_response r)) in
      let next () =
        match !lines with
        | [] -> None
        | l :: tl ->
          lines := tl;
          Some l
      in
      Protocol.read_response next = Ok r && !lines = [])

let test_parse_request_errors () =
  let bad s =
    match Protocol.parse_request s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "unknown verb" true (bad "FROB x");
  Alcotest.(check bool) "LOAD missing path" true (bad "LOAD x");
  Alcotest.(check bool) "COUNT missing query" true (bad "COUNT x");
  Alcotest.(check bool) "STATS with argument" true (bad "STATS now");
  Alcotest.(check bool) "METRICS with argument" true (bad "METRICS all");
  Alcotest.(check bool) "TRACE missing query" true (bad "TRACE d");
  Alcotest.(check bool) "case-insensitive verb" true
    (Protocol.parse_request "count d //a" = Ok (Protocol.Count { doc = "d"; query = "//a" }))

(* ------------------------------------------------------------------ *)
(* End-to-end: drive the service through the protocol layer             *)
(* ------------------------------------------------------------------ *)

let stat_of_lines lines key =
  let prefix = key ^ "=" in
  let n = String.length prefix in
  List.find_map
    (fun l ->
      if String.length l > n && String.sub l 0 n = prefix then
        Some (String.sub l n (String.length l - n))
      else None)
    lines

let expect_ok = function
  | Protocol.Ok toks -> toks
  | Protocol.Err msg -> Alcotest.fail ("unexpected ERR: " ^ msg)
  | Protocol.Data _ -> Alcotest.fail "unexpected DATA"

let expect_data = function
  | Protocol.Data lines -> lines
  | Protocol.Err msg -> Alcotest.fail ("unexpected ERR: " ^ msg)
  | Protocol.Ok _ -> Alcotest.fail "unexpected OK"

let stats_value svc key =
  match stat_of_lines (expect_data (Service.handle svc Protocol.Stats)) key with
  | Some v -> v
  | None -> Alcotest.fail ("STATS missing key " ^ key)

let with_xmark_file f =
  let path = Filename.temp_file "sxsi_service" ".xml" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Sxsi_datagen.Xmark.generate ~scale:120 ()));
      f path)

let test_end_to_end () =
  with_xmark_file (fun path ->
      let svc = Service.create () in
      let line l = Service.handle_line svc l in
      (* LOAD through the protocol *)
      (match line (Printf.sprintf "LOAD bench %s" path) with
      | Protocol.Ok ("loaded" :: "bench" :: _) -> ()
      | r -> Alcotest.fail ("LOAD failed: " ^ Protocol.print_response r));
      (* the same COUNT twice: second one must hit the compiled cache *)
      let c1 = expect_ok (line "COUNT bench //listitem//keyword") in
      let c2 = expect_ok (line "COUNT bench //listitem//keyword") in
      Alcotest.(check (list string)) "counts agree" c1 c2;
      Alcotest.(check string) "second request hit the compiled cache" "1"
        (stats_value svc "compiled_hits");
      Alcotest.(check string) "first request was the only miss" "1"
        (stats_value svc "compiled_misses");
      Alcotest.(check string) "count cache hit too" "1" (stats_value svc "count_hits");
      (* QUERY returns as many preorder ids as COUNT reported *)
      let ids = expect_data (line "QUERY bench //listitem//keyword") in
      Alcotest.(check int) "QUERY cardinality" (int_of_string (List.hd c1))
        (List.length ids);
      Alcotest.(check bool) "ids are numeric" true
        (List.for_all (fun s -> match int_of_string_opt s with Some _ -> true | None -> false) ids);
      (* MATERIALIZE round-trips through the document serializer *)
      let xml = expect_data (line "MATERIALIZE bench /site/regions") in
      Alcotest.(check bool) "materialized XML" true
        (match xml with l :: _ -> String.length l > 0 && l.[0] = '<' | [] -> false);
      (* METRICS returns a Prometheus exposition with our sample lines *)
      let metrics = expect_data (line "METRICS") in
      let has_sample name =
        List.exists
          (fun l ->
            String.length l > String.length name
            && String.sub l 0 (String.length name) = name
            && (l.[String.length name] = ' ' || l.[String.length name] = '{'))
          metrics
      in
      List.iter
        (fun name ->
          Alcotest.(check bool) ("METRICS sample " ^ name) true (has_sample name))
        [
          "sxsi_requests_total"; "sxsi_documents";
          "sxsi_request_duration_seconds_bucket"; "sxsi_request_duration_seconds_count";
        ];
      Alcotest.(check bool) "METRICS has TYPE comments" true
        (List.exists
           (fun l -> String.length l > 6 && String.sub l 0 6 = "# TYPE")
           metrics);
      (* TRACE answers one line that parses as JSON — the regression
         guard for the --trace output format *)
      (match expect_data (line "TRACE bench //listitem//keyword") with
      | [ json_line ] -> (
        match Sxsi_obs.Json.of_string json_line with
        | Ok j ->
          Alcotest.(check bool) "trace has phases" true
            (Sxsi_obs.Json.member "phases" j <> None);
          Alcotest.(check bool) "trace has counters" true
            (Sxsi_obs.Json.member "counters" j <> None);
          (match Sxsi_obs.Json.member "counters" j with
          | Some counters ->
            Alcotest.(check bool) "trace counts results" true
              (Sxsi_obs.Json.member "results" counters
              = Some (Sxsi_obs.Json.Int (int_of_string (List.hd c1))))
          | None -> ())
        | Error e -> Alcotest.failf "TRACE output is not JSON: %s" e)
      | lines -> Alcotest.failf "TRACE returned %d lines" (List.length lines));
      (* errors are ERR, not exceptions *)
      (match line "COUNT nosuch //a" with
      | Protocol.Err _ -> ()
      | _ -> Alcotest.fail "unknown document must ERR");
      (match line "COUNT bench //a[" with
      | Protocol.Err _ -> ()
      | _ -> Alcotest.fail "bad query must ERR");
      (match line "NONSENSE" with
      | Protocol.Err _ -> ()
      | _ -> Alcotest.fail "bad request must ERR");
      (* EVICT drops the document and its cached queries *)
      ignore (expect_ok (line "EVICT bench"));
      (match line "COUNT bench //listitem//keyword" with
      | Protocol.Err _ -> ()
      | _ -> Alcotest.fail "evicted document must ERR");
      Alcotest.(check string) "registry empty" "0" (stats_value svc "documents");
      Alcotest.(check string) "compiled cache purged" "0"
        (stats_value svc "compiled_entries"))

let test_load_reload_invalidates () =
  (* reloading under the same name must not serve stale cached counts *)
  let svc = Service.create () in
  Service.add_document svc "d" (small_doc "a" 10);
  let n1 = expect_ok (Service.handle_line svc "COUNT d //item") in
  Alcotest.(check (list string)) "10 items" [ "10" ] n1;
  Service.add_document svc "d" (small_doc "a" 25);
  let n2 = expect_ok (Service.handle_line svc "COUNT d //item") in
  Alcotest.(check (list string)) "25 items after reload" [ "25" ] n2

let test_corrupt_load_is_err () =
  let path = Filename.temp_file "sxsi_service" ".sxsi" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc "junk");
      let svc = Service.create () in
      match Service.handle_line svc (Printf.sprintf "LOAD d %s" path) with
      | Protocol.Err _ -> ()
      | _ -> Alcotest.fail "corrupt .sxsi must ERR")

(* ------------------------------------------------------------------ *)
(* Concurrency: many domains against one service                        *)
(* ------------------------------------------------------------------ *)

let test_concurrent_counts () =
  let svc = Service.create () in
  Service.add_document svc "d"
    (Sxsi_xml.Document.of_xml (Sxsi_datagen.Xmark.generate ~scale:120 ()));
  let queries =
    [| "//listitem//keyword"; "//keyword"; "/site/regions"; "//item"; "//emph" |]
  in
  let expected = Array.map (fun q -> expect_ok (Service.handle_line svc ("COUNT d " ^ q))) queries in
  let worker i () =
    let ok = ref true in
    for r = 0 to 40 do
      let j = (i + r) mod Array.length queries in
      let got = Service.handle svc (Protocol.Count { doc = "d"; query = queries.(j) }) in
      if got <> Protocol.Ok expected.(j) then ok := false
    done;
    !ok
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  let all_ok = List.for_all Domain.join domains in
  Alcotest.(check bool) "all domains saw consistent counts" true all_ok

(* ------------------------------------------------------------------ *)
(* TCP front end                                                        *)
(* ------------------------------------------------------------------ *)

(* Which TCP front end the e2e tests drive: the threaded server by
   default, the event-driven one under SXSI_SERVE_MODE=evloop (the CI
   matrix runs both).  Tests about threaded-only mechanics (the
   accept-queue shed path) pin [~mode:`Threaded]. *)
let serve_mode () =
  match Sys.getenv_opt "SXSI_SERVE_MODE" with
  | Some "evloop" -> `Evloop
  | Some _ | None -> `Threaded

(* Run [body port] against a live server, stopping and joining it
   afterwards whatever happens.  [workers]/[queue] only apply to the
   threaded front end. *)
let with_server ?workers ?queue ?mode svc body =
  let mode = match mode with Some m -> m | None -> serve_mode () in
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        match mode with
        | `Threaded ->
          Server.serve ?workers ?queue ~port:0
            ~on_listen:(fun p -> Atomic.set port p)
            ~stop:(fun () -> Atomic.get stop)
            svc
        | `Evloop ->
          Ev_server.serve ~port:0
            ~on_listen:(fun p -> Atomic.set port p)
            ~stop:(fun () -> Atomic.get stop)
            (Shards.of_service svc))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
        Domain.cpu_relax ()
      done;
      Alcotest.(check bool) "server came up" true (Atomic.get port <> 0);
      body (Atomic.get port))

let test_tcp_server () =
  let svc = Service.create () in
  Service.add_document svc "d" (small_doc "root" 20);
  with_server svc (fun port ->
      let run_session lines =
        let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
        let ic, oc = Unix.open_connection addr in
        Fun.protect
          ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
          (fun () ->
            List.map
              (fun l ->
                output_string oc (l ^ "\n");
                flush oc;
                match
                  Protocol.read_response (fun () ->
                      match input_line ic with
                      | line -> Some line
                      | exception End_of_file -> None)
                with
                | Ok r -> r
                | Error e -> Alcotest.fail ("client read: " ^ e))
              lines)
      in
      (match run_session [ "COUNT d //item"; "QUIT" ] with
      | [ Protocol.Ok [ "20" ]; Protocol.Ok [ "bye" ] ] -> ()
      | rs ->
        Alcotest.fail
          ("unexpected responses: "
          ^ String.concat " | " (List.map Protocol.print_response rs)));
      (* a second connection shares the warm cache *)
      (match run_session [ "COUNT d //item"; "STATS"; "QUIT" ] with
      | [ Protocol.Ok [ "20" ]; Protocol.Data lines; Protocol.Ok [ "bye" ] ] ->
        Alcotest.(check bool) "cache shared across connections" true
          (match stat_of_lines lines "compiled_hits" with
          | Some v -> int_of_string v >= 1
          | None -> false)
      | rs ->
        Alcotest.fail
          ("unexpected responses: "
          ^ String.concat " | " (List.map Protocol.print_response rs))))

let connect port = Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

(* Regression for the worker-reaping race of the domain-per-connection
   server: cycle many short-lived connections and verify, once [serve]
   has returned (joining its fixed workers), that every accepted session
   also finished — no connection, and so no domain, leaked. *)
let test_connection_churn () =
  let svc = Service.create () in
  Service.add_document svc "d" (small_doc "root" 10);
  let rounds = 40 in
  with_server ~workers:2 ~queue:8 svc (fun port ->
      for _ = 1 to rounds do
        let ic, oc = connect port in
        Fun.protect
          ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
          (fun () ->
            output_string oc "COUNT d //item\nQUIT\n";
            flush oc;
            match Protocol.read_response (fun () ->
                match input_line ic with
                | line -> Some line
                | exception End_of_file -> None)
            with
            | Ok (Protocol.Ok [ "10" ]) -> ()
            | Ok r -> Alcotest.fail ("unexpected: " ^ Protocol.print_response r)
            | Error e -> Alcotest.fail ("client read: " ^ e))
      done);
  (* serve has returned: every worker is joined, so all sessions ended *)
  let opened = int_of_string (stats_value svc "connections_opened") in
  let closed = int_of_string (stats_value svc "connections_closed") in
  Alcotest.(check int) "every connection accepted" rounds opened;
  Alcotest.(check int) "every session finished" opened closed;
  Alcotest.(check string) "nothing shed" "0" (stats_value svc "connections_shed")

let test_load_shedding () =
  let svc = Service.create () in
  Service.add_document svc "d" (small_doc "root" 5);
  with_server ~workers:1 ~queue:1 ~mode:`Threaded svc (fun port ->
      (* occupy the single worker; reading a response proves the worker
         (not the accept loop) owns this session *)
      let ic_a, oc_a = connect port in
      output_string oc_a "COUNT d //item\n";
      flush oc_a;
      Alcotest.(check string) "worker busy with A" "OK 5" (input_line ic_a);
      (* fill the one queue slot *)
      let ic_b, oc_b = connect port in
      (* wait until the accept loop has queued B *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        (try int_of_string (stats_value svc "connections_opened") < 2
         with _ -> true)
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.01
      done;
      (* the next connection must be refused with a protocol error
         carrying the SHED code and a retry hint *)
      let ic_c, _oc_c = connect port in
      let shed_line = input_line ic_c in
      Alcotest.(check bool) "shed response is ERR" true
        (String.length shed_line > 4 && String.sub shed_line 0 4 = "ERR ");
      let shed_resp =
        Protocol.Err (String.sub shed_line 4 (String.length shed_line - 4))
      in
      Alcotest.(check (option string)) "shed code" (Some "SHED")
        (Protocol.err_code shed_resp);
      Alcotest.(check bool) "shed retry hint" true
        (Protocol.retry_after_ms shed_resp <> None);
      Alcotest.(check bool) "shed closes the connection" true
        (match input_line ic_c with _ -> false | exception End_of_file -> true);
      (try Unix.shutdown_connection ic_c with _ -> ());
      (* release the worker: A ends, B gets served from the queue *)
      (try Unix.shutdown_connection ic_a with _ -> ());
      output_string oc_b "COUNT d //item\nQUIT\n";
      flush oc_b;
      Alcotest.(check string) "queued connection served" "OK 5" (input_line ic_b);
      try Unix.shutdown_connection ic_b with _ -> ());
  Alcotest.(check string) "shed counted" "1" (stats_value svc "connections_shed");
  let opened = int_of_string (stats_value svc "connections_opened") in
  let closed = int_of_string (stats_value svc "connections_closed") in
  Alcotest.(check int) "A and B accepted" 2 opened;
  Alcotest.(check int) "A and B finished" 2 closed

(* With [domains > 1] the service owns an evaluation pool: results must
   be identical to the sequential service, and the pool's counters must
   join the exposition. *)
let test_service_domains () =
  let seq = Service.create () in
  let opts = { Service.default_options with Service.domains = 2 } in
  let par = Service.create ~options:opts () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown par)
    (fun () ->
      let xml = Sxsi_datagen.Xmark.generate ~scale:120 () in
      Service.add_document seq "d" (Sxsi_xml.Document.of_xml xml);
      Service.add_document par "d"
        (Sxsi_xml.Document.build ?pool:(Service.pool par) xml);
      List.iter
        (fun q ->
          let line = "COUNT d " ^ q in
          Alcotest.(check (list string)) q
            (expect_ok (Service.handle_line seq line))
            (expect_ok (Service.handle_line par line)))
        [ "//listitem//keyword"; "//keyword"; "//item"; "//emph"; "/site/regions" ];
      let metrics = expect_data (Service.handle par Protocol.Metrics) in
      Alcotest.(check bool) "pool metrics exposed" true
        (List.exists
           (fun l ->
             String.length l >= 21 && String.sub l 0 21 = "sxsi_pool_tasks_total")
           metrics))

(* ------------------------------------------------------------------ *)
(* Resource governance over live TCP: every coded ERR the protocol     *)
(* documents, driven by failpoints where a fault is needed             *)
(* ------------------------------------------------------------------ *)

module Failpoint = Sxsi_qos.Failpoint

let with_clean_failpoints f = Fun.protect ~finally:Failpoint.deactivate_all f

(* One request/response exchange on an open connection. *)
let exchange ic oc line =
  output_string oc (line ^ "\n");
  flush oc;
  match
    Protocol.read_response (fun () ->
        match input_line ic with
        | line -> Some line
        | exception End_of_file -> None)
  with
  | Ok r -> r
  | Error e -> Alcotest.fail ("client read: " ^ e)

let check_code label expected resp =
  Alcotest.(check (option string)) label (Some expected) (Protocol.err_code resp)

let test_deadline_verb () =
  let svc = Service.create () in
  (match Service.handle svc (Protocol.Deadline 50) with
  | Protocol.Ok [ "deadline"; "50" ] -> ()
  | r -> Alcotest.fail ("unexpected: " ^ Protocol.print_response r));
  (match Service.handle svc (Protocol.Deadline 0) with
  | Protocol.Ok [ "deadline"; "off" ] -> ()
  | r -> Alcotest.fail ("unexpected: " ^ Protocol.print_response r));
  (match Service.handle_line svc "DEADLINE nope" with
  | Protocol.Err _ -> ()
  | r -> Alcotest.fail ("unexpected: " ^ Protocol.print_response r))

(* ERR DEADLINE from a request-level deadline, then ERR BREAKER once
   the per-document breaker has seen enough consecutive blowups. *)
let test_err_deadline_then_breaker () =
  with_clean_failpoints (fun () ->
      let svc =
        Service.create
          ~options:
            {
              Service.default_options with
              default_deadline_ms = 40;
              breaker_threshold = 2;
              breaker_cooldown_ms = 60_000;
            }
          ()
      in
      Service.add_document svc "d" (small_doc "root" 5);
      Failpoint.activate "engine.eval" (Failpoint.Delay_ms 80);
      with_server svc (fun port ->
          let ic, oc = connect port in
          Fun.protect
            ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
            (fun () ->
              check_code "first overrun" "DEADLINE" (exchange ic oc "COUNT d //item");
              check_code "second overrun" "DEADLINE" (exchange ic oc "COUNT d //item");
              (* breaker open: refused without evaluating *)
              let r = exchange ic oc "COUNT d //item" in
              check_code "breaker refuses" "BREAKER" r;
              Alcotest.(check bool) "retry hint present" true
                (Protocol.retry_after_ms r <> None);
              ignore (exchange ic oc "QUIT")));
      Alcotest.(check string) "deadline errors counted" "2"
        (stats_value svc "deadline_errors");
      Alcotest.(check string) "breaker rejection counted" "1"
        (stats_value svc "breaker_rejections");
      let metrics = Service.metrics_text svc in
      Alcotest.(check bool) "breaker gauge exported" true
        (let needle = "sxsi_qos_breaker_open 1" in
         let n = String.length needle in
         let rec find i =
           i + n <= String.length metrics
           && (String.sub metrics i n = needle || find (i + 1))
         in
         find 0))

let test_err_budget () =
  let svc =
    Service.create
      ~options:
        { Service.default_options with max_results = 3; max_result_bytes = 64 }
      ()
  in
  Service.add_document svc "d" (small_doc "root" 10);
  with_server svc (fun port ->
      let ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
        (fun () ->
          check_code "result cap" "BUDGET" (exchange ic oc "QUERY d //item");
          check_code "byte cap" "BUDGET" (exchange ic oc "MATERIALIZE d //item");
          ignore (exchange ic oc "QUIT")));
  Alcotest.(check string) "budget errors counted" "2" (stats_value svc "budget_errors")

let test_err_injected_and_toolong () =
  with_clean_failpoints (fun () ->
      let svc = Service.create () in
      Service.add_document svc "d" (small_doc "root" 5);
      with_server svc (fun port ->
          let ic, oc = connect port in
          Fun.protect
            ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
            (fun () ->
              Failpoint.activate "engine.eval" Failpoint.Fail;
              check_code "injected fault" "INJECTED" (exchange ic oc "COUNT d //item");
              Failpoint.deactivate_all ();
              (* an oversized request line: refused, drained, session survives *)
              let long = "COUNT d " ^ String.make (Server.default_max_line + 100) 'x' in
              check_code "oversized line" "TOOLONG" (exchange ic oc long);
              (match exchange ic oc "COUNT d //item" with
              | Protocol.Ok [ "5" ] -> ()
              | r ->
                Alcotest.fail ("session should survive TOOLONG: " ^ Protocol.print_response r));
              ignore (exchange ic oc "QUIT"))))

(* The DEADLINE verb scopes a deadline to the session: on by request,
   off again at 0; the service default stays untouched. *)
let test_deadline_session_override () =
  with_clean_failpoints (fun () ->
      let svc = Service.create () in
      Service.add_document svc "d" (small_doc "root" 5);
      Failpoint.activate "engine.eval" (Failpoint.Delay_ms 60);
      with_server svc (fun port ->
          let ic, oc = connect port in
          Fun.protect
            ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
            (fun () ->
              (* no deadline configured: slow but fine *)
              (match exchange ic oc "COUNT d //item" with
              | Protocol.Ok [ "5" ] -> ()
              | r -> Alcotest.fail ("unexpected: " ^ Protocol.print_response r));
              (match exchange ic oc "DEADLINE 30" with
              | Protocol.Ok [ "deadline"; "30" ] -> ()
              | r -> Alcotest.fail ("unexpected: " ^ Protocol.print_response r));
              (* QUERY, not COUNT: the result-count cache would answer a
                 repeated COUNT before any budget check runs *)
              check_code "session deadline enforced" "DEADLINE"
                (exchange ic oc "QUERY d //item");
              (match exchange ic oc "DEADLINE 0" with
              | Protocol.Ok [ "deadline"; "off" ] -> ()
              | r -> Alcotest.fail ("unexpected: " ^ Protocol.print_response r));
              (match exchange ic oc "QUERY d //item" with
              | Protocol.Data ids -> Alcotest.(check int) "all ids" 5 (List.length ids)
              | r -> Alcotest.fail ("unexpected: " ^ Protocol.print_response r));
              ignore (exchange ic oc "QUIT"))))

(* End to end: a server under a 50ms default deadline answers a
   pathological (failpoint-delayed) query with ERR DEADLINE promptly —
   the delay is 75ms, so ~1.5x the deadline — and the single worker is
   reused for a healthy request afterwards. *)
let test_e2e_deadline_prompt_and_worker_reused () =
  with_clean_failpoints (fun () ->
      let svc =
        Service.create
          ~options:{ Service.default_options with default_deadline_ms = 50 }
          ()
      in
      Service.add_document svc "d" (small_doc "root" 5);
      Failpoint.activate "engine.eval" (Failpoint.Delay_ms 75);
      with_server ~workers:1 svc (fun port ->
          let ic, oc = connect port in
          Fun.protect
            ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
            (fun () ->
              let t0 = Unix.gettimeofday () in
              check_code "pathological query deadlines" "DEADLINE"
                (exchange ic oc "COUNT d //item");
              let dt = Unix.gettimeofday () -. t0 in
              (* ~1.5x the deadline plus slack for a loaded CI machine;
                 the point is bounded, not exact *)
              Alcotest.(check bool)
                (Printf.sprintf "answered promptly (%.0fms)" (dt *. 1000.))
                true (dt < 1.0);
              ignore (exchange ic oc "QUIT"));
          (* the worker survives the deadline and serves the next
             connection (workers=1: this is the same worker) *)
          Failpoint.deactivate_all ();
          let ic, oc = connect port in
          Fun.protect
            ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
            (fun () ->
              (match exchange ic oc "COUNT d //item" with
              | Protocol.Ok [ "5" ] -> ()
              | r -> Alcotest.fail ("worker not reusable: " ^ Protocol.print_response r));
              ignore (exchange ic oc "QUIT"))))

(* ------------------------------------------------------------------ *)
(* Flight recorder: the DUMP verb and the slow-query log               *)
(* ------------------------------------------------------------------ *)

module Journal = Sxsi_obs.Journal
module Json = Sxsi_obs.Json

let with_flight_recorder f =
  Journal.reset ();
  Journal.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Journal.set_enabled false;
      Journal.reset ())
    f

let test_dump_verb () =
  with_flight_recorder (fun () ->
      let svc = Service.create () in
      Service.add_document svc "d" (small_doc "a" 10);
      ignore (expect_ok (Service.handle_line svc "COUNT d //item"));
      (* DUMP is one JSON line in the journal wire schema *)
      (match expect_data (Service.handle svc Protocol.Dump) with
      | [ json_line ] -> (
        match Json.of_string json_line with
        | Error e -> Alcotest.failf "DUMP is not JSON: %s" e
        | Ok j -> (
          Alcotest.(check bool) "journal schema" true
            (Json.member "schema" j = Some (Json.String "sxsi-journal-v1"));
          match Journal.of_json j with
          | Error e -> Alcotest.failf "DUMP does not decode: %s" e
          | Ok snaps ->
            let cats =
              List.concat_map
                (fun s ->
                  Array.to_list
                    (Array.map (fun r -> Journal.category_label r.Journal.cat) s.Journal.records))
                snaps
            in
            List.iter
              (fun c ->
                Alcotest.(check bool) (c ^ " spans recorded") true (List.mem c cats))
              [ "engine"; "service" ]))
      | lines -> Alcotest.failf "DUMP returned %d lines" (List.length lines));
      (* STATS reports the recorder's state *)
      Alcotest.(check string) "journal_enabled" "1" (stats_value svc "journal_enabled");
      Alcotest.(check bool) "journal_records positive" true
        (int_of_string (stats_value svc "journal_records") > 0))

let test_slow_log () =
  (* a fake clock stepping 2ms per reading makes every request "slow"
     without sleeping *)
  let restore = fun () -> int_of_float (Unix.gettimeofday () *. 1e9) in
  let t = ref 0 in
  let path = Filename.temp_file "sxsi_slow" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sxsi_obs.Clock.set_source restore;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      with_flight_recorder (fun () ->
          Sxsi_obs.Clock.set_source (fun () ->
              t := !t + 2_000_000;
              !t);
          let slow_log = Sxsi_obs.Slowlog.create path in
          let svc =
            Service.create
              ~options:{ Service.default_options with slow_ms = 1 }
              ~slow_log ()
          in
          Service.add_document svc "d" (small_doc "a" 10);
          ignore (expect_ok (Service.handle_line svc "COUNT d //item"));
          (match Service.slow_log svc with
          | None -> Alcotest.fail "service lost its slow log"
          | Some l ->
            Alcotest.(check bool) "an entry was written" true
              (Sxsi_obs.Slowlog.entries l > 0));
          (* shutdown closes (and flushes) the log *)
          Service.shutdown svc;
          let ic = open_in path in
          let lines = In_channel.input_lines ic in
          close_in ic;
          Alcotest.(check bool) "log is non-empty" true (List.length lines > 0);
          let entries =
            List.map
              (fun l ->
                match Json.of_string l with
                | Ok j -> j
                | Error e -> Alcotest.failf "slow-log line is not JSON: %s" e)
              lines
          in
          List.iter
            (fun j ->
              List.iter
                (fun key ->
                  Alcotest.(check bool) ("entry has " ^ key) true
                    (Json.member key j <> None))
                [ "ts_ns"; "request"; "duration_ms"; "status" ])
            entries;
          Alcotest.(check bool) "an entry carries reconstructed spans" true
            (List.exists
               (fun j ->
                 match Json.member "spans" j with
                 | Some (Json.List (_ :: _)) -> true
                 | _ -> false)
               entries)))

let suite =
  ( "service",
    [
      Alcotest.test_case "lru basic" `Quick test_lru_basic;
      Alcotest.test_case "lru replace/remove" `Quick test_lru_replace_and_remove;
      Alcotest.test_case "lru zero capacity" `Quick test_lru_zero_cap;
      prop_lru_order;
      Alcotest.test_case "registry eviction" `Quick test_registry_eviction;
      Alcotest.test_case "registry reload generation" `Quick
        test_registry_replace_changes_generation;
      prop_request_roundtrip;
      prop_response_roundtrip;
      prop_response_stream_roundtrip;
      Alcotest.test_case "request parse errors" `Quick test_parse_request_errors;
      Alcotest.test_case "end-to-end protocol session" `Quick test_end_to_end;
      Alcotest.test_case "reload invalidates caches" `Quick test_load_reload_invalidates;
      Alcotest.test_case "corrupt LOAD is ERR" `Quick test_corrupt_load_is_err;
      Alcotest.test_case "concurrent counts" `Quick test_concurrent_counts;
      Alcotest.test_case "tcp server" `Quick test_tcp_server;
      Alcotest.test_case "connection churn leaks nothing" `Quick test_connection_churn;
      Alcotest.test_case "load shedding" `Quick test_load_shedding;
      Alcotest.test_case "service with domains" `Quick test_service_domains;
      Alcotest.test_case "DEADLINE verb" `Quick test_deadline_verb;
      Alcotest.test_case "ERR DEADLINE then ERR BREAKER" `Quick
        test_err_deadline_then_breaker;
      Alcotest.test_case "ERR BUDGET" `Quick test_err_budget;
      Alcotest.test_case "ERR INJECTED and ERR TOOLONG" `Quick
        test_err_injected_and_toolong;
      Alcotest.test_case "DEADLINE session override" `Quick
        test_deadline_session_override;
      Alcotest.test_case "e2e: prompt deadline, worker reused" `Quick
        test_e2e_deadline_prompt_and_worker_reused;
      Alcotest.test_case "DUMP verb returns the journal" `Quick test_dump_verb;
      Alcotest.test_case "slow-query log end to end" `Quick test_slow_log;
    ] )

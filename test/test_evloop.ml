(* Event-driven front-end tests: the evloop building blocks (netbuf
   framing, the timer wheel, the poll table, single-flight), the loop
   itself, and the Ev_server end to end — pipelined response ordering,
   partial writes under a tiny SO_SNDBUF, the single-flight stampede
   and error fan-out, the idle timeout, and connection churn. *)

open Sxsi_evloop
module Service = Sxsi_service.Service
module Shards = Sxsi_service.Shards
module Ev_server = Sxsi_service.Ev_server
module Protocol = Sxsi_service.Protocol
module Failpoint = Sxsi_qos.Failpoint

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Netbuf                                                               *)
(* ------------------------------------------------------------------ *)

let test_netbuf_lines () =
  let b = Netbuf.create ~initial:16 () in
  Netbuf.add_string b "COUNT d //a\nQUE";
  (match Netbuf.next_line b ~max_line:64 with
  | Netbuf.Line l -> Alcotest.(check string) "first line" "COUNT d //a" l
  | _ -> Alcotest.fail "expected a line");
  Alcotest.(check bool) "partial line pends" true
    (Netbuf.next_line b ~max_line:64 = Netbuf.More);
  Netbuf.add_string b "RY d //b\n";
  (match Netbuf.next_line b ~max_line:64 with
  | Netbuf.Line l -> Alcotest.(check string) "spliced line" "QUERY d //b" l
  | _ -> Alcotest.fail "expected the spliced line");
  Alcotest.(check bool) "drained" true (Netbuf.is_empty b)

let test_netbuf_too_long () =
  let b = Netbuf.create ~initial:16 () in
  (* an oversized line: Too_long consumes nothing, drain_line discards
     exactly through its newline, the next request survives *)
  Netbuf.add_string b (String.make 100 'x');
  Alcotest.(check bool) "oversized without newline" true
    (Netbuf.next_line b ~max_line:8 = Netbuf.Too_long);
  Alcotest.(check bool) "nothing buffered consumed yet" true (Netbuf.length b = 100);
  Alcotest.(check bool) "no newline yet: keep draining" false (Netbuf.drain_line b);
  Netbuf.add_string b "tail\nCOUNT d //a\n";
  Alcotest.(check bool) "drained through the newline" true (Netbuf.drain_line b);
  (match Netbuf.next_line b ~max_line:64 with
  | Netbuf.Line l -> Alcotest.(check string) "next request intact" "COUNT d //a" l
  | _ -> Alcotest.fail "expected the surviving request")

let prop_netbuf_chunked =
  (* however the byte stream is chunked, the framed lines are exactly
     the split of the stream *)
  qtest "netbuf framing is chunking-independent"
    QCheck2.Gen.(list (string_size ~gen:(char_range 'a' 'e') (int_range 0 5)))
    (fun chunks ->
      let stream = String.concat "\n" chunks ^ "\n" in
      let expected = String.split_on_char '\n' stream in
      let expected = List.filteri (fun i _ -> i < List.length expected - 1) expected in
      let b = Netbuf.create ~initial:4 () in
      let got = ref [] in
      String.iter
        (fun ch ->
          Netbuf.add_string b (String.make 1 ch);
          let rec drain () =
            match Netbuf.next_line b ~max_line:1024 with
            | Netbuf.Line l ->
              got := l :: !got;
              drain ()
            | Netbuf.More | Netbuf.Too_long -> ()
          in
          drain ())
        stream;
      List.rev !got = expected)

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                          *)
(* ------------------------------------------------------------------ *)

let ms n = n * 1_000_000

let test_wheel_fires_in_order () =
  let w = Wheel.create ~tick_ms:10 ~slots:8 ~now_ns:0 () in
  ignore (Wheel.schedule w ~at_ns:(ms 35) "b" : string Wheel.timer);
  ignore (Wheel.schedule w ~at_ns:(ms 5) "a" : string Wheel.timer);
  (* further than one revolution (8 slots x 10ms) away *)
  ignore (Wheel.schedule w ~at_ns:(ms 250) "c" : string Wheel.timer);
  Alcotest.(check int) "three pending" 3 (Wheel.pending w);
  Alcotest.(check (list string)) "nothing due yet" [] (Wheel.advance w ~now_ns:(ms 1));
  Alcotest.(check (list string)) "a fires" [ "a" ] (Wheel.advance w ~now_ns:(ms 12));
  Alcotest.(check (list string)) "b fires" [ "b" ] (Wheel.advance w ~now_ns:(ms 40));
  (* c parked for a later revolution despite sharing a bucket range *)
  Alcotest.(check (list string)) "c not early" [] (Wheel.advance w ~now_ns:(ms 100));
  Alcotest.(check (list string)) "c fires on its round" [ "c" ]
    (Wheel.advance w ~now_ns:(ms 260));
  Alcotest.(check int) "empty" 0 (Wheel.pending w)

let test_wheel_cancel_and_delay () =
  let w = Wheel.create ~tick_ms:10 ~slots:8 ~now_ns:0 () in
  let t1 = Wheel.schedule w ~at_ns:(ms 30) "x" in
  ignore (Wheel.schedule w ~at_ns:(ms 70) "y" : string Wheel.timer);
  (match Wheel.next_delay_ms w ~now_ns:0 with
  | Some d -> Alcotest.(check bool) "delay bounded by first timer" true (d <= 30)
  | None -> Alcotest.fail "expected a delay");
  Wheel.cancel w t1;
  Wheel.cancel w t1;
  Alcotest.(check int) "cancel is idempotent" 1 (Wheel.pending w);
  Alcotest.(check (list string)) "cancelled does not fire" []
    (Wheel.advance w ~now_ns:(ms 40));
  Alcotest.(check (list string)) "survivor fires" [ "y" ]
    (Wheel.advance w ~now_ns:(ms 80));
  Alcotest.(check (option int)) "no timers, no delay" None
    (Wheel.next_delay_ms w ~now_ns:(ms 80))

(* ------------------------------------------------------------------ *)
(* Poll (both backends)                                                 *)
(* ------------------------------------------------------------------ *)

let with_poll_backend name f =
  let old = Sys.getenv_opt "SXSI_EVLOOP_POLL" in
  Unix.putenv "SXSI_EVLOOP_POLL" name;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SXSI_EVLOOP_POLL" (match old with Some v -> v | None -> ""))
    f

let poll_roundtrip () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let t = Poll.create () in
      Poll.set t r Poll.ev_read;
      Poll.set t w Poll.ev_write;
      Alcotest.(check int) "two registered" 2 (Poll.cardinal t);
      (* the empty pipe: only the write side is ready *)
      let fired = ref [] in
      let n = Poll.wait t ~timeout_ms:100 (fun fd re -> fired := (fd, re) :: !fired) in
      Alcotest.(check int) "write side ready" 1 n;
      (match !fired with
      | [ (fd, re) ] ->
        Alcotest.(check bool) "it is the writer" true (fd = w);
        Alcotest.(check bool) "writable bit" true (re land Poll.ev_write <> 0)
      | _ -> Alcotest.fail "expected exactly the writer");
      (* a byte makes the read side ready too *)
      ignore (Unix.write_substring w "!" 0 1 : int);
      let readable = ref false in
      let n =
        Poll.wait t ~timeout_ms:100 (fun fd re ->
            if fd = r && re land Poll.ev_read <> 0 then readable := true)
      in
      Alcotest.(check int) "both ready" 2 n;
      Alcotest.(check bool) "read side ready" true !readable;
      Poll.remove t w;
      let n = Poll.wait t ~timeout_ms:100 (fun _ _ -> ()) in
      Alcotest.(check int) "removed fd does not fire" 1 n)

let test_poll_backend () = with_poll_backend "poll" poll_roundtrip
let test_select_backend () = with_poll_backend "select" poll_roundtrip

(* ------------------------------------------------------------------ *)
(* Single-flight                                                        *)
(* ------------------------------------------------------------------ *)

let test_single_flight () =
  let t = Single_flight.create () in
  let e =
    match Single_flight.join t ~key:"k" ~group:"d" 1 with
    | Single_flight.Leader e -> e
    | Single_flight.Attached -> Alcotest.fail "first joiner must lead"
  in
  Alcotest.(check bool) "second attaches" true
    (Single_flight.join t ~key:"k" ~group:"d" 2 = Single_flight.Attached);
  Alcotest.(check bool) "third attaches" true
    (Single_flight.join t ~key:"k" ~group:"d" 3 = Single_flight.Attached);
  Alcotest.(check int) "one in flight" 1 (Single_flight.in_flight t);
  Alcotest.(check (list int)) "join order, leader first" [ 1; 2; 3 ]
    (Single_flight.complete t e);
  Alcotest.(check int) "completed" 0 (Single_flight.in_flight t);
  Alcotest.(check int) "one leader" 1 (Single_flight.leaders_total t);
  Alcotest.(check int) "two coalesced" 2 (Single_flight.coalesced_total t)

let test_single_flight_seal () =
  let t = Single_flight.create () in
  let e1 =
    match Single_flight.join t ~key:"k" ~group:"d" 1 with
    | Single_flight.Leader e -> e
    | Single_flight.Attached -> Alcotest.fail "lead"
  in
  ignore (Single_flight.join t ~key:"k" ~group:"d" 2);
  (* a mutation of the group: existing waiters keep their fan-out, new
     joiners start a fresh evaluation *)
  Single_flight.seal_group t "d";
  let e2 =
    match Single_flight.join t ~key:"k" ~group:"d" 3 with
    | Single_flight.Leader e -> e
    | Single_flight.Attached -> Alcotest.fail "post-seal joiner must lead"
  in
  Alcotest.(check (list int)) "sealed entry still fans out" [ 1; 2 ]
    (Single_flight.complete t e1);
  Alcotest.(check (list int)) "fresh entry independent" [ 3 ]
    (Single_flight.complete t e2);
  Alcotest.(check int) "seal counted" 1 (Single_flight.seals_total t)

(* ------------------------------------------------------------------ *)
(* Loop                                                                 *)
(* ------------------------------------------------------------------ *)

let test_loop_post_and_timer () =
  let l = Loop.create () in
  Fun.protect
    ~finally:(fun () -> Loop.close l)
    (fun () ->
      let hits = ref [] in
      let at = Sxsi_obs.Clock.now_ns () + ms 30 in
      ignore (Loop.timer_at l ~at_ns:at (fun () -> hits := "timer" :: !hits));
      (* posted from another thread while the loop runs; the loop must
         wake out of poll to run it *)
      let poster =
        Thread.create
          (fun () ->
            Thread.delay 0.01;
            Loop.post l (fun () -> hits := "posted" :: !hits))
          ()
      in
      let deadline = Unix.gettimeofday () +. 5.0 in
      Loop.run
        ~stop:(fun () -> List.length !hits >= 2 || Unix.gettimeofday () > deadline)
        l;
      Thread.join poster;
      Alcotest.(check bool) "timer fired" true (List.mem "timer" !hits);
      Alcotest.(check bool) "posted closure ran" true (List.mem "posted" !hits);
      Alcotest.(check bool) "a cross-thread wakeup happened" true
        (Loop.wakeups_total l >= 1))

(* ------------------------------------------------------------------ *)
(* Ev_server end to end                                                 *)
(* ------------------------------------------------------------------ *)

let small_doc tag n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("<" ^ tag ^ ">");
  for i = 1 to n do
    Buffer.add_string buf (Printf.sprintf "<item n=\"%d\">payload %d</item>" i i)
  done;
  Buffer.add_string buf ("</" ^ tag ^ ">");
  Sxsi_xml.Document.of_xml (Buffer.contents buf)

let with_ev_server ?idle_ms ?sndbuf ?shards svc body =
  let shards = match shards with Some sh -> sh | None -> Shards.of_service svc in
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        Ev_server.serve ?idle_ms ?sndbuf ~port:0
          ~on_listen:(fun p -> Atomic.set port p)
          ~stop:(fun () -> Atomic.get stop)
          shards)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
        Domain.cpu_relax ()
      done;
      Alcotest.(check bool) "server came up" true (Atomic.get port <> 0);
      body (Atomic.get port))

let connect port = Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let read_response ic =
  match
    Protocol.read_response (fun () ->
        match input_line ic with
        | line -> Some line
        | exception End_of_file -> None)
  with
  | Ok r -> r
  | Error e -> Alcotest.fail ("client read: " ^ e)

let exchange ic oc line =
  output_string oc (line ^ "\n");
  flush oc;
  read_response ic

let stat_of_lines lines key =
  let prefix = key ^ "=" in
  let n = String.length prefix in
  List.find_map
    (fun l ->
      if String.length l > n && String.sub l 0 n = prefix then
        Some (String.sub l n (String.length l - n))
      else None)
    lines

let proto_stat ic oc key =
  match exchange ic oc "STATS" with
  | Protocol.Data lines -> (
    match stat_of_lines lines key with
    | Some v -> v
    | None -> Alcotest.fail ("STATS missing key " ^ key))
  | r -> Alcotest.fail ("STATS: " ^ Protocol.print_response r)

(* Pipelining: many requests in one write come back as exactly their
   responses, in request order. *)
let test_pipelining_order () =
  let svc = Service.create () in
  Service.add_document svc "d" (small_doc "root" 7);
  with_ev_server svc (fun port ->
      let ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
        (fun () ->
          output_string oc
            "COUNT d //item\nCOUNT d /root\nNOSUCHVERB x\nCOUNT d //item\nQUIT\n";
          flush oc;
          (match read_response ic with
          | Protocol.Ok [ "7" ] -> ()
          | r -> Alcotest.fail ("1st: " ^ Protocol.print_response r));
          (match read_response ic with
          | Protocol.Ok [ "1" ] -> ()
          | r -> Alcotest.fail ("2nd: " ^ Protocol.print_response r));
          (match read_response ic with
          | Protocol.Err _ -> ()
          | r -> Alcotest.fail ("3rd should be ERR: " ^ Protocol.print_response r));
          (match read_response ic with
          | Protocol.Ok [ "7" ] -> ()
          | r -> Alcotest.fail ("4th: " ^ Protocol.print_response r));
          (match read_response ic with
          | Protocol.Ok [ "bye" ] -> ()
          | r -> Alcotest.fail ("QUIT: " ^ Protocol.print_response r));
          Alcotest.(check bool) "closed after QUIT" true
            (match input_line ic with
            | _ -> false
            | exception End_of_file -> true)))

(* Partial writes: with a tiny SO_SNDBUF a large MATERIALIZE cannot be
   written in one go; the response must survive EWOULDBLOCK intact and
   the pipelined follow-up must come after it, never interleaved. *)
let test_partial_write_large_response () =
  let items = 3000 in
  let svc = Service.create () in
  Service.add_document svc "d" (small_doc "root" items);
  with_ev_server ~sndbuf:4096 svc (fun port ->
      let ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
        (fun () ->
          output_string oc "MATERIALIZE d //item\nCOUNT d //item\nQUIT\n";
          flush oc;
          (* let the server hit the send-buffer wall before we drain *)
          Unix.sleepf 0.1;
          (match read_response ic with
          | Protocol.Data lines ->
            Alcotest.(check int) "every materialized item arrived" items
              (List.length lines);
            List.iter
              (fun l ->
                if String.length l < 5 || String.sub l 0 5 <> "<item" then
                  Alcotest.failf "corrupted materialize line: %s" l)
              lines
          | r -> Alcotest.fail ("MATERIALIZE: " ^ Protocol.print_response r));
          (match read_response ic with
          | Protocol.Ok [ n ] ->
            Alcotest.(check string) "pipelined COUNT after the big response"
              (string_of_int items) n
          | r -> Alcotest.fail ("COUNT: " ^ Protocol.print_response r));
          match read_response ic with
          | Protocol.Ok [ "bye" ] -> ()
          | r -> Alcotest.fail ("QUIT: " ^ Protocol.print_response r)))

(* The stampede: 64 connections fire the identical cold query while
   the (failpoint-delayed) leader is still evaluating.  Exactly one
   engine evaluation; byte-identical responses everywhere. *)
let test_single_flight_stampede () =
  Fun.protect ~finally:Failpoint.deactivate_all (fun () ->
      let svc = Service.create () in
      Service.add_document svc "d" (small_doc "root" 9);
      with_ev_server svc (fun port ->
          let clients = 64 in
          Failpoint.activate "engine.eval" (Failpoint.Delay_ms 500);
          let conns = Array.init clients (fun _ -> connect port) in
          Fun.protect
            ~finally:(fun () ->
              Array.iter
                (fun (ic, _) -> try Unix.shutdown_connection ic with _ -> ())
                conns)
            (fun () ->
              Array.iter
                (fun (_, oc) ->
                  output_string oc "COUNT d //item\n";
                  flush oc)
                conns;
              let responses =
                Array.map (fun (ic, _) -> read_response ic) conns
              in
              Failpoint.deactivate_all ();
              Array.iter
                (fun r ->
                  Alcotest.(check string) "byte-identical responses"
                    (Protocol.print_response responses.(0))
                    (Protocol.print_response r))
                responses;
              (match responses.(0) with
              | Protocol.Ok [ "9" ] -> ()
              | r -> Alcotest.fail ("stampede answer: " ^ Protocol.print_response r));
              let ic, oc = connect port in
              Fun.protect
                ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
                (fun () ->
                  Alcotest.(check string) "exactly one evaluation" "1"
                    (proto_stat ic oc "count_misses");
                  Alcotest.(check string) "the other 63 coalesced" "63"
                    (proto_stat ic oc "ev_coalesced");
                  Alcotest.(check string) "one leader" "1"
                    (proto_stat ic oc "ev_leaders");
                  (* fan-out accounting: every request counted *)
                  Alcotest.(check bool) "all requests counted" true
                    (int_of_string (proto_stat ic oc "requests") >= clients)))))

(* Error fan-out: the leader trips its deadline; every waiter gets the
   same ERR, and the deadline fired exactly once. *)
let test_single_flight_error_fanout () =
  Fun.protect ~finally:Failpoint.deactivate_all (fun () ->
      let svc =
        Service.create
          ~options:{ Service.default_options with default_deadline_ms = 60 }
          ()
      in
      Service.add_document svc "d" (small_doc "root" 5);
      with_ev_server svc (fun port ->
          let clients = 8 in
          Failpoint.activate "engine.eval" (Failpoint.Delay_ms 400);
          let conns = Array.init clients (fun _ -> connect port) in
          Fun.protect
            ~finally:(fun () ->
              Array.iter
                (fun (ic, _) -> try Unix.shutdown_connection ic with _ -> ())
                conns)
            (fun () ->
              Array.iter
                (fun (_, oc) ->
                  output_string oc "COUNT d //item\n";
                  flush oc)
                conns;
              let responses = Array.map (fun (ic, _) -> read_response ic) conns in
              Failpoint.deactivate_all ();
              Array.iter
                (fun r ->
                  Alcotest.(check (option string)) "every waiter sees the ERR"
                    (Some "DEADLINE") (Protocol.err_code r);
                  Alcotest.(check string) "identical ERR bytes"
                    (Protocol.print_response responses.(0))
                    (Protocol.print_response r))
                responses;
              let ic, oc = connect port in
              Fun.protect
                ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
                (fun () ->
                  Alcotest.(check string) "deadline tripped once" "1"
                    (proto_stat ic oc "deadline_errors");
                  Alcotest.(check string) "waiters coalesced" "7"
                    (proto_stat ic oc "ev_coalesced")))))

(* Idle timeout: a quiet connection is told why and closed; a busy one
   is not. *)
let test_idle_timeout () =
  let svc = Service.create () in
  Service.add_document svc "d" (small_doc "root" 3);
  with_ev_server ~idle_ms:100 svc (fun port ->
      let ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
        (fun () ->
          (match exchange ic oc "COUNT d //item" with
          | Protocol.Ok [ "3" ] -> ()
          | r -> Alcotest.fail ("warmup: " ^ Protocol.print_response r));
          (* go quiet past the timeout: the server speaks last *)
          let r = read_response ic in
          Alcotest.(check (option string)) "typed idle close" (Some "IDLE")
            (Protocol.err_code r);
          Alcotest.(check bool) "connection closed" true
            (match input_line ic with
            | _ -> false
            | exception End_of_file -> true));
      let ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
        (fun () ->
          Alcotest.(check string) "idle close counted" "1"
            (proto_stat ic oc "ev_idle_closed")))

(* Churn: cycle many short-lived connections against the loop and
   verify nothing leaks — every session closed, and the process fd
   count back where it started (server and client share this
   process). *)
let test_ev_connection_churn () =
  let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let svc = Service.create () in
  Service.add_document svc "d" (small_doc "root" 10);
  let rounds = 100 in
  with_ev_server svc (fun port ->
      let fds_before = count_fds () in
      for _ = 1 to rounds do
        let ic, oc = connect port in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.shutdown_connection ic with _ -> ());
            close_in_noerr ic)
          (fun () ->
            match exchange ic oc "COUNT d //item" with
            | Protocol.Ok [ "10" ] -> ()
            | r -> Alcotest.fail ("churn: " ^ Protocol.print_response r))
      done;
      (* wait for the server side of every connection to be reaped *)
      let probe k =
        let ic, oc = connect port in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.shutdown_connection ic with _ -> ());
            close_in_noerr ic)
          (fun () -> int_of_string (proto_stat ic oc k))
      in
      let deadline = Unix.gettimeofday () +. 5.0 in
      while probe "connections_closed" < rounds && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.02
      done;
      let opened = probe "connections_opened" in
      let closed = probe "connections_closed" in
      Alcotest.(check bool) "every connection accepted" true (opened >= rounds);
      Alcotest.(check bool)
        (Printf.sprintf "every finished session reaped (%d opened, %d closed)"
           opened closed)
        true
        (closed >= rounds);
      (* every probe above is also closed by now except possibly the
         last, still in server-side teardown: allow a little slack *)
      let fds_after = count_fds () in
      Alcotest.(check bool)
        (Printf.sprintf "no fd leak (%d before, %d after)" fds_before fds_after)
        true
        (fds_after <= fds_before + 2))

(* Sharding: documents live on their home shard, queries route there,
   and STATS aggregates across shards. *)
let test_shards_routing () =
  let sh = Shards.create ~shards:2 (fun _ -> Service.create ()) in
  Shards.add_document sh "a" (small_doc "root" 4);
  Shards.add_document sh "b" (small_doc "root" 6);
  with_ev_server (Shards.primary sh) ~shards:sh (fun port ->
      let ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.shutdown_connection ic with _ -> ())
        (fun () ->
          (match exchange ic oc "COUNT a //item" with
          | Protocol.Ok [ "4" ] -> ()
          | r -> Alcotest.fail ("doc a: " ^ Protocol.print_response r));
          (match exchange ic oc "COUNT b //item" with
          | Protocol.Ok [ "6" ] -> ()
          | r -> Alcotest.fail ("doc b: " ^ Protocol.print_response r));
          (* both documents visible through the aggregated STATS *)
          Alcotest.(check string) "aggregated documents" "2"
            (proto_stat ic oc "documents");
          Alcotest.(check string) "shards reported" "2"
            (proto_stat ic oc "ev_shards")))

let suite =
  ( "evloop",
    [
      Alcotest.test_case "netbuf line framing" `Quick test_netbuf_lines;
      Alcotest.test_case "netbuf TOOLONG drain" `Quick test_netbuf_too_long;
      prop_netbuf_chunked;
      Alcotest.test_case "wheel fires in order" `Quick test_wheel_fires_in_order;
      Alcotest.test_case "wheel cancel and delay bound" `Quick
        test_wheel_cancel_and_delay;
      Alcotest.test_case "poll backend" `Quick test_poll_backend;
      Alcotest.test_case "select backend" `Quick test_select_backend;
      Alcotest.test_case "single-flight join/complete" `Quick test_single_flight;
      Alcotest.test_case "single-flight seal on mutation" `Quick
        test_single_flight_seal;
      Alcotest.test_case "loop post and timer" `Quick test_loop_post_and_timer;
      Alcotest.test_case "pipelined responses in order" `Quick test_pipelining_order;
      Alcotest.test_case "partial write of a large response" `Quick
        test_partial_write_large_response;
      Alcotest.test_case "single-flight stampede" `Quick test_single_flight_stampede;
      Alcotest.test_case "single-flight error fan-out" `Quick
        test_single_flight_error_fanout;
      Alcotest.test_case "idle timeout" `Quick test_idle_timeout;
      Alcotest.test_case "connection churn leaks no fds" `Quick
        test_ev_connection_churn;
      Alcotest.test_case "shards route and aggregate" `Quick test_shards_routing;
    ] )

let () =
  Alcotest.run "sxsi"
    [
      Test_bits.suite;
      Test_fm.suite;
      Test_text.suite;
      Test_tree.suite;
      Test_xml.suite;
      Test_xpath.suite;
      Test_auto.suite;
      Test_engine.suite;
      Test_baseline.suite;
      Test_wordindex.suite;
      Test_bio.suite;
      Test_datagen.suite;
      Test_integration.suite;
      Test_service.suite;
      Test_obs.suite;
      Test_units.suite;
      Test_par.suite;
      Test_qos.suite;
      Test_backend.suite;
      Test_evloop.suite;
      Test_prof.suite;
    ]

(* The generators must emit well-formed XML with the structural
   properties the benchmark queries rely on. *)

open Sxsi_datagen
open Sxsi_xml
open Sxsi_core

let count doc q = Engine.count (Engine.prepare doc q)

let test_xmark () =
  let xml = Xmark.generate ~scale:60 () in
  let doc = Document.of_xml xml in
  Alcotest.(check bool) "items" true (count doc "//item" >= 50);
  Alcotest.(check bool) "keywords exist" true (count doc "//keyword" > 0);
  Alcotest.(check bool) "recursive listitems" true
    (count doc "//listitem//listitem" > 0);
  Alcotest.(check bool) "closed auction path" true
    (count doc "/site/closed_auctions/closed_auction/annotation/description/text/keyword"
     > 0);
  Alcotest.(check bool) "people with phone" true
    (count doc "/site/people/person[phone]" > 0);
  Alcotest.(check bool) "emph under keyword" true (count doc "//keyword/emph" > 0);
  Alcotest.(check int) "persons" 60 (count doc "/site/people/person");
  (* determinism *)
  Alcotest.(check string) "deterministic" xml (Xmark.generate ~scale:60 ())

let test_medline () =
  let xml = Medline.generate ~citations:40 () in
  let doc = Document.of_xml xml in
  Alcotest.(check int) "citations" 40 (count doc "//MedlineCitation");
  Alcotest.(check int) "abstracts" 40 (count doc "//AbstractText");
  Alcotest.(check bool) "authors" true (count doc "//Author/LastName" >= 40);
  Alcotest.(check bool) "zipf: 'a' frequent" true
    (Sxsi_text.Text_collection.global_count (Document.text doc) " a " > 10);
  Alcotest.(check string) "deterministic" xml (Medline.generate ~citations:40 ())

let test_treebank () =
  let xml = Treebank.generate ~sentences:30 () in
  let doc = Document.of_xml xml in
  Alcotest.(check int) "sentences" 30 (count doc "/FILE/EMPTY");
  Alcotest.(check bool) "NP nodes" true (count doc "//NP" >= 30);
  Alcotest.(check bool) "recursive S" true (count doc "//S//S" > 0);
  Alcotest.(check bool) "PP/IN" true (count doc "//PP[IN]" > 0);
  Alcotest.(check bool) "some depth" true
    (count doc "//*//*//*//*//*//*" > 0)

let test_wiki () =
  let xml = Wiki.generate ~pages:20 () in
  let doc = Document.of_xml xml in
  Alcotest.(check int) "pages" 20 (count doc "//page");
  Alcotest.(check int) "titles" 20 (count doc "//page/title");
  Alcotest.(check int) "texts" 20 (count doc "//page/revision/text")

let test_bio () =
  let xml = Bio.generate ~genes:10 () in
  let doc = Document.of_xml xml in
  Alcotest.(check int) "genes" 10 (count doc "//gene");
  Alcotest.(check int) "promoters" 10 (count doc "//gene/promoter");
  Alcotest.(check bool) "exons" true (count doc "//exon/sequence" > 0);
  (* repetitiveness: an exon sequence reappears in transcript sequences *)
  let c = Engine.prepare doc "//exon/sequence" in
  let nodes = Engine.select c in
  Alcotest.(check bool) "exon shared" true
    (Array.length nodes > 0
    &&
    let v = Document.string_value doc nodes.(0) in
    Sxsi_text.Text_collection.global_count (Document.text doc) v >= 2)

let test_logs () =
  let xml = Logs.generate ~entries:200 () in
  let doc = Document.of_xml xml in
  Alcotest.(check int) "entries" 200 (count doc "/log/entry");
  Alcotest.(check int) "timestamps" 200 (count doc "//entry/ts");
  Alcotest.(check int) "severities" 200 (count doc "//entry[@severity]");
  Alcotest.(check bool) "some stacks" true (count doc "//stack/frame" > 0);
  Alcotest.(check string) "deterministic" xml (Logs.generate ~entries:200 ());
  (* the repetition knob monotonically shrinks the set of distinct
     entry shapes: at 1.0 every entry is one of the templates *)
  let shapes xml =
    let doc = Document.of_xml xml in
    let tree = Document.tree doc in
    let buf = Buffer.create 64 in
    let rec kids x =
      if x <> Document.nil then begin
        Buffer.add_string buf (string_of_int (Document.tag_of doc x));
        Buffer.add_char buf '(';
        kids (Sxsi_tree.Tree_backend.first_child tree x);
        Buffer.add_char buf ')';
        kids (Sxsi_tree.Tree_backend.next_sibling tree x)
      end
    in
    let distinct = Hashtbl.create 16 in
    Array.iter
      (fun x ->
        Buffer.clear buf;
        (* the entry's own subtree only: tag + children *)
        Buffer.add_string buf (string_of_int (Document.tag_of doc x));
        Buffer.add_char buf '(';
        kids (Sxsi_tree.Tree_backend.first_child tree x);
        Buffer.add_char buf ')';
        Hashtbl.replace distinct (Buffer.contents buf) ())
      (Engine.select (Engine.prepare doc "/log/entry"));
    Hashtbl.length distinct
  in
  let uniform = shapes (Logs.generate ~entries:150 ~repetition:1.0 ()) in
  let noisy = shapes (Logs.generate ~entries:150 ~repetition:0.0 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "templates bound shapes (%d <= 3 < %d)" uniform noisy)
    true
    (uniform <= 3 && noisy > uniform);
  Alcotest.check_raises "repetition range"
    (Invalid_argument "Logs.generate: repetition must be in [0, 1]") (fun () ->
      ignore (Logs.generate ~entries:1 ~repetition:1.5 ()))

let test_all_parse_and_roundtrip () =
  List.iter
    (fun xml ->
      let doc = Document.of_xml xml in
      let dom = Sxsi_baseline.Dom.of_xml xml in
      Alcotest.(check int) "node counts agree" (Document.node_count doc)
        (Sxsi_baseline.Dom.node_count dom))
    [
      Xmark.generate ~scale:30 ();
      Medline.generate ~citations:20 ();
      Treebank.generate ~sentences:15 ();
      Wiki.generate ~pages:10 ();
      Bio.generate ~genes:5 ();
      Logs.generate ~entries:50 ();
    ]

let suite =
  ( "datagen",
    [
      Alcotest.test_case "xmark" `Quick test_xmark;
      Alcotest.test_case "medline" `Quick test_medline;
      Alcotest.test_case "treebank" `Quick test_treebank;
      Alcotest.test_case "wiki" `Quick test_wiki;
      Alcotest.test_case "bio" `Quick test_bio;
      Alcotest.test_case "logs" `Quick test_logs;
      Alcotest.test_case "all parse; engines agree on size" `Quick
        test_all_parse_and_roundtrip;
    ] )

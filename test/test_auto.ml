(* Formula hash-consing and automaton compilation sanity tests. *)

open Sxsi_auto
open Sxsi_xml

let test_hash_consing () =
  let f1 = Formula.conj (Formula.down1 1) (Formula.down2 2) in
  let f2 = Formula.conj (Formula.down1 1) (Formula.down2 2) in
  Alcotest.(check bool) "physically equal" true (f1 == f2);
  Alcotest.(check bool) "ids equal" true (f1.Formula.id = f2.Formula.id);
  let f3 = Formula.conj (Formula.down2 2) (Formula.down1 1) in
  Alcotest.(check bool) "order matters structurally" false (f1 == f3)

let test_constant_folding () =
  Alcotest.(check bool) "T and x = x" true
    (Formula.conj Formula.tru (Formula.down1 1) == Formula.down1 1);
  Alcotest.(check bool) "F and x = F" true
    (Formula.conj Formula.fls (Formula.down1 1) == Formula.fls);
  Alcotest.(check bool) "T or x = T" true
    (Formula.disj Formula.tru (Formula.down1 1) == Formula.tru);
  Alcotest.(check bool) "not not via neg" true
    (Formula.neg Formula.tru == Formula.fls);
  Alcotest.(check bool) "x and x = x" true
    (Formula.conj (Formula.down1 3) (Formula.down1 3) == Formula.down1 3)

let test_atom_sets () =
  let f =
    Formula.conj
      (Formula.disj (Formula.down1 5) (Formula.down2 7))
      (Formula.conj (Formula.down1 3) Formula.mark)
  in
  Alcotest.(check (list int)) "down1" [ 3; 5 ] f.Formula.down1;
  Alcotest.(check (list int)) "down2" [ 7 ] f.Formula.down2;
  Alcotest.(check bool) "has_mark" true f.Formula.has_mark

let doc () =
  Document.of_xml
    "<site><listitem><keyword>k1<emph>e</emph></keyword></listitem>\
     <listitem><keyword>k2</keyword></listitem></site>"

let test_compile_shapes () =
  let d = doc () in
  let q = Sxsi_xpath.Xpath_parser.parse "//listitem//keyword[emph]" in
  let a = Compile.compile d q in
  (* start state has exactly one transition, guarded by the root tag *)
  let trs = Automaton.transitions a a.Automaton.start in
  Alcotest.(check int) "one start transition" 1 (List.length trs);
  (match trs with
  | [ { Automaton.guard = Formula.Tag t; _ } ] ->
    Alcotest.(check int) "guarded by &" Document.root_tag t
  | _ -> Alcotest.fail "unexpected start guard");
  (* scanning states registered with scan_info *)
  let scans =
    List.filter (fun q -> Automaton.scan_info a q <> None) a.Automaton.states
  in
  Alcotest.(check bool) "at least 3 scan states" true (List.length scans >= 3)

let test_compile_collect_flag () =
  let d = doc () in
  let a = Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//keyword") in
  let collects =
    List.filter
      (fun q ->
        match Automaton.scan_info a q with
        | Some { Automaton.scan_collect = true; _ } -> true
        | _ -> false)
      a.Automaton.states
  in
  Alcotest.(check int) "one collect state" 1 (List.length collects);
  (* with a filter the state is not a pure collector *)
  let a2 = Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//keyword[emph]") in
  let collects2 =
    List.filter
      (fun q ->
        match Automaton.scan_info a2 q with
        | Some { Automaton.scan_collect = true; _ } -> true
        | _ -> false)
      a2.Automaton.states
  in
  Alcotest.(check int) "no collect state" 0 (List.length collects2)

let test_compile_unknown_tag () =
  let d = doc () in
  let a = Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//nonexistent") in
  (* the start transition formula collapses to true: no results, accept *)
  match Automaton.transitions a a.Automaton.start with
  | [ { Automaton.phi; _ } ] ->
    Alcotest.(check bool) "trivial formula" true (phi == Formula.tru)
  | _ -> Alcotest.fail "unexpected transitions"

let test_compile_pred_dedup () =
  let d = doc () in
  let a =
    Compile.compile d
      (Sxsi_xpath.Xpath_parser.parse
         "//keyword[contains(., \"x\") or contains(., \"x\")]")
  in
  Alcotest.(check int) "one predicate" 1 (Array.length a.Automaton.preds)

let test_compile_rejects_absolute_pred () =
  let d = doc () in
  match
    Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//keyword[/site/listitem]")
  with
  | exception Compile.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_to_string_smoke () =
  let d = doc () in
  let a = Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//listitem[keyword]") in
  let s = Automaton.to_string a in
  Alcotest.(check bool) "mentions listitem" true
    (String.length s > 0
    &&
    let rec find i =
      i + 8 <= String.length s && (String.sub s i 8 = "listitem" || find (i + 1))
    in
    find 0)

(* ------------------------------------------------------------------ *)
(* Whole-query optimizer: differential harness and unit tests           *)
(* ------------------------------------------------------------------ *)

module Engine = Sxsi_core.Engine

(* Queries chosen to exercise every optimizer path: multi-tag frontier
   scans over star steps, drop-scans over star chains, sibling scans
   over child steps, attribute and text guards, predicates (dead,
   duplicated, nested), and following-sibling remainders. *)
let opt_queries =
  [
    "//*";
    "//*//*";
    "//*//*//*";
    "//item";
    "//a//b";
    "//a/b";
    "/a/b/c";
    "//*[@k]";
    "//a[contains(., 't')]";
    "//b[. = 'hello']";
    "//item[a or b]";
    "//item[a and not(b)]";
    "//a[zzz_nonexistent]";
    "//a[b or b]";
    "//a//zzz_nonexistent//b";
    "//a/following-sibling::b";
    "//text()";
    "//a[.//b]/c";
  ]

(* Byte-identical count/select/serialize between the raw translation
   and the optimized automaton, over one document. *)
let opt_agree ?pool doc =
  List.for_all
    (fun q ->
      let craw = Engine.prepare ~optimize:false doc q in
      let copt = Engine.prepare ~optimize:true doc q in
      Engine.count ?pool craw = Engine.count ?pool copt
      && Engine.select_preorders ?pool craw = Engine.select_preorders ?pool copt
      &&
      let braw = Buffer.create 256 and bopt = Buffer.create 256 in
      let nraw = Engine.serialize_to ?pool braw craw in
      let nopt = Engine.serialize_to ?pool bopt copt in
      nraw = nopt && Buffer.contents braw = Buffer.contents bopt)
    opt_queries

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_optimize_differential =
  qtest ~count:40 "optimized results agree on random documents" Test_xml.gen_xml
    (fun src ->
      opt_agree (Document.of_xml ~backend:`Bp src)
      && opt_agree (Document.of_xml ~backend:`Grammar src))

let opt_fixed_docs () =
  [
    ("fig1", Test_xml.fig1_xml);
    ("single", "<a/>");
    ("nested", "<a><a><a><a>deep</a></a></a></a>");
    ("logs", Sxsi_datagen.Logs.generate ~entries:300 ());
    ("xmark", Sxsi_datagen.Xmark.generate ~scale:40 ());
  ]

let test_optimize_fixed_docs () =
  List.iter
    (fun (name, xml) ->
      List.iter
        (fun backend ->
          Alcotest.(check bool) (name ^ " agrees") true
            (opt_agree (Document.of_xml ~backend xml)))
        [ `Bp; `Grammar ])
    (opt_fixed_docs ())

let test_optimize_xmark_queries () =
  (* the bench battery itself, where the acceptance criterion lives *)
  let doc = Document.of_xml (Sxsi_datagen.Xmark.generate ~scale:60 ()) in
  List.iter
    (fun q ->
      let craw = Engine.prepare ~optimize:false doc q in
      let copt = Engine.prepare ~optimize:true doc q in
      Alcotest.(check int) (q ^ " count") (Engine.count craw) (Engine.count copt);
      Alcotest.(check bool) (q ^ " nodes") true
        (Engine.select_preorders craw = Engine.select_preorders copt))
    [
      "/site/regions/*/item";
      "//listitem//keyword";
      "/site/people/person[phone or homepage]/name";
      "//listitem[not(.//keyword/emph)]//parlist";
      "//people[.//person[not(address)] and .//person[not(watches)]]/person[watches]";
      "//*//*";
      "//*//*//*//*";
    ]

let test_optimize_pools_agree () =
  let xml = Sxsi_datagen.Logs.generate ~entries:400 () in
  List.iter
    (fun backend ->
      let doc = Document.of_xml ~backend xml in
      List.iter
        (fun lazy_pool ->
          let pool = Lazy.force lazy_pool in
          Alcotest.(check bool)
            (Printf.sprintf "pool size %d agrees" (Sxsi_par.Pool.size pool))
            true
            (opt_agree ~pool doc))
        [ Test_par.pool1; Test_par.pool2; Test_par.pool4 ])
    [ `Bp; `Grammar ]

let opt_automaton q =
  let d = doc () in
  let raw = Compile.compile ~optimize:false d (Sxsi_xpath.Xpath_parser.parse q) in
  let opt = Compile.compile ~optimize:true d (Sxsi_xpath.Xpath_parser.parse q) in
  (raw, opt, Option.get (Optimize.stats opt))

let count_transitions a =
  List.fold_left
    (fun acc q -> acc + List.length (Automaton.transitions a q))
    0 a.Automaton.states

let test_optimize_dead_state_removed () =
  (* [emph/zzz] can never hold: the predicate's states are dead and the
     transitions referring to them fold away *)
  let raw, opt, st = opt_automaton "//keyword[emph/zzz]" in
  Alcotest.(check bool) "states shrink" true
    (List.length opt.Automaton.states < List.length raw.Automaton.states);
  Alcotest.(check int) "stats agree with the automaton"
    (List.length opt.Automaton.states)
    st.Automaton.opt_states_after;
  Alcotest.(check bool) "transitions shrink" true
    (count_transitions opt < count_transitions raw);
  (* the raw translation is untouched by optimizing its sibling *)
  Alcotest.(check bool) "raw untouched" true (Optimize.stats raw = None)

let test_optimize_dead_transition_removed () =
  (* the [zzz] predicate state is dead, so the keyword-guarded match
     transition folds to F and is dropped *)
  let _, opt, st = opt_automaton "//listitem[zzz]" in
  Alcotest.(check bool) "transitions removed" true
    (st.Automaton.opt_trans_after < st.Automaton.opt_trans_before);
  (* no surviving transition formula mentions a dropped state *)
  let live = opt.Automaton.states in
  List.iter
    (fun q ->
      List.iter
        (fun { Automaton.phi; _ } ->
          List.iter
            (fun s -> Alcotest.(check bool) "down1 atom live" true (List.mem s live))
            phi.Formula.down1;
          List.iter
            (fun s -> Alcotest.(check bool) "down2 atom live" true (List.mem s live))
            phi.Formula.down2)
        (Automaton.transitions opt q))
    live

let test_optimize_duplicate_states_merged () =
  let _, _, st = opt_automaton "//keyword[emph or emph]" in
  Alcotest.(check bool) "duplicate predicate states merged" true
    (st.Automaton.opt_merged_states >= 1);
  Alcotest.(check bool) "states shrink" true
    (st.Automaton.opt_states_after < st.Automaton.opt_states_before)

let test_optimize_jump_sets () =
  let _, opt, st = opt_automaton "//listitem//keyword" in
  Alcotest.(check bool) "some jump sets" true (st.Automaton.opt_jump_states > 0);
  (* every scanning state carries one, restricted to tags that occur *)
  let ti = Sxsi_xml.Document.tree (doc ()) in
  List.iter
    (fun q ->
      match Automaton.scan_info opt q with
      | None -> ()
      | Some _ ->
        (match Automaton.jump_set opt q with
        | None -> Alcotest.fail "scan state without a jump set"
        | Some tags ->
          Array.iter
            (fun t ->
              Alcotest.(check bool) "jump tag occurs" true
                (Sxsi_tree.Tree_backend.count ti t > 0))
            tags))
    opt.Automaton.states

let test_optimize_idempotent () =
  let _, opt, st = opt_automaton "//listitem//keyword[emph]" in
  Optimize.run opt;
  Alcotest.(check bool) "second run is a no-op" true
    (Optimize.stats opt = Some st)

let suite =
  ( "auto",
    [
      Alcotest.test_case "hash consing" `Quick test_hash_consing;
      Alcotest.test_case "constant folding" `Quick test_constant_folding;
      Alcotest.test_case "atom sets" `Quick test_atom_sets;
      Alcotest.test_case "compile shapes" `Quick test_compile_shapes;
      Alcotest.test_case "collect flag" `Quick test_compile_collect_flag;
      Alcotest.test_case "unknown tag" `Quick test_compile_unknown_tag;
      Alcotest.test_case "predicate dedup" `Quick test_compile_pred_dedup;
      Alcotest.test_case "absolute pred rejected" `Quick
        test_compile_rejects_absolute_pred;
      Alcotest.test_case "to_string" `Quick test_to_string_smoke;
      prop_optimize_differential;
      Alcotest.test_case "optimize: fixed docs agree" `Quick test_optimize_fixed_docs;
      Alcotest.test_case "optimize: xmark queries agree" `Quick
        test_optimize_xmark_queries;
      Alcotest.test_case "optimize: pools agree" `Quick test_optimize_pools_agree;
      Alcotest.test_case "optimize: dead state removed" `Quick
        test_optimize_dead_state_removed;
      Alcotest.test_case "optimize: dead transition removed" `Quick
        test_optimize_dead_transition_removed;
      Alcotest.test_case "optimize: duplicate states merged" `Quick
        test_optimize_duplicate_states_merged;
      Alcotest.test_case "optimize: jump sets" `Quick test_optimize_jump_sets;
      Alcotest.test_case "optimize: idempotent" `Quick test_optimize_idempotent;
    ] )

(* Pointer DOM + naive evaluator tests, including id-alignment with the
   succinct document. *)

open Sxsi_baseline
open Sxsi_xml

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let xml =
  "<site><people><person id=\"p1\"><name>Alice</name><phone>123</phone></person>\
   <person id=\"p2\"><name>Bob</name><homepage>hp</homepage></person></people>\
   <regions><item>x</item><item>y<keyword>k</keyword></item></regions></site>"

let dom () = Dom.of_xml xml

let q s = Sxsi_xpath.Xpath_parser.parse s

let names nodes =
  List.map
    (fun n ->
      match n.Dom.kind with
      | Dom.Element e -> e
      | Dom.Text_leaf s -> "#" ^ s
      | Dom.Attribute a -> "@" ^ a
      | Dom.Root -> "&"
      | Dom.Attlist -> "@"
      | Dom.Attval_leaf s -> "%" ^ s)
    nodes

let test_eval_child_chain () =
  let d = dom () in
  Alcotest.(check (list string)) "names" [ "name"; "name" ]
    (names (Naive_eval.eval d (q "/site/people/person/name")));
  Alcotest.(check int) "count" 2 (Naive_eval.eval_count d (q "/site/people/person"))

let test_eval_descendant () =
  let d = dom () in
  Alcotest.(check int) "//item" 2 (Naive_eval.eval_count d (q "//item"));
  Alcotest.(check int) "//keyword" 1 (Naive_eval.eval_count d (q "//keyword"));
  Alcotest.(check int) "//item//keyword" 1 (Naive_eval.eval_count d (q "//item//keyword"));
  Alcotest.(check int) "//*" 12 (Naive_eval.eval_count d (q "//*"));
  Alcotest.(check int) "//text()" 7 (Naive_eval.eval_count d (q "//text()"))

let test_eval_filters () =
  let d = dom () in
  Alcotest.(check int) "person[phone]" 1
    (Naive_eval.eval_count d (q "/site/people/person[phone]/name"));
  Alcotest.(check int) "person[phone or homepage]" 2
    (Naive_eval.eval_count d (q "/site/people/person[phone or homepage]/name"));
  Alcotest.(check int) "person[not(phone)]" 1
    (Naive_eval.eval_count d (q "/site/people/person[not(phone)]"));
  Alcotest.(check int) "item[keyword]" 1 (Naive_eval.eval_count d (q "//item[keyword]"))

let test_eval_text_predicates () =
  let d = dom () in
  Alcotest.(check int) "name='Bob'" 1
    (Naive_eval.eval_count d (q "//person[name = 'Bob']"));
  Alcotest.(check int) "contains Ali" 1
    (Naive_eval.eval_count d (q "//person[contains(name, 'lic')]"));
  Alcotest.(check int) "starts-with" 1
    (Naive_eval.eval_count d (q "//name[starts-with(., 'Al')]"));
  Alcotest.(check int) "ends-with" 1
    (Naive_eval.eval_count d (q "//name[ends-with(., 'ob')]"));
  Alcotest.(check int) "mixed content contains" 1
    (Naive_eval.eval_count d (q "//item[contains(., 'yk')]"))

let test_eval_attributes () =
  let d = dom () in
  Alcotest.(check int) "//@id" 2 (Naive_eval.eval_count d (q "//@id"));
  Alcotest.(check int) "person[@id='p2']" 1
    (Naive_eval.eval_count d (q "//person[@id = 'p2']"));
  Alcotest.(check (list string)) "attr names" [ "@id"; "@id" ]
    (names (Naive_eval.eval d (q "//person/attribute::id")))

let test_eval_following_sibling () =
  let d = dom () in
  Alcotest.(check int) "person/following-sibling::person" 1
    (Naive_eval.eval_count d (q "/site/people/person/following-sibling::person"));
  Alcotest.(check (list string)) "name/following-sibling::*" [ "phone"; "homepage" ]
    (names (Naive_eval.eval d (q "//name/following-sibling::*")))

let test_eval_custom_fun () =
  let d = dom () in
  let funs = function
    | "LONG" -> Some (fun n -> String.length (Dom.string_value n) > 2)
    | _ -> None
  in
  Alcotest.(check int) "LONG names" 2
    (Naive_eval.eval_count ~funs d (q "//name[LONG(., x)]"));
  Alcotest.check_raises "unknown fun"
    (Invalid_argument "Naive_eval: unknown predicate NOPE") (fun () ->
      ignore (Naive_eval.eval d (q "//name[NOPE(., x)]")))

let test_string_value_excludes_attrs () =
  let d = Dom.of_xml "<a x=\"hidden\">vis<b>ible</b></a>" in
  let a = List.hd (Naive_eval.eval d (q "/a")) in
  Alcotest.(check string) "string value" "visible" (Dom.string_value a);
  let attr = List.hd (Naive_eval.eval d (q "/a/@x")) in
  Alcotest.(check string) "attr string value" "hidden" (Dom.string_value attr)

let test_serialize_agrees_with_document () =
  let doc = Document.of_xml xml in
  let d = dom () in
  Alcotest.(check string) "serializations agree"
    (Document.serialize doc (Document.root doc))
    (Dom.serialize (Dom.root d))

(* ids must line up with the succinct document's preorders *)
let gen_xml =
  QCheck2.Gen.oneofl
    [
      xml;
      "<a/>";
      "<a x=\"1\" y=\"2\"><b/>t<c><d>z</d></c></a>";
      "<r><x><x><x>deep</x></x></x></r>";
    ]

let prop_id_alignment =
  qtest ~count:20 "DOM ids = Document preorders" gen_xml (fun src ->
      let doc = Document.of_xml src in
      let d = Dom.of_xml src in
      if Dom.node_count d <> Document.node_count doc then false
      else begin
        (* walk both trees in preorder and compare tags *)
        let tree = Document.tree doc in
        let ok = ref true in
        let rec go (n : Dom.node) x =
          if x = Document.nil then ok := false
          else begin
            if n.Dom.id <> Document.preorder doc x then ok := false;
            let dom_kids = n.Dom.children in
            let rec kids x acc =
              if x = Document.nil then List.rev acc
              else kids (Sxsi_tree.Tree_backend.next_sibling tree x) (x :: acc)
            in
            let doc_kids = kids (Sxsi_tree.Tree_backend.first_child tree x) [] in
            if List.length dom_kids <> List.length doc_kids then ok := false
            else List.iter2 go dom_kids doc_kids
          end
        in
        go (Dom.root d) (Document.root doc);
        !ok
      end)

(* ------------------------------------------------------------------ *)
(* Streaming evaluator                                                  *)
(* ------------------------------------------------------------------ *)

let test_streaming_basic () =
  let q s = Sxsi_xpath.Xpath_parser.parse s in
  Alcotest.(check int) "//item" 2 (Stream_eval.count xml (q "//item"));
  Alcotest.(check int) "//person/name" 2 (Stream_eval.count xml (q "/site/people/person/name"));
  Alcotest.(check int) "//*" 12 (Stream_eval.count xml (q "//*"));
  Alcotest.(check int) "//text()" 7 (Stream_eval.count xml (q "//text()"));
  Alcotest.(check int) "//item//keyword" 1 (Stream_eval.count xml (q "//item//keyword"));
  Alcotest.(check int) "//@id" 2 (Stream_eval.count xml (q "//@id"));
  Alcotest.(check int) "//person/@id" 2 (Stream_eval.count xml (q "//person/@id"));
  Alcotest.(check int) "absent" 0 (Stream_eval.count xml (q "//nope"));
  Alcotest.(check bool) "rejects predicates" true
    (match Stream_eval.count xml (q "//person[phone]") with
    | exception Stream_eval.Unsupported _ -> true
    | _ -> false);
  Alcotest.(check bool) "rejects fsib" true
    (not (Stream_eval.supported (q "//a/following-sibling::b")))

let prop_streaming_vs_oracle =
  qtest ~count:150 "streaming = oracle on simple paths"
    QCheck2.Gen.(
      pair gen_xml
        (oneofl
           [ "//a"; "//b"; "//a/b"; "//a//b"; "//*"; "//text()"; "//a/text()";
             "/a/b/c"; "//a//b//c"; "//node()"; "//a/@k"; "//@k" ]))
    (fun (xml, query) ->
      let path = Sxsi_xpath.Xpath_parser.parse query in
      let dom = Dom.of_xml xml in
      Stream_eval.count xml path = Naive_eval.eval_count dom path)

let suite =
  ( "baseline",
    [
      Alcotest.test_case "child chain" `Quick test_eval_child_chain;
      Alcotest.test_case "descendant" `Quick test_eval_descendant;
      Alcotest.test_case "filters" `Quick test_eval_filters;
      Alcotest.test_case "text predicates" `Quick test_eval_text_predicates;
      Alcotest.test_case "attributes" `Quick test_eval_attributes;
      Alcotest.test_case "following-sibling" `Quick test_eval_following_sibling;
      Alcotest.test_case "custom predicate" `Quick test_eval_custom_fun;
      Alcotest.test_case "string-value vs attributes" `Quick
        test_string_value_excludes_attrs;
      Alcotest.test_case "serialize agrees with Document" `Quick
        test_serialize_agrees_with_document;
      Alcotest.test_case "streaming evaluator" `Quick test_streaming_basic;
      prop_id_alignment;
      prop_streaming_vs_oracle;
    ] )

(* The parallel substrate, locked down differentially: pool semantics
   and stress (exceptions across the pool boundary, nested fork_join,
   many small tasks), then the harness — parallel document builds and
   parallel evaluation must be observably identical (counts, preorders,
   serialized bytes) to the sequential run at every pool size.  Rides
   along: rank/select block-boundary edge cases and the §6.6 strategy
   rule. *)

open Sxsi_core
open Sxsi_xml
open Sxsi_bits
module Pool = Sxsi_par.Pool

let qtest ?(count = 60) name gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)

(* Shared pools: spawning domains per qcheck case would dominate the
   run time.  Never shut down mid-suite — later cases reuse them. *)
let pool1 = lazy (Pool.create ~name:"t1" ~domains:1 ())
let pool2 = lazy (Pool.create ~name:"t2" ~domains:2 ())
let pool4 = lazy (Pool.create ~name:"t4" ~domains:4 ())
let pools = [ pool1; pool2; pool4 ]

let () =
  at_exit (fun () ->
      List.iter
        (fun l -> if Lazy.is_val l then Pool.shutdown (Lazy.force l))
        pools)

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                       *)
(* ------------------------------------------------------------------ *)

let test_pool_sizes () =
  Alcotest.(check int) "domains clamp to 1" 1
    (Pool.with_pool ~domains:0 (fun p -> Pool.size p));
  Alcotest.(check int) "size 1" 1 (Pool.size (Lazy.force pool1));
  Alcotest.(check int) "size 4" 4 (Pool.size (Lazy.force pool4))

let test_map_reduce_sum () =
  let arr = Array.init 10_000 (fun i -> i) in
  let expected = Array.fold_left ( + ) 0 arr in
  List.iter
    (fun l ->
      let p = Lazy.force l in
      Alcotest.(check int)
        (Printf.sprintf "sum at size %d" (Pool.size p))
        expected
        (Pool.map_reduce p (fun x -> x) ( + ) 0 arr);
      Alcotest.(check int) "sum, one chunk" expected
        (Pool.map_reduce p ~chunks:1 (fun x -> x) ( + ) 0 arr);
      Alcotest.(check int) "sum, odd chunking" expected
        (Pool.map_reduce p ~chunks:7 (fun x -> x) ( + ) 0 arr))
    pools

let test_map_reduce_order () =
  (* a non-commutative (but associative) combine: string concat must
     come out in index order at every pool size *)
  let arr = Array.init 257 string_of_int in
  let expected = Array.fold_left ( ^ ) "" arr in
  List.iter
    (fun l ->
      let p = Lazy.force l in
      Alcotest.(check string)
        (Printf.sprintf "concat at size %d" (Pool.size p))
        expected
        (Pool.map_reduce p ~chunks:13 (fun x -> x) ( ^ ) "" arr))
    pools

let test_map_array () =
  let arr = Array.init 1000 (fun i -> i) in
  let expected = Array.map (fun x -> x * x) arr in
  List.iter
    (fun l ->
      let p = Lazy.force l in
      Alcotest.(check (array int)) "order preserved" expected
        (Pool.map_array p (fun x -> x * x) arr);
      Alcotest.(check (array int)) "empty" [||] (Pool.map_array p (fun x -> x) [||]);
      Alcotest.(check (array int)) "singleton" [| 49 |]
        (Pool.map_array p (fun x -> x * x) [| 7 |]))
    pools

let test_parallel_range () =
  let p = Lazy.force pool4 in
  let n = 10_000 in
  let hits = Array.make n 0 in
  (* chunks are disjoint, so plain writes are race-free *)
  Pool.parallel_range p ~chunks:64 ~lo:0 ~hi:n (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "each index covered exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_fork_join () =
  List.iter
    (fun l ->
      let p = Lazy.force l in
      Alcotest.(check (pair int string)) "both results" (1, "two")
        (Pool.fork_join p (fun () -> 1) (fun () -> "two"));
      (* nested fork_join: a little divide-and-conquer sum *)
      let rec sum lo hi =
        if hi - lo <= 8 then begin
          let s = ref 0 in
          for i = lo to hi - 1 do
            s := !s + i
          done;
          !s
        end
        else begin
          let mid = (lo + hi) / 2 in
          let a, b = Pool.fork_join p (fun () -> sum lo mid) (fun () -> sum mid hi) in
          a + b
        end
      in
      Alcotest.(check int) "nested fork_join" (1000 * 999 / 2) (sum 0 1000))
    pools

let test_many_small_tasks () =
  let p = Lazy.force pool4 in
  let promises = Array.init 2000 (fun i -> Pool.fork p (fun () -> i * 3)) in
  let results = Array.map (Pool.await p) promises in
  Alcotest.(check bool) "all resolved in order" true
    (Array.for_all (fun b -> b) (Array.mapi (fun i r -> r = i * 3) results));
  Alcotest.(check bool) "tasks counted" true (Pool.tasks_total p > 0);
  Alcotest.(check int) "queue drained" 0 (Pool.queue_depth p)

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun l ->
      let p = Lazy.force l in
      (* through await *)
      let pr = Pool.fork p (fun () -> raise (Boom 7)) in
      (match Pool.await p pr with
      | _ -> Alcotest.fail "await must re-raise"
      | exception Boom 7 -> ());
      (* awaiting again re-raises again *)
      (match Pool.await p pr with
      | _ -> Alcotest.fail "second await must re-raise"
      | exception Boom 7 -> ());
      (* through map_array *)
      (match Pool.map_array p (fun x -> if x = 5 then raise (Boom x) else x)
               (Array.init 100 (fun i -> i)) with
      | _ -> Alcotest.fail "map_array must re-raise"
      | exception Boom 5 -> ());
      (* fork_join: g's failure surfaces; if both fail, f wins *)
      (match Pool.fork_join p (fun () -> 1) (fun () -> raise (Boom 2)) with
      | _ -> Alcotest.fail "fork_join must re-raise g"
      | exception Boom 2 -> ());
      (match Pool.fork_join p (fun () -> raise (Boom 1)) (fun () -> raise (Boom 2)) with
      | _ -> Alcotest.fail "fork_join must re-raise"
      | exception Boom 1 -> ());
      (* the pool survives all of the above *)
      Alcotest.(check int) "pool still works" 42
        (Pool.await p (Pool.fork p (fun () -> 42))))
    pools

let test_shutdown () =
  let p = Pool.create ~domains:2 () in
  Alcotest.(check int) "alive" 3 (Pool.await p (Pool.fork p (fun () -> 3)));
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  match Pool.fork p (fun () -> 0) with
  | _ -> Alcotest.fail "fork after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_with_pool_cleanup () =
  (* with_pool shuts down even when the body raises *)
  let leaked = ref None in
  (match
     Pool.with_pool ~domains:2 (fun p ->
         leaked := Some p;
         raise (Boom 9))
   with
  | () -> Alcotest.fail "body exception must escape"
  | exception Boom 9 -> ());
  match !leaked with
  | None -> Alcotest.fail "body never ran"
  | Some p -> (
    match Pool.fork p (fun () -> 0) with
    | _ -> Alcotest.fail "pool must be shut down"
    | exception Invalid_argument _ -> ())

let test_default_domains () =
  let old = Sys.getenv_opt "SXSI_DOMAINS" in
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SXSI_DOMAINS" (Option.value old ~default:""))
    (fun () ->
      let case v expect =
        Unix.putenv "SXSI_DOMAINS" v;
        Alcotest.(check int) ("SXSI_DOMAINS=" ^ v) expect (Pool.default_domains ())
      in
      case "3" 3;
      case "1" 1;
      case "0" 1;
      case "-4" 1;
      case "banana" 1;
      case "500" 128;
      case "" 1)

let test_pool_metrics () =
  let p = Lazy.force pool2 in
  ignore (Pool.map_array p ~chunks:8 (fun x -> x) (Array.init 64 (fun i -> i)));
  let e = Sxsi_obs.Exposition.create () in
  Pool.register_metrics p e;
  let text = Sxsi_obs.Exposition.render e in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("exposes " ^ name) true
        (let re = name ^ " " in
         let n = String.length re in
         String.split_on_char '\n' text
         |> List.exists (fun l -> String.length l >= n && String.sub l 0 n = re)))
    [ "sxsi_pool_tasks_total"; "sxsi_pool_steals_total"; "sxsi_pool_queue_depth";
      "sxsi_pool_domains" ];
  Alcotest.(check bool) "tasks gauge positive" true (Pool.tasks_total p > 0)

(* ------------------------------------------------------------------ *)
(* Differential harness: parallel = sequential, observably              *)
(* ------------------------------------------------------------------ *)

(* One (xml, query) pair: sequential build + evaluation is the oracle;
   every pool size must reproduce its count, its preorder sequence and
   its serialized bytes, on a parallel-built document. *)
let differential_ok xml query =
  let seq_doc = Document.of_xml xml in
  let c = Engine.prepare seq_doc query in
  let expected_ids = Array.to_list (Engine.select_preorders c) in
  let expected_count = Engine.count c in
  let expected_bytes =
    let buf = Buffer.create 256 in
    ignore (Engine.serialize_to buf c);
    Buffer.contents buf
  in
  List.for_all
    (fun l ->
      let p = Lazy.force l in
      let doc = Document.build ~pool:p xml in
      let cp = Engine.prepare doc query in
      Engine.precompile cp;
      let ids = Array.to_list (Engine.select_preorders ~pool:p cp) in
      let n = Engine.count ~pool:p cp in
      let bytes =
        let buf = Buffer.create 256 in
        ignore (Engine.serialize_to ~pool:p buf cp);
        Buffer.contents buf
      in
      ids = expected_ids && n = expected_count && bytes = expected_bytes)
    pools

let prop_differential =
  qtest ~count:80 "parallel = sequential on random doc x query"
    QCheck2.Gen.(pair Test_engine.gen_xml Test_engine.gen_query)
    (fun (xml, query) -> Printf.sprintf "xml: %s\nquery: %s" xml query)
    (fun (xml, query) -> differential_ok xml query)

(* A document big enough to cross every parallel cutoff: the wavelet
   (32 KiB symbols), FM (64 KiB text), tag-index (32 Ki nodes) build
   paths, the 64-hit scan/bottom-up evaluation paths, and the
   4-result serialization path. *)
let big_xml =
  lazy
    (let buf = Buffer.create (1 lsl 18) in
     Buffer.add_string buf "<root>";
     for i = 0 to 3999 do
       Buffer.add_string buf
         (Printf.sprintf
            "<item id=\"i%d\"><name>name%d</name><desc>payload number %d with some \
             text</desc>%s</item>"
            i i i
            (if i mod 7 = 0 then "<flag/>" else ""))
     done;
     Buffer.add_string buf "</root>";
     Buffer.contents buf)

let big_queries =
  [
    "//item";                              (* wide marking scan *)
    "//item[flag]";                        (* scan with predicate *)
    "//name[contains(., '9')]";            (* bottom-up, many hits *)
    "//item[name = 'name1234']";           (* bottom-up, selective *)
    "//desc[contains(., 'number 123 ')]";
    "/root/item/name";
    "//item[not(flag)]/name";
    "//nonexistent";
  ]

let test_big_document_differential () =
  let xml = Lazy.force big_xml in
  let seq_doc = Document.of_xml xml in
  let seq_root = Document.serialize seq_doc (Document.root seq_doc) in
  List.iter
    (fun l ->
      let p = Lazy.force l in
      let doc = Document.build ~pool:p xml in
      Alcotest.(check int)
        (Printf.sprintf "node count at size %d" (Pool.size p))
        (Document.node_count seq_doc) (Document.node_count doc);
      (* byte-for-byte identical tree + text indexes *)
      Alcotest.(check bool)
        (Printf.sprintf "serialized document at size %d" (Pool.size p))
        true
        (Document.serialize doc (Document.root doc) = seq_root);
      List.iter
        (fun q ->
          let cs = Engine.prepare seq_doc q and cp = Engine.prepare doc q in
          Engine.precompile cp;
          let expected = Engine.select_preorders cs in
          Alcotest.(check (array int))
            (Printf.sprintf "%s at size %d" q (Pool.size p))
            expected
            (Engine.select_preorders ~pool:p cp);
          Alcotest.(check int)
            (Printf.sprintf "%s count at size %d" q (Pool.size p))
            (Array.length expected) (Engine.count ~pool:p cp))
        big_queries)
    pools

let test_big_document_strategies () =
  (* both forced strategies, parallel, on a bottom-up-shaped query with
     far more than [par_cutoff] matching texts *)
  let xml = Lazy.force big_xml in
  let doc = Document.of_xml xml in
  let q = "//name[contains(., '9')]" in
  let c = Engine.prepare doc q in
  Engine.precompile c;
  let expected = Engine.select_preorders ~strategy:Engine.Top_down c in
  Alcotest.(check bool) "query has the bottom-up shape" true
    (Engine.bottom_up_plan c <> None);
  List.iter
    (fun l ->
      let p = Lazy.force l in
      Alcotest.(check (array int))
        (Printf.sprintf "top-down at size %d" (Pool.size p))
        expected
        (Engine.select_preorders ~pool:p ~strategy:Engine.Top_down c);
      Alcotest.(check (array int))
        (Printf.sprintf "bottom-up at size %d" (Pool.size p))
        expected
        (Engine.select_preorders ~pool:p ~strategy:Engine.Bottom_up c))
    pools

(* ------------------------------------------------------------------ *)
(* Satellite: rank/select at block boundaries                           *)
(* ------------------------------------------------------------------ *)

let boundary_positions len =
  List.sort_uniq compare
    (List.filter (fun i -> i >= 0 && i <= len) [ 0; 1; 63; 64; 65; 511; 512; 513; len - 1; len ])

let bitvec_patterns len =
  [
    ("all-zeros", fun _ -> false);
    ("all-ones", fun _ -> true);
    ("alternating", fun i -> i land 1 = 1);
    ("every-64th", fun i -> i mod 64 = 0);
    ("block-edges", fun i -> i mod 512 = 511);
  ]
  |> List.map (fun (name, f) -> (Printf.sprintf "%s/%d" name len, f))

let test_bitvec_boundaries () =
  List.iter
    (fun len ->
      List.iter
        (fun (name, f) ->
          let t = Bitvec.of_fun len f in
          let b = Bitvec.Builder.create () in
          for i = 0 to len - 1 do
            Bitvec.Builder.push b (f i)
          done;
          let t2 = Bitvec.Builder.finish b in
          Alcotest.(check int) (name ^ " length") len (Bitvec.length t);
          (* naive prefix counts at the boundary positions *)
          let ones = ref 0 in
          let expect = Array.make (len + 1) 0 in
          for i = 0 to len - 1 do
            expect.(i) <- !ones;
            if f i then incr ones
          done;
          expect.(len) <- !ones;
          List.iter
            (fun i ->
              Alcotest.(check int) (Printf.sprintf "%s rank1 %d" name i)
                expect.(i) (Bitvec.rank1 t i);
              Alcotest.(check int) (Printf.sprintf "%s rank0 %d" name i)
                (i - expect.(i)) (Bitvec.rank0 t i);
              Alcotest.(check int) (Printf.sprintf "%s builder rank1 %d" name i)
                expect.(i) (Bitvec.rank1 t2 i))
            (boundary_positions len);
          Alcotest.(check int) (name ^ " count") !ones (Bitvec.count t);
          (* select is rank's inverse at every set bit near a boundary *)
          for j = 0 to !ones - 1 do
            let pos = Bitvec.select1 t j in
            if List.mem pos (boundary_positions len) || j = 0 || j = !ones - 1 then begin
              Alcotest.(check bool) (Printf.sprintf "%s select1 %d is set" name j)
                true (Bitvec.get t pos);
              Alcotest.(check int) (Printf.sprintf "%s rank-select %d" name j) j
                (Bitvec.rank1 t pos)
            end
          done;
          let zeros = len - !ones in
          if zeros > 0 then begin
            let p0 = Bitvec.select0 t 0 and plast = Bitvec.select0 t (zeros - 1) in
            Alcotest.(check bool) (name ^ " select0 first") false (Bitvec.get t p0);
            Alcotest.(check bool) (name ^ " select0 last") false (Bitvec.get t plast)
          end;
          (* next1 over the boundaries *)
          List.iter
            (fun i ->
              if i < len then begin
                let rec naive j = if j >= len then -1 else if f j then j else naive (j + 1) in
                Alcotest.(check int) (Printf.sprintf "%s next1 %d" name i)
                  (naive i) (Bitvec.next1 t i)
              end)
            (boundary_positions len))
        (bitvec_patterns len))
    [ 1; 63; 64; 65; 511; 512; 513; 1500 ]

let test_sparse_boundaries () =
  let check_sparse name universe elems =
    let t = Sparse.of_sorted ~universe (Array.of_list elems) in
    Alcotest.(check int) (name ^ " length") (List.length elems) (Sparse.length t);
    List.iteri
      (fun i v ->
        Alcotest.(check int) (Printf.sprintf "%s get %d" name i) v (Sparse.get t i))
      elems;
    List.iter
      (fun i ->
        let expect_rank = List.length (List.filter (fun v -> v < i) elems) in
        Alcotest.(check int) (Printf.sprintf "%s rank %d" name i)
          expect_rank (Sparse.rank t i);
        Alcotest.(check bool) (Printf.sprintf "%s mem %d" name i)
          (List.mem i elems) (Sparse.mem t i);
        let expect_next = match List.filter (fun v -> v >= i) elems with
          | v :: _ -> v
          | [] -> -1
        in
        Alcotest.(check int) (Printf.sprintf "%s next %d" name i)
          expect_next (Sparse.next t i);
        let expect_prev =
          match List.rev (List.filter (fun v -> v < i) elems) with
          | v :: _ -> v
          | [] -> -1
        in
        Alcotest.(check int) (Printf.sprintf "%s prev %d" name i)
          expect_prev (Sparse.prev t i))
      (boundary_positions (universe - 1))
  in
  check_sparse "empty" 1024 [];
  check_sparse "edges" 1024 [ 0; 63; 64; 511; 512; 1023 ];
  check_sparse "first-only" 513 [ 0 ];
  check_sparse "last-only" 513 [ 512 ];
  check_sparse "dense-run" 600 (List.init 80 (fun i -> 480 + i));
  (match Sparse.of_sorted ~universe:10 [| 3; 3 |] with
  | _ -> Alcotest.fail "duplicate elements must raise"
  | exception Invalid_argument _ -> ());
  match Sparse.of_sorted ~universe:10 [| 10 |] with
  | _ -> Alcotest.fail "out-of-universe must raise"
  | exception Invalid_argument _ -> ()

let test_wavelet_boundaries () =
  let strings =
    [
      ("single-symbol", String.make 513 'a');
      ("two-symbols", String.init 600 (fun i -> if i mod 64 = 0 then 'b' else 'a'));
      ( "four-symbols",
        String.init 700 (fun i -> [| 'a'; 'b'; 'c'; 'd' |].(i * 31 mod 4)) );
      ("one-char", "z");
    ]
  in
  List.iter
    (fun (name, s) ->
      let len = String.length s in
      let t = Wavelet.of_string s in
      Alcotest.(check int) (name ^ " length") len (Wavelet.length t);
      let distinct = List.sort_uniq compare (List.init len (String.get s)) in
      List.iter
        (fun c ->
          let naive_rank i =
            let n = ref 0 in
            for j = 0 to i - 1 do
              if s.[j] = c then incr n
            done;
            !n
          in
          List.iter
            (fun i ->
              Alcotest.(check int)
                (Printf.sprintf "%s rank %c %d" name c i)
                (naive_rank i) (Wavelet.rank t c i))
            (boundary_positions len);
          let total = naive_rank len in
          Alcotest.(check int) (Printf.sprintf "%s count %c" name c) total
            (Wavelet.count t c);
          if total > 0 then
            List.iter
              (fun j ->
                let pos = Wavelet.select t c j in
                Alcotest.(check char) (Printf.sprintf "%s select %c %d" name c j) c
                  (Wavelet.access t pos);
                Alcotest.(check int)
                  (Printf.sprintf "%s rank-select %c %d" name c j)
                  j (Wavelet.rank t c pos))
              (List.sort_uniq compare [ 0; min 63 (total - 1); min 64 (total - 1); total - 1 ]))
        distinct;
      List.iter
        (fun i ->
          if i < len then
            Alcotest.(check char) (Printf.sprintf "%s access %d" name i) s.[i]
              (Wavelet.access t i))
        (boundary_positions len))
    strings

(* ------------------------------------------------------------------ *)
(* Satellite: the §6.6 strategy rule, as a property                     *)
(* ------------------------------------------------------------------ *)

(* An independent transcription of the selectivity rule: bottom-up iff
   the query has the shape, its predicate rejects the empty string, and
   the text index estimates fewer matches than the rarest named step
   tag occurs. *)
let expected_strategy doc c query =
  match Engine.bottom_up_plan c with
  | None -> `Top_down
  | Some plan ->
    if Bottom_up.matches_empty_value plan then `Top_down
    else begin
      let tc = Document.text doc in
      let estimate =
        match Bottom_up.pred_of plan with
        | Sxsi_auto.Automaton.Custom_pred _ -> 0
        | Sxsi_auto.Automaton.Text_pred (op, lit) -> (
          let open Sxsi_text in
          let open Sxsi_xpath.Ast in
          match op with
          | Contains -> Text_collection.global_count tc lit
          | Eq -> Text_collection.equals_count tc lit
          | Starts_with -> Text_collection.starts_with_count tc lit
          | Ends_with -> Text_collection.ends_with_count tc lit
          | Lt | Le -> Text_collection.less_equal_count tc lit
          | Gt | Ge ->
            Text_collection.doc_count tc - Text_collection.less_than_count tc lit)
      in
      let tree = Document.tree doc in
      let path = Sxsi_xpath.Xpath_parser.parse query in
      let min_tag =
        List.fold_left
          (fun acc (step : Sxsi_xpath.Ast.step) ->
            match step.test with
            | Sxsi_xpath.Ast.Name n -> (
              match Document.tag_id doc n with
              | Some tg -> min acc (Sxsi_tree.Tree_backend.count tree tg)
              | None -> 0)
            | Star | Text | Node -> acc)
          (Document.node_count doc) path.Sxsi_xpath.Ast.steps
      in
      if estimate < min_tag then `Bottom_up else `Top_down
    end

let strategy_queries =
  [
    "//a[contains(., \"x\")]";
    "//b[. = \"xyz\"]";
    "//c[starts-with(., \"z\")]";
    "//d[ends-with(., \"y\")]";
    "//a/b[contains(., \"y\")]";
    "//a//c[. = \"x\"]";
    "//a[contains(., \"\")]";     (* matches empty: must stay top-down *)
    "//text()[contains(., \"x\")]";
    "//a[b]";                       (* structural: no bottom-up shape *)
    "//a";
  ]

let prop_auto_matches_rule =
  qtest ~count:60 "Auto strategy = selectivity rule"
    QCheck2.Gen.(pair Test_engine.gen_xml (oneofl strategy_queries))
    (fun (xml, query) -> Printf.sprintf "xml: %s\nquery: %s" xml query)
    (fun (xml, query) ->
      let doc = Document.of_xml xml in
      let c = Engine.prepare doc query in
      let chosen = Engine.chosen_strategy c in
      let rule = expected_strategy doc c query in
      (* the choice follows the rule... *)
      chosen = rule
      (* ...and either forced strategy yields the same answer (forcing
         bottom-up is only sound when the plan exists and the predicate
         rejects the empty string) *)
      &&
      let td = Engine.select_preorders ~strategy:Engine.Top_down c in
      Engine.select_preorders c = td
      &&
      match Engine.bottom_up_plan c with
      | Some plan when not (Bottom_up.matches_empty_value plan) ->
        Engine.select_preorders ~strategy:Engine.Bottom_up c = td
      | _ -> true)

let suite =
  ( "par",
    [
      Alcotest.test_case "pool sizes" `Quick test_pool_sizes;
      Alcotest.test_case "map_reduce sum" `Quick test_map_reduce_sum;
      Alcotest.test_case "map_reduce index order" `Quick test_map_reduce_order;
      Alcotest.test_case "map_array" `Quick test_map_array;
      Alcotest.test_case "parallel_range covers once" `Quick test_parallel_range;
      Alcotest.test_case "fork_join and nesting" `Quick test_fork_join;
      Alcotest.test_case "many small tasks" `Quick test_many_small_tasks;
      Alcotest.test_case "exceptions cross the pool" `Quick test_exception_propagation;
      Alcotest.test_case "shutdown" `Quick test_shutdown;
      Alcotest.test_case "with_pool cleans up" `Quick test_with_pool_cleanup;
      Alcotest.test_case "SXSI_DOMAINS parsing" `Quick test_default_domains;
      Alcotest.test_case "pool metrics" `Quick test_pool_metrics;
      prop_differential;
      Alcotest.test_case "big document differential" `Slow
        test_big_document_differential;
      Alcotest.test_case "big document forced strategies" `Slow
        test_big_document_strategies;
      Alcotest.test_case "bitvec block boundaries" `Quick test_bitvec_boundaries;
      Alcotest.test_case "sparse boundaries" `Quick test_sparse_boundaries;
      Alcotest.test_case "wavelet boundaries" `Quick test_wavelet_boundaries;
      prop_auto_matches_rule;
    ] )

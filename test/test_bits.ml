(* Unit and property tests for the succinct bit-level substrates. *)

open Sxsi_bits

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Reference implementations                                           *)
(* ------------------------------------------------------------------ *)

let naive_rank1 bits i =
  let r = ref 0 in
  for k = 0 to i - 1 do
    if bits.(k) then incr r
  done;
  !r

let naive_select1 bits j =
  let seen = ref (-1) and res = ref (-1) in
  Array.iteri
    (fun p b ->
      if b then begin
        incr seen;
        if !seen = j then res := p
      end)
    bits;
  !res

(* ------------------------------------------------------------------ *)
(* Popcnt                                                               *)
(* ------------------------------------------------------------------ *)

let test_popcount_small () =
  Alcotest.(check int) "0" 0 (Popcnt.popcount 0);
  Alcotest.(check int) "1" 1 (Popcnt.popcount 1);
  Alcotest.(check int) "0xff" 8 (Popcnt.popcount 0xff);
  Alcotest.(check int) "max_int" 62 (Popcnt.popcount max_int)

let test_select_in_word () =
  (* word = bits 1, 5, 17, 40 *)
  let w = (1 lsl 1) lor (1 lsl 5) lor (1 lsl 17) lor (1 lsl 40) in
  Alcotest.(check int) "j=0" 1 (Popcnt.select_in_word w 0);
  Alcotest.(check int) "j=1" 5 (Popcnt.select_in_word w 1);
  Alcotest.(check int) "j=2" 17 (Popcnt.select_in_word w 2);
  Alcotest.(check int) "j=3" 40 (Popcnt.select_in_word w 3)

let prop_popcount =
  qtest "popcount matches naive" QCheck2.Gen.(int_bound max_int) (fun x ->
      let rec naive v = if v = 0 then 0 else (v land 1) + naive (v lsr 1) in
      Popcnt.popcount x = naive x)

(* ------------------------------------------------------------------ *)
(* Bitvec                                                               *)
(* ------------------------------------------------------------------ *)

let bits_gen =
  QCheck2.Gen.(list_size (int_range 0 700) bool |> map Array.of_list)

let build_bv bits = Bitvec.of_fun (Array.length bits) (fun i -> bits.(i))

let test_bitvec_basic () =
  let bits = Array.init 200 (fun i -> i mod 3 = 0) in
  let bv = build_bv bits in
  Alcotest.(check int) "length" 200 (Bitvec.length bv);
  Alcotest.(check int) "count" 67 (Bitvec.count bv);
  Alcotest.(check bool) "get 0" true (Bitvec.get bv 0);
  Alcotest.(check bool) "get 1" false (Bitvec.get bv 1);
  Alcotest.(check int) "rank1 200" 67 (Bitvec.rank1 bv 200);
  Alcotest.(check int) "rank0 200" 133 (Bitvec.rank0 bv 200);
  Alcotest.(check int) "select1 0" 0 (Bitvec.select1 bv 0);
  Alcotest.(check int) "select1 66" 198 (Bitvec.select1 bv 66)

let test_bitvec_empty () =
  let bv = Bitvec.of_fun 0 (fun _ -> false) in
  Alcotest.(check int) "length" 0 (Bitvec.length bv);
  Alcotest.(check int) "rank1" 0 (Bitvec.rank1 bv 0);
  Alcotest.(check int) "count" 0 (Bitvec.count bv)

let test_bitvec_all_ones () =
  let bv = Bitvec.of_fun 313 (fun _ -> true) in
  Alcotest.(check int) "count" 313 (Bitvec.count bv);
  for j = 0 to 312 do
    Alcotest.(check int) "select1" j (Bitvec.select1 bv j)
  done

let test_bitvec_push_run () =
  let b = Bitvec.Builder.create () in
  Bitvec.Builder.push_run b false 100;
  Bitvec.Builder.push_run b true 3;
  Bitvec.Builder.push_run b false 500;
  Bitvec.Builder.push b true;
  let bv = Bitvec.Builder.finish b in
  Alcotest.(check int) "length" 604 (Bitvec.length bv);
  Alcotest.(check int) "count" 4 (Bitvec.count bv);
  Alcotest.(check int) "select1 0" 100 (Bitvec.select1 bv 0);
  Alcotest.(check int) "select1 3" 603 (Bitvec.select1 bv 3)

let prop_rank1 =
  qtest "rank1 matches naive" bits_gen (fun bits ->
      let bv = build_bv bits in
      let ok = ref true in
      for i = 0 to Array.length bits do
        if Bitvec.rank1 bv i <> naive_rank1 bits i then ok := false
      done;
      !ok)

let prop_select1 =
  qtest "select1 matches naive" bits_gen (fun bits ->
      let bv = build_bv bits in
      let ones = Bitvec.count bv in
      let ok = ref true in
      for j = 0 to ones - 1 do
        if Bitvec.select1 bv j <> naive_select1 bits j then ok := false
      done;
      !ok)

let prop_select0 =
  qtest "select0 matches naive" bits_gen (fun bits ->
      let bv = build_bv bits in
      let zeros = Array.length bits - Bitvec.count bv in
      let inv = Array.map not bits in
      let ok = ref true in
      for j = 0 to zeros - 1 do
        if Bitvec.select0 bv j <> naive_select1 inv j then ok := false
      done;
      !ok)

let prop_rank_select_inverse =
  qtest "rank1 (select1 j) = j" bits_gen (fun bits ->
      let bv = build_bv bits in
      let ok = ref true in
      for j = 0 to Bitvec.count bv - 1 do
        let p = Bitvec.select1 bv j in
        if Bitvec.rank1 bv p <> j || not (Bitvec.get bv p) then ok := false
      done;
      !ok)

let prop_next1 =
  qtest "next1 matches scan" bits_gen (fun bits ->
      let bv = build_bv bits in
      let n = Array.length bits in
      let naive i =
        let rec go p = if p >= n then -1 else if bits.(p) then p else go (p + 1) in
        go i
      in
      let ok = ref true in
      for i = 0 to n do
        if Bitvec.next1 bv i <> naive i then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Intvec                                                               *)
(* ------------------------------------------------------------------ *)

let test_intvec_basic () =
  let iv = Intvec.make 100 7 in
  for i = 0 to 99 do
    Intvec.set iv i (i mod 128)
  done;
  for i = 0 to 99 do
    Alcotest.(check int) "get" (i mod 128) (Intvec.get iv i)
  done

let test_intvec_straddle () =
  (* width 40 guarantees word straddling *)
  let iv = Intvec.make 20 40 in
  let v i = (i * 123456789) land ((1 lsl 40) - 1) in
  for i = 0 to 19 do
    Intvec.set iv i (v i)
  done;
  for i = 0 to 19 do
    Alcotest.(check int) "get" (v i) (Intvec.get iv i)
  done

let test_intvec_overwrite () =
  let iv = Intvec.make 10 9 in
  Intvec.set iv 3 511;
  Intvec.set iv 3 17;
  Alcotest.(check int) "after overwrite" 17 (Intvec.get iv 3);
  Alcotest.(check int) "neighbour untouched" 0 (Intvec.get iv 2);
  Alcotest.(check int) "neighbour untouched" 0 (Intvec.get iv 4)

let prop_intvec =
  qtest "of_array round-trips"
    QCheck2.Gen.(list_size (int_range 0 300) (int_bound 100000) |> map Array.of_list)
    (fun a ->
      if Array.length a = 0 then true
      else begin
        let iv = Intvec.of_array a in
        let ok = ref true in
        Array.iteri (fun i v -> if Intvec.get iv i <> v then ok := false) a;
        !ok
      end)

(* ------------------------------------------------------------------ *)
(* Sparse                                                               *)
(* ------------------------------------------------------------------ *)

let sorted_gen =
  (* random subset of [0, 2000) *)
  QCheck2.Gen.(
    list_size (int_range 0 200) (int_bound 1999)
    |> map (fun l ->
           List.sort_uniq compare l |> Array.of_list))

let test_sparse_basic () =
  let a = [| 3; 17; 100; 101; 999 |] in
  let s = Sparse.of_sorted ~universe:1000 a in
  Alcotest.(check int) "length" 5 (Sparse.length s);
  Array.iteri (fun i v -> Alcotest.(check int) "get" v (Sparse.get s i)) a;
  Alcotest.(check int) "rank 0" 0 (Sparse.rank s 0);
  Alcotest.(check int) "rank 4" 1 (Sparse.rank s 4);
  Alcotest.(check int) "rank 101" 3 (Sparse.rank s 101);
  Alcotest.(check int) "rank 1000" 5 (Sparse.rank s 1000);
  Alcotest.(check bool) "mem 100" true (Sparse.mem s 100);
  Alcotest.(check bool) "mem 102" false (Sparse.mem s 102);
  Alcotest.(check int) "next 102" 999 (Sparse.next s 102);
  Alcotest.(check int) "next 1000" (-1) (Sparse.next s 1000);
  Alcotest.(check int) "prev 100" 17 (Sparse.prev s 100);
  Alcotest.(check int) "prev 3" (-1) (Sparse.prev s 3)

let test_sparse_empty () =
  let s = Sparse.of_sorted ~universe:100 [||] in
  Alcotest.(check int) "length" 0 (Sparse.length s);
  Alcotest.(check int) "rank" 0 (Sparse.rank s 50);
  Alcotest.(check int) "next" (-1) (Sparse.next s 0)

let test_sparse_dense () =
  let a = Array.init 500 (fun i -> i) in
  let s = Sparse.of_sorted ~universe:500 a in
  for i = 0 to 499 do
    Alcotest.(check int) "get" i (Sparse.get s i);
    Alcotest.(check int) "rank" i (Sparse.rank s i)
  done

let prop_sparse_get =
  qtest "get matches source array" sorted_gen (fun a ->
      let s = Sparse.of_sorted ~universe:2000 a in
      let ok = ref true in
      Array.iteri (fun i v -> if Sparse.get s i <> v then ok := false) a;
      !ok)

let prop_sparse_rank =
  qtest "rank matches naive" sorted_gen (fun a ->
      let s = Sparse.of_sorted ~universe:2000 a in
      let naive i = Array.fold_left (fun acc v -> if v < i then acc + 1 else acc) 0 a in
      let ok = ref true in
      for i = 0 to 2000 do
        if Sparse.rank s i <> naive i then ok := false
      done;
      !ok)

let prop_sparse_next =
  qtest "next matches naive" sorted_gen (fun a ->
      let s = Sparse.of_sorted ~universe:2000 a in
      let naive i =
        match Array.to_list a |> List.filter (fun v -> v >= i) with
        | [] -> -1
        | v :: _ -> v
      in
      let ok = ref true in
      for i = 0 to 2000 do
        if Sparse.next s i <> naive i then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Wavelet                                                              *)
(* ------------------------------------------------------------------ *)

let string_gen =
  QCheck2.Gen.(
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 500))

let naive_count s c =
  String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 s

let test_wavelet_basic () =
  let s = "abracadabra" in
  let w = Wavelet.of_string s in
  Alcotest.(check int) "length" 11 (Wavelet.length w);
  Alcotest.(check int) "count a" 5 (Wavelet.count w 'a');
  Alcotest.(check int) "count b" 2 (Wavelet.count w 'b');
  Alcotest.(check int) "count z" 0 (Wavelet.count w 'z');
  String.iteri
    (fun i c -> Alcotest.(check char) "access" c (Wavelet.access w i))
    s;
  Alcotest.(check int) "rank a 5" 2 (Wavelet.rank w 'a' 5);
  Alcotest.(check int) "select a 2" 5 (Wavelet.select w 'a' 2);
  Alcotest.(check int) "rank z 11" 0 (Wavelet.rank w 'z' 11)

let test_wavelet_single_symbol () =
  let w = Wavelet.of_string "aaaa" in
  Alcotest.(check int) "count" 4 (Wavelet.count w 'a');
  Alcotest.(check char) "access" 'a' (Wavelet.access w 2);
  Alcotest.(check int) "rank" 3 (Wavelet.rank w 'a' 3);
  Alcotest.(check int) "select" 2 (Wavelet.select w 'a' 2)

let test_wavelet_empty () =
  let w = Wavelet.of_string "" in
  Alcotest.(check int) "length" 0 (Wavelet.length w);
  Alcotest.(check int) "rank" 0 (Wavelet.rank w 'x' 0)

let prop_wavelet_access =
  qtest "access reproduces string" string_gen (fun s ->
      let w = Wavelet.of_string s in
      let ok = ref true in
      String.iteri (fun i c -> if Wavelet.access w i <> c then ok := false) s;
      !ok)

let prop_wavelet_rank =
  qtest "rank matches naive" string_gen (fun s ->
      let w = Wavelet.of_string s in
      let ok = ref true in
      List.iter
        (fun c ->
          for i = 0 to String.length s do
            let naive = naive_count (String.sub s 0 i) c in
            if Wavelet.rank w c i <> naive then ok := false
          done)
        [ 'a'; '\000'; '\255'; 'Z' ];
      (* also check ranks of characters actually present *)
      if String.length s > 0 then begin
        let c = s.[String.length s / 2] in
        for i = 0 to String.length s do
          if Wavelet.rank w c i <> naive_count (String.sub s 0 i) c then ok := false
        done
      end;
      !ok)

let prop_wavelet_select =
  qtest "rank/select inverse" string_gen (fun s ->
      let w = Wavelet.of_string s in
      let ok = ref true in
      String.iter
        (fun c ->
          for j = 0 to Wavelet.count w c - 1 do
            let p = Wavelet.select w c j in
            if Wavelet.rank w c p <> j || Wavelet.access w p <> c then ok := false
          done)
        "ab\000\255";
      !ok)

(* ------------------------------------------------------------------ *)
(* Int_wavelet                                                          *)
(* ------------------------------------------------------------------ *)

let iw_gen =
  QCheck2.Gen.(list_size (int_range 0 200) (int_bound 20) |> map Array.of_list)

let test_int_wavelet_basic () =
  let a = [| 3; 1; 4; 1; 5; 9; 2; 6; 5; 3 |] in
  let w = Int_wavelet.of_array ~sigma:10 a in
  Alcotest.(check int) "length" 10 (Int_wavelet.length w);
  Array.iteri
    (fun i v -> Alcotest.(check int) "access" v (Int_wavelet.access w i))
    a;
  Alcotest.(check int) "rank 1 at 4" 2 (Int_wavelet.rank_value w 1 4);
  Alcotest.(check int) "range_count" 3
    (Int_wavelet.range_count w ~lo:2 ~hi:8 ~vlo:2 ~vhi:6);
  Alcotest.(check (list int)) "range_report" [ 2; 4; 5 ]
    (Int_wavelet.range_report w ~lo:2 ~hi:8 ~vlo:2 ~vhi:6);
  Alcotest.(check (list int)) "empty ranges" []
    (Int_wavelet.range_report w ~lo:5 ~hi:5 ~vlo:0 ~vhi:10)

let prop_int_wavelet_access =
  qtest "int wavelet access" iw_gen (fun a ->
      let w = Int_wavelet.of_array ~sigma:21 a in
      let ok = ref true in
      Array.iteri (fun i v -> if Int_wavelet.access w i <> v then ok := false) a;
      !ok)

let prop_int_wavelet_range =
  qtest ~count:100 "int wavelet range queries" iw_gen (fun a ->
      let w = Int_wavelet.of_array ~sigma:21 a in
      let naive_count lo hi vlo vhi =
        let c = ref 0 in
        for i = max 0 lo to min (Array.length a) hi - 1 do
          if a.(i) >= vlo && a.(i) < vhi then incr c
        done;
        !c
      in
      let naive_report lo hi vlo vhi =
        let s = ref [] in
        for i = max 0 lo to min (Array.length a) hi - 1 do
          if a.(i) >= vlo && a.(i) < vhi then s := a.(i) :: !s
        done;
        List.sort_uniq compare !s
      in
      let ok = ref true in
      List.iter
        (fun (lo, hi, vlo, vhi) ->
          if Int_wavelet.range_count w ~lo ~hi ~vlo ~vhi <> naive_count lo hi vlo vhi
          then ok := false;
          if Int_wavelet.range_report w ~lo ~hi ~vlo ~vhi <> naive_report lo hi vlo vhi
          then ok := false)
        [ (0, Array.length a, 0, 21); (1, 7, 3, 9); (0, 3, 0, 1); (2, 100, 10, 21);
          (5, 2, 0, 21); (0, Array.length a, 20, 21) ];
      !ok)

(* ------------------------------------------------------------------ *)
(* Broadword kernel lockdown                                           *)
(*                                                                     *)
(* The rank/select kernels were rewritten (interleaved superblock      *)
(* directories, branchless broadword select); everything below pins    *)
(* them against brute force and against [Bitvec_ref], a faithful       *)
(* snapshot of the previous table-driven kernels, on adversarial       *)
(* shapes: all-zeros, all-ones, a single bit at every word / block /   *)
(* superblock boundary, and a density sweep from 1/1024 to 1/2.        *)
(* ------------------------------------------------------------------ *)

let word_bits = 63
let super_bits = 504 (* 8 words per superblock *)

let boundary_lengths =
  [ 1; 62; 63; 64; 125; 126; 127; 503; 504; 505; 1007; 1008; 1009;
    2015; 2016; 2017; 4031; 4032; 4033 ]

(* Probe indices for a vector of length [len]: 0, len, every word and
   superblock boundary +/- 1, and a coarse stride — enough to cross
   every directory structure without O(len) work per case. *)
let probe_indices len =
  let acc = ref [ 0; len ] in
  let add i = if i >= 0 && i <= len then acc := i :: !acc in
  let k = ref word_bits in
  while !k <= len + 1 do
    add (!k - 1);
    add !k;
    add (!k + 1);
    k := !k + word_bits
  done;
  let step = max 1 (len / 13) in
  let i = ref 0 in
  while !i <= len do
    add !i;
    i := !i + step
  done;
  List.sort_uniq compare !acc

(* j-probes over [0, count): everything when small, else a stride plus
   the extremes. *)
let probe_js count =
  if count <= 0 then []
  else if count <= 96 then List.init count Fun.id
  else begin
    let step = max 1 (count / 64) in
    let acc = ref [ 0; count - 1 ] in
    let j = ref 0 in
    while !j < count do
      acc := !j :: !acc;
      j := !j + step
    done;
    List.sort_uniq compare !acc
  end

let prefix_ranks bits =
  let n = Array.length bits in
  let p = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    p.(i + 1) <- p.(i) + (if bits.(i) then 1 else 0)
  done;
  p

let positions_of value bits =
  let acc = ref [] in
  Array.iteri (fun i b -> if b = value then acc := i :: !acc) bits;
  Array.of_list (List.rev !acc)

let adversarial_gen : bool array QCheck2.Gen.t =
  let open QCheck2.Gen in
  let len_gen =
    oneof [ oneofl boundary_lengths; int_range 0 1300 ]
  in
  bind len_gen (fun len ->
      if len = 0 then return [||]
      else
        oneof
          [
            return (Array.make len false);
            return (Array.make len true);
            (* single bit anywhere *)
            map (fun p -> Array.init len (fun i -> i = p)) (int_bound (len - 1));
            (* single bit at a word/block/superblock boundary *)
            map
              (fun p ->
                let p = min p (len - 1) in
                Array.init len (fun i -> i = p))
              (oneofl
                 [ 0; word_bits - 1; word_bits; word_bits + 1; super_bits - 1;
                   super_bits; super_bits + 1; (2 * super_bits) - 1; 2 * super_bits ]);
            (* single zero at a boundary (the select0 mirror) *)
            map
              (fun p ->
                let p = min p (len - 1) in
                Array.init len (fun i -> i <> p))
              (oneofl [ 0; word_bits - 1; word_bits; super_bits - 1; super_bits ]);
            (* density sweep 1/1024 .. 1/2 *)
            bind
              (oneofl [ 1024; 256; 64; 16; 4; 2 ])
              (fun d ->
                array_size (return len) (map (fun r -> r = 0) (int_bound (d - 1))));
          ])

let qtest10k name prop = qtest ~count:10_000 name adversarial_gen prop

(* 1: rank1 against brute force at every probe index *)
let prop_bw_rank1 =
  qtest10k "bw: rank1 = naive on adversarial shapes" (fun bits ->
      let bv = build_bv bits in
      let p = prefix_ranks bits in
      List.for_all
        (fun i -> Bitvec.rank1 bv i = p.(i))
        (probe_indices (Array.length bits)))

(* 2: rank0 i + rank1 i = i *)
let prop_bw_rank0_sum =
  qtest10k "bw: rank0 i + rank1 i = i" (fun bits ->
      let bv = build_bv bits in
      List.for_all
        (fun i -> Bitvec.rank0 bv i + Bitvec.rank1 bv i = i)
        (probe_indices (Array.length bits)))

(* 3: rank1 (select1 j) = j and the selected position carries a one *)
let prop_bw_rank_select1_inverse =
  qtest10k "bw: rank1 (select1 j) = j" (fun bits ->
      let bv = build_bv bits in
      List.for_all
        (fun j ->
          let pos = Bitvec.select1 bv j in
          Bitvec.rank1 bv pos = j && Bitvec.get bv pos)
        (probe_js (Bitvec.count bv)))

(* 4: select1 (rank1 i) >= i whenever a one remains at or after i *)
let prop_bw_select1_after_rank =
  qtest10k "bw: select1 (rank1 i) >= i" (fun bits ->
      let bv = build_bv bits in
      let ones = Bitvec.count bv in
      List.for_all
        (fun i ->
          let r = Bitvec.rank1 bv i in
          r >= ones || Bitvec.select1 bv r >= i)
        (probe_indices (Array.length bits)))

(* 5: select0 inverse, and never a padding-tail position >= len *)
let prop_bw_select0_inverse =
  qtest10k "bw: select0 inverse, result < len" (fun bits ->
      let bv = build_bv bits in
      let len = Array.length bits in
      let zeros = len - Bitvec.count bv in
      List.for_all
        (fun j ->
          let pos = Bitvec.select0 bv j in
          pos < len && Bitvec.rank0 bv pos = j && not (Bitvec.get bv pos))
        (probe_js zeros))

(* 6: next1 against a naive scan *)
let prop_bw_next1 =
  qtest10k "bw: next1 = naive scan" (fun bits ->
      let bv = build_bv bits in
      let n = Array.length bits in
      (* nxt.(i) = first set position >= i, -1 if none *)
      let nxt = Array.make (n + 1) (-1) in
      for i = n - 1 downto 0 do
        nxt.(i) <- (if bits.(i) then i else nxt.(i + 1))
      done;
      List.for_all (fun i -> Bitvec.next1 bv i = nxt.(i)) (probe_indices n))

(* 7: Builder.push one-by-one builds the same vector as of_fun *)
let prop_bw_builder_push =
  qtest10k "bw: Builder.push round-trip" (fun bits ->
      let b = Bitvec.Builder.create () in
      Array.iter (fun bit -> Bitvec.Builder.push b bit) bits;
      let bv = Bitvec.Builder.finish b in
      let ref_bv = build_bv bits in
      Bitvec.length bv = Array.length bits
      && Bitvec.count bv = Bitvec.count ref_bv
      && List.for_all
           (fun i ->
             Bitvec.rank1 bv i = Bitvec.rank1 ref_bv i
             && (i = Array.length bits || Bitvec.get bv i = bits.(i)))
           (probe_indices (Array.length bits)))

(* 8: Builder.push_run (run-length append) agrees with of_fun *)
let prop_bw_builder_push_run =
  qtest10k "bw: Builder.push_run round-trip" (fun bits ->
      let b = Bitvec.Builder.create () in
      let n = Array.length bits in
      let i = ref 0 in
      while !i < n do
        let v = bits.(!i) in
        let j = ref !i in
        while !j < n && bits.(!j) = v do
          incr j
        done;
        Bitvec.Builder.push_run b v (!j - !i);
        i := !j
      done;
      let bv = Bitvec.Builder.finish b in
      let p = prefix_ranks bits in
      Bitvec.length bv = n
      && List.for_all (fun i -> Bitvec.rank1 bv i = p.(i)) (probe_indices n))

(* 9: to_bytes / of_bytes round-trip preserves every answer *)
let prop_bw_bytes_roundtrip =
  qtest10k "bw: to_bytes/of_bytes round-trip" (fun bits ->
      let bv = build_bv bits in
      let bv' = Bitvec.of_bytes (Bitvec.to_bytes bv) in
      let len = Array.length bits in
      Bitvec.length bv' = len
      && Bitvec.count bv' = Bitvec.count bv
      && List.for_all
           (fun i ->
             Bitvec.rank1 bv' i = Bitvec.rank1 bv i
             && Bitvec.next1 bv' i = Bitvec.next1 bv i)
           (probe_indices len)
      && List.for_all
           (fun j -> Bitvec.select1 bv' j = Bitvec.select1 bv j)
           (probe_js (Bitvec.count bv)))

(* 10: differential ladder — bytes serialized by the OLD layout load
   into the new structure with byte-identical answers, and the new
   serializer emits the identical payload *)
let prop_bw_old_layout_ladder =
  qtest10k "bw: old-layout bytes -> new loader, identical answers"
    (fun bits ->
      let len = Array.length bits in
      let old_bv = Bitvec_ref.of_fun len (fun i -> bits.(i)) in
      let old_bytes = Bitvec_ref.to_bytes old_bv in
      let bv = Bitvec.of_bytes old_bytes in
      let new_bytes = Bitvec.to_bytes (build_bv bits) in
      Bytes.equal old_bytes new_bytes
      && Bitvec.length bv = len
      && Bitvec.count bv = Bitvec_ref.count old_bv
      && List.for_all
           (fun i ->
             Bitvec.rank1 bv i = Bitvec_ref.rank1 old_bv i
             && Bitvec.next1 bv i = Bitvec_ref.next1 old_bv i)
           (probe_indices len)
      && List.for_all
           (fun j -> Bitvec.select1 bv j = Bitvec_ref.select1 old_bv j)
           (probe_js (Bitvec_ref.count old_bv))
      && List.for_all
           (fun j -> Bitvec.select0 bv j = Bitvec_ref.select0 old_bv j)
           (probe_js (len - Bitvec_ref.count old_bv)))

(* 11: live new kernels vs the old-kernel snapshot on every operation *)
let prop_bw_ref_agreement =
  qtest10k "bw: new kernels = old kernels" (fun bits ->
      let len = Array.length bits in
      let bv = build_bv bits in
      let old_bv = Bitvec_ref.of_fun len (fun i -> bits.(i)) in
      Bitvec.count bv = Bitvec_ref.count old_bv
      && List.for_all
           (fun i ->
             Bitvec.rank1 bv i = Bitvec_ref.rank1 old_bv i
             && Bitvec.rank0 bv i = Bitvec_ref.rank0 old_bv i
             && Bitvec.next1 bv i = Bitvec_ref.next1 old_bv i)
           (probe_indices len)
      && List.for_all
           (fun j -> Bitvec.select1 bv j = Bitvec_ref.select1 old_bv j)
           (probe_js (Bitvec.count bv))
      && List.for_all
           (fun j -> Bitvec.select0 bv j = Bitvec_ref.select0 old_bv j)
           (probe_js (len - Bitvec.count bv)))

(* 12: broadword select_in_word vs a bit loop, on full 63-bit words *)
let word_gen =
  QCheck2.Gen.(
    map2
      (fun x hi -> if hi then x lor (1 lsl 62) else x)
      (int_bound max_int) bool)

let prop_bw_select_in_word =
  qtest ~count:10_000 "bw: select_in_word = naive over 63 bits" word_gen
    (fun w ->
      let c = Popcnt.popcount w in
      let seen = ref 0 and ok = ref true in
      for k = 0 to 62 do
        if (w lsr k) land 1 = 1 then begin
          if Popcnt.select_in_word w !seen <> k then ok := false;
          if Bitvec_ref.select_in_word w !seen <> k then ok := false;
          incr seen
        end
      done;
      !ok && !seen = c && c = Bitvec_ref.popcount w)

(* 13: fused popcount2 and count_words against single-word popcounts *)
let prop_bw_popcount2 =
  qtest ~count:10_000 "bw: popcount2/count_words = popcount sums"
    QCheck2.Gen.(array_size (int_range 0 24) word_gen)
    (fun ws ->
      let n = Array.length ws in
      let sum lo hi =
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + Popcnt.popcount ws.(i)
        done;
        !s
      in
      (n < 2
      || Popcnt.popcount2 ws.(0) ws.(1)
         = Popcnt.popcount ws.(0) + Popcnt.popcount ws.(1))
      && Popcnt.count_words ws 0 n = sum 0 n
      && Popcnt.count_words ws (n / 2) n = sum (n / 2) n
      && Popcnt.count_words ws 0 0 = 0)

(* 14: Sparse.rank (select0-bounded bucket + low-bits binary search)
   against brute force *)
let prop_bw_sparse_rank =
  qtest ~count:10_000 "bw: Sparse.rank = naive (bucketed path)"
    QCheck2.Gen.(
      list_size (int_range 0 120) (int_bound 4095)
      |> map (fun l -> List.sort_uniq compare l |> Array.of_list))
    (fun a ->
      let s = Sparse.of_sorted ~universe:4096 a in
      let m = Array.length a in
      let naive i =
        let c = ref 0 in
        Array.iter (fun v -> if v < i then incr c) a;
        !c
      in
      let probes =
        0 :: 4096
        :: List.concat_map
             (fun k ->
               if k >= 0 && k < m then [ a.(k); a.(k) + 1; max 0 (a.(k) - 1) ]
               else [])
             [ 0; m / 2; m - 1 ]
        @ [ 1; 63; 64; 504; 1000; 2048; 4095 ]
      in
      List.for_all (fun i -> Sparse.rank s i = naive i) probes
      && (m = 0 || Sparse.next s 0 = a.(0)))

(* 15: Wavelet.rank2 = (rank i, rank j), including swapped and clamped
   endpoints and absent symbols *)
let prop_bw_wavelet_rank2 =
  qtest ~count:10_000 "bw: Wavelet.rank2 = (rank, rank)"
    QCheck2.Gen.(
      pair
        (string_size ~gen:(map Char.chr (int_range 97 105)) (int_range 0 160))
        (pair (int_range (-5) 170) (int_range (-5) 170)))
    (fun (s, (i, j)) ->
      let w = Wavelet.of_string s in
      List.for_all
        (fun c ->
          let a, b = Wavelet.rank2 w c i j in
          a = Wavelet.rank w c i && b = Wavelet.rank w c j)
        [ 'a'; 'c'; 'h'; 'z'; '\000' ])

(* ------------------------------------------------------------------ *)
(* Deterministic boundary enumeration                                  *)
(* ------------------------------------------------------------------ *)

(* A single set bit at every word / block / superblock boundary of
   every boundary length: the exact cases where the interleaved
   directory, the packed lane counts and the select samples meet. *)
let test_bw_boundary_single_bit () =
  List.iter
    (fun len ->
      let boundaries = ref [ 0; len - 1 ] in
      let k = ref word_bits in
      while !k < len do
        boundaries := (!k - 1) :: !k :: !boundaries;
        if !k + 1 < len then boundaries := (!k + 1) :: !boundaries;
        k := !k + word_bits
      done;
      List.iter
        (fun p ->
          let bv = Bitvec.of_fun len (fun i -> i = p) in
          Alcotest.(check int) "count" 1 (Bitvec.count bv);
          Alcotest.(check int) "select1 0" p (Bitvec.select1 bv 0);
          Alcotest.(check int) "rank1 p" 0 (Bitvec.rank1 bv p);
          Alcotest.(check int) "rank1 (p+1)" 1 (Bitvec.rank1 bv (p + 1));
          Alcotest.(check int) "rank1 len" 1 (Bitvec.rank1 bv len);
          Alcotest.(check int) "next1 0" p (Bitvec.next1 bv 0);
          Alcotest.(check int) "next1 p" p (Bitvec.next1 bv p);
          Alcotest.(check int) "next1 past" (-1) (Bitvec.next1 bv (p + 1));
          (* the zeros: j-th zero is j below p, j+1 at or above *)
          if p > 0 then
            Alcotest.(check int) "select0 before" (p - 1) (Bitvec.select0 bv (p - 1));
          if p < len - 1 then
            Alcotest.(check int) "select0 after" (p + 1) (Bitvec.select0 bv p))
        (List.sort_uniq compare !boundaries))
    boundary_lengths

(* All-ones and all-zeros at the same boundary lengths: select1 is the
   identity on the former, select0 on the latter, and the padding tail
   past [len] must never leak into either. *)
let test_bw_boundary_constant () =
  List.iter
    (fun len ->
      let ones = Bitvec.of_fun len (fun _ -> true) in
      let zeros = Bitvec.of_fun len (fun _ -> false) in
      Alcotest.(check int) "ones count" len (Bitvec.count ones);
      Alcotest.(check int) "zeros count" 0 (Bitvec.count zeros);
      List.iter
        (fun j ->
          if j < len then begin
            Alcotest.(check int) "select1 id" j (Bitvec.select1 ones j);
            Alcotest.(check int) "select0 id" j (Bitvec.select0 zeros j)
          end)
        (probe_js len);
      Alcotest.(check int) "ones next1 at end" (len - 1)
        (Bitvec.next1 ones (len - 1));
      Alcotest.(check int) "zeros next1" (-1) (Bitvec.next1 zeros 0))
    boundary_lengths

(* Regression: select0 near the implicit zero padding of the last
   word.  Zeros that live only in the final partial word must be
   found, and no select0 answer may ever reach [len] even though the
   storage word has plenty of padding zeros past it. *)
let test_bw_select0_padding_tail () =
  List.iter
    (fun len ->
      (* all ones except a run of 5 zeros at the very end *)
      let z = min 5 len in
      let bv = Bitvec.of_fun len (fun i -> i < len - z) in
      Alcotest.(check int) "zero count" z (Bitvec.rank0 bv len);
      for j = 0 to z - 1 do
        Alcotest.(check int) "tail zero" (len - z + j) (Bitvec.select0 bv j)
      done;
      (* single zero at the last position *)
      if len > 0 then begin
        let bv1 = Bitvec.of_fun len (fun i -> i <> len - 1) in
        Alcotest.(check int) "last zero" (len - 1) (Bitvec.select0 bv1 0)
      end)
    boundary_lengths;
  (* alternating vector big enough to cross several select-sample
     blocks (samples are taken every 512 hits) for both pulses *)
  let n = 4096 + 7 in
  let alt = Bitvec.of_fun n (fun i -> i land 1 = 0) in
  for j = 0 to (n / 2) - 1 do
    if Bitvec.select1 alt j <> 2 * j then
      Alcotest.failf "alt select1 %d: got %d" j (Bitvec.select1 alt j);
    if Bitvec.select0 alt j <> (2 * j) + 1 then
      Alcotest.failf "alt select0 %d: got %d" j (Bitvec.select0 alt j)
  done

(* Regression: next1 when the last set bit sits exactly on the final
   word/superblock boundary. *)
let test_bw_next1_last_bit () =
  List.iter
    (fun len ->
      let bv = Bitvec.of_fun len (fun i -> i = len - 1) in
      Alcotest.(check int) "next1 at last" (len - 1) (Bitvec.next1 bv (len - 1));
      Alcotest.(check int) "next1 past last" (-1) (Bitvec.next1 bv len);
      Alcotest.(check int) "next1 from 0" (len - 1) (Bitvec.next1 bv 0))
    boundary_lengths

(* of_bytes input validation: corrupt headers and padding must be
   rejected, not silently mis-indexed. *)
let test_bw_of_bytes_rejects () =
  let bv = Bitvec.of_fun 100 (fun i -> i mod 3 = 0) in
  let good = Bitvec.to_bytes bv in
  let expect_fail name b =
    match Bitvec.of_bytes b with
    | _ -> Alcotest.failf "%s: accepted corrupt bytes" name
    | exception Invalid_argument _ -> ()
  in
  (* round-trip sanity first *)
  let bv' = Bitvec.of_bytes good in
  Alcotest.(check int) "roundtrip count" (Bitvec.count bv) (Bitvec.count bv');
  let corrupt_magic = Bytes.copy good in
  Bytes.set corrupt_magic 0 'X';
  expect_fail "magic" corrupt_magic;
  let truncated = Bytes.sub good 0 (Bytes.length good - 3) in
  expect_fail "truncated" truncated;
  (* flip a bit in the padding tail of the final word: the stored
     vector has 100 bits, so bits 100..125 of the last word must be
     zero *)
  let dirty_tail = Bytes.copy good in
  let last = Bytes.length dirty_tail - 1 in
  Bytes.set dirty_tail last
    (Char.chr (Char.code (Bytes.get dirty_tail last) lor 0x40));
  expect_fail "padding tail" dirty_tail

(* ------------------------------------------------------------------ *)
(* End-to-end ladder: FM-index + tag index on an XMark document        *)
(* ------------------------------------------------------------------ *)

(* The kernels feed every layer above; build the same XMark document
   sequentially and at pool sizes 1/2/4 and demand identical count and
   select answers from the text index (FM) and the tag index. *)
let test_bw_e2e_pools () =
  let xml = Sxsi_datagen.Xmark.generate ~scale:30 () in
  let seq = Sxsi_xml.Document.of_xml ~backend:`Bp xml in
  let patterns = [ "the"; "a"; "item"; "zz-no-such-pattern"; "0" ] in
  let tc_seq = Sxsi_xml.Document.text seq in
  let ti_seq = Sxsi_xml.Document.tag_index seq in
  let tags = Sxsi_xml.Document.tag_count seq in
  List.iter
    (fun lazy_pool ->
      let pool = Lazy.force lazy_pool in
      let doc = Sxsi_xml.Document.of_xml ~pool ~backend:`Bp xml in
      let tc = Sxsi_xml.Document.text doc in
      let ti = Sxsi_xml.Document.tag_index doc in
      let name fmt = Printf.sprintf fmt (Sxsi_par.Pool.size pool) in
      (* FM-index count/select equality *)
      List.iter
        (fun p ->
          Alcotest.(check int) (name "pool %d global_count")
            (Sxsi_text.Text_collection.global_count tc_seq p)
            (Sxsi_text.Text_collection.global_count tc p);
          Alcotest.(check int) (name "pool %d contains_count")
            (Sxsi_text.Text_collection.contains_count tc_seq p)
            (Sxsi_text.Text_collection.contains_count tc p);
          Alcotest.(check (list int)) (name "pool %d contains")
            (Sxsi_text.Text_collection.contains tc_seq p)
            (Sxsi_text.Text_collection.contains tc p))
        patterns;
      (* tag index count / rank / select equality *)
      Alcotest.(check int) (name "pool %d tag_count") tags
        (Sxsi_xml.Document.tag_count doc);
      for t = 0 to tags - 1 do
        let c = Sxsi_tree.Tag_index.count ti_seq t in
        Alcotest.(check int) (name "pool %d tag count") c
          (Sxsi_tree.Tag_index.count ti t);
        let j = ref 0 in
        while !j < c do
          if
            Sxsi_tree.Tag_index.select_tag ti_seq t !j
            <> Sxsi_tree.Tag_index.select_tag ti t !j
          then
            Alcotest.failf "pool %d: select_tag %d %d differs"
              (Sxsi_par.Pool.size pool) t !j;
          j := !j + max 1 (c / 16)
        done
      done)
    [ Test_par.pool1; Test_par.pool2; Test_par.pool4 ]

let suite =
  ( "bits",
    [
      Alcotest.test_case "popcount small" `Quick test_popcount_small;
      Alcotest.test_case "select_in_word" `Quick test_select_in_word;
      Alcotest.test_case "bitvec basic" `Quick test_bitvec_basic;
      Alcotest.test_case "bitvec empty" `Quick test_bitvec_empty;
      Alcotest.test_case "bitvec all ones" `Quick test_bitvec_all_ones;
      Alcotest.test_case "bitvec push_run" `Quick test_bitvec_push_run;
      Alcotest.test_case "intvec basic" `Quick test_intvec_basic;
      Alcotest.test_case "intvec straddle" `Quick test_intvec_straddle;
      Alcotest.test_case "intvec overwrite" `Quick test_intvec_overwrite;
      Alcotest.test_case "sparse basic" `Quick test_sparse_basic;
      Alcotest.test_case "sparse empty" `Quick test_sparse_empty;
      Alcotest.test_case "sparse dense" `Quick test_sparse_dense;
      Alcotest.test_case "wavelet basic" `Quick test_wavelet_basic;
      Alcotest.test_case "wavelet single symbol" `Quick test_wavelet_single_symbol;
      Alcotest.test_case "wavelet empty" `Quick test_wavelet_empty;
      prop_popcount;
      prop_rank1;
      prop_select1;
      prop_select0;
      prop_rank_select_inverse;
      prop_next1;
      prop_intvec;
      prop_sparse_get;
      prop_sparse_rank;
      prop_sparse_next;
      prop_wavelet_access;
      prop_wavelet_rank;
      prop_wavelet_select;
      Alcotest.test_case "int wavelet basic" `Quick test_int_wavelet_basic;
      prop_int_wavelet_access;
      prop_int_wavelet_range;
      (* broadword kernel lockdown *)
      prop_bw_rank1;
      prop_bw_rank0_sum;
      prop_bw_rank_select1_inverse;
      prop_bw_select1_after_rank;
      prop_bw_select0_inverse;
      prop_bw_next1;
      prop_bw_builder_push;
      prop_bw_builder_push_run;
      prop_bw_bytes_roundtrip;
      prop_bw_old_layout_ladder;
      prop_bw_ref_agreement;
      prop_bw_select_in_word;
      prop_bw_popcount2;
      prop_bw_sparse_rank;
      prop_bw_wavelet_rank2;
      Alcotest.test_case "bw: single bit at every boundary" `Quick
        test_bw_boundary_single_bit;
      Alcotest.test_case "bw: all-ones/all-zeros at boundaries" `Quick
        test_bw_boundary_constant;
      Alcotest.test_case "bw: select0 padding tail" `Quick
        test_bw_select0_padding_tail;
      Alcotest.test_case "bw: next1 at final boundary" `Quick
        test_bw_next1_last_bit;
      Alcotest.test_case "bw: of_bytes rejects corruption" `Quick
        test_bw_of_bytes_rejects;
      Alcotest.test_case "bw: FM + tag index e2e, pools 1/2/4" `Slow
        test_bw_e2e_pools;
    ] )

(* The observability substrate: histogram bucket boundaries and
   percentile math (in the units callers actually use), JSON
   round-trips, trace accounting, the Prometheus exposition, and the
   trace counters the engine publishes end to end. *)

open Sxsi_obs

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Counter *)

let test_counter_basics () =
  let c = Counter.create () in
  Alcotest.(check int) "fresh" 0 (Counter.get c);
  Counter.incr c;
  Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Counter.get c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.get c)

let test_counter_parallel () =
  let c = Counter.create () in
  let per_domain = 10_000 in
  let worker () =
    for _ = 1 to per_domain do
      Counter.incr c
    done
  in
  let handles = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join handles;
  Alcotest.(check int) "no lost increments" (4 * per_domain) (Counter.get c)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_bucket_boundaries () =
  let check v expected =
    Alcotest.(check int)
      (Printf.sprintf "bucket_index %d" v)
      expected (Histogram.bucket_index v)
  in
  (* bucket 0 is [0,2), bucket i>=1 is [2^i, 2^(i+1)) *)
  check 0 0;
  check 1 0;
  check 2 1;
  check 3 1;
  check 4 2;
  check 7 2;
  check 8 3;
  check ((1 lsl 20) - 1) 19;
  check (1 lsl 20) 20;
  check ((1 lsl 21) - 1) 20;
  (* max_int = 2^62 - 1 on 64-bit OCaml: top bit 61 *)
  check max_int 61

let test_negative_clamps () =
  let h = Histogram.create () in
  Histogram.record h (-5);
  Alcotest.(check int) "count" 1 (Histogram.count h);
  Alcotest.(check int) "clamped to bucket 0" 1 (Histogram.bucket_count h 0);
  Alcotest.(check int) "min clamped" 0 (Histogram.min_value h)

let test_exact_stats () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1000; 2000; 3000 ];
  Alcotest.(check int) "count" 3 (Histogram.count h);
  Alcotest.(check int) "sum exact" 6000 (Histogram.sum h);
  Alcotest.(check int) "min" 1000 (Histogram.min_value h);
  Alcotest.(check int) "max" 3000 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 2000.0 (Histogram.mean h)

(* Percentile math keeps the recorded unit: a histogram fed
   nanoseconds answers quantiles in nanoseconds, so the millisecond
   conversion is exactly [/. 1e6] — the STATS keys depend on this. *)
let test_quantile_units () =
  let h = Histogram.create () in
  for _ = 1 to 1000 do
    Histogram.record h 1_000_000 (* 1ms in ns *)
  done;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f of constant 1ms" (q *. 100.))
        1_000_000.0 (Histogram.quantile h q))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ]

let test_quantile_empty () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0.0 (Histogram.quantile h 0.5)

let test_cumulative () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 4 ];
  Alcotest.(check (list (pair int int)))
    "cumulative pairs"
    [ (2, 1); (4, 2); (8, 3) ]
    (Histogram.cumulative h);
  match List.rev (Histogram.cumulative h) with
  | (_, last) :: _ -> Alcotest.(check int) "last = count" (Histogram.count h) last
  | [] -> Alcotest.fail "cumulative empty"

let test_reset_equal () =
  let h = Histogram.create () in
  Histogram.record h 7;
  Alcotest.(check bool) "differs from fresh" false
    (Histogram.equal h (Histogram.create ()));
  Histogram.reset h;
  Alcotest.(check bool) "reset = fresh" true (Histogram.equal h (Histogram.create ()))

let gen_observations =
  QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 1_000_000_000))

let prop_histogram_stats values =
  let h = Histogram.create () in
  List.iter (Histogram.record h) values;
  let mn = List.fold_left min (List.hd values) values in
  let mx = List.fold_left max (List.hd values) values in
  Histogram.count h = List.length values
  && Histogram.sum h = List.fold_left ( + ) 0 values
  && Histogram.min_value h = mn
  && Histogram.max_value h = mx
  &&
  let p50 = Histogram.quantile h 0.50
  and p95 = Histogram.quantile h 0.95
  and p99 = Histogram.quantile h 0.99 in
  p50 <= p95 && p95 <= p99
  && p50 >= float_of_int mn
  && p99 <= float_of_int mx

let prop_merge_algebra (a, b, c) =
  let fill values =
    let h = Histogram.create () in
    List.iter (Histogram.record h) values;
    h
  in
  let ha = fill a and hb = fill b and hc = fill c in
  Histogram.equal
    (Histogram.merge ha (Histogram.merge hb hc))
    (Histogram.merge (Histogram.merge ha hb) hc)
  && Histogram.equal (Histogram.merge ha hb) (Histogram.merge hb ha)
  && Histogram.count (Histogram.merge ha hb)
     = Histogram.count ha + Histogram.count hb
  && Histogram.sum (Histogram.merge ha hb) = Histogram.sum ha + Histogram.sum hb
  && (* neither argument mutated *)
  Histogram.count ha = List.length a

(* ------------------------------------------------------------------ *)
(* Json *)

(* Whole floats print as "42" and deliberately re-parse as [Int], so
   the generator keeps floats away from integral values. *)
let gen_json =
  let open QCheck2.Gen in
  let gen_key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let gen_leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun i -> Json.Float (float_of_int i +. 0.5)) (int_range (-1000) 1000);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then gen_leaf
      else
        oneof
          [
            gen_leaf;
            map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair gen_key (self (n / 2))));
          ])

let prop_json_roundtrip j = Json.of_string (Json.to_string j) = Ok j

let test_json_escapes () =
  let s = "a\"b\\c\nd\te\r \x01" in
  Alcotest.(check bool)
    "escaped string round-trips" true
    (Json.of_string (Json.to_string (Json.String s)) = Ok (Json.String s));
  (* inputs built by concatenation: the JSON texts "A" and "é" *)
  let u_escape hex = "\"" ^ String.make 1 '\\' ^ "u" ^ hex ^ "\"" in
  Alcotest.(check bool)
    "backslash-u ASCII escape" true
    (Json.of_string (u_escape "0041") = Ok (Json.String "A"));
  Alcotest.(check bool)
    "backslash-u non-ASCII decodes to UTF-8" true
    (Json.of_string (u_escape "00e9") = Ok (Json.String "\xc3\xa9"))

let test_json_errors () =
  let bad input =
    match Json.of_string input with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parsed %S" input
  in
  bad "";
  bad "1 2";
  bad "{";
  bad "[1,]";
  bad {|{"a":}|};
  bad "tru";
  bad "\"unterminated"

let test_json_member () =
  let j = Json.Obj [ ("a", Json.Int 1); ("b", Json.Null) ] in
  Alcotest.(check bool) "present" true (Json.member "a" j = Some (Json.Int 1));
  Alcotest.(check bool) "absent" true (Json.member "z" j = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" (Json.Int 3) = None)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_totals () =
  let tr = Trace.create ~label:"q" () in
  Trace.add_ns tr Trace.Parse 10;
  Trace.add_ns tr Trace.Compile 20;
  Trace.add_ns tr Trace.Run 30;
  Trace.add_ns tr Trace.Materialize 40;
  Trace.add_ns tr Trace.Fm_locate 500;
  Trace.add_ns tr Trace.Fm_extract 600;
  Alcotest.(check string) "label" "q" (Trace.label tr);
  Alcotest.(check int) "phase" 30 (Trace.phase_ns tr Trace.Run);
  (* FM phases happen inside Run/Materialize: excluded from the total *)
  Alcotest.(check int) "total excludes contained phases" 100 (Trace.total_ns tr)

let test_trace_time_on_raise () =
  let tr = Trace.create () in
  (try Trace.time tr Trace.Run (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "time recorded despite raise" true
    (Trace.phase_ns tr Trace.Run >= 0);
  Alcotest.(check int) "thunk result" 7 (Trace.time tr Trace.Parse (fun () -> 7))

let test_trace_counters () =
  let tr = Trace.create () in
  Trace.set_counter tr "visited" 5;
  Trace.set_counter tr "marked" 2;
  Trace.add_counter tr "visited" 3;
  Trace.add_counter tr "jumps" 1;
  Alcotest.(check (list (pair string int)))
    "insertion order, add accumulates"
    [ ("visited", 8); ("marked", 2); ("jumps", 1) ]
    (Trace.counters tr)

let test_trace_json () =
  let tr = Trace.create ~label:"//a" () in
  Trace.add_ns tr Trace.Run 1234;
  Trace.set_counter tr "results" 3;
  let j = Trace.to_json tr in
  (match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "serialized trace re-parses" true (j = j')
  | Error e -> Alcotest.failf "trace JSON does not parse: %s" e);
  Alcotest.(check bool) "label member" true
    (Json.member "label" j = Some (Json.String "//a"));
  Alcotest.(check bool) "phases member" true (Json.member "phases" j <> None);
  Alcotest.(check bool) "counters member" true (Json.member "counters" j <> None);
  Alcotest.(check bool) "total_ns member" true
    (Json.member "total_ns" j = Some (Json.Int 1234));
  let text = Trace.to_text tr in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "text mentions counter" true (contains text "results")

(* ------------------------------------------------------------------ *)
(* Exposition *)

let contains_line text line = List.mem line (String.split_on_char '\n' text)

let test_exposition_render () =
  let e = Exposition.create () in
  let c = Counter.create () in
  Counter.add c 42;
  Exposition.register_counter e ~help:"Requests." ~name:"t_requests_total" c;
  Exposition.register_gauge e ~help:"Docs." ~name:"t_documents" (fun () -> 3.0);
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 4 ];
  Exposition.register_histogram e ~help:"Latency." ~name:"t_latency_seconds" h;
  let text = Exposition.render e in
  Alcotest.(check bool) "trailing newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "has %S" line) true
        (contains_line text line))
    [
      "# HELP t_requests_total Requests.";
      "# TYPE t_requests_total counter";
      "t_requests_total 42";
      "# TYPE t_documents gauge";
      "t_documents 3";
      "# TYPE t_latency_seconds histogram";
      "t_latency_seconds_bucket{le=\"+Inf\"} 3";
      "t_latency_seconds_sum 7";
      "t_latency_seconds_count 3";
    ]

let test_exposition_callback_counter () =
  let e = Exposition.create () in
  let v = ref 1.0 in
  Exposition.register_callback_counter e ~help:"Evictions." ~name:"t_evictions_total"
    (fun () -> !v);
  Alcotest.(check bool) "first render" true
    (contains_line (Exposition.render e) "t_evictions_total 1");
  v := 5.0;
  Alcotest.(check bool) "callback re-read at render time" true
    (contains_line (Exposition.render e) "t_evictions_total 5");
  Alcotest.(check bool) "typed counter" true
    (contains_line (Exposition.render e) "# TYPE t_evictions_total counter")

let test_exposition_rejects () =
  let e = Exposition.create () in
  Exposition.register_gauge e ~help:"x" ~name:"dup" (fun () -> 0.0);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Exposition: duplicate metric \"dup\"") (fun () ->
      Exposition.register_gauge e ~help:"x" ~name:"dup" (fun () -> 0.0));
  Alcotest.check_raises "invalid name"
    (Invalid_argument "Exposition: invalid metric name \"9bad\"") (fun () ->
      Exposition.register_gauge e ~help:"x" ~name:"9bad" (fun () -> 0.0))

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_source () =
  let restore = fun () -> int_of_float (Unix.gettimeofday () *. 1e9) in
  Fun.protect
    ~finally:(fun () -> Clock.set_source restore)
    (fun () ->
      Clock.set_source (fun () -> 123_456);
      Alcotest.(check int) "installed source used" 123_456 (Clock.now_ns ()));
  Alcotest.(check bool) "restored source ticks" true (Clock.now_ns () > 0)

(* A wall-clock step backwards must clamp derived durations to zero,
   not poison histograms with negative values. *)
let test_clock_clamp () =
  let restore = fun () -> int_of_float (Unix.gettimeofday () *. 1e9) in
  Fun.protect
    ~finally:(fun () -> Clock.set_source restore)
    (fun () ->
      let t = ref 1_000_000 in
      Clock.set_source (fun () -> !t);
      let t0 = Clock.now_ns () in
      t := !t - 500_000;  (* NTP steps the clock back *)
      Alcotest.(check int) "since clamps to zero" 0 (Clock.since t0);
      Alcotest.(check int) "diff_ns clamps to zero" 0
        (Clock.diff_ns ~from:t0 ~until:(Clock.now_ns ()));
      t := t0 + 250;
      Alcotest.(check int) "forward deltas intact" 250 (Clock.since t0))

(* ------------------------------------------------------------------ *)
(* Service metrics rendering (the STATS key-compatibility contract) *)

let test_metrics_assoc () =
  let m = Sxsi_service.Metrics.create () in
  Counter.add m.Sxsi_service.Metrics.requests 5;
  Sxsi_service.Metrics.record_latency m 2_000_000;
  (* 2ms *)
  let assoc = Sxsi_service.Metrics.to_assoc m ~doc_evictions:1 in
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "key %s present" key) true
        (List.mem_assoc key assoc))
    [
      "requests"; "errors"; "compiled_hits"; "compiled_misses"; "count_hits";
      "count_misses"; "doc_evictions"; "latency_ms_total"; "latency_p50_ms";
      "latency_p95_ms"; "latency_p99_ms";
    ];
  Alcotest.(check string) "requests" "5" (List.assoc "requests" assoc);
  Alcotest.(check string) "doc_evictions" "1" (List.assoc "doc_evictions" assoc);
  Alcotest.(check string) "total exact in ms" "2.000"
    (List.assoc "latency_ms_total" assoc);
  Alcotest.(check string) "p50 in ms" "2.000" (List.assoc "latency_p50_ms" assoc)

(* ------------------------------------------------------------------ *)
(* Engine integration: a traced evaluation publishes the documented
   counters and a parseable JSON record. *)

let test_engine_trace () =
  let xml = "<r><a><b/><b/></a><a><b/></a></r>" in
  let doc = Sxsi_xml.Document.of_xml xml in
  let tr = Trace.create ~label:"//b" () in
  let c = Sxsi_core.Engine.prepare ~trace:tr doc "//b" in
  let n = Sxsi_core.Engine.count ~trace:tr c in
  Alcotest.(check int) "count" 3 n;
  let counters = Trace.counters tr in
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "counter %s present" key) true
        (List.mem_assoc key counters))
    [ "visited"; "marked"; "jumps"; "memo_hits"; "results" ];
  Alcotest.(check int) "results counter" 3 (List.assoc "results" counters);
  Alcotest.(check bool) "visited nodes" true (List.assoc "visited" counters > 0);
  Alcotest.(check bool) "phases non-negative" true (Trace.total_ns tr >= 0);
  match Json.of_string (Json.to_string (Trace.to_json tr)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "engine trace JSON does not parse: %s" e

(* ------------------------------------------------------------------ *)
(* Histogram: single-observation buckets answer their exact value *)

let test_quantile_single_exact () =
  let h = Histogram.create () in
  Histogram.record h 5;
  Alcotest.(check (float 0.0)) "lone observation exact" 5.0 (Histogram.quantile h 0.5);
  Histogram.record h 1000;
  (* two observations in two different buckets, one each: both ranks
     answer exactly, not by bucket-midpoint interpolation *)
  Alcotest.(check (float 0.0)) "low rank exact" 5.0 (Histogram.quantile h 0.25);
  Alcotest.(check (float 0.0)) "high rank exact" 1000.0 (Histogram.quantile h 0.99)

let test_merge_keeps_sums () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 5;
  Histogram.record b 1000;
  let m = Histogram.merge a b in
  Alcotest.(check int) "bucket sum carried"
    1000
    (Histogram.bucket_sum m (Histogram.bucket_index 1000));
  Alcotest.(check (float 0.0)) "exact low after merge" 5.0 (Histogram.quantile m 0.25);
  Alcotest.(check (float 0.0)) "exact high after merge" 1000.0 (Histogram.quantile m 0.99)

(* ------------------------------------------------------------------ *)
(* Exposition: label escaping, label sets, gauge families *)

let occurrences sub s =
  let ls = String.length sub and n = String.length s in
  let count = ref 0 in
  for i = 0 to n - ls do
    if String.sub s i ls = sub then incr count
  done;
  !count

let test_exposition_label_escaping () =
  Alcotest.(check string)
    "escape backslash, quote, newline" "a\\\\b\\\"c\\nd"
    (Exposition.escape_label_value "a\\b\"c\nd");
  let e = Exposition.create () in
  Exposition.register_gauge e ~help:"G."
    ~labels:[ ("doc", "we\"ird\\name\n") ]
    ~name:"t_esc" (fun () -> 1.0);
  let text = Exposition.render e in
  Alcotest.(check bool) "series line escaped" true
    (contains_line text "t_esc{doc=\"we\\\"ird\\\\name\\n\"} 1")

let test_exposition_multi_gauge () =
  let e = Exposition.create () in
  Exposition.register_multi_gauge e ~help:"Ring occupancy." ~name:"t_occ" (fun () ->
      [ ([ ("domain", "0") ], 12.5); ([ ("domain", "3") ], 50.0) ]);
  let text = Exposition.render e in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "has %S" line) true (contains_line text line))
    [
      "# HELP t_occ Ring occupancy.";
      "# TYPE t_occ gauge";
      "t_occ{domain=\"0\"} 12.5";
      "t_occ{domain=\"3\"} 50";
    ]

let test_exposition_shared_header () =
  let e = Exposition.create () in
  Exposition.register_gauge e ~help:"H." ~labels:[ ("k", "a") ] ~name:"t_multi"
    (fun () -> 1.0);
  Exposition.register_gauge e ~help:"H." ~labels:[ ("k", "b") ] ~name:"t_multi"
    (fun () -> 2.0);
  let text = Exposition.render e in
  Alcotest.(check int) "one TYPE header for the family" 1
    (occurrences "# TYPE t_multi gauge" text);
  Alcotest.(check bool) "first labelled sample" true
    (contains_line text "t_multi{k=\"a\"} 1");
  Alcotest.(check bool) "second labelled sample" true
    (contains_line text "t_multi{k=\"b\"} 2");
  (* same name at the same label set is a registration bug *)
  Alcotest.check_raises "duplicate (name, labels) rejected"
    (Invalid_argument "Exposition: duplicate metric \"t_multi\"") (fun () ->
      Exposition.register_gauge e ~help:"H." ~labels:[ ("k", "a") ] ~name:"t_multi"
        (fun () -> 3.0));
  Alcotest.check_raises "bad label name rejected"
    (Invalid_argument "Exposition: invalid label name \"0bad\" on \"t_lbl\"") (fun () ->
      Exposition.register_gauge e ~help:"H." ~labels:[ ("0bad", "v") ] ~name:"t_lbl"
        (fun () -> 0.0))

(* ------------------------------------------------------------------ *)
(* Journal: the flight recorder *)

let n_outer = Journal.name "test/outer"
let n_inner = Journal.name "test/inner"
let n_evt = Journal.name "test/evt"

(* Every journal test resets the rings, runs at a known capacity, and
   leaves the recorder off and back at the default capacity. *)
let with_journal ?(capacity = 1024) f =
  Journal.configure ~capacity ();
  Journal.reset ();
  Journal.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Journal.set_enabled false;
      Journal.configure ~capacity:16384 ();
      Journal.reset ())
    f

let test_journal_disabled () =
  Journal.reset ();
  Journal.set_enabled false;
  let c = Journal.cursor () in
  Journal.instant Journal.Engine n_evt ();
  Journal.begin_span Journal.Engine n_outer ();
  Journal.end_span Journal.Engine n_outer ();
  let s = Journal.since c in
  Alcotest.(check int) "no records when disabled" 0 (Array.length s.Journal.records)

let test_journal_spans_basic () =
  with_journal (fun () ->
      let c = Journal.cursor () in
      Journal.with_span Journal.Engine n_outer (fun () ->
          Journal.instant Journal.Engine n_evt ~a:7 ();
          Journal.with_span Journal.Engine n_inner (fun () -> ()));
      match Journal.spans (Journal.since c) with
      | [ sp ] ->
        Alcotest.(check string) "outer name" "test/outer" sp.Journal.sname;
        Alcotest.(check bool) "not truncated" false sp.Journal.truncated;
        Alcotest.(check int) "two children" 2 (List.length sp.Journal.children);
        let evt = List.hd sp.Journal.children in
        Alcotest.(check string) "instant child" "test/evt" evt.Journal.sname;
        Alcotest.(check int) "instant payload" 7 evt.Journal.sa
      | l -> Alcotest.failf "expected one top-level span, got %d" (List.length l))

(* Ring wrap-around: writing more records than the capacity keeps the
   newest [capacity] and counts the overwritten ones as dropped. *)
let prop_ring_wraparound n =
  Journal.configure ~capacity:16 ();
  Journal.reset ();
  Journal.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Journal.set_enabled false;
      Journal.configure ~capacity:16384 ();
      Journal.reset ())
    (fun () ->
      for i = 0 to n - 1 do
        Journal.instant Journal.Engine n_evt ~a:i ()
      done;
      let me = (Domain.self () :> int) in
      match List.find_opt (fun s -> s.Journal.sdomain = me) (Journal.snapshot ()) with
      | None -> n = 0
      | Some s ->
        let kept = Array.length s.Journal.records in
        kept = min n 16
        && s.Journal.dropped = max 0 (n - 16)
        && Array.for_all Fun.id
             (Array.mapi (fun k r -> r.Journal.a = n - kept + k) s.Journal.records))

let test_journal_concurrent () =
  with_journal (fun () ->
      let per = 500 in
      let worker () =
        for i = 0 to per - 1 do
          Journal.begin_span Journal.Pool n_outer ~a:i ();
          Journal.end_span Journal.Pool n_outer ()
        done
      in
      let ds = List.init 4 (fun _ -> Domain.spawn worker) in
      List.iter Domain.join ds;
      let snaps = Journal.snapshot () in
      let total =
        List.fold_left
          (fun acc s -> acc + Array.length s.Journal.records + s.Journal.dropped)
          0 snaps
      in
      Alcotest.(check int) "all records accounted" (4 * per * 2) total;
      (* the dump parses as JSON and decodes back to the same rings *)
      let js = Json.to_string (Journal.to_json snaps) in
      (match Json.of_string js with
      | Error e -> Alcotest.failf "dump does not parse: %s" e
      | Ok j -> begin
        match Journal.of_json j with
        | Error e -> Alcotest.failf "dump does not decode: %s" e
        | Ok snaps' ->
          Alcotest.(check int) "ring count round-trips" (List.length snaps)
            (List.length snaps');
          List.iter (fun s -> ignore (Journal.spans s)) snaps'
      end);
      (* and the Chrome export is a traceEvents object *)
      match Json.of_string (Json.to_string (Journal.to_chrome_trace snaps)) with
      | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
      | Ok j -> begin
        match Json.member "traceEvents" j with
        | Some (Json.List evs) ->
          Alcotest.(check bool) "has events" true (List.length evs > 0)
        | _ -> Alcotest.fail "no traceEvents array"
      end)

(* Span reconstruction survives truncating the window at every offset:
   no exception, every span inside the window, and the untruncated
   window reconstructs with no clipped spans. *)
let test_journal_truncation_offsets () =
  with_journal (fun () ->
      let c = Journal.cursor () in
      Journal.with_span Journal.Engine n_outer (fun () ->
          Journal.instant Journal.Engine n_evt ();
          Journal.with_span Journal.Engine n_inner (fun () ->
              Journal.instant Journal.Engine n_evt ());
          Journal.with_span Journal.Engine n_inner (fun () -> ()));
      Journal.with_span Journal.Pool n_outer (fun () -> ());
      let full = Journal.since c in
      let n = Array.length full.Journal.records in
      Alcotest.(check int) "record count" 10 n;
      (match Journal.spans full with
      | l ->
        let rec no_trunc sp =
          (not sp.Journal.truncated) && List.for_all no_trunc sp.Journal.children
        in
        Alcotest.(check int) "two top-level spans" 2 (List.length l);
        Alcotest.(check bool) "full window has no truncated spans" true
          (List.for_all no_trunc l));
      for i = 0 to n do
        for j = i to n do
          let window =
            { full with Journal.records = Array.sub full.Journal.records i (j - i) }
          in
          let spans = Journal.spans window in
          if j > i then begin
            let lo = full.Journal.records.(i).Journal.ts
            and hi = full.Journal.records.(j - 1).Journal.ts in
            let rec bounded sp =
              sp.Journal.start_ns >= lo
              && sp.Journal.end_ns <= hi
              && sp.Journal.end_ns >= sp.Journal.start_ns
              && List.for_all bounded sp.Journal.children
            in
            Alcotest.(check bool)
              (Printf.sprintf "window [%d,%d) spans stay in bounds" i j)
              true
              (List.for_all bounded spans)
          end
          else Alcotest.(check int) "empty window" 0 (List.length spans)
        done
      done)

let test_journal_occupancy_counts () =
  with_journal ~capacity:8 (fun () ->
      let c = Journal.cursor () in
      ignore c;
      for _ = 1 to 20 do
        Journal.instant Journal.Engine n_evt ()
      done;
      Alcotest.(check bool) "records_total counts overwritten" true
        (Journal.records_total () >= 20);
      Alcotest.(check bool) "dropped_total positive" true (Journal.dropped_total () > 0);
      match Journal.occupancy () with
      | [] -> Alcotest.fail "no rings"
      | occ ->
        List.iter
          (fun (_, held, cap) ->
            Alcotest.(check int) "capacity as configured" 8 cap;
            Alcotest.(check bool) "held within capacity" true (held <= cap))
          occ)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "counter parallel increments" `Quick test_counter_parallel;
      Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
      Alcotest.test_case "histogram clamps negatives" `Quick test_negative_clamps;
      Alcotest.test_case "histogram exact stats" `Quick test_exact_stats;
      Alcotest.test_case "quantiles keep the recorded unit" `Quick test_quantile_units;
      Alcotest.test_case "quantile of empty histogram" `Quick test_quantile_empty;
      Alcotest.test_case "cumulative buckets" `Quick test_cumulative;
      Alcotest.test_case "reset and equal" `Quick test_reset_equal;
      qtest "histogram: exact stats + monotone quantiles" gen_observations
        prop_histogram_stats;
      qtest ~count:100 "histogram: merge is associative and commutative"
        QCheck2.Gen.(triple gen_observations gen_observations gen_observations)
        prop_merge_algebra;
      qtest "json: to_string/of_string round-trip" gen_json prop_json_roundtrip;
      Alcotest.test_case "json escapes" `Quick test_json_escapes;
      Alcotest.test_case "json parse errors" `Quick test_json_errors;
      Alcotest.test_case "json member" `Quick test_json_member;
      Alcotest.test_case "trace totals exclude contained phases" `Quick
        test_trace_totals;
      Alcotest.test_case "trace time survives raise" `Quick test_trace_time_on_raise;
      Alcotest.test_case "trace counters keep insertion order" `Quick
        test_trace_counters;
      Alcotest.test_case "trace JSON parses" `Quick test_trace_json;
      Alcotest.test_case "exposition render" `Quick test_exposition_render;
      Alcotest.test_case "exposition callback counter" `Quick
        test_exposition_callback_counter;
      Alcotest.test_case "exposition rejects bad names" `Quick test_exposition_rejects;
      Alcotest.test_case "clock source swap" `Quick test_clock_source;
      Alcotest.test_case "clock clamps backwards steps" `Quick test_clock_clamp;
      Alcotest.test_case "service metrics assoc keys" `Quick test_metrics_assoc;
      Alcotest.test_case "engine publishes trace counters" `Quick test_engine_trace;
      Alcotest.test_case "quantile exact on single-observation buckets" `Quick
        test_quantile_single_exact;
      Alcotest.test_case "merge carries per-bucket sums" `Quick test_merge_keeps_sums;
      Alcotest.test_case "exposition escapes label values" `Quick
        test_exposition_label_escaping;
      Alcotest.test_case "exposition gauge family" `Quick test_exposition_multi_gauge;
      Alcotest.test_case "exposition shares one header per name" `Quick
        test_exposition_shared_header;
      Alcotest.test_case "journal records nothing when disabled" `Quick
        test_journal_disabled;
      Alcotest.test_case "journal reconstructs a span tree" `Quick
        test_journal_spans_basic;
      qtest ~count:120 "journal: ring wrap keeps newest, counts drops"
        QCheck2.Gen.(int_range 0 100)
        prop_ring_wraparound;
      Alcotest.test_case "journal survives 4 concurrent writers" `Quick
        test_journal_concurrent;
      Alcotest.test_case "journal span pairing survives truncation" `Quick
        test_journal_truncation_offsets;
      Alcotest.test_case "journal occupancy and totals" `Quick
        test_journal_occupancy_counts;
    ] )

(* XML parser and document model tests, including the paper's Figure 1
   running example and parse -> serialize round-trips. *)

open Sxsi_xml
open Sxsi_tree

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* The paper's Figure 1 document, whitespace dropped to match the
   figure's model (the figure omits the 7 whitespace texts). *)
let fig1_xml =
  "<parts>\n\
   <part name=\"pen\">\n\
  \   <color>blue</color>\n\
  \   <stock>40</stock>\n\
  \   Soon discontinued.\n\
   </part>\n\
   <part name=\"rubber\">\n\
  \   <stock>30</stock>\n\
   </part>\n\
   </parts>"

let fig1 () = Document.of_xml ~keep_whitespace:false fig1_xml

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let collect_events src =
  let evs = ref [] in
  Xml_parser.parse
    ~on_open:(fun n attrs -> evs := `Open (n, attrs) :: !evs)
    ~on_close:(fun n -> evs := `Close n :: !evs)
    ~on_text:(fun s -> evs := `Text s :: !evs)
    src;
  List.rev !evs

let test_parser_basic () =
  let evs = collect_events "<a x=\"1\" y=\"two\">hi<b/>there</a>" in
  Alcotest.(check int) "event count" 6 (List.length evs);
  (match evs with
  | [ `Open ("a", [ ("x", "1"); ("y", "two") ]); `Text "hi"; `Open ("b", []);
      `Close "b"; `Text "there"; `Close "a" ] ->
    ()
  | _ -> Alcotest.fail "unexpected events")

let test_parser_entities () =
  let evs = collect_events "<a>x &amp; y &lt;z&gt; &#65;&#x42;</a>" in
  (match evs with
  | [ `Open _; `Text t; `Close _ ] ->
    Alcotest.(check string) "decoded" "x & y <z> AB" t
  | _ -> Alcotest.fail "unexpected events")

let test_parser_cdata_comment_pi () =
  let evs =
    collect_events
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a><!-- c --><![CDATA[<raw>&amp;]]></a>"
  in
  (match evs with
  | [ `Open ("a", []); `Text t; `Close "a" ] ->
    Alcotest.(check string) "cdata verbatim" "<raw>&amp;" t
  | _ -> Alcotest.fail "unexpected events")

let test_parser_merges_text_runs () =
  let evs = collect_events "<a>one<!-- x -->two&amp;<![CDATA[three]]></a>" in
  (match evs with
  | [ `Open _; `Text t; `Close _ ] ->
    Alcotest.(check string) "merged" "onetwo&three" t
  | _ -> Alcotest.fail "text runs not merged")

let test_parser_rejects () =
  let bad s =
    match collect_events s with
    | exception Xml_parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "mismatched close" true (bad "<a></b>");
  Alcotest.(check bool) "unclosed" true (bad "<a><b></b>");
  Alcotest.(check bool) "stray close" true (bad "</a>");
  Alcotest.(check bool) "unterminated comment" true (bad "<a><!-- </a>");
  Alcotest.(check bool) "text outside root" true (bad "hello<a/>");
  Alcotest.(check bool) "bad entity" true (bad "<a>&bogus;</a>");
  Alcotest.(check bool) "lt in attribute" true (bad "<a x=\"<\"/>")

let test_escape () =
  Alcotest.(check string) "text" "a&amp;b&lt;c&gt;d" (Xml_parser.escape_text "a&b<c>d");
  Alcotest.(check string) "attr" "&quot;x&amp;" (Xml_parser.escape_attr "\"x&");
  Alcotest.(check string) "clean untouched" "hello" (Xml_parser.escape_text "hello")

(* ------------------------------------------------------------------ *)
(* Document model (Figure 1)                                            *)
(* ------------------------------------------------------------------ *)

let test_fig1_model () =
  let d = fig1 () in
  (* &, parts, 2x part, 2x @, 2x @name(attr), 2x %, name?? — model:
     & parts part @ name % # color # stock # part @ name % stock # = 17 *)
  Alcotest.(check int) "node count" 17 (Document.node_count d);
  Alcotest.(check int) "text count" 6 (Document.text_count d);
  Alcotest.(check (array string)) "texts in order"
    [| "pen"; "blue"; "40"; "\n   Soon discontinued.\n"; "rubber"; "30" |]
    (Document.texts d)

let test_fig1_texts_order () =
  let d = fig1 () in
  (* text ids are assigned left-to-right *)
  Alcotest.(check string) "text 0" "pen" (Document.get_text d 0);
  Alcotest.(check string) "text 1" "blue" (Document.get_text d 1);
  Alcotest.(check string) "text 4" "rubber" (Document.get_text d 4);
  Alcotest.(check string) "text 5" "30" (Document.get_text d 5)

let test_fig1_tags () =
  let d = fig1 () in
  let parts = Option.get (Document.tag_id d "parts") in
  let part = Option.get (Document.tag_id d "part") in
  let name = Option.get (Document.attribute_tag_id d "name") in
  Alcotest.(check bool) "parts is element" true (Document.is_element_tag d parts);
  Alcotest.(check bool) "@name is attribute" true (Document.is_attribute_tag d name);
  Alcotest.(check bool) "@name not element" false (Document.is_element_tag d name);
  Alcotest.(check (option int)) "no bogus tag" None (Document.tag_id d "bogus");
  let tree = Document.tree d in
  Alcotest.(check int) "2 parts" 2 (Tree_backend.count tree part);
  Alcotest.(check int) "1 partss" 1 (Tree_backend.count tree parts)

let test_fig1_structure () =
  let d = fig1 () in
  let tree = Document.tree d in
  let root = Document.root d in
  Alcotest.(check int) "root tag" Document.root_tag (Document.tag_of d root);
  let parts = Tree_backend.first_child tree root in
  Alcotest.(check string) "parts" "parts" (Document.tag_name d (Document.tag_of d parts));
  let part1 = Tree_backend.first_child tree parts in
  let attlist = Tree_backend.first_child tree part1 in
  Alcotest.(check int) "@ first child" Document.attlist_tag (Document.tag_of d attlist);
  let attr = Tree_backend.first_child tree attlist in
  Alcotest.(check string) "@name" "@name" (Document.tag_name d (Document.tag_of d attr));
  Alcotest.(check string) "attr value" "pen" (Document.string_value d attr);
  (* text range of part1 covers texts 0-3 *)
  Alcotest.(check (pair int int)) "text range" (0, 4) (Document.text_range d part1)

let test_fig1_string_value () =
  let d = fig1 () in
  let tree = Document.tree d in
  let parts = Tree_backend.first_child tree (Document.root d) in
  let part1 = Tree_backend.first_child tree parts in
  (* string-value excludes the attribute value "pen" *)
  Alcotest.(check string) "part1 string-value" "blue40\n   Soon discontinued.\n"
    (Document.string_value d part1);
  let color = (* second child after @ *)
    Tree_backend.next_sibling tree (Tree_backend.first_child tree part1)
  in
  Alcotest.(check string) "color" "blue" (Document.string_value d color);
  Alcotest.(check bool) "color is pcdata" true (Document.pcdata_only d color);
  Alcotest.(check bool) "part1 not pcdata" false (Document.pcdata_only d part1)

let test_fig1_serialize () =
  let d = fig1 () in
  let out = Document.serialize d (Document.root d) in
  Alcotest.(check string) "round trip"
    "<parts><part name=\"pen\"><color>blue</color><stock>40</stock>\n   Soon discontinued.\n\
     </part><part name=\"rubber\"><stock>30</stock></part></parts>"
    out

let test_whitespace_kept () =
  let d = Document.of_xml ~keep_whitespace:true "<a> <b>x</b> </a>" in
  Alcotest.(check int) "3 texts" 3 (Document.text_count d);
  let d2 = Document.of_xml ~keep_whitespace:false "<a> <b>x</b> </a>" in
  Alcotest.(check int) "1 text" 1 (Document.text_count d2)

let test_empty_element_document () =
  let d = Document.of_xml "<a/>" in
  Alcotest.(check int) "2 nodes" 2 (Document.node_count d);
  Alcotest.(check int) "0 texts" 0 (Document.text_count d);
  Alcotest.(check string) "serialize" "<a/>" (Document.serialize d (Document.root d));
  Alcotest.(check string) "string_value" "" (Document.string_value d (Document.root d))

let test_attr_without_value () =
  let d = Document.of_xml "<a x=\"\">t</a>" in
  (* & a @ @x # : the empty attribute value creates no % leaf *)
  Alcotest.(check int) "nodes" 5 (Document.node_count d);
  Alcotest.(check int) "texts" 1 (Document.text_count d);
  Alcotest.(check string) "serialize" "<a x=\"\">t</a>"
    (Document.serialize d (Document.root d))

let test_tag_rel_recorded () =
  let d = Document.of_xml "<a><b><c/></b><b/><d/></a>" in
  let r = Document.rel d in
  let id n = Option.get (Document.tag_id d n) in
  Alcotest.(check bool) "a child b" true (Tag_rel.mem r Tag_rel.Child (id "a") (id "b"));
  Alcotest.(check bool) "a desc c" true
    (Tag_rel.mem r Tag_rel.Descendant (id "a") (id "c"));
  Alcotest.(check bool) "a child c" false (Tag_rel.mem r Tag_rel.Child (id "a") (id "c"));
  Alcotest.(check bool) "b fsib b" true
    (Tag_rel.mem r Tag_rel.Following_sibling (id "b") (id "b"));
  Alcotest.(check bool) "b fsib d" true
    (Tag_rel.mem r Tag_rel.Following_sibling (id "b") (id "d"));
  Alcotest.(check bool) "d fsib b" false
    (Tag_rel.mem r Tag_rel.Following_sibling (id "d") (id "b"));
  Alcotest.(check bool) "c following d" true
    (Tag_rel.mem r Tag_rel.Following (id "c") (id "d"));
  Alcotest.(check bool) "d following c" false
    (Tag_rel.mem r Tag_rel.Following (id "d") (id "c"))

(* ------------------------------------------------------------------ *)
(* Round-trip property on random documents                              *)
(* ------------------------------------------------------------------ *)

let gen_xml : string QCheck2.Gen.t =
  (* random small documents with text, attributes, nesting *)
  let open QCheck2.Gen in
  let name = oneofl [ "a"; "b"; "c"; "item"; "x" ] in
  let text = oneofl [ "t"; "hello"; "x&y"; "a<b"; "zz" ] in
  let rec elem depth =
    let* n = name in
    let* attrs =
      if depth > 2 then return []
      else
        list_size (int_range 0 2)
          (let* an = oneofl [ "k"; "id" ] in
           let* av = oneofl [ "v1"; "a\"b"; "x&y" ] in
           return (an, av))
    in
    (* unique attribute names *)
    let attrs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs in
    let* kids =
      if depth >= 3 then return []
      else
        list_size (int_range 0 3)
          (oneof [ map (fun t -> `T t) text; map (fun e -> `E e) (elem (depth + 1)) ])
    in
    let buf = Buffer.create 64 in
    Buffer.add_char buf '<';
    Buffer.add_string buf n;
    List.iter
      (fun (a, v) ->
        Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" a (Xml_parser.escape_attr v)))
      attrs;
    if kids = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter
        (function
          | `T t -> Buffer.add_string buf (Xml_parser.escape_text t)
          | `E e -> Buffer.add_string buf e)
        kids;
      Buffer.add_string buf "</";
      Buffer.add_string buf n;
      Buffer.add_char buf '>'
    end;
    return (Buffer.contents buf)
  in
  elem 0

let prop_roundtrip =
  qtest "parse -> serialize is stable" gen_xml (fun src ->
      let d = Document.of_xml src in
      let once = Document.serialize d (Document.root d) in
      let d2 = Document.of_xml once in
      let twice = Document.serialize d2 (Document.root d2) in
      once = twice
      && Document.node_count d = Document.node_count d2
      && Document.texts d = Document.texts d2)

let prop_text_leaf_maps =
  qtest "leaf_of_text / text_id_of_leaf are inverse" gen_xml (fun src ->
      let d = Document.of_xml src in
      let ok = ref true in
      for i = 0 to Document.text_count d - 1 do
        let leaf = Document.leaf_of_text d i in
        if Document.text_id_of_leaf d leaf <> i then ok := false;
        if not (Document.is_text_leaf d leaf) then ok := false
      done;
      !ok)

let prop_preorder_global_ids =
  qtest "preorder ids are dense and ordered" gen_xml (fun src ->
      let d = Document.of_xml src in
      let tree = Document.tree d in
      let seen = Array.make (Document.node_count d) false in
      let rec go x =
        if x <> Document.nil then begin
          seen.(Document.preorder d x) <- true;
          go (Tree_backend.first_child tree x);
          go (Tree_backend.next_sibling tree x)
        end
      in
      go (Document.root d);
      Array.for_all (fun b -> b) seen)

(* ------------------------------------------------------------------ *)
(* Index container: save/load round trip and corruption rejection       *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "sxsi_test" ".sxsi" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let queries_of = [ "//*"; "//item"; "//a[contains(., 't')]"; "//*[@k]"; "//text()" ]

let query_results doc =
  List.map
    (fun q ->
      Sxsi_core.Engine.select_preorders (Sxsi_core.Engine.prepare doc q) |> Array.to_list)
    queries_of

let prop_save_load_roundtrip =
  qtest ~count:30 "save -> load preserves query results" gen_xml (fun src ->
      let d = Document.of_xml src in
      with_temp_file (fun path ->
          Document.save d path;
          let d2 = Document.load path in
          query_results d = query_results d2
          && Document.node_count d = Document.node_count d2
          && Document.texts d = Document.texts d2
          && Document.serialize d (Document.root d)
             = Document.serialize d2 (Document.root d2)))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let load_fails path =
  match Document.load path with
  | _ -> false
  | exception Failure _ -> true

let test_load_rejects_corruption () =
  let d = fig1 () in
  with_temp_file (fun path ->
      Document.save d path;
      let good = read_file path in
      (* sanity: the pristine file loads *)
      Alcotest.(check bool) "pristine loads" true
        (match Document.load path with _ -> true | exception _ -> false);
      (* truncated at every interesting boundary *)
      List.iter
        (fun k ->
          write_file path (String.sub good 0 k);
          Alcotest.(check bool)
            (Printf.sprintf "truncated to %d bytes rejected" k)
            true (load_fails path))
        [ 0; 5; 14; 22; 38; String.length good / 2; String.length good - 1 ];
      (* one flipped byte in the payload breaks the checksum *)
      let flipped = Bytes.of_string good in
      let mid = 38 + ((Bytes.length flipped - 38) / 2) in
      Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xff));
      write_file path (Bytes.to_string flipped);
      Alcotest.(check bool) "bit flip rejected" true (load_fails path);
      (* wrong magic / plain garbage *)
      write_file path ("GARBAGE" ^ good);
      Alcotest.(check bool) "bad magic rejected" true (load_fails path);
      write_file path (String.make 4096 '\x42');
      Alcotest.(check bool) "garbage rejected" true (load_fails path))

let test_utf8 () =
  (* multibyte content passes through byte-transparently; numeric
     references decode to UTF-8 *)
  let d = Document.of_xml "<a>caf\xc3\xa9 &#233; &#x4e2d;</a>" in
  Alcotest.(check string) "text" "caf\xc3\xa9 \xc3\xa9 \xe4\xb8\xad" (Document.get_text d 0);
  let c = Sxsi_core.Engine.prepare d "//a[contains(., 'caf\xc3\xa9')]" in
  Alcotest.(check int) "query over UTF-8" 1 (Sxsi_core.Engine.count c)

let prop_parser_never_crashes =
  qtest ~count:300 "parser: random bytes give Parse_error or a document"
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 1 127)) (int_range 0 60))
    (fun junk ->
      match Document.of_xml junk with
      | _ -> true
      | exception Xml_parser.Parse_error _ -> true)

let prop_parser_never_crashes_tagged =
  qtest ~count:300 "parser: tag soup gives Parse_error or a document"
    QCheck2.Gen.(
      list_size (int_range 0 20)
        (oneofl [ "<a>"; "</a>"; "<b/>"; "txt"; "<"; ">"; "&amp;"; "&"; "<!--"; "-->";
                  "<a x='1'>"; "]]>"; "<![CDATA["; "<?pi?>" ])
      |> map (String.concat ""))
    (fun soup ->
      match Document.of_xml soup with
      | _ -> true
      | exception Xml_parser.Parse_error _ -> true)

let suite =
  ( "xml",
    [
      Alcotest.test_case "parser basic" `Quick test_parser_basic;
      Alcotest.test_case "parser entities" `Quick test_parser_entities;
      Alcotest.test_case "parser cdata/comment/pi" `Quick test_parser_cdata_comment_pi;
      Alcotest.test_case "parser merges text" `Quick test_parser_merges_text_runs;
      Alcotest.test_case "parser rejects malformed" `Quick test_parser_rejects;
      Alcotest.test_case "escaping" `Quick test_escape;
      Alcotest.test_case "fig1 model" `Quick test_fig1_model;
      Alcotest.test_case "fig1 texts order" `Quick test_fig1_texts_order;
      Alcotest.test_case "fig1 tags" `Quick test_fig1_tags;
      Alcotest.test_case "fig1 structure" `Quick test_fig1_structure;
      Alcotest.test_case "fig1 string-value" `Quick test_fig1_string_value;
      Alcotest.test_case "fig1 serialize" `Quick test_fig1_serialize;
      Alcotest.test_case "whitespace option" `Quick test_whitespace_kept;
      Alcotest.test_case "empty element" `Quick test_empty_element_document;
      Alcotest.test_case "empty attribute" `Quick test_attr_without_value;
      Alcotest.test_case "tag_rel recorded" `Quick test_tag_rel_recorded;
      Alcotest.test_case "utf-8" `Quick test_utf8;
      Alcotest.test_case "load rejects corruption" `Quick test_load_rejects_corruption;
      prop_save_load_roundtrip;
      prop_roundtrip;
      prop_text_leaf_maps;
      prop_preorder_global_ids;
      prop_parser_never_crashes;
      prop_parser_never_crashes_tagged;
    ] )

(* The tree-backend contract: the grammar-compressed backend must be
   observationally identical to the balanced-parentheses one — same
   navigation answers at the Tree_backend level, byte-identical query
   results at the engine level, on any document, at any pool size.  Plus
   the container-versioning regression: an index written with an unknown
   backend tag fails with the typed [Unknown_backend] error, not a
   crash. *)

open Sxsi_xml
module Tb = Sxsi_tree.Tree_backend
module Bp = Sxsi_tree.Bp
module Slp = Sxsi_grammar.Slp
module Engine = Sxsi_core.Engine
module Pool = Sxsi_par.Pool

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Slp vs Bp: raw navigation over random trees                          *)
(* ------------------------------------------------------------------ *)

(* A random tag-labeled parenthesis sequence: terminal [2*tag] opens,
   [2*tag + 1] closes. *)
let gen_tree : int array QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* nodes = int_range 1 90 in
  let* tags = int_range 1 6 in
  let* bits = list_size (return (4 * nodes)) bool in
  let bits = ref bits in
  let next_bit () =
    match !bits with
    | b :: rest ->
      bits := rest;
      b
    | [] -> false
  in
  let* tag_choices = list_size (return nodes) (int_range 0 (tags - 1)) in
  let tag_choices = ref tag_choices in
  let next_tag () =
    match !tag_choices with
    | t :: rest ->
      tag_choices := rest;
      t
    | [] -> 0
  in
  let out = Buffer.create 64 in
  ignore out;
  let syms = ref [] and stack = ref [] in
  let opened = ref 0 and used = ref 0 in
  while !used < nodes || !opened > 0 do
    if !used < nodes && (!opened = 0 || next_bit ()) then begin
      let tg = next_tag () in
      syms := (2 * tg) :: !syms;
      stack := tg :: !stack;
      incr opened;
      incr used
    end
    else begin
      (match !stack with
      | tg :: rest ->
        syms := ((2 * tg) + 1) :: !syms;
        stack := rest
      | [] -> assert false);
      decr opened
    end
  done;
  return (Array.of_list (List.rev !syms))

let max_tag syms = Array.fold_left (fun acc s -> max acc (s lsr 1)) 0 syms

let prop_slp_navigation =
  qtest ~count:150 "Slp navigation = Bp navigation" gen_tree (fun syms ->
      let n = Array.length syms in
      let tags = max_tag syms + 1 in
      let b = Bp.Builder.create () in
      Array.iter
        (fun s ->
          if s land 1 = 0 then Bp.Builder.open_node b else Bp.Builder.close_node b)
        syms;
      let bp = Bp.Builder.finish b in
      let slp = Slp.build ~min_freq:2 ~tag_count:tags ~leaf_tags:[ 0 ] syms in
      let ok = ref (Slp.length slp = n && Slp.node_count slp = n / 2) in
      for i = 0 to n - 1 do
        if Slp.is_open slp i <> Bp.is_open bp i then ok := false;
        if Slp.excess slp i <> Bp.excess bp i then ok := false;
        if Bp.is_open bp i then begin
          if Slp.close slp i <> Bp.close bp i then ok := false;
          if Slp.preorder slp i <> Bp.preorder bp i then ok := false;
          if Slp.node_of_preorder slp (Bp.preorder bp i) <> i then ok := false;
          if Slp.subtree_size slp i <> Bp.subtree_size bp i then ok := false;
          if Slp.is_leaf slp i <> Bp.is_leaf bp i then ok := false;
          if Slp.first_child slp i <> Bp.first_child bp i then ok := false;
          if Slp.next_sibling slp i <> Bp.next_sibling bp i then ok := false;
          if Slp.parent slp i <> Bp.parent bp i then ok := false;
          if Slp.depth slp i <> Bp.depth bp i then ok := false
        end
        else if Slp.open_ slp i <> Bp.open_ bp i then ok := false
      done;
      !ok)

let prop_slp_tags =
  qtest ~count:100 "Slp tag/leaf ops = brute force" gen_tree (fun syms ->
      let n = Array.length syms in
      let tags = max_tag syms + 1 in
      let leaf_tags = [ 0 ] in
      let slp = Slp.build ~min_freq:2 ~tag_count:tags ~leaf_tags syms in
      let ok = ref true in
      for tg = 0 to tags - 1 do
        let positions = ref [] in
        Array.iteri (fun i s -> if s = 2 * tg then positions := i :: !positions) syms;
        let positions = Array.of_list (List.rev !positions) in
        if Slp.count_tag slp tg <> Array.length positions then ok := false;
        Array.iteri
          (fun j p ->
            if Slp.select_tag slp tg j <> p then ok := false;
            if Slp.rank_tag slp tg p <> j then ok := false)
          positions;
        for i = 0 to n - 1 do
          let next = Array.fold_left (fun acc p -> if acc >= 0 || p < i then acc else p) (-1) positions in
          if Slp.next_tag slp tg i <> next then ok := false
        done
      done;
      (* leaves = openings of tag 0 here *)
      let leaves = ref [] in
      Array.iteri (fun i s -> if s = 0 then leaves := i :: !leaves) syms;
      let leaves = Array.of_list (List.rev !leaves) in
      if Slp.leaf_count slp <> Array.length leaves then ok := false;
      Array.iteri
        (fun d p ->
          if Slp.leaf_select slp d <> p then ok := false;
          if Slp.leaf_rank slp p <> d then ok := false)
        leaves;
      !ok)

(* ------------------------------------------------------------------ *)
(* Engine-level differential: byte-identical results                    *)
(* ------------------------------------------------------------------ *)

let queries =
  [
    "//*";
    "//item";
    "//a";
    "//a//b";
    "//a/b";
    "/a/b/c";
    "//*[@k]";
    "//*[@id]";
    "//a[contains(., 't')]";
    "//b[. = 'hello']";
    "//item[a or b]";
    "//text()";
  ]

(* Byte-identical count/select/serialize between the two backends of
   the same document, sequential and at every pool size. *)
let agree ?pool doc_bp doc_g =
  List.for_all
    (fun q ->
      let cb = Engine.prepare doc_bp q and cg = Engine.prepare doc_g q in
      Engine.count ?pool cb = Engine.count ?pool cg
      && Engine.select_preorders ?pool cb = Engine.select_preorders ?pool cg
      &&
      let bb = Buffer.create 256 and bg = Buffer.create 256 in
      let nb = Engine.serialize_to ?pool bb cb and ng = Engine.serialize_to ?pool bg cg in
      nb = ng && Buffer.contents bb = Buffer.contents bg)
    queries

let prop_engine_differential =
  qtest ~count:40 "engine results agree across backends" Test_xml.gen_xml (fun src ->
      let doc_bp = Document.of_xml ~backend:`Bp src in
      let doc_g = Document.of_xml ~backend:`Grammar src in
      Document.backend doc_bp = `Bp
      && Document.backend doc_g = `Grammar
      && agree doc_bp doc_g)

let fixed_docs () =
  [
    ("fig1", Test_xml.fig1_xml);
    ("single", "<a/>");
    ("nested", "<a><a><a><a>deep</a></a></a></a>");
    ("logs", Sxsi_datagen.Logs.generate ~entries:300 ());
    ("logs-noisy", Sxsi_datagen.Logs.generate ~entries:120 ~repetition:0.0 ());
    ("xmark", Sxsi_datagen.Xmark.generate ~scale:40 ());
  ]

let test_fixed_docs () =
  List.iter
    (fun (name, xml) ->
      let doc_bp = Document.of_xml ~backend:`Bp xml in
      let doc_g = Document.of_xml ~backend:`Grammar xml in
      Alcotest.(check bool) (name ^ " agrees") true (agree doc_bp doc_g))
    (fixed_docs ())

let test_pools_agree () =
  (* the same checks under intra-query parallelism, sharing the test
     pools with test_par *)
  let xml = Sxsi_datagen.Logs.generate ~entries:400 () in
  let doc_bp = Document.of_xml ~backend:`Bp xml in
  let doc_g = Document.of_xml ~backend:`Grammar xml in
  List.iter
    (fun lazy_pool ->
      let pool = Lazy.force lazy_pool in
      Alcotest.(check bool)
        (Printf.sprintf "pool size %d agrees" (Pool.size pool))
        true (agree ~pool doc_bp doc_g))
    [ Test_par.pool1; Test_par.pool2; Test_par.pool4 ]

let test_grammar_build_parallel () =
  (* building under a pool must give the same index as sequential *)
  let xml = Sxsi_datagen.Logs.generate ~entries:200 () in
  let seq = Document.of_xml ~backend:`Grammar xml in
  let pool = Lazy.force Test_par.pool4 in
  let par = Document.of_xml ~pool ~backend:`Grammar xml in
  Alcotest.(check bool) "parallel grammar build agrees" true (agree seq par)

(* ------------------------------------------------------------------ *)
(* Compression: the backend's reason to exist                           *)
(* ------------------------------------------------------------------ *)

let test_compression_ratio () =
  let xml = Sxsi_datagen.Logs.generate ~entries:5_000 () in
  let bp_bits = Tb.space_bits (Document.tree (Document.of_xml ~backend:`Bp xml)) in
  let g_bits = Tb.space_bits (Document.tree (Document.of_xml ~backend:`Grammar xml)) in
  let ratio = float_of_int bp_bits /. float_of_int g_bits in
  Alcotest.(check bool)
    (Printf.sprintf "grammar >= 5x smaller on repetitive logs (got %.1fx)" ratio)
    true (ratio >= 5.0)

(* ------------------------------------------------------------------ *)
(* Container versioning                                                 *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "sxsi_backend" ".sxsi" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_save_load_keeps_backend () =
  let xml = Sxsi_datagen.Logs.generate ~entries:100 () in
  List.iter
    (fun backend ->
      let d = Document.of_xml ~backend xml in
      with_temp_file (fun path ->
          Document.save d path;
          let d2 = Document.load path in
          Alcotest.(check string) "backend preserved" (Document.backend_name d)
            (Document.backend_name d2);
          Alcotest.(check int) "same answers"
            (Engine.count (Engine.prepare d "//entry/msg"))
            (Engine.count (Engine.prepare d2 "//entry/msg"))))
    [ `Bp; `Grammar ]

let test_unknown_backend_tag () =
  (* rewrite a valid container's backend tag to something no reader
     knows: load must fail with the typed error before unmarshalling *)
  let d = Document.of_xml ~backend:`Bp "<a><b>x</b></a>" in
  with_temp_file (fun path ->
      Document.save d path;
      let ic = open_in_bin path in
      let good =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let magic_len = String.length "SXSI-INDEX-v4\n" in
      (* header: magic, 1-byte tag length, tag *)
      let tag_len = Char.code good.[magic_len] in
      let rest = String.sub good (magic_len + 1 + tag_len)
          (String.length good - magic_len - 1 - tag_len) in
      let bogus = "zpaq" in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (String.sub good 0 magic_len);
          output_byte oc (String.length bogus);
          output_string oc bogus;
          output_string oc rest);
      (match Document.load path with
      | _ -> Alcotest.fail "unknown backend tag was accepted"
      | exception Document.Unknown_backend tag ->
        Alcotest.(check string) "typed error names the tag" bogus tag);
      (* the service must answer ERR, not die, when asked to LOAD it *)
      let svc = Sxsi_service.Service.create () in
      match
        Sxsi_service.Service.handle_line svc (Printf.sprintf "LOAD z %s" path)
      with
      | Sxsi_service.Protocol.Err msg ->
        Alcotest.(check bool) "ERR names the tag" true
          (let needle = "\"zpaq\"" in
           let rec find i =
             i + String.length needle <= String.length msg
             && (String.sub msg i (String.length needle) = needle || find (i + 1))
           in
           find 0)
      | r ->
        Alcotest.fail
          ("LOAD of unknown-backend container: "
          ^ Sxsi_service.Protocol.print_response r))

let test_old_version_rejected () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc ("SXSI-INDEX-v2\n" ^ String.make 64 '\x00'));
      match Document.load path with
      | _ -> Alcotest.fail "old container version was accepted"
      | exception Failure msg ->
        Alcotest.(check bool) "mentions version" true
          (let needle = "unsupported index version" in
           let rec find i =
             i + String.length needle <= String.length msg
             && (String.sub msg i (String.length needle) = needle || find (i + 1))
           in
           find 0))

let suite =
  ( "backend",
    [
      prop_slp_navigation;
      prop_slp_tags;
      prop_engine_differential;
      Alcotest.test_case "fixed corpora agree" `Quick test_fixed_docs;
      Alcotest.test_case "pool sizes 1/2/4 agree" `Quick test_pools_agree;
      Alcotest.test_case "parallel grammar build" `Quick test_grammar_build_parallel;
      Alcotest.test_case "grammar compresses logs >= 5x" `Quick test_compression_ratio;
      Alcotest.test_case "save/load keeps backend" `Quick test_save_load_keeps_backend;
      Alcotest.test_case "unknown backend tag is typed" `Quick test_unknown_backend_tag;
      Alcotest.test_case "old container version rejected" `Quick
        test_old_version_rejected;
    ] )

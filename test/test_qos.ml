(* The resource-governance subsystem: budget semantics (sampling,
   tripping, exact result/byte accounting, ambient propagation across
   pool domains), failpoints, the breaker state machine (driven by a
   fake clock), and the determinism contract — a budget-limited query
   at any pool size either reproduces the unbudgeted result byte for
   byte or raises [Exceeded]; it never returns a truncated answer. *)

open Sxsi_core
open Sxsi_xml
module Budget = Sxsi_qos.Budget
module Failpoint = Sxsi_qos.Failpoint
module Breaker = Sxsi_qos.Breaker
module Pool = Sxsi_par.Pool

(* ------------------------------------------------------------------ *)
(* Budget                                                               *)
(* ------------------------------------------------------------------ *)

let test_budget_unlimited () =
  let b = Budget.create () in
  for _ = 1 to 100_000 do
    Budget.check b
  done;
  Budget.add_results b 1_000_000;
  Budget.add_bytes b 1_000_000;
  Alcotest.(check bool) "never trips" true (Budget.tripped b = None);
  Alcotest.(check int) "steps counted" 100_000 (Budget.steps b)

let expect_exceeded reason f =
  match f () with
  | _ -> Alcotest.fail "expected Exceeded"
  | exception Budget.Exceeded r ->
    Alcotest.(check string) "reason" (Budget.reason_name reason) (Budget.reason_name r)

let test_budget_steps () =
  (* sampled enforcement: exact to within one check_every interval *)
  let b = Budget.create ~max_steps:100 ~check_every:8 () in
  expect_exceeded Budget.Steps (fun () ->
      for _ = 1 to 1_000 do
        Budget.check b
      done);
  Alcotest.(check bool) "within a sampling interval" true (Budget.steps b <= 100 + 16);
  (* tripped budgets keep raising the recorded reason at the next
     sampled check *)
  expect_exceeded Budget.Steps (fun () ->
      for _ = 1 to 16 do
        Budget.check b
      done);
  Alcotest.(check bool) "tripped recorded" true (Budget.tripped b = Some Budget.Steps)

let test_budget_expired_deadline_fails_fast () =
  let b = Budget.create ~deadline_ns:(Sxsi_obs.Clock.now_ns () - 1) () in
  (* the very first check slow-paths, so no work happens at all *)
  expect_exceeded Budget.Deadline (fun () -> Budget.check b);
  Alcotest.(check (option int)) "no time remaining" (Some 0) (Budget.remaining_ns b)

let test_budget_results_and_bytes_exact () =
  let b = Budget.create ~max_results:10 () in
  Budget.add_results b 10;
  expect_exceeded Budget.Results (fun () -> Budget.add_results b 1);
  let b = Budget.create ~max_bytes:100 () in
  Budget.add_bytes b 100;
  expect_exceeded Budget.Bytes (fun () -> Budget.add_bytes b 1)

let test_of_limits () =
  Alcotest.(check bool) "no limits, no budget" true (Budget.of_limits () = None);
  Alcotest.(check bool) "non-positive limits dropped" true
    (Budget.of_limits ~deadline_ms:0 ~max_results:(-1) () = None);
  match Budget.of_limits ~deadline_ms:10_000 ~max_results:5 () with
  | None -> Alcotest.fail "expected a budget"
  | Some b ->
    Alcotest.(check bool) "deadline set" true (Budget.deadline_ns b <> None);
    Budget.add_results b 5;
    expect_exceeded Budget.Results (fun () -> Budget.add_results b 1)

let test_ambient () =
  (* physical identity: structurally all fresh budgets look alike *)
  let is_amb b = match Budget.ambient () with Some x -> x == b | None -> false in
  Alcotest.(check bool) "no ambient by default" true (Budget.ambient () = None);
  let b1 = Budget.create () and b2 = Budget.create () in
  Budget.with_ambient b1 (fun () ->
      Alcotest.(check bool) "installed" true (is_amb b1);
      Budget.with_ambient b2 (fun () ->
          Alcotest.(check bool) "nested" true (is_amb b2));
      Alcotest.(check bool) "restored after nesting" true (is_amb b1));
  Alcotest.(check bool) "restored" true (Budget.ambient () = None);
  (* exceptional exit restores too *)
  (try Budget.with_ambient b1 (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored on raise" true (Budget.ambient () = None)

let test_ambient_crosses_pool () =
  Pool.with_pool ~name:"qos-test" ~domains:2 (fun p ->
      let b = Budget.create ~max_steps:1 ~check_every:1 () in
      Budget.with_ambient b (fun () ->
          let seen =
            Pool.await p
              (Pool.fork p (fun () ->
                   match Budget.ambient () with
                   | Some b' -> b' == b
                   | None -> false))
          in
          Alcotest.(check bool) "forked task sees the forker's budget" true seen);
      (* a task that blows the shared budget raises Exceeded at await *)
      Budget.with_ambient b (fun () ->
          expect_exceeded Budget.Steps (fun () ->
              Pool.await p
                (Pool.fork p (fun () ->
                     let b = Option.get (Budget.ambient ()) in
                     for _ = 1 to 100 do
                       Budget.check b
                     done)))))

(* ------------------------------------------------------------------ *)
(* Failpoint                                                            *)
(* ------------------------------------------------------------------ *)

let with_clean_failpoints f =
  Fun.protect ~finally:Failpoint.deactivate_all f

let test_failpoint_basics () =
  with_clean_failpoints (fun () ->
      let s = Failpoint.site "test.basic" in
      Failpoint.hit s;  (* inactive: no-op *)
      Failpoint.activate "test.basic" Failpoint.Fail;
      (match Failpoint.hit s with
      | () -> Alcotest.fail "expected Injected"
      | exception Failpoint.Injected { site; _ } ->
        Alcotest.(check string) "site name" "test.basic" site);
      Failpoint.activate "test.basic" (Failpoint.Return_err "custom message");
      (match Failpoint.hit s with
      | () -> Alcotest.fail "expected Injected"
      | exception Failpoint.Injected { message; _ } ->
        Alcotest.(check string) "message" "custom message" message);
      Failpoint.deactivate "test.basic";
      Failpoint.hit s)

let test_failpoint_delay () =
  with_clean_failpoints (fun () ->
      let s = Failpoint.site "test.delay" in
      Failpoint.activate "test.delay" (Failpoint.Delay_ms 30);
      let t0 = Unix.gettimeofday () in
      Failpoint.hit s;
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "slept at least 30ms" true (dt >= 0.025))

let test_failpoint_spec () =
  with_clean_failpoints (fun () ->
      (match Failpoint.activate_spec "a=fail;b=delay:5;c=err:oops" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check int) "three armed" 3 (List.length (Failpoint.active ()));
      Alcotest.(check bool) "bad spec refused" true
        (match Failpoint.activate_spec "a=explode" with Error _ -> true | Ok () -> false);
      Alcotest.(check bool) "bad delay refused" true
        (match Failpoint.activate_spec "a=delay:xyz" with Error _ -> true | Ok () -> false);
      Failpoint.deactivate_all ();
      Alcotest.(check int) "all disarmed" 0 (List.length (Failpoint.active ())))

(* ------------------------------------------------------------------ *)
(* Breaker (under a fake clock, so transitions are deterministic)       *)
(* ------------------------------------------------------------------ *)

(* Drive the breaker on a hand-cranked clock, reinstalling the default
   wall-clock-derived source afterwards (there is no getter). *)
let with_fake_clock f =
  let t = ref 1_000_000_000 in
  Fun.protect
    ~finally:(fun () ->
      Sxsi_obs.Clock.set_source (fun () ->
          int_of_float (Unix.gettimeofday () *. 1e9)))
    (fun () ->
      Sxsi_obs.Clock.set_source (fun () -> !t);
      f (fun ms -> t := !t + (ms * 1_000_000)))

let test_breaker_state_machine () =
  with_fake_clock (fun advance_ms ->
      let b = Breaker.create ~threshold:2 ~cooldown_ms:100 () in
      Alcotest.(check bool) "closed allows" true (Breaker.allow b);
      Breaker.failure b;
      Alcotest.(check bool) "one failure below threshold" true (Breaker.allow b);
      Breaker.success b;
      Breaker.failure b;
      Alcotest.(check bool) "success reset the count" true (Breaker.allow b);
      Breaker.failure b;
      (* two consecutive: open *)
      Alcotest.(check bool) "open refuses" false (Breaker.allow b);
      Alcotest.(check bool) "is_open" true (Breaker.is_open b);
      Alcotest.(check bool) "retry hint positive" true (Breaker.retry_after_ms b > 0);
      advance_ms 50;
      Alcotest.(check bool) "still open mid-cooldown" false (Breaker.allow b);
      advance_ms 60;
      (* cooled down: exactly one half-open probe *)
      Alcotest.(check bool) "probe admitted" true (Breaker.allow b);
      Alcotest.(check bool) "second probe refused" false (Breaker.allow b);
      Breaker.failure b;
      Alcotest.(check bool) "failed probe reopens" false (Breaker.allow b);
      advance_ms 110;
      Alcotest.(check bool) "probe again" true (Breaker.allow b);
      Breaker.success b;
      Alcotest.(check bool) "successful probe closes" true (Breaker.allow b);
      Alcotest.(check bool) "closed again" false (Breaker.is_open b))

(* ------------------------------------------------------------------ *)
(* Engine under budget                                                  *)
(* ------------------------------------------------------------------ *)

let mid_doc =
  lazy
    (let buf = Buffer.create 4096 in
     Buffer.add_string buf "<root>";
     for i = 0 to 499 do
       Buffer.add_string buf
         (Printf.sprintf "<item id=\"i%d\"><name>name%d</name><v>%d</v></item>" i i i)
     done;
     Buffer.add_string buf "</root>";
     Document.of_xml (Buffer.contents buf))

let test_engine_budget_steps () =
  let doc = Lazy.force mid_doc in
  (* a predicate forces a real scan: bare "//item" hits the Collect
     jump shortcut and does (correctly) almost no budgeted work *)
  let c = Engine.prepare doc "//item[v]" in
  (* generous budget: identical to the unbudgeted run *)
  let expected = Engine.count c in
  let b = Budget.create ~max_steps:10_000_000 () in
  Alcotest.(check int) "generous budget changes nothing" expected
    (Engine.count ~budget:b c);
  (* starved budget: typed failure, not a wrong count *)
  let b = Budget.create ~max_steps:10 ~check_every:1 () in
  expect_exceeded Budget.Steps (fun () -> Engine.count ~budget:b c)

let test_engine_budget_results () =
  let doc = Lazy.force mid_doc in
  let c = Engine.prepare doc "//item" in
  let b = Budget.create ~max_results:10 () in
  expect_exceeded Budget.Results (fun () -> Engine.select ~budget:b c)

let test_engine_budget_bytes () =
  let doc = Lazy.force mid_doc in
  let c = Engine.prepare doc "//item" in
  let b = Budget.create ~max_bytes:64 () in
  expect_exceeded Budget.Bytes (fun () ->
      Engine.serialize_to ~budget:b (Buffer.create 256) c)

let test_engine_expired_deadline_no_work () =
  let doc = Lazy.force mid_doc in
  let c = Engine.prepare doc "//item" in
  let b = Budget.create ~deadline_ns:(Sxsi_obs.Clock.now_ns () - 1) () in
  (* check_now runs before evaluation starts *)
  expect_exceeded Budget.Deadline (fun () -> Engine.count ~budget:b c)

(* ------------------------------------------------------------------ *)
(* Determinism: complete and identical, or Exceeded — never truncated   *)
(* ------------------------------------------------------------------ *)

(* Shared pools, as in Test_par: domain spawns dominate otherwise. *)
let pool1 = lazy (Pool.create ~name:"q1" ~domains:1 ())
let pool2 = lazy (Pool.create ~name:"q2" ~domains:2 ())
let pool4 = lazy (Pool.create ~name:"q4" ~domains:4 ())
let pools = [ pool1; pool2; pool4 ]

let () =
  at_exit (fun () ->
      List.iter (fun l -> if Lazy.is_val l then Pool.shutdown (Lazy.force l)) pools)

let big_xml =
  lazy
    (let buf = Buffer.create (1 lsl 17) in
     Buffer.add_string buf "<root>";
     for i = 0 to 1999 do
       Buffer.add_string buf
         (Printf.sprintf
            "<item id=\"i%d\"><name>name%d</name><desc>payload number %d</desc>%s</item>"
            i i i
            (if i mod 7 = 0 then "<flag/>" else ""))
     done;
     Buffer.add_string buf "</root>";
     Buffer.contents buf)

(* For one query and one step limit: at every pool size the budgeted
   run either reproduces the oracle byte for byte or raises Exceeded.
   A partial (truncated but non-raising) answer fails the test. *)
let test_budget_differential () =
  let doc = Document.of_xml (Lazy.force big_xml) in
  List.iter
    (fun query ->
      let c = Engine.prepare doc query in
      Engine.precompile c;
      let oracle_ids = Array.to_list (Engine.select_preorders c) in
      let oracle_bytes =
        let buf = Buffer.create 256 in
        ignore (Engine.serialize_to buf c);
        Buffer.contents buf
      in
      List.iter
        (fun l ->
          let p = Lazy.force l in
          List.iter
            (fun max_steps ->
              let label =
                Printf.sprintf "%s pool=%d steps=%d" query (Pool.size p) max_steps
              in
              (match
                 let b = Budget.create ~max_steps ~check_every:64 () in
                 Array.to_list (Engine.select_preorders ~budget:b ~pool:p c)
               with
              | ids ->
                Alcotest.(check (list int)) (label ^ " ids identical") oracle_ids ids
              | exception Budget.Exceeded _ -> ());
              match
                let b = Budget.create ~max_steps ~check_every:64 () in
                let buf = Buffer.create 256 in
                ignore (Engine.serialize_to ~budget:b ~pool:p buf c);
                Buffer.contents buf
              with
              | bytes ->
                Alcotest.(check string) (label ^ " bytes identical") oracle_bytes bytes
              | exception Budget.Exceeded _ -> ())
            [ 1; 10; 100; 1_000; 100_000; 10_000_000 ])
        pools)
    [ "//item"; "//item[flag]"; "//name[contains(., '9')]"; "//nonexistent" ]

(* The starved end must actually trip (otherwise the differential above
   proves nothing), and the generous end must actually complete. *)
let test_budget_differential_ends () =
  let doc = Document.of_xml (Lazy.force big_xml) in
  let c = Engine.prepare doc "//item" in
  Engine.precompile c;
  let oracle = Engine.count c in
  List.iter
    (fun l ->
      let p = Lazy.force l in
      let b = Budget.create ~max_steps:1 ~check_every:1 () in
      expect_exceeded Budget.Steps (fun () -> Engine.count ~budget:b ~pool:p c);
      let b = Budget.create ~max_steps:100_000_000 () in
      Alcotest.(check int)
        (Printf.sprintf "generous completes at pool=%d" (Pool.size p))
        oracle
        (Engine.count ~budget:b ~pool:p c))
    pools

let suite =
  ( "qos",
    [
      Alcotest.test_case "budget: unlimited" `Quick test_budget_unlimited;
      Alcotest.test_case "budget: step limit" `Quick test_budget_steps;
      Alcotest.test_case "budget: expired deadline fails fast" `Quick
        test_budget_expired_deadline_fails_fast;
      Alcotest.test_case "budget: results and bytes exact" `Quick
        test_budget_results_and_bytes_exact;
      Alcotest.test_case "budget: of_limits" `Quick test_of_limits;
      Alcotest.test_case "budget: ambient install/restore" `Quick test_ambient;
      Alcotest.test_case "budget: ambient crosses the pool" `Quick
        test_ambient_crosses_pool;
      Alcotest.test_case "failpoint: basics" `Quick test_failpoint_basics;
      Alcotest.test_case "failpoint: delay" `Quick test_failpoint_delay;
      Alcotest.test_case "failpoint: spec parsing" `Quick test_failpoint_spec;
      Alcotest.test_case "breaker: state machine" `Quick test_breaker_state_machine;
      Alcotest.test_case "engine: step budget" `Quick test_engine_budget_steps;
      Alcotest.test_case "engine: result budget" `Quick test_engine_budget_results;
      Alcotest.test_case "engine: byte budget" `Quick test_engine_budget_bytes;
      Alcotest.test_case "engine: expired deadline does no work" `Quick
        test_engine_expired_deadline_no_work;
      Alcotest.test_case "determinism: identical or Exceeded at sizes 1/2/4" `Slow
        test_budget_differential;
      Alcotest.test_case "determinism: both ends reachable" `Quick
        test_budget_differential_ends;
    ] )

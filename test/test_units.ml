(* Direct unit tests for the engine's small core structures (state
   sets, result ropes) and document-level odds and ends. *)

open Sxsi_core
open Sxsi_xml
open Sxsi_tree

(* ------------------------------------------------------------------ *)
(* Stateset                                                             *)
(* ------------------------------------------------------------------ *)

let test_stateset () =
  let a = Stateset.of_list [ 3; 1; 2; 3 ] in
  let b = Stateset.of_list [ 1; 2; 3 ] in
  Alcotest.(check bool) "hash-consed" true (a == b);
  Alcotest.(check int) "cardinal" 3 (Stateset.cardinal a);
  Alcotest.(check bool) "mem" true (Stateset.mem a 2);
  Alcotest.(check bool) "not mem" false (Stateset.mem a 4);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Stateset.to_list a);
  Alcotest.(check bool) "empty" true (Stateset.is_empty Stateset.empty);
  Alcotest.(check (option int)) "singleton none" None (Stateset.singleton a);
  Alcotest.(check (option int)) "singleton" (Some 7)
    (Stateset.singleton (Stateset.of_list [ 7 ]));
  Alcotest.(check bool) "distinct ids" true
    (a.Stateset.id <> (Stateset.of_list [ 1; 2 ]).Stateset.id)

(* ------------------------------------------------------------------ *)
(* Marks                                                                *)
(* ------------------------------------------------------------------ *)

let test_marks () =
  (* tree: (a (b) (a) (b)) tags a=0 b=1 *)
  let parens = [| true; true; false; true; false; true; false; false |] in
  let tags = [| 0; 1; 1; 0; 0; 1; 1; 0 |] in
  let bp = Bp.of_bools parens in
  let tag_index = Tag_index.build bp ~tag_count:2 ~tags in
  let ti =
    Tree_backend.of_bp ~bp ~tags:tag_index
      ~leaves:(Sxsi_bits.Bitvec.of_fun 8 (fun _ -> false))
  in
  let m =
    Marks.Cat (Marks.One 0, Marks.Cat (Marks.Tagged_range ([ 1 ], 1, 8), Marks.Empty))
  in
  Alcotest.(check int) "count" 3 (Marks.count ti m);
  Alcotest.(check (array int)) "positions" [| 0; 1; 5 |] (Marks.positions ti m);
  (* multi-tag class range *)
  let cls = Marks.Tagged_range ([ 0; 1 ], 0, 8) in
  Alcotest.(check int) "class count" 4 (Marks.count ti cls);
  Alcotest.(check (list int)) "class positions (sorted)" [ 0; 1; 3; 5 ]
    (List.sort compare (Array.to_list (Marks.positions ti cls)));
  Alcotest.(check int) "empty" 0 (Marks.count ti Marks.Empty)

(* ------------------------------------------------------------------ *)
(* Engine result invariants                                             *)
(* ------------------------------------------------------------------ *)

let test_select_sorted_unique () =
  let xml = Sxsi_datagen.Xmark.generate ~scale:30 () in
  let doc = Document.of_xml xml in
  List.iter
    (fun q ->
      let nodes = Engine.select (Engine.prepare doc q) in
      let ok = ref true in
      for i = 1 to Array.length nodes - 1 do
        if nodes.(i - 1) >= nodes.(i) then ok := false
      done;
      Alcotest.(check bool) (q ^ " sorted+unique") true !ok)
    [
      "//keyword"; "//listitem//keyword"; "//*"; "//*//*";
      "//item/following-sibling::item"; "//person[phone or homepage]";
      "/site/people/person/name"; "//@id";
    ]

let test_count_equals_select_length () =
  let xml = Sxsi_datagen.Treebank.generate ~sentences:40 () in
  let doc = Document.of_xml xml in
  List.iter
    (fun q ->
      let c = Engine.prepare doc q in
      Alcotest.(check int) q (Array.length (Engine.select c)) (Engine.count c))
    [ "//NP"; "//NP//NP"; "//S[.//VP]/NP"; "//*"; "//NP/following-sibling::VP" ]

(* ------------------------------------------------------------------ *)
(* Document extras                                                      *)
(* ------------------------------------------------------------------ *)

let test_texts_override () =
  let doc = Document.of_xml "<a><b>one</b><b>two</b></a>" in
  (* replace the text collection with one built over uppercased texts *)
  let upper =
    Sxsi_text.Text_collection.build
      (Array.map String.uppercase_ascii (Document.texts doc))
  in
  let doc2 = Document.of_texts_override doc upper in
  Alcotest.(check string) "overridden" "ONE" (Document.get_text doc2 0);
  Alcotest.(check int) "queries see the new index" 1
    (Engine.count (Engine.prepare doc2 "//b[. = 'TWO']"));
  Alcotest.(check int) "original untouched" 1
    (Engine.count (Engine.prepare doc "//b[. = 'two']"))

let test_tag_is_pcdata () =
  let doc =
    Document.of_xml "<r><p>text</p><p>more</p><q>x<em>y</em></q><e/></r>"
  in
  let id n = Option.get (Document.tag_id doc n) in
  Alcotest.(check bool) "p pcdata" true (Document.tag_is_pcdata doc (id "p"));
  Alcotest.(check bool) "q mixed" false (Document.tag_is_pcdata doc (id "q"));
  Alcotest.(check bool) "empty element pcdata" true
    (Document.tag_is_pcdata doc (id "e"))

let test_run_stats_consistency () =
  let xml = Sxsi_datagen.Xmark.generate ~scale:20 () in
  let doc = Document.of_xml xml in
  let stats = Run.fresh_stats () in
  let config = { (Run.default_config ()) with Run.enable_jump = false; stats } in
  let n = Engine.count ~config ~strategy:Engine.Top_down (Engine.prepare doc "//keyword") in
  Alcotest.(check bool) "visited at least results" true (stats.Run.visited >= n);
  Alcotest.(check bool) "marked = results (no filters)" true (stats.Run.marked = n)

let test_save_load () =
  let xml = Sxsi_datagen.Xmark.generate ~scale:25 () in
  let doc = Document.of_xml xml in
  let path = Filename.temp_file "sxsi" ".idx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Document.save doc path;
      let doc2 = Document.load path in
      Alcotest.(check int) "nodes" (Document.node_count doc) (Document.node_count doc2);
      List.iter
        (fun q ->
          Alcotest.(check int) q
            (Engine.count (Engine.prepare doc q))
            (Engine.count (Engine.prepare doc2 q)))
        [ "//keyword"; "//person[phone]/name"; "//name[contains(., 'Bar')]" ];
      Alcotest.(check string) "serialization equal"
        (Document.serialize doc (Document.root doc))
        (Document.serialize doc2 (Document.root doc2)));
  (* bad magic *)
  let bogus = Filename.temp_file "sxsi" ".idx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bogus)
    (fun () ->
      let oc = open_out bogus in
      output_string oc "not an index at all.....";
      close_out oc;
      match Document.load bogus with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure on bad magic")

let test_wide_document () =
  (* 100k siblings: sibling recursion must not blow the stack *)
  let buf = Buffer.create 900_000 in
  Buffer.add_string buf "<r>";
  for i = 0 to 99_999 do
    Buffer.add_string buf (if i mod 100 = 0 then "<a><b/></a>" else "<a/>")
  done;
  Buffer.add_string buf "</r>";
  let doc = Document.of_xml (Buffer.contents buf) in
  Alcotest.(check int) "a[b] count" 1000
    (Engine.count ~strategy:Engine.Top_down (Engine.prepare doc "/r/a[b]"));
  Alcotest.(check int) "//a" 100_000 (Engine.count (Engine.prepare doc "//a"))

let suite =
  ( "units",
    [
      Alcotest.test_case "stateset" `Quick test_stateset;
      Alcotest.test_case "marks" `Quick test_marks;
      Alcotest.test_case "select sorted+unique" `Quick test_select_sorted_unique;
      Alcotest.test_case "count = |select|" `Quick test_count_equals_select_length;
      Alcotest.test_case "texts override" `Quick test_texts_override;
      Alcotest.test_case "tag_is_pcdata" `Quick test_tag_is_pcdata;
      Alcotest.test_case "run stats" `Quick test_run_stats_consistency;
      Alcotest.test_case "index save/load" `Quick test_save_load;
      Alcotest.test_case "wide document (100k siblings)" `Slow test_wide_document;
    ] )

(* Sampling-profiler tests: deterministic fake-clock attribution over
   a two-domain workload, sampler-starts-mid-span truncation, the
   allocation and contention profiles, and the PROFILE verb end to end
   against a live server under load. *)

module J = Sxsi_obs.Journal
module Prof = Sxsi_prof.Prof
module Contend = Sxsi_obs.Contend
open Sxsi_service

let n_a = J.name "prof_a"
let n_b = J.name "prof_b"
let n_c = J.name "prof_c"

(* Every test drives the label slots directly (no sampler domain) and
   restores the disabled state on the way out. *)
let with_labels f =
  J.set_labels_enabled true;
  Fun.protect ~finally:(fun () -> J.set_labels_enabled false) f

let find_entry r stack =
  List.find_opt (fun e -> e.Prof.e_stack = stack) r.Prof.r_entries

let self_ns r stack =
  match find_entry r stack with Some e -> Some e.Prof.e_self_ns | None -> None

(* Two domains in known spans, weights driven by hand through
   [sample_now]: attribution is exact, no tolerance needed. *)
let test_fake_clock_attribution () =
  with_labels (fun () ->
      let since = Prof.snapshot () in
      (* phase 1: only this domain, inside prof_a (with a nested
         prof_c stretch) *)
      J.begin_span J.Engine n_a ();
      Prof.sample_now ~weight_ns:7;
      Prof.sample_now ~weight_ns:7;
      Prof.sample_now ~weight_ns:7;
      J.begin_span J.Engine n_c ();
      Prof.sample_now ~weight_ns:11;
      J.end_span J.Engine n_c ();
      J.end_span J.Engine n_a ();
      (* phase 2: a second domain parks inside prof_b while this one
         is on no span, so its samples split between prof_b and
         (unattributed) *)
      let in_b = Atomic.make false in
      let release = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            Fun.protect ~finally:J.retire_slot (fun () ->
                J.begin_span J.Engine n_b ();
                Atomic.set in_b true;
                while not (Atomic.get release) do
                  Domain.cpu_relax ()
                done;
                J.end_span J.Engine n_b ()))
      in
      while not (Atomic.get in_b) do
        Domain.cpu_relax ()
      done;
      Prof.sample_now ~weight_ns:5;
      Prof.sample_now ~weight_ns:5;
      Prof.sample_now ~weight_ns:5;
      Prof.sample_now ~weight_ns:5;
      Atomic.set release true;
      Domain.join d;
      let r = Prof.report ~since () in
      Alcotest.(check (option int)) "prof_a self" (Some 21) (self_ns r [ "prof_a" ]);
      Alcotest.(check (option int)) "nested prof_a;prof_c" (Some 11)
        (self_ns r [ "prof_a"; "prof_c" ]);
      Alcotest.(check (option int)) "prof_b on the second domain" (Some 20)
        (self_ns r [ "prof_b" ]);
      (* phase-2 samples also saw this domain on no span *)
      Alcotest.(check int) "unattributed" 20 r.Prof.r_unattributed_ns;
      Alcotest.(check int) "total = attributed + unattributed"
        (21 + 11 + 20 + 20) r.Prof.r_total_ns;
      Alcotest.(check int) "ticks" 8 r.Prof.r_ticks)

(* Labels flip on while a span is already open: the unmatched exit is
   ignored, later spans attribute normally, and renderings stay
   well-formed. *)
let test_truncation_mid_span () =
  J.begin_span J.Engine n_a ();
  with_labels (fun () ->
      let since = Prof.snapshot () in
      J.end_span J.Engine n_a ();
      (* exit of a span never entered into the slot: ignored *)
      J.with_span J.Engine n_b (fun () -> Prof.sample_now ~weight_ns:9);
      let r = Prof.report ~since () in
      Alcotest.(check (option int)) "span after truncated exit" (Some 9)
        (self_ns r [ "prof_b" ]);
      Alcotest.(check bool) "no prof_a ghost" true (self_ns r [ "prof_a" ] = None);
      let folded = Prof.to_folded r in
      List.iter
        (fun line ->
          if line <> "" then
            Alcotest.(check bool) ("folded line well-formed: " ^ line) true
              (String.length line > 0
              && String.contains line ' '
              && int_of_string_opt
                   (String.sub line
                      (String.rindex line ' ' + 1)
                      (String.length line - String.rindex line ' ' - 1))
                 <> None))
        (String.split_on_char '\n' folded))

(* The per-span allocation profile: self words exclude what nested
   spans allocated. *)
let test_alloc_attribution () =
  with_labels (fun () ->
      let since = Prof.snapshot () in
      let sink = ref [||] in
      J.with_span J.Engine n_a (fun () ->
          sink := Array.make 1000 0.0;
          J.with_span J.Engine n_c (fun () -> sink := Array.make 100_000 0.0));
      ignore (Sys.opaque_identity !sink);
      let r = Prof.report ~since () in
      let minor stack =
        match find_entry r stack with
        | Some e -> e.Prof.e_minor +. e.Prof.e_major
        | None -> 0.0
      in
      let outer = minor [ "prof_a" ] in
      let inner = minor [ "prof_a"; "prof_c" ] in
      Alcotest.(check bool) "outer span sees its own 1k words" true (outer >= 1000.0);
      Alcotest.(check bool) "inner span sees its 100k words" true (inner >= 100_000.0);
      Alcotest.(check bool) "self excludes the nested allocation" true
        (outer < 50_000.0))

(* The contention profile: a lock held across a second domain's
   acquire shows up as a contended acquire with positive wait. *)
let test_contention_profile () =
  let site = Contend.site "test.contend" in
  let m = Mutex.create () in
  Contend.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Contend.set_enabled false)
    (fun () ->
      let holding = Atomic.make false in
      let release = Atomic.make false in
      let holder =
        Domain.spawn (fun () ->
            Contend.with_lock site m (fun () ->
                Atomic.set holding true;
                while not (Atomic.get release) do
                  Domain.cpu_relax ()
                done))
      in
      while not (Atomic.get holding) do
        Domain.cpu_relax ()
      done;
      let waiter =
        Domain.spawn (fun () -> Contend.with_lock site m (fun () -> ()))
      in
      (* give the waiter time to block on the held lock *)
      Unix.sleepf 0.05;
      Atomic.set release true;
      Domain.join holder;
      Domain.join waiter;
      match List.find_opt (fun (nm, _, _, _) -> nm = "test.contend") (Contend.stats ()) with
      | None -> Alcotest.fail "site missing from stats"
      | Some (_, acquires, contended, wait_ns) ->
        Alcotest.(check int) "acquires" 2 acquires;
        Alcotest.(check bool) "at least one contended acquire" true (contended >= 1);
        Alcotest.(check bool) "positive wait" true (wait_ns > 0))

(* ------------------------------------------------------------------ *)
(* PROFILE end to end                                                   *)
(* ------------------------------------------------------------------ *)

let small_doc tag n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "<%s>" tag);
  for i = 1 to n do
    Buffer.add_string buf (Printf.sprintf "<item><id>%d</id></item>" i)
  done;
  Buffer.add_string buf (Printf.sprintf "</%s>" tag);
  Sxsi_xml.Document.of_xml (Buffer.contents buf)

let read_one ic =
  Protocol.read_response (fun () ->
      match input_line ic with
      | line -> Some line
      | exception End_of_file -> None)

let test_profile_verb_e2e () =
  let svc = Service.create () in
  Service.add_document svc "d" (small_doc "root" 50);
  Test_service.with_server svc (fun port ->
      let stop_load = Atomic.make false in
      (* background load so the window has something to attribute *)
      let load =
        Domain.spawn (fun () ->
            let ic, oc =
              Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
            in
            Fun.protect
              ~finally:(fun () ->
                try Unix.shutdown_connection ic with Unix.Unix_error _ -> ())
              (fun () ->
                while not (Atomic.get stop_load) do
                  output_string oc "COUNT d //item\n";
                  flush oc;
                  match read_one ic with
                  | Ok _ -> ()
                  | Error _ -> Atomic.set stop_load true
                done))
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop_load true;
          Domain.join load;
          Prof.stop ())
        (fun () ->
          let ic, oc =
            Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
          in
          Fun.protect
            ~finally:(fun () ->
              try Unix.shutdown_connection ic with Unix.Unix_error _ -> ())
            (fun () ->
              output_string oc "PROFILE 1\n";
              flush oc;
              match read_one ic with
              | Error e -> Alcotest.fail ("client read: " ^ e)
              | Ok (Protocol.Data (json_line :: folded)) ->
                (* first line: the sxsi-prof-v1 JSON report *)
                (match Sxsi_obs.Json.of_string json_line with
                | Error e -> Alcotest.fail ("report is not JSON: " ^ e)
                | Ok (Sxsi_obs.Json.Obj fields) ->
                  Alcotest.(check bool) "schema" true
                    (List.assoc_opt "schema" fields
                    = Some (Sxsi_obs.Json.String "sxsi-prof-v1"));
                  (match List.assoc_opt "duration_ns" fields with
                  | Some (Sxsi_obs.Json.Int ns) ->
                    Alcotest.(check bool) "window covers ~1s" true
                      (ns > 900_000_000 && ns < 5_000_000_000)
                  | _ -> Alcotest.fail "duration_ns missing");
                  (match List.assoc_opt "stacks" fields with
                  | Some (Sxsi_obs.Json.List (_ :: _)) -> ()
                  | _ -> Alcotest.fail "no stacks attributed under load")
                | Ok _ -> Alcotest.fail "report is not a JSON object");
                (* remaining lines: collapsed stacks, "path value" *)
                Alcotest.(check bool) "folded output present" true (folded <> []);
                List.iter
                  (fun line ->
                    let sp = String.rindex line ' ' in
                    Alcotest.(check bool) ("folded value numeric: " ^ line) true
                      (int_of_string_opt
                         (String.sub line (sp + 1) (String.length line - sp - 1))
                      <> None))
                  folded;
                (* the profiled load shows up by name *)
                Alcotest.(check bool) "a service/engine root is attributed" true
                  (List.exists
                     (fun l ->
                       List.exists
                         (fun root ->
                           String.length l >= String.length root
                           && String.sub l 0 (String.length root) = root)
                         [ "service/"; "engine/"; "evloop/"; "pool/"; "doc/" ])
                     folded)
              | Ok r ->
                Alcotest.fail ("unexpected response: " ^ Protocol.print_response r))))

let test_profile_parse () =
  Alcotest.(check bool) "bare PROFILE defaults to 1s" true
    (Protocol.parse_request "PROFILE" = Ok (Protocol.Profile 1));
  Alcotest.(check bool) "explicit window" true
    (Protocol.parse_request "PROFILE 5" = Ok (Protocol.Profile 5));
  Alcotest.(check bool) "zero rejected" true
    (Result.is_error (Protocol.parse_request "PROFILE 0"));
  Alcotest.(check bool) "over-long window rejected" true
    (Result.is_error (Protocol.parse_request "PROFILE 61"));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Protocol.parse_request "PROFILE 2 x"))

let suite =
  ( "prof",
    [
      Alcotest.test_case "fake-clock attribution" `Quick test_fake_clock_attribution;
      Alcotest.test_case "sampler starts mid-span" `Quick test_truncation_mid_span;
      Alcotest.test_case "allocation attribution" `Quick test_alloc_attribution;
      Alcotest.test_case "contention profile" `Quick test_contention_profile;
      Alcotest.test_case "PROFILE parse" `Quick test_profile_parse;
      Alcotest.test_case "PROFILE verb e2e" `Slow test_profile_verb_e2e;
    ] )

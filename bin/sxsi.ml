(* The sxsi command-line tool: index an XML file in memory and run
   Core+ queries against it, inspect document statistics, or generate
   the synthetic benchmark corpora. *)

open Cmdliner
open Sxsi_xml
open Sxsi_core

let pp_bytes b =
  let f = float_of_int b in
  if f >= 1e6 then Printf.sprintf "%.2fMB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fKB" (f /. 1e3)
  else Printf.sprintf "%dB" b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML document")

let query_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"Core+ XPath query")

let drop_ws =
  Arg.(value & flag & info [ "drop-whitespace" ] ~doc:"Discard whitespace-only text nodes")

let no_jump =
  Arg.(value & flag & info [ "no-jump" ] ~doc:"Disable jumping to relevant nodes (§5.4.1)")

let no_memo =
  Arg.(value & flag & info [ "no-memo" ] ~doc:"Disable transition memoization (§5.5.2)")

let optimize_arg =
  let on_off = Arg.enum [ ("on", true); ("off", false) ] in
  Arg.(value & opt on_off true & info [ "optimize" ] ~docv:"on|off"
         ~doc:"Whole-query automaton optimization: prune dead states and transitions, \
               merge duplicate states and precompute jump sets before running \
               (default on).  $(b,off) evaluates the raw translation — the \
               differential-testing baseline")

let strategy_arg =
  let strategy_conv =
    Arg.enum [ ("auto", Engine.Auto); ("top-down", Engine.Top_down); ("bottom-up", Engine.Bottom_up) ]
  in
  Arg.(value & opt strategy_conv Engine.Auto & info [ "strategy" ] ~docv:"S"
         ~doc:"Evaluation strategy: auto, top-down or bottom-up")

let show_stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics (visited/marked/jumps)")

let show_trace =
  Arg.(value & flag & info [ "trace" ]
         ~doc:"Emit a one-line JSON trace record (phase timings in nanoseconds, engine \
               and index counters) on stderr")

let timeout_arg =
  Arg.(value & opt (some int) None & info [ "timeout" ] ~docv:"MS"
         ~doc:"Per-query deadline in milliseconds.  Overruns exit with status 124 \
               ($(b,count)/$(b,select)) or answer ERR DEADLINE ($(b,serve)/$(b,repl), \
               where the deadline covers each request and sessions can override it \
               with the DEADLINE verb)")

let max_results_arg =
  Arg.(value & opt (some int) None & info [ "max-results" ] ~docv:"N"
         ~doc:"Per-query result-count cap.  Overruns exit with status 124 \
               ($(b,count)/$(b,select)) or answer ERR BUDGET ($(b,serve)/$(b,repl))")

let profile_flag =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Sample the command with the wall-clock profiler and print a top-N \
               self-time table (with allocation and lock-wait columns) on stderr \
               when it exits")

(* Wrap one command run in a profiling window: start the sampler, diff
   a snapshot across [f] and print the self-time table.  The table goes
   to stderr so it composes with result output on stdout. *)
let with_profile enabled f =
  if not enabled then f ()
  else begin
    Sxsi_prof.Prof.ensure_started ();
    let since = Sxsi_prof.Prof.snapshot () in
    Fun.protect
      ~finally:(fun () ->
        prerr_string (Sxsi_prof.Prof.to_table (Sxsi_prof.Prof.report ~since ()));
        Sxsi_prof.Prof.stop ())
      f
  end

(* Query-only budget for one-shot commands: the clock starts after the
   document is loaded, so --timeout bounds evaluation, not parsing. *)
let cli_budget ~timeout_ms ~max_results =
  Sxsi_qos.Budget.of_limits ?deadline_ms:timeout_ms ?max_results ()

let budget_exit = 124 (* same convention as timeout(1) *)

let or_budget_exceeded f =
  try f () with
  | Sxsi_qos.Budget.Exceeded reason ->
    Printf.eprintf "sxsi: %s budget exceeded\n%!" (Sxsi_qos.Budget.reason_name reason);
    exit budget_exit

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Domain-pool size for index construction and query evaluation \
               (default: the $(b,SXSI_DOMAINS) environment variable, else 1; \
               1 means sequential)")

let backend_arg =
  let backend_conv = Arg.enum [ ("bp", `Bp); ("grammar", `Grammar) ] in
  Arg.(value & opt (some backend_conv) None & info [ "backend" ] ~docv:"B"
         ~doc:"Tree backend: $(b,bp) (succinct balanced parentheses, the default) or \
               $(b,grammar) (grammar-compressed, for repetitive-structure documents).  \
               Default: the $(b,SXSI_BACKEND) environment variable, else bp.  \
               Pre-built .sxsi files keep the backend they were indexed with")

let resolve_domains = function
  | Some d -> max 1 d
  | None -> Sxsi_par.Pool.default_domains ()

(* Run [f] with the pool the --domains/SXSI_DOMAINS setting asks for:
   [None] (pure sequential paths) below 2 domains. *)
let with_domains domains f =
  match resolve_domains domains with
  | 1 -> f None
  | d -> Sxsi_par.Pool.with_pool ~name:"cli" ~domains:d (fun p -> f (Some p))

let load_document ?pool ?backend ~keep_whitespace file =
  if Filename.check_suffix file ".sxsi" then Document.load file
  else Document.of_xml ?pool ?backend ~keep_whitespace (read_file file)

let with_engine file query drop_whitespace no_jump no_memo optimize strategy stats_flag
    trace_flag domains backend k =
  with_domains domains (fun pool ->
      let doc = load_document ?pool ?backend ~keep_whitespace:(not drop_whitespace) file in
      let trace = if trace_flag then Some (Sxsi_obs.Trace.create ~label:query ()) else None in
      let compiled = Engine.prepare ?trace ~optimize doc query in
      let stats = Run.fresh_stats () in
      let config = { (Run.default_config ()) with Run.enable_jump = not no_jump; enable_memo = not no_memo; stats } in
      let t0 = Unix.gettimeofday () in
      k ?pool doc compiled config strategy trace;
      let dt = Unix.gettimeofday () -. t0 in
      if stats_flag then begin
        Printf.eprintf
          "time: %.3fms  strategy: %s  domains: %d  visited: %d  marked: %d  jumps: %d  \
           memo hits: %d\n"
          (dt *. 1000.0)
          (match Engine.chosen_strategy ~strategy compiled with
          | `Top_down -> "top-down"
          | `Bottom_up -> "bottom-up")
          (match pool with Some p -> Sxsi_par.Pool.size p | None -> 1)
          stats.Run.visited stats.Run.marked stats.Run.jumps stats.Run.memo_hits;
        match Sxsi_auto.Optimize.stats (Engine.automaton compiled) with
        | Some o ->
          Printf.eprintf
            "optimizer: states %d -> %d  transitions %d -> %d  merged: %d  \
             jump sets: %d (%d tags)\n"
            o.Sxsi_auto.Automaton.opt_states_before o.Sxsi_auto.Automaton.opt_states_after
            o.Sxsi_auto.Automaton.opt_trans_before o.Sxsi_auto.Automaton.opt_trans_after
            o.Sxsi_auto.Automaton.opt_merged_states o.Sxsi_auto.Automaton.opt_jump_states
            o.Sxsi_auto.Automaton.opt_jump_tags
        | None -> Printf.eprintf "optimizer: off\n"
      end;
      match trace with
      | Some tr -> Printf.eprintf "%s\n" (Sxsi_obs.Json.to_string (Sxsi_obs.Trace.to_json tr))
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)
(* ------------------------------------------------------------------ *)

let count_cmd =
  let run file query dw nj nm opt strategy st tf dom bk timeout maxr prof =
    with_profile prof (fun () ->
        with_engine file query dw nj nm opt strategy st tf dom bk
          (fun ?pool _doc c config strategy trace ->
            or_budget_exceeded (fun () ->
                let budget = cli_budget ~timeout_ms:timeout ~max_results:maxr in
                Printf.printf "%d\n" (Engine.count ?budget ?pool ~config ~strategy ?trace c))))
  in
  Cmd.v
    (Cmd.info "count" ~doc:"Count the nodes selected by a query")
    Term.(const run $ file_arg $ query_arg $ drop_ws $ no_jump $ no_memo $ optimize_arg
          $ strategy_arg $ show_stats $ show_trace $ domains_arg $ backend_arg
          $ timeout_arg $ max_results_arg $ profile_flag)

let select_cmd =
  let ids =
    Arg.(value & flag & info [ "ids" ] ~doc:"Print preorder identifiers instead of XML")
  in
  let run file query dw nj nm opt strategy st tf dom bk timeout maxr ids prof =
    with_profile prof (fun () ->
        with_engine file query dw nj nm opt strategy st tf dom bk
          (fun ?pool doc c config strategy trace ->
            or_budget_exceeded (fun () ->
                let budget = cli_budget ~timeout_ms:timeout ~max_results:maxr in
                let nodes = Engine.select ?budget ?pool ~config ~strategy ?trace c in
                if ids then
                  Array.iter (fun x -> Printf.printf "%d\n" (Document.preorder doc x)) nodes
                else
                  Array.iter (fun x -> print_endline (Document.serialize doc x)) nodes)))
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Materialize and serialize the nodes selected by a query")
    Term.(const run $ file_arg $ query_arg $ drop_ws $ no_jump $ no_memo $ optimize_arg
          $ strategy_arg $ show_stats $ show_trace $ domains_arg $ backend_arg
          $ timeout_arg $ max_results_arg $ ids $ profile_flag)

let stats_cmd =
  let run file dw dom bk opt =
    with_domains dom @@ fun pool ->
    let t0 = Unix.gettimeofday () in
    let doc = load_document ?pool ?backend:bk ~keep_whitespace:(not dw) file in
    let dt = Unix.gettimeofday () -. t0 in
    let file_bytes = (Unix.stat file).Unix.st_size in
    Printf.printf "document:        %s\n" (pp_bytes file_bytes);
    Printf.printf "backend:         %s\n" (Document.backend_name doc);
    Printf.printf "optimizer:       %s\n" (if opt then "on" else "off");
    Printf.printf "index time:      %.2fs\n" dt;
    Printf.printf "nodes:           %d\n" (Document.node_count doc);
    Printf.printf "texts:           %d\n" (Document.text_count doc);
    Printf.printf "distinct tags:   %d\n" (Document.tag_count doc);
    Printf.printf "tree index:      %s\n" (pp_bytes (Document.tree_space_bits doc / 8));
    Printf.printf "text self-index: %s\n"
      (pp_bytes (Sxsi_text.Text_collection.fm_space_bits (Document.text doc) / 8));
    Printf.printf "index/document:  %.2f\n"
      (float_of_int ((Document.tree_space_bits doc / 8)
                     + (Sxsi_text.Text_collection.fm_space_bits (Document.text doc) / 8))
      /. float_of_int file_bytes)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Index a document and report size statistics")
    Term.(const run $ file_arg $ drop_ws $ domains_arg $ backend_arg $ optimize_arg)

let index_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Index file to write (conventionally .sxsi)")
  in
  let run file dw out dom bk prof =
    with_profile prof (fun () ->
        with_domains dom @@ fun pool ->
        let doc =
          Document.of_xml ?pool ?backend:bk ~keep_whitespace:(not dw) (read_file file)
        in
        Document.save doc out;
        Printf.printf "indexed %d nodes, %d texts (%s backend) -> %s\n"
          (Document.node_count doc) (Document.text_count doc) (Document.backend_name doc) out)
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Build the self-index and save it; count/select accept .sxsi files")
    Term.(const run $ file_arg $ drop_ws $ out $ domains_arg $ backend_arg $ profile_flag)

let explain_cmd =
  let query_only =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"Core+ XPath query")
  in
  let run file query opt =
    let doc = load_document ~keep_whitespace:true file in
    let c = Engine.prepare ~optimize:opt doc query in
    print_string (Sxsi_auto.Automaton.to_string (Engine.automaton c));
    (match Sxsi_auto.Optimize.stats (Engine.automaton c) with
    | Some o ->
      Printf.printf "optimizer: states %d -> %d, transitions %d -> %d, %d merged, %d jump sets\n"
        o.Sxsi_auto.Automaton.opt_states_before o.Sxsi_auto.Automaton.opt_states_after
        o.Sxsi_auto.Automaton.opt_trans_before o.Sxsi_auto.Automaton.opt_trans_after
        o.Sxsi_auto.Automaton.opt_merged_states o.Sxsi_auto.Automaton.opt_jump_states
    | None -> print_endline "optimizer: off");
    (match Engine.bottom_up_plan c with
    | Some _ -> print_endline "bottom-up plan: available"
    | None -> print_endline "bottom-up plan: not applicable")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Print the compiled tree automaton for a query ($(b,--optimize=off) shows \
             the raw translation)")
    Term.(const run $ file_arg $ query_only $ optimize_arg)

(* ------------------------------------------------------------------ *)
(* Service front ends: the LOAD/QUERY/COUNT/MATERIALIZE/STATS/EVICT/   *)
(* QUIT protocol over stdin/stdout (repl) or TCP (serve)               *)
(* ------------------------------------------------------------------ *)

let service_options max_doc_mb compiled_cache count_cache no_jump no_memo optimize domains
    backend timeout max_results slow_ms =
  let positive = function Some n when n > 0 -> n | Some _ | None -> 0 in
  {
    Sxsi_service.Service.default_options with
    Sxsi_service.Service.max_doc_bytes =
      (match max_doc_mb with None -> max_int | Some mb -> mb * 1_000_000);
    compiled_cache;
    count_cache;
    enable_jump = not no_jump;
    enable_memo = not no_memo;
    optimize;
    domains = resolve_domains domains;
    backend;
    default_deadline_ms = positive timeout;
    max_results = positive max_results;
    slow_ms = max 0 slow_ms;
  }

let max_doc_mb_arg =
  Arg.(value & opt (some int) None & info [ "max-doc-mb" ] ~docv:"MB"
         ~doc:"Registry byte budget: evict least-recently-used documents beyond this")

let compiled_cache_arg =
  Arg.(value & opt int 256 & info [ "compiled-cache" ] ~docv:"N"
         ~doc:"Compiled-query LRU capacity (0 disables)")

let count_cache_arg =
  Arg.(value & opt int 4096 & info [ "count-cache" ] ~docv:"N"
         ~doc:"Result-count LRU capacity (0 disables)")

let preload_arg =
  Arg.(value & opt_all string [] & info [ "load" ] ~docv:"NAME=FILE"
         ~doc:"Load FILE (.xml or .sxsi) as document NAME before serving (repeatable)")

let flight_recorder_arg =
  Arg.(value & flag & info [ "flight-recorder" ]
         ~doc:"Enable the flight recorder: an always-on, low-overhead span journal \
               covering engine phases, pool scheduling, governance events and the \
               request lifecycle.  Dump it with the DUMP request; convert dumps with \
               $(b,sxsi trace-export)")

let slow_ms_arg =
  Arg.(value & opt int 0 & info [ "slow-ms" ] ~docv:"MS"
         ~doc:"Slow-query threshold: requests slower than MS milliseconds append one \
               JSON line (request, duration, reconstructed spans when the flight \
               recorder is on) to the slow-query log.  0 disables the log")

let slow_log_arg =
  Arg.(value & opt string "sxsi-slow.jsonl" & info [ "slow-log" ] ~docv:"FILE"
         ~doc:"Slow-query log path (JSON lines, appended, size-bounded); only used \
               with a positive $(b,--slow-ms)")

(* The service front ends share the flight-recorder setup: flip the
   journal on and open the slow-log sink when asked. *)
let obs_setup fr slow_ms slow_log_path =
  if fr then Sxsi_obs.Journal.set_enabled true;
  if slow_ms > 0 then Some (Sxsi_obs.Slowlog.create slow_log_path) else None

(* Service front ends can die on setup errors (bad --load spec, port in
   use) after cmdliner validation is over; report them as CLI errors
   rather than uncaught exceptions. *)
let guarded f =
  try f () with
  | Failure msg ->
    Printf.eprintf "sxsi: %s\n%!" msg;
    exit 1
  | Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "sxsi: %s%s: %s\n%!" fn
      (if arg = "" then "" else " " ^ arg)
      (Unix.error_message e);
    exit 1

let preload svc specs =
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | None -> failwith (Printf.sprintf "--load %s: expected NAME=FILE" spec)
      | Some i ->
        let name = String.sub spec 0 i in
        let path = String.sub spec (i + 1) (String.length spec - i - 1) in
        (match
           Sxsi_service.Service.handle svc
             (Sxsi_service.Protocol.Load { name; path })
         with
        | Sxsi_service.Protocol.Err msg -> failwith (spec ^ ": " ^ msg)
        | _ -> Printf.eprintf "loaded %s as %s\n%!" path name))
    specs

let repl_cmd =
  let run max_mb cc kc nj nm opt dom bk timeout maxr fr slow_ms slow_log specs =
    guarded (fun () ->
        let slow_log = obs_setup fr slow_ms slow_log in
        let svc =
          Sxsi_service.Service.create
            ~options:(service_options max_mb cc kc nj nm opt dom bk timeout maxr slow_ms)
            ?slow_log ()
        in
        Fun.protect
          ~finally:(fun () -> Sxsi_service.Service.shutdown svc)
          (fun () ->
            preload svc specs;
            Sxsi_service.Server.session stdin stdout svc))
  in
  Cmd.v
    (Cmd.info "repl"
       ~doc:"Speak the service protocol (LOAD/QUERY/COUNT/MATERIALIZE/STATS/EVICT/QUIT) \
             on stdin/stdout")
    Term.(const run $ max_doc_mb_arg $ compiled_cache_arg $ count_cache_arg $ no_jump
          $ no_memo $ optimize_arg $ domains_arg $ backend_arg $ timeout_arg
          $ max_results_arg $ flight_recorder_arg $ slow_ms_arg $ slow_log_arg
          $ preload_arg)

let serve_cmd =
  let port_arg =
    Arg.(value & opt int 7333 & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"TCP port to listen on (0 picks an ephemeral port)")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
           ~doc:"Fixed number of session worker domains ($(b,--serve-mode=threaded) only)")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Accepted-connection queue bound; beyond it new connections are \
                 refused with an ERR response ($(b,--serve-mode=threaded) only)")
  in
  (* the default mode honors SXSI_SERVE_MODE so the whole test/bench
     matrix can flip front ends without threading a flag everywhere *)
  let default_serve_mode =
    match Sys.getenv_opt "SXSI_SERVE_MODE" with
    | Some "threaded" -> `Threaded
    | Some "evloop" | None | Some _ -> `Evloop
  in
  let serve_mode_arg =
    Arg.(value
         & opt (enum [ ("evloop", `Evloop); ("threaded", `Threaded) ]) default_serve_mode
         & info [ "serve-mode" ] ~docv:"MODE"
             ~doc:"Front end: $(b,evloop) (default; single non-blocking loop domain, \
                   pipelining, single-flight query coalescing, one executor domain \
                   per shard) or $(b,threaded) (blocking accept loop, fixed worker \
                   pool, bounded accept queue).  The default honors the \
                   $(b,SXSI_SERVE_MODE) environment variable")
  in
  let shards_arg =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Shared-nothing shards for $(b,--serve-mode=evloop): documents hash \
                 to one of N independent services, each with its own registry, \
                 caches and executor domain")
  in
  let idle_ms_arg =
    Arg.(value & opt int 0 & info [ "idle-ms" ] ~docv:"MS"
           ~doc:"Close connections idle for MS milliseconds with ERR IDLE \
                 ($(b,--serve-mode=evloop); 0 disables)")
  in
  let profile_hz_arg =
    Arg.(value & opt int Sxsi_prof.Prof.default_hz & info [ "profile-hz" ] ~docv:"HZ"
           ~doc:"Sampling rate of the always-on wall-clock profiler behind the \
                 PROFILE request and $(b,sxsi profile) (default 997; 0 starts \
                 it lazily on the first PROFILE instead)")
  in
  let run host port mode shards idle_ms profile_hz workers queue max_mb cc kc nj nm opt
      dom bk timeout maxr fr slow_ms slow_log specs =
    guarded (fun () ->
        let slow_log = obs_setup fr slow_ms slow_log in
        if profile_hz > 0 then begin
          Sxsi_prof.Prof.configure ~hz:profile_hz ();
          Sxsi_prof.Prof.start ()
        end;
        let options = service_options max_mb cc kc nj nm opt dom bk timeout maxr slow_ms in
        let on_listen p = Printf.eprintf "sxsi: listening on %s:%d\n%!" host p in
        (* with the recorder on, also sample the runtime (GC + ring
           occupancy) in the background and expose it via METRICS *)
        let sampler svc =
          if fr then begin
            let s = Sxsi_obs.Runtime.create () in
            Sxsi_service.Service.register_runtime svc s;
            Sxsi_obs.Runtime.start s;
            Some s
          end
          else None
        in
        match mode with
        | `Threaded ->
          let svc = Sxsi_service.Service.create ~options ?slow_log () in
          let sampler = sampler svc in
          Fun.protect
            ~finally:(fun () ->
              Option.iter Sxsi_obs.Runtime.stop sampler;
              Sxsi_service.Service.shutdown svc)
            (fun () ->
              preload svc specs;
              Sxsi_service.Server.serve ~host ~workers ~queue ~on_listen ~port svc)
        | `Evloop ->
          (* the slow-log sink is owned (and closed) by the primary *)
          let sh =
            Sxsi_service.Shards.create ~shards:(max 1 shards) (fun i ->
                if i = 0 then Sxsi_service.Service.create ~options ?slow_log ()
                else Sxsi_service.Service.create ~options ())
          in
          let sampler = sampler (Sxsi_service.Shards.primary sh) in
          Fun.protect
            ~finally:(fun () ->
              Option.iter Sxsi_obs.Runtime.stop sampler;
              Sxsi_service.Shards.shutdown sh)
            (fun () ->
              List.iter
                (fun spec ->
                  match String.index_opt spec '=' with
                  | None -> failwith (Printf.sprintf "--load %s: expected NAME=FILE" spec)
                  | Some i ->
                    let name = String.sub spec 0 i in
                    preload (Sxsi_service.Shards.for_doc sh name) [ spec ])
                specs;
              Sxsi_service.Ev_server.serve ~host ~idle_ms ~on_listen ~port sh))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the protocol over TCP: an event-driven front end (non-blocking \
             loop, pipelining, single-flight query coalescing, shared-nothing \
             shards) by default, or a fixed pool of worker domains with a bounded \
             accept queue with $(b,--serve-mode=threaded); documents and compiled \
             queries are cached and shared across connections")
    Term.(const run $ host_arg $ port_arg $ serve_mode_arg $ shards_arg $ idle_ms_arg
          $ profile_hz_arg $ workers_arg $ queue_arg $ max_doc_mb_arg
          $ compiled_cache_arg $ count_cache_arg $ no_jump $ no_memo $ optimize_arg
          $ domains_arg $ backend_arg $ timeout_arg $ max_results_arg
          $ flight_recorder_arg $ slow_ms_arg $ slow_log_arg $ preload_arg)

let profile_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
           ~doc:"Server address")
  in
  let port_arg =
    Arg.(value & opt int 7333 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port")
  in
  let secs_arg =
    Arg.(value & opt int 1 & info [ "seconds" ] ~docv:"S"
           ~doc:"Profiling window in seconds (1..60)")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the JSON report (schema sxsi-prof-v1) instead of the \
                 collapsed-stack text")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (stdout by default).  The default collapsed-stack \
                 (\"folded\") output feeds flamegraph.pl / speedscope directly")
  in
  let run host port secs json out =
    guarded (fun () ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let ic, oc = Unix.open_connection (Unix.ADDR_INET (addr, port)) in
        Fun.protect
          ~finally:(fun () -> try Unix.shutdown_connection ic with Unix.Unix_error _ -> ())
          (fun () ->
            output_string oc (Printf.sprintf "PROFILE %d\n" secs);
            flush oc;
            let next () = try Some (input_line ic) with End_of_file -> None in
            match Sxsi_service.Protocol.read_response next with
            | Error e -> failwith ("profile: " ^ e)
            | Ok (Sxsi_service.Protocol.Err e) -> failwith ("server: " ^ e)
            | Ok (Sxsi_service.Protocol.Data (json_line :: folded)) ->
              let text =
                if json then json_line ^ "\n" else String.concat "\n" folded ^ "\n"
              in
              (match out with
              | None -> print_string text
              | Some path ->
                let och = open_out_bin path in
                Fun.protect
                  ~finally:(fun () -> close_out och)
                  (fun () -> output_string och text))
            | Ok _ -> failwith "profile: unexpected response"))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Attach to a running $(b,sxsi serve) and capture a sampling profile: \
             send PROFILE, wait out the window, and write the collapsed-stack \
             output ($(b,--json) for the full report with allocation and \
             lock-contention attribution)")
    Term.(const run $ host_arg $ port_arg $ secs_arg $ json_flag $ out)

let trace_export_cmd =
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DUMP"
           ~doc:"A flight-recorder dump: the DUMP request's JSON payload \
                 (schema sxsi-journal-v1), or a raw protocol capture of it \
                 (DATA framing is stripped)")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (stdout by default)")
  in
  (* Accept either the bare JSON line or a captured DATA response
     (leading "DATA", dot-stuffed payload, terminating "."). *)
  let strip_framing text =
    match String.split_on_char '\n' (String.trim text) with
    | "DATA" :: rest ->
      let unstuff l =
        if String.length l > 0 && l.[0] = '.' then String.sub l 1 (String.length l - 1)
        else l
      in
      rest
      |> List.filter (fun l -> l <> ".")
      |> List.map unstuff
      |> String.concat "\n"
    | _ -> String.trim text
  in
  let run input out =
    guarded (fun () ->
        let text =
          let ic = open_in_bin input in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let snaps =
          match Sxsi_obs.Json.of_string (strip_framing text) with
          | Error e -> failwith (Printf.sprintf "%s: not JSON: %s" input e)
          | Ok j -> begin
            match Sxsi_obs.Journal.of_json j with
            | Error e -> failwith (Printf.sprintf "%s: not a journal dump: %s" input e)
            | Ok snaps -> snaps
          end
        in
        let trace = Sxsi_obs.Json.to_string (Sxsi_obs.Journal.to_chrome_trace snaps) in
        match out with
        | None ->
          print_string trace;
          print_newline ()
        | Some path ->
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc trace;
              output_char oc '\n'))
  in
  Cmd.v
    (Cmd.info "trace-export"
       ~doc:"Convert a flight-recorder dump (the DUMP request's payload) to Chrome \
             trace_event JSON, loadable in Perfetto or chrome://tracing")
    Term.(const run $ input $ out)

let gen_cmd =
  let kind =
    Arg.(required & pos 0 (some (enum
      [ ("xmark", `Xmark); ("medline", `Medline); ("treebank", `Treebank);
        ("wiki", `Wiki); ("bio", `Bio); ("logs", `Logs) ])) None
      & info [] ~docv:"KIND"
          ~doc:"Corpus kind: xmark, medline, treebank, wiki, bio or logs")
  in
  let scale =
    Arg.(value & opt int 1000 & info [ "scale" ] ~docv:"N" ~doc:"Corpus scale")
  in
  let repetition =
    Arg.(value & opt float 0.9 & info [ "repetition" ] ~docv:"R"
           ~doc:"For the $(b,logs) kind: fraction in [0,1] of entries stamped from \
                 fixed structural templates (higher means a more repetitive tree, \
                 which the grammar backend compresses harder)")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (stdout by default)")
  in
  let run kind scale repetition out =
    let xml =
      match kind with
      | `Xmark -> Sxsi_datagen.Xmark.generate ~scale ()
      | `Medline -> Sxsi_datagen.Medline.generate ~citations:scale ()
      | `Treebank -> Sxsi_datagen.Treebank.generate ~sentences:scale ()
      | `Wiki -> Sxsi_datagen.Wiki.generate ~pages:scale ()
      | `Bio -> Sxsi_datagen.Bio.generate ~genes:scale ()
      | `Logs -> Sxsi_datagen.Logs.generate ~repetition ~entries:scale ()
    in
    match out with
    | None -> print_string xml
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc xml)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic benchmark corpus")
    Term.(const run $ kind $ scale $ repetition $ out)

let () =
  (* honor SXSI_FAILPOINTS in every subcommand, not just the service
     front ends (Service.create also calls this; it is idempotent) *)
  Sxsi_qos.Failpoint.init_from_env ();
  let info =
    Cmd.info "sxsi" ~version:"1.0.0"
      ~doc:"Succinct XML Self-Index: in-memory XPath search over compressed indexes"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ count_cmd; select_cmd; stats_cmd; gen_cmd; index_cmd; explain_cmd; repl_cmd;
            serve_cmd; profile_cmd; trace_export_cmd ]))

(** Synthetic Treebank-like parse-tree documents: deep recursive
    structure with many distinct grammatical labels, the workload of
    the T01-T05 queries.  Unlike XMark, almost every label is recursive
    and paths are highly varied, which is what makes these queries
    harder for every engine (§6.5). *)

val generate : ?seed:int -> sentences:int -> unit -> string

let biotypes = [| "protein_coding"; "pseudogene"; "lincRNA"; "miRNA" |]
let statuses = [| "KNOWN"; "NOVEL"; "PUTATIVE" |]

let generate ?(seed = 5) ~genes () =
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create (genes * 4000) in
  let tag name f =
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    Buffer.add_char buf '>';
    f ();
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  in
  let text s = Buffer.add_string buf s in
  (* exon pools are shared across gene families (every 8 genes) and
     each transcript reuses most pool exons, so the same long DNA
     strings recur many times: the repetitiveness the run-length index
     exploits (§6.7) *)
  let family_pool = ref [||] in
  tag "chromosome" (fun () ->
      tag "name" (fun () -> text "5");
      for g = 0 to genes - 1 do
        if g mod 8 = 0 then
          family_pool :=
            Array.init
              (3 + Random.State.int st 3)
              (fun _ -> Words.dna st (200 + Random.State.int st 400));
        let exon_pool = !family_pool in
        tag "gene" (fun () ->
            tag "name" (fun () -> text (Printf.sprintf "ENSG%011d" g));
            tag "strand" (fun () -> text (if Random.State.bool st then "+" else "-"));
            tag "biotype" (fun () -> text biotypes.(Random.State.int st (Array.length biotypes)));
            tag "status" (fun () -> text statuses.(Random.State.int st (Array.length statuses)));
            if Random.State.bool st then
              tag "description" (fun () -> text (Words.sentence st 8));
            tag "promoter" (fun () ->
                (* promoters within a family share a common core too *)
                text exon_pool.(0);
                text (Words.dna st 200));
            tag "sequence" (fun () -> text (String.concat "" (Array.to_list exon_pool)));
            for t = 0 to 2 + Random.State.int st 6 do
              tag "transcript" (fun () ->
                  tag "name" (fun () -> text (Printf.sprintf "ENST%011d" ((g * 10) + t)));
                  tag "start" (fun () -> text (string_of_int (g * 10_000)));
                  tag "end" (fun () -> text (string_of_int ((g * 10_000) + 5_000)));
                  let used =
                    Array.of_list
                      (List.filter
                         (fun _ -> Random.State.int st 4 > 0)
                         (Array.to_list exon_pool))
                  in
                  let used = if Array.length used = 0 then [| exon_pool.(0) |] else used in
                  Array.iteri
                    (fun e seq ->
                      tag "exon" (fun () ->
                          tag "name" (fun () ->
                              text (Printf.sprintf "ENSE%011d" ((g * 100) + e)));
                          tag "start" (fun () -> text (string_of_int e));
                          tag "end" (fun () -> text (string_of_int (e + 1)));
                          tag "sequence" (fun () -> text seq)))
                    used;
                  tag "sequence" (fun () -> text (String.concat "" (Array.to_list used)));
                  if Random.State.bool st then
                    tag "protein" (fun () -> text (Words.sentence st 3)))
            done)
      done);
  Buffer.contents buf

(** Synthetic XMark-like auction documents [62]: the tag inventory and
    structural statistics needed by the XPathMark queries X01-X17 —
    regions with items, recursive [parlist]/[listitem] descriptions
    holding [keyword]/[emph]/[bold] runs, people with optional contact
    sub-elements, and closed auctions with annotations. *)

val generate : ?seed:int -> scale:int -> unit -> string
(** [generate ~scale ()] builds a document with [scale] items (plus
    [scale] people and [scale/2] closed auctions); [scale = 1000] gives
    roughly 1.5 MB of XML. *)

(** Shared vocabulary and sampling utilities for the synthetic
    document generators.  Deterministic given the random state. *)

val vocabulary : string array
(** English-looking word pool; the words the paper's text queries probe
    ("plus", "foot", "blood", "human", ...) are placed at controlled
    Zipf ranks so that pattern frequencies sweep several orders of
    magnitude, as in Tables II/III. *)

val zipf_word : Random.State.t -> string
(** Sample a vocabulary word with a Zipf(1.0) distribution over
    ranks. *)

val sentence : Random.State.t -> int -> string
(** [sentence st n] is [n] Zipf-sampled words joined by spaces. *)

val name : Random.State.t -> string
(** A capitalized surname-like token ("Barton", "Nguyen", ...). *)

val number : Random.State.t -> int -> string
(** A random decimal string below the bound. *)

val dna : Random.State.t -> int -> string
(** A uniform random DNA sequence (A/C/G/T). *)

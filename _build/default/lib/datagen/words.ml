(* The first ranks mirror the frequency ladder probed by Tables II/III:
   function words first (huge counts), then common nouns, then rarer
   domain words, down to hapax-like tokens ("Bakst").  The tail is
   filled with generated filler so the Zipf distribution has mass to
   spread over. *)
let head_words =
  [|
    "a"; "in"; "with"; "from"; "the"; "of"; "and"; "for"; "was"; "were";
    "blood"; "human"; "brain"; "cell"; "cells"; "plus"; "study"; "results";
    "molecule"; "patients"; "levels"; "protein"; "effect"; "treatment";
    "AUSTRALIA"; "morphine"; "immune"; "types"; "various"; "bone"; "marrow";
    "sample"; "foot"; "feet"; "ruminants"; "epididymis"; "clinical"; "dose";
    "response"; "growth"; "tissue"; "liver"; "kidney"; "heart"; "lung";
    "gene"; "expression"; "acid"; "serum"; "plasma"; "rats"; "mice";
    "horse"; "princess"; "board"; "played"; "crude"; "oil"; "dark";
    "gold"; "unique"; "Bakst";
  |]

let vocabulary =
  Array.append head_words
    (Array.init 1500 (fun i ->
         (* pronounceable filler: consonant-vowel syllables *)
         let cons = "bcdfglmnprstv" and vow = "aeiou" in
         let n = 2 + (i mod 3) in
         let buf = Buffer.create 8 in
         let x = ref ((i * 2654435761) land 0x3fffffff) in
         for _ = 1 to n do
           Buffer.add_char buf cons.[!x mod String.length cons];
           x := !x / 13;
           Buffer.add_char buf vow.[!x mod String.length vow];
           x := !x / 7;
           if !x < 100 then x := !x + (i * 31) + 7919
         done;
         Buffer.contents buf))

(* Zipf over ranks via the inverse-power trick: rank ~ u^{-1/(s-1)}
   style; we use the simple rejection-free approximation
   rank = floor(N^u) which gives a log-uniform (Zipf-1-like) skew. *)
let zipf_word st =
  let n = Array.length vocabulary in
  let u = Random.State.float st 1.0 in
  let rank = int_of_float (float_of_int n ** u) - 1 in
  vocabulary.(min (n - 1) (max 0 rank))

let sentence st n =
  let buf = Buffer.create (n * 6) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (zipf_word st)
  done;
  Buffer.contents buf

let surnames =
  [|
    "Barton"; "Barnes"; "Barker"; "Nguyen"; "Smith"; "Jones"; "Garcia";
    "Miller"; "Davis"; "Martinez"; "Lopez"; "Wilson"; "Anderson"; "Thomas";
    "Taylor"; "Moore"; "Jackson"; "Martin"; "Lee"; "Thompson"; "White";
    "Harris"; "Clark"; "Lewis"; "Young"; "Walker"; "Hall"; "Allen"; "King";
    "Wright"; "Scott"; "Green"; "Baker"; "Adams"; "Nelson"; "Hill"; "Campbell";
  |]

let name st = surnames.(Random.State.int st (Array.length surnames))

let number st bound = string_of_int (Random.State.int st bound)

let dna st n = String.init n (fun _ -> "ACGT".[Random.State.int st 4])

let countries =
  [| "USA"; "ENGLAND"; "AUSTRALIA"; "GERMANY"; "JAPAN"; "FRANCE"; "CANADA" |]

let stock_phrases =
  [|
    "various types of immune cells";
    "of the bone marrow";
    "a blood sample was taken";
    "the results suggest that";
  |]

let publication_types =
  [| "Journal Article"; "Review Article"; "Letter"; "Comparative Study"; "Editorial" |]

let generate ?(seed = 7) ~citations () =
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create (citations * 1000) in
  let tag name f =
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    Buffer.add_char buf '>';
    f ();
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  in
  let text s = Buffer.add_string buf s in
  tag "MedlineCitationSet" (fun () ->
      for i = 0 to citations - 1 do
        tag "MedlineCitation" (fun () ->
            tag "PMID" (fun () -> text (string_of_int (10_000_000 + i)));
            tag "DateCreated" (fun () ->
                tag "Year" (fun () -> text (string_of_int (1990 + Random.State.int st 20)));
                tag "Month" (fun () -> text (string_of_int (1 + Random.State.int st 12)));
                tag "Day" (fun () -> text (string_of_int (1 + Random.State.int st 28))));
            tag "Article" (fun () ->
                tag "ArticleTitle" (fun () -> text (Words.sentence st (5 + Random.State.int st 8)));
                tag "Abstract" (fun () ->
                    tag "AbstractText" (fun () ->
                        text (Words.sentence st (20 + Random.State.int st 60));
                        if Random.State.int st 4 = 0 then begin
                          text " ";
                          text stock_phrases.(Random.State.int st (Array.length stock_phrases));
                          text " "
                        end;
                        text (Words.sentence st (20 + Random.State.int st 60))));
                tag "AuthorList" (fun () ->
                    for _ = 1 to 1 + Random.State.int st 5 do
                      tag "Author" (fun () ->
                          tag "LastName" (fun () -> text (Words.name st));
                          tag "ForeName" (fun () -> text (Words.name st));
                          tag "Initials" (fun () ->
                              text (String.make 1 (Char.chr (65 + Random.State.int st 26)))))
                    done);
                tag "PublicationTypeList" (fun () ->
                    tag "PublicationType" (fun () ->
                        text publication_types.(Random.State.int st (Array.length publication_types)))));
            tag "MedlineJournalInfo" (fun () ->
                tag "Country" (fun () ->
                    text countries.(Random.State.int st (Array.length countries)));
                tag "MedlineTA" (fun () -> text (Words.sentence st 2))))
      done);
  Buffer.contents buf

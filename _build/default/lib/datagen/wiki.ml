let stock_phrases =
  [|
    "a dark horse candidate";
    "played on a board of squares";
    "whether accidentally or purposefully";
    "the price of crude oil";
  |]

let generate ?(seed = 99) ~pages () =
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create (pages * 900) in
  let tag name f =
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    Buffer.add_char buf '>';
    f ();
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  in
  tag "mediawiki" (fun () ->
      for i = 0 to pages - 1 do
        tag "page" (fun () ->
            tag "title" (fun () -> Buffer.add_string buf (Words.sentence st 2));
            tag "id" (fun () -> Buffer.add_string buf (string_of_int i));
            tag "revision" (fun () ->
                tag "timestamp" (fun () ->
                    Buffer.add_string buf
                      (Printf.sprintf "2010-%02d-%02dT00:00:00Z"
                         (1 + Random.State.int st 12)
                         (1 + Random.State.int st 28)));
                tag "text" (fun () ->
                    Buffer.add_string buf
                      (Words.sentence st (25 + Random.State.int st 100));
                    if Random.State.int st 5 = 0 then begin
                      Buffer.add_char buf ' ';
                      Buffer.add_string buf
                        stock_phrases.(Random.State.int st (Array.length stock_phrases));
                      Buffer.add_char buf ' '
                    end;
                    Buffer.add_string buf
                      (Words.sentence st (25 + Random.State.int st 100)))))
      done);
  Buffer.contents buf

let regions =
  [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let generate ?(seed = 42) ~scale () =
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create (scale * 1500) in
  let tag name f =
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    Buffer.add_char buf '>';
    f ();
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  in
  let tag_attr name attrs f =
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter
      (fun (a, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" a v))
      attrs;
    Buffer.add_char buf '>';
    f ();
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  in
  let text s = Buffer.add_string buf s in
  let words n = text (Words.sentence st n) in
  (* the recursive description structure driving X04/X10/X11 *)
  let rec parlist depth =
    tag "parlist" (fun () ->
        for _ = 1 to 1 + Random.State.int st 3 do
          listitem depth
        done)
  and listitem depth =
    tag "listitem" (fun () ->
        match Random.State.int st 10 with
        | 0 | 1 when depth < 3 -> parlist (depth + 1)
        | 2 | 3 | 4 ->
          tag "text" (fun () ->
              words 4;
              if Random.State.bool st then tag "keyword" (fun () ->
                  words 1;
                  if Random.State.int st 3 = 0 then tag "emph" (fun () -> words 1);
                  if Random.State.int st 4 = 0 then tag "bold" (fun () -> words 1));
              words 3)
        | _ ->
          tag "text" (fun () ->
              words 3;
              if Random.State.int st 3 = 0 then tag "emph" (fun () -> words 1);
              if Random.State.int st 4 = 0 then tag "bold" (fun () -> words 1)))
  in
  let description () =
    tag "description" (fun () ->
        if Random.State.int st 3 = 0 then parlist 0
        else
          tag "text" (fun () ->
              words (3 + Random.State.int st 5);
              if Random.State.int st 3 = 0 then tag "keyword" (fun () -> words 1);
              words 2))
  in
  let item id =
    tag_attr "item" [ ("id", Printf.sprintf "item%d" id) ] (fun () ->
        tag "location" (fun () -> words 1);
        tag "quantity" (fun () -> text (Words.number st 10));
        tag "name" (fun () -> words 2);
        tag "payment" (fun () -> words 2);
        description ();
        tag "shipping" (fun () -> words 3);
        tag "incategory" (fun () -> ());
        tag "mailbox" (fun () ->
            for _ = 1 to Random.State.int st 3 do
              tag "mail" (fun () ->
                  tag "from" (fun () -> words 2);
                  tag "to" (fun () -> words 2);
                  tag "date" (fun () -> text (Words.number st 28));
                  tag "text" (fun () -> words 6))
            done))
  in
  let person id =
    tag_attr "person" [ ("id", Printf.sprintf "person%d" id) ] (fun () ->
        tag "name" (fun () -> text (Words.name st ^ " " ^ Words.name st));
        tag "emailaddress" (fun () -> text (Printf.sprintf "mailto:p%d@example.org" id));
        if Random.State.int st 3 > 0 then tag "phone" (fun () -> text ("+" ^ Words.number st 999999));
        if Random.State.int st 2 = 0 then
          tag "address" (fun () ->
              tag "street" (fun () -> words 2);
              tag "city" (fun () -> words 1);
              tag "country" (fun () -> words 1);
              tag "zipcode" (fun () -> text (Words.number st 99999)));
        if Random.State.int st 3 = 0 then tag "homepage" (fun () -> text "http://example.org");
        if Random.State.int st 3 > 0 then tag "creditcard" (fun () -> text (Words.number st 9999));
        if Random.State.int st 2 = 0 then
          tag_attr "profile" [ ("income", Words.number st 99999) ] (fun () ->
              if Random.State.bool st then tag "gender" (fun () -> text (if Random.State.bool st then "male" else "female"));
              if Random.State.bool st then tag "age" (fun () -> text (Words.number st 80));
              tag "education" (fun () -> words 1);
              tag "interest" (fun () -> ()));
        if Random.State.int st 4 = 0 then
          tag "watches" (fun () ->
              tag "watch" (fun () -> ())))
  in
  let closed_auction id =
    tag "closed_auction" (fun () ->
        tag_attr "seller" [ ("person", Printf.sprintf "person%d" (Random.State.int st scale)) ] (fun () -> ());
        tag_attr "buyer" [ ("person", Printf.sprintf "person%d" (Random.State.int st scale)) ] (fun () -> ());
        tag_attr "itemref" [ ("item", Printf.sprintf "item%d" (Random.State.int st scale)) ] (fun () -> ());
        tag "price" (fun () -> text (Words.number st 1000));
        tag "date" (fun () -> text (Printf.sprintf "%02d/%02d/%d" (1 + Random.State.int st 12) (1 + Random.State.int st 28) (1998 + Random.State.int st 4)));
        tag "quantity" (fun () -> text (Words.number st 5));
        tag "type" (fun () -> text "Regular");
        tag "annotation" (fun () ->
            tag "author" (fun () -> ());
            description ();
            tag "happiness" (fun () -> text (Words.number st 10)));
        ignore id)
  in
  tag "site" (fun () ->
      tag "regions" (fun () ->
          Array.iteri
            (fun r rname ->
              tag rname (fun () ->
                  let per_region = max 1 (scale / Array.length regions) in
                  for i = 0 to per_region - 1 do
                    item ((r * per_region) + i)
                  done))
            regions);
      tag "categories" (fun () ->
          for _ = 1 to max 1 (scale / 20) do
            tag "category" (fun () ->
                tag "name" (fun () -> words 1);
                description ())
          done);
      tag "people" (fun () ->
          for i = 0 to scale - 1 do
            person i
          done);
      tag "open_auctions" (fun () ->
          for _ = 1 to scale / 4 do
            tag "open_auction" (fun () ->
                tag "initial" (fun () -> text (Words.number st 100));
                tag "current" (fun () -> text (Words.number st 500));
                tag "annotation" (fun () -> description ()))
          done);
      tag "closed_auctions" (fun () ->
          for i = 0 to (scale / 2) - 1 do
            closed_auction i
          done));
  Buffer.contents buf

(* A tiny probabilistic grammar over Penn-Treebank-style labels.  The
   exact distribution is unimportant; what matters for the benchmark is
   depth, label recursion and label variety. *)

let nouns = [| "NN"; "NNS"; "NNP" |]
let verbs = [| "VBZ"; "VBD"; "VBN"; "VB" |]

let generate ?(seed = 13) ~sentences () =
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create (sentences * 700) in
  let tag name f =
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    Buffer.add_char buf '>';
    f ();
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  in
  let word () = Buffer.add_string buf (Words.zipf_word st) in
  let pick a = a.(Random.State.int st (Array.length a)) in
  let rec np depth =
    tag "NP" (fun () ->
        if Random.State.int st 4 = 0 then tag "DT" word;
        if Random.State.int st 3 = 0 then tag "JJ" word;
        tag (pick nouns) word;
        if depth < 5 && Random.State.int st 4 = 0 then pp (depth + 1);
        if depth < 5 && Random.State.int st 6 = 0 then begin
          tag "CC" word;
          np (depth + 1)
        end;
        if Random.State.int st 12 = 0 then tag "_QUOTE_" word)
  and pp depth =
    tag "PP" (fun () ->
        tag "IN" word;
        np (depth + 1))
  and vp depth =
    tag "VP" (fun () ->
        tag (pick verbs) word;
        if depth < 5 then begin
          match Random.State.int st 4 with
          | 0 -> np (depth + 1)
          | 1 -> pp (depth + 1)
          | 2 ->
            np (depth + 1);
            pp (depth + 1)
          | _ -> sbar (depth + 1)
        end)
  and sbar depth =
    if depth < 6 && Random.State.int st 3 = 0 then
      tag "SBAR" (fun () ->
          tag "IN" word;
          s (depth + 1))
    else np depth
  and s depth =
    tag "S" (fun () ->
        np (depth + 1);
        vp (depth + 1);
        if Random.State.int st 8 = 0 then begin
          tag "CC" word;
          s (depth + 1)
        end)
  in
  tag "FILE" (fun () ->
      for _ = 1 to sentences do
        tag "EMPTY" (fun () -> s 0)
      done);
  Buffer.contents buf

(** Synthetic wiki-like documents ([page]/[title]/[text]) for the
    word-based-index experiments of §6.6.2 (queries W06-W10). *)

val generate : ?seed:int -> pages:int -> unit -> string

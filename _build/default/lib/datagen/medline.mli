(** Synthetic Medline-like bibliographic documents: flat citation
    records with Zipf-distributed abstract vocabulary, the workload of
    the Table II/III text-search sweeps and the M01-M11 queries. *)

val generate : ?seed:int -> citations:int -> unit -> string
(** [generate ~citations ()] — roughly 1 KB of XML per citation. *)

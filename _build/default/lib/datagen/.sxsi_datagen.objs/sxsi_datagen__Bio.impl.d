lib/datagen/bio.ml: Array Buffer List Printf Random String Words

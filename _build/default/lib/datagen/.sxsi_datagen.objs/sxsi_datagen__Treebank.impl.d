lib/datagen/treebank.ml: Array Buffer Random Words

lib/datagen/wiki.mli:

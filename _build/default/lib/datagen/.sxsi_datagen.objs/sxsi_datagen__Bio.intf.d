lib/datagen/bio.mli:

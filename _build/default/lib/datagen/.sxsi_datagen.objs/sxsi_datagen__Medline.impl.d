lib/datagen/medline.ml: Array Buffer Char Random String Words

lib/datagen/wiki.ml: Array Buffer Printf Random Words

lib/datagen/xmark.mli:

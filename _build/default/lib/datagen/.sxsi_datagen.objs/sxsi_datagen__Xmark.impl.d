lib/datagen/xmark.ml: Array Buffer List Printf Random Words

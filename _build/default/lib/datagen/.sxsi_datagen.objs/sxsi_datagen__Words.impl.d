lib/datagen/words.ml: Array Buffer Random String

lib/datagen/treebank.mli:

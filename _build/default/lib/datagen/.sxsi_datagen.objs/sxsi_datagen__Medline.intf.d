lib/datagen/medline.mli:

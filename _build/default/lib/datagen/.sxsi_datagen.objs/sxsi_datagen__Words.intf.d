lib/datagen/words.mli: Random

(** Synthetic gene-annotation documents following the Figure 17 DTD:
    chromosomes with genes carrying promoter and full sequences, and
    transcripts assembled from a shared exon pool — so the textual
    content is highly repetitive, the property the run-length
    compressed text index of §6.7 exploits. *)

val generate : ?seed:int -> genes:int -> unit -> string

lib/wordindex/word_index.mli:

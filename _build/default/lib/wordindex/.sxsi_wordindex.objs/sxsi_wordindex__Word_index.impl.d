lib/wordindex/word_index.ml: Array Hashtbl List Sais String Sxsi_fm

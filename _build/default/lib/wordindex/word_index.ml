open Sxsi_fm

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let tokenize s =
  let toks = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if is_word_char s.[!i] then begin
      let start = !i in
      while !i < n && is_word_char s.[!i] do
        incr i
      done;
      toks := String.sub s start (!i - start) :: !toks
    end
    else incr i
  done;
  List.rev !toks

(* token sequence symbols: 0 = SA-IS sentinel, 1 = text separator,
   word ids from 2 *)
type t = {
  d : int;
  seq : int array;         (* token stream with separators, no sentinel *)
  sa : int array;          (* suffix array of seq + sentinel *)
  starts : int array;      (* offset of each text's first token in seq *)
  vocab : (string, int) Hashtbl.t;
  words : int;             (* distinct words *)
  tokens : int;            (* total tokens *)
}

let build texts =
  let vocab = Hashtbl.create 1024 in
  let next = ref 2 in
  let intern w =
    match Hashtbl.find_opt vocab w with
    | Some id -> id
    | None ->
      let id = !next in
      incr next;
      Hashtbl.add vocab w id;
      id
  in
  let d = Array.length texts in
  let starts = Array.make d 0 in
  let seq = ref [] and len = ref 0 and tokens = ref 0 in
  Array.iteri
    (fun i s ->
      starts.(i) <- !len;
      List.iter
        (fun w ->
          seq := intern w :: !seq;
          incr len;
          incr tokens)
        (tokenize s);
      seq := 1 :: !seq;
      incr len)
    texts;
  let seq_arr = Array.make !len 0 in
  List.iteri (fun i v -> seq_arr.(!len - 1 - i) <- v) !seq;
  let with_sentinel = Array.append seq_arr [| 0 |] in
  let sa = Sais.suffix_array with_sentinel !next in
  {
    d;
    seq = seq_arr;
    sa;
    starts;
    vocab;
    words = !next - 2;
    tokens = !tokens;
  }

let doc_count t = t.d
let distinct_words t = t.words
let token_count t = t.tokens

(* compare the suffix at seq position [p] with the query ids:
   -1 / 0 / 1 as the suffix is below / prefixed-by / above the query *)
let compare_suffix t p (q : int array) =
  let n = Array.length t.seq and m = Array.length q in
  let rec go k =
    if k = m then 0
    else if p + k >= n then -1
    else begin
      let c = compare t.seq.(p + k) q.(k) in
      if c <> 0 then c else go (k + 1)
    end
  in
  go 0

let sa_range t q =
  (* t.sa indexes seq+sentinel; position [length seq] is the sentinel *)
  let n = Array.length t.sa in
  (* lower bound: first suffix >= q *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_suffix t t.sa.(mid) q < 0 then lo := mid + 1 else hi := mid
  done;
  let first = !lo in
  let lo = ref first and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_suffix t t.sa.(mid) q <= 0 then lo := mid + 1 else hi := mid
  done;
  (first, !lo)

let ids_of_phrase t phrase =
  let toks = tokenize phrase in
  if toks = [] then None
  else begin
    let rec map acc = function
      | [] -> Some (Array.of_list (List.rev acc))
      | w :: tl -> begin
        match Hashtbl.find_opt t.vocab w with
        | Some id -> map (id :: acc) tl
        | None -> None
      end
    in
    map [] toks
  end

let text_of_pos t pos =
  (* last start <= pos *)
  let lo = ref 0 and hi = ref (t.d - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.starts.(mid) <= pos then lo := mid else hi := mid - 1
  done;
  !lo

let phrase_occurrences t phrase =
  match ids_of_phrase t phrase with
  | None -> 0
  | Some q ->
    let sp, ep = sa_range t q in
    ep - sp

let contains_phrase t phrase =
  match ids_of_phrase t phrase with
  | None -> []
  | Some q ->
    let sp, ep = sa_range t q in
    let ids = ref [] in
    for k = sp to ep - 1 do
      ids := text_of_pos t t.sa.(k) :: !ids
    done;
    List.sort_uniq compare !ids

let contains_phrase_count t phrase = List.length (contains_phrase t phrase)

let matches_text _t phrase s =
  let p = tokenize phrase and w = tokenize s in
  match p with
  | [] -> false
  | _ ->
    let pa = Array.of_list p and wa = Array.of_list w in
    let m = Array.length pa and n = Array.length wa in
    let rec at i k = k = m || (wa.(i + k) = pa.(k) && at i (k + 1)) in
    let rec go i = i + m <= n && (at i 0 || go (i + 1)) in
    go 0

let space_bits t =
  64 * (Array.length t.seq + Array.length t.sa + Array.length t.starts)
  + (t.words * 128)

(** Word-based text index (§6.6.2, after Fariña et al. [20]): the text
    collection is tokenized and viewed as a sequence over the (large)
    alphabet of distinct words; a suffix array over that sequence
    answers word and phrase queries at word granularity, much faster
    and smaller than the character-level FM-index — at the price of
    matching only on word boundaries.

    Tokens are maximal runs of letters and digits; matching is exact
    (case-sensitive). *)

type t

val build : string array -> t
(** Index a collection of texts (the texts of a document, in id
    order). *)

val doc_count : t -> int
val distinct_words : t -> int
val token_count : t -> int

val contains_phrase : t -> string -> int list
(** Identifiers of the texts containing the query as a contiguous
    word sequence, sorted and duplicate-free.  An empty or
    unknown-word query matches nothing. *)

val contains_phrase_count : t -> string -> int
val phrase_occurrences : t -> string -> int
(** Total number of occurrences across the collection. *)

val matches_text : t -> string -> string -> bool
(** [matches_text t phrase s]: does the plain string [s] contain the
    phrase at word granularity?  (The engine's fallback for nodes whose
    value spans several texts.) *)

val space_bits : t -> int

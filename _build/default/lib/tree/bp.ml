open Sxsi_bits

(* Range-min-max tree over blocks of [block_bits] parentheses.  For
   every block we know the absolute excess reached at any point inside
   it (min/max); fwd/bwd searches scan the local block and otherwise
   climb the implicit binary heap to the nearest block whose
   [min, max] interval contains the target, which must hold the target
   because excess moves in ±1 steps.

   Scans proceed byte-wise over a parallel byte-packed copy of the
   parentheses, with 256-entry lookup tables answering "does this byte
   reach relative excess r, and where" — the practical acceleration of
   Arroyuelo et al. [3]. *)

let block_bits = 256

type t = {
  bits : Bitvec.t;          (* for rank/select (preorders) *)
  bytes : Bytes.t;          (* same sequence, 8 parens per byte, LSB first *)
  n : int;
  nblocks : int;
  leaves : int;             (* heap leaf count: power of two >= nblocks *)
  hmin : int array;         (* heap node -> min absolute excess in range *)
  hmax : int array;
  bstart : int array;       (* absolute excess before each block *)
}

let delta bit = if bit then 1 else -1

(* ------------------------------------------------------------------ *)
(* Byte tables                                                          *)
(* ------------------------------------------------------------------ *)

(* tdelta.(b): excess contribution of the 8 parens in byte b.
   fwd_reach.(b*17 + r + 8): smallest o in 0..7 such that the prefix
   b[0..o] reaches relative excess r (in -8..8), or 8 if none.
   bwd_reach.(b*17 + r + 8): largest k in 1..8 such that the suffix
   b[k..7] has excess sum r, or 0 if none (so position k-1 has
   "excess before suffix" = e_end - r). *)
let tdelta = Array.make 256 0
let fwd_reach = Bytes.make (256 * 17) '\008'
let bwd_reach = Bytes.make (256 * 17) '\255'

let () =
  for b = 0 to 255 do
    let e = ref 0 in
    for o = 0 to 7 do
      e := !e + delta ((b lsr o) land 1 = 1);
      let idx = (b * 17) + !e + 8 in
      if Bytes.get fwd_reach idx = '\008' then
        Bytes.set fwd_reach idx (Char.chr o)
    done;
    tdelta.(b) <- !e;
    (* suffix sums: d(k) = excess of bits k..7, k in 1..8 (d(8) = 0) *)
    let d = ref 0 in
    Bytes.set bwd_reach ((b * 17) + 8) '\008';   (* k = 8, r = 0 *)
    for k = 7 downto 1 do
      d := !d + delta ((b lsr k) land 1 = 1);
      let idx = (b * 17) + !d + 8 in
      if Bytes.get bwd_reach idx = '\255' then Bytes.set bwd_reach idx (Char.chr k)
    done
  done

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let build bits =
  let n = Bitvec.length bits in
  let nbytes = (n + 7) / 8 in
  let bytes = Bytes.make (max 1 nbytes) '\000' in
  for i = 0 to n - 1 do
    if Bitvec.get bits i then begin
      let b = i / 8 in
      Bytes.unsafe_set bytes b
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get bytes b) lor (1 lsl (i mod 8))))
    end
  done;
  let nblocks = max 1 ((n + block_bits - 1) / block_bits) in
  let leaves =
    let rec go l = if l >= nblocks then l else go (2 * l) in
    go 1
  in
  let hmin = Array.make (2 * leaves) max_int in
  let hmax = Array.make (2 * leaves) min_int in
  let bstart = Array.make (nblocks + 1) 0 in
  let e = ref 0 in
  for b = 0 to nblocks - 1 do
    bstart.(b) <- !e;
    let lo = b * block_bits and hi = min n ((b + 1) * block_bits) in
    let mn = ref max_int and mx = ref min_int in
    for i = lo to hi - 1 do
      e := !e + delta (Bitvec.get bits i);
      if !e < !mn then mn := !e;
      if !e > !mx then mx := !e
    done;
    hmin.(leaves + b) <- !mn;
    hmax.(leaves + b) <- !mx
  done;
  bstart.(nblocks) <- !e;
  for node = leaves - 1 downto 1 do
    hmin.(node) <- min hmin.(2 * node) hmin.(2 * node + 1);
    hmax.(node) <- max hmax.(2 * node) hmax.(2 * node + 1)
  done;
  { bits; bytes; n; nblocks; leaves; hmin; hmax; bstart }

module Builder = struct
  type bp = t

  type t = {
    b : Bitvec.Builder.t;
    mutable excess : int;
  }

  let create ?hint () = { b = Bitvec.Builder.create ?hint (); excess = 0 }

  let open_node t =
    Bitvec.Builder.push t.b true;
    t.excess <- t.excess + 1

  let close_node t =
    if t.excess <= 0 then invalid_arg "Bp.Builder.close_node: unbalanced";
    Bitvec.Builder.push t.b false;
    t.excess <- t.excess - 1

  let finish t : bp =
    if t.excess <> 0 then invalid_arg "Bp.Builder.finish: unbalanced";
    build (Bitvec.Builder.finish t.b)
end

let of_bools a =
  let b = Builder.create ~hint:(Array.length a) () in
  Array.iter (fun bit -> if bit then Builder.open_node b else Builder.close_node b) a;
  Builder.finish b

let length t = t.n
let node_count t = Bitvec.count t.bits

let is_open t i =
  Char.code (Bytes.unsafe_get t.bytes (i lsr 3)) land (1 lsl (i land 7)) <> 0

let excess t i = (2 * Bitvec.rank1 t.bits (i + 1)) - (i + 1)

let contains t node v = t.hmin.(node) <= v && v <= t.hmax.(node)

(* Forward scan of positions [j0, j1) for absolute excess [v];
   [e] = excess before j0.  Returns the position or -1, and leaves the
   running excess in [eref]. *)
let scan_fwd t j0 j1 e v =
  let eref = ref e and res = ref (-1) in
  let j = ref j0 in
  (try
     while !j < j1 do
       let byte_i = !j lsr 3 and off = !j land 7 in
       if off = 0 && !j + 8 <= j1 then begin
         (* whole byte *)
         let b = Char.code (Bytes.unsafe_get t.bytes byte_i) in
         let r = v - !eref in
         if r >= -8 && r <= 8 then begin
           let hit = Char.code (Bytes.unsafe_get fwd_reach ((b * 17) + r + 8)) in
           if hit < 8 then begin
             res := !j + hit;
             raise Exit
           end
         end;
         eref := !eref + tdelta.(b);
         j := !j + 8
       end
       else begin
         let b = Char.code (Bytes.unsafe_get t.bytes byte_i) in
         eref := !eref + delta ((b lsr off) land 1 = 1);
         if !eref = v then begin
           res := !j;
           raise Exit
         end;
         incr j
       end
     done
   with Exit -> ());
  (!res, !eref)

(* Backward scan of positions (j1, j0] going down (j0 >= j1), looking
   for the largest position with absolute excess [v]; [e] = excess at
   position j0.  Position j1 - 1 is not examined. *)
let scan_bwd t j0 j1 e v =
  let eref = ref e and res = ref min_int in
  let j = ref j0 in
  (try
     while !j >= j1 do
       let off = !j land 7 in
       if off = 7 && !j - 8 >= j1 - 1 then begin
         (* whole byte: positions j-7 .. j; excess at j is !eref *)
         let b = Char.code (Bytes.unsafe_get t.bytes (!j lsr 3)) in
         let r = !eref - v in
         if r >= -8 && r <= 8 then begin
           let k = Char.code (Bytes.unsafe_get bwd_reach ((b * 17) + r + 8)) in
           if k <> 255 then begin
             (* position within byte = k - 1; byte base = j - 7 *)
             res := !j - 7 + k - 1;
             raise Exit
           end
         end;
         eref := !eref - tdelta.(b);
         j := !j - 8
       end
       else begin
         if !eref = v then begin
           res := !j;
           raise Exit
         end;
         let b = Char.code (Bytes.unsafe_get t.bytes (!j lsr 3)) in
         eref := !eref - delta ((b lsr off) land 1 = 1);
         decr j
       end
     done
   with Exit -> ());
  (!res, !eref)

(* Smallest j > i with excess(j) = v, or -1. *)
let fwd t i v =
  let e = if i < 0 then 0 else excess t i in
  let blk = (i + 1) / block_bits in
  let hi = min t.n ((blk + 1) * block_bits) in
  let local, _ = scan_fwd t (i + 1) hi e v in
  if local >= 0 then local
  else begin
    (* climb: find the nearest block to the right containing v *)
    let node = ref (t.leaves + blk) in
    let found = ref (-1) in
    while !found < 0 && !node > 1 do
      if !node land 1 = 0 && contains t (!node + 1) v then found := !node + 1
      else node := !node / 2
    done;
    if !found < 0 then -1
    else begin
      (* descend to the leftmost leaf containing v *)
      let node = ref !found in
      while !node < t.leaves do
        if contains t (2 * !node) v then node := 2 * !node else node := (2 * !node) + 1
      done;
      let b = !node - t.leaves in
      let lo = b * block_bits and hi = min t.n ((b + 1) * block_bits) in
      let res, _ = scan_fwd t lo hi t.bstart.(b) v in
      res
    end
  end

(* Largest j < i with excess(j) = v; the answer can be the virtual
   position -1 (excess 0), or [min_int] for "none". *)
let bwd t i v =
  let blk = if i <= 0 then 0 else (i - 1) / block_bits in
  let lo = blk * block_bits in
  let e = excess t (i - 1) in
  let local, _ = scan_bwd t (i - 1) lo e v in
  if local > min_int then local
  else if lo = 0 && v = 0 then -1
  else begin
    (* climb: nearest block to the left containing v *)
    let node = ref (t.leaves + blk) in
    let found = ref (-1) in
    while !found < 0 && !node > 1 do
      if !node land 1 = 1 && contains t (!node - 1) v then found := !node - 1
      else node := !node / 2
    done;
    if !found < 0 then (if v = 0 then -1 else min_int)
    else begin
      (* descend to the rightmost leaf containing v *)
      let node = ref !found in
      while !node < t.leaves do
        if contains t ((2 * !node) + 1) v then node := (2 * !node) + 1
        else node := 2 * !node
      done;
      let b = !node - t.leaves in
      let lo = b * block_bits and hi = min t.n ((b + 1) * block_bits) in
      (* excess at position hi-1 = bstart of next block when the block is
         full; recompute by scanning forward once (cheap, happens only on
         the final block of the search) *)
      let e_end =
        if hi = (b + 1) * block_bits && b + 1 <= t.nblocks then t.bstart.(b + 1)
        else begin
          let e = ref t.bstart.(b) in
          for j = lo to hi - 1 do
            e := !e + delta (is_open t j)
          done;
          !e
        end
      in
      let res, _ = scan_bwd t (hi - 1) lo e_end v in
      res
    end
  end

let close t i =
  if not (is_open t i) then invalid_arg "Bp.close: not an opening parenthesis";
  fwd t i (excess t i - 1)

let open_ t i =
  if is_open t i then invalid_arg "Bp.open_: not a closing parenthesis";
  let p = bwd t i (excess t i) in
  if p = min_int then invalid_arg "Bp.open_: unbalanced" else p + 1

let enclose t i =
  if i = 0 then -1
  else begin
    let p = bwd t i (excess t i - 2) in
    if p = min_int then -1 else p + 1
  end

let root _ = 0
let preorder t i = Bitvec.rank1 t.bits i
let node_of_preorder t p = Bitvec.select1 t.bits p
let subtree_size t i = (close t i - i + 1) / 2
let is_ancestor t x y = x <= y && y <= close t x
let is_leaf t i = i + 1 >= t.n || not (is_open t (i + 1))
let first_child t i = if is_leaf t i then -1 else i + 1

let next_sibling t i =
  let c = close t i in
  if c + 1 < t.n && is_open t (c + 1) then c + 1 else -1

let parent t i = enclose t i
let depth t i = excess t i

let space_bits t =
  Bitvec.space_bits t.bits
  + (8 * Bytes.length t.bytes)
  + ((Array.length t.hmin + Array.length t.hmax + Array.length t.bstart) * 64)
  + 256

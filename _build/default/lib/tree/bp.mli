(** Balanced-parentheses representation of an ordered tree (§4.1.1 of
    the paper, after Sadakane and Navarro).  The sequence is produced by
    a DFS: "(" on arrival, ")" on leaving; a node is identified by the
    position of its opening parenthesis.

    Navigation relies on a range-min-max tree over the excess sequence,
    giving logarithmic worst-case [close]/[open]/[enclose] that behave
    like constant time on real documents (matches are almost always in
    the same 256-bit block). *)

type t

module Builder : sig
  type bp = t
  type t

  val create : ?hint:int -> unit -> t
  val open_node : t -> unit
  val close_node : t -> unit
  val finish : t -> bp
  (** @raise Invalid_argument if the sequence is not balanced. *)
end

val of_bools : bool array -> t
(** [true] is "(" — mostly for tests. *)

val length : t -> int
(** Number of parentheses ([2 n] for [n] nodes). *)

val node_count : t -> int

val is_open : t -> int -> bool
val excess : t -> int -> int
(** Excess after position [i] (depth of the node opened at [i]). *)

val close : t -> int -> int
(** Matching closing parenthesis of the "(" at [i]. *)

val open_ : t -> int -> int
(** Matching opening parenthesis of the ")" at [i]. *)

val enclose : t -> int -> int
(** Opening parenthesis of the parent of the node at [i]; [-1] for the
    root. *)

(** {1 Tree operations (§4.2.1)} *)

val root : t -> int
val preorder : t -> int -> int
(** 0-based preorder (= rank of opening parentheses before [i]). *)

val node_of_preorder : t -> int -> int
val subtree_size : t -> int -> int
val is_ancestor : t -> int -> int -> bool
val is_leaf : t -> int -> bool

val first_child : t -> int -> int
(** [-1] when the node is a leaf. *)

val next_sibling : t -> int -> int
(** [-1] when there is none. *)

val parent : t -> int -> int
(** [-1] for the root. *)

val depth : t -> int -> int

val space_bits : t -> int

(** Relative tag position tables (§5.5.6): for every tag, which tags
    occur in child, descendant, following-sibling and following
    position.  The engine consults them before emitting a jump: a
    [TaggedDesc] towards a tag that never occurs below the current one
    is replaced by an immediate failure. *)

type t

type relation = Child | Descendant | Following_sibling | Following

val make : tag_count:int -> t

val add : t -> relation -> parent:int -> child:int -> unit
(** Record that [child] occurs in the given relation to [parent]
    (builder side, called while parsing). *)

val mem : t -> relation -> int -> int -> bool
(** [mem t rel a b]: can a [b]-tagged node occur in relation [rel] to
    an [a]-tagged node? *)

val can_occur : t -> relation -> int -> (int -> bool) -> bool
(** [can_occur t rel a f]: does some tag [b] with [f b] occur in
    relation [rel] to [a]? *)

val space_bits : t -> int

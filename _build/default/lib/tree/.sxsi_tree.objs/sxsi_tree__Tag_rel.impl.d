lib/tree/tag_rel.ml: Bytes Char

lib/tree/bp.mli:

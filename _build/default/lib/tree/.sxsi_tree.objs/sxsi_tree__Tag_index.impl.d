lib/tree/tag_index.ml: Array Bp Intvec Sparse Sxsi_bits

lib/tree/tag_rel.mli:

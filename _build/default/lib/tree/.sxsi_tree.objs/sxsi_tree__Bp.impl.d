lib/tree/bp.ml: Array Bitvec Bytes Char Sxsi_bits

lib/tree/tag_index.mli: Bp

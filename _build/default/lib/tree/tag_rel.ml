type relation = Child | Descendant | Following_sibling | Following

type t = {
  tcount : int;
  child : Bytes.t;
  desc : Bytes.t;
  fsib : Bytes.t;
  foll : Bytes.t;
}

let make ~tag_count =
  let sz = max 1 ((tag_count * tag_count + 7) / 8) in
  {
    tcount = tag_count;
    child = Bytes.make sz '\000';
    desc = Bytes.make sz '\000';
    fsib = Bytes.make sz '\000';
    foll = Bytes.make sz '\000';
  }

let table t = function
  | Child -> t.child
  | Descendant -> t.desc
  | Following_sibling -> t.fsib
  | Following -> t.foll

let add t rel ~parent ~child =
  if parent < 0 || parent >= t.tcount || child < 0 || child >= t.tcount then
    invalid_arg "Tag_rel.add";
  let bit = (parent * t.tcount) + child in
  let tb = table t rel in
  Bytes.set tb (bit / 8)
    (Char.chr (Char.code (Bytes.get tb (bit / 8)) lor (1 lsl (bit mod 8))))

let mem t rel a b =
  if a < 0 || a >= t.tcount || b < 0 || b >= t.tcount then false
  else begin
    let bit = (a * t.tcount) + b in
    Char.code (Bytes.get (table t rel) (bit / 8)) land (1 lsl (bit mod 8)) <> 0
  end

let can_occur t rel a f =
  let rec go b = b < t.tcount && ((f b && mem t rel a b) || go (b + 1)) in
  go 0

let space_bits t = 4 * 8 * Bytes.length t.child

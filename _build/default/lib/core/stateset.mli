(** Hash-consed sets of automaton states (§5.5.1): structurally equal
    sets share one value, and the set [id] keys the engine's
    per-(state-set, label) memo tables (§5.5.2). *)

type t = private {
  id : int;
  states : int array;   (* sorted, duplicate-free *)
}

val of_list : int list -> t
val empty : t
val is_empty : t -> bool
val mem : t -> int -> bool
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val singleton : t -> int option
(** The only element, when [cardinal t = 1]. *)

lib/core/bottom_up.ml: Array Bp Document Hashtbl List Option Run Sxsi_auto Sxsi_tree Sxsi_xml Sxsi_xpath Unix

lib/core/stateset.mli:

lib/core/run.ml: Array Automaton Bp Document Formula Hashtbl List Marks Printf Stateset String Sxsi_auto Sxsi_text Sxsi_tree Sxsi_xml Sxsi_xpath Tag_index

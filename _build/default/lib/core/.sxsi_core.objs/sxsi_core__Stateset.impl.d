lib/core/stateset.ml: Array Hashtbl List

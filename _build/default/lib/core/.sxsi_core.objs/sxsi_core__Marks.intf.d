lib/core/marks.mli: Sxsi_tree

lib/core/engine.ml: Array Automaton Bottom_up Buffer Compile Document Lazy List Marks Run Sxsi_auto Sxsi_text Sxsi_tree Sxsi_xml Sxsi_xpath Tag_index

lib/core/bottom_up.mli: Run Sxsi_auto Sxsi_xml Sxsi_xpath

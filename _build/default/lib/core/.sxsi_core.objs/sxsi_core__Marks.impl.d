lib/core/marks.ml: Array List Sxsi_tree Tag_index

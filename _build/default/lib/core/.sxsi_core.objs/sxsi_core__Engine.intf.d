lib/core/engine.mli: Bottom_up Buffer Run Sxsi_auto Sxsi_xml Sxsi_xpath

lib/core/run.mli: Marks Sxsi_auto Sxsi_tree Sxsi_xml Sxsi_xpath

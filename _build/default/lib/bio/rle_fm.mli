(** Run-length compressed FM-index (a simplified RLCSA [48], §6.7):
    the BWT of a repetitive collection has long runs of equal symbols,
    so storing one wavelet-tree entry per {e run} plus run-boundary
    bitmaps compresses far below the character-level index while still
    supporting counting via backward search. *)

type t

val build : string array -> t
(** Index a collection of texts (byte 0 reserved, as in
    {!Sxsi_fm.Fm_index}). *)

val length : t -> int
val doc_count : t -> int
val run_count : t -> int
(** Number of BWT runs — the compression driver. *)

val count : t -> string -> int
(** Occurrences of the pattern in the collection. *)

val space_bits : t -> int

open Sxsi_bits
open Sxsi_fm

type t = {
  n : int;
  d : int;
  c : int array;               (* c.(b) = symbols smaller than byte b *)
  heads : Wavelet.t;           (* one symbol per BWT run *)
  bounds : Sparse.t;           (* first position of each run (Elias-Fano) *)
  cum : Intvec.t array;        (* per byte: cumulative lengths of its runs *)
}

let build texts =
  let d = Array.length texts in
  if d = 0 then invalid_arg "Rle_fm.build: empty collection";
  let n = Array.fold_left (fun acc s -> acc + String.length s + 1) 0 texts in
  let mapped = Array.make (n + 1) 0 in
  let p = ref 0 in
  Array.iteri
    (fun i s ->
      String.iter
        (fun ch ->
          if ch = '\000' then invalid_arg "Rle_fm.build: NUL byte in text";
          mapped.(!p) <- Char.code ch + d;
          incr p)
        s;
      mapped.(!p) <- i + 1;
      incr p)
    texts;
  let sa = Sais.suffix_array mapped (256 + d) in
  let bwt = Bytes.create n in
  for i = 0 to n - 1 do
    let r = sa.(i + 1) in
    let prev = if r = 0 then n - 1 else r - 1 in
    let v = mapped.(prev) in
    Bytes.unsafe_set bwt i (if v <= d then '\000' else Char.unsafe_chr (v - d))
  done;
  (* run-length encode *)
  let heads = Buffer.create 1024 in
  let starts = ref [] and nruns = ref 0 in
  let run_lengths = Array.init 256 (fun _ -> ref []) in
  let i = ref 0 in
  while !i < n do
    let ch = Bytes.get bwt !i in
    let start = !i in
    while !i < n && Bytes.get bwt !i = ch do
      incr i
    done;
    Buffer.add_char heads ch;
    starts := start :: !starts;
    incr nruns;
    run_lengths.(Char.code ch) := (!i - start) :: !(run_lengths.(Char.code ch))
  done;
  let starts_arr = Array.make !nruns 0 in
  List.iteri (fun k v -> starts_arr.(!nruns - 1 - k) <- v) !starts;
  let bounds = Sparse.of_sorted ~universe:n starts_arr in
  let bits_for v =
    let rec go v acc = if v = 0 then max 1 acc else go (v lsr 1) (acc + 1) in
    go v 0
  in
  let cum =
    Array.map
      (fun l ->
        let lens = Array.of_list (List.rev !l) in
        let total = Array.fold_left ( + ) 0 lens in
        let iv = Intvec.make (Array.length lens + 1) (bits_for (max 1 total)) in
        let acc = ref 0 in
        Array.iteri
          (fun k v ->
            acc := !acc + v;
            Intvec.set iv (k + 1) !acc)
          lens;
        iv)
      run_lengths
  in
  let counts = Array.make 257 0 in
  Bytes.iter (fun ch -> counts.(Char.code ch + 1) <- counts.(Char.code ch + 1) + 1) bwt;
  let c = Array.make 256 0 in
  for b = 1 to 255 do
    c.(b) <- c.(b - 1) + counts.(b)
  done;
  {
    n;
    d;
    c;
    heads = Wavelet.of_string (Buffer.contents heads);
    bounds;
    cum;
  }

let length t = t.n
let doc_count t = t.d
let run_count t = Wavelet.length t.heads

(* number of [ch] in BWT[0, i) *)
let occ t ch i =
  if i <= 0 then 0
  else begin
    let rid = Sparse.rank t.bounds i - 1 in
    (* rid = 0-based run containing position i-1 *)
    let full = Wavelet.rank t.heads ch rid in
    let base = Intvec.get t.cum.(Char.code ch) full in
    if Wavelet.access t.heads rid = ch then
      base + (i - Sparse.get t.bounds rid)
    else base
  end

let count t p =
  let sp = ref 0 and ep = ref t.n in
  (try
     for i = String.length p - 1 downto 0 do
       let ch = p.[i] in
       if ch = '\000' then begin
         sp := 0;
         ep := 0;
         raise Exit
       end;
       let base = t.c.(Char.code ch) in
       sp := base + occ t ch !sp;
       ep := base + occ t ch !ep;
       if !ep <= !sp then raise Exit
     done
   with Exit -> ());
  max 0 (!ep - !sp)

let space_bits t =
  Wavelet.space_bits t.heads
  + Sparse.space_bits t.bounds
  + Array.fold_left (fun acc iv -> acc + Intvec.space_bits iv) 0 t.cum
  + (256 * 64)

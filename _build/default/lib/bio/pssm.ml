type t = {
  name : string;
  width : int;
  (* scores.(pos * 4 + base); base index from A=0 C=1 G=2 T=3 *)
  scores : float array;
}

let base_index = function
  | 'A' | 'a' -> 0
  | 'C' | 'c' -> 1
  | 'G' | 'g' -> 2
  | 'T' | 't' -> 3
  | _ -> -1

let of_counts ~name counts =
  if Array.length counts <> 4 then invalid_arg "Pssm.of_counts: need 4 rows";
  let width = Array.length counts.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> width then invalid_arg "Pssm.of_counts: ragged rows")
    counts;
  let scores = Array.make (width * 4) 0.0 in
  for pos = 0 to width - 1 do
    let total =
      float_of_int
        (counts.(0).(pos) + counts.(1).(pos) + counts.(2).(pos) + counts.(3).(pos))
      +. 1.0
    in
    for base = 0 to 3 do
      let p = (float_of_int counts.(base).(pos) +. 0.25) /. total in
      scores.((pos * 4) + base) <- log (p /. 0.25) /. log 2.0
    done
  done;
  { name; width; scores }

let name t = t.name
let width t = t.width

let score t s off =
  let acc = ref 0.0 in
  (try
     for pos = 0 to t.width - 1 do
       let b = base_index s.[off + pos] in
       if b < 0 then begin
         acc := neg_infinity;
         raise Exit
       end;
       acc := !acc +. t.scores.((pos * 4) + b)
     done
   with Exit -> ());
  !acc

let matches t ~threshold s =
  let n = String.length s in
  let rec go off = off + t.width <= n && (score t s off >= threshold || go (off + 1)) in
  go 0

let count_matches t ~threshold s =
  let n = String.length s in
  let c = ref 0 in
  for off = 0 to n - t.width do
    if score t s off >= threshold then incr c
  done;
  !c

(* Deterministic synthetic matrices: a strong short motif, a medium
   12-mer, and a long weak 14-mer, echoing the M1-M3 selectivity ladder
   of Figure 18. *)
let synth ~name ~width ~seed =
  let st = Random.State.make [| seed |] in
  let counts =
    Array.init 4 (fun _ -> Array.init width (fun _ -> Random.State.int st 10))
  in
  (* sharpen one consensus base per position *)
  for pos = 0 to width - 1 do
    counts.(Random.State.int st 4).(pos) <- 25 + Random.State.int st 10
  done;
  of_counts ~name counts

let sample_matrices =
  [
    (synth ~name:"M1" ~width:8 ~seed:101, 6.0);
    (synth ~name:"M2" ~width:12 ~seed:102, 11.0);
    (synth ~name:"M3" ~width:14 ~seed:103, 14.0);
  ]

let registry mats : Sxsi_core.Run.text_funs =
 fun key ->
  List.find_map
    (fun (m, threshold) ->
      if key = "PSSM:" ^ m.name then
        Some (Sxsi_core.Run.simple_fun (matches m ~threshold))
      else None)
    mats

lib/bio/rle_fm.mli:

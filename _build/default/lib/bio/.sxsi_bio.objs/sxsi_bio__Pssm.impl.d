lib/bio/pssm.ml: Array List Random String Sxsi_core

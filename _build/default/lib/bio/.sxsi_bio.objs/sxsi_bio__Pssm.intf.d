lib/bio/pssm.mli: Sxsi_core

lib/bio/rle_fm.ml: Array Buffer Bytes Char Intvec List Sais Sparse String Sxsi_bits Sxsi_fm Wavelet

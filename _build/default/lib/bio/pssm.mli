(** Position-specific scoring matrices (§6.7): given a position
    frequency matrix over A/C/G/T, converted to log-odds form, a
    sequence matches when some window scores at least the threshold.
    [registry] packages named matrices as engine predicates, so XPath
    queries can say [//promoter\[PSSM(., M1)\]]. *)

type t

val of_counts : name:string -> int array array -> t
(** [of_counts ~name counts]: [counts.(base).(position)] with bases in
    A, C, G, T order; converted to log-odds against a uniform
    background with a pseudocount.
    @raise Invalid_argument unless there are exactly 4 equal-length
    rows. *)

val name : t -> string
val width : t -> int

val score : t -> string -> int -> float
(** Score of the window starting at an offset (0 on alphabet errors). *)

val matches : t -> threshold:float -> string -> bool
val count_matches : t -> threshold:float -> string -> int

val sample_matrices : (t * float) list
(** Three bundled matrices of widths 8, 12 and 14 with thresholds, in
    the spirit of the Jaspar matrices used in Figure 18 ("M1", "M2",
    "M3"). *)

val registry : (t * float) list -> Sxsi_core.Run.text_funs
(** Expose matrices as custom predicates keyed ["PSSM:<name>"]. *)

(** One-pass streaming evaluator for predicate-free forward paths — the
    stand-in for the streaming engines (GCX, SPEX) the paper's
    introduction compares against.  No preprocessing: every query reads
    the whole document once through the SAX parser, keeping only a
    stack of NFA state sets.

    Supported fragment: absolute paths of [child::]/[descendant::]
    steps over name, [*], [text()] and [node()] tests, optionally
    ending with an [attribute::] step; no predicates. *)

exception Unsupported of string

val supported : Sxsi_xpath.Ast.path -> bool

val count : string -> Sxsi_xpath.Ast.path -> int
(** Number of nodes selected, computed in one pass over the XML text.
    @raise Unsupported when the query is outside the fragment.
    @raise Sxsi_xml.Xml_parser.Parse_error on malformed input. *)

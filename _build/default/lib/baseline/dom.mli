(** Pointer-based DOM over the paper's document model (§2): the
    comparison structure of §6.4 and the substrate of the naive XPath
    engine that stands in for MonetDB/Qizx in the benchmarks.

    Nodes carry the same preorder identifiers as the succinct
    {!Sxsi_xml.Document} built from the same input, so result sets of
    the two engines are directly comparable. *)

type kind =
  | Root                      (** the extra ["&"] node *)
  | Element of string
  | Attlist                   (** ["@"] *)
  | Attribute of string
  | Text_leaf of string       (** ["#"] with its content *)
  | Attval_leaf of string     (** ["%"] with its content *)

type node = {
  id : int;                          (* preorder in the model tree *)
  kind : kind;
  mutable children : node list;      (* model children, "@" first *)
  mutable parent : node option;
  mutable next_sibling : node option (* within the model children list *);
}

type t

val of_xml : ?keep_whitespace:bool -> string -> t
(** Same modelling rules as {!Sxsi_xml.Document.of_xml}. *)

val root : t -> node
val node_count : t -> int

(** {1 Logical (XPath) navigation: the ["@"] subtree is invisible} *)

val logical_children : node -> node list
val attributes : node -> node list
val logical_following_siblings : node -> node list
val descendants : node -> node list
(** Proper descendants in document order, excluding attribute
    subtrees. *)

val is_element : node -> bool
val string_value : node -> string
val serialize : node -> string

(** {1 Raw traversal (for the Table IV/V comparisons)} *)

val count_all_nodes : t -> int
(** Full first-child/next-sibling recursion over the model tree. *)

val count_elements : t -> int

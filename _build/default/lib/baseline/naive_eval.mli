(** Straightforward recursive evaluator for Core+ over the pointer DOM
    — the engine that plays the role of MonetDB/Qizx in the benchmark
    comparisons, and the semantics oracle the SXSI engine is tested
    against. *)

type custom = Dom.node -> bool
(** A registered custom predicate ([PSSM]-style, §6.7), applied to a
    node selected by the predicate's path. *)

val eval :
  ?funs:(string -> custom option) ->
  Dom.t ->
  Sxsi_xpath.Ast.path ->
  Dom.node list
(** Nodes selected by an absolute query, in document order, duplicate
    free.
    @raise Invalid_argument on an unregistered custom predicate. *)

val eval_count : ?funs:(string -> custom option) -> Dom.t -> Sxsi_xpath.Ast.path -> int

val eval_ids : ?funs:(string -> custom option) -> Dom.t -> Sxsi_xpath.Ast.path -> int list
(** Preorder identifiers of the selected nodes (sorted). *)

val eval_union_ids :
  ?funs:(string -> custom option) -> Dom.t -> Sxsi_xpath.Ast.path list -> int list
(** Identifiers selected by a union of paths, merged and sorted. *)

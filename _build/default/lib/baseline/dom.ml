open Sxsi_xml

type kind =
  | Root
  | Element of string
  | Attlist
  | Attribute of string
  | Text_leaf of string
  | Attval_leaf of string

type node = {
  id : int;
  kind : kind;
  mutable children : node list;
  mutable parent : node option;
  mutable next_sibling : node option;
}

type t = {
  root : node;
  count : int;
}

let of_xml ?(keep_whitespace = true) src =
  let counter = ref 0 in
  let mk kind =
    let id = !counter in
    incr counter;
    { id; kind; children = []; parent = None; next_sibling = None }
  in
  let root = mk Root in
  let stack = ref [ root ] in
  let push kind =
    let n = mk kind in
    (match !stack with
    | top :: _ -> top.children <- n :: top.children
    | [] -> assert false);
    stack := n :: !stack;
    n
  in
  let pop () =
    match !stack with
    | top :: rest ->
      top.children <- List.rev top.children;
      stack := rest
    | [] -> assert false
  in
  let emit_text s =
    let blank =
      String.for_all (function ' ' | '\t' | '\n' | '\r' -> true | _ -> false) s
    in
    if String.length s > 0 && (keep_whitespace || not blank) then begin
      ignore (push (Text_leaf s));
      pop ()
    end
  in
  let on_open name attrs =
    ignore (push (Element name));
    if attrs <> [] then begin
      ignore (push Attlist);
      List.iter
        (fun (aname, avalue) ->
          ignore (push (Attribute aname));
          if String.length avalue > 0 then begin
            ignore (push (Attval_leaf avalue));
            pop ()
          end;
          pop ())
        attrs;
      pop ()
    end
  in
  Xml_parser.parse ~on_open ~on_close:(fun _ -> pop ()) ~on_text:emit_text src;
  pop ();
  assert (!stack = []);
  (* wire parent / next_sibling *)
  let rec wire n =
    let rec link = function
      | a :: (b :: _ as rest) ->
        a.next_sibling <- Some b;
        link rest
      | [ _ ] | [] -> ()
    in
    link n.children;
    List.iter
      (fun c ->
        c.parent <- Some n;
        wire c)
      n.children
  in
  wire root;
  { root; count = !counter }

let root t = t.root
let node_count t = t.count

let is_attlist n = match n.kind with Attlist -> true | _ -> false
let is_element n = match n.kind with Element _ -> true | _ -> false

let logical_children n = List.filter (fun c -> not (is_attlist c)) n.children

let attributes n =
  match List.find_opt is_attlist n.children with
  | Some al -> al.children
  | None -> []

let logical_following_siblings n =
  match n.kind with
  | Attlist | Attribute _ | Attval_leaf _ -> []
  | Root | Element _ | Text_leaf _ ->
    let rec collect = function
      | None -> []
      | Some s ->
        if is_attlist s then collect s.next_sibling
        else s :: collect s.next_sibling
    in
    collect n.next_sibling

let descendants n =
  let acc = ref [] in
  let rec go n =
    List.iter
      (fun c ->
        if not (is_attlist c) then begin
          acc := c :: !acc;
          go c
        end)
      n.children
  in
  go n;
  List.rev !acc

let string_value n =
  let buf = Buffer.create 32 in
  let in_attributes =
    match n.kind with
    | Attlist | Attribute _ | Attval_leaf _ -> true
    | Root | Element _ | Text_leaf _ -> false
  in
  let rec go n =
    match n.kind with
    | Text_leaf s -> Buffer.add_string buf s
    | Attval_leaf s -> if in_attributes then Buffer.add_string buf s
    | Attlist -> if in_attributes then List.iter go n.children
    | Root | Element _ | Attribute _ -> List.iter go n.children
  in
  go n;
  Buffer.contents buf

let serialize n =
  let buf = Buffer.create 256 in
  let rec emit n =
    match n.kind with
    | Text_leaf s | Attval_leaf s -> Buffer.add_string buf (Xml_parser.escape_text s)
    | Root -> List.iter emit n.children
    | Attlist -> ()
    | Attribute _ -> Buffer.add_string buf (Xml_parser.escape_text (string_value n))
    | Element name ->
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      List.iter
        (fun a ->
          match a.kind with
          | Attribute aname ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf aname;
            Buffer.add_string buf "=\"";
            Buffer.add_string buf (Xml_parser.escape_attr (string_value a));
            Buffer.add_string buf "\""
          | Root | Element _ | Attlist | Text_leaf _ | Attval_leaf _ -> ())
        (attributes n);
      let content = logical_children n in
      if content = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter emit content;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
      end
  in
  emit n;
  Buffer.contents buf

let count_all_nodes t =
  let rec go acc n = List.fold_left go (acc + 1) n.children in
  go 0 t.root

let count_elements t =
  let rec go acc n =
    let acc = if is_element n then acc + 1 else acc in
    List.fold_left go acc n.children
  in
  go 0 t.root

open Sxsi_xpath.Ast

type custom = Dom.node -> bool

let test_matches ~axis test (n : Dom.node) =
  match axis with
  | Attribute -> begin
    match (test, n.Dom.kind) with
    | Star, Dom.Attribute _ -> true
    | Name s, Dom.Attribute a -> s = a
    | (Node | Text), Dom.Attribute _ -> test = Node
    | _, _ -> false
  end
  | Self | Child | Descendant | Following_sibling -> begin
    match (test, n.Dom.kind) with
    | Star, Dom.Element _ -> true
    | Name s, Dom.Element e -> s = e
    | Text, Dom.Text_leaf _ -> true
    | Node, (Dom.Element _ | Dom.Text_leaf _ | Dom.Root) -> true
    | _, _ -> false
  end

let axis_candidates axis (n : Dom.node) =
  match axis with
  | Self -> [ n ]
  | Child -> Dom.logical_children n
  | Descendant -> Dom.descendants n
  | Attribute -> Dom.attributes n
  | Following_sibling -> Dom.logical_following_siblings n

let sort_unique nodes =
  List.sort_uniq (fun (a : Dom.node) b -> compare a.Dom.id b.Dom.id) nodes

let rec eval_path ~funs doc ctx (path : path) : Dom.node list =
  let start = if path.absolute then [ Dom.root doc ] else [ ctx ] in
  List.fold_left
    (fun nodes step ->
      sort_unique (List.concat_map (eval_step ~funs doc step) nodes))
    start path.steps

and eval_step ~funs doc (step : step) n =
  axis_candidates step.axis n
  |> List.filter (test_matches ~axis:step.axis step.test)
  |> List.filter (fun n ->
         List.for_all (fun p -> eval_pred ~funs doc n p) step.preds)

and eval_pred ~funs doc n = function
  | And (a, b) -> eval_pred ~funs doc n a && eval_pred ~funs doc n b
  | Or (a, b) -> eval_pred ~funs doc n a || eval_pred ~funs doc n b
  | Not p -> not (eval_pred ~funs doc n p)
  | Exists path -> eval_path ~funs doc n path <> []
  | Value (path, op, lit) ->
    List.exists
      (fun sel -> value_matches op (Dom.string_value sel) lit)
      (eval_path ~funs doc n path)
  | Fun (name, path, arg) -> begin
    match funs (name ^ ":" ^ arg) with
    | Some f -> List.exists f (eval_path ~funs doc n path)
    | None -> begin
      match funs name with
      | Some f -> List.exists f (eval_path ~funs doc n path)
      | None -> invalid_arg (Printf.sprintf "Naive_eval: unknown predicate %s" name)
    end
  end

and value_matches op value lit =
  let has_sub s p =
    let n = String.length s and m = String.length p in
    if m = 0 then true
    else begin
      let found = ref false in
      for i = 0 to n - m do
        if String.sub s i m = p then found := true
      done;
      !found
    end
  in
  match op with
  | Eq -> value = lit
  | Contains -> has_sub value lit
  | Starts_with ->
    String.length lit <= String.length value
    && String.sub value 0 (String.length lit) = lit
  | Ends_with ->
    String.length lit <= String.length value
    && String.sub value (String.length value - String.length lit) (String.length lit)
       = lit
  | Lt -> value < lit
  | Le -> value <= lit
  | Gt -> value > lit
  | Ge -> value >= lit

let eval ?(funs = fun _ -> None) doc path =
  eval_path ~funs doc (Dom.root doc) path

let eval_count ?funs doc path = List.length (eval ?funs doc path)

let eval_ids ?funs doc path = List.map (fun n -> n.Dom.id) (eval ?funs doc path)

let eval_union_ids ?funs doc paths =
  List.concat_map (eval_ids ?funs doc) paths |> List.sort_uniq compare

lib/baseline/naive_eval.mli: Dom Sxsi_xpath

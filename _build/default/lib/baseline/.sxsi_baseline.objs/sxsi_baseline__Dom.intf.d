lib/baseline/dom.mli:

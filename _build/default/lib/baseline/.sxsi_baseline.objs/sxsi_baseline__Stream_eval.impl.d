lib/baseline/stream_eval.ml: Array List Sxsi_xml Sxsi_xpath

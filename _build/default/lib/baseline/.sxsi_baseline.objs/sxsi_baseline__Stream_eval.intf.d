lib/baseline/stream_eval.mli: Sxsi_xpath

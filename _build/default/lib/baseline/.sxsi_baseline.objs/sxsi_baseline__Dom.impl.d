lib/baseline/dom.ml: Buffer List String Sxsi_xml Xml_parser

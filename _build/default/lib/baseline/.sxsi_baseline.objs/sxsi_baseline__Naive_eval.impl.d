lib/baseline/naive_eval.ml: Dom List Printf String Sxsi_xpath

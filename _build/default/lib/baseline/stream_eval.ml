open Sxsi_xpath.Ast

exception Unsupported of string

(* State sets are bitmasks over step indices: bit i = "step i may match
   the current event".  Descendant bits persist downwards; a matched
   step arms the next one for the children. *)

let supported (path : path) =
  path.absolute
  && List.length path.steps <= 60
  && List.for_all (fun s -> s.preds = []) path.steps
  && (match List.rev path.steps with
     | [] -> false
     | last :: before ->
       (last.axis = Child || last.axis = Descendant || last.axis = Attribute)
       && List.for_all (fun s -> s.axis = Child || s.axis = Descendant) before)

let count xml (path : path) =
  if not (supported path) then
    raise (Unsupported "streaming supports predicate-free forward paths only");
  let steps = Array.of_list path.steps in
  let m = Array.length steps in
  let attr_last = steps.(m - 1).axis = Attribute in
  let elem_test test name =
    match test with
    | Star -> true
    | Name n -> n = name
    | Node -> true
    | Text -> false
  in
  let attr_test test aname =
    match test with
    | Star | Node -> true
    | Name n -> n = aname
    | Text -> false
  in
  let count = ref 0 in
  (* stack of masks; top applies to the children of the current open
     element *)
  let stack = ref [ 1 ] (* bit 0 armed for the document element *) in
  let elem_steps = if attr_last then m - 1 else m in
  let on_open name attrs =
    let mask = List.hd !stack in
    let child_mask = ref 0 and completed = ref false in
    for i = 0 to elem_steps - 1 do
      if mask land (1 lsl i) <> 0 then begin
        if steps.(i).axis = Descendant then child_mask := !child_mask lor (1 lsl i);
        if elem_test steps.(i).test name then begin
          if i = m - 1 then completed := true
          else if attr_last && i = m - 2 then
            (* the attribute step applies to this element's attributes *)
            List.iter
              (fun (aname, _) -> if attr_test steps.(m - 1).test aname then incr count)
              attrs
          else child_mask := !child_mask lor (1 lsl (i + 1))
        end
      end
    done;
    if !completed then incr count;
    stack := !child_mask :: !stack
  in
  let on_close _ = stack := List.tl !stack in
  let on_text _ =
    if not attr_last then begin
      let mask = List.hd !stack in
      (* the mask on top applies to children of the enclosing element,
         which is where text nodes live; only a final text()/node()
         step can match *)
      let i = m - 1 in
      if
        mask land (1 lsl i) <> 0
        && (steps.(i).test = Text || steps.(i).test = Node)
      then incr count
    end
  in
  Sxsi_xml.Xml_parser.parse ~on_open ~on_close ~on_text xml;
  !count

lib/auto/compile.mli: Automaton Sxsi_xml Sxsi_xpath

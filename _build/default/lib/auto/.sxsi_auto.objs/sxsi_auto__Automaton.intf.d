lib/auto/automaton.mli: Formula Hashtbl Sxsi_xml Sxsi_xpath

lib/auto/formula.ml: Hashtbl List Printf

lib/auto/formula.mli:

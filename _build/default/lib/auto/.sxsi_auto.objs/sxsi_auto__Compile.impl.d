lib/auto/compile.ml: Automaton Document Formula Hashtbl List Option Sxsi_tree Sxsi_xml Sxsi_xpath

lib/auto/automaton.ml: Array Buffer Document Formula Hashtbl List Printf Sxsi_xml Sxsi_xpath

(** Hash-consed Boolean formulas over automaton states (§5.3, §5.5.1).

    Structurally equal formulas share one representation, so equality
    is physical, every formula carries a small unique [id] usable as a
    memo-table key, and the engine's per-(state-set, label) caches stay
    cheap. *)

type state = int

type guard =
  | Any                 (** every label *)
  | Tag of int          (** one tag identifier *)
  | Elements            (** any named element tag (the XPath [*]) *)
  | Attributes          (** any attribute-name tag *)
  | Node_kind           (** [node()]: element, text or root *)

type t = private {
  id : int;
  node : node;
  (* precomputed atom sets, as sorted state lists *)
  down1 : state list;
  down2 : state list;
  has_mark : bool;
}

and node =
  | True
  | False
  | Mark
  | Down1 of state
  | Down2 of state
  | Is_label of guard    (** label test on the current node *)
  | Pred of int          (** built-in predicate index on the current node *)
  | And of t * t
  | Or of t * t
  | Not of t

val tru : t
val fls : t
val mark : t
val down1 : state -> t
val down2 : state -> t
val is_label : guard -> t
val pred : int -> t

val conj : t -> t -> t
(** Conjunction with constant folding. *)

val disj : t -> t -> t
val neg : t -> t

val conj_list : t list -> t
val to_string : t -> string

lib/xml/document.ml: Array Bitvec Bp Buffer Fun Hashtbl List Marshal String Sxsi_bits Sxsi_text Sxsi_tree Tag_index Tag_rel Text_collection Xml_parser

lib/xml/document.mli: Sxsi_text Sxsi_tree

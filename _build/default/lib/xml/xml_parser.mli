(** Event-based (SAX-style) XML parser.

    Supports the subset of XML the paper's documents need: elements,
    attributes, character data, CDATA sections, comments, processing
    instructions, a DOCTYPE declaration, and the predefined and numeric
    character references.  Namespaces are not interpreted (prefixed
    names are plain names). *)

exception Parse_error of int * string
(** Byte position and message. *)

val parse :
  on_open:(string -> (string * string) list -> unit) ->
  on_close:(string -> unit) ->
  on_text:(string -> unit) ->
  string ->
  unit
(** Parse a complete document.  [on_text] receives maximal runs of
    character data with entities decoded (never empty, possibly
    whitespace-only); attribute values are entity-decoded too.
    @raise Parse_error on malformed input. *)

val escape_text : string -> string
(** Escape ["&<>"] for serialization as character data. *)

val escape_attr : string -> string
(** Escape ["&<>\""] for serialization inside a double-quoted
    attribute value. *)

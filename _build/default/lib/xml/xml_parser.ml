exception Parse_error of int * string

let error pos msg = raise (Parse_error (pos, msg))

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

type state = {
  src : string;
  mutable pos : int;
  text : Buffer.t;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st.pos (Printf.sprintf "expected %S" s)

let skip_space st =
  while st.pos < String.length st.src && is_space st.src.[st.pos] do
    st.pos <- st.pos + 1
  done

let read_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> st.pos <- st.pos + 1
  | _ -> error st.pos "expected a name");
  while
    st.pos < String.length st.src && is_name_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

(* Decode a reference starting right after '&'; appends to [buf]. *)
let read_reference st buf =
  let upto =
    match String.index_from_opt st.src st.pos ';' with
    | Some j when j - st.pos <= 10 -> j
    | Some _ | None -> error st.pos "unterminated entity reference"
  in
  let name = String.sub st.src st.pos (upto - st.pos) in
  st.pos <- upto + 1;
  match name with
  | "amp" -> Buffer.add_char buf '&'
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "apos" -> Buffer.add_char buf '\''
  | "quot" -> Buffer.add_char buf '"'
  | _ ->
    if String.length name >= 2 && name.[0] = '#' then begin
      let code =
        try
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string (String.sub name 1 (String.length name - 1))
        with Failure _ -> error st.pos "bad character reference"
      in
      (* encode as UTF-8 *)
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    end
    else error st.pos (Printf.sprintf "unknown entity &%s;" name)

let read_attr_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) ->
      st.pos <- st.pos + 1;
      q
    | _ -> error st.pos "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st.pos "unterminated attribute value"
    | Some c when c = quote -> st.pos <- st.pos + 1
    | Some '&' ->
      st.pos <- st.pos + 1;
      read_reference st buf;
      go ()
    | Some '<' -> error st.pos "'<' in attribute value"
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let skip_until st marker what =
  match
    (* naive search for the marker *)
    let n = String.length st.src and m = String.length marker in
    let rec go i =
      if i + m > n then None
      else if String.sub st.src i m = marker then Some i
      else go (i + 1)
    in
    go st.pos
  with
  | Some j -> st.pos <- j + String.length marker
  | None -> error st.pos ("unterminated " ^ what)

let skip_doctype st =
  (* skip to the matching '>', honouring an internal subset [...] *)
  let depth = ref 1 in
  while !depth > 0 do
    match peek st with
    | None -> error st.pos "unterminated DOCTYPE"
    | Some '<' ->
      incr depth;
      st.pos <- st.pos + 1
    | Some '>' ->
      decr depth;
      st.pos <- st.pos + 1
    | Some _ -> st.pos <- st.pos + 1
  done

let parse ~on_open ~on_close ~on_text src =
  let st = { src; pos = 0; text = Buffer.create 256 } in
  let flush_text () =
    if Buffer.length st.text > 0 then begin
      on_text (Buffer.contents st.text);
      Buffer.clear st.text
    end
  in
  let read_attributes () =
    let rec go acc =
      skip_space st;
      match peek st with
      | Some c when is_name_start c ->
        let name = read_name st in
        skip_space st;
        expect st "=";
        skip_space st;
        let value = read_attr_value st in
        go ((name, value) :: acc)
      | Some _ | None -> List.rev acc
    in
    go []
  in
  let stack = ref [] in
  let depth () = List.length !stack in
  let rec loop () =
    if st.pos >= String.length st.src then begin
      if !stack <> [] then error st.pos "unexpected end of document";
      flush_text ()
    end
    else begin
      let c = st.src.[st.pos] in
      if c = '<' then begin
        if looking_at st "<!--" then begin
          st.pos <- st.pos + 4;
          skip_until st "-->" "comment"
        end
        else if looking_at st "<![CDATA[" then begin
          if depth () = 0 then error st.pos "CDATA outside the root element";
          let start = st.pos + 9 in
          st.pos <- start;
          skip_until st "]]>" "CDATA section";
          Buffer.add_substring st.text st.src start (st.pos - 3 - start)
        end
        else if looking_at st "<?" then begin
          st.pos <- st.pos + 2;
          skip_until st "?>" "processing instruction"
        end
        else if looking_at st "<!DOCTYPE" then begin
          st.pos <- st.pos + 9;
          skip_doctype st
        end
        else if looking_at st "</" then begin
          flush_text ();
          st.pos <- st.pos + 2;
          let name = read_name st in
          skip_space st;
          expect st ">";
          (match !stack with
          | top :: rest when top = name ->
            stack := rest;
            on_close name
          | top :: _ ->
            error st.pos (Printf.sprintf "mismatched </%s>, expected </%s>" name top)
          | [] -> error st.pos (Printf.sprintf "stray </%s>" name))
        end
        else begin
          flush_text ();
          st.pos <- st.pos + 1;
          let name = read_name st in
          let attrs = read_attributes () in
          skip_space st;
          if looking_at st "/>" then begin
            st.pos <- st.pos + 2;
            on_open name attrs;
            on_close name
          end
          else begin
            expect st ">";
            on_open name attrs;
            stack := name :: !stack
          end
        end;
        loop ()
      end
      else if c = '&' then begin
        if depth () = 0 then error st.pos "text outside the root element";
        st.pos <- st.pos + 1;
        read_reference st st.text;
        loop ()
      end
      else begin
        if depth () = 0 then begin
          if not (is_space c) then error st.pos "text outside the root element";
          st.pos <- st.pos + 1
        end
        else begin
          Buffer.add_char st.text c;
          st.pos <- st.pos + 1
        end;
        loop ()
      end
    end
  in
  loop ()

let escape_gen escape_quote s =
  let needs =
    String.exists (fun c -> c = '&' || c = '<' || c = '>' || (escape_quote && c = '"')) s
  in
  if not needs then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '"' when escape_quote -> Buffer.add_string buf "&quot;"
        | _ -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let escape_text s = escape_gen false s
let escape_attr s = escape_gen true s

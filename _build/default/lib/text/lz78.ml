open Sxsi_bits

(* Token stream: token k extends dictionary phrase [parent.(k)] (0 =
   the empty phrase; dictionary ids are token index + 1) with one
   character — except at a forced text boundary, where a token may
   reference a phrase without extending it ([has_char] unset). *)
type t = {
  d : int;
  parent : Intvec.t;
  chars : Bytes.t;          (* only meaningful where has_char *)
  has_char : Bitvec.t;
  text_first : Intvec.t;    (* first token of each text *)
  token_count : int;
}

let of_texts texts =
  let d = Array.length texts in
  let dict : (int * char, int) Hashtbl.t = Hashtbl.create 1024 in
  let parents = ref [] and chars = ref [] and flags = ref [] in
  let ntok = ref 0 in
  let starts = Array.make (max 1 d) 0 in
  let emit parent ch flag =
    parents := parent :: !parents;
    chars := ch :: !chars;
    flags := flag :: !flags;
    incr ntok
  in
  Array.iteri
    (fun i s ->
      starts.(i) <- !ntok;
      let w = ref 0 in
      String.iter
        (fun ch ->
          match Hashtbl.find_opt dict (!w, ch) with
          | Some id -> w := id
          | None ->
            (* every token owns the dictionary id (token index + 1) *)
            Hashtbl.add dict (!w, ch) (!ntok + 1);
            emit !w ch true;
            w := 0)
        s;
      (* forced boundary: flush the pending (possibly known) phrase *)
      if !w <> 0 then emit !w '\000' false)
    texts;
  let n = !ntok in
  let bits_for v =
    let rec go v acc = if v = 0 then max 1 acc else go (v lsr 1) (acc + 1) in
    go v 0
  in
  let parent = Intvec.make (max 1 n) (bits_for (max 1 n)) in
  let cbytes = Bytes.make (max 1 n) '\000' in
  let fb = Bitvec.Builder.create ~hint:n () in
  List.iteri
    (fun k p -> Intvec.set parent (n - 1 - k) p)
    !parents;
  List.iteri (fun k c -> Bytes.set cbytes (n - 1 - k) c) !chars;
  let flag_arr = Array.of_list (List.rev !flags) in
  Array.iter (fun f -> Bitvec.Builder.push fb f) flag_arr;
  {
    d;
    parent;
    chars = cbytes;
    has_char = Bitvec.Builder.finish fb;
    text_first = Intvec.of_array ~width:(bits_for (max 1 n)) starts;
    token_count = n;
  }

let doc_count t = t.d
let phrase_count t = t.token_count

(* The dictionary phrase with id [id] (1-based) was created by token
   [id - 1]; decode by walking parents. *)
let rec decode_phrase t buf id =
  if id > 0 then begin
    let k = id - 1 in
    decode_phrase t buf (Intvec.get t.parent k);
    if Bitvec.get t.has_char k then Buffer.add_char buf (Bytes.get t.chars k)
  end

let get t i =
  if i < 0 || i >= t.d then invalid_arg "Lz78.get";
  let first = Intvec.get t.text_first i in
  let last =
    if i + 1 < t.d then Intvec.get t.text_first (i + 1) else t.token_count
  in
  let buf = Buffer.create 64 in
  for k = first to last - 1 do
    decode_phrase t buf (Intvec.get t.parent k);
    if Bitvec.get t.has_char k then Buffer.add_char buf (Bytes.get t.chars k)
  done;
  Buffer.contents buf

let space_bits t =
  Intvec.space_bits t.parent
  + (8 * Bytes.length t.chars)
  + Bitvec.space_bits t.has_char
  + Intvec.space_bits t.text_first
  + 192

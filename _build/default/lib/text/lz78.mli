(** LZ78-compressed storage for a text collection (the "enhanced
    LZ78-compressed format" alternative of §3.4, after the LZ-index
    [5]): a secondary representation that extracts any text in time
    linear in its length, in compressed space.

    Phrases are shared across the whole collection, but phrase
    boundaries are forced at text boundaries so each text decodes
    independently. *)

type t

val of_texts : string array -> t
val doc_count : t -> int
val phrase_count : t -> int

val get : t -> int -> string
(** Decode one text. *)

val space_bits : t -> int

lib/text/lz78.mli:

lib/text/text_collection.ml: Array Char Fm_index List Lz78 String Sxsi_bits Sxsi_fm

lib/text/lz78.ml: Array Bitvec Buffer Bytes Hashtbl Intvec List String Sxsi_bits

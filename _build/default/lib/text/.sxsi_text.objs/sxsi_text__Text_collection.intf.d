lib/text/text_collection.mli:

(** Balanced wavelet tree over an integer sequence — the structure
    behind the general form of the [Doc] mapping (§3.2 of the paper,
    after Mäkinen and Navarro [46]): report, among the entries of a
    positional range, those whose value falls in a value range, in
    O(log sigma) per answer. *)

type t

val of_array : sigma:int -> int array -> t
(** [of_array ~sigma a] with values of [a] in [\[0, sigma)]. *)

val length : t -> int
val sigma : t -> int
val access : t -> int -> int

val rank_value : t -> int -> int -> int
(** [rank_value t v i]: occurrences of value [v] in positions
    [\[0, i)]. *)

val range_count : t -> lo:int -> hi:int -> vlo:int -> vhi:int -> int
(** Entries in positions [\[lo, hi)] with value in [\[vlo, vhi)]. *)

val range_report : t -> lo:int -> hi:int -> vlo:int -> vhi:int -> int list
(** The distinct values of those entries, sorted increasingly. *)

val space_bits : t -> int

(* Elements are packed contiguously in a bit stream over 63-bit words;
   an element can straddle two words. *)

let word_bits = 63

type t = {
  n : int;
  w : int;
  mask : int;
  data : int array;
}

let make n w =
  if w <= 0 || w > 62 then invalid_arg "Intvec.make: width";
  let bits = n * w in
  let nwords = (bits + word_bits - 1) / word_bits in
  { n; w; mask = (1 lsl w) - 1; data = Array.make (max 1 nwords) 0 }

let length t = t.n
let width t = t.w

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Intvec.get";
  let bit = i * t.w in
  let wd = bit / word_bits and off = bit mod word_bits in
  let lo = Array.unsafe_get t.data wd lsr off in
  let avail = word_bits - off in
  if avail >= t.w then lo land t.mask
  else (lo lor (Array.unsafe_get t.data (wd + 1) lsl avail)) land t.mask

let set t i v =
  if i < 0 || i >= t.n then invalid_arg "Intvec.set";
  if v < 0 || v > t.mask then invalid_arg "Intvec.set: value";
  let bit = i * t.w in
  let wd = bit / word_bits and off = bit mod word_bits in
  let mask63 = (1 lsl word_bits) - 1 in
  t.data.(wd) <- (t.data.(wd) land (lnot (t.mask lsl off) land mask63))
                 lor ((v lsl off) land mask63);
  let avail = word_bits - off in
  if avail < t.w then begin
    let hi_bits = t.w - avail in
    let hi_mask = (1 lsl hi_bits) - 1 in
    t.data.(wd + 1) <- (t.data.(wd + 1) land lnot hi_mask) lor (v lsr avail)
  end

let of_array ?width a =
  let w =
    match width with
    | Some w -> w
    | None ->
      let m = Array.fold_left max 0 a in
      let rec bits v acc = if v = 0 then max 1 acc else bits (v lsr 1) (acc + 1) in
      bits m 0
  in
  let t = make (Array.length a) w in
  Array.iteri (fun i v -> set t i v) a;
  t

let space_bits t = Array.length t.data * 64 + 128

(* 16-bit lookup table; OCaml ints are 63-bit so SWAR constants with the
   64th bit set cannot be written as literals. *)
let table =
  let t = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
    Bytes.unsafe_set t i (Char.unsafe_chr (count i 0))
  done;
  t

let popcount x =
  Char.code (Bytes.unsafe_get table (x land 0xffff))
  + Char.code (Bytes.unsafe_get table ((x lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get table ((x lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get table (x lsr 48))

let select_in_word x j =
  let rec go x j pos =
    let c = Char.code (Bytes.unsafe_get table (x land 0xffff)) in
    if j < c then
      (* scan the low 16 bits *)
      let rec bit x j pos =
        if x land 1 = 1 then if j = 0 then pos else bit (x lsr 1) (j - 1) (pos + 1)
        else bit (x lsr 1) j (pos + 1)
      in
      bit x j pos
    else go (x lsr 16) (j - c) (pos + 16)
  in
  go x j 0

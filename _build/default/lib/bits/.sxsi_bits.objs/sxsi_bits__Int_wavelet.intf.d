lib/bits/int_wavelet.mli:

lib/bits/wavelet.mli:

lib/bits/bitvec.ml: Array Popcnt

lib/bits/int_wavelet.ml: Array Bitvec List

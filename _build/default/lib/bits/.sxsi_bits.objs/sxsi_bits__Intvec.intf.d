lib/bits/intvec.mli:

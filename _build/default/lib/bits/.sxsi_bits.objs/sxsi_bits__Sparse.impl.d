lib/bits/sparse.ml: Array Bitvec Intvec

lib/bits/popcnt.mli:

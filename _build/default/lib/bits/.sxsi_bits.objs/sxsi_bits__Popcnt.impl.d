lib/bits/popcnt.ml: Bytes Char

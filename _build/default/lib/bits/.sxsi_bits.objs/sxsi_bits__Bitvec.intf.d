lib/bits/bitvec.mli:

lib/bits/intvec.ml: Array

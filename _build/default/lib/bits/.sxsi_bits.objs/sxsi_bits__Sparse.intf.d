lib/bits/sparse.mli:

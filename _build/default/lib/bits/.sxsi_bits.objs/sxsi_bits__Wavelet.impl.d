lib/bits/wavelet.ml: Array Bitvec Bytes Char List String

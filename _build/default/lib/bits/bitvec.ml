(* Bits are packed 63 per OCaml int.  A rank directory stores the
   cumulative number of ones before every block of [words_per_block]
   words; rank pops at most 8 words, select binary-searches the
   directory then scans one block. *)

let word_bits = 63
let words_per_block = 8
let block_bits = word_bits * words_per_block

type t = {
  len : int;                (* length in bits *)
  words : int array;
  blocks : int array;       (* blocks.(k) = ones before word k*8 *)
  ones : int;
}

module Builder = struct
  type bv = t

  type t = {
    mutable data : int array;
    mutable nbits : int;
  }

  let create ?(hint = 64) () =
    { data = Array.make (max 1 ((hint + word_bits - 1) / word_bits)) 0; nbits = 0 }

  let ensure b nwords =
    if nwords > Array.length b.data then begin
      let data = Array.make (max nwords (2 * Array.length b.data)) 0 in
      Array.blit b.data 0 data 0 (Array.length b.data);
      b.data <- data
    end

  let push b bit =
    let w = b.nbits / word_bits and o = b.nbits mod word_bits in
    ensure b (w + 1);
    if bit then b.data.(w) <- b.data.(w) lor (1 lsl o);
    b.nbits <- b.nbits + 1

  let push_run b bit k =
    (* Simple loop: runs in our workloads are short except for zeros,
       which only need the length bump. *)
    if not bit then begin
      ensure b ((b.nbits + k) / word_bits + 1);
      b.nbits <- b.nbits + k
    end
    else
      for _ = 1 to k do
        push b bit
      done

  let length b = b.nbits

  let finish b : bv =
    let nwords = (b.nbits + word_bits - 1) / word_bits in
    let words = Array.sub b.data 0 (max 1 nwords) in
    let nblocks = (nwords + words_per_block - 1) / words_per_block + 1 in
    let blocks = Array.make nblocks 0 in
    let acc = ref 0 in
    for w = 0 to nwords - 1 do
      if w mod words_per_block = 0 then blocks.(w / words_per_block) <- !acc;
      acc := !acc + Popcnt.popcount words.(w)
    done;
    blocks.(nblocks - 1) <- !acc;
    { len = b.nbits; words; blocks; ones = !acc }
end

let of_fun n f =
  let b = Builder.create ~hint:n () in
  for i = 0 to n - 1 do
    Builder.push b (f i)
  done;
  Builder.finish b

let length t = t.len
let count t = t.ones

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec.get";
  (Array.unsafe_get t.words (i / word_bits) lsr (i mod word_bits)) land 1 = 1

let rank1 t i =
  if i <= 0 then 0
  else if i >= t.len then t.ones
  else begin
    let w = i / word_bits and o = i mod word_bits in
    let blk = w / words_per_block in
    let r = ref t.blocks.(blk) in
    for k = blk * words_per_block to w - 1 do
      r := !r + Popcnt.popcount (Array.unsafe_get t.words k)
    done;
    if o > 0 then
      r := !r + Popcnt.popcount (Array.unsafe_get t.words w land ((1 lsl o) - 1));
    !r
  end

let rank0 t i =
  let i = if i < 0 then 0 else if i > t.len then t.len else i in
  i - rank1 t i

(* Generic select over a "ones before block" function: binary search the
   directory, then scan the block's words. *)
let select_gen t j ones_before_block word_count word_select total =
  if j < 0 || j >= total then invalid_arg "Bitvec.select";
  let nwords = Array.length t.words in
  let nblocks = (nwords + words_per_block - 1) / words_per_block in
  (* last block index b such that ones_before_block b <= j *)
  let lo = ref 0 and hi = ref (nblocks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if ones_before_block mid <= j then lo := mid else hi := mid - 1
  done;
  let blk = !lo in
  let rem = ref (j - ones_before_block blk) in
  let w = ref (blk * words_per_block) in
  let wmax = min nwords ((blk + 1) * words_per_block) in
  let res = ref (-1) in
  (try
     while !w < wmax do
       let c = word_count (Array.unsafe_get t.words !w) in
       if !rem < c then begin
         res := (!w * word_bits) + word_select (Array.unsafe_get t.words !w) !rem;
         raise Exit
       end;
       rem := !rem - c;
       incr w
     done
   with Exit -> ());
  if !res < 0 then invalid_arg "Bitvec.select: out of range" else !res

let mask63 = (1 lsl word_bits) - 1

let select1 t j =
  select_gen t j
    (fun b -> t.blocks.(b))
    Popcnt.popcount Popcnt.select_in_word t.ones

let select0 t j =
  let zeros_before b = (b * block_bits) - t.blocks.(b) in
  let word_count w = word_bits - Popcnt.popcount w in
  let word_select w r = Popcnt.select_in_word (lnot w land mask63) r in
  let total = t.len - t.ones in
  (* The tail of the last word is implicit zero padding; selecting a zero
     there would be out of range, guarded by [total]. *)
  select_gen t j zeros_before word_count word_select total

let next1 t i =
  if i >= t.len then -1
  else begin
    let r = rank1 t i in
    if r >= t.ones then -1 else select1 t r
  end

let space_bits t =
  (Array.length t.words + Array.length t.blocks) * 64 + 128

(** Sparse bitmaps in Elias-Fano encoding (the practical counterpart of
    Okanohara and Sadakane's [sarray], used for the per-tag rows of the
    tag index).  A value stores [m] strictly increasing integers drawn
    from [\[0, universe)] in roughly [m log (universe/m) + 2m] bits. *)

type t

val of_sorted : universe:int -> int array -> t
(** [of_sorted ~universe a] encodes the strictly increasing array [a].
    @raise Invalid_argument if [a] is not strictly increasing or an
    element falls outside [\[0, universe)]. *)

val length : t -> int
(** Number of stored elements. *)

val universe : t -> int

val get : t -> int -> int
(** [get t i] is the [i]-th smallest stored value (0-based). *)

val rank : t -> int -> int
(** [rank t i] is the number of stored values strictly below [i]. *)

val mem : t -> int -> bool

val next : t -> int -> int
(** [next t i] is the smallest stored value [>= i], or [-1]. *)

val prev : t -> int -> int
(** [prev t i] is the largest stored value [< i], or [-1]. *)

val space_bits : t -> int

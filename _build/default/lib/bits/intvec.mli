(** Packed arrays of fixed-width non-negative integers. *)

type t

val make : int -> int -> t
(** [make n width] is an array of [n] zero-initialised integers of
    [width] bits each, [0 < width <= 62]. *)

val of_array : ?width:int -> int array -> t
(** Pack an existing array; [width] defaults to the minimum width able
    to hold the maximum element. *)

val length : t -> int
val width : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val space_bits : t -> int

type t = {
  m : int;
  universe : int;
  lbits : int;
  low : Intvec.t option;    (* None when lbits = 0 *)
  high : Bitvec.t;
}

let of_sorted ~universe a =
  let m = Array.length a in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= universe then invalid_arg "Sparse.of_sorted: out of universe";
      if i > 0 && a.(i - 1) >= v then invalid_arg "Sparse.of_sorted: not increasing")
    a;
  let lbits =
    if m = 0 then 0
    else begin
      let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
      max 0 (log2 (universe / m) 0)
    end
  in
  let low =
    if lbits = 0 then None
    else begin
      let iv = Intvec.make m lbits in
      let mask = (1 lsl lbits) - 1 in
      Array.iteri (fun i v -> Intvec.set iv i (v land mask)) a;
      Some iv
    end
  in
  let hlen = m + (universe lsr lbits) + 1 in
  let b = Bitvec.Builder.create ~hint:hlen () in
  let prev_bucket = ref 0 in
  Array.iter
    (fun v ->
      let bucket = v lsr lbits in
      Bitvec.Builder.push_run b false (bucket - !prev_bucket);
      Bitvec.Builder.push b true;
      prev_bucket := bucket)
    a;
  Bitvec.Builder.push_run b false (hlen - Bitvec.Builder.length b);
  { m; universe; lbits; low; high = Bitvec.Builder.finish b }

let length t = t.m
let universe t = t.universe

let low_of t i = match t.low with None -> 0 | Some iv -> Intvec.get iv i

let get t i =
  if i < 0 || i >= t.m then invalid_arg "Sparse.get";
  let p = Bitvec.select1 t.high i in
  ((p - i) lsl t.lbits) lor low_of t i

let rank t i =
  if t.m = 0 || i <= 0 then 0
  else if i >= t.universe then t.m
  else begin
    let hb = i lsr t.lbits in
    let start = if hb = 0 then 0 else Bitvec.select0 t.high (hb - 1) + 1 in
    let ilow = i land ((1 lsl t.lbits) - 1) in
    let j = ref (start - hb) and p = ref start in
    while
      !p < Bitvec.length t.high
      && Bitvec.get t.high !p
      && low_of t !j < ilow
    do
      incr j;
      incr p
    done;
    !j
  end

let next t i =
  let r = rank t i in
  if r >= t.m then -1 else get t r

let prev t i =
  let r = rank t i in
  if r = 0 then -1 else get t (r - 1)

let mem t i = next t i = i

let space_bits t =
  Bitvec.space_bits t.high
  + (match t.low with None -> 0 | Some iv -> Intvec.space_bits iv)
  + 192

(** Population-count primitives for 63-bit OCaml integers. *)

val popcount : int -> int
(** [popcount x] is the number of set bits in the 63-bit integer [x].
    [x] must be non-negative. *)

val select_in_word : int -> int -> int
(** [select_in_word x j] is the 0-based position of the [j]-th set bit
    of [x] (0-based [j]); behaviour is unspecified when
    [j >= popcount x]. *)

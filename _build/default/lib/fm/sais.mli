(** Linear-time suffix-array construction (the SA-IS algorithm of Nong,
    Zhang and Chan), used to build the Burrows-Wheeler transform of the
    text collection. *)

val suffix_array : int array -> int -> int array
(** [suffix_array s sigma] is the suffix array of [s], whose symbols
    must lie in [\[0, sigma)] and whose last symbol must be [0],
    occurring there and nowhere else (the sentinel).
    @raise Invalid_argument if the sentinel condition is violated. *)

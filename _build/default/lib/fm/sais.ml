(* SA-IS (Nong, Zhang, Chan 2009).  Suffixes are classified S/L; LMS
   suffixes are sorted by induced sorting, renamed, and the problem
   recurses on the reduced string when LMS substrings are not yet
   pairwise distinct.  Everything below works on plain int arrays so the
   recursion can reuse the same code at every level. *)

let rec sais (s : int array) (sa : int array) n sigma =
  if n = 0 then ()
  else if n = 1 then sa.(0) <- 0
  else begin
    (* suffix types: true = S, false = L *)
    let t = Array.make n true in
    for i = n - 2 downto 0 do
      t.(i) <- s.(i) < s.(i + 1) || (s.(i) = s.(i + 1) && t.(i + 1))
    done;
    let is_lms i = i > 0 && t.(i) && not t.(i - 1) in
    let bucket = Array.make sigma 0 in
    Array.iter (fun c -> bucket.(c) <- bucket.(c) + 1) (Array.sub s 0 n);
    let ends = Array.make sigma 0 and starts = Array.make sigma 0 in
    let reset_ptrs () =
      let acc = ref 0 in
      for c = 0 to sigma - 1 do
        starts.(c) <- !acc;
        acc := !acc + bucket.(c);
        ends.(c) <- !acc
      done
    in
    let induce () =
      (* L-type: left to right, from bucket starts *)
      reset_ptrs ();
      for i = 0 to n - 1 do
        let j = sa.(i) in
        if j > 0 && not t.(j - 1) then begin
          let c = s.(j - 1) in
          sa.(starts.(c)) <- j - 1;
          starts.(c) <- starts.(c) + 1
        end
      done;
      (* S-type: right to left, from bucket ends *)
      for i = n - 1 downto 0 do
        let j = sa.(i) in
        if j > 0 && t.(j - 1) then begin
          let c = s.(j - 1) in
          ends.(c) <- ends.(c) - 1;
          sa.(ends.(c)) <- j - 1
        end
      done
    in
    (* Stage 1: sort LMS substrings by one induced sorting pass. *)
    Array.fill sa 0 n (-1);
    reset_ptrs ();
    for i = n - 1 downto 1 do
      if is_lms i then begin
        let c = s.(i) in
        ends.(c) <- ends.(c) - 1;
        sa.(ends.(c)) <- i
      end
    done;
    induce ();
    (* Compact the now-sorted LMS suffixes into sa[0..m). *)
    let m = ref 0 in
    for i = 0 to n - 1 do
      let j = sa.(i) in
      if j >= 0 && is_lms j then begin
        sa.(!m) <- j;
        incr m
      end
    done;
    let m = !m in
    (* Name LMS substrings into sa[m..n) indexed by position/2. *)
    Array.fill sa m (n - m) (-1);
    let names = ref 0 and prev = ref (-1) in
    for i = 0 to m - 1 do
      let pos = sa.(i) in
      let diff =
        if !prev < 0 then true
        else begin
          let p = !prev in
          let rec go d =
            if d > 0 && is_lms (pos + d) && is_lms (p + d) then false
            else if pos + d >= n || p + d >= n then true
            else if s.(pos + d) <> s.(p + d) then true
            else if d > 0 && is_lms (pos + d) <> is_lms (p + d) then true
            else go (d + 1)
          in
          go 0
        end
      in
      if diff then begin
        incr names;
        prev := pos
      end;
      sa.(m + (pos / 2)) <- !names - 1
    done;
    (* Gather the reduced string (LMS names in position order). *)
    let s1 = Array.make m 0 and pos1 = Array.make m 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if sa.(m + (i / 2)) >= 0 && is_lms i then begin
        s1.(!k) <- sa.(m + (i / 2));
        pos1.(!k) <- i;
        incr k
      end
    done;
    let sa1 = Array.make (max 1 m) 0 in
    if !names < m then sais s1 sa1 m !names
    else
      (* names are already unique: direct bucket placement *)
      for i = 0 to m - 1 do
        sa1.(s1.(i)) <- i
      done;
    (* Stage 2: place LMS suffixes in their final sorted order, induce. *)
    Array.fill sa 0 n (-1);
    reset_ptrs ();
    for i = m - 1 downto 0 do
      let j = pos1.(sa1.(i)) in
      let c = s.(j) in
      ends.(c) <- ends.(c) - 1;
      sa.(ends.(c)) <- j
    done;
    induce ()
  end

let suffix_array s sigma =
  let n = Array.length s in
  if n = 0 then [||]
  else begin
    if s.(n - 1) <> 0 then invalid_arg "Sais.suffix_array: missing sentinel";
    for i = 0 to n - 2 do
      if s.(i) <= 0 || s.(i) >= sigma then
        invalid_arg "Sais.suffix_array: symbol out of range"
    done;
    let sa = Array.make n 0 in
    sais s sa n sigma;
    sa
  end

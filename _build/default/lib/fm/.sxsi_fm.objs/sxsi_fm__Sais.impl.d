lib/fm/sais.ml: Array

lib/fm/sais.mli:

lib/fm/fm_index.mli:

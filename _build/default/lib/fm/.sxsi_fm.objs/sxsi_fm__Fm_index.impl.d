lib/fm/fm_index.ml: Array Bitvec Buffer Bytes Char Intvec List Sais Sparse String Sxsi_bits Wavelet

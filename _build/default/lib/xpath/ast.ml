(* Abstract syntax of the XPath fragment Core+ (§5.1 of the paper):
   forward Core XPath plus the text predicates =, contains, starts-with
   and ends-with, extended with the lexicographic comparisons of §3.2
   and named custom predicates (the PSSM hook of §6.7). *)

type axis =
  | Self
  | Child
  | Descendant
  | Attribute
  | Following_sibling

type node_test =
  | Star            (* "*": any element *)
  | Name of string  (* a tag or attribute name *)
  | Text            (* text() *)
  | Node            (* node() *)

type value_op =
  | Eq
  | Contains
  | Starts_with
  | Ends_with
  | Lt
  | Le
  | Gt
  | Ge

type path = {
  absolute : bool;      (* starts at the document root *)
  steps : step list;
}

and step = {
  axis : axis;
  test : node_test;
  preds : pred list;    (* conjunction of filters *)
}

and pred =
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Exists of path                       (* path as boolean filter *)
  | Value of path * value_op * string    (* value expression op literal *)
  | Fun of string * path * string        (* name(path, argument) *)

let axis_to_string = function
  | Self -> "self"
  | Child -> "child"
  | Descendant -> "descendant"
  | Attribute -> "attribute"
  | Following_sibling -> "following-sibling"

let node_test_to_string = function
  | Star -> "*"
  | Name s -> s
  | Text -> "text()"
  | Node -> "node()"

let op_to_string = function
  | Eq -> "="
  | Contains -> "contains"
  | Starts_with -> "starts-with"
  | Ends_with -> "ends-with"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec path_to_string p =
  match p.steps with
  | [] -> if p.absolute then "/" else "."
  | steps -> (if p.absolute then "/" else "") ^ String.concat "/" (List.map step_to_string steps)

and step_to_string s =
  Printf.sprintf "%s::%s%s" (axis_to_string s.axis) (node_test_to_string s.test)
    (String.concat "" (List.map (fun p -> "[" ^ pred_to_string p ^ "]") s.preds))

and pred_to_string = function
  | And (a, b) -> Printf.sprintf "(%s and %s)" (pred_to_string a) (pred_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (pred_to_string a) (pred_to_string b)
  | Not p -> Printf.sprintf "not(%s)" (pred_to_string p)
  | Exists p -> path_to_string p
  | Value (p, Eq, lit) -> Printf.sprintf "%s = %S" (path_to_string p) lit
  | Value (p, ((Lt | Le | Gt | Ge) as op), lit) ->
    Printf.sprintf "%s %s %S" (path_to_string p) (op_to_string op) lit
  | Value (p, ((Contains | Starts_with | Ends_with) as op), lit) ->
    Printf.sprintf "%s(%s, %S)" (op_to_string op) (path_to_string p) lit
  | Fun (name, p, arg) -> Printf.sprintf "%s(%s, %s)" name (path_to_string p) arg

exception Parse_error of int * string

let error pos msg = raise (Parse_error (pos, msg))

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

type token =
  | SLASH
  | DSLASH
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | DOT
  | AT
  | DCOLON
  | PIPE
  | EQ
  | LT
  | LE
  | GT
  | GE
  | NAME of string
  | LITERAL of string
  | EOF

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let pos = ref 0 in
  let push t p = toks := (t, p) :: !toks in
  while !pos < n do
    let p = !pos in
    let c = src.[p] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '/' then
      if p + 1 < n && src.[p + 1] = '/' then begin
        push DSLASH p;
        pos := p + 2
      end
      else begin
        push SLASH p;
        incr pos
      end
    else if c = ':' && p + 1 < n && src.[p + 1] = ':' then begin
      push DCOLON p;
      pos := p + 2
    end
    else if c = '[' then (push LBRACK p; incr pos)
    else if c = ']' then (push RBRACK p; incr pos)
    else if c = '(' then (push LPAREN p; incr pos)
    else if c = ')' then (push RPAREN p; incr pos)
    else if c = ',' then (push COMMA p; incr pos)
    else if c = '*' then (push STAR p; incr pos)
    else if c = '.' then (push DOT p; incr pos)
    else if c = '@' then (push AT p; incr pos)
    else if c = '|' then (push PIPE p; incr pos)
    else if c = '=' then (push EQ p; incr pos)
    else if c = '<' then
      if p + 1 < n && src.[p + 1] = '=' then (push LE p; pos := p + 2)
      else (push LT p; incr pos)
    else if c = '>' then
      if p + 1 < n && src.[p + 1] = '=' then (push GE p; pos := p + 2)
      else (push GT p; incr pos)
    else if c = '"' || c = '\'' then begin
      match String.index_from_opt src (p + 1) c with
      | None -> error p "unterminated string literal"
      | Some q ->
        push (LITERAL (String.sub src (p + 1) (q - p - 1))) p;
        pos := q + 1
    end
    else if is_name_start c then begin
      let e = ref (p + 1) in
      while !e < n && is_name_char src.[!e] do
        incr e
      done;
      (* names may not end with '.' or '-': back off so "self::node()."
         style boundaries survive, and "a ." lexes as NAME DOT *)
      while !e > p + 1 && (src.[!e - 1] = '.' || src.[!e - 1] = '-') do
        decr e
      done;
      push (NAME (String.sub src p (!e - p))) p;
      pos := !e
    end
    else error p (Printf.sprintf "unexpected character %C" c)
  done;
  push EOF n;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

type state = { toks : (token * int) array; mutable i : int }

let peek st = fst st.toks.(st.i)
let pos st = snd st.toks.(st.i)
let advance st = st.i <- st.i + 1

let expect st tok what =
  if peek st = tok then advance st else error (pos st) ("expected " ^ what)

let axis_of_name = function
  | "self" -> Some Ast.Self
  | "child" -> Some Ast.Child
  | "descendant" -> Some Ast.Descendant
  | "attribute" -> Some Ast.Attribute
  | "following-sibling" -> Some Ast.Following_sibling
  | _ -> None

let rec parse_node_test st =
  match peek st with
  | STAR ->
    advance st;
    Ast.Star
  | NAME "text" when fst st.toks.(st.i + 1) = LPAREN ->
    advance st;
    advance st;
    expect st RPAREN ")";
    Ast.Text
  | NAME "node" when fst st.toks.(st.i + 1) = LPAREN ->
    advance st;
    advance st;
    expect st RPAREN ")";
    Ast.Node
  | NAME n ->
    advance st;
    Ast.Name n
  | _ -> error (pos st) "expected a node test"

(* One location step.  [desc] is true when the step was introduced by
   "//": a child step then becomes a descendant step; an attribute step
   gets a descendant::node() step in front (this loses the
   "or-self" part of .//@x, which no Core+ query in the paper uses). *)
and parse_step st ~desc : Ast.step list =
  match peek st with
  | DOT ->
    advance st;
    let preds = parse_predicates st in
    if desc then [ { Ast.axis = Ast.Descendant; test = Ast.Node; preds } ]
    else [ { Ast.axis = Ast.Self; test = Ast.Node; preds } ]
  | AT ->
    advance st;
    let test = parse_node_test st in
    let preds = parse_predicates st in
    let attr = { Ast.axis = Ast.Attribute; test; preds } in
    if desc then
      [ { Ast.axis = Ast.Descendant; test = Ast.Node; preds = [] }; attr ]
    else [ attr ]
  | NAME n when fst st.toks.(st.i + 1) = DCOLON -> begin
    match axis_of_name n with
    | None -> error (pos st) (Printf.sprintf "unknown axis %s" n)
    | Some axis ->
      advance st;
      advance st;
      let test = parse_node_test st in
      let preds = parse_predicates st in
      let axis =
        if not desc then axis
        else begin
          match axis with
          | Ast.Child | Ast.Descendant -> Ast.Descendant
          | Ast.Self | Ast.Attribute | Ast.Following_sibling ->
            error (pos st) "'//' must be followed by a child or descendant step"
        end
      in
      [ { Ast.axis; test; preds } ]
  end
  | STAR | NAME _ ->
    let test = parse_node_test st in
    let preds = parse_predicates st in
    let axis = if desc then Ast.Descendant else Ast.Child in
    [ { Ast.axis; test; preds } ]
  | _ -> error (pos st) "expected a location step"

and parse_relative st ~desc : Ast.step list =
  let first = parse_step st ~desc in
  let rec more acc =
    match peek st with
    | SLASH ->
      advance st;
      more (acc @ parse_step st ~desc:false)
    | DSLASH ->
      advance st;
      more (acc @ parse_step st ~desc:true)
    | _ -> acc
  in
  (* normalize: a filter-less self::node() step is the identity
     (".//b" becomes plain "descendant::b", the empty path is the
     context node) *)
  List.filter
    (fun s -> not (s.Ast.axis = Ast.Self && s.Ast.test = Ast.Node && s.Ast.preds = []))
    (more first)

and parse_path st : Ast.path =
  match peek st with
  | SLASH ->
    advance st;
    (match peek st with
    | EOF | RBRACK | RPAREN | COMMA | EQ | LT | LE | GT | GE ->
      { Ast.absolute = true; steps = [] }
    | _ -> { Ast.absolute = true; steps = parse_relative st ~desc:false })
  | DSLASH ->
    advance st;
    { Ast.absolute = true; steps = parse_relative st ~desc:true }
  | _ -> { Ast.absolute = false; steps = parse_relative st ~desc:false }

and parse_predicates st =
  let rec go acc =
    match peek st with
    | LBRACK ->
      advance st;
      let p = parse_or st in
      expect st RBRACK "]";
      go (p :: acc)
    | _ -> List.rev acc
  in
  go []

and parse_or st =
  let left = parse_and st in
  match peek st with
  | NAME "or" ->
    advance st;
    Ast.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_unary st in
  match peek st with
  | NAME "and" ->
    advance st;
    Ast.And (left, parse_and st)
  | _ -> left

and parse_unary st =
  match peek st with
  | NAME "not" when fst st.toks.(st.i + 1) = LPAREN ->
    advance st;
    advance st;
    let p = parse_or st in
    expect st RPAREN ")";
    Ast.Not p
  | LPAREN ->
    advance st;
    let p = parse_or st in
    expect st RPAREN ")";
    p
  | _ -> parse_atom st

and parse_builtin_value_fun st op =
  advance st;
  expect st LPAREN "(";
  let path = parse_path st in
  expect st COMMA ",";
  let lit =
    match peek st with
    | LITERAL s ->
      advance st;
      s
    | _ -> error (pos st) "expected a string literal"
  in
  expect st RPAREN ")";
  Ast.Value (path, op, lit)

and parse_atom st =
  match peek st with
  | NAME "contains" when fst st.toks.(st.i + 1) = LPAREN ->
    parse_builtin_value_fun st Ast.Contains
  | NAME "starts-with" when fst st.toks.(st.i + 1) = LPAREN ->
    parse_builtin_value_fun st Ast.Starts_with
  | NAME "ends-with" when fst st.toks.(st.i + 1) = LPAREN ->
    parse_builtin_value_fun st Ast.Ends_with
  | NAME fname
    when fst st.toks.(st.i + 1) = LPAREN
         && axis_of_name fname = None
         && fname <> "text" && fname <> "node" && fname <> "not" ->
    (* custom predicate: name(path, argument) *)
    advance st;
    advance st;
    let path = parse_path st in
    expect st COMMA ",";
    let arg =
      match peek st with
      | LITERAL s ->
        advance st;
        s
      | NAME s ->
        advance st;
        s
      | _ -> error (pos st) "expected an argument"
    in
    expect st RPAREN ")";
    Ast.Fun (fname, path, arg)
  | _ ->
    let path = parse_path st in
    (match peek st with
    | EQ ->
      advance st;
      (match peek st with
      | LITERAL s ->
        advance st;
        Ast.Value (path, Ast.Eq, s)
      | _ -> error (pos st) "expected a string literal after '='")
    | LT | LE | GT | GE ->
      let op =
        match peek st with
        | LT -> Ast.Lt
        | LE -> Ast.Le
        | GT -> Ast.Gt
        | GE -> Ast.Ge
        | _ -> assert false
      in
      advance st;
      (match peek st with
      | LITERAL s ->
        advance st;
        Ast.Value (path, op, s)
      | _ -> error (pos st) "expected a string literal after comparison")
    | _ -> Ast.Exists path)

let parse_union src =
  let st = { toks = tokenize src; i = 0 } in
  let rec go acc =
    let path = parse_path st in
    if not path.Ast.absolute then
      error 0 "query must be absolute (start with '/' or '//')";
    match peek st with
    | PIPE ->
      advance st;
      go (path :: acc)
    | EOF -> List.rev (path :: acc)
    | _ -> error (pos st) "trailing input"
  in
  go []

let parse src =
  match parse_union src with
  | [ path ] -> path
  | _ :: _ :: _ -> error 0 "union query: use parse_union"
  | [] -> assert false

(** Parser for the XPath fragment Core+ (§5.1), accepting both the
    verbose syntax ([/descendant::a/child::b\[child::c\]]) and the
    common abbreviations ([//a/b\[c\]], [.], [@x], [*], [text()]). *)

exception Parse_error of int * string
(** Character position and message. *)

val parse : string -> Ast.path
(** A single absolute path.
    @raise Parse_error on syntax errors or on a union query. *)

val parse_union : string -> Ast.path list
(** A query as a union of absolute paths ([p1 | p2 | ...]); a plain
    query yields a one-element list.
    @raise Parse_error on syntax errors. *)

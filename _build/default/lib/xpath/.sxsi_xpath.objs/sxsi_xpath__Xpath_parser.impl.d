lib/xpath/xpath_parser.ml: Array Ast List Printf String

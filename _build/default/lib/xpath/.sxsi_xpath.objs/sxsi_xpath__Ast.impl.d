lib/xpath/ast.ml: List Printf String

(* Text-oriented search over a bibliographic corpus (the paper's §6.6
   scenario): generate a Medline-like collection, then compare the
   engine's evaluation strategies on selective and non-selective text
   predicates.

   Run with:  dune exec examples/medline_search.exe *)

open Sxsi_xml
open Sxsi_core

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let () =
  let xml = Sxsi_datagen.Medline.generate ~citations:3000 () in
  let (doc, t_index) = time (fun () -> Document.of_xml xml) in
  Printf.printf "corpus: %.1f MB, indexed in %.0f ms (%d citations)\n\n"
    (float_of_int (String.length xml) /. 1e6)
    t_index
    (Engine.count (Engine.prepare doc "//MedlineCitation"));

  let run query =
    let compiled = Engine.prepare doc query in
    let strategy =
      match Engine.chosen_strategy compiled with
      | `Bottom_up -> "bottom-up"
      | `Top_down -> "top-down"
    in
    let n, t = time (fun () -> Engine.count compiled) in
    Printf.printf "%-72s %9s  %6d results  %8.1f ms\n" query strategy n t
  in

  print_endline "-- selective author search: the text index drives evaluation";
  run "//Author[LastName = 'Nguyen']";
  run "//MedlineCitation/Article/AuthorList/Author[./LastName[starts-with(., 'Bar')]]";

  print_endline "\n-- rare words in abstracts: bottom-up from the FM-index";
  run "//Article[.//AbstractText[contains(., 'epididymis')]]";
  run "//*[.//LastName[contains(., 'Nguyen')]]";

  print_endline "\n-- frequent words: the automaton runs top-down with one global";
  print_endline "   index query answering every node-level test by membership";
  run "//Article[.//AbstractText[contains(., 'with')]]";
  run "//Article[.//AbstractText[contains(., 'plus') and not(contains(., 'for'))]]";

  print_endline "\n-- mixed content falls back to string-values";
  run "//MedlineCitation[contains(., 'blood cell')]";

  (* raw text-collection operators (§3.2) *)
  print_endline "\n-- raw FM-index operators over the text collection";
  let tc = Document.text doc in
  List.iter
    (fun p ->
      let c, t = time (fun () -> Sxsi_text.Text_collection.global_count tc p) in
      Printf.printf "GlobalCount %-12s = %7d   (%5.2f ms)\n" p c t)
    [ "Bakst"; "morphine"; "human"; "a" ]

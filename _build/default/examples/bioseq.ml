(* Biological sequence search (the paper's §6.7 scenario): XML gene
   annotations carrying DNA, queried with position-specific scoring
   matrices plugged into the XPath engine as custom predicates, with a
   run-length compressed index exploiting sequence repetitiveness.

   Run with:  dune exec examples/bioseq.exe *)

open Sxsi_xml
open Sxsi_core
open Sxsi_bio

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let () =
  let xml = Sxsi_datagen.Bio.generate ~genes:80 () in
  let doc = Document.of_xml xml in
  Printf.printf "gene annotation corpus: %.1f MB, %d genes, %d transcripts\n\n"
    (float_of_int (String.length xml) /. 1e6)
    (Engine.count (Engine.prepare doc "//gene"))
    (Engine.count (Engine.prepare doc "//transcript"));

  (* PSSM matrices become XPath predicates: PSSM(., M1) *)
  let funs = Pssm.registry Pssm.sample_matrices in
  List.iter
    (fun (m, threshold) ->
      Printf.printf "matrix %s: width %d, threshold %.1f\n" (Pssm.name m)
        (Pssm.width m) threshold)
    Pssm.sample_matrices;
  print_newline ();

  List.iter
    (fun query ->
      let compiled = Engine.prepare doc query in
      let n, t = time (fun () -> Engine.count ~funs compiled) in
      Printf.printf "%-42s %6d matches  %8.1f ms\n" query n t)
    [
      "//promoter[PSSM(., M1)]";
      "//promoter[PSSM(., M2)]";
      "//exon[.//sequence[PSSM(., M1)]]";
      "//gene[.//promoter[PSSM(., M2)]]/name";
    ];

  (* the modularity claim: swap the character FM-index for a run-length
     one on this highly repetitive collection *)
  let texts = Document.texts doc in
  let fm = Sxsi_fm.Fm_index.build texts in
  let rle = Rle_fm.build texts in
  Printf.printf
    "\ntext index sizes on %.1f MB of sequence data:\n\
    \  FM-index (character level) : %.2f MB\n\
    \  RLCSA (run-length)         : %.2f MB  (%d runs, %.3f runs/symbol)\n"
    (float_of_int (Rle_fm.length rle) /. 1e6)
    (float_of_int (Sxsi_fm.Fm_index.space_bits fm) /. 8e6)
    (float_of_int (Rle_fm.space_bits rle) /. 8e6)
    (Rle_fm.run_count rle)
    (float_of_int (Rle_fm.run_count rle) /. float_of_int (Rle_fm.length rle));

  (* both indexes agree on counting *)
  let probe = String.sub (Document.string_value doc
    (Engine.select (Engine.prepare doc "//promoter")).(0)) 0 12 in
  Printf.printf "\ncount(%s...): FM=%d, RLCSA=%d\n" (String.sub probe 0 8)
    (Sxsi_fm.Fm_index.count fm probe)
    (Rle_fm.count rle probe)

(* Word-based full-text search (the paper's §6.6.2 scenario): plug a
   word-level index into the engine and run phrase queries over a
   wiki-like corpus.

   Run with:  dune exec examples/wikisearch.exe *)

open Sxsi_xml
open Sxsi_core
open Sxsi_wordindex

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let () =
  let xml = Sxsi_datagen.Wiki.generate ~pages:2000 () in
  let doc = Document.of_xml xml in
  let widx, t_build = time (fun () -> Word_index.build (Document.texts doc)) in
  Printf.printf
    "wiki corpus: %.1f MB, %d pages; word index: %d distinct words over %d tokens (built in %.0f ms)\n\n"
    (float_of_int (String.length xml) /. 1e6)
    (Engine.count (Engine.prepare doc "//page"))
    (Word_index.distinct_words widx)
    (Word_index.token_count widx) t_build;

  (* expose the word index to the engine as the 'ftcontains' predicate *)
  let funs key =
    match String.index_opt key ':' with
    | Some i when String.sub key 0 i = "ftcontains" ->
      let phrase = String.sub key (i + 1) (String.length key - i - 1) in
      Some
        {
          Run.cp_match = (fun s -> Word_index.matches_text widx phrase s);
          cp_texts = Some (fun () -> Word_index.contains_phrase widx phrase);
        }
    | _ -> None
  in

  List.iter
    (fun query ->
      let compiled = Engine.prepare doc query in
      let n, t = time (fun () -> Engine.count ~funs compiled) in
      Printf.printf "%-70s %6d pages  %8.2f ms\n" query n t)
    [
      "//text[ftcontains(., 'dark horse')]";
      "//page[.//text[ftcontains(., 'played on a board')]]/title";
      "//page[.//text[ftcontains(., 'crude oil')]]/title";
      "//text[ftcontains(., 'horse') and ftcontains(., 'princess')]";
    ];

  (* phrase semantics: word boundaries matter *)
  print_newline ();
  List.iter
    (fun phrase ->
      Printf.printf "texts containing %-36s : %d\n" (Printf.sprintf "%S" phrase)
        (Word_index.contains_phrase_count widx phrase))
    [ "dark horse"; "dark"; "horse"; "darkhorse" ]

(* Quickstart: index a small document and run a few Core+ queries.

   Run with:  dune exec examples/quickstart.exe *)

open Sxsi_xml
open Sxsi_core

let xml =
  {|<library>
  <book year="1994" id="b1">
    <title>Managing Gigabytes</title>
    <author><last>Witten</last></author>
    <author><last>Moffat</last></author>
    <topic>compression</topic>
  </book>
  <book year="2008" id="b2">
    <title>Compact Data Structures</title>
    <author><last>Navarro</last></author>
    <topic>succinct structures</topic>
    <note>Includes a chapter on <em>trees</em> and texts.</note>
  </book>
  <article id="a1">
    <title>Fast In-Memory XPath Search</title>
    <topic>compressed indexes</topic>
  </article>
</library>|}

let () =
  (* Parsing builds the whole self-index: balanced-parentheses tree,
     per-tag jump structures and the FM-index over all texts. *)
  let doc = Document.of_xml ~keep_whitespace:false xml in
  Printf.printf "indexed %d nodes, %d texts, %d distinct tags\n\n"
    (Document.node_count doc) (Document.text_count doc) (Document.tag_count doc);

  let show query =
    let compiled = Engine.prepare doc query in
    let n = Engine.count compiled in
    Printf.printf "%-55s -> %d result(s)\n" query n;
    Array.iter
      (fun node -> Printf.printf "    %s\n" (Document.serialize doc node))
      (Engine.select compiled);
    print_newline ()
  in

  (* structural navigation *)
  show "/library/book/title";
  show "//author/last";
  show "//book[author/last]/title";
  show "//book[not(note)]";

  (* attributes *)
  show "//book[@year = '2008']/title";
  show "//@id";

  (* text predicates, answered through the FM-index *)
  show "//title[contains(., 'Data')]";
  show "//topic[starts-with(., 'comp')]";
  show "//last[. = 'Navarro']";

  (* mixed content: the string-value spans several texts *)
  show "//note[contains(., 'trees and texts')]";

  (* the same query can be evaluated top-down or bottom-up *)
  let q = Engine.prepare doc "//last[. = 'Moffat']" in
  Printf.printf "strategy chosen for //last[. = 'Moffat']: %s\n"
    (match Engine.chosen_strategy q with
    | `Bottom_up -> "bottom-up (from the text index)"
    | `Top_down -> "top-down (tree automaton)")

examples/wikisearch.ml: Document Engine List Printf Run String Sxsi_core Sxsi_datagen Sxsi_wordindex Sxsi_xml Unix Word_index

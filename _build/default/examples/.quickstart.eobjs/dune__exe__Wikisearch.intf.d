examples/wikisearch.mli:

examples/quickstart.mli:

examples/bioseq.ml: Array Document Engine List Printf Pssm Rle_fm String Sxsi_bio Sxsi_core Sxsi_datagen Sxsi_fm Sxsi_xml Unix

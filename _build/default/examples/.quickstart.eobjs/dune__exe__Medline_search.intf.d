examples/medline_search.mli:

examples/medline_search.ml: Document Engine List Printf String Sxsi_core Sxsi_datagen Sxsi_text Sxsi_xml Unix

examples/quickstart.ml: Array Document Engine Printf Sxsi_core Sxsi_xml

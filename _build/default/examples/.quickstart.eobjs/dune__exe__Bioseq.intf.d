examples/bioseq.mli:

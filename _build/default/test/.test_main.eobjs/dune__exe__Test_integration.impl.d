test/test_integration.ml: Alcotest Array Document Dom Engine List Naive_eval Run String Sxsi_baseline Sxsi_bio Sxsi_core Sxsi_datagen Sxsi_wordindex Sxsi_xml Sxsi_xpath

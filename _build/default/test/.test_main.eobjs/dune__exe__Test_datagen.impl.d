test/test_datagen.ml: Alcotest Array Bio Document Engine List Medline Sxsi_baseline Sxsi_core Sxsi_datagen Sxsi_text Sxsi_xml Treebank Wiki Xmark

test/test_wordindex.ml: Alcotest Array List QCheck2 QCheck_alcotest String Sxsi_core Sxsi_wordindex Sxsi_xml Word_index

test/test_text.ml: Alcotest Array Char List Lz78 QCheck2 QCheck_alcotest String Sxsi_text Text_collection

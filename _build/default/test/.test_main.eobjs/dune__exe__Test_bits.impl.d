test/test_bits.ml: Alcotest Array Bitvec Char Int_wavelet Intvec List Popcnt QCheck2 QCheck_alcotest Sparse String Sxsi_bits Wavelet

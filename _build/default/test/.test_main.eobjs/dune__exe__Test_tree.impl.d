test/test_tree.ml: Alcotest Array Bp List QCheck2 QCheck_alcotest Seq String Sxsi_tree Tag_index Tag_rel
